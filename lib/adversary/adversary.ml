(* First-class Byzantine adversaries (DESIGN.md §14).

   An attack is a *value*: a list of rules, each binding one corrupted
   replica (the actor) to a strategy primitive over a time window.
   Primitives speak the protocol-neutral vocabulary of
   [Rdb_types.Interpose] — message classes plus an optional
   conflicting-payload forgery — so one grammar covers all five
   protocols.  The pieces:

   - the grammar ([prim], [rule], [Attack.t]) with a compact string id
     (part of the scenario grammar, so every attack is sweepable) and
     a versioned JSON round-trip (so every attack is replayable);
   - the envelope: corrupted replicas stay within the f-per-cluster
     budget, reusing lib/chaos's accounting;
   - the seeded sampler: a fixed-shape RNG consumer in the style of
     the chaos planner, biased toward primaries (the actors whose
     corruption is reachable by a strategy, not just absorbed);
   - the runtime: compiles named rule sets into the send/receive
     interposition hooks of [Rdb_types.Interpose], installing them
     only while at least one rule set is live — the
     zero-overhead-when-off contract. *)

module Interpose = Rdb_types.Interpose
module Time = Rdb_sim.Time
module Rng = Rdb_prng.Rng
module Keychain = Rdb_crypto.Keychain
module Json = Rdb_fabric.Json
module Chaos = Rdb_chaos.Chaos

(* ------------------------------------------------------------------ *)
(* Grammar                                                             *)
(* ------------------------------------------------------------------ *)

(* Who a send-side rule applies to (the destination) or a receive-side
   rule listens for (the source). *)
type target =
  | Everyone
  | Remote  (** nodes outside the actor's own cluster *)
  | Clusters of int list
  | Peers of int list  (** explicit global replica ids *)

type prim =
  | Silence of { cls : Interpose.cls option; dst : target }
      (** targeted silence: matching messages never leave the actor *)
  | Equivocate
      (** two-faced sending: destinations with odd global id receive a
          conflicting payload (via the protocol's [conflict] forgery)
          — messages without a modelled conflict pass unchanged *)
  | Delay of { cls : Interpose.cls option; dst : target; ms : int }
      (** delayed-primary / slow-drip sending: hold matching messages
          for [ms] before they enter the wire model *)
  | Stale of { cls : Interpose.cls }
      (** stale shares: send the *previous* matching message instead
          of the current one (the current becomes the next stale) *)
  | Replay of { cls : Interpose.cls; every : int }
      (** selective replay: every [every]-th matching message is sent
          twice; receivers must deduplicate *)
  | Deaf of { cls : Interpose.cls; src : target }
      (** receive-side: the actor pretends not to hear matching
          messages from [src] *)

type rule = { actor : int; prim : prim; from_ms : int; until_ms : int }

(* -- compact ids --------------------------------------------------- *)

let target_to_id = function
  | Everyone -> "all"
  | Remote -> "rem"
  | Clusters cs -> "c" ^ String.concat "-" (List.map string_of_int cs)
  | Peers ps -> "p" ^ String.concat "-" (List.map string_of_int ps)

let target_of_id s =
  match s with
  | "all" -> Some Everyone
  | "rem" -> Some Remote
  | _ when String.length s >= 2 && (s.[0] = 'c' || s.[0] = 'p') -> (
      let body = String.sub s 1 (String.length s - 1) in
      let ints = List.map int_of_string_opt (String.split_on_char '-' body) in
      if List.exists Option.is_none ints then None
      else
        let ints = List.map Option.get ints in
        Some (if s.[0] = 'c' then Clusters ints else Peers ints))
  | _ -> None

let opt_cls = function None -> "" | Some c -> "." ^ Interpose.cls_to_string c
let opt_tgt = function Everyone -> "" | t -> "." ^ target_to_id t

let prim_to_id = function
  | Silence { cls; dst } -> "mute" ^ opt_cls cls ^ opt_tgt dst
  | Equivocate -> "equiv"
  | Delay { cls; dst; ms } -> Printf.sprintf "lag%d%s%s" ms (opt_cls cls) (opt_tgt dst)
  | Stale { cls } -> "stale." ^ Interpose.cls_to_string cls
  | Replay { cls; every } ->
      Printf.sprintf "replay.%s.%d" (Interpose.cls_to_string cls) every
  | Deaf { cls; src } ->
      Printf.sprintf "deaf.%s%s" (Interpose.cls_to_string cls) (opt_tgt src)

(* Optional [.cls][.target] suffix tokens: a class name binds first
   (class names never parse as targets and vice versa), then a target,
   and nothing may remain. *)
let parse_suffix tokens =
  let cls, tokens =
    match tokens with
    | t :: rest when Interpose.cls_of_string t <> None ->
        (Interpose.cls_of_string t, rest)
    | _ -> (None, tokens)
  in
  let tgt, tokens =
    match tokens with
    | t :: rest when target_of_id t <> None -> (target_of_id t, rest)
    | _ -> (None, tokens)
  in
  if tokens = [] then Some (cls, Option.value ~default:Everyone tgt) else None

let prim_of_id s =
  match String.split_on_char '.' s with
  | [] -> None
  | op :: rest -> (
      match op with
      | "mute" ->
          Option.map (fun (cls, dst) -> Silence { cls; dst }) (parse_suffix rest)
      | "equiv" -> if rest = [] then Some Equivocate else None
      | "stale" -> (
          match rest with
          | [ c ] -> Option.map (fun cls -> Stale { cls }) (Interpose.cls_of_string c)
          | _ -> None)
      | "replay" -> (
          match rest with
          | [ c; n ] -> (
              match (Interpose.cls_of_string c, int_of_string_opt n) with
              | Some cls, Some every when every >= 1 -> Some (Replay { cls; every })
              | _ -> None)
          | _ -> None)
      | "deaf" -> (
          match rest with
          | c :: rest -> (
              match (Interpose.cls_of_string c, parse_suffix rest) with
              | Some cls, Some (None, src) -> Some (Deaf { cls; src })
              | _ -> None)
          | [] -> None)
      | _ when String.length op > 3 && String.sub op 0 3 = "lag" -> (
          match int_of_string_opt (String.sub op 3 (String.length op - 3)) with
          | Some ms when ms >= 0 ->
              Option.map (fun (cls, dst) -> Delay { cls; dst; ms }) (parse_suffix rest)
          | _ -> None)
      | _ -> None)

let rule_to_id r =
  Printf.sprintf "%d@%d:%d!%s" r.actor r.from_ms r.until_ms (prim_to_id r.prim)

let rule_of_id s =
  match String.index_opt s '@' with
  | None -> None
  | Some i -> (
      match String.index_opt s '!' with
      | None -> None
      | Some j when j > i -> (
          let window = String.sub s (i + 1) (j - i - 1) in
          match String.split_on_char ':' window with
          | [ f; u ] -> (
              match
                ( int_of_string_opt (String.sub s 0 i),
                  int_of_string_opt f,
                  int_of_string_opt u,
                  prim_of_id (String.sub s (j + 1) (String.length s - j - 1)) )
              with
              | Some actor, Some from_ms, Some until_ms, Some prim
                when actor >= 0 && from_ms <= until_ms ->
                  Some { actor; prim; from_ms; until_ms }
              | _ -> None)
          | _ -> None)
      | Some _ -> None)

(* ------------------------------------------------------------------ *)
(* Attacks                                                             *)
(* ------------------------------------------------------------------ *)

module Attack = struct
  type t = { rules : rule list }

  let empty = { rules = [] }
  let equal (a : t) (b : t) = a = b

  let corrupt a =
    List.sort_uniq compare (List.map (fun r -> r.actor) a.rules)

  (* The corrupted-replica envelope: every rule's actor counted once,
     at most f per cluster — the same budget lib/chaos enforces for
     concurrent crash windows. *)
  let within_envelope ~n ~f a = Chaos.within_cluster_budget ~n ~f (corrupt a)

  let to_id a =
    if a.rules = [] then "none"
    else String.concat "+" (List.map rule_to_id a.rules)

  let of_id s =
    if s = "none" then Some empty
    else
      let parts = String.split_on_char '+' s in
      let rules = List.map rule_of_id parts in
      if List.exists Option.is_none rules then None
      else Some { rules = List.map Option.get rules }

  let schema_version = 1

  let to_json a =
    Json.Obj
      [
        ("v", Json.Int schema_version);
        ( "rules",
          Json.List
            (List.map
               (fun r ->
                 Json.Obj
                   [
                     ("actor", Json.Int r.actor);
                     ("from_ms", Json.Int r.from_ms);
                     ("until_ms", Json.Int r.until_ms);
                     ("prim", Json.String (prim_to_id r.prim));
                   ])
               a.rules) );
      ]

  let of_json j =
    let ( let* ) r f = Result.bind r f in
    let field name conv =
      match Option.bind (Json.member name j) conv with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "attack: missing or malformed %S" name)
    in
    let* v = field "v" Json.to_int in
    if v > schema_version then
      Error (Printf.sprintf "attack: schema version %d > %d" v schema_version)
    else
      let* rules = field "rules" Json.to_list in
      let rec go acc = function
        | [] -> Ok { rules = List.rev acc }
        | rj :: rest -> (
            let f name conv = Option.bind (Json.member name rj) conv in
            match
              ( f "actor" Json.to_int,
                f "from_ms" Json.to_int,
                f "until_ms" Json.to_int,
                Option.bind (f "prim" Json.to_str) prim_of_id )
            with
            | Some actor, Some from_ms, Some until_ms, Some prim ->
                go ({ actor; prim; from_ms; until_ms } :: acc) rest
            | _ -> Error "attack: malformed rule")
      in
      go [] rules

  let to_string a = Json.to_string (to_json a)

  let of_string s =
    match Json.of_string s with Error e -> Error e | Ok j -> of_json j
end

(* ------------------------------------------------------------------ *)
(* Per-protocol capabilities                                           *)
(* ------------------------------------------------------------------ *)

(* What the sampler may draw for one protocol: each primitive's menu
   of drawable scopes (empty = primitive off), plus who may be
   corrupted at all.  Mirrors the chaos [caps] philosophy: the search
   explores strategies the protocol is *required* to absorb, so any
   violation is a bug. *)
type caps = {
  corruptible : int -> bool;
  silence : Interpose.cls option list;
  equivocate : bool;
  delay : Interpose.cls option list;
  max_delay_ms : int;
  stale : Interpose.cls list;
  replay : Interpose.cls list;
  deaf : Interpose.cls list;
}

(* ------------------------------------------------------------------ *)
(* Seeded sampler                                                      *)
(* ------------------------------------------------------------------ *)

type kind = KSilence | KEquivocate | KDelay | KStale | KReplay | KDeaf

(* Draw the destination scope for silence/delay rules.  Fixed-shape:
   both draws always happen. *)
let sample_target rng ~z =
  let k = Rng.int rng 3 in
  let c = Rng.int rng z in
  match k with 0 -> Everyone | 1 -> Remote | _ -> Clusters [ c ]

(* Sample one attack: up to [max_rules] rules, each drawn with the
   fixed RNG shape of the chaos planner (every attempt consumes the
   same draws before any rejection), windows inside
   [500ms, horizon - tail], actors within the f-per-cluster envelope.
   Actor selection is biased toward each cluster's initial primary
   (index 0): those are the replicas whose corruption a strategy can
   leverage rather than merely being absorbed. *)
let sample ~rng ~caps ~z ~n ~f ~horizon_ms ~tail_ms () =
  let replicas = z * n in
  let menu =
    (if caps.silence <> [] then [ KSilence ] else [])
    @ (if caps.equivocate then [ KEquivocate ] else [])
    @ (if caps.delay <> [] then [ KDelay ] else [])
    @ (if caps.stale <> [] then [ KStale ] else [])
    @ (if caps.replay <> [] then [ KReplay ] else [])
    @ if caps.deaf <> [] then [ KDeaf ] else []
  in
  let min_onset = 500. in
  let latest = float_of_int (horizon_ms - tail_ms) in
  if menu = [] || latest <= min_onset then Attack.empty
  else begin
    let menu = Array.of_list menu in
    let opt l = Array.of_list l in
    let silence = opt caps.silence
    and delay = opt caps.delay
    and stale = Array.of_list caps.stale
    and replay = Array.of_list caps.replay
    and deaf = Array.of_list caps.deaf in
    let max_rules = 1 + Rng.int rng 3 in
    let accepted = ref [] in
    let n_accepted = ref 0 in
    for _ = 1 to max_rules * 8 do
      if !n_accepted < max_rules then begin
        (* Actor: half the draws aim at a cluster's initial primary. *)
        let primary_bias = Rng.bool rng in
        let cluster = Rng.int rng z in
        let uniform = Rng.int rng replicas in
        let actor = if primary_bias then cluster * n else uniform in
        let k = Rng.choose rng menu in
        let dur = Rng.float_range rng ~lo:800. ~hi:2500. in
        let span = latest -. min_onset -. dur in
        let at = min_onset +. (Rng.float rng *. Float.max span 0.) in
        let prim =
          match k with
          | KSilence -> Silence { cls = Rng.choose rng silence; dst = sample_target rng ~z }
          | KEquivocate -> Equivocate
          | KDelay ->
              let ms =
                int_of_float
                  (Rng.float_range rng ~lo:100. ~hi:(float_of_int caps.max_delay_ms))
              in
              Delay { cls = Rng.choose rng delay; dst = sample_target rng ~z; ms }
          | KStale -> Stale { cls = Rng.choose rng stale }
          | KReplay -> Replay { cls = Rng.choose rng replay; every = 1 + Rng.int rng 3 }
          | KDeaf -> Deaf { cls = Rng.choose rng deaf; src = sample_target rng ~z }
        in
        if span > 0. && caps.corruptible actor then begin
          let cand =
            { actor; prim; from_ms = int_of_float at; until_ms = int_of_float (at +. dur) }
          in
          let attack = Attack.{ rules = cand :: !accepted } in
          if Attack.within_envelope ~n ~f attack then begin
            accepted := cand :: !accepted;
            incr n_accepted
          end
        end
      end
    done;
    Attack.{ rules = List.rev !accepted }
  end

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)
(* ------------------------------------------------------------------ *)

module Runtime = struct
  type 'm t = {
    view : 'm Interpose.view;
    keychain : Keychain.t;
    now : unit -> Time.t;
    n : int;  (* cluster size, for Remote / Clusters targets *)
    install : 'm Interpose.t option -> unit;
    mutable sets : (string * rule list) list;  (* insertion order *)
    mutable installed : bool;
    (* Equivocation memo: the same original payload maps to the same
       forgery, so the conflicting half sees one consistent lie. *)
    forged : ('m, 'm option) Hashtbl.t;
    mutable nonce : int;
    (* Stale buffers and replay counters, keyed per (actor, class). *)
    held : (int * Interpose.cls, 'm) Hashtbl.t;
    counts : (int * Interpose.cls, int) Hashtbl.t;
  }

  let cls_matches copt cls =
    match copt with None -> true | Some c -> c = cls

  let target_matches t ~n ~actor ~other =
    match t with
    | Everyone -> true
    | Remote -> other / n <> actor / n
    | Clusters cs -> List.mem (other / n) cs
    | Peers ps -> List.mem other ps

  let active r ~now_ms =
    float_of_int r.from_ms <= now_ms && now_ms < float_of_int r.until_ms

  (* First active rule of [actor] passing [select]; rule sets are
     scanned in insertion order, rules in list order. *)
  let find_rule t ~actor ~select =
    let now_ms = Time.to_ms_f (t.now ()) in
    let rec in_rules = function
      | [] -> None
      | r :: rest ->
          if r.actor = actor && active r ~now_ms && select r.prim then Some r.prim
          else in_rules rest
    in
    let rec in_sets = function
      | [] -> None
      | (_, rules) :: rest -> (
          match in_rules rules with Some p -> Some p | None -> in_sets rest)
    in
    in_sets t.sets

  let conflict_for t m =
    match Hashtbl.find_opt t.forged m with
    | Some f -> f
    | None ->
        let nonce = t.nonce in
        t.nonce <- t.nonce + 1;
        let f = t.view.Interpose.conflict ~keychain:t.keychain ~nonce m in
        Hashtbl.replace t.forged m f;
        f

  let obtrude t ~src ~dst m =
    let cls = t.view.Interpose.classify m in
    let select = function
      | Silence { cls = c; dst = tgt } | Delay { cls = c; dst = tgt; _ } ->
          cls_matches c cls && target_matches tgt ~n:t.n ~actor:src ~other:dst
      | Equivocate -> true
      | Stale { cls = c } | Replay { cls = c; _ } -> c = cls
      | Deaf _ -> false
    in
    match find_rule t ~actor:src ~select with
    | None -> Interpose.pass m
    | Some (Silence _) -> []
    | Some Equivocate -> (
        if dst mod 2 = 0 then Interpose.pass m
        else
          match conflict_for t m with
          | None -> Interpose.pass m
          | Some forged -> Interpose.pass forged)
    | Some (Delay { ms; _ }) ->
        [ { Interpose.after = Time.ms ms; emit = m } ]
    | Some (Stale _) -> (
        let key = (src, cls) in
        let prev = Hashtbl.find_opt t.held key in
        Hashtbl.replace t.held key m;
        match prev with None -> Interpose.pass m | Some old -> Interpose.pass old)
    | Some (Replay { every; _ }) ->
        let key = (src, cls) in
        let c = 1 + Option.value ~default:0 (Hashtbl.find_opt t.counts key) in
        Hashtbl.replace t.counts key c;
        if c mod every = 0 then
          [
            { Interpose.after = Time.zero; emit = m };
            { Interpose.after = Time.of_ms_f 0.25; emit = m };
          ]
        else Interpose.pass m
    | Some (Deaf _) -> Interpose.pass m

  let admit t ~src ~dst m =
    let cls = t.view.Interpose.classify m in
    let select = function
      | Deaf { cls = c; src = tgt } ->
          c = cls && target_matches tgt ~n:t.n ~actor:dst ~other:src
      | _ -> false
    in
    match find_rule t ~actor:dst ~select with Some _ -> false | None -> true

  let create ~view ~keychain ~now ~n ~install =
    {
      view;
      keychain;
      now;
      n;
      install;
      sets = [];
      installed = false;
      forged = Hashtbl.create 32;
      nonce = 0;
      held = Hashtbl.create 16;
      counts = Hashtbl.create 16;
    }

  let sync t =
    match (t.sets, t.installed) with
    | [], true ->
        t.installed <- false;
        t.install None
    | _ :: _, false ->
        t.installed <- true;
        t.install
          (Some
             {
               Interpose.obtrude = (fun ~src ~dst m -> obtrude t ~src ~dst m);
               admit = (fun ~src ~dst m -> admit t ~src ~dst m);
             })
    | _ -> ()

  let set t ~name rules =
    let rest = List.filter (fun (n', _) -> n' <> name) t.sets in
    t.sets <- (if rules = [] then rest else rest @ [ (name, rules) ]);
    sync t

  let clear t ~name = set t ~name []

  let set_attack t (a : Attack.t) = set t ~name:"attack" a.Attack.rules
  let active t = t.sets <> []
end

(* A window that is never over: chaos-driven rules are installed and
   removed by scheduled apply/reverse events, not by rule windows. *)
let always ~actor prim = { actor; prim; from_ms = 0; until_ms = max_int }
