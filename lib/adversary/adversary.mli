(** First-class Byzantine adversaries (DESIGN.md §14).

    An attack is a value: corrupted replicas (within the f-per-cluster
    envelope, reusing lib/chaos's accounting) bound to strategy
    primitives over time windows.  Attacks carry a compact string id
    (part of the scenario grammar) and a versioned JSON round-trip, are
    sampled by a seeded fixed-shape sampler, and are compiled by the
    runtime into the send/receive interposition hooks of
    {!Rdb_types.Interpose}. *)

module Interpose = Rdb_types.Interpose
module Time = Rdb_sim.Time
module Rng = Rdb_prng.Rng
module Keychain = Rdb_crypto.Keychain
module Json = Rdb_fabric.Json

(** {1 Grammar} *)

type target =
  | Everyone
  | Remote  (** nodes outside the actor's own cluster *)
  | Clusters of int list
  | Peers of int list  (** explicit global replica ids *)

type prim =
  | Silence of { cls : Interpose.cls option; dst : target }
      (** targeted silence toward chosen peers or phases *)
  | Equivocate
      (** conflicting payloads to disjoint halves (odd global ids get
          the protocol's [conflict] forgery) *)
  | Delay of { cls : Interpose.cls option; dst : target; ms : int }
      (** delayed-primary / slow-drip sending *)
  | Stale of { cls : Interpose.cls }
      (** send the previous matching message instead of the current *)
  | Replay of { cls : Interpose.cls; every : int }
      (** every [every]-th matching message is sent twice *)
  | Deaf of { cls : Interpose.cls; src : target }
      (** receive-side: ignore matching messages from [src] *)

type rule = { actor : int; prim : prim; from_ms : int; until_ms : int }

val prim_to_id : prim -> string
val prim_of_id : string -> prim option
val rule_to_id : rule -> string
val rule_of_id : string -> rule option

val always : actor:int -> prim -> rule
(** A rule whose window never closes — for rule sets installed and
    removed by scheduled events (the chaos equivocation action). *)

(** {1 Attacks} *)

module Attack : sig
  type t = { rules : rule list }

  val empty : t
  val equal : t -> t -> bool

  val corrupt : t -> int list
  (** Sorted distinct actors of all rules. *)

  val within_envelope : n:int -> f:int -> t -> bool
  (** At most [f] corrupted replicas per cluster of [n] — lib/chaos's
      {!Rdb_chaos.Chaos.within_cluster_budget}. *)

  val to_id : t -> string
  (** Compact, space-free id: rules [actor@from:until!prim] joined by
      ["+"]; the empty attack is ["none"].  Inverse of {!of_id}. *)

  val of_id : string -> t option

  val schema_version : int

  val to_json : t -> Json.t
  val of_json : Json.t -> (t, string) result
  val to_string : t -> string
  val of_string : string -> (t, string) result
end

(** {1 Per-protocol capabilities} *)

type caps = {
  corruptible : int -> bool;
  silence : Interpose.cls option list;  (** drawable silence scopes; [] = off *)
  equivocate : bool;
  delay : Interpose.cls option list;
  max_delay_ms : int;
  stale : Interpose.cls list;
  replay : Interpose.cls list;
  deaf : Interpose.cls list;
}
(** The sampler's menu for one protocol: strategies the protocol is
    required to absorb, so any violation found under them is a bug. *)

(** {1 Seeded sampling} *)

val sample :
  rng:Rng.t ->
  caps:caps ->
  z:int ->
  n:int ->
  f:int ->
  horizon_ms:int ->
  tail_ms:int ->
  unit ->
  Attack.t
(** Sample one attack (up to 3 rules) with the chaos planner's
    fixed-shape RNG discipline: windows inside
    [500ms, horizon - tail], actors biased toward cluster-initial
    primaries and kept within the envelope. *)

(** {1 Runtime} *)

module Runtime : sig
  type 'm t

  val create :
    view:'m Interpose.view ->
    keychain:Keychain.t ->
    now:(unit -> Time.t) ->
    n:int ->
    install:('m Interpose.t option -> unit) ->
    'm t
  (** [install] receives [Some hooks] when the first rule set goes
      live and [None] when the last is cleared, preserving the
      zero-overhead-when-off contract of the deployment. *)

  val set : 'm t -> name:string -> rule list -> unit
  (** Replace the named rule set ([[]] removes it).  Rule sets are
      consulted in insertion order, rules in list order; the first
      matching active rule wins. *)

  val clear : 'm t -> name:string -> unit
  val set_attack : 'm t -> Attack.t -> unit
  (** [set] under the reserved name ["attack"]. *)

  val active : 'm t -> bool
end
