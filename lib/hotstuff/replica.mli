(** HotStuff (Yin et al.) in the exact configuration the paper
    implemented (§3): the four-phase basic protocol, no threshold
    signatures, and every replica acting as a primary in parallel
    without pacemaker synchronization — replica i orders the batches
    submitted to it in instance i (a pipeline of depth
    {!instance_window} heights, as in chained HotStuff).  Clients
    submit round-robin to their local region's replicas and rotate
    away from a crashed leader on retransmission.
    Satisfies {!Rdb_types.Protocol.S}. *)

module Batch = Rdb_types.Batch
module Ctx = Rdb_types.Ctx

val name : string

val instance_window : int
(** Heights a leader keeps in flight per instance (chained-HotStuff
    pipeline depth: 4). *)

type phase = Prepare | Precommit | Commit

type msg =
  | Request of Batch.t
  | Propose of { inst : int; height : int; batch : Batch.t }
  | Vote of { inst : int; height : int; phase : phase; digest : string }
  | Qc of { inst : int; height : int; phase : phase; digest : string }
  | Reply of { batch_id : int; result_digest : string }
  | Fetch of { inst : int; heights : int list }
      (** Hole-filling catch-up: request missing decided batches. *)
  | Filled of { inst : int; height : int; batch : Batch.t }
  | Fetch_log of { inst : int; from : int }
      (** Bulk ledger state transfer: request the contiguous executed
          suffix of an instance's log starting at [from]. *)
  | Log_suffix of { inst : int; from : int; batches : Batch.t list }

type replica
type client

val create_replica : msg Ctx.t -> replica
val on_message : replica -> src:int -> msg -> unit
val view_changes : replica -> int

val decided_total : replica -> int
(** Batches this replica has decided-and-executed, over all instances. *)

val on_recover : replica -> unit
(** Crash-recover hook: re-arm the hole-filling stall task. *)

val recovery : replica -> Rdb_types.Protocol.recovery_stats

val disable_recovery : replica -> unit
(** Test hook: permanently turn off recovery machinery running outside
    [on_recover] (the chaos suite's recovery-disabled mode). *)

val create_client : msg Ctx.t -> cluster:int -> client
val submit : client -> Batch.t -> unit
val on_client_message : client -> src:int -> msg -> unit

val adversary : msg Rdb_types.Interpose.view
(** Adversarial message classification ([Share] = the leader's phase
    certificates); content equivocation is not modelled, so
    [conflict] is always [None]. *)
