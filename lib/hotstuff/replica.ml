(* HotStuff (Yin et al., PODC 2019), in the exact configuration the
   paper implemented in ResilientDB (§3 "Other protocols"):

   - the four-phase basic protocol: prepare → precommit → commit →
     decide, each phase a leader-broadcast followed by a vote round
     back to the leader (O(8·zn) messages per decision, Table 2);
   - *no threshold signatures* ("As there is no readily available
     implementation for threshold signatures ... we skip the
     construction and verification of threshold signatures"): quorum
     certificates therefore carry n − f individual signatures, and
     every replica receiving a QC pays n − f signature verifications —
     the computational ceiling the paper observes ("the high
     computational costs of the protocol prevent it from reaching high
     throughput in any setting");
   - *every replica acts as a primary in parallel, without
     pacemaker-based synchronization*: replica i runs instance i,
     ordering the batches submitted to it.  Instances are independent
     logs; each replica executes an instance's decided batches in that
     instance's height order.  A crashed replica stalls only its own
     instance (clients rotate to a live leader on retransmission),
     which reproduces HotStuff's moderate degradation under failures
     in Figure 12.

   Clients submit to their local region's replicas round-robin and wait
   for f_global + 1 matching replies. *)

module Batch = Rdb_types.Batch
module Config = Rdb_types.Config
module Ctx = Rdb_types.Ctx
module Wire = Rdb_types.Wire
module Client_core = Rdb_types.Client_core
module Time = Rdb_sim.Time
module Cpu = Rdb_sim.Cpu
module Sha256 = Rdb_crypto.Sha256
module Recovery = Rdb_recovery.Recovery
module Mutation = Rdb_types.Mutation
module Evidence = Rdb_types.Evidence

let name = "HotStuff"

(* Heights a leader may run concurrently within one instance: chained
   HotStuff keeps one proposal per phase in flight, i.e. a pipeline of
   depth 4. *)
let instance_window = 4

type phase = Prepare | Precommit | Commit

let phase_index = function Prepare -> 0 | Precommit -> 1 | Commit -> 2

type msg =
  | Request of Batch.t
  | Propose of { inst : int; height : int; batch : Batch.t }
  | Vote of { inst : int; height : int; phase : phase; digest : string }
  (* Leader's phase certificate: precommit/commit/decide broadcast,
     justified by n − f votes of the previous phase. *)
  | Qc of { inst : int; height : int; phase : phase; digest : string }
  | Reply of { batch_id : int; result_digest : string }
  (* Hole-filling catch-up (lib/recovery): a replica whose instance
     execution stalled behind the heights it can see fetches the
     missing decided batches; any replica that executed them serves
     the fill.  This is what heals instances after link outages, which
     otherwise leave permanent holes (DESIGN.md Â§8). *)
  | Fetch of { inst : int; heights : int list }
  | Filled of { inst : int; height : int; batch : Batch.t }
  (* Bulk ledger state transfer (lib/recovery), the same rejoin idiom
     as Pbft/GeoBFT checkpoint catch-up: a replica far behind on an
     instance asks for the contiguous executed suffix of that
     instance's log starting at its own frontier, and a peer that
     executed it streams the batches back in chunks.  The requester
     chains further [Fetch_log]s as chunks land, so a multi-second
     outage heals in a few round trips instead of per-height fetch
     cycles gated by the stall task's backoff. *)
  | Fetch_log of { inst : int; from : int }
  | Log_suffix of { inst : int; from : int; batches : Batch.t list }

(* Per-(instance, height) consensus state. *)
type slot = {
  mutable batch : Batch.t option;
  votes : (int, int) Hashtbl.t array;    (* per phase: voter -> 1 *)
  mutable qc_seen : bool array;          (* phases we advanced through *)
  mutable decided : bool;
}

type inst_state = {
  owner : int;
  pending : Batch.t Queue.t;             (* leader-side queue *)
  mutable next_height : int;             (* leader: next height to propose *)
  mutable decided_below : int;           (* leader: heights decided (window) *)
  slots : (int, slot) Hashtbl.t;
  mutable next_exec : int;               (* executing this instance in order *)
  mutable max_seen : int;                (* highest height seen proposed/certified *)
  (* Every executed batch of this instance, kept for the life of the
     run so the replica can serve hole fetches and bulk [Fetch_log]
     state transfer arbitrarily far back.  A bounded retention window
     here is exactly the state-transfer gap: an outage longer than the
     window left holes no peer could serve, permanently stalling the
     instance.  Entries are shared batch values (pointers), not copies,
     so the cost is one table slot per decided height. *)
  archive : (int, Batch.t) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;       (* leader-side dedup *)
  (* Frontier of the last bulk [Fetch_log] sent for this instance
     (-1 = none): dedups the event-driven catch-up trigger so one
     chain is in flight per frontier; the stall task re-requests
     after backoff if the chain was lost. *)
  mutable bulk_from : int;
}

type replica = {
  ctx : msg Ctx.t;
  cfg : Config.t;
  n : int;                               (* total replicas = instances *)
  quorum : int;
  insts : inst_state array;
  mutable decided_total : int;
  stats : Recovery.Stats.t;
  mutable task : Recovery.Task.t option;
}

(* Bulk catch-up tuning: switch from per-height [Fetch] to [Fetch_log]
   once the hole is this deep, and stream at most [log_chunk] batches
   per [Log_suffix] so one reply never monopolizes the serving
   replica's uplink. *)
let bulk_threshold = 64
let log_chunk = 256

(* Receipt digest, not an execution-result digest: the parallel
   instances give replicas no common global execution order, so real
   per-txn results can legitimately differ across replicas and could
   never gather f+1 matches.  Clients of this HotStuff configuration
   get agreement on *ordering* receipts only (the paper's clients
   likewise wait for matching responses per instance decision). *)
let result_digest (b : Batch.t) = Sha256.digest_list [ "result"; b.Batch.digest ]

let size_of cfg = function
  | Request _ -> Wire.batch_bytes ~batch_size:cfg.Config.batch_size
  | Propose _ -> Wire.batch_bytes ~batch_size:cfg.Config.batch_size
  | Vote _ -> Wire.small
  | Qc _ -> Wire.small + (Wire.commit_entry_bytes * 4) (* n−f sigs, compacted *)
  | Reply _ -> Wire.response_bytes ~batch_size:cfg.Config.batch_size
  | Fetch _ -> Wire.fetch_bytes
  | Filled _ -> Wire.fill_bytes ~batch_size:cfg.Config.batch_size ~sigs:4
  | Fetch_log _ -> Wire.fetch_bytes
  | Log_suffix { batches; _ } ->
      Wire.small
      + (List.length batches * Wire.fill_bytes ~batch_size:cfg.Config.batch_size ~sigs:4)

(* The paper's implementation "skips the construction and verification
   of threshold signatures" entirely: votes and QCs are only
   MAC-authenticated, which (with the parallel primaries) is what gives
   their HotStuff its strong showing.  We reproduce that: every message
   pays only the receive floor, plus the client-signature check on
   proposals. *)
let vcost_of cfg m =
  let c = cfg in
  match m with
  | Propose _ ->
      Time.add (Config.recv_floor_cost c ~bytes:(size_of c m)) (Config.verify_cost c)
  | m -> Config.recv_floor_cost c ~bytes:(size_of c m)

let send r ~dst m = r.ctx.Ctx.send ~dst ~size:(size_of r.cfg m) ~vcost:(vcost_of r.cfg m) m

let broadcast r m =
  let dsts = ref [] in
  for dst = r.n - 1 downto 0 do
    if dst <> r.ctx.Ctx.id then dsts := dst :: !dsts
  done;
  Ctx.multicast r.ctx ~dsts:!dsts ~size:(size_of r.cfg m) ~vcost:(vcost_of r.cfg m) m

let slot_of inst height =
  match Hashtbl.find_opt inst.slots height with
  | Some s -> s
  | None ->
      let s =
        {
          batch = None;
          votes = Array.init 3 (fun _ -> Hashtbl.create 8);
          qc_seen = Array.make 3 false;
          decided = false;
        }
      in
      Hashtbl.replace inst.slots height s;
      s

(* -- hole detection ------------------------------------------------------- *)

(* An instance is stalled when heights it can see proposed/certified
   run more than a pipeline window ahead of what it has executed: in
   healthy operation the leader keeps at most [instance_window]
   heights in flight, so a larger gap means deliveries were lost. *)
let inst_stalled inst = inst.max_seen >= inst.next_exec + instance_window

let any_stalled r = Array.exists inst_stalled r.insts

(* Progress token for the stall task: must reflect only the *stalled*
   instances — summing every instance's cursor would reset the backoff
   on each execution in a healthy instance and starve the task. *)
let stall_token r =
  Array.fold_left
    (fun acc inst -> if inst_stalled inst then acc + inst.next_exec + 1 else acc)
    0 r.insts

let send_fetches r ~attempt =
  Array.iter
    (fun inst ->
      if inst_stalled inst then begin
        let have h =
          match Hashtbl.find_opt inst.slots h with Some s -> s.decided | None -> false
        in
        (* First try the instance's leader (it certainly decided the
           heights); if that link is the faulty one, widen to
           everyone. *)
        let target m =
          if attempt = 0 && inst.owner <> r.ctx.Ctx.id then send r ~dst:inst.owner m
          else broadcast r m
        in
        if inst.max_seen - inst.next_exec >= bulk_threshold && not (have inst.next_exec)
        then begin
          (* Deep hole starting right at our frontier: bulk ledger
             state transfer.  Chunk replies chain further [Fetch_log]s
             without waiting on this task's backoff. *)
          Recovery.Stats.note_retransmit r.stats;
          inst.bulk_from <- inst.next_exec;
          target (Fetch_log { inst = inst.owner; from = inst.next_exec })
        end
        else begin
          (* Scattered or shallow holes: ask per height.  The fetch
             itself is small and the server pays per-height [Filled]
             wire costs; a throttled request list (a few dozen heights
             per fire, with backoff between fires) could never outrun
             the decision rate of the healthy instances during a
             multi-second link outage, hence the generous limit. *)
          let heights =
            Recovery.Gaps.missing ~limit:1024 ~have ~from:inst.next_exec ~upto:inst.max_seen ()
          in
          if heights <> [] then begin
            Recovery.Stats.note_retransmit r.stats;
            target (Fetch { inst = inst.owner; heights })
          end
        end
      end)
    r.insts

let ensure_task r = match r.task with Some t -> Recovery.Task.ensure t | None -> ()

(* Event-driven bulk catch-up.  The first delivery after an outage
   heals is what reveals the hole (max_seen jumps past the pipeline
   window); fetching right here — instead of waiting out whatever
   backoff the stall task accumulated while its requests were being
   dropped — is what keeps the executed-set divergence inside the
   chaos monitor's slack.  [bulk_from] dedups to one in-flight chain
   per frontier; lost chains are re-requested by the task. *)
let nudge_catch_up r inst =
  ensure_task r;
  let frontier_decided =
    match Hashtbl.find_opt inst.slots inst.next_exec with
    | Some s -> s.decided
    | None -> false
  in
  if
    inst.max_seen - inst.next_exec >= bulk_threshold
    && (not frontier_decided)
    && inst.bulk_from <> inst.next_exec
  then begin
    Recovery.Stats.note_retransmit r.stats;
    inst.bulk_from <- inst.next_exec;
    let m = Fetch_log { inst = inst.owner; from = inst.next_exec } in
    if inst.owner <> r.ctx.Ctx.id then send r ~dst:inst.owner m else broadcast r m
  end

let create_replica (ctx : msg Ctx.t) =
  let cfg = ctx.Ctx.config in
  let n = Config.n_replicas cfg in
  let f = (n - 1) / 3 in
  let r =
    {
      ctx;
      cfg;
      n;
      quorum = n - f;
      stats = Recovery.Stats.create ();
      task = None;
      insts =
        Array.init n (fun owner ->
            {
              owner;
              pending = Queue.create ();
              next_height = 0;
              decided_below = 0;
              slots = Hashtbl.create 64;
              next_exec = 0;
              max_seen = -1;
              archive = Hashtbl.create 64;
              seen = Hashtbl.create 256;
              bulk_from = -1;
            });
      decided_total = 0;
    }
  in
  r.task <-
    Some
      (Recovery.Task.create
         ~set_timer:(fun ~delay k -> ignore (ctx.Ctx.set_timer ~delay k))
         ~rng:ctx.Ctx.rng
         ~base:(Time.of_ms_f cfg.Config.local_timeout_ms)
         ~cap:(Time.of_ms_f (8. *. cfg.Config.local_timeout_ms))
         ~needed:(fun () -> any_stalled r)
         ~progress:(fun () -> stall_token r)
         ~fire:(fun ~attempt -> send_fetches r ~attempt)
         ());
  r

let view_changes (_ : replica) = 0
let decided_total r = r.decided_total

(* Crash-recover: any stall task armed before the crash died with its
   timer; re-arm if there are holes to fill. *)
let on_recover (r : replica) =
  match r.task with Some t -> if any_stalled r then Recovery.Task.start t | None -> ()

let recovery (r : replica) = Recovery.Stats.to_protocol r.stats

(* HotStuff's only out-of-band machinery is the on_recover-armed stall
   task; nothing to turn off. *)
let disable_recovery (_ : replica) = ()


(* -- leader side ---------------------------------------------------------- *)

(* Trace-phase slot key for (instance owner, height): instances are
   per-replica logs, so heights alone would collide across owners. *)
let hs_key ~owner ~height = ((owner + 1) lsl 32) lor height

let rec leader_propose r inst =
  if
    inst.owner = r.ctx.Ctx.id
    && (not (Queue.is_empty inst.pending))
    && inst.next_height < inst.decided_below + instance_window
  then begin
    let batch = Queue.pop inst.pending in
    let height = inst.next_height in
    inst.next_height <- height + 1;
    r.ctx.Ctx.charge ~stage:Cpu.Batching ~cost:(Config.batch_asm_cost r.cfg) (fun () ->
        let s = slot_of inst height in
        s.batch <- Some batch;
        r.ctx.Ctx.phase ~key:(hs_key ~owner:inst.owner ~height) ~name:"propose";
        broadcast r (Propose { inst = inst.owner; height; batch });
        (* The leader's proposal is its own prepare vote. *)
        record_vote r inst ~height ~phase:Prepare ~voter:r.ctx.Ctx.id ~digest:batch.Batch.digest);
    leader_propose r inst
  end

and record_vote r inst ~height ~phase ~voter ~digest:_ =
  let s = slot_of inst height in
  let tbl = s.votes.(phase_index phase) in
  if not (Hashtbl.mem tbl voter) then begin
    Hashtbl.replace tbl voter 1;
    let gate = if Mutation.is "hotstuff-qc-quorum" then r.quorum - 1 else r.quorum in
    if Hashtbl.length tbl >= gate then begin
      let pi = phase_index phase in
      if not s.qc_seen.(pi) then begin
        Evidence.note ~point:"hotstuff.qc" ~node:r.ctx.Ctx.id ~count:(Hashtbl.length tbl)
          ~need:r.quorum;
        s.qc_seen.(pi) <- true;
        match s.batch with
        | None -> ()
        | Some b ->
            (* Broadcast the QC that opens the next phase (or decides);
               QCs are MAC-authenticated (no threshold signatures). *)
            let next = Qc { inst = inst.owner; height; phase; digest = b.Batch.digest } in
            broadcast r next;
            apply_qc r inst ~height ~phase
      end
    end
  end

(* A QC for [phase] advances the slot; at the leader it also counts as
   the leader's own next-phase vote. *)
and apply_qc r inst ~height ~phase =
  let s = slot_of inst height in
  match s.batch with
  | None -> ()
  | Some b -> (
      let digest = b.Batch.digest in
      let me = r.ctx.Ctx.id in
      let i_am_leader = inst.owner = me in
      let key = hs_key ~owner:inst.owner ~height in
      match phase with
      | Prepare ->
          r.ctx.Ctx.phase ~key ~name:"prepare";
          if i_am_leader then record_vote r inst ~height ~phase:Precommit ~voter:me ~digest
          else vote r inst ~height ~phase:Precommit ~digest
      | Precommit ->
          (* The precommit QC is HotStuff's lock: from here the slot can
             only decide, so it maps onto the generic "commit" phase. *)
          r.ctx.Ctx.phase ~key ~name:"commit";
          if i_am_leader then record_vote r inst ~height ~phase:Commit ~voter:me ~digest
          else vote r inst ~height ~phase:Commit ~digest
      | Commit -> decide r inst ~height)

and vote r inst ~height ~phase ~digest =
  send r ~dst:inst.owner (Vote { inst = inst.owner; height; phase; digest })

and decide r inst ~height =
  let s = slot_of inst height in
  if not s.decided then begin
    s.decided <- true;
    if inst.owner = r.ctx.Ctx.id then begin
      inst.decided_below <- inst.decided_below + 1;
      leader_propose r inst
    end;
    exec_ready r inst
  end

(* Execute this instance's decided heights in order. *)
and exec_ready r inst =
  match Hashtbl.find_opt inst.slots inst.next_exec with
  | Some s when s.decided -> (
      match s.batch with
      | None -> ()
      | Some batch ->
          inst.next_exec <- inst.next_exec + 1;
          Hashtbl.replace inst.archive (inst.next_exec - 1) batch;
          Hashtbl.remove inst.slots (inst.next_exec - 64);
          r.decided_total <- r.decided_total + 1;
          let exec_height = inst.next_exec - 1 in
          r.ctx.Ctx.execute batch ~cert:None ~on_done:(fun _ ->
              r.ctx.Ctx.phase ~key:(hs_key ~owner:inst.owner ~height:exec_height) ~name:"execute";
              (if not (Batch.is_noop batch) then
                 send r ~dst:batch.Batch.origin
                   (Reply { batch_id = batch.Batch.id; result_digest = result_digest batch }));
              exec_ready r inst))
  | _ -> ()

(* -- dispatch --------------------------------------------------------------- *)

let on_message r ~src (m : msg) =
  match m with
  | Request batch ->
      (* We are this batch's designated leader: order it in our own
         instance. *)
      let inst = r.insts.(r.ctx.Ctx.id) in
      if
        (not (Hashtbl.mem inst.seen batch.Batch.digest))
        && Batch.verify ~keychain:r.ctx.Ctx.keychain batch
      then begin
        Hashtbl.replace inst.seen batch.Batch.digest ();
        Queue.push batch inst.pending;
        leader_propose r inst
      end
  | Propose { inst = i; height; batch } ->
      if i = src && i <> r.ctx.Ctx.id then begin
        let inst = r.insts.(i) in
        inst.max_seen <- max inst.max_seen height;
        let s = slot_of inst height in
        if s.batch = None then begin
          s.batch <- Some batch;
          r.ctx.Ctx.phase ~key:(hs_key ~owner:i ~height) ~name:"propose";
          vote r inst ~height ~phase:Prepare ~digest:batch.Batch.digest
        end;
        if inst_stalled inst then nudge_catch_up r inst
      end
  | Vote { inst = i; height; phase; digest } ->
      if i = r.ctx.Ctx.id then record_vote r r.insts.(i) ~height ~phase ~voter:src ~digest
  | Qc { inst = i; height; phase; digest = _ } ->
      if i = src && i <> r.ctx.Ctx.id then begin
        let inst = r.insts.(i) in
        inst.max_seen <- max inst.max_seen height;
        apply_qc r inst ~height ~phase;
        if inst_stalled inst then nudge_catch_up r inst
      end
  | Fetch { inst = i; heights } ->
      (* Serve decided batches from the live slot or the archive. *)
      let inst = r.insts.(i) in
      List.iter
        (fun h ->
          let batch =
            match Hashtbl.find_opt inst.slots h with
            | Some s when s.decided -> s.batch
            | _ -> Hashtbl.find_opt inst.archive h
          in
          match batch with
          | Some batch when h < inst.next_exec || (match Hashtbl.find_opt inst.slots h with Some s -> s.decided | None -> false) ->
              send r ~dst:src (Filled { inst = i; height = h; batch })
          | _ -> ())
        heights
  | Filled { inst = i; height; batch } ->
      (* Trusted like a checkpoint block: the serving replica executed
         it, so its digest is fixed by agreement.  Mark it decided and
         resume in-order execution. *)
      let inst = r.insts.(i) in
      inst.max_seen <- max inst.max_seen height;
      let s = slot_of inst height in
      if (not s.decided) && height >= inst.next_exec then begin
        if s.batch = None then s.batch <- Some batch;
        s.decided <- true;
        Recovery.Stats.note_holes r.stats 1;
        exec_ready r inst
      end
  | Fetch_log { inst = i; from } ->
      (* Serve a contiguous executed suffix of this instance's log from
         the archive, capped at [log_chunk] batches per reply.  Asking
         at or past our frontier yields nothing (the stall task's
         backoff covers the retry). *)
      let inst = r.insts.(i) in
      if from >= 0 && from < inst.next_exec then begin
        let upto = min inst.next_exec (from + log_chunk) in
        let batches = ref [] in
        let complete = ref true in
        for h = upto - 1 downto from do
          match Hashtbl.find_opt inst.archive h with
          | Some b -> batches := b :: !batches
          | None -> complete := false
        done;
        if !complete && !batches <> [] then
          send r ~dst:src (Log_suffix { inst = i; from; batches = !batches })
      end
  | Log_suffix { inst = i; from; batches } ->
      (* Bulk install: each entry is trusted like [Filled] (the serving
         replica executed it, so its digest is fixed by agreement).
         Installing fresh heights counts as one state transfer; if the
         instance is still behind afterwards, chain the next chunk
         immediately instead of waiting for the stall task. *)
      let inst = r.insts.(i) in
      let installed = ref 0 in
      List.iteri
        (fun k batch ->
          let h = from + k in
          inst.max_seen <- max inst.max_seen h;
          let s = slot_of inst h in
          if (not s.decided) && h >= inst.next_exec then begin
            if s.batch = None then s.batch <- Some batch;
            s.decided <- true;
            incr installed
          end)
        batches;
      if !installed > 0 then begin
        Recovery.Stats.note_state_transfer r.stats;
        Recovery.Stats.note_holes r.stats !installed;
        exec_ready r inst;
        let next_from = from + List.length batches in
        if
          inst_stalled inst
          && next_from <= inst.max_seen
          && not
               (match Hashtbl.find_opt inst.slots next_from with
               | Some s -> s.decided
               | None -> false)
        then begin
          inst.bulk_from <- next_from;
          send r ~dst:src (Fetch_log { inst = i; from = next_from })
        end
      end
  | Reply _ -> ()

(* -- client ------------------------------------------------------------------ *)

type client = { core : msg Client_core.t }

let create_client (ctx : msg Ctx.t) ~cluster =
  let cfg = ctx.Ctx.config in
  let locals = Array.of_list (Config.replicas_of_cluster cfg cluster) in
  let rr = ref 0 in
  let size = Wire.batch_bytes ~batch_size:cfg.Config.batch_size in
  let vcost = Config.recv_floor_cost cfg ~bytes:size in
  let transmit ~retry:_ (batch : Batch.t) =
    (* Round-robin over local replicas; a retry naturally rotates to
       the next (live) leader. *)
    let dst = locals.(!rr mod Array.length locals) in
    incr rr;
    ctx.Ctx.send ~dst ~size ~vcost (Request batch)
  in
  let f_global = (Config.n_replicas cfg - 1) / 3 in
  (* No consensus-bypass reads: without a cross-instance global order,
     replica states legitimately diverge in interleaving, so read
     digests would not gather f+1 matches — reads go through an
     instance like any other batch. *)
  { core = Client_core.create ~ctx ~threshold:(f_global + 1) ~transmit () }

let submit (c : client) batch = Client_core.submit c.core batch

let on_client_message (c : client) ~src (m : msg) =
  match m with
  | Reply { batch_id; result_digest } -> Client_core.on_reply c.core ~src ~batch_id ~result_digest
  | _ -> ()

(* -- adversarial view (lib/adversary) -------------------------------------- *)

(* [Share] covers the leader's phase certificates (QCs).  Content
   equivocation is not modelled: every replica leads its own parallel
   instance, so a two-faced leader maps to instance-local speculation
   that the executed-set monitor attributes with slack rather than as
   a safety decision — the sound primitives here are delay and
   replay. *)
let adversary : msg Rdb_types.Interpose.view =
  let open Rdb_types.Interpose in
  let classify = function
    | Request _ | Reply _ -> Client
    | Propose _ -> Proposal
    | Vote _ -> Vote
    | Qc _ -> Share
    | Fetch _ | Filled _ | Fetch_log _ | Log_suffix _ -> Sync
  in
  let conflict ~keychain:_ ~nonce:_ _ = None in
  { classify; conflict }
