open Import

(* Generic client agent logic: submit a batch, collect replies, accept
   once [threshold] replicas sent matching results, retransmit on
   timeout.

   The paper's argument for f+1 matching responses (§2.4): at most f
   replicas per cluster are faulty and faulty replicas cannot
   impersonate non-faulty ones, so among f+1 identical responses at
   least one is from a non-faulty replica.  Zyzzyva needs richer client
   behaviour (3f+1 fast path, commit-certificate recovery), so it layers
   its own logic on top of this core rather than using the threshold
   path. *)

type pending = {
  batch : Batch.t;
  replies : (int, string) Hashtbl.t;   (* replica -> result digest *)
  mutable resolved : bool;
  mutable timer : Ctx.timer option;
  mutable attempts : int;              (* retransmissions so far (backoff) *)
}

type 'm t = {
  ctx : 'm Ctx.t;
  threshold : int;
  (* [transmit ~retry batch] actually sends the request; retry = true
     on retransmission (protocols typically broadcast then). *)
  transmit : retry:bool -> Batch.t -> unit;
  inflight : (int, pending) Hashtbl.t;
  mutable submitted : int;
  mutable completed : int;
  mutable retransmits : int;
}

let create ~(ctx : 'm Ctx.t) ~threshold ~transmit =
  { ctx; threshold; transmit; inflight = Hashtbl.create 64; submitted = 0; completed = 0; retransmits = 0 }

let inflight_count t = Hashtbl.length t.inflight
let submitted t = t.submitted
let completed t = t.completed
let retransmits t = t.retransmits

(* Exponential backoff, capped at 8x the base timeout: a wedged system
   is probed persistently but not flooded. *)
let rec arm_timer t (p : pending) =
  let base = t.ctx.Ctx.config.Config.client_timeout_ms in
  let scale = float_of_int (min 8 (1 lsl min 3 p.attempts)) in
  let delay = Time.of_ms_f (base *. scale) in
  p.timer <-
    Some
      (t.ctx.Ctx.set_timer ~delay (fun () ->
           if not p.resolved then begin
             t.retransmits <- t.retransmits + 1;
             p.attempts <- p.attempts + 1;
             t.transmit ~retry:true p.batch;
             arm_timer t p
           end))

let submit t (batch : Batch.t) =
  if not (Hashtbl.mem t.inflight batch.Batch.id) then begin
    let p =
      { batch; replies = Hashtbl.create 8; resolved = false; timer = None; attempts = 0 }
    in
    Hashtbl.replace t.inflight batch.Batch.id p;
    t.submitted <- t.submitted + 1;
    t.transmit ~retry:false batch;
    arm_timer t p
  end

(* Record a reply from [src]; fires [Ctx.complete] at the threshold. *)
let on_reply t ~src ~batch_id ~result_digest =
  match Hashtbl.find_opt t.inflight batch_id with
  | None -> ()
  | Some p when p.resolved -> ()
  | Some p ->
      Hashtbl.replace p.replies src result_digest;
      let matching =
        Hashtbl.fold
          (fun _ d acc -> if String.equal d result_digest then acc + 1 else acc)
          p.replies 0
      in
      if matching >= t.threshold then begin
        p.resolved <- true;
        (match p.timer with Some h -> t.ctx.Ctx.cancel_timer h | None -> ());
        Hashtbl.remove t.inflight batch_id;
        t.completed <- t.completed + 1;
        t.ctx.Ctx.complete p.batch
      end
