open Import

(* Generic client agent logic: submit a batch, collect replies, accept
   once [threshold] replicas sent matching results, retransmit on
   timeout.

   The paper's argument for f+1 matching responses (§2.4): at most f
   replicas per cluster are faulty and faulty replicas cannot
   impersonate non-faulty ones, so among f+1 identical responses at
   least one is from a non-faulty replica.  Zyzzyva needs richer client
   behaviour (3f+1 fast path, commit-certificate recovery), so it layers
   its own logic on top of this core rather than using the threshold
   path. *)

type pending = {
  batch : Batch.t;
  replies : (int, string) Hashtbl.t;   (* replica -> result digest *)
  mutable resolved : bool;
  mutable timer : Ctx.timer option;
  mutable attempts : int;              (* retransmissions so far (backoff) *)
}

type 'm t = {
  ctx : 'm Ctx.t;
  threshold : int;
  (* [transmit ~retry batch] actually sends the request; retry = true
     on retransmission (protocols typically broadcast then). *)
  transmit : retry:bool -> Batch.t -> unit;
  (* Consensus-bypass path for read-only batches, when the protocol
     offers one: the first transmission goes here; a timeout falls back
     to [transmit ~retry:true] (ordered through consensus), so a read
     whose result digests disagree across replicas still completes. *)
  transmit_read : (Batch.t -> unit) option;
  inflight : (int, pending) Hashtbl.t;
  mutable submitted : int;
  mutable completed : int;
  mutable retransmits : int;
  mutable read_fallbacks : int;  (* reads pushed back onto consensus *)
}

let create ~(ctx : 'm Ctx.t) ~threshold ?transmit_read ~transmit () =
  {
    ctx;
    threshold;
    transmit;
    transmit_read;
    inflight = Hashtbl.create 64;
    submitted = 0;
    completed = 0;
    retransmits = 0;
    read_fallbacks = 0;
  }

let inflight_count t = Hashtbl.length t.inflight
let submitted t = t.submitted
let completed t = t.completed
let retransmits t = t.retransmits
let read_fallbacks t = t.read_fallbacks

let takes_read_path t (batch : Batch.t) =
  t.transmit_read <> None && Batch.read_only batch

(* Exponential backoff, capped at 8x the base timeout: a wedged system
   is probed persistently but not flooded. *)
let rec arm_timer t (p : pending) =
  let base = t.ctx.Ctx.config.Config.client_timeout_ms in
  let scale = float_of_int (min 8 (1 lsl min 3 p.attempts)) in
  let delay = Time.of_ms_f (base *. scale) in
  p.timer <-
    Some
      (t.ctx.Ctx.set_timer ~delay (fun () ->
           if not p.resolved then begin
             t.retransmits <- t.retransmits + 1;
             (* A timed-out bypass read falls back onto consensus: the
                replicas' states disagreed at f+1 (or replies were
                lost), so pay for ordering and get a definitive result.
                Accumulated bypass replies stay in [p.replies] — result
                digests are state-deterministic, so a bypass reply that
                matches the post-consensus digest still counts. *)
             if p.attempts = 0 && takes_read_path t p.batch then
               t.read_fallbacks <- t.read_fallbacks + 1;
             p.attempts <- p.attempts + 1;
             t.transmit ~retry:true p.batch;
             arm_timer t p
           end))

let submit t (batch : Batch.t) =
  if not (Hashtbl.mem t.inflight batch.Batch.id) then begin
    let p =
      { batch; replies = Hashtbl.create 8; resolved = false; timer = None; attempts = 0 }
    in
    Hashtbl.replace t.inflight batch.Batch.id p;
    t.submitted <- t.submitted + 1;
    (match t.transmit_read with
    | Some transmit_read when Batch.read_only batch -> transmit_read batch
    | _ -> t.transmit ~retry:false batch);
    arm_timer t p
  end

(* Record a reply from [src]; fires [Ctx.complete] at the threshold. *)
let on_reply t ~src ~batch_id ~result_digest =
  match Hashtbl.find_opt t.inflight batch_id with
  | None -> ()
  | Some p when p.resolved -> ()
  | Some p ->
      Hashtbl.replace p.replies src result_digest;
      let matching =
        Hashtbl.fold
          (fun _ d acc -> if String.equal d result_digest then acc + 1 else acc)
          p.replies 0
      in
      if matching >= t.threshold then begin
        p.resolved <- true;
        (match p.timer with Some h -> t.ctx.Ctx.cancel_timer h | None -> ());
        Hashtbl.remove t.inflight batch_id;
        t.completed <- t.completed + 1;
        t.ctx.Ctx.complete p.batch
      end
