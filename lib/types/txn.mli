(** A client transaction: one YCSB operation against the replicated
    table.  The evaluation uses write queries (§4); reads exist for
    completeness and the examples. *)

type op = Read | Write | Scan

type t = {
  op : op;
  key : int;        (** row key in the YCSB table *)
  value : int64;    (** written value; ignored for reads *)
  client_id : int;  (** logical client that issued the txn *)
}

val make : ?op:op -> key:int -> value:int64 -> client_id:int -> unit -> t

val serialize : t -> string
(** Compact canonical serialization (digests and signatures). *)

val serialize_into : Buffer.t -> t -> unit
(** Append the canonical serialization to [b] — same bytes as
    {!serialize}, no intermediate string (the batch-digest hot path). *)

val scan_len : t -> int
(** Rows covered by a [Scan], 1..64, derived from the low bits of
    [value] (unused otherwise by non-write operations). *)

val pp : Format.formatter -> t -> unit
