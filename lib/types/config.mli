open Import

(** Deployment configuration shared by every protocol and the fabric:
    cluster layout, quorums, timers, and the calibrated cost model
    (DESIGN.md §7).

    Layout (matching §4's experiments): [z] clusters of [n] replicas;
    cluster [c] occupies region [c]; replica [i] of cluster [c] is
    global node [c*n + i]; cluster [c]'s client group is node
    [z*n + c], co-located with it. *)

type costs = {
  sign_us : float;          (** ED25519-class signature generation *)
  verify_us : float;        (** ED25519-class signature verification *)
  mac_us : float;           (** AES-CMAC generate or verify *)
  hash_us_per_kb : float;   (** SHA-256 digest throughput *)
  exec_us_per_txn : float;  (** YCSB write + ledger append *)
  batch_asm_us : float;     (** batch assembly on the batching thread *)
  threshold_partial_us : float;  (** threshold-RSA partial signature (Steward) *)
  threshold_combine_us : float;  (** threshold-RSA share combination *)
}

val default_costs : costs

type storage = Memory | Disk
(** Storage backend under each replica's App state machine: in-memory
    Bigarray table, or the append-only persistent block store
    (file-backed block log + periodic snapshots, recovery-on-restart).
    Deterministic either way: same batch sequence, same state digest. *)

type t = {
  z : int;                    (** clusters (regions) *)
  n : int;                    (** replicas per cluster *)
  batch_size : int;           (** transactions per batch *)
  checkpoint_interval : int;  (** Pbft checkpoint period, in transactions *)
  pipeline_depth : int;       (** max in-flight local consensus instances *)
  local_timeout_ms : float;   (** Pbft view-change timer *)
  remote_timeout_ms : float;  (** GeoBFT remote failure-detection timer *)
  client_inflight : int;      (** outstanding batches per client group *)
  client_timeout_ms : float;  (** client retransmission timer *)
  clients : int;
      (** Aggregate client population modeled across the deployment,
          split over the z per-cluster groups; 0 (default) = the legacy
          closed-loop model ([client_inflight] outstanding batches per
          group, 1000-client id space).  Group work is one event per
          batch tick regardless of population, so sweeps can represent
          millions of clients.  See {!group_population},
          {!group_inflight}, {!client_id_stride}. *)
  wan_egress_mbps : float;    (** per-node aggregate WAN egress cap *)
  geobft_fanout : int;        (** GeoBFT sharing fan-out; 0 = f+1 (paper) *)
  threshold_certs : bool;     (** §2.2 optional threshold-signature certificates *)
  read_fraction : float;      (** fraction of client batches that are point reads *)
  scan_fraction : float;      (** fraction of client batches that are range scans *)
  storage : storage;          (** backend under the App state machine *)
  costs : costs;
  seed : int;
}

val default : t

val make :
  ?base:t ->
  ?z:int ->
  ?n:int ->
  ?batch_size:int ->
  ?client_inflight:int ->
  ?clients:int ->
  ?read_fraction:float ->
  ?scan_fraction:float ->
  ?storage:storage ->
  ?seed:int ->
  unit ->
  t

val storage_name : storage -> string
val storage_of_string : string -> storage option

(** {1 Client-group aggregation} *)

val group_population : t -> cluster:int -> int
(** Clients modeled by cluster [cluster]'s group: [clients/z] (+1 for
    the first [clients mod z] clusters), or the legacy 1000 when
    [clients] is 0. *)

val group_inflight : t -> cluster:int -> int
(** Outstanding batches the group keeps in flight:
    max(client_inflight, population/batch_size) — or exactly
    [client_inflight] when [clients] is 0 (the legacy model). *)

val client_id_stride : t -> int
(** Distance between consecutive groups' client-id bases (≥ the legacy
    10_000; wide enough that id ranges never overlap). *)

(** {1 Fault tolerance and quorums} *)

val f : t -> int
(** Byzantine replicas tolerated per cluster: (n-1)/3 (n > 3f). *)

val quorum : t -> int
(** n − f: the prepare/commit quorum. *)

val weak_quorum : t -> int
(** f + 1: guarantees at least one non-faulty member. *)

val share_fanout : t -> int
(** GeoBFT inter-cluster sharing fan-out (paper: f+1). *)

(** {1 Node layout} *)

val n_replicas : t -> int
val n_nodes : t -> int

val cluster_of_replica : t -> int -> int
val local_index : t -> int -> int
val replica_id : t -> cluster:int -> index:int -> int
val replicas_of_cluster : t -> int -> int list
val is_replica : t -> int -> bool

val client_node : t -> cluster:int -> int
val is_client : t -> int -> bool
val cluster_of_client : t -> int -> int
val cluster_of_node : t -> int -> int

val primary : t -> cluster:int -> view:int -> int
(** Round-robin primary of a cluster in a view, as in Pbft. *)

(** {1 Modeled CPU costs} *)

val sign_cost : t -> Time.t
val verify_cost : t -> Time.t
val mac_cost : t -> Time.t
val hash_cost : t -> bytes:int -> Time.t
val exec_cost : t -> txns:int -> Time.t
val batch_asm_cost : t -> Time.t
val threshold_partial_cost : t -> Time.t
val threshold_combine_cost : t -> Time.t

val cert_verify_cost : t -> Time.t
(** Verifying a commit certificate: n − f signature checks, or one
    threshold verification in threshold mode. *)

val cert_wire_sigs : t -> int
(** Signature entries a certificate carries on the wire. *)

val recv_floor_cost : t -> bytes:int -> Time.t
(** MAC check plus payload digest: the per-message floor at receivers. *)
