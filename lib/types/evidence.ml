(* Quorum-evidence extractor (DESIGN.md §13).

   Protocols call [note] at every quorum-gated decision point with the
   support they actually observed ([count]) and the quorum the
   *unmutated* configuration demands ([need]).  When the checker arms
   the extractor, any decision taken on insufficient support is
   recorded as a violation — this is what makes quorum-weakening
   mutations deterministically visible even though every honest
   replica applies the same (wrong) rule and never diverges.

   Disarmed (the default), [note] is a single load-and-branch; nothing
   allocates and no state accumulates.  Not domain-safe: armed only by
   the sequential checker and the test suite. *)

type entry = { point : string; node : int; count : int; need : int }

let armed = ref false
let entries : entry list ref = ref []

let arm () =
  armed := true;
  entries := []

let disarm () =
  armed := false;
  entries := []

let note ~point ~node ~count ~need =
  if !armed && count < need then entries := { point; node; count; need } :: !entries

let violations () = List.rev !entries

let entry_to_string e =
  Printf.sprintf "%s@node%d: decided on %d of %d required" e.point e.node e.count e.need
