open Import

(** A batch of client transactions — the unit of consensus (paper §3,
    "Request batching").  Batches are signed by the issuing client
    group; the digest covers id, cluster, origin and every transaction,
    so any tampering is detectable. *)

type memo
(** Verification memo (see {!verify}).  Keyed on the exact fields it
    covered, so a record copy with any field changed misses it. *)

type t = {
  id : int;                      (** globally unique batch id (< 0 for no-ops) *)
  cluster : int;                 (** cluster whose clients issued it *)
  origin : int;                  (** node id of the issuing client group *)
  txns : Txn.t array;
  created : Time.t;              (** submission time, for latency metrics *)
  signature : Schnorr.signature; (** client signature over the digest *)
  digest : string;               (** SHA-256 of the canonical payload *)
  mutable vmemo : memo option;   (** cached verification verdict *)
}

val create :
  keychain:Keychain.t ->
  id:int ->
  cluster:int ->
  origin:int ->
  txns:Txn.t array ->
  created:Time.t ->
  t
(** Build and sign a batch ([origin] must hold a key in [keychain]). *)

val noop :
  keychain:Keychain.t -> cluster:int -> origin:int -> created:Time.t -> nonce:int -> t
(** A no-op batch (paper §2.5): fills a consensus round when a cluster
    has no client requests.  Distinct nonces give distinct digests. *)

val is_noop : t -> bool

val noop_id_of_nonce : int -> int
(** The (negative) id a no-op with this nonce carries. *)

val size : t -> int
(** Number of transactions. *)

val read_only : t -> bool
(** True iff the batch carries at least one transaction and none of
    them writes — eligible for the read-path consensus bypass.
    No-ops and payload-stripped ledger copies are excluded. *)

val stripped : t -> bool
(** True iff this is a non-noop batch whose payload was dropped for
    ledger compactness: replaying it cannot reproduce state. *)

val digest_of : id:int -> cluster:int -> origin:int -> txns:Txn.t array -> string
(** The canonical digest (what {!create} signs). *)

val verify : keychain:Keychain.t -> t -> bool
(** Digest integrity plus the client signature; replicas discard
    batches failing this (§2.1).  Memoized per record: replicas verify
    the same immutable batch once per hop, so repeat verifications are
    O(1).  The memo is keyed on every verified field (physical identity
    for [txns]/[digest]/[signature]/keychain, value equality for the
    ids), so tampered copies are always re-verified from scratch. *)

val pp : Format.formatter -> t -> unit
