(* A client transaction: one YCSB operation against the replicated
   table.  The paper's evaluation uses write queries ("as those are
   typically more costly than read-only queries"); reads are supported
   for completeness and for the example applications. *)

type op = Read | Write | Scan

type t = {
  op : op;
  key : int;          (* row key in the YCSB table *)
  value : int64;      (* written value; ignored for reads *)
  client_id : int;    (* logical client that issued the txn *)
}

let make ?(op = Write) ~key ~value ~client_id () = { op; key; value; client_id }

(* Compact canonical serialization, used for digests and signatures.
   [serialize_into] appends the same bytes without the intermediate
   string — batches serialize ~100 transactions per digest, so the
   per-txn string was pure allocation overhead. *)
let serialize_into (b : Buffer.t) (t : t) : unit =
  Buffer.add_char b (match t.op with Read -> 'R' | Write -> 'W' | Scan -> 'S');
  Buffer.add_int64_le b (Int64.of_int t.key);
  Buffer.add_int64_le b t.value;
  Buffer.add_int32_le b (Int32.of_int t.client_id)

(* Scan length is carried in the low bits of [value] (the field is
   otherwise unused by reads): 1..64 rows starting at [key]. *)
let scan_len (t : t) = 1 + (Int64.to_int t.value land 63)

let serialize (t : t) : string =
  let b = Buffer.create 24 in
  serialize_into b t;
  Buffer.contents b

let pp fmt t =
  Format.fprintf fmt "%s(key=%d,val=%Ld,client=%d)"
    (match t.op with Read -> "read" | Write -> "write" | Scan -> "scan")
    t.key t.value t.client_id
