open Import

(* Commit certificates.

   A commit certificate [⟨T⟩c, ρ]_C proves that cluster C committed
   client request T in round ρ: it consists of the client request and
   n − f identical, signed commit messages from distinct replicas of C
   (paper §2.2).  Certificates are the only consensus artifact that
   crosses cluster boundaries in GeoBFT, and they are what makes ledger
   blocks tamper-proof (§3, "The ledger").

   The signed payload of each commit message binds (cluster, view,
   sequence number, batch digest), so a certificate for one batch can
   never be replayed for another. *)

type commit_sig = {
  replica : int;                  (* global node id of the signer *)
  signature : Schnorr.signature;
}

(* Verification memo, same discipline as [Batch.memo]: certificates are
   immutable and re-verified by every receiving replica (n − f Schnorr
   verifications each time).  The memo records the exact inputs covered
   — physical identity for the commit list and digest, value equality
   for the scalars and the quorum — so any copied-and-altered record
   (tampering tests, replay forgeries, a different quorum requirement)
   misses the cache and is verified in full. *)
type memo = {
  m_keychain : Keychain.t;
  m_commits : commit_sig list;
  m_digest : string;
  m_cluster : int;
  m_view : int;
  m_seq : int;
  m_quorum : int;
  m_ok : bool;
}

type t = {
  cluster : int;
  view : int;
  seq : int;                      (* local Pbft sequence = GeoBFT round *)
  digest : string;                (* batch digest the commits endorse *)
  commits : commit_sig list;      (* n − f distinct signers *)
  mutable vmemo : memo option;    (* cached verdict; copies self-invalidate *)
}

let commit_payload ~cluster ~view ~seq ~digest =
  Printf.sprintf "commit:%d:%d:%d:" cluster view seq ^ digest

(* Number of signatures a verifier must check; drives the modeled CPU
   cost of certificate verification. *)
let n_signatures t = List.length t.commits

let make ~cluster ~view ~seq ~digest ~commits =
  { cluster; view; seq; digest; commits; vmemo = None }

(* Full verification: enough distinct signers, every signature valid,
   all endorsing the same (cluster, view, seq, digest).  [quorum] is
   n − f for the signing cluster. *)
let verify ~keychain ~quorum (t : t) : bool =
  match t.vmemo with
  | Some m
    when m.m_keychain == keychain && m.m_commits == t.commits && m.m_digest == t.digest
         && m.m_cluster = t.cluster && m.m_view = t.view && m.m_seq = t.seq
         && m.m_quorum = quorum ->
      m.m_ok
  | _ ->
      let payload =
        commit_payload ~cluster:t.cluster ~view:t.view ~seq:t.seq ~digest:t.digest
      in
      let signers = List.sort_uniq compare (List.map (fun c -> c.replica) t.commits) in
      let ok =
        List.length signers >= quorum
        && List.length signers = List.length t.commits
        && List.for_all
             (fun c -> Keychain.verify keychain ~signer:c.replica payload c.signature)
             t.commits
      in
      t.vmemo <-
        Some
          {
            m_keychain = keychain;
            m_commits = t.commits;
            m_digest = t.digest;
            m_cluster = t.cluster;
            m_view = t.view;
            m_seq = t.seq;
            m_quorum = quorum;
            m_ok = ok;
          };
      ok

let pp fmt t =
  Format.fprintf fmt "cert[c%d v%d seq%d %d sigs]" t.cluster t.view t.seq (n_signatures t)
