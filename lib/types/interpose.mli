(** Adversarial send/receive interposition (DESIGN.md §14).

    Protocols export a {!view} (message classification + conflicting
    payload forgery); the adversary runtime compiles Byzantine strategy
    programs against it and installs the resulting hook pair {!t} at
    the deployment's network edge.  Uninstalled hooks cost one option
    match per send — the zero-overhead-when-off contract shared with
    tracing and the schedule-exploration hook. *)

open Import

type cls =
  | Proposal  (** leader/primary proposals: pre-prepares, order-reqs *)
  | Vote  (** per-replica agreement votes: prepares, commits, accepts *)
  | Share
      (** certificate or certificate-share traffic: global shares, QCs,
          threshold-signature partials *)
  | View_change  (** local and remote view-change machinery *)
  | Sync  (** checkpointing, state transfer, catch-up fetches *)
  | Client  (** client requests, forwards and replies *)
  | Other

val cls_to_string : cls -> string
val cls_of_string : string -> cls option
val all_classes : cls list

type 'm view = {
  classify : 'm -> cls;
  conflict : keychain:Keychain.t -> nonce:int -> 'm -> 'm option;
      (** A validly-signed payload conflicting with the argument (same
          slot, different content), for protocols where modelling
          equivocation is sound; [None] where it is not.  [nonce]
          differentiates forgeries across proposals deterministically. *)
}

type 'm emission = { after : Time.t; emit : 'm }
(** One adversarial emission: payload plus extra sender-side delay
    applied before the bandwidth/latency model. *)

val pass : 'm -> 'm emission list
(** The identity emission list: the message, undelayed. *)

type 'm t = {
  obtrude : src:int -> dst:int -> 'm -> 'm emission list;
      (** Send side: [[]] silences, [after > 0] delays, a tampered
          payload equivocates, extra elements replay. *)
  admit : src:int -> dst:int -> 'm -> bool;
      (** Receive side: [false] = the corrupted receiver ignores [src]. *)
}
