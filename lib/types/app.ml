(* The state-machine execution interface (the App).

   This is the seam between consensus and storage: protocols order
   batches, the fabric hands each ordered batch to the replica's App,
   and the App returns a per-batch execution result whose digest the
   replica puts in its client reply.  Clients then require f+1
   *matching result digests* — agreement on what was executed, not
   just on how many replicas replied.

   The record-of-closures shape (rather than a functor) keeps the
   fabric and the five protocol libraries independent of any concrete
   storage backend: `lib/storage` builds these records over its
   pluggable backends, and tests can build stub Apps directly. *)

type result = {
  digest : string;  (* SHA-256 over the batch digest + every txn's result value *)
  reads : int;      (* point reads executed in this batch *)
  writes : int;     (* writes applied *)
  scans : int;      (* range scans executed *)
  scanned_rows : int;  (* rows touched by those scans *)
}

(* A full-state snapshot at a height boundary: the state string
   reproduces the store exactly as it was after applying blocks
   [0, height).  Carried by the recovery protocols' state-transfer
   messages when ledger payloads are stripped, and written to disk by
   the persistent backend at checkpoint boundaries. *)
type snapshot = { height : int; state : string }

type t = {
  apply : Batch.t -> result;
      (* Execute the next ordered batch, advancing the state machine by
         one height.  Must be called in ledger order. *)
  read : Batch.t -> result;
      (* Execute a read-only batch against current state without
         advancing the height (the consensus-bypass read path). *)
  height : unit -> int;  (* batches applied so far *)
  state_digest : unit -> string;  (* SHA-256 over the full state; O(n) *)
  snapshot : unit -> snapshot;
  restore : snapshot -> unit;
      (* Install a snapshot.  Restores only ratchet forward: a snapshot
         at or below the current height is ignored, so a late-arriving
         state transfer can never rewind a replica that progressed. *)
  reads : unit -> int;   (* cumulative op counters, all batches *)
  writes : unit -> int;
  scans : unit -> int;
  close : unit -> unit;  (* release backend resources (files) *)
}
