(* Test-only protocol mutations for checker validation (DESIGN.md §13).

   Each protocol guards a handful of deliberately-wrong code paths
   behind [is "<id>"]; the schedule-exploration checker (lib/check)
   must catch every one of them.  The active mutation is a plain
   global: mutations are only ever armed by the sequential checker and
   the test suite, never by the multicore sweep engine, and the [None]
   fast path keeps unmutated runs at one load per site. *)

let active_id : string option ref = ref None

let set id = active_id := id
let active () = !active_id

let is id = match !active_id with None -> false | Some a -> String.equal a id

let known =
  [
    "pbft-prepare-quorum";
    "pbft-commit-quorum";
    "zyzzyva-spec-history";
    "hotstuff-qc-quorum";
    "geobft-rvc-weak";
    "geobft-share-stale";
    "steward-certify-quorum";
  ]
