(* Wire-size model.

   The simulator does not serialize protocol messages onto the network
   (payloads travel as OCaml values), but the *sizes* that enter the
   bandwidth model are explicit and calibrated from §4 of the paper:

     "With a batch size of 100, the messages have sizes of 5.4 kB
      (preprepare), 6.4 kB (commit certificates containing seven commit
      messages and a preprepare message), 1.5 kB (client responses),
      and 250 B (other messages)."

   From those four data points:
     preprepare(b)   = header + per_txn * b          (5.4 kB at b=100)
     certificate(b,k)= preprepare(b) + k * commit_entry  (6.4 kB at k=7)
     response(b)     = header + per_result * b       (1.5 kB at b=100)
     small           = 250 B. *)

let header_bytes = 200
let per_txn_bytes = 52          (* 200 + 52*100 = 5400 *)
let commit_entry_bytes = 143    (* 5400 + 7*143 ≈ 6400 *)
let per_result_bytes = 13       (* 200 + 13*100 = 1500 *)
let small_bytes = 250

(* A batch/client-request/preprepare carrying [batch_size] txns. *)
let batch_bytes ~batch_size = header_bytes + (per_txn_bytes * batch_size)

let preprepare_bytes = batch_bytes

(* Commit certificate: embedded pre-prepare (with the request) plus one
   signed commit entry per certificate signature. *)
let certificate_bytes ~batch_size ~sigs = batch_bytes ~batch_size + (commit_entry_bytes * sigs)

let response_bytes ~batch_size = header_bytes + (per_result_bytes * batch_size)

(* Prepare, commit, checkpoint, view-change votes, acks, ... *)
let small = small_bytes

(* View-change messages carry prepared certificates for in-flight
   sequence numbers; size grows with how much state is carried. *)
let view_change_bytes ~batch_size ~prepared = small_bytes + (prepared * certificate_bytes ~batch_size ~sigs:0)

(* Recovery traffic (lib/recovery).  A fetch names a watermark or a
   list of sequence numbers — it is a small control message.  A
   snapshot reply carries the stable-checkpoint certificate (one
   signed digest per quorum member) plus the missing ledger suffix:
   each block ships its batch and, when retained, its commit
   certificate. *)
let fetch_bytes = small_bytes

let snapshot_bytes ~batch_size ~sigs ~blocks =
  header_bytes + (sigs * commit_entry_bytes)
  + (blocks * certificate_bytes ~batch_size ~sigs)

(* A single filled batch served during hole-filling catch-up: the
   batch plus its certificate. *)
let fill_bytes ~batch_size ~sigs = certificate_bytes ~batch_size ~sigs
