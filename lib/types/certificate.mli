open Import

(** Commit certificates: the proof [⟨T⟩c, ρ]_C that cluster [C]
    committed a batch in round [ρ] — n − f signed commit messages from
    distinct replicas (paper §2.2).  The only consensus artifact that
    crosses cluster boundaries in GeoBFT, and what makes ledger blocks
    tamper-proof (§3). *)

type commit_sig = { replica : int; signature : Schnorr.signature }

type memo
(** Verification memo (see {!verify}); keyed on the exact fields and
    quorum it covered, so altered copies miss it. *)

type t = {
  cluster : int;
  view : int;
  seq : int;              (** local Pbft sequence = GeoBFT round *)
  digest : string;        (** batch digest the commits endorse *)
  commits : commit_sig list;
  mutable vmemo : memo option;  (** cached verification verdict *)
}

val commit_payload : cluster:int -> view:int -> seq:int -> digest:string -> string
(** The signed payload of one commit message: binds cluster, view,
    sequence number and batch digest, preventing replays. *)

val make :
  cluster:int -> view:int -> seq:int -> digest:string -> commits:commit_sig list -> t

val n_signatures : t -> int
(** Signatures a verifier must check (drives the modeled CPU cost). *)

val verify : keychain:Keychain.t -> quorum:int -> t -> bool
(** At least [quorum] distinct signers, no duplicates, every signature
    valid over the same payload.  Memoized per record (certificates are
    re-verified by every receiving replica); the memo keys on all
    verified fields plus [quorum], so altered copies or a different
    quorum requirement trigger full re-verification. *)

val pp : Format.formatter -> t -> unit
