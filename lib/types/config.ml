open Import

(* Deployment configuration shared by every protocol and the fabric.

   Replica layout (matching the experiments in §4): z clusters of n
   replicas; cluster c occupies region c; replica i of cluster c has
   global node id c*n + i; the client group of cluster c is node
   z*n + c, co-located with its cluster.  Within a cluster, replica
   identifiers id(R) ∈ 1..n of the paper map to local indices 0..n-1. *)

type costs = {
  sign_us : float;          (* ED25519-class signature generation *)
  verify_us : float;        (* ED25519-class signature verification *)
  mac_us : float;           (* AES-CMAC generate or verify *)
  hash_us_per_kb : float;   (* SHA-256 digest throughput *)
  exec_us_per_txn : float;  (* YCSB write against the table, ledger append *)
  batch_asm_us : float;     (* batch assembly on the batching thread *)
  (* Steward's threshold-RSA primitives (Amir et al.): partial
     signature generation per replica and share combination at the
     representative.  RSA-class, orders of magnitude above ED25519. *)
  threshold_partial_us : float;
  threshold_combine_us : float;
}

(* Defaults are Skylake-class figures for the primitives the paper
   names (ED25519, AES-CMAC, SHA256 via Crypto++). *)
let default_costs =
  {
    sign_us = 45.0;
    verify_us = 120.0;
    mac_us = 1.5;
    hash_us_per_kb = 3.0;
    exec_us_per_txn = 10.0;
    batch_asm_us = 120.0;
    threshold_partial_us = 4_000.0;
    threshold_combine_us = 9_000.0;
  }

(* Storage backend under each replica's App state machine: the
   in-memory Bigarray table, or the append-only persistent block store
   (file-backed log + periodic state snapshots, recovery-on-restart).
   Both are deterministic: same batch sequence, same state digest. *)
type storage = Memory | Disk

type t = {
  z : int;                    (* number of clusters (regions) *)
  n : int;                    (* replicas per cluster *)
  batch_size : int;           (* transactions per batch *)
  checkpoint_interval : int;  (* Pbft checkpoint period, in sequence numbers *)
  pipeline_depth : int;       (* max in-flight local consensus instances *)
  local_timeout_ms : float;   (* Pbft view-change timer *)
  remote_timeout_ms : float;  (* GeoBFT remote failure-detection timer *)
  client_inflight : int;      (* outstanding batches per client group *)
  client_timeout_ms : float;  (* client retransmission timer *)
  (* Aggregate client population across the whole deployment, split
     evenly over the z per-cluster client groups.  0 (the default)
     keeps the legacy closed-loop model: [client_inflight] outstanding
     batches per group over a 1000-client id space.  A positive value
     models that many real clients as aggregated groups — each group
     draws client ids from a population of [clients/z], and keeps
     max(client_inflight, population/batch_size) batches outstanding
     (every aggregated client has one request in flight, packed
     [batch_size] to a batch).  Group work stays one event per batch
     tick regardless of population, which is what lets a sweep
     represent millions of clients (10x the paper's 160k). *)
  clients : int;
  (* Effective aggregate WAN egress of one machine (all cross-region
     flows of a node share this pipe, in series with the per-region
     Table 1 pipes).  Table 1 reports per-flow bandwidth; a single VM
     fanning out to dozens of WAN peers does not achieve the sum of
     per-flow rates.  Calibrated so the single-primary baselines
     (Pbft/Zyzzyva) reproduce the paper's throughput ceiling. *)
  wan_egress_mbps : float;
  (* GeoBFT global-sharing fan-out: replicas contacted per remote
     cluster.  0 means the paper's f+1 (Figure 5); other values exist
     for the ablation study (1 = minimal but not failure-detectable,
     n = broadcast as non-optimized protocols do). *)
  geobft_fanout : int;
  (* §2.2: "Optionally, GeoBFT can use threshold signatures to
     represent these n−f signatures via a single constant-sized
     threshold signature."  When true, commit certificates carry one
     aggregate signature: constant wire size and a single verification
     (at threshold-crypto cost) instead of n − f of each. *)
  threshold_certs : bool;
  (* YCSB workload mix: fraction of client batches that are read-only
     (point reads) and range scans.  The remainder are write batches.
     Classes are drawn per batch, not per transaction, so read-only
     batches exist as units the read-path bypass can serve.  Both 0 by
     default — the paper's evaluation is write-only — and the RNG draw
     stream is unchanged when both are 0. *)
  read_fraction : float;
  scan_fraction : float;
  storage : storage;
  costs : costs;
  seed : int;
}

let default =
  {
    z = 4;
    n = 7;
    batch_size = 100;
    checkpoint_interval = 600;
    pipeline_depth = 32;
    local_timeout_ms = 2_000.0;
    remote_timeout_ms = 4_000.0;
    client_inflight = 64;
    (* Above any healthy-path commit latency, but short enough that a
       request lost to a crashed primary is re-broadcast (waking the
       backup-forward / censorship-timer machinery) well before the
       chaos monitor's liveness window expires. *)
    client_timeout_ms = 3_000.0;
    clients = 0;
    wan_egress_mbps = 350.0;
    geobft_fanout = 0;
    threshold_certs = false;
    read_fraction = 0.0;
    scan_fraction = 0.0;
    storage = Memory;
    costs = default_costs;
    seed = 1;
  }

let make ?(base = default) ?z ?n ?batch_size ?client_inflight ?clients ?read_fraction
    ?scan_fraction ?storage ?seed () =
  let get o d = Option.value o ~default:d in
  {
    base with
    z = get z base.z;
    n = get n base.n;
    batch_size = get batch_size base.batch_size;
    client_inflight = get client_inflight base.client_inflight;
    clients = get clients base.clients;
    read_fraction = get read_fraction base.read_fraction;
    scan_fraction = get scan_fraction base.scan_fraction;
    storage = get storage base.storage;
    seed = get seed base.seed;
  }

(* -- client-group aggregation ------------------------------------------ *)

(* Per-cluster client population: [clients] split evenly over the z
   groups, remainder to the lowest-numbered clusters.  The legacy model
   (clients = 0) keeps the historical 1000-client id space per group. *)
let group_population t ~cluster =
  if t.clients <= 0 then 1000
  else (t.clients / t.z) + (if cluster < t.clients mod t.z then 1 else 0)

(* Stride between per-cluster client-id bases: at least the legacy
   10_000 (so clients = 0 and populations up to 10k produce the same
   ids the legacy model did), and always wide enough that no two
   groups' id ranges overlap. *)
let client_id_stride t =
  let pop_max = if t.clients <= 0 then 1000 else (t.clients / t.z) + 1 in
  max 10_000 pop_max

(* Outstanding batches an aggregated client group keeps in flight: each
   modeled client has one request outstanding and [batch_size] of them
   share a batch, so population/batch_size batches are in the system on
   the group's behalf.  The configured [client_inflight] is the floor,
   so small populations keep the saturating closed-loop model.
   [clients = 0] is *exactly* the legacy model — the configured
   inflight, never the population-derived one — which is what keeps
   every pre-existing pinned digest and baseline byte-identical. *)
let group_inflight t ~cluster =
  if t.clients <= 0 then t.client_inflight
  else max t.client_inflight (group_population t ~cluster / max 1 t.batch_size)

let storage_name = function Memory -> "mem" | Disk -> "disk"
let storage_of_string = function
  | "mem" | "memory" -> Some Memory
  | "disk" -> Some Disk
  | _ -> None

(* Maximum Byzantine replicas per cluster: n > 3f. *)
let f t = (t.n - 1) / 3

let n_replicas t = t.z * t.n
let n_nodes t = (t.z * t.n) + t.z (* replicas + one client group per cluster *)

(* -- Node layout ------------------------------------------------------ *)

let cluster_of_replica t node = node / t.n
let local_index t node = node mod t.n
let replica_id t ~cluster ~index = (cluster * t.n) + index
let replicas_of_cluster t cluster = List.init t.n (fun i -> (cluster * t.n) + i)
let is_replica t node = node < n_replicas t

let client_node t ~cluster = (t.z * t.n) + cluster
let is_client t node = node >= n_replicas t && node < n_nodes t
let cluster_of_client t node = node - n_replicas t

let cluster_of_node t node =
  if is_replica t node then cluster_of_replica t node else cluster_of_client t node

(* Primary of [cluster] in view [view]: round-robin over local indices,
   as in Pbft. *)
let primary t ~cluster ~view = replica_id t ~cluster ~index:(view mod t.n)

(* -- Quorums ---------------------------------------------------------- *)

let quorum t = t.n - f t          (* n − f: prepare/commit quorum *)
let weak_quorum t = f t + 1       (* f + 1: at least one non-faulty *)

(* GeoBFT inter-cluster sharing fan-out (paper: f+1). *)
let share_fanout t = if t.geobft_fanout <= 0 then weak_quorum t else min t.geobft_fanout t.n

(* -- Cost helpers ------------------------------------------------------ *)

(* The scalar (config-constant) costs are charged on every message hop,
   so the float->ns conversions are memoized per config.  The slot is
   domain-local: one config is in play per running deployment, and each
   domain (sweep worker or shard executor) fills its own slot once, so
   there is no cross-domain contention and no synchronization. *)
type cost_tab = {
  c_cfg : t; (* physical identity of the config this table was built for *)
  c_sign : Time.t;
  c_verify : Time.t;
  c_mac : Time.t;
  c_batch_asm : Time.t;
  c_cert_verify : Time.t;
  c_thresh_partial : Time.t;
  c_thresh_combine : Time.t;
}

let cost_tab_slot : cost_tab option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let cost_tab t =
  let slot = Domain.DLS.get cost_tab_slot in
  match !slot with
  | Some tab when tab.c_cfg == t -> tab
  | _ ->
      let tab =
        {
          c_cfg = t;
          c_sign = Time.of_us_f t.costs.sign_us;
          c_verify = Time.of_us_f t.costs.verify_us;
          c_mac = Time.of_us_f t.costs.mac_us;
          c_batch_asm = Time.of_us_f t.costs.batch_asm_us;
          (* Verification of a commit certificate: one signature check
             per certificate entry (n − f of them), or a single
             threshold-signature verification when threshold
             certificates are enabled (§2.2).  A threshold verify is
             RSA-class, costed like a combine check. *)
          c_cert_verify =
            (if t.threshold_certs then Time.of_us_f (2. *. t.costs.verify_us)
             else Time.of_us_f (t.costs.verify_us *. float_of_int (quorum t)));
          c_thresh_partial = Time.of_us_f t.costs.threshold_partial_us;
          c_thresh_combine = Time.of_us_f t.costs.threshold_combine_us;
        }
      in
      slot := Some tab;
      tab

let sign_cost t = (cost_tab t).c_sign
let verify_cost t = (cost_tab t).c_verify
let mac_cost t = (cost_tab t).c_mac
let hash_cost t ~bytes = Time.of_us_f (t.costs.hash_us_per_kb *. (float_of_int bytes /. 1024.))
let exec_cost t ~txns = Time.of_us_f (t.costs.exec_us_per_txn *. float_of_int txns)
let batch_asm_cost t = (cost_tab t).c_batch_asm
let cert_verify_cost t = (cost_tab t).c_cert_verify

(* Certificate entries carried on the wire: n − f individual commit
   signatures, or one constant-size aggregate. *)
let cert_wire_sigs t = if t.threshold_certs then 1 else quorum t

(* MAC check plus digest of a payload of [bytes]: the per-message floor
   charged to a receiver's worker thread. *)
let recv_floor_cost t ~bytes = Time.add (mac_cost t) (hash_cost t ~bytes)

let threshold_partial_cost t = (cost_tab t).c_thresh_partial
let threshold_combine_cost t = (cost_tab t).c_thresh_combine
