open Import

(** The capability record handed to every replica and client agent.

    Protocols never touch the engine, network or CPU model directly:
    everything flows through this record, built per node by the fabric.
    This keeps protocol code substrate-independent and makes the
    charging of CPU/network costs uniform and auditable.

    Conventions:
    - [send] declares the wire [size] (for the bandwidth model) and the
      receiver-side verification cost [vcost] (charged to the
      receiver's input threads before its handler runs);
    - sender-side CPU (signing, certificate construction, batch
      assembly) is charged explicitly with [charge];
    - [execute] is the single "this batch is ordered" entry point: the
      fabric charges the execute thread, applies the transactions to
      the node's {!App} state machine, appends a ledger block, then
      calls [on_done] with the execution result so the protocol can put
      the result digest in its client reply ([None]: appended but not
      applied — snapshot already past this height, or payload
      stripped; skip the reply);
    - [read_execute] serves a read-only batch from current replica
      state, bypassing consensus and the ledger;
    - [state_snapshot]/[app_restore] move real state during recovery
      when ledger payloads are stripped; restores only ratchet forward;
    - [complete] is used by client agents to signal a finished batch. *)

type timer = Engine.timer

type 'm t = {
  id : int;                        (** this node's global id *)
  config : Config.t;
  keychain : Keychain.t;
  rng : Rng.t;
  now : unit -> Time.t;
  send : dst:int -> size:int -> vcost:Time.t -> 'm -> unit;
  bcast : dsts:int list -> size:int -> vcost:Time.t -> 'm -> unit;
      (** One message to many recipients (in list order).  Semantically
          identical to folding [send] over [dsts]; the fabric binds it
          to the network's pooled fan-out so an n-recipient broadcast
          costs one event-queue record instead of n.  Call through
          {!multicast}. *)
  charge : stage:Cpu.stage -> cost:Time.t -> (unit -> unit) -> unit;
  set_timer : delay:Time.t -> (unit -> unit) -> timer;
  cancel_timer : timer -> unit;
  execute :
    Batch.t -> cert:Certificate.t option -> on_done:(App.result option -> unit) -> unit;
  read_execute : Batch.t -> on_done:(App.result -> unit) -> unit;
  state_snapshot : unit -> App.snapshot option;
      (** [Some] only when ledger payloads are stripped; [None] when
          the served ledger suffix alone can rebuild state. *)
  app_restore : App.snapshot -> unit;
  ledger_read : height:int -> (Batch.t * Certificate.t option) list;
      (** This node's own ledger suffix from [height] upward — what a
          peer serves during checkpoint state transfer.  [] at client
          agents. *)
  complete : Batch.t -> unit;
  trace : string Lazy.t -> unit;   (** debug trace hook *)
  phase : key:int -> name:string -> unit;
      (** Structured phase probe: replicas mark consensus-phase
          transitions (propose / prepare / commit / certify-share /
          execute) for slot [key].  Bound by the fabric to the run's
          tracer ({!Rdb_trace.Trace.phase_mark}) or to a no-op when
          tracing is off — marking must stay cheap enough to leave in
          the hot path unconditionally. *)
}

val multicast : 'm t -> dsts:int list -> size:int -> vcost:Time.t -> 'm -> unit

val map_send : ('a -> 'b) -> 'b t -> 'a t
(** Restrict a context to an embedded sub-protocol speaking its own
    message type (e.g. the Pbft engine inside GeoBFT): sends are mapped
    through the injection into the outer wire type. *)
