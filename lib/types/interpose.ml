open Import

(* Adversarial send/receive interposition (DESIGN.md §14).

   A Byzantine strategy needs two things from a protocol: a coarse
   *classification* of its wire messages (so a generic primitive like
   "withhold certificate shares" can name a phase without knowing the
   concrete constructors), and — for equivocation — a way to forge a
   *conflicting* payload that is well-formed enough to pass receiver
   validation.  Each protocol exports both as a [view] value; the
   adversary runtime (lib/adversary) compiles strategy programs against
   it and installs the resulting [t] at the deployment's network edge.

   The hooks are pure with respect to the simulation: silencing,
   delaying, tampering and replaying all happen *before* the bandwidth
   and latency models, exactly as if the corrupted sender had behaved
   that way.  An uninstalled hook costs one option match per send. *)

(* Message classes, the phase vocabulary of strategy primitives.  The
   mapping is the protocol's own judgement call (documented at each
   [adversary] value); [Other] is the explicit "none of the above". *)
type cls =
  | Proposal  (** leader/primary proposals: pre-prepares, order-reqs *)
  | Vote  (** per-replica agreement votes: prepares, commits, accepts *)
  | Share  (** certificate or certificate-share traffic: global shares, QCs, partial signatures *)
  | View_change  (** local and remote view-change machinery *)
  | Sync  (** checkpointing, state transfer, catch-up fetches *)
  | Client  (** client requests, forwards and replies *)
  | Other

let cls_to_string = function
  | Proposal -> "prop"
  | Vote -> "vote"
  | Share -> "share"
  | View_change -> "vc"
  | Sync -> "sync"
  | Client -> "client"
  | Other -> "other"

let cls_of_string = function
  | "prop" -> Some Proposal
  | "vote" -> Some Vote
  | "share" -> Some Share
  | "vc" -> Some View_change
  | "sync" -> Some Sync
  | "client" -> Some Client
  | "other" -> Some Other
  | _ -> None

let all_classes = [ Proposal; Vote; Share; View_change; Sync; Client; Other ]

(* The per-protocol adversarial view.  [conflict] returns a payload
   that *conflicts* with [m] (same slot, different content, validly
   signed via [keychain]) for protocols where the equivocation
   primitive is sound to model, and [None] otherwise; [nonce] makes
   distinct forgeries for distinct proposals while keeping the forgery
   deterministic. *)
type 'm view = {
  classify : 'm -> cls;
  conflict : keychain:Keychain.t -> nonce:int -> 'm -> 'm option;
}

(* One adversarial emission: the (possibly tampered) payload and an
   extra sender-side delay before it enters the network model. *)
type 'm emission = { after : Time.t; emit : 'm }

let pass m = [ { after = Time.zero; emit = m } ]

(* The installed hook pair.  [obtrude] maps every outgoing message of a
   corrupted sender to the list of emissions that actually happen: []
   is targeted silence, a singleton with [after > 0] is delayed or
   slow-drip sending, a tampered payload is equivocation, and extra
   elements are replays.  [admit] is the receive side: [false] means
   the (corrupted) receiver pretends not to have heard [src]. *)
type 'm t = {
  obtrude : src:int -> dst:int -> 'm -> 'm emission list;
  admit : src:int -> dst:int -> 'm -> bool;
}
