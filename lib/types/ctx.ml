open Import

(* The capability record handed to every replica and client agent.

   Protocol implementations never touch the engine, the network or the
   CPU model directly: everything flows through this record, which the
   fabric constructs per node.  That keeps protocol code independent of
   the substrate (the test suite also instantiates protocols over a
   loopback harness) and makes the charging of CPU/network costs
   uniform and auditable.

   Conventions:
   - [send] declares the wire [size] (bandwidth model) and the
     receiver-side verification cost [vcost] (charged to the receiver's
     worker thread before its handler runs).
   - Sender-side CPU (signing, certificate construction, batch
     assembly) is charged explicitly with [charge]; continuations fire
     when the stage completes.
   - [execute] is the single entry point for "this batch is ordered":
     the fabric charges the execute thread, applies the transactions to
     the node's App state machine, appends a ledger block, and then
     calls [on_done] with the execution result so the protocol can put
     the result digest in its client reply.  [on_done None] means the
     batch was appended to the ledger but not applied to state — the
     App was already past this height (a state snapshot was installed)
     or the payload was stripped; the protocol then skips its reply and
     lets up-to-date replicas answer.
   - [read_execute] serves a read-only batch from current replica state
     without consensus and without touching the ledger.
   - [state_snapshot]/[app_restore] are the recovery seam: a serving
     replica attaches its App snapshot to state-transfer messages when
     ledger payloads are stripped (replay alone cannot rebuild state),
     and the recovering replica installs it.  Restores only ratchet
     forward (App.restore), so any interleaving with in-flight
     executes is safe. *)

type timer = Engine.timer

type 'm t = {
  id : int;                                  (* this node's global id *)
  config : Config.t;
  keychain : Keychain.t;
  rng : Rng.t;
  now : unit -> Time.t;
  send : dst:int -> size:int -> vcost:Time.t -> 'm -> unit;
  (* One message to many recipients (in list order).  Semantically
     identical to folding [send] over [dsts]; the fabric binds it to
     the network's pooled fan-out so an n-recipient broadcast costs one
     event-queue record instead of n (the large-topology send path). *)
  bcast : dsts:int list -> size:int -> vcost:Time.t -> 'm -> unit;
  charge : stage:Cpu.stage -> cost:Time.t -> (unit -> unit) -> unit;
  set_timer : delay:Time.t -> (unit -> unit) -> timer;
  cancel_timer : timer -> unit;
  execute :
    Batch.t -> cert:Certificate.t option -> on_done:(App.result option -> unit) -> unit;
  read_execute : Batch.t -> on_done:(App.result -> unit) -> unit;
  state_snapshot : unit -> App.snapshot option;
  (* [Some] only when ledger payloads are stripped (replay cannot
     rebuild state); [None] when the ledger suffix alone suffices. *)
  app_restore : App.snapshot -> unit;
  (* Read this node's own ledger suffix from [height] upward: the
     source material a peer serves during checkpoint state transfer.
     Client agents have no ledger and always read []. *)
  ledger_read : height:int -> (Batch.t * Certificate.t option) list;
  complete : Batch.t -> unit;                (* client agents: batch done *)
  trace : (string Lazy.t -> unit);           (* debug trace hook *)
  (* Structured phase probe: replicas mark consensus-phase transitions
     (propose / prepare / commit / certify-share / execute) per slot
     [key]; the fabric binds it to the run's tracer, or to a no-op when
     tracing is off.  See Rdb_trace.Trace.phase_mark. *)
  phase : key:int -> name:string -> unit;
}

let multicast t ~dsts ~size ~vcost msg = t.bcast ~dsts ~size ~vcost msg

(* Restrict a context to an embedded sub-protocol speaking its own
   message type (e.g. the Pbft engine inside GeoBFT): sends are mapped
   through [inject] into the outer wire type. *)
let map_send (inject : 'a -> 'b) (t : 'b t) : 'a t =
  {
    id = t.id;
    config = t.config;
    keychain = t.keychain;
    rng = t.rng;
    now = t.now;
    send = (fun ~dst ~size ~vcost m -> t.send ~dst ~size ~vcost (inject m));
    bcast = (fun ~dsts ~size ~vcost m -> t.bcast ~dsts ~size ~vcost (inject m));
    charge = t.charge;
    set_timer = t.set_timer;
    cancel_timer = t.cancel_timer;
    execute = t.execute;
    read_execute = t.read_execute;
    state_snapshot = t.state_snapshot;
    app_restore = t.app_restore;
    ledger_read = t.ledger_read;
    complete = t.complete;
    trace = t.trace;
    phase = t.phase;
  }
