(** Generic client-agent logic: submit a batch, collect replies, accept
    at [threshold] matching results (f+1 per §2.4: at least one of f+1
    identical responses is from a non-faulty replica), retransmit on
    timeout.  Zyzzyva layers its richer client protocol on top of its
    own state instead. *)

type 'm t

val create :
  ctx:'m Ctx.t ->
  threshold:int ->
  ?transmit_read:(Batch.t -> unit) ->
  transmit:(retry:bool -> Batch.t -> unit) ->
  unit ->
  'm t
(** [transmit ~retry batch] performs the actual send; [retry] is true
    on retransmissions (protocols typically broadcast then).
    [transmit_read], when given, carries the first transmission of a
    read-only batch (the consensus-bypass read path); a timeout falls
    back onto [transmit ~retry:true], so reads stay live even when
    replica states disagree at the threshold. *)

val submit : 'm t -> Batch.t -> unit
(** Register and transmit; duplicate ids are ignored. *)

val on_reply : 'm t -> src:int -> batch_id:int -> result_digest:string -> unit
(** Record a reply; at [threshold] matching digests the batch completes
    via [Ctx.complete] and its timer is cancelled. *)

val inflight_count : 'm t -> int
val submitted : 'm t -> int
val completed : 'm t -> int
val retransmits : 'm t -> int

val read_fallbacks : 'm t -> int
(** Bypass reads that timed out and were re-ordered through consensus. *)
