open Import

(* A batch of client transactions — the unit of consensus.

   Clients group requests into batches (paper §3, "Request batching");
   the consensus protocols order whole batches, so the cost of one
   consensus decision is shared by every transaction in it.  A batch is
   signed by the issuing client group, which is the digital signature
   the protocols forward and verify (§2.1: "we sign these messages
   using digital signatures ... client requests and commit messages"). *)

(* Verification memo.  A batch record is immutable once built, but every
   receiving replica re-verifies it — re-serializing ~100 transactions
   and hashing ~5 kB per hop, which profiling shows dominates whole-run
   CPU.  The memo caches the last verdict together with the *exact*
   inputs it covered: physical identity ([==]) for the heavyweight
   fields, value equality for the scalars.  Any record copy with a field
   changed (tampering tests, payload stripping, forgeries) misses the
   memo and is verified from scratch, so the cache can never launder an
   invalid batch.  Under domain-parallel runs concurrent writes are a
   benign race: both domains store the same deterministic verdict. *)
type memo = {
  m_keychain : Keychain.t;
  m_txns : Txn.t array;
  m_digest : string;
  m_signature : Schnorr.signature;
  m_id : int;
  m_cluster : int;
  m_origin : int;
  m_ok : bool;
}

type t = {
  id : int;                    (* globally unique batch id *)
  cluster : int;               (* cluster whose clients issued it *)
  origin : int;                (* node id of the issuing client group *)
  txns : Txn.t array;
  created : Time.t;            (* submission time, for latency metrics *)
  signature : Schnorr.signature; (* client signature over the digest *)
  digest : string;             (* SHA-256 of the serialized payload *)
  mutable vmemo : memo option; (* see above; copied memos self-invalidate *)
}

(* No-op batches (paper §2.5): proposed by a primary when its cluster
   has no client requests for a round, so other clusters do not stall.
   Negative ids mark no-ops; the nonce keeps distinct no-op rounds
   distinguishable (distinct digests). *)
let noop_id_of_nonce nonce = -(nonce + 1)

let serialize_payload ~id ~cluster ~origin ~(txns : Txn.t array) : string =
  let b = Buffer.create (24 * (Array.length txns + 1)) in
  Buffer.add_int64_le b (Int64.of_int id);
  Buffer.add_int32_le b (Int32.of_int cluster);
  Buffer.add_int32_le b (Int32.of_int origin);
  Array.iter (fun t -> Txn.serialize_into b t) txns;
  Buffer.contents b

let digest_of ~id ~cluster ~origin ~txns =
  Sha256.digest (serialize_payload ~id ~cluster ~origin ~txns)

let create ~keychain ~id ~cluster ~origin ~txns ~created =
  let digest = digest_of ~id ~cluster ~origin ~txns in
  let signature = Keychain.sign keychain ~signer:origin digest in
  { id; cluster; origin; txns; created; signature; digest; vmemo = None }

let noop ~keychain ~cluster ~origin ~created ~nonce =
  let txns = [||] in
  let id = noop_id_of_nonce nonce in
  let digest = digest_of ~id ~cluster ~origin ~txns in
  let signature = Keychain.sign keychain ~signer:origin digest in
  { id; cluster; origin; txns; created; signature; digest; vmemo = None }

let is_noop t = t.id < 0
let size t = Array.length t.txns

(* A batch whose transactions touch no state: eligible for the
   read-path consensus bypass (served from replica state at f+1
   matching result digests).  No-ops and payload-stripped ledger
   copies have empty [txns] and are excluded. *)
let read_only t =
  Array.length t.txns > 0
  && Array.for_all (fun (x : Txn.t) -> x.Txn.op <> Txn.Write) t.txns

(* A non-noop batch whose payload was stripped for ledger compactness
   ([retain_payloads:false]): its transactions are gone, so replaying
   it cannot reproduce state transitions. *)
let stripped t = t.id >= 0 && Array.length t.txns = 0

(* Verify the client signature and digest integrity.  Replicas discard
   batches that fail this check (§2.1: "Replicas will discard any
   messages that are not well-formed ... or have invalid signatures"). *)
let verify ~keychain (t : t) : bool =
  match t.vmemo with
  | Some m
    when m.m_keychain == keychain && m.m_txns == t.txns && m.m_digest == t.digest
         && m.m_signature == t.signature && m.m_id = t.id && m.m_cluster = t.cluster
         && m.m_origin = t.origin ->
      m.m_ok
  | _ ->
      let ok =
        String.equal t.digest
          (digest_of ~id:t.id ~cluster:t.cluster ~origin:t.origin ~txns:t.txns)
        && Keychain.verify keychain ~signer:t.origin t.digest t.signature
      in
      t.vmemo <-
        Some
          {
            m_keychain = keychain;
            m_txns = t.txns;
            m_digest = t.digest;
            m_signature = t.signature;
            m_id = t.id;
            m_cluster = t.cluster;
            m_origin = t.origin;
            m_ok = ok;
          };
      ok

let pp fmt t =
  if is_noop t then Format.fprintf fmt "noop[c%d]" t.cluster
  else Format.fprintf fmt "batch#%d[c%d,%d txns]" t.id t.cluster (Array.length t.txns)
