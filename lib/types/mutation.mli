(** Test-only protocol mutations (DESIGN.md §13): named wrong code
    paths compiled into the protocols but dead unless armed.  The
    schedule-exploration checker arms one, runs a scenario, and must
    observe an invariant violation — mutation testing for the oracle.

    Not domain-safe: only the sequential checker and the test suite may
    arm mutations; the sweep engine never does. *)

val set : string option -> unit
(** Arm one mutation (or disarm with [None]). *)

val active : unit -> string option

val is : string -> bool
(** [is id] — is mutation [id] armed?  The [None] fast path makes
    unmutated call sites cost a single load. *)

val known : string list
(** Every mutation id wired into the protocols. *)
