(** Wire-size model, calibrated from §4 of the paper: with batch size
    100, "the messages have sizes of 5.4 kB (preprepare), 6.4 kB
    (commit certificates ...), 1.5 kB (client responses), and 250 B
    (other messages)".  Payloads travel as OCaml values inside the
    simulator; these sizes are what enters the bandwidth model. *)

val header_bytes : int
val per_txn_bytes : int
val commit_entry_bytes : int
val per_result_bytes : int
val small_bytes : int

val batch_bytes : batch_size:int -> int
(** A client request / batch carrying [batch_size] transactions
    (5400 B at batch size 100). *)

val preprepare_bytes : batch_size:int -> int
(** Alias of {!batch_bytes}: a preprepare embeds the batch. *)

val certificate_bytes : batch_size:int -> sigs:int -> int
(** Commit certificate: embedded preprepare plus one signed commit
    entry per certificate signature (6401 B at batch 100 / 7 sigs). *)

val response_bytes : batch_size:int -> int
(** Client response (1500 B at batch size 100). *)

val small : int
(** Prepare, commit, checkpoint, votes, acks, ... (250 B). *)

val view_change_bytes : batch_size:int -> prepared:int -> int
(** A view-change message carrying [prepared] prepared certificates. *)

val fetch_bytes : int
(** Recovery fetch (FetchState / FetchBatch): a small control message
    naming a watermark or sequence numbers. *)

val snapshot_bytes : batch_size:int -> sigs:int -> blocks:int -> int
(** Checkpoint state-transfer reply: stable-checkpoint certificate
    ([sigs] signed digests) plus [blocks] ledger blocks, each with its
    batch and commit certificate. *)

val fill_bytes : batch_size:int -> sigs:int -> int
(** One filled batch served during hole-filling catch-up: the batch
    plus its certificate. *)
