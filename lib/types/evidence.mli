(** Quorum-evidence extractor (DESIGN.md §13): protocols report the
    support actually observed at each quorum-gated decision against the
    quorum the unmutated configuration demands.  Armed by the
    schedule-exploration checker; free (one load-and-branch) when off.

    Not domain-safe: only the sequential checker and the test suite may
    arm it. *)

type entry = { point : string; node : int; count : int; need : int }

val arm : unit -> unit
(** Start recording; clears previous entries. *)

val disarm : unit -> unit

val note : point:string -> node:int -> count:int -> need:int -> unit
(** Record a decision taken on [count] supporters where [need] were
    required; only insufficient support ([count < need]) is kept. *)

val violations : unit -> entry list
(** Recorded under-quorum decisions, in occurrence order. *)

val entry_to_string : entry -> string
