(* The interface every consensus protocol implements.

   A protocol provides two state machines:
   - the *replica* machine, instantiated at every replica node;
   - the *client agent* machine, instantiated at each cluster's client
     group node.  It submits batches, counts replies, and signals
     completion via [Ctx.complete] (Zyzzyva's agent additionally drives
     the commit-certificate recovery path, which is why client logic is
     protocol-owned rather than fabric-owned).

   Replicas and clients exchange values of the protocol's [msg] type;
   the fabric delivers them with [on_message] / [on_client_message]
   after charging the receiver-side verification cost declared by the
   sender. *)

(* Counters for the recovery subsystem (lib/recovery): checkpoint
   state transfers installed, execution holes filled by catch-up
   fetches, and timeout-driven protocol retransmissions.  Protocols
   without a given mechanism report 0. *)
type recovery_stats = {
  state_transfers : int;
  holes_filled : int;
  retransmissions : int;
}

let no_recovery = { state_transfers = 0; holes_filled = 0; retransmissions = 0 }

let add_recovery a b =
  {
    state_transfers = a.state_transfers + b.state_transfers;
    holes_filled = a.holes_filled + b.holes_filled;
    retransmissions = a.retransmissions + b.retransmissions;
  }

module type S = sig
  val name : string

  type msg
  type replica
  type client

  (* The adversarial view of the wire format: a coarse message
     classification plus (where sound) a conflicting-payload forgery,
     consumed by the Byzantine-strategy subsystem (lib/adversary). *)
  val adversary : msg Interpose.view

  val create_replica : msg Ctx.t -> replica
  val on_message : replica -> src:int -> msg -> unit

  (* View changes this replica has completed (0 for protocols without
     a view-change notion); used by the failure experiments. *)
  val view_changes : replica -> int

  (* Crash-recovery hook: the fabric calls this after un-crashing a
     replica.  Timers armed before the crash were dropped while the
     node was down, so protocols restart their self-rearming tasks
     here and kick off state transfer / catch-up as needed. *)
  val on_recover : replica -> unit

  val recovery : replica -> recovery_stats

  (* Test hook: permanently turn off this replica's recovery machinery
     that runs *outside* [on_recover] (e.g. the behind-the-window
     catch-up trigger).  The chaos suite models the
     pre-recovery-subsystem behaviour by rejoining without [on_recover]
     AND with this disabled, proving the safety monitor still has
     teeth against a recovery-less build. *)
  val disable_recovery : replica -> unit

  val create_client : msg Ctx.t -> cluster:int -> client
  val submit : client -> Batch.t -> unit
  val on_client_message : client -> src:int -> msg -> unit
end
