(* The Pbft replication engine (Castro & Liskov) for one cluster.

   This single engine plays two roles in the repo, mirroring the paper:
   - it is the *local replication* step of GeoBFT (§2.2): each cluster
     runs one instance over its n replicas, producing a commit
     certificate per sequence number;
   - it is the standalone Pbft baseline (§4) when instantiated over all
     z·n replicas as one flat cluster.

   Implemented here, beyond the three-phase normal case:
   - commit certificates assembled from n − f signed commit messages
     (the artifact GeoBFT ships across clusters and the ledger stores);
   - checkpointing with quorum-stable garbage collection;
   - local view-changes: censorship timers with exponential back-off,
     view-change/new-view with prepared-certificate carry-over,
     the f+1 join rule, and immediate view-change on provable primary
     equivocation;
   - request forwarding (backups forward client batches to the primary
     and time it out if it censors them);
   - no-op proposals for GeoBFT rounds (§2.5);
   - an externally-triggered view change, the hook GeoBFT's remote
     view-change protocol needs (§2.3, Figure 7, line 17);
   - Byzantine hooks for tests: a tamper function can drop or rewrite
     any outgoing message (silent primaries, equivocation, partial
     sends — Example 2.4's faulty-primary cases).

   In-order delivery: [on_committed] fires in strictly increasing
   sequence order regardless of commit arrival order. *)

module Batch = Rdb_types.Batch
module Certificate = Rdb_types.Certificate
module Config = Rdb_types.Config
module Ctx = Rdb_types.Ctx
module Wire = Rdb_types.Wire
module Time = Rdb_sim.Time
module Cpu = Rdb_sim.Cpu
module Keychain = Rdb_crypto.Keychain
module Mutation = Rdb_types.Mutation
module Evidence = Rdb_types.Evidence
open Messages

type slot = {
  seq : int;
  mutable sview : int;                     (* view of the accepted preprepare *)
  mutable batch : Batch.t option;
  mutable digest : string option;
  prepares : (int, string) Hashtbl.t;      (* local replica idx -> digest *)
  (* local replica idx -> (view, digest, signature) of its commit *)
  commits : (int, int * string * Rdb_crypto.Schnorr.signature) Hashtbl.t;
  mutable sent_prepare : bool;
  mutable sent_commit : bool;
  mutable committed : bool;
  mutable emitted : bool;
}

type vc_vote = { v_last_stable : int; v_prepared : prepared_proof list }

type t = {
  ctx : msg Ctx.t;
  members : int array;                     (* global node ids; index = local id *)
  cluster : int;
  me : int;                                (* local index into members *)
  n : int;
  f : int;
  quorum : int;
  mutable view : int;
  mutable mode : [ `Normal | `ViewChange of int ];
  slots : (int, slot) Hashtbl.t;
  mutable next_seq : int;
  mutable next_emit : int;
  mutable low_water : int;                 (* last stable checkpoint seq *)
  mutable stable_digest : string;          (* chain digest at [low_water] *)
  window : int;                            (* max in-flight sequence numbers *)
  pending : Batch.t Queue.t;               (* primary-side batch queue *)
  pending_digests : (string, unit) Hashtbl.t;
  forwarded : (string, Batch.t) Hashtbl.t; (* batches we forwarded, awaiting commit *)
  executed_digests : (string, unit) Hashtbl.t; (* duplicate-proposal guard *)
  mutable chain : string;                  (* rolling digest of emitted batches *)
  checkpoint_every : int;                  (* in sequence numbers *)
  checkpoints : (int, (int, string) Hashtbl.t) Hashtbl.t;
  vc_votes : (int, (int, vc_vote) Hashtbl.t) Hashtbl.t;
  mutable vc_timer : Ctx.timer option;
  mutable timeout : Time.t;
  base_timeout : Time.t;
  mutable noop_nonce : int;
  on_committed : seq:int -> Batch.t -> Certificate.t -> unit;
  on_view_change : view:int -> unit;
  mutable on_behind : (seq:int -> unit) option;
      (* fired when a commit arrives so far past [next_emit] that the
         acceptance window already dropped it: the group has moved on
         and only a state transfer can bring this replica back *)
  mutable tamper : (dst:int -> msg -> msg option) option;
  mutable n_view_changes : int;            (* completed view changes (metric) *)
  mutable deferred : (int * msg) list;     (* messages from views ahead of ours *)
}

(* -- construction ----------------------------------------------------- *)

let local_index_of members global =
  let rec go i = if members.(i) = global then i else go (i + 1) in
  go 0

let create ~(ctx : msg Ctx.t) ~members ~cluster ?window ?checkpoint_every
    ~on_committed ~on_view_change () =
  let cfg = ctx.Ctx.config in
  let n = Array.length members in
  let f = (n - 1) / 3 in
  let checkpoint_every =
    match checkpoint_every with
    | Some k -> k
    | None -> max 1 (cfg.Config.checkpoint_interval / max 1 cfg.Config.batch_size)
  in
  {
    ctx;
    members;
    cluster;
    me = local_index_of members ctx.Ctx.id;
    n;
    f;
    quorum = n - f;
    view = 0;
    mode = `Normal;
    slots = Hashtbl.create 64;
    next_seq = 0;
    next_emit = 0;
    low_water = -1;
    stable_digest = Rdb_crypto.Sha256.digest "pbft-chain-genesis";
    window = (match window with Some w -> w | None -> cfg.Config.pipeline_depth);
    pending = Queue.create ();
    pending_digests = Hashtbl.create 64;
    forwarded = Hashtbl.create 64;
    executed_digests = Hashtbl.create 256;
    chain = Rdb_crypto.Sha256.digest "pbft-chain-genesis";
    checkpoint_every;
    checkpoints = Hashtbl.create 16;
    vc_votes = Hashtbl.create 4;
    vc_timer = None;
    timeout = Time.of_ms_f cfg.Config.local_timeout_ms;
    base_timeout = Time.of_ms_f cfg.Config.local_timeout_ms;
    noop_nonce = 0;
    on_committed;
    on_view_change;
    on_behind = None;
    tamper = None;
    n_view_changes = 0;
    deferred = [];
  }

let set_tamper t fn = t.tamper <- fn
let set_on_behind t fn = t.on_behind <- fn

(* -- basic accessors --------------------------------------------------- *)

let view t = t.view
let n_view_changes t = t.n_view_changes
let primary_local t = t.view mod t.n
let primary t = t.members.(primary_local t)
let is_primary t = primary_local t = t.me
let in_flight t = t.next_seq - t.next_emit
let next_emit t = t.next_emit
let next_seq t = t.next_seq
let pending_count t = Queue.length t.pending

let slot t seq =
  match Hashtbl.find_opt t.slots seq with
  | Some s -> s
  | None ->
      let s =
        {
          seq;
          sview = -1;
          batch = None;
          digest = None;
          prepares = Hashtbl.create 8;
          commits = Hashtbl.create 8;
          sent_prepare = false;
          sent_commit = false;
          committed = false;
          emitted = false;
        }
      in
      Hashtbl.replace t.slots seq s;
      s

(* -- message costs ----------------------------------------------------- *)

let cfg t = t.ctx.Ctx.config

let batch_bytes t = Wire.batch_bytes ~batch_size:(cfg t).Config.batch_size

let size_of t = function
  | Forward _ | Preprepare _ -> batch_bytes t
  | Prepare _ | Commit _ | Checkpoint _ -> Wire.small
  | ViewChange { prepared; _ } ->
      Wire.view_change_bytes ~batch_size:(cfg t).Config.batch_size ~prepared:(List.length prepared)
  | NewView { preprepares; _ } -> Wire.small + (batch_bytes t * List.length preprepares)

(* Receiver-side verification cost charged to the worker thread. *)
let vcost_of t m =
  let c = cfg t in
  match m with
  | Forward _ ->
      (* Deduplication precedes verification for forwarded requests;
         the client signature is checked at preprepare time. *)
      Config.recv_floor_cost c ~bytes:(batch_bytes t)
  | Preprepare _ ->
      (* MAC + digest of the batch + client signature check. *)
      Time.add (Config.recv_floor_cost c ~bytes:(batch_bytes t)) (Config.verify_cost c)
  | Prepare _ | Checkpoint _ -> Config.recv_floor_cost c ~bytes:Wire.small
  | Commit _ -> Time.add (Config.recv_floor_cost c ~bytes:Wire.small) (Config.verify_cost c)
  | ViewChange { prepared; _ } ->
      Time.add
        (Config.recv_floor_cost c ~bytes:(size_of t m))
        (Time.of_us_f (c.Config.costs.Config.verify_us *. float_of_int (List.length prepared)))
  | NewView { preprepares; _ } ->
      Time.add
        (Config.recv_floor_cost c ~bytes:(size_of t m))
        (Time.of_us_f (c.Config.costs.Config.verify_us *. float_of_int (List.length preprepares)))

(* -- sending ------------------------------------------------------------ *)

let send_to t ~dst_local m =
  let m' = match t.tamper with None -> Some m | Some fn -> fn ~dst:dst_local m in
  match m' with
  | None -> ()
  | Some m ->
      t.ctx.Ctx.send ~dst:t.members.(dst_local) ~size:(size_of t m) ~vcost:(vcost_of t m) m

(* Broadcast to all other members; the caller handles its own copy
   directly (self-delivery never crosses the network). *)
let broadcast t m =
  (* Outbound MACs are generated by the output threads; charge them as
     deferred Misc work so they consume modeled CPU without delaying
     the sends themselves. *)
  t.ctx.Ctx.charge ~stage:Cpu.Misc
    ~cost:(Time.of_us_f ((cfg t).Config.costs.Config.mac_us *. float_of_int (t.n - 1)))
    (fun () -> ());
  match t.tamper with
  | Some _ ->
      (* Byzantine senders rewrite per destination: the pooled path
         cannot represent that, so fall back to one send per member. *)
      for i = 0 to t.n - 1 do
        if i <> t.me then send_to t ~dst_local:i m
      done
  | None ->
      let dsts = ref [] in
      for i = t.n - 1 downto 0 do
        if i <> t.me then dsts := t.members.(i) :: !dsts
      done;
      Ctx.multicast t.ctx ~dsts:!dsts ~size:(size_of t m) ~vcost:(vcost_of t m) m

(* -- progress timer ------------------------------------------------------ *)

let has_outstanding t =
  (not (Queue.is_empty t.pending))
  || Hashtbl.length t.forwarded > 0
  || (let any = ref false in
      Hashtbl.iter (fun _ s -> if s.batch <> None && not s.emitted then any := true) t.slots;
      !any)

let rec update_timer t =
  match t.vc_timer with
  | Some _ when not (has_outstanding t) ->
      (match t.vc_timer with Some h -> t.ctx.Ctx.cancel_timer h | None -> ());
      t.vc_timer <- None
  | None when has_outstanding t ->
      t.vc_timer <- Some (t.ctx.Ctx.set_timer ~delay:t.timeout (fun () -> on_timeout t))
  | _ -> ()

and reset_timer t =
  (match t.vc_timer with Some h -> t.ctx.Ctx.cancel_timer h | None -> ());
  t.vc_timer <- None;
  update_timer t

(* -- view change --------------------------------------------------------- *)

and prepared_proofs t : prepared_proof list =
  (* Includes slots already executed locally (above the stable
     checkpoint): they are decided, and carrying their certificates
     into the new view is what stops a new primary from reusing their
     sequence numbers for different batches. *)
  let acc = ref [] in
  Hashtbl.iter
    (fun _ s ->
      if s.seq > t.low_water then
        match (s.batch, s.digest) with
        | Some b, Some d ->
            (* Prepared: accepted preprepare + n − f matching prepares. *)
            let matching = Hashtbl.fold (fun _ d' acc -> if String.equal d d' then acc + 1 else acc) s.prepares 0 in
            if matching >= t.quorum then
              acc := { pp_seq = s.seq; pp_view = s.sview; pp_digest = d; pp_batch = b } :: !acc
        | _ -> ())
    t.slots;
  List.sort (fun a b -> compare a.pp_seq b.pp_seq) !acc

and start_view_change t ~target =
  if target > t.view || (match t.mode with `ViewChange tgt -> target > tgt | `Normal -> target > t.view)
  then begin
    t.mode <- `ViewChange target;
    t.ctx.Ctx.trace (lazy (Printf.sprintf "pbft[c%d r%d] view-change -> %d" t.cluster t.me target));
    let vc = ViewChange { target; last_stable = t.low_water; prepared = prepared_proofs t } in
    (* Sign-ish cost of assembling the view-change message. *)
    t.ctx.Ctx.charge ~stage:Cpu.Worker ~cost:(Config.sign_cost (cfg t)) (fun () -> ());
    broadcast t vc;
    handle_view_change t ~src_local:t.me ~target ~last_stable:t.low_water
      ~prepared:(prepared_proofs t);
    (* If this view change stalls (next primary also faulty), escalate. *)
    t.timeout <- Time.add t.timeout t.timeout;
    reset_timer t
  end

and on_timeout t =
  t.vc_timer <- None;
  let target = (match t.mode with `Normal -> t.view | `ViewChange tgt -> tgt) + 1 in
  start_view_change t ~target

and handle_view_change t ~src_local ~target ~last_stable ~prepared =
  if target > t.view then begin
    let votes =
      match Hashtbl.find_opt t.vc_votes target with
      | Some v -> v
      | None ->
          let v = Hashtbl.create 8 in
          Hashtbl.replace t.vc_votes target v;
          v
    in
    if not (Hashtbl.mem votes src_local) then begin
      Hashtbl.replace votes src_local { v_last_stable = last_stable; v_prepared = prepared };
      (* f+1 join rule: at least one non-faulty replica saw the primary
         fail, so join even without our own timeout.  Join the smallest
         target above our view for which anyone voted. *)
      let total_above = ref 0 and min_target = ref max_int in
      Hashtbl.iter
        (fun tgt votes ->
          if tgt > t.view then begin
            total_above := !total_above + Hashtbl.length votes;
            if tgt < !min_target then min_target := tgt
          end)
        t.vc_votes;
      (match t.mode with
      | `Normal when !total_above >= t.f + 1 -> start_view_change t ~target:!min_target
      | _ -> ());
      (* New primary of [target] assembles the new view at n − f votes. *)
      if Hashtbl.length votes >= t.quorum && target mod t.n = t.me then begin
        match t.mode with
        | `ViewChange tgt when tgt <= target -> become_primary t ~target ~votes
        | `Normal when t.view < target -> become_primary t ~target ~votes
        | _ -> ()
      end
    end
  end

and become_primary t ~target ~votes =
  (* Consolidate prepared certificates from the n − f view-change votes:
     for every sequence number above the highest stable checkpoint, the
     proposal with the highest view wins; gaps become no-ops. *)
  let ls = Hashtbl.fold (fun _ v acc -> max acc v.v_last_stable) votes t.low_water in
  let best : (int, prepared_proof) Hashtbl.t = Hashtbl.create 16 in
  let max_seq = ref ls in
  Hashtbl.iter
    (fun _ v ->
      List.iter
        (fun p ->
          if p.pp_seq > ls then begin
            max_seq := max !max_seq p.pp_seq;
            match Hashtbl.find_opt best p.pp_seq with
            | Some q when q.pp_view >= p.pp_view -> ()
            | _ -> Hashtbl.replace best p.pp_seq p
          end)
        v.v_prepared)
    votes;
  let preprepares = ref [] in
  for seq = !max_seq downto max (ls + 1) t.next_emit do
    let b =
      match Hashtbl.find_opt best seq with
      | Some p -> p.pp_batch
      | None ->
          t.noop_nonce <- t.noop_nonce + 1;
          Batch.noop ~keychain:t.ctx.Ctx.keychain ~cluster:t.cluster ~origin:t.ctx.Ctx.id
            ~created:(t.ctx.Ctx.now ()) ~nonce:(1_000_000 + t.noop_nonce)
    in
    preprepares := (seq, b) :: !preprepares
  done;
  t.n_view_changes <- t.n_view_changes + 1;
  t.view <- target;
  t.mode <- `Normal;
  t.next_seq <- max (max t.next_seq (!max_seq + 1)) t.next_emit;
  t.ctx.Ctx.trace (lazy (Printf.sprintf "pbft[c%d r%d] new primary, view %d, reproposing %d"
                           t.cluster t.me target (List.length !preprepares)));
  broadcast t (NewView { target; preprepares = !preprepares });
  t.on_view_change ~view:target;
  (* Process our own embedded preprepares (resetting stale vote state
     from older views first, exactly as backups do on new-view). *)
  List.iter
    (fun (seq, b) ->
      (match Hashtbl.find_opt t.slots seq with
      | Some s when (not s.emitted) && not s.committed ->
          Hashtbl.reset s.prepares;
          Hashtbl.reset s.commits;
          s.sview <- -1;
          s.batch <- None;
          s.digest <- None;
          s.sent_prepare <- false;
          s.sent_commit <- false
      | _ -> ());
      accept_preprepare t ~view:target ~seq ~batch:b)
    !preprepares;
  rehome_forwarded t;
  reset_timer t;
  propose_more t

and enter_new_view t ~target ~preprepares =
  let ok = match t.mode with `ViewChange tgt -> target >= tgt | `Normal -> target > t.view in
  if ok && target mod t.n <> t.me then begin
    t.n_view_changes <- t.n_view_changes + 1;
    t.view <- target;
    t.mode <- `Normal;
    t.ctx.Ctx.trace (lazy (Printf.sprintf "pbft[c%d r%d] entering view %d" t.cluster t.me target));
    t.on_view_change ~view:target;
    List.iter
      (fun (seq, b) ->
        if seq > t.low_water then begin
          (* Reset any state from older views for this slot; slots we
             already committed are decided and left untouched. *)
          let s = slot t seq in
          if (not s.emitted) && not s.committed then begin
            Hashtbl.reset s.prepares;
            Hashtbl.reset s.commits;
            s.sview <- -1;
            s.batch <- None;
            s.digest <- None;
            s.sent_prepare <- false;
            s.sent_commit <- false;
            s.committed <- false;
            accept_preprepare t ~view:target ~seq ~batch:b
          end
        end)
      preprepares;
    rehome_forwarded t;
    reset_timer t
  end

(* -- normal case --------------------------------------------------------- *)

and accept_preprepare t ~view ~seq ~batch =
  let s = slot t seq in
  if s.emitted then ()
  else begin
    t.ctx.Ctx.phase ~key:seq ~name:"propose";
    s.sview <- view;
    s.batch <- Some batch;
    s.digest <- Some batch.Batch.digest;
    (* The primary's preprepare doubles as its prepare vote. *)
    Hashtbl.replace s.prepares (view mod t.n) batch.Batch.digest;
    if not s.sent_prepare then begin
      s.sent_prepare <- true;
      if t.me <> view mod t.n then begin
        broadcast t (Prepare { view; seq; digest = batch.Batch.digest });
        Hashtbl.replace s.prepares t.me batch.Batch.digest
      end
    end;
    update_timer t;
    check_prepared t s;
    (* Commits may have reached quorum before the preprepare arrived. *)
    check_committed t s
  end

and check_prepared t s =
  match (s.digest, s.batch) with
  | Some d, Some _ when not s.sent_commit ->
      let matching =
        Hashtbl.fold (fun _ d' acc -> if String.equal d d' then acc + 1 else acc) s.prepares 0
      in
      let gate = if Mutation.is "pbft-prepare-quorum" then t.quorum - 1 else t.quorum in
      if matching >= gate then begin
        Evidence.note ~point:"pbft.prepared" ~node:t.ctx.Ctx.id ~count:matching ~need:t.quorum;
        s.sent_commit <- true;
        t.ctx.Ctx.phase ~key:s.seq ~name:"prepare";
        let payload =
          Certificate.commit_payload ~cluster:t.cluster ~view:s.sview ~seq:s.seq ~digest:d
        in
        let signature = Keychain.sign t.ctx.Ctx.keychain ~signer:t.ctx.Ctx.id payload in
        let m = Commit { view = s.sview; seq = s.seq; digest = d; signature } in
        (* Commit messages are signed (they form the certificate). *)
        t.ctx.Ctx.charge ~stage:Cpu.Worker ~cost:(Config.sign_cost (cfg t)) (fun () ->
            broadcast t m;
            handle_commit t ~src_local:t.me ~view:s.sview ~seq:s.seq ~digest:d ~signature)
      end
  | _ -> ()

and handle_commit t ~src_local ~view ~seq ~digest ~signature =
  if seq > t.low_water then begin
    let s = slot t seq in
    if not s.committed then begin
      (* Verify the commit signature before counting it (the modeled
         CPU cost was already charged by the fabric via vcost). *)
      let payload = Certificate.commit_payload ~cluster:t.cluster ~view ~seq ~digest in
      let signer = t.members.(src_local) in
      if Keychain.verify t.ctx.Ctx.keychain ~signer payload signature then begin
        (if not (Hashtbl.mem s.commits src_local) then
           Hashtbl.replace s.commits src_local (view, digest, signature));
        check_committed t s
      end
    end
  end

and check_committed t s =
  match (s.digest, s.batch) with
  | Some d, Some _ when not s.committed && s.sview >= 0 ->
      (* Count commits matching the accepted (view, digest): the
         certificate must carry signatures over one payload. *)
      let matching =
        Hashtbl.fold
          (fun _ (v, d', _) acc -> if String.equal d d' && v = s.sview then acc + 1 else acc)
          s.commits 0
      in
      let gate = if Mutation.is "pbft-commit-quorum" then t.quorum - 1 else t.quorum in
      if matching >= gate then begin
        Evidence.note ~point:"pbft.committed" ~node:t.ctx.Ctx.id ~count:matching ~need:t.quorum;
        s.committed <- true;
        emit_ready t
      end
  | _ -> ()

and emit_ready t =
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt t.slots t.next_emit with
    | Some s when s.committed && not s.emitted -> (
        match (s.batch, s.digest) with
        | Some b, Some d ->
            s.emitted <- true;
            t.ctx.Ctx.phase ~key:s.seq ~name:"commit";
            t.chain <- Rdb_crypto.Sha256.digest_list [ t.chain; d ];
            (* Assemble the commit certificate: n − f matching signed
               commits, deterministically ordered. *)
            let entries =
              Hashtbl.fold
                (fun local (v, d', sg) acc ->
                  if String.equal d d' && v = s.sview then
                    { Certificate.replica = t.members.(local); signature = sg } :: acc
                  else acc)
                s.commits []
              |> List.sort (fun a b -> compare a.Certificate.replica b.Certificate.replica)
            in
            let entries = List.filteri (fun i _ -> i < t.quorum) entries in
            let cert =
              Certificate.make ~cluster:t.cluster ~view:s.sview ~seq:s.seq ~digest:d
                ~commits:entries
            in
            Hashtbl.remove t.forwarded d;
            Hashtbl.remove t.pending_digests d;
            Hashtbl.replace t.executed_digests d ();
            t.next_emit <- t.next_emit + 1;
            (* Progress: reset the censorship back-off. *)
            t.timeout <- t.base_timeout;
            reset_timer t;
            t.on_committed ~seq:s.seq b cert;
            maybe_checkpoint t ~seq:s.seq;
            propose_more t
        | _ -> continue := false)
    | _ -> continue := false
  done

(* -- checkpointing -------------------------------------------------------- *)

and maybe_checkpoint t ~seq =
  if (seq + 1) mod t.checkpoint_every = 0 then begin
    let m = Checkpoint { seq; state_digest = t.chain } in
    broadcast t m;
    handle_checkpoint t ~src_local:t.me ~seq ~state_digest:t.chain
  end

and handle_checkpoint t ~src_local ~seq ~state_digest =
  if seq > t.low_water then begin
    let tbl =
      match Hashtbl.find_opt t.checkpoints seq with
      | Some tbl -> tbl
      | None ->
          let tbl = Hashtbl.create 8 in
          Hashtbl.replace t.checkpoints seq tbl;
          tbl
    in
    Hashtbl.replace tbl src_local state_digest;
    let counts = Hashtbl.create 4 in
    Hashtbl.iter
      (fun _ d ->
        Hashtbl.replace counts d (1 + Option.value ~default:0 (Hashtbl.find_opt counts d)))
      tbl;
    let stable = Hashtbl.fold (fun _ c acc -> acc || c >= t.quorum) counts false in
    if stable && seq > t.low_water && seq < t.next_emit then begin
      t.low_water <- seq;
      (* Record the quorum digest: the anchor a checkpoint state
         transfer serves and verifies against. *)
      Hashtbl.iter (fun d c -> if c >= t.quorum then t.stable_digest <- d) counts;
      (* Garbage-collect everything at or below the stable checkpoint. *)
      Hashtbl.iter (fun s _ -> if s <= seq then Hashtbl.remove t.slots s) (Hashtbl.copy t.slots);
      Hashtbl.iter
        (fun s _ -> if s <= seq then Hashtbl.remove t.checkpoints s)
        (Hashtbl.copy t.checkpoints)
    end
  end

(* -- proposing ------------------------------------------------------------- *)

(* A digest already assigned to a live slot must not be proposed again
   under a fresh sequence number: with client retransmission, a batch
   carried across a view change inside a prepared slot can reappear via
   [Forward] or [rehome_forwarded] before that slot emits, and a second
   proposal would execute it twice. *)
and digest_in_flight t d =
  Hashtbl.fold
    (fun _ s acc ->
      acc || (match s.digest with Some d' -> String.equal d d' | None -> false))
    t.slots false

and propose_more t =
  if is_primary t && t.mode = `Normal then begin
    let continue = ref true in
    while !continue && (not (Queue.is_empty t.pending)) && in_flight t < t.window do
      let batch = Queue.pop t.pending in
      if Hashtbl.mem t.executed_digests batch.Batch.digest
         || digest_in_flight t batch.Batch.digest
      then
        (* Already ordered (e.g. carried over by a view change). *)
        Hashtbl.remove t.pending_digests batch.Batch.digest
      else begin
        let seq = t.next_seq in
        t.next_seq <- t.next_seq + 1;
        let view = t.view in
        (* Batch assembly + digest on the batching thread, then broadcast. *)
        t.ctx.Ctx.charge ~stage:Cpu.Batching
          ~cost:(Time.add (Config.batch_asm_cost (cfg t)) (Config.hash_cost (cfg t) ~bytes:(batch_bytes t)))
          (fun () ->
            if t.view = view && t.mode = `Normal then begin
              broadcast t (Preprepare { view; seq; batch });
              accept_preprepare t ~view ~seq ~batch
            end);
        if in_flight t >= t.window then continue := false
      end
    done
  end

(* After a view change, requests stranded at the old primary must reach
   the new one quickly (the paper's primary-failure experiment measures
   exactly this recovery): the new primary adopts every batch it saw
   only as a forwarder; backups re-forward theirs. *)
and rehome_forwarded t =
  let entries = Hashtbl.fold (fun d b acc -> (d, b) :: acc) t.forwarded [] in
  let entries = List.sort (fun (_, a) (_, b) -> compare a.Batch.id b.Batch.id) entries in
  if is_primary t then
    List.iter
      (fun (d, b) ->
        if (not (Hashtbl.mem t.executed_digests d))
           && (not (Hashtbl.mem t.pending_digests d))
           && not (digest_in_flight t d)
        then begin
          Hashtbl.remove t.forwarded d;
          Hashtbl.replace t.pending_digests d ();
          Queue.push b t.pending
        end)
      entries
  else List.iter (fun (_, b) -> send_to t ~dst_local:(primary_local t) (Forward b)) entries

(* Submit a client batch at this replica.  The primary queues and
   proposes it; backups forward it to the primary and start the
   anti-censorship timer. *)
let submit_batch t (batch : Batch.t) =
  if Hashtbl.mem t.pending_digests batch.Batch.digest
     || Hashtbl.mem t.forwarded batch.Batch.digest
     || Hashtbl.mem t.executed_digests batch.Batch.digest
     || digest_in_flight t batch.Batch.digest
  then ()
  else if is_primary t then begin
    Hashtbl.replace t.pending_digests batch.Batch.digest ();
    Queue.push batch t.pending;
    update_timer t;
    propose_more t
  end
  else begin
    Hashtbl.replace t.forwarded batch.Batch.digest batch;
    send_to t ~dst_local:(primary_local t) (Forward batch);
    update_timer t
  end

(* Propose a no-op (GeoBFT §2.5): called by the embedding layer when
   other clusters are progressing but this cluster has no requests. *)
let propose_noop t =
  if is_primary t && t.mode = `Normal && Queue.is_empty t.pending then begin
    t.noop_nonce <- t.noop_nonce + 1;
    let b =
      Batch.noop ~keychain:t.ctx.Ctx.keychain ~cluster:t.cluster ~origin:t.ctx.Ctx.id
        ~created:(t.ctx.Ctx.now ()) ~nonce:t.noop_nonce
    in
    Queue.push b t.pending;
    propose_more t
  end

(* External failure detection (GeoBFT remote view-change, Figure 7
   line 17): treat the current primary as faulty. *)
let force_view_change t =
  let target = (match t.mode with `Normal -> t.view | `ViewChange tgt -> tgt) + 1 in
  start_view_change t ~target

(* -- dispatch ---------------------------------------------------------------- *)

let rec on_message t ~src (m : msg) =
  let src_local =
    let rec find i =
      if i >= t.n then -1 else if t.members.(i) = src then i else find (i + 1)
    in
    find 0
  in
  if src_local < 0 then () (* not a member of this cluster: ignore *)
  else
    match m with
    | Forward batch ->
        if is_primary t then submit_batch t batch
    | Preprepare { view; seq; _ } when view > t.view && seq > t.low_water ->
        (* From a view ahead of ours: hold until we catch up. *)
        t.deferred <- (src, m) :: t.deferred
    | Preprepare { view; seq; batch } ->
        if view = t.view && t.mode = `Normal && src_local = view mod t.n
           && seq > t.low_water && seq < t.next_emit + (4 * t.window) then begin
          let s = slot t seq in
          match s.digest with
          | Some d when not (String.equal d batch.Batch.digest) && s.sview = view ->
              (* Equivocation: two conflicting preprepares signed into
                 the same (view, seq) — provable primary fault. *)
              t.ctx.Ctx.trace (lazy (Printf.sprintf "pbft[c%d r%d] equivocation at seq %d" t.cluster t.me seq));
              start_view_change t ~target:(t.view + 1)
          | Some _ when s.sview < view && (not s.emitted) && not s.committed ->
              (* Stale state from an older view (the slot never
                 prepared, or the new-view message did not cover it):
                 the newer view's proposal supersedes it. *)
              Hashtbl.reset s.prepares;
              Hashtbl.reset s.commits;
              s.sent_prepare <- false;
              s.sent_commit <- false;
              s.committed <- false;
              s.batch <- None;
              s.digest <- None;
              accept_preprepare t ~view ~seq ~batch
          | Some _ -> () (* duplicate *)
          | None -> accept_preprepare t ~view ~seq ~batch
        end
    | Prepare { view; seq; _ } when view > t.view && seq > t.low_water ->
        t.deferred <- (src, m) :: t.deferred
    | Prepare { view; seq; digest } ->
        if view = t.view && t.mode = `Normal && seq > t.low_water
           && seq < t.next_emit + (4 * t.window) then begin
          let s = slot t seq in
          if not (Hashtbl.mem s.prepares src_local) then begin
            Hashtbl.replace s.prepares src_local digest;
            check_prepared t s
          end
        end
    | Commit { view; seq; digest; signature } ->
        if seq < t.next_emit + (4 * t.window) then
          handle_commit t ~src_local ~view ~seq ~digest ~signature
        else
          (* Too far past our frontier to even buffer: the group has
             left us behind, and nobody retransmits the normal-path
             messages we are dropping here.  Hand the liveness problem
             to the state-transfer layer. *)
          Option.iter (fun f -> f ~seq) t.on_behind
    | Checkpoint { seq; state_digest } -> handle_checkpoint t ~src_local ~seq ~state_digest
    | ViewChange { target; last_stable; prepared } ->
        handle_view_change t ~src_local ~target ~last_stable ~prepared;
        (* We may just have become the new primary. *)
        replay_deferred t
    | NewView { target; preprepares } ->
        if src_local = target mod t.n then begin
          enter_new_view t ~target ~preprepares;
          replay_deferred t
        end

(* Replay messages that were ahead of our view when they arrived. *)
and replay_deferred t =
  let ms = List.rev t.deferred in
  t.deferred <- [];
  List.iter
    (fun (src, m) ->
      match m with
      | Preprepare { view; _ } | Prepare { view; _ } ->
          if view > t.view then t.deferred <- (src, m) :: t.deferred
          else if view = t.view then on_message t ~src m
      | _ -> ())
    ms

(* -- recovery hooks (lib/recovery: checkpoint state transfer) ------------- *)

let low_water t = t.low_water
let stable_digest t = t.stable_digest
let checkpoint_every t = t.checkpoint_every
let retained_slots t = Hashtbl.length t.slots
let min_retained_slot t = Hashtbl.fold (fun s _ acc -> min s acc) t.slots max_int

(* A batch learned out-of-band (checkpoint state transfer): advance the
   emit cursor past it without assembling a local certificate.  Only
   the exact frontier advances — the caller installs a contiguous
   ledger suffix in order and skips sequences already emitted here.
   Returns whether the cursor moved. *)
let note_external_commit t ~seq (batch : Batch.t) =
  if seq <> t.next_emit then false
  else begin
    let d = batch.Batch.digest in
    t.chain <- Rdb_crypto.Sha256.digest_list [ t.chain; d ];
    Hashtbl.replace t.executed_digests d ();
    Hashtbl.remove t.pending_digests d;
    Hashtbl.remove t.forwarded d;
    Hashtbl.remove t.slots seq;
    t.next_emit <- t.next_emit + 1;
    if t.next_seq < t.next_emit then t.next_seq <- t.next_emit;
    (* Slots above may already hold commit quorums gathered while this
       replica was catching up. *)
    emit_ready t;
    true
  end

(* Adopt a transferred stable checkpoint: advance the watermark and
   garbage-collect everything at or below it, exactly as a locally
   quorum-stable checkpoint would. *)
let install_checkpoint t ~seq ~digest =
  if seq > t.low_water && seq < t.next_emit then begin
    t.low_water <- seq;
    t.stable_digest <- digest;
    Hashtbl.iter (fun s _ -> if s <= seq then Hashtbl.remove t.slots s) (Hashtbl.copy t.slots);
    Hashtbl.iter
      (fun s _ -> if s <= seq then Hashtbl.remove t.checkpoints s)
      (Hashtbl.copy t.checkpoints)
  end

(* Adopt the view the rest of the group is in, learned from f+1
   matching state-transfer replies (the simulator trusts this in lieu
   of shipping the full new-view certificate): without it a recovering
   ex-primary keeps proposing into a dead view forever.  Stale vote
   state from older views is reset exactly as [enter_new_view] does. *)
let adopt_view t ~view =
  if view > t.view then begin
    t.view <- view;
    t.mode <- `Normal;
    t.ctx.Ctx.trace
      (lazy (Printf.sprintf "pbft[c%d r%d] adopting view %d via state transfer" t.cluster t.me view));
    Hashtbl.iter
      (fun _ s ->
        if (not s.emitted) && (not s.committed) && s.sview < view then begin
          Hashtbl.reset s.prepares;
          Hashtbl.reset s.commits;
          s.sview <- -1;
          s.batch <- None;
          s.digest <- None;
          s.sent_prepare <- false;
          s.sent_commit <- false
        end)
      t.slots;
    reset_timer t;
    replay_deferred t
  end

(* After a crash-recover: timers armed before the crash were dropped
   while the node was down, so a stale handle may be recorded even
   though no tick will ever fire.  Cancel defensively and re-arm. *)
let on_recover t =
  (match t.vc_timer with Some h -> t.ctx.Ctx.cancel_timer h | None -> ());
  t.vc_timer <- None;
  t.timeout <- t.base_timeout;
  update_timer t
