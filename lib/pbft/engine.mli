(** The Pbft replication engine (Castro & Liskov) for one cluster —
    both GeoBFT's local-replication step (§2.2) and, over all z·n
    replicas at once, the standalone Pbft baseline.

    Beyond the three-phase normal case: commit certificates (n − f
    signed commits), checkpointing with quorum-stable garbage
    collection, full local view changes (censorship timers with
    exponential back-off, prepared-certificate carry-over, the f+1 join
    rule, immediate view change on provable equivocation), request
    forwarding, no-op proposals, an external view-change trigger (the
    hook GeoBFT's remote view-change protocol fires, Figure 7 line 17),
    and Byzantine test hooks.

    [on_committed] fires in strictly increasing sequence order. *)

module Batch = Rdb_types.Batch
module Certificate = Rdb_types.Certificate
module Ctx = Rdb_types.Ctx

type t

val create :
  ctx:Messages.msg Ctx.t ->
  members:int array ->
  cluster:int ->
  ?window:int ->
  ?checkpoint_every:int ->
  on_committed:(seq:int -> Batch.t -> Certificate.t -> unit) ->
  on_view_change:(view:int -> unit) ->
  unit ->
  t
(** [members] are the global node ids of this cluster (index = local
    id); [window] bounds in-flight sequence numbers (default: the
    config's pipeline depth); [checkpoint_every] is in sequence numbers
    (default: checkpoint_interval / batch_size).  [on_view_change]
    fires at every replica when it enters a new view. *)

(** {1 Operation} *)

val submit_batch : t -> Batch.t -> unit
(** At the primary: queue and propose.  At a backup: forward to the
    primary and arm the anti-censorship timer. *)

val propose_noop : t -> unit
(** Propose a no-op if primary with an empty queue (GeoBFT §2.5). *)

val on_message : t -> src:int -> Messages.msg -> unit
(** Feed a protocol message; non-member senders are ignored. *)

val force_view_change : t -> unit
(** External failure detection: treat the current primary as faulty
    (GeoBFT remote view change, Figure 7 line 17). *)

(** {1 Inspection} *)

val view : t -> int
val n_view_changes : t -> int
val primary : t -> int
(** Global node id of the current primary. *)

val is_primary : t -> bool
val in_flight : t -> int
val next_emit : t -> int
(** Next sequence number to be delivered (all below are committed). *)

val next_seq : t -> int
(** Primary: next sequence number to assign. *)

val pending_count : t -> int

(** {1 Checkpoint / recovery} *)

val low_water : t -> int
(** Sequence number of the last stable checkpoint (-1 before any). *)

val stable_digest : t -> string
(** Chain digest at [low_water] — the state-transfer anchor. *)

val checkpoint_every : t -> int
val retained_slots : t -> int
val min_retained_slot : t -> int
(** [max_int] when no slots are retained. *)

val note_external_commit : t -> seq:int -> Batch.t -> bool
(** A batch learned via checkpoint state transfer: advance the emit
    cursor past it (true iff [seq] was exactly the frontier). *)

val install_checkpoint : t -> seq:int -> digest:string -> unit
(** Adopt a transferred stable checkpoint: advance the watermark and
    garbage-collect at or below it. *)

val adopt_view : t -> view:int -> unit
(** Adopt the view learned from f+1 matching state-transfer replies. *)

val on_recover : t -> unit
(** After a crash-recover: revive the (silently dropped) progress
    timer and reset the censorship back-off. *)

(** {1 Byzantine test hooks} *)

val set_tamper : t -> (dst:int -> Messages.msg -> Messages.msg option) option -> unit
(** Intercept every outgoing message: [None] drops it, [Some m']
    replaces it — silent primaries, equivocation, partial sends
    (Example 2.4's faulty primaries). *)

val set_on_behind : t -> (seq:int -> unit) option -> unit
(** [set_on_behind t (Some f)] — call [f ~seq] whenever a commit
    message arrives for a sequence number so far past this replica's
    execution frontier that the acceptance window already discards it.
    Nobody retransmits normal-path messages, so without intervention a
    replica in that state is starved forever; the hook lets the owner
    start the same state transfer a crash-rejoin uses. *)
