(* Standalone Pbft — the baseline protocol of §4.

   One flat Pbft group over all z·n replicas, with the primary placed
   in region 0 (the experiments put it in Oregon, "as this region has
   the highest bandwidth to all other regions").  Clients in every
   region submit to the primary and wait for f_global + 1 matching
   replies; every replica replies to the issuing client.

   This is the configuration whose geo-scale behaviour Figure 10
   documents: all-to-all prepare/commit traffic crosses regions, and
   the single primary's WAN uplinks carry a full pre-prepare per
   replica per decision.

   Crash-rejoin (lib/recovery): a recovering replica broadcasts
   [Fetch_state] with its ledger height; peers answer [Snapshot] with
   their stable-checkpoint anchor plus the missing ledger suffix.  The
   replica installs once f+1 replies agree on the anchor, adopting the
   group's view, and keeps refetching with backoff until it commits at
   the live frontier again.  Without this, a rejoining replica (the
   old primary especially) stays wedged: peers never resend the
   prepares/commits it slept through, and new-view messages skip
   already-committed slots. *)

module Batch = Rdb_types.Batch
module Certificate = Rdb_types.Certificate
module Config = Rdb_types.Config
module Ctx = Rdb_types.Ctx
module Wire = Rdb_types.Wire
module Client_core = Rdb_types.Client_core
module Protocol = Rdb_types.Protocol
module App = Rdb_types.App
module Time = Rdb_sim.Time
module Recovery = Rdb_recovery.Recovery

let name = "Pbft"

type msg =
  | Engine_msg of Messages.msg
  | Request of Batch.t
  | Read_request of Batch.t
      (* read-only batch served from replica state without consensus;
         the client needs f+1 matching result digests *)
  | Reply of { batch_id : int; result_digest : string; primary : int }
  | Fetch_state of { from : int }
  | Snapshot of {
      from : int;
      anchor_seq : int;
      anchor_digest : string;
      view : int;
      blocks : (Batch.t * Certificate.t option) list;
      (* Full App state at the server: present only when ledger
         payloads are stripped (replaying [blocks] cannot rebuild
         state then). *)
      state : App.snapshot option;
    }

type replica = {
  ctx : msg Ctx.t;
  engine : Engine.t;
  f : int;
  (* Ledger appends issued (execute calls) / completed (on_done).
     [issued] runs ahead of [appended] by the in-flight executes;
     after a crash the in-flight ones were dropped, so [on_recover]
     resyncs [issued] to [appended]. *)
  mutable issued : int;
  mutable appended : int;
  mutable recovering : bool;
  (* src -> (from, anchor_seq, anchor_digest, view, blocks, state) *)
  snap_replies :
    ( int,
      int * int * string * int * (Batch.t * Certificate.t option) list * App.snapshot option )
    Hashtbl.t;
  stats : Recovery.Stats.t;
  mutable task : Recovery.Task.t option;
  (* digest -> (batch id, result digest) of an executed batch: a
     retransmitted request for a batch we already executed (its reply
     was lost on the wire) is answered from this cache instead of
     being silently dropped by the engine's duplicate-proposal
     guard. *)
  reply_cache : (string, int * string) Hashtbl.t;
}

type client = { core : msg Client_core.t; primary_guess : int ref }

(* All replicas of the deployment form one cluster. *)
let members_of cfg = Array.init (Config.n_replicas cfg) (fun i -> i)

let reply_size cfg = Wire.response_bytes ~batch_size:cfg.Config.batch_size

(* -- state transfer ------------------------------------------------------ *)

let broadcast_fetch (r : replica) =
  let cfg = r.ctx.Ctx.config in
  let vcost = Config.recv_floor_cost cfg ~bytes:Wire.fetch_bytes in
  let me = r.ctx.Ctx.id in
  let dsts = List.filter (fun d -> d <> me) (List.init (Config.n_replicas cfg) Fun.id) in
  Ctx.multicast r.ctx ~dsts ~size:Wire.fetch_bytes ~vcost (Fetch_state { from = r.issued })

let serve_fetch (r : replica) ~src ~from =
  let cfg = r.ctx.Ctx.config in
  let blocks = r.ctx.Ctx.ledger_read ~height:from in
  let nb = List.length blocks in
  (* With stripped ledger payloads the served blocks cannot be
     replayed; piggyback the full App state (None when payloads are
     retained — replay is then cheaper than shipping state). *)
  let state = r.ctx.Ctx.state_snapshot () in
  let size =
    Wire.snapshot_bytes ~batch_size:cfg.Config.batch_size ~sigs:(Config.cert_wire_sigs cfg)
      ~blocks:nb
    + (match state with Some s -> String.length s.App.state | None -> 0)
  in
  (* The requester verifies the anchor digest and one certificate per
     block before installing. *)
  let vcost =
    Time.add
      (Config.recv_floor_cost cfg ~bytes:size)
      (Time.of_us_f (cfg.Config.costs.Config.verify_us *. float_of_int (max 1 nb)))
  in
  r.ctx.Ctx.send ~dst:src ~size ~vcost
    (Snapshot
       {
         from;
         anchor_seq = Engine.low_water r.engine;
         anchor_digest = Engine.stable_digest r.engine;
         view = Engine.view r.engine;
         blocks;
         state;
       })

let install (r : replica) ~from ~anchor_seq ~anchor_digest ~view ~blocks ~state =
  (* Install the App snapshot first (forward-ratchet: a stale one is
     ignored): served blocks may be payload-stripped, in which case the
     state transfer — not replay — is what rebuilds the store. *)
  Option.iter r.ctx.Ctx.app_restore state;
  let filled = ref 0 in
  List.iteri
    (fun i (batch, cert) ->
      let h = from + i in
      (* [issued] may advance inside this loop: [note_external_commit]
         unblocks queued commit quorums, whose emissions interleave at
         the frontier in order. *)
      if h = r.issued then begin
        r.issued <- r.issued + 1;
        incr filled;
        r.ctx.Ctx.execute batch ~cert ~on_done:(fun result ->
            r.ctx.Ctx.phase ~key:h ~name:"execute";
            r.appended <- r.appended + 1;
            match result with
            | Some res when not (Batch.is_noop batch) ->
                Hashtbl.replace r.reply_cache batch.Batch.digest
                  (batch.Batch.id, res.App.digest)
            | _ -> ());
        ignore (Engine.note_external_commit r.engine ~seq:h batch)
      end)
    blocks;
  if !filled > 0 then begin
    Recovery.Stats.note_holes r.stats !filled;
    Recovery.Stats.note_state_transfer r.stats
  end;
  Engine.install_checkpoint r.engine ~seq:anchor_seq ~digest:anchor_digest;
  Engine.adopt_view r.engine ~view

(* Install once f+1 replies agree on the stable-checkpoint anchor,
   taking the reply reaching the highest ledger height. *)
let try_install (r : replica) =
  let groups = Hashtbl.create 4 in
  Hashtbl.iter
    (fun _ (from, aseq, adig, view, blocks, state) ->
      let k = (aseq, adig) in
      Hashtbl.replace groups k
        ((from, view, blocks, state) :: Option.value ~default:[] (Hashtbl.find_opt groups k)))
    r.snap_replies;
  let chosen =
    Hashtbl.fold
      (fun (aseq, adig) rs acc ->
        match acc with
        | Some _ -> acc
        | None -> if List.length rs >= r.f + 1 then Some (aseq, adig, rs) else None)
      groups None
  in
  match chosen with
  | None -> ()
  | Some (aseq, adig, rs) ->
      let from, view, blocks, state =
        List.fold_left
          (fun (bf, bv, bb, bs) (f', v', b', s') ->
            if f' + List.length b' > bf + List.length bb then (f', v', b', s')
            else (bf, bv, bb, bs))
          (List.hd rs) (List.tl rs)
      in
      Hashtbl.reset r.snap_replies;
      install r ~from ~anchor_seq:aseq ~anchor_digest:adig ~view ~blocks ~state

(* -- replica ------------------------------------------------------------- *)

(* Start the crash-rejoin state transfer for a replica that fell
   behind the group's acceptance window without ever crashing (e.g. a
   delayed pre-prepare stalled its frontier while the others raced
   ahead): nobody retransmits the normal-path messages its window
   dropped, so the fetch/snapshot path is the only way back. *)
let begin_catchup (r : replica) =
  if not r.recovering then begin
    r.recovering <- true;
    Hashtbl.reset r.snap_replies;
    Recovery.Stats.note_retransmit r.stats;
    broadcast_fetch r;
    match r.task with Some task -> Recovery.Task.start task | None -> ()
  end

let create_replica (ctx : msg Ctx.t) =
  let cfg = ctx.Ctx.config in
  let engine_ctx = Ctx.map_send (fun m -> Engine_msg m) ctx in
  let r_ref = ref None in
  let on_committed ~seq (batch : Batch.t) cert =
    match !r_ref with
    | None -> ()
    | Some r ->
        r.issued <- r.issued + 1;
        (* A normal-path commit means this replica is back at the live
           frontier: catch-up is done. *)
        r.recovering <- false;
        ctx.Ctx.execute batch ~cert:(Some cert) ~on_done:(fun result ->
            ctx.Ctx.phase ~key:seq ~name:"execute";
            r.appended <- r.appended + 1;
            match result with
            | Some res when not (Batch.is_noop batch) ->
                (* Reply with the real execution-result digest; the
                   client accepts at f+1 matching digests, i.e. f+1
                   replicas agreeing on what was executed. *)
                Hashtbl.replace r.reply_cache batch.Batch.digest
                  (batch.Batch.id, res.App.digest);
                let primary = Engine.primary r.engine in
                ctx.Ctx.send ~dst:batch.Batch.origin ~size:(reply_size cfg)
                  ~vcost:(Config.recv_floor_cost cfg ~bytes:(reply_size cfg))
                  (Reply { batch_id = batch.Batch.id; result_digest = res.App.digest; primary })
            | _ ->
                (* Appended but not applied (App ahead after a state
                   install, or stripped payload): no result to report —
                   up-to-date replicas answer the client. *)
                ())
  in
  let engine =
    Engine.create ~ctx:engine_ctx ~members:(members_of cfg) ~cluster:0 ~on_committed
      ~on_view_change:(fun ~view:_ -> ()) ()
  in
  let f = (Config.n_replicas cfg - 1) / 3 in
  let r =
    {
      ctx;
      engine;
      f;
      issued = 0;
      appended = 0;
      recovering = false;
      snap_replies = Hashtbl.create 8;
      stats = Recovery.Stats.create ();
      task = None;
      reply_cache = Hashtbl.create 256;
    }
  in
  r_ref := Some r;
  Engine.set_on_behind engine
    (Some (fun ~seq:_ -> match !r_ref with Some r -> begin_catchup r | None -> ()));
  let base = Time.of_ms_f cfg.Config.local_timeout_ms in
  r.task <-
    Some
      (Recovery.Task.create
         ~set_timer:(fun ~delay k -> ignore (ctx.Ctx.set_timer ~delay k))
         ~rng:ctx.Ctx.rng ~base
         ~cap:(Time.of_ms_f (8. *. cfg.Config.local_timeout_ms))
         ~needed:(fun () -> r.recovering)
         ~progress:(fun () -> r.issued)
         ~fire:(fun ~attempt:_ ->
           Recovery.Stats.note_retransmit r.stats;
           broadcast_fetch r)
         ());
  r

let on_message (r : replica) ~src (m : msg) =
  match m with
  | Engine_msg em -> Engine.on_message r.engine ~src em
  | Request batch -> (
      if Batch.verify ~keychain:r.ctx.Ctx.keychain batch then
        match Hashtbl.find_opt r.reply_cache batch.Batch.digest with
        | Some (batch_id, result_digest) ->
            (* Already executed: the client's retransmission means the
               original reply was lost — answer from the cache. *)
            let cfg = r.ctx.Ctx.config in
            r.ctx.Ctx.send ~dst:batch.Batch.origin ~size:(reply_size cfg)
              ~vcost:(Config.recv_floor_cost cfg ~bytes:(reply_size cfg))
              (Reply { batch_id; result_digest; primary = Engine.primary r.engine })
        | None -> Engine.submit_batch r.engine batch)
  | Read_request batch ->
      (* Consensus-bypass read: serve the read-only batch from current
         state.  Safe at f+1 matching digests because a non-faulty
         reply reflects a prefix of the agreed order; a client that
         cannot gather f+1 (replica states at different heights) times
         out and re-orders the batch through consensus. *)
      if Batch.verify ~keychain:r.ctx.Ctx.keychain batch && Batch.read_only batch then
        r.ctx.Ctx.read_execute batch ~on_done:(fun res ->
            let cfg = r.ctx.Ctx.config in
            r.ctx.Ctx.send ~dst:batch.Batch.origin ~size:(reply_size cfg)
              ~vcost:(Config.recv_floor_cost cfg ~bytes:(reply_size cfg))
              (Reply
                 {
                   batch_id = batch.Batch.id;
                   result_digest = res.App.digest;
                   primary = Engine.primary r.engine;
                 }))
  | Fetch_state { from } -> serve_fetch r ~src ~from
  | Snapshot { from; anchor_seq; anchor_digest; view; blocks; state } ->
      if r.recovering then begin
        Hashtbl.replace r.snap_replies src (from, anchor_seq, anchor_digest, view, blocks, state);
        try_install r
      end
  | Reply _ -> ()

let engine (r : replica) = r.engine

(* -- adversarial view (lib/adversary) ------------------------------------ *)

(* Equivocation is modelled on pre-prepares only: the forged payload is
   a validly signed no-op batch in the same (view, seq) slot, so it
   passes backup-side batch verification — the classic two-faced
   primary that prepare/commit vote counting must contain. *)
let adversary : msg Rdb_types.Interpose.view =
  let open Rdb_types.Interpose in
  let classify = function
    | Engine_msg em -> (
        match em with
        | Messages.Preprepare _ -> Proposal
        | Messages.Prepare _ | Messages.Commit _ -> Vote
        | Messages.Checkpoint _ -> Sync
        | Messages.ViewChange _ | Messages.NewView _ -> View_change
        | Messages.Forward _ -> Client)
    | Request _ | Read_request _ | Reply _ -> Client
    | Fetch_state _ | Snapshot _ -> Sync
  in
  let conflict ~keychain ~nonce = function
    | Engine_msg (Messages.Preprepare { view; seq; batch }) ->
        let forged =
          Batch.noop ~keychain ~cluster:batch.Batch.cluster ~origin:batch.Batch.origin
            ~created:batch.Batch.created ~nonce
        in
        Some (Engine_msg (Messages.Preprepare { view; seq; batch = forged }))
    | _ -> None
  in
  { classify; conflict }

let on_recover (r : replica) =
  Engine.on_recover r.engine;
  (* Executes in flight at crash time were dropped with their ledger
     appends: resync the issue cursor to what actually landed. *)
  r.issued <- r.appended;
  r.recovering <- true;
  Hashtbl.reset r.snap_replies;
  broadcast_fetch r;
  match r.task with Some task -> Recovery.Task.start task | None -> ()

let recovery (r : replica) = Recovery.Stats.to_protocol r.stats
let disable_recovery (r : replica) = Engine.set_on_behind r.engine None

(* -- client agent -------------------------------------------------------- *)

let create_client (ctx : msg Ctx.t) ~cluster:_ =
  let cfg = ctx.Ctx.config in
  let size = Wire.batch_bytes ~batch_size:cfg.Config.batch_size in
  let vcost = Config.recv_floor_cost cfg ~bytes:size in
  (* The view-0 primary lives in region 0; replies update the guess
     after view changes. *)
  let primary_guess = ref 0 in
  let transmit ~retry (batch : Batch.t) =
    if retry then
      (* Suspect the primary: broadcast so backups forward and start
         censorship timers (standard Pbft client fallback). *)
      List.iter
        (fun dst -> ctx.Ctx.send ~dst ~size ~vcost (Request batch))
        (List.init (Config.n_replicas cfg) Fun.id)
    else ctx.Ctx.send ~dst:!primary_guess ~size ~vcost (Request batch)
  in
  (* Read-only batches go straight to every replica; f+1 matching
     result digests prove the read reflects a committed prefix. *)
  let transmit_read (batch : Batch.t) =
    List.iter
      (fun dst -> ctx.Ctx.send ~dst ~size ~vcost (Read_request batch))
      (List.init (Config.n_replicas cfg) Fun.id)
  in
  (* Global f for the flat group. *)
  let f_global = (Config.n_replicas cfg - 1) / 3 in
  {
    core = Client_core.create ~ctx ~threshold:(f_global + 1) ~transmit_read ~transmit ();
    primary_guess;
  }

let submit (c : client) batch = Client_core.submit c.core batch

let on_client_message (c : client) ~src (m : msg) =
  match m with
  | Reply { batch_id; result_digest; primary } ->
      c.primary_guess := primary;
      Client_core.on_reply c.core ~src ~batch_id ~result_digest
  | _ -> ()

let client_retransmits (c : client) = Client_core.retransmits c.core

let view_changes (r : replica) = Engine.n_view_changes r.engine
