(** Standalone Pbft — the baseline protocol of §4: one flat Pbft group
    over all z·n replicas, primary initially in region 0 (Oregon, as in
    the paper), clients waiting for f_global + 1 matching replies.
    Satisfies {!Rdb_types.Protocol.S}. *)

module Batch = Rdb_types.Batch
module Certificate = Rdb_types.Certificate
module Ctx = Rdb_types.Ctx
module App = Rdb_types.App

val name : string

type msg =
  | Engine_msg of Messages.msg
  | Request of Batch.t
  | Read_request of Batch.t
      (** Consensus-bypass read-only batch, answered from replica state
          with a real result digest (client needs f+1 matches). *)
  | Reply of { batch_id : int; result_digest : string; primary : int }
  | Fetch_state of { from : int }
      (** Recovering replica asking for the ledger suffix from height
          [from] plus the stable-checkpoint anchor. *)
  | Snapshot of {
      from : int;
      anchor_seq : int;
      anchor_digest : string;
      view : int;
      blocks : (Batch.t * Certificate.t option) list;
      state : App.snapshot option;
          (** App state snapshot, attached when ledger blocks are
              payload-stripped and cannot be replayed. *)
    }  (** State-transfer reply; installed after f+1 anchors match. *)

type replica
type client

val create_replica : msg Ctx.t -> replica
val on_message : replica -> src:int -> msg -> unit
val view_changes : replica -> int

val on_recover : replica -> unit
(** Crash-rejoin: revive the engine's timers and start checkpoint
    state transfer with backoff until back at the live frontier. *)

val recovery : replica -> Rdb_types.Protocol.recovery_stats

val disable_recovery : replica -> unit
(** Test hook: permanently turn off recovery machinery running outside
    [on_recover] (the chaos suite's recovery-disabled mode). *)

val engine : replica -> Engine.t
(** The underlying Pbft engine (tests and Byzantine hooks). *)

val adversary : msg Rdb_types.Interpose.view
(** Adversarial message classification; equivocation forges a
    conflicting pre-prepare (signed no-op in the same slot). *)

val create_client : msg Ctx.t -> cluster:int -> client
val submit : client -> Batch.t -> unit
val on_client_message : client -> src:int -> msg -> unit

val client_retransmits : client -> int
(** The client core's retransmission counter (tests). *)
