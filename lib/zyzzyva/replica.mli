(** Zyzzyva: speculative BFT (Kotla et al.) as implemented in
    ResilientDB (§3).  Replicas execute speculatively in primary order
    and reply directly to clients; clients need all n matching replies
    (fast path) or fall back, after a commit timer, to broadcasting a
    commit certificate built from n − f matching replies — which is
    why any replica failure collapses throughput (Figure 12).
    No view change (the paper excludes Zyzzyva from the
    primary-failure experiment for the same reason).
    Satisfies {!Rdb_types.Protocol.S}. *)

module Batch = Rdb_types.Batch
module Ctx = Rdb_types.Ctx

val name : string

type msg =
  | Request of Batch.t
  | Order_req of { view : int; seq : int; batch : Batch.t; history : string }
  | Spec_reply of { batch_id : int; seq : int; history : string; result_digest : string }
  | Commit_cert of { batch_id : int; seq : int; history : string; responders : int list }
  | Local_commit of { batch_id : int; seq : int }

type replica
type client

val commit_timer_ms : float
(** The client-side τ1: how long a client waits for the full-n fast
    path before driving the commit-certificate recovery. *)

val create_replica : msg Ctx.t -> replica
val on_message : replica -> src:int -> msg -> unit
val view_changes : replica -> int

val on_recover : replica -> unit
(** No-op: Zyzzyva keeps its envelope as-is (no recovery machinery). *)

val disable_recovery : replica -> unit
(** Test hook: no recovery machinery to turn off; no-op. *)

val recovery : replica -> Rdb_types.Protocol.recovery_stats

val create_client : msg Ctx.t -> cluster:int -> client
val submit : client -> Batch.t -> unit
val on_client_message : client -> src:int -> msg -> unit

val fast_completions : client -> int
(** Batches completed on the all-n fast path. *)

val slow_completions : client -> int
(** Batches completed through the commit-certificate path. *)

val adversary : msg Rdb_types.Interpose.view
(** Adversarial message classification; content equivocation is not
    modelled (speculative histories legally diverge), so [conflict]
    is always [None]. *)
