(* Zyzzyva: speculative Byzantine fault tolerance (Kotla et al., SOSP
   2007), as implemented in ResilientDB (§3 "Other protocols").

   Normal case: the primary assigns sequence numbers and broadcasts
   order-requests; replicas execute *speculatively* in order and reply
   straight to the client.  Each reply carries the replica's history
   digest h_n = H(h_{n-1} || d_n), which is what makes divergence
   client-visible.

   Client protocol (§3: "clients in Zyzzyva require identical responses
   from all n replicas"):
   - n matching speculative replies  → complete (fast path);
   - otherwise, after a commit timer, with at least n − f matching
     replies the client broadcasts a commit certificate; replicas that
     accept it send local-commit acks and the client completes at n − f
     acks (slow path: one extra client-driven round trip, plus
     certificate verification at every replica — "the certify thread at
     each replica processes these recovery certificates");
   - with fewer than n − f matching replies the client retransmits.

   This is why Zyzzyva's throughput collapses under even a single
   replica failure (Figure 12): the fast path needs *all* n replicas,
   so every request pays the commit timer plus the recovery round.
   ResilientDB's evaluation placed the primary in Oregon; we do the
   same (replica 0).  View changes are not implemented — the paper
   excludes Zyzzyva from the primary-failure experiment for the same
   reason ("it already fails to deal with non-primary failures"). *)

module Batch = Rdb_types.Batch
module Config = Rdb_types.Config
module Ctx = Rdb_types.Ctx
module Wire = Rdb_types.Wire
module Time = Rdb_sim.Time
module Cpu = Rdb_sim.Cpu
module Sha256 = Rdb_crypto.Sha256
module Mutation = Rdb_types.Mutation
module Evidence = Rdb_types.Evidence

let name = "Zyzzyva"

type msg =
  | Request of Batch.t
  | Order_req of { view : int; seq : int; batch : Batch.t; history : string }
  | Spec_reply of { batch_id : int; seq : int; history : string; result_digest : string }
  | Commit_cert of { batch_id : int; seq : int; history : string; responders : int list }
  | Local_commit of { batch_id : int; seq : int }

(* -- replica ------------------------------------------------------------- *)

type replica = {
  ctx : msg Ctx.t;
  cfg : Config.t;
  n : int;
  f : int;
  mutable view : int;
  mutable next_seq : int;              (* primary: next sequence number *)
  mutable next_exec : int;             (* replicas execute strictly in order *)
  mutable history : string;            (* speculative history digest *)
  mutable max_committed : int;         (* highest certificate-committed seq *)
  ordered : (int, Batch.t * string) Hashtbl.t;   (* seq -> batch, history *)
  seen : (string, unit) Hashtbl.t;     (* proposed digests (primary) *)
}

let size_of cfg = function
  | Request _ -> Wire.batch_bytes ~batch_size:cfg.Config.batch_size
  | Order_req _ -> Wire.batch_bytes ~batch_size:cfg.Config.batch_size + 64
  | Spec_reply _ -> Wire.response_bytes ~batch_size:cfg.Config.batch_size
  | Commit_cert { responders; _ } ->
      Wire.small + (Wire.commit_entry_bytes * List.length responders)
  | Local_commit _ -> Wire.small

let vcost_of cfg m =
  match m with
  | Commit_cert { responders; _ } ->
      (* The certify thread checks one signature per embedded response. *)
      Time.add
        (Config.recv_floor_cost cfg ~bytes:(size_of cfg m))
        (Time.of_us_f (cfg.Config.costs.Config.verify_us *. float_of_int (List.length responders)))
  | Order_req _ ->
      Time.add (Config.recv_floor_cost cfg ~bytes:(size_of cfg m)) (Config.verify_cost cfg)
  | m -> Config.recv_floor_cost cfg ~bytes:(size_of cfg m)

let send r ~dst m = r.ctx.Ctx.send ~dst ~size:(size_of r.cfg m) ~vcost:(vcost_of r.cfg m) m

let create_replica (ctx : msg Ctx.t) =
  let cfg = ctx.Ctx.config in
  let n = Config.n_replicas cfg in
  {
    ctx;
    cfg;
    n;
    f = (n - 1) / 3;
    view = 0;
    next_seq = 0;
    next_exec = 0;
    history = Sha256.digest "zyzzyva-genesis";
    max_committed = -1;
    ordered = Hashtbl.create 128;
    seen = Hashtbl.create 256;
  }

let view_changes (_ : replica) = 0

(* Zyzzyva ships no view change and, faithfully to the paper's
   implementation choice, no recovery machinery either: its chaos
   envelope stays as-is (DESIGN.md Â§8). *)
let on_recover (_ : replica) = ()
let recovery (_ : replica) = Rdb_types.Protocol.no_recovery
let disable_recovery (_ : replica) = ()
let is_primary r = r.ctx.Ctx.id = r.view mod r.n

(* Execute in sequence order; speculative replies go to the client. *)
let rec exec_ready r =
  match Hashtbl.find_opt r.ordered r.next_exec with
  | None -> ()
  | Some (batch, history) ->
      let seq = r.next_exec in
      r.next_exec <- seq + 1;
      (* Keep a window for commit-certificate recovery; drop the rest. *)
      Hashtbl.remove r.ordered (seq - 1024);
      r.ctx.Ctx.execute batch ~cert:None ~on_done:(fun result ->
          r.ctx.Ctx.phase ~key:seq ~name:"execute";
          (match result with
          | Some res when not (Batch.is_noop batch) ->
              send r ~dst:batch.Batch.origin
                (Spec_reply
                   {
                     batch_id = batch.Batch.id;
                     seq;
                     history;
                     result_digest = res.Rdb_types.App.digest;
                   })
          | _ -> ());
          exec_ready r)

let on_message r ~src (m : msg) =
  match m with
  | Request batch ->
      if is_primary r then begin
        if
          (not (Hashtbl.mem r.seen batch.Batch.digest))
          && Batch.verify ~keychain:r.ctx.Ctx.keychain batch
        then begin
          Hashtbl.replace r.seen batch.Batch.digest ();
          let seq = r.next_seq in
          r.next_seq <- seq + 1;
          r.ctx.Ctx.charge ~stage:Cpu.Batching
            ~cost:(Config.batch_asm_cost r.cfg)
            (fun () ->
              r.ctx.Ctx.phase ~key:seq ~name:"propose";
              (* The primary's own history advances as it orders. *)
              let h = Sha256.digest_list [ r.history; batch.Batch.digest ] in
              r.history <- h;
              let m = Order_req { view = r.view; seq; batch; history = h } in
              let dsts = ref [] in
              for dst = r.n - 1 downto 0 do
                if dst <> r.ctx.Ctx.id then dsts := dst :: !dsts
              done;
              Ctx.multicast r.ctx ~dsts:!dsts ~size:(size_of r.cfg m)
                ~vcost:(vcost_of r.cfg m) m;
              Hashtbl.replace r.ordered seq (batch, h);
              exec_ready r)
        end
      end
  | Order_req { view; seq; batch; history } ->
      if view = r.view && src = view mod r.n && not (Hashtbl.mem r.ordered seq) then begin
        r.ctx.Ctx.phase ~key:seq ~name:"propose";
        Hashtbl.replace r.ordered seq (batch, history);
        if Mutation.is "zyzzyva-spec-history" then begin
          (* Mutant: speculate without verifying that the order-request
             extends the local history chain — execute in arrival
             order.  Indistinguishable under FIFO arrivals; diverges
             the moment a schedule reorders two order-requests. *)
          if seq >= r.next_exec then begin
            r.next_exec <- seq + 1;
            r.ctx.Ctx.execute batch ~cert:None ~on_done:(fun result ->
                r.ctx.Ctx.phase ~key:seq ~name:"execute";
                (match result with
                | Some res when not (Batch.is_noop batch) ->
                    send r ~dst:batch.Batch.origin
                      (Spec_reply
                         {
                           batch_id = batch.Batch.id;
                           seq;
                           history;
                           result_digest = res.Rdb_types.App.digest;
                         })
                | _ -> ());
                exec_ready r)
          end
        end
        else
          (* The chained history check: execute only the next expected
             sequence number (the history must extend ours).  Out-of-
             order arrivals wait (the network may reorder). *)
          exec_ready r
      end
  | Commit_cert { batch_id; seq; history; responders } ->
      (* n − f matching speculative responses prove the prefix up to
         [seq] is stable; acknowledge. *)
      if List.length responders >= r.n - r.f && seq < r.next_exec then begin
        Evidence.note ~point:"zyzzyva.commit-cert" ~node:r.ctx.Ctx.id
          ~count:(List.length responders) ~need:(r.n - r.f);
        (match Hashtbl.find_opt r.ordered seq with
        | Some (_, h) when String.equal h history ->
            r.max_committed <- max r.max_committed seq;
            send r ~dst:src (Local_commit { batch_id; seq })
        | _ -> ())
      end
  | Spec_reply _ | Local_commit _ -> ()

(* -- client -------------------------------------------------------------- *)

type pending = {
  batch : Batch.t;
  mutable replies : (int * string * string) list;  (* replica, history, result *)
  mutable acks : int list;                          (* local-commit acks *)
  mutable seq : int;                                (* seq from replies; -1 unknown *)
  mutable state : [ `Speculative | `Committing | `Done ];
  mutable timer : Ctx.timer option;
}

type client = {
  cctx : msg Ctx.t;
  ccfg : Config.t;
  cn : int;
  cf : int;
  inflight : (int, pending) Hashtbl.t;
  mutable fast_completions : int;
  mutable slow_completions : int;
}

let create_client (ctx : msg Ctx.t) ~cluster:_ =
  let cfg = ctx.Ctx.config in
  let n = Config.n_replicas cfg in
  {
    cctx = ctx;
    ccfg = cfg;
    cn = n;
    cf = (n - 1) / 3;
    inflight = Hashtbl.create 64;
    fast_completions = 0;
    slow_completions = 0;
  }

let csend c ~dst m = c.cctx.Ctx.send ~dst ~size:(size_of c.ccfg m) ~vcost:(vcost_of c.ccfg m) m

(* The commit timer: how long a client waits for the full n fast-path
   replies before falling back to the commit-certificate path.  Zyzzyva
   uses a short timer here (it gates every request when any replica is
   slow or down). *)
let commit_timer_ms = 2_500.

let finish c p =
  p.state <- `Done;
  (match p.timer with Some h -> c.cctx.Ctx.cancel_timer h | None -> ());
  Hashtbl.remove c.inflight p.batch.Batch.id;
  c.cctx.Ctx.complete p.batch

let try_fast_path c p =
  match p.replies with
  | (_, h0, d0) :: _ ->
      let matching =
        List.length (List.filter (fun (_, h, d) -> String.equal h h0 && String.equal d d0) p.replies)
      in
      if matching >= c.cn then begin
        c.fast_completions <- c.fast_completions + 1;
        finish c p
      end
  | [] -> ()

(* Slow path: find the n − f matching majority and broadcast a commit
   certificate built from it. *)
let try_commit_cert c p =
  let groups = Hashtbl.create 4 in
  List.iter
    (fun (replica, h, d) ->
      let key = h ^ d in
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key ((replica, h) :: cur))
    p.replies;
  let best =
    Hashtbl.fold
      (fun _ members acc ->
        match acc with
        | Some best when List.length best >= List.length members -> acc
        | _ -> Some members)
      groups None
  in
  match best with
  | Some ((_, h) :: _ as members) when List.length members >= c.cn - c.cf ->
      p.state <- `Committing;
      let responders = List.map fst members in
      let seq = p.seq in
      c.cctx.Ctx.charge ~stage:Cpu.Misc ~cost:(Config.sign_cost c.ccfg) (fun () ->
          let m = Commit_cert { batch_id = p.batch.Batch.id; seq; history = h; responders } in
          Ctx.multicast c.cctx
            ~dsts:(List.init c.cn Fun.id)
            ~size:(size_of c.ccfg m) ~vcost:(vcost_of c.ccfg m) m)
  | _ ->
      (* Not enough agreement: retransmit the request to the primary. *)
      csend c ~dst:0 (Request p.batch)

let rec arm_commit_timer c p =
  p.timer <-
    Some
      (c.cctx.Ctx.set_timer ~delay:(Time.of_ms_f commit_timer_ms) (fun () ->
           p.timer <- None;
           if p.state <> `Done then begin
             try_commit_cert c p;
             arm_commit_timer c p
           end))

let submit (c : client) (batch : Batch.t) =
  if not (Hashtbl.mem c.inflight batch.Batch.id) then begin
    let p = { batch; replies = []; acks = []; seq = -1; state = `Speculative; timer = None } in
    Hashtbl.replace c.inflight batch.Batch.id p;
    csend c ~dst:0 (Request batch);
    (* The commit timer doubles as the retransmission timer: with no
       replies at all, try_commit_cert falls through to a retransmit. *)
    arm_commit_timer c p
  end

let on_client_message (c : client) ~src (m : msg) =
  match m with
  | Spec_reply { batch_id; seq; history; result_digest } -> (
      match Hashtbl.find_opt c.inflight batch_id with
      | None -> ()
      | Some p when p.state = `Done -> ()
      | Some p ->
          if not (List.exists (fun (r, _, _) -> r = src) p.replies) then begin
            p.replies <- (src, history, result_digest) :: p.replies;
            p.seq <- max p.seq seq;
            try_fast_path c p
          end)
  | Local_commit { batch_id; _ } -> (
      match Hashtbl.find_opt c.inflight batch_id with
      | None -> ()
      | Some p when p.state <> `Committing -> ()
      | Some p ->
          if not (List.mem src p.acks) then begin
            p.acks <- src :: p.acks;
            if List.length p.acks >= c.cn - c.cf then begin
              c.slow_completions <- c.slow_completions + 1;
              finish c p
            end
          end)
  | _ -> ()

let fast_completions c = c.fast_completions
let slow_completions c = c.slow_completions

(* -- adversarial view (lib/adversary) -------------------------------------- *)

(* Content equivocation is deliberately not modelled: Zyzzyva's
   speculative histories legally diverge until the client-driven
   commit-certificate path reconciles them, so a conflicting order-req
   would trip the ledger-agreement monitor without exposing any
   protocol decision — delay and replay are the sound primitives here
   (they reorder speculative execution, which the history hashes must
   absorb). *)
let adversary : msg Rdb_types.Interpose.view =
  let open Rdb_types.Interpose in
  let classify = function
    | Request _ | Spec_reply _ -> Client
    | Order_req _ -> Proposal
    | Commit_cert _ -> Sync
    | Local_commit _ -> Vote
  in
  let conflict ~keychain:_ ~nonce:_ _ = None in
  { classify; conflict }
