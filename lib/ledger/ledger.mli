(** The append-only ledger held by every replica (paper §3): a
    hash-chained sequence of executed batches with their commit
    certificates.  Fully replicated — each replica owns a complete
    copy; tampering anywhere invalidates every later block. *)

module Batch = Rdb_types.Batch
module Certificate = Rdb_types.Certificate
module Keychain = Rdb_crypto.Keychain

type t

val create : unit -> t

val length : t -> int
val txn_count : t -> int
val is_empty : t -> bool

val tip_hash : t -> string
(** Hash of the last block ({!Block.genesis_hash} when empty). *)

val get : t -> int -> Block.t
(** @raise Invalid_argument if the height is out of range. *)

val append :
  t -> round:int -> cluster:int -> batch:Batch.t -> cert:Certificate.t option -> Block.t
(** Append the next executed batch; returns the new block. *)

val verify : t -> bool
(** Structural integrity: heights, hash links, block hashes. *)

val verify_certified : t -> keychain:Keychain.t -> quorum:int -> bool
(** Full Byzantine audit: structure, client signatures, and every
    block's commit certificate at the given quorum. *)

val read_from : t -> height:int -> Block.t list
(** Suffix starting at [height] — what a recovering replica copies
    from a peer (and then verifies independently). *)

val tamper_for_test : t -> height:int -> batch:Batch.t -> unit
(** Rewrite a block in place without fixing hashes: simulates a
    malicious replica editing history so audits can be demonstrated. *)

val common_prefix : t -> t -> int
(** Length of the longest common prefix (by block hash). *)

val is_prefix_of : t -> t -> bool
(** The safety relation: non-faulty replicas' ledgers must always be
    prefixes of one another. *)

val agreement : t list -> bool
(** [agreement ledgers] iff every pair is prefix-compatible
    ({!is_prefix_of} one way or the other) — the cross-replica safety
    check of the failure drill and the chaos invariant monitor. *)
