(* The append-only ledger held by every replica (paper §3).

   ResilientDB is fully replicated: each replica maintains a complete
   copy.  The ledger supports:
   - appending an executed batch together with its commit certificate;
   - integrity audit ([verify]): recompute every hash and check the
     chain links, so "tampering of its ledger by any replica can easily
     be detected";
   - recovery reads ([read_from]): a recovering replica can copy a
     suffix from any peer and [verify] it independently (§3);
   - certificate audit ([verify_certified]) for a full byzantine audit
     including the n − f commit signatures of every block. *)

module Batch = Rdb_types.Batch
module Certificate = Rdb_types.Certificate
module Keychain = Rdb_crypto.Keychain

type t = {
  mutable blocks : Block.t array;   (* dynamic array *)
  mutable len : int;
  mutable txn_count : int;          (* total transactions executed *)
}

let create () = { blocks = [||]; len = 0; txn_count = 0 }

let length t = t.len
let txn_count t = t.txn_count
let is_empty t = t.len = 0

let tip_hash t = if t.len = 0 then Block.genesis_hash else t.blocks.(t.len - 1).Block.hash

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ledger.get: height out of range";
  t.blocks.(i)

let ensure_capacity t =
  let cap = Array.length t.blocks in
  if t.len = cap then begin
    let ncap = if cap = 0 then 256 else 2 * cap in
    let narr = Array.make ncap t.blocks.(0) in
    Array.blit t.blocks 0 narr 0 t.len;
    t.blocks <- narr
  end

(* Append the next executed batch; returns the new block. *)
let append t ~round ~cluster ~batch ~cert =
  let prev_hash = tip_hash t in
  let block = Block.create ~height:t.len ~round ~cluster ~batch ~cert ~prev_hash in
  if t.len = 0 && Array.length t.blocks = 0 then t.blocks <- Array.make 256 block;
  ensure_capacity t;
  t.blocks.(t.len) <- block;
  t.len <- t.len + 1;
  t.txn_count <- t.txn_count + Array.length batch.Batch.txns;
  block

(* Structural integrity: heights, hash links, block hashes. *)
let verify t : bool =
  let ok = ref true in
  let prev = ref Block.genesis_hash in
  for i = 0 to t.len - 1 do
    let b = t.blocks.(i) in
    if b.Block.height <> i then ok := false;
    if not (String.equal b.Block.prev_hash !prev) then ok := false;
    if not (Block.hash_valid b) then ok := false;
    prev := b.Block.hash
  done;
  !ok

(* Full audit: structure plus batch signatures and commit certificates
   (quorum = n − f of the issuing cluster). *)
let verify_certified t ~keychain ~quorum : bool =
  verify t
  && (let ok = ref true in
      for i = 0 to t.len - 1 do
        let b = t.blocks.(i) in
        if not (Batch.verify ~keychain b.Block.batch) then ok := false;
        (match b.Block.cert with
        | Some cert ->
            if not (Certificate.verify ~keychain ~quorum cert) then ok := false;
            if not (String.equal cert.Certificate.digest b.Block.batch.Batch.digest) then ok := false
        | None -> ok := false)
      done;
      !ok)

(* Suffix starting at [height]; used by recovering replicas. *)
let read_from t ~height =
  if height < 0 || height > t.len then invalid_arg "Ledger.read_from: bad height";
  Array.sub t.blocks height (t.len - height) |> Array.to_list

(* Tamper with a block in place (test/audit tooling: simulate a
   malicious replica rewriting history, then observe [verify] fail). *)
let tamper_for_test t ~height ~batch =
  if height < 0 || height >= t.len then invalid_arg "Ledger.tamper_for_test: bad height";
  let b = t.blocks.(height) in
  t.blocks.(height) <- { b with Block.batch }

(* Do two ledgers agree on a prefix?  Returns the length of the longest
   common prefix; safety requires that any two non-faulty replicas'
   ledgers are prefixes of one another. *)
let common_prefix a b =
  let m = min a.len b.len in
  let i = ref 0 in
  while !i < m && String.equal a.blocks.(!i).Block.hash b.blocks.(!i).Block.hash do
    incr i
  done;
  !i

let is_prefix_of a b = a.len <= b.len && common_prefix a b = a.len

(* Pairwise prefix agreement across a replica group: the safety
   relation every experiment (and the chaos monitor, continuously)
   checks.  Vacuously true for fewer than two ledgers. *)
let agreement ledgers =
  let rec pairs = function
    | [] -> true
    | a :: rest ->
        List.for_all (fun b -> is_prefix_of a b || is_prefix_of b a) rest && pairs rest
  in
  pairs ledgers
