(* A block of the ledger.

   ResilientDB's ledger is "the immutable append-only blockchain
   representing the ordered sequence of accepted client requests"; the
   i-th block consists of the i-th executed client request (batch) and,
   to assure immutability, the commit certificate that proves the batch
   was agreed (paper §3).  Blocks are hash-chained: each block's hash
   covers its parent's hash, so tampering with any block invalidates
   every later block. *)

module Batch = Rdb_types.Batch
module Certificate = Rdb_types.Certificate
module Sha256 = Rdb_crypto.Sha256

type t = {
  height : int;                        (* position in the chain, 0-based *)
  round : int;                         (* consensus round that produced it *)
  cluster : int;                       (* cluster whose request this is *)
  batch : Batch.t;
  cert : Certificate.t option;         (* None only for the genesis block *)
  prev_hash : string;
  hash : string;
}

let genesis_hash = Sha256.digest "resilientdb-genesis"

let compute_hash ~height ~round ~cluster ~(batch : Batch.t) ~prev_hash =
  Sha256.digest_list
    [ "block"; string_of_int height; string_of_int round; string_of_int cluster;
      batch.Batch.digest; prev_hash ]

(* Every honest replica appends the same block at the same height, so
   the simulator computes each block hash dozens of times with
   identical inputs.  A small per-domain direct-mapped cache (indexed
   by height) returns the previously computed hash when {e all} inputs
   match — a pure-function memo, so a hit can never change a hash, and
   divergent replicas (different prev_hash or batch) simply miss.
   Domain-local storage keeps parallel shard executors race-free.
   [hash_valid] deliberately bypasses the memo and recomputes. *)
type memo_entry = {
  m_height : int;
  m_round : int;
  m_cluster : int;
  m_digest : string;
  m_prev : string;
  m_hash : string;
}

let memo_slots = 64

let memo_key : memo_entry option array Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Array.make memo_slots None)

let memo_hash ~height ~round ~cluster ~(batch : Batch.t) ~prev_hash =
  let tab = Domain.DLS.get memo_key in
  let slot = height land (memo_slots - 1) in
  match tab.(slot) with
  | Some m
    when m.m_height = height && m.m_round = round && m.m_cluster = cluster
         && String.equal m.m_digest batch.Batch.digest
         && String.equal m.m_prev prev_hash ->
      m.m_hash
  | _ ->
      let hash = compute_hash ~height ~round ~cluster ~batch ~prev_hash in
      tab.(slot) <-
        Some
          { m_height = height; m_round = round; m_cluster = cluster;
            m_digest = batch.Batch.digest; m_prev = prev_hash; m_hash = hash };
      hash

let create ~height ~round ~cluster ~batch ~cert ~prev_hash =
  let hash = memo_hash ~height ~round ~cluster ~batch ~prev_hash in
  { height; round; cluster; batch; cert; prev_hash; hash }

(* Recompute the hash from the block contents; false if tampered. *)
let hash_valid (b : t) =
  String.equal b.hash
    (compute_hash ~height:b.height ~round:b.round ~cluster:b.cluster ~batch:b.batch
       ~prev_hash:b.prev_hash)

let pp fmt b =
  Format.fprintf fmt "block@%d[round %d, %a]" b.height b.round Batch.pp b.batch
