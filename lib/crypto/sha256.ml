(* SHA-256 (FIPS 180-4), implemented from scratch on native ints.

   ResilientDB uses SHA256 for all collision-resistant message digests
   (block hashes, request digests, checkpoint state digests); this module
   is the repo-wide digest primitive.  Verified against the NIST test
   vectors in the test suite.

   All 32-bit words are carried in OCaml native ints (63-bit), masked
   back to 32 bits after every addition.  An earlier [Int32]-based
   version allocated a box for every message-schedule store and every
   round-state update — hundreds of minor allocations per compressed
   block — which made hashing the single largest line item in simulator
   profiles.  Native-int words keep the whole compression function
   allocation-free. *)

type ctx = {
  h : int array;               (* 8-word chaining state (32-bit values) *)
  buf : Bytes.t;               (* 64-byte block buffer *)
  mutable buf_len : int;       (* bytes currently in [buf] *)
  mutable total : int;         (* total message length in bytes *)
  w : int array;               (* 64-word message schedule (scratch) *)
}

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

let init () =
  {
    h = [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
           0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
    w = Array.make 64 0;
  }

let mask = 0xFFFFFFFF

(* Rotate-right within the 32-bit domain; [x] must already be masked. *)
let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

(* Process one 64-byte block located at [off] in [data]. *)
let compress ctx (data : Bytes.t) off =
  let w = ctx.w in
  for t = 0 to 15 do
    let base = off + (4 * t) in
    let b i = Char.code (Bytes.unsafe_get data (base + i)) in
    Array.unsafe_set w t ((b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3)
  done;
  for t = 16 to 63 do
    let w15 = Array.unsafe_get w (t - 15) and w2 = Array.unsafe_get w (t - 2) in
    let s0 = rotr w15 7 lxor rotr w15 18 lxor (w15 lsr 3) in
    let s1 = rotr w2 17 lxor rotr w2 19 lxor (w2 lsr 10) in
    Array.unsafe_set w t
      ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1) land mask)
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let ev = !e in
    let s1 = rotr ev 6 lxor rotr ev 11 lxor rotr ev 25 in
    let ch = (ev land !f) lxor (lnot ev land mask land !g) in
    let t1 = !hh + s1 + ch + Array.unsafe_get k t + Array.unsafe_get w t in
    let av = !a in
    let s0 = rotr av 2 lxor rotr av 13 lxor rotr av 22 in
    let maj = (av land !b) lxor (av land !c) lxor (!b land !c) in
    let t2 = s0 + maj in
    hh := !g;
    g := !f;
    f := ev;
    e := (!d + t1) land mask;
    d := !c;
    c := !b;
    b := av;
    a := (t1 + t2) land mask
  done;
  h.(0) <- (h.(0) + !a) land mask;
  h.(1) <- (h.(1) + !b) land mask;
  h.(2) <- (h.(2) + !c) land mask;
  h.(3) <- (h.(3) + !d) land mask;
  h.(4) <- (h.(4) + !e) land mask;
  h.(5) <- (h.(5) + !f) land mask;
  h.(6) <- (h.(6) + !g) land mask;
  h.(7) <- (h.(7) + !hh) land mask

let feed_bytes ctx (data : Bytes.t) off len =
  ctx.total <- ctx.total + len;
  let off = ref off and len = ref len in
  (* Fill a partial buffer first. *)
  if ctx.buf_len > 0 then begin
    let take = min !len (64 - ctx.buf_len) in
    Bytes.blit data !off ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    off := !off + take;
    len := !len - take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  (* Whole blocks straight from the input. *)
  while !len >= 64 do
    compress ctx data !off;
    off := !off + 64;
    len := !len - 64
  done;
  (* Stash the tail. *)
  if !len > 0 then begin
    Bytes.blit data !off ctx.buf ctx.buf_len !len;
    ctx.buf_len <- ctx.buf_len + !len
  end

let feed_string ctx s = feed_bytes ctx (Bytes.unsafe_of_string s) 0 (String.length s)

let finalize ctx : string =
  let bit_len = ctx.total * 8 in
  (* Padding: 0x80, zeros, then 64-bit big-endian bit length. *)
  let pad_len =
    let rem = (ctx.buf_len + 1 + 8) mod 64 in
    if rem = 0 then 1 + 8 else 1 + 8 + (64 - rem)
  in
  let pad = Bytes.make pad_len '\x00' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad (pad_len - 1 - i) (Char.chr ((bit_len lsr (8 * i)) land 0xFF))
  done;
  (* feed_bytes updates [total], but we've already captured the length. *)
  feed_bytes ctx pad 0 pad_len;
  assert (ctx.buf_len = 0);
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xFF))
  done;
  Bytes.unsafe_to_string out

(* One-shot digest of a string; returns the raw 32-byte digest. *)
let digest (s : string) : string =
  let ctx = init () in
  feed_string ctx s;
  finalize ctx

let digest_hex s = Hex.of_string (digest s)

(* Digest of the concatenation of several strings, without building the
   concatenation. *)
let digest_list (parts : string list) : string =
  let ctx = init () in
  List.iter (fun p -> feed_string ctx p) parts;
  finalize ctx
