(* Key directory for a deployment.

   In the permissioned setting all replicas are known up front (§2.1 of
   the paper), so key distribution is static: every node derives its
   signing key pair and pairwise channel-MAC keys deterministically from
   the system seed and node identities.  This mirrors the C++
   ResilientDB, which provisions keys at deployment time.

   The keychain gives the protocols exactly the two primitives the paper
   calls for (§3 "Cryptography"):
   - digital signatures (ED25519 in the paper, [Schnorr] here) for
     forwarded messages: client requests and commit messages;
   - message authentication codes (AES-CMAC) for everything else. *)

type t = {
  seed : string;
  n_nodes : int;
  secrets : Schnorr.secret_key array;   (* indexed by node id *)
  publics : Schnorr.public_key array;
  (* Pairwise CMAC keys, one per unordered node pair; lazily built. *)
  channel_keys : Cmac.key option array;
  (* Signature-verification cache.  Broadcast commit / checkpoint votes
     are verified once by *every* receiving replica — identical
     (signer, payload, signature) each time — so the first verdict is
     cached and replayed.  The key covers every verification input, so
     a tampered payload or forged signature can never hit a stale
     entry.  Guarded by [vlock]: domain-parallel runs share one
     keychain per deployment, and Hashtbl is not safe under concurrent
     mutation. *)
  vcache : (int * string * int64 * int64, bool) Hashtbl.t;
  vlock : Mutex.t;
}

let create ~seed ~n_nodes =
  let secrets = Array.init n_nodes (fun id -> Schnorr.keygen ~seed ~key_id:id) in
  let publics = Array.map Schnorr.public_key secrets in
  {
    seed;
    n_nodes;
    secrets;
    publics;
    channel_keys = Array.make (n_nodes * n_nodes) None;
    vcache = Hashtbl.create 4096;
    vlock = Mutex.create ();
  }

let n_nodes t = t.n_nodes

let secret_key t id = t.secrets.(id)
let public_key t id = t.publics.(id)

(* Symmetric channel key for the unordered pair {a, b}. *)
let channel_key t ~a ~b =
  if a < 0 || b < 0 || a >= t.n_nodes || b >= t.n_nodes then
    invalid_arg "Keychain.channel_key: node id out of range";
  let lo = min a b and hi = max a b in
  let idx = (lo * t.n_nodes) + hi in
  match t.channel_keys.(idx) with
  | Some k -> k
  | None ->
      let raw =
        String.sub
          (Hmac.mac ~key:t.seed (Printf.sprintf "channel:%d:%d" lo hi))
          0 16
      in
      let k = Cmac.of_key raw in
      t.channel_keys.(idx) <- Some k;
      k

let sign t ~signer msg = Schnorr.sign t.secrets.(signer) msg

let verify t ~signer msg sg =
  signer >= 0 && signer < t.n_nodes
  &&
  let key = (signer, msg, sg.Schnorr.e, sg.Schnorr.s) in
  Mutex.lock t.vlock;
  match Hashtbl.find_opt t.vcache key with
  | Some ok ->
      Mutex.unlock t.vlock;
      ok
  | None ->
      Mutex.unlock t.vlock;
      let ok = Schnorr.verify t.publics.(signer) msg sg in
      Mutex.lock t.vlock;
      Hashtbl.replace t.vcache key ok;
      Mutex.unlock t.vlock;
      ok

let mac t ~src ~dst msg = Cmac.mac (channel_key t ~a:src ~b:dst) msg

let verify_mac t ~src ~dst msg ~tag = Cmac.verify (channel_key t ~a:src ~b:dst) msg ~tag
