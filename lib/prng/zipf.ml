(* Zipfian sampler over [0, n), following the YCSB ZipfianGenerator
   (Gray et al., "Quickly generating billion-record synthetic databases",
   SIGMOD 1994).  The paper's evaluation drives YCSB with a "uniform
   Zipfian distribution": YCSB's default zipfian constant is 0.99, and
   we expose the constant so both skewed and near-uniform workloads can
   be produced.

   The sampler is O(1) per draw after O(n)-free closed-form setup (the
   harmonic sums are computed incrementally with the standard zeta
   approximation used by YCSB when n is large). *)

type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  zeta2theta : float;
  (* Exact inverse-CDF table for small n: cum.(k) = zeta(k+1, theta).
     The YCSB closed-form approximation is tuned for large key spaces
     and drifts by up to ~13% per-rank at n <= 64, which is exactly the
     regime our cluster/replica-indexed draws live in. *)
  cum : float array option;
}

let exact_max_n = 64

(* zeta(k, theta) = sum_{i=1..k} 1/i^theta.  Exact summation; for the
   sizes we use (<= 600k records, computed once per workload) this is
   fast enough and avoids approximation drift. *)
let zeta k theta =
  let acc = ref 0. in
  for i = 1 to k do
    acc := !acc +. (1. /. Float.pow (float_of_int i) theta)
  done;
  !acc

let create ?(theta = 0.99) n =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0. || theta >= 1. then invalid_arg "Zipf.create: theta must be in [0,1)";
  let zetan = zeta n theta in
  let zeta2theta = zeta 2 theta in
  let alpha = 1. /. (1. -. theta) in
  let eta =
    (1. -. Float.pow (2. /. float_of_int n) (1. -. theta))
    /. (1. -. (zeta2theta /. zetan))
  in
  let cum =
    if n > exact_max_n then None
    else begin
      let c = Array.make n 0. in
      let acc = ref 0. in
      for i = 0 to n - 1 do
        acc := !acc +. (1. /. Float.pow (float_of_int (i + 1)) theta);
        c.(i) <- !acc
      done;
      (* Pin the last entry so u = 1 - eps can never fall off the end
         to a rounding mismatch with zetan. *)
      c.(n - 1) <- zetan;
      Some c
    end
  in
  { n; theta; alpha; zetan; eta; zeta2theta; cum }

let cardinality t = t.n

(* One draw; returns a rank in [0, n), rank 0 being the most popular.
   Exactly one [Rng.float] call on every path, so workload streams stay
   byte-identical regardless of which branch serves a given n. *)
let sample t rng =
  let u = Rng.float rng in
  let uz = u *. t.zetan in
  match t.cum with
  | Some c ->
      (* Exact inverse CDF: least rank k with uz <= c.(k). *)
      let lo = ref 0 and hi = ref (t.n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if uz <= c.(mid) then hi := mid else lo := mid + 1
      done;
      !lo
  | None ->
      if uz < 1.0 then 0
      else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
      else
        let v =
          float_of_int t.n
          *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
        in
        let k = int_of_float v in
        if k >= t.n then t.n - 1 else if k < 0 then 0 else k

(* YCSB scrambles the zipfian rank through a hash so that the hot keys
   are spread over the key space rather than clustered at low ids. *)
let sample_scrambled t rng =
  let rank = sample t rng in
  let h = Splitmix64.mix (Int64.of_int rank) in
  Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int t.n))
