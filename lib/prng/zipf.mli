(** Zipfian sampler over [0, n) following YCSB's ZipfianGenerator
    (Gray et al., SIGMOD 1994).  The paper's workload draws keys from a
    scrambled Zipfian over a 600k-record table (§4). *)

type t

val create : ?theta:float -> int -> t
(** [create ~theta n] prepares a sampler over ranks [0..n-1].  [theta]
    is YCSB's zipfian constant (default 0.99; 0 is uniform).

    For [n <= 64] the sampler uses an exact inverse-CDF table (the YCSB
    closed-form approximation drifts by up to ~13% per rank at those
    sizes); larger [n] keeps the O(1) approximation.  Both paths
    consume exactly one RNG draw per sample.
    @raise Invalid_argument unless [n > 0] and [0 <= theta < 1]. *)

val cardinality : t -> int

val sample : t -> Rng.t -> int
(** One draw; rank 0 is the most popular. *)

val sample_scrambled : t -> Rng.t -> int
(** Like {!sample}, with ranks hashed over the key space so hot keys
    are spread out (YCSB's scrambled zipfian). *)
