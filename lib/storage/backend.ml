(* The pluggable storage-backend signature under the KV state machine.

   A backend owns the durable representation of the replicated store.
   The deterministic execution logic itself lives in {!Kv}, which
   mutates the backend's [records] mirror directly — an unboxed int64
   Bigarray, so the write hot path stays allocation-free regardless of
   backend — and notifies the backend of each executed block so a
   persistent backend can log it.

   Two implementations:
   - {!Memory}: the records array is the whole story ([log_block] is a
     no-op) — the original in-memory YCSB table;
   - {!Blockstore}: an append-only file-backed log of executed blocks
     plus periodic full-state snapshots, with recovery-on-restart that
     loads the latest valid snapshot and replays the log suffix.

   Determinism contract: for the same applied block sequence, both
   backends hold byte-identical [records] (the Kv layer is the only
   writer), hence byte-identical state digests. *)

module Sha256 = Rdb_crypto.Sha256
module Splitmix64 = Rdb_prng.Splitmix64

type records = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Identical initialization on every replica (paper §4: "each replica
   is initialized with an identical copy of the YCSB table"): record i
   starts at a value derived from i.  The single definition shared by
   every backend and by {!Rdb_ycsb.Table}. *)
let init_records ~n_records : records =
  let records = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout n_records in
  for i = 0 to n_records - 1 do
    Bigarray.Array1.unsafe_set records i (Splitmix64.mix (Int64.of_int i))
  done;
  records

let copy_records (src : records) : records =
  let dst =
    Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout (Bigarray.Array1.dim src)
  in
  Bigarray.Array1.blit src dst;
  dst

(* Full-state serialization: n_records little-endian int64s.  The
   payload of {!Rdb_types.App.snapshot} and of on-disk snapshots. *)
let serialize_records (r : records) : string =
  let n = Bigarray.Array1.dim r in
  let b = Bytes.create (n * 8) in
  for i = 0 to n - 1 do
    Bytes.set_int64_le b (i * 8) (Bigarray.Array1.unsafe_get r i)
  done;
  Bytes.unsafe_to_string b

let restore_records (r : records) (state : string) : unit =
  let n = Bigarray.Array1.dim r in
  if String.length state <> n * 8 then
    invalid_arg "Storage: snapshot state length does not match the record count";
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set r i (String.get_int64_le state (i * 8))
  done

(* Digest of the full state: SHA-256 over the little-endian records.
   Kept bit-compatible with the historical Ycsb.Table.state_digest so
   pre-existing cross-replica state checks carry over. *)
let digest_records (r : records) : string =
  let ctx = Sha256.init () in
  let buf = Bytes.create 8 in
  for i = 0 to Bigarray.Array1.dim r - 1 do
    Bytes.set_int64_le buf 0 (Bigarray.Array1.unsafe_get r i);
    Sha256.feed_bytes ctx buf 0 8
  done;
  Sha256.finalize ctx

(* The first-class backend signature. *)
module type S = sig
  type t

  val records : t -> records
  (* The live state mirror.  {!Kv} reads and writes it directly; the
     backend must never reallocate it after construction. *)

  val height : t -> int
  (* Blocks durably applied at construction time: 0 for a fresh store,
     the recovered height for a reopened persistent store. *)

  val wants_writes : t -> bool
  (* Whether [log_block] needs the per-block write set.  [false] lets
     the Kv skip write-set collection on the hot path entirely. *)

  val log_block :
    t -> height:int -> keys:int array -> values:int64 array -> count:int -> unit
  (* One executed block: the first [count] entries of [keys]/[values]
     are the post-write record values, in application order.  Called
     after the writes were applied to [records]. *)

  val note_restore : t -> height:int -> unit
  (* The Kv installed a full-state snapshot at [height], overwriting
     [records] wholesale; a persistent backend re-anchors (snapshot +
     log truncation) here. *)

  val close : t -> unit
end

(* Existential pack: one deployment mixes backends behind one type. *)
type packed = Packed : (module S with type t = 'a) * 'a -> packed
