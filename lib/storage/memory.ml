(* In-memory backend: the records array is the entire store.  This is
   the seed repo's Bigarray YCSB table refactored behind the backend
   signature — no durability, no block log, zero per-block overhead. *)

type t = { records : Backend.records }

let create ~n_records = { records = Backend.init_records ~n_records }

(* Clone of a master image: deployments initialize one table and blit
   per replica rather than re-deriving 600k records n times. *)
let of_copy master = { records = Backend.copy_records master }

(* Adopt an existing records array without copying (the caller gives
   up ownership — the Kv over this store becomes the only writer). *)
let of_records records = { records }

let records t = t.records
let height (_ : t) = 0
let wants_writes (_ : t) = false
let log_block (_ : t) ~height:_ ~keys:_ ~values:_ ~count:_ = ()
let note_restore (_ : t) ~height:_ = ()
let close (_ : t) = ()

let packed (t : t) = Backend.Packed ((module struct
  type nonrec t = t

  let records = records
  let height = height
  let wants_writes = wants_writes
  let log_block = log_block
  let note_restore = note_restore
  let close = close
end), t)
