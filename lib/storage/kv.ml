(* The deterministic KV state machine over a pluggable backend.

   This is the App implementation the fabric installs under every
   replica: it executes ordered batches against the backend's record
   mirror, produces per-batch execution results (digest + op counts)
   for client replies, serves read-only batches without advancing the
   height, and snapshots/restores full state for checkpoint-based
   state transfer.

   Determinism: execution touches only the records array, the batch
   contents, and fixed mixing constants — no time, no randomness, no
   host state — so every non-faulty replica applying the same batch
   sequence produces byte-identical results, state digests, and
   snapshots, regardless of backend. *)

module Txn = Rdb_types.Txn
module Batch = Rdb_types.Batch
module App = Rdb_types.App
module Sha256 = Rdb_crypto.Sha256
module Splitmix64 = Rdb_prng.Splitmix64

type t = {
  records : Backend.records;
  n : int;
  collect_writes : bool; (* backend wants per-block write sets *)
  log_block : height:int -> keys:int array -> values:int64 array -> count:int -> unit;
  note_restore : height:int -> unit;
  backend_close : unit -> unit;
  mutable height : int; (* batches applied; equals the ledger height it mirrors *)
  mutable reads : int; (* cumulative op counters (apply + read path) *)
  mutable writes : int;
  mutable scans : int;
  mutable scanned_rows : int;
  scratch : Buffer.t; (* per-batch result serialization, reused *)
  mutable wkeys : int array; (* write-set collection, reused *)
  mutable wvals : int64 array;
}

let create (Backend.Packed ((module B), b)) =
  let records = B.records b in
  {
    records;
    n = Bigarray.Array1.dim records;
    collect_writes = B.wants_writes b;
    log_block = (fun ~height ~keys ~values ~count -> B.log_block b ~height ~keys ~values ~count);
    note_restore = (fun ~height -> B.note_restore b ~height);
    backend_close = (fun () -> B.close b);
    height = B.height b;
    reads = 0;
    writes = 0;
    scans = 0;
    scanned_rows = 0;
    scratch = Buffer.create 1024;
    wkeys = [||];
    wvals = [||];
  }

(* Convenience constructors for the two in-tree backends. *)
let memory ?(n_records = 600_000) () = create (Memory.packed (Memory.create ~n_records))
let of_master master = create (Memory.packed (Memory.of_copy master))
let of_records records = create (Memory.packed (Memory.of_records records))

let disk ?snapshot_every ?init ~dir ~n_records () =
  create (Blockstore.packed (Blockstore.open_or_create ?snapshot_every ?init ~dir ~n_records ()))

let records t = t.records
let height t = t.height

(* Execute every transaction of [b] against current state, appending
   each result value to the scratch buffer (8 bytes LE per txn, after
   the batch digest).  With [mutate] writes land in [records] (and in
   the write-set arrays when the backend wants them); without it the
   batch is served read-only against a frozen state.  Returns the
   write-set size.  The write path keeps the historical table
   semantics — new = splitmix64_mix(old) + txn.value, mixer
   hand-inlined so the load-mix-store chain stays in unboxed int64
   registers (see lib/prng/splitmix64.ml). *)
let exec_into t (b : Batch.t) ~mutate ~reads ~writes ~scans ~rows : int =
  let txns = b.Batch.txns in
  let records = t.records in
  let n = t.n in
  Buffer.clear t.scratch;
  Buffer.add_string t.scratch b.Batch.digest;
  let collect = mutate && t.collect_writes in
  if collect && Array.length t.wkeys < Array.length txns then begin
    t.wkeys <- Array.make (Array.length txns) 0;
    t.wvals <- Array.make (Array.length txns) 0L
  end;
  let wc = ref 0 in
  for i = 0 to Array.length txns - 1 do
    let txn = Array.unsafe_get txns i in
    let key = txn.Txn.key mod n in
    let key = if key < 0 then key + n else key in
    match txn.Txn.op with
    | Txn.Read ->
        incr reads;
        Buffer.add_int64_le t.scratch (Bigarray.Array1.unsafe_get records key)
    | Txn.Scan ->
        incr scans;
        let len = Txn.scan_len txn in
        rows := !rows + len;
        (* Fold the scanned rows through the mixer so the scan result
           witnesses every row it touched. *)
        let acc = ref 0L in
        for j = 0 to len - 1 do
          let k = key + j in
          let k = if k >= n then k - n else k in
          acc := Splitmix64.mix (Int64.logxor !acc (Bigarray.Array1.unsafe_get records k))
        done;
        Buffer.add_int64_le t.scratch !acc
    | Txn.Write ->
        incr writes;
        let z = Int64.add (Bigarray.Array1.unsafe_get records key) 0x9E3779B97F4A7C15L in
        let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
        let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
        let z = Int64.logxor z (Int64.shift_right_logical z 31) in
        let nv = Int64.add z txn.Txn.value in
        if mutate then begin
          Bigarray.Array1.unsafe_set records key nv;
          if collect then begin
            t.wkeys.(!wc) <- key;
            t.wvals.(!wc) <- nv;
            incr wc
          end
        end;
        Buffer.add_int64_le t.scratch nv
  done;
  !wc

let run t (b : Batch.t) ~mutate : App.result =
  let reads = ref 0 and writes = ref 0 and scans = ref 0 and rows = ref 0 in
  let wc = exec_into t b ~mutate ~reads ~writes ~scans ~rows in
  if mutate then begin
    if t.collect_writes then
      t.log_block ~height:t.height ~keys:t.wkeys ~values:t.wvals ~count:wc;
    t.height <- t.height + 1
  end;
  t.reads <- t.reads + !reads;
  t.writes <- t.writes + !writes;
  t.scans <- t.scans + !scans;
  t.scanned_rows <- t.scanned_rows + !rows;
  {
    App.digest = Sha256.digest (Buffer.contents t.scratch);
    reads = !reads;
    writes = !writes;
    scans = !scans;
    scanned_rows = !rows;
  }

let apply t b = run t b ~mutate:true
let read t b = run t b ~mutate:false

let state_digest t = Backend.digest_records t.records

let snapshot t : App.snapshot =
  { App.height = t.height; state = Backend.serialize_records t.records }

(* Forward-ratchet only: a snapshot at or below the current height is
   ignored (a late state transfer must never rewind progress). *)
let restore t (s : App.snapshot) =
  if s.App.height > t.height then begin
    Backend.restore_records t.records s.App.state;
    t.height <- s.App.height;
    t.note_restore ~height:s.App.height
  end

let close t = t.backend_close ()

let app (t : t) : App.t =
  {
    App.apply = apply t;
    read = read t;
    height = (fun () -> t.height);
    state_digest = (fun () -> state_digest t);
    snapshot = (fun () -> snapshot t);
    restore = restore t;
    reads = (fun () -> t.reads);
    writes = (fun () -> t.writes);
    scans = (fun () -> t.scans);
    close = (fun () -> close t);
  }
