(* Append-only persistent block store: a file-backed log of executed
   blocks plus periodic full-state snapshots.

   Layout under [dir]:
   - [snapshot.bin]  magic, height, n_records, the full record state,
                     checksum — written atomically (tmp + rename);
   - [blocks.log]    framed write-sets of executed blocks, one frame
                     per block applied since the snapshot.

   Every on-disk word is a little-endian int64, so frames stay 8-byte
   aligned and a single word-wise checksum covers any record.  A frame
   for the block that moved the store from height [h] to [h+1]:

     [h] [count] ([key] [post-value]){count} [checksum]

   Recovery-on-open loads the latest valid snapshot, replays the log
   suffix frame by frame, and stops at the first frame that is
   truncated, corrupt, or out of sequence — everything after a torn
   write is discarded, exactly like a write-ahead log.  The recovered
   store then re-anchors (fresh snapshot, empty log) so recovery is
   idempotent and torn tails do not accumulate.

   Compaction: after [snapshot_every] blocks the store writes a
   snapshot at the current height and truncates the log; the log never
   holds more than [snapshot_every] frames.  The same re-anchor step
   persists an externally installed state snapshot ([note_restore]),
   which is how checkpoint-based state transfer lands on disk. *)

module Splitmix64 = Rdb_prng.Splitmix64

let snapshot_magic = 0x5244425F534E4150L (* "RDB_SNAP" *)

(* Word-wise checksum: fold Splitmix64 mixing over the int64 words of
   [s.(pos .. pos + 8*words)].  Not cryptographic — it guards against
   torn writes and bit rot, not an adversary with filesystem access. *)
let checksum (s : string) ~pos ~words =
  let acc = ref 0x436865636B73756DL in
  for k = 0 to words - 1 do
    acc := Splitmix64.mix (Int64.logxor !acc (String.get_int64_le s (pos + (k * 8))))
  done;
  !acc

type t = {
  dir : string;
  records : Backend.records;
  n : int;
  snapshot_every : int;
  mutable height : int; (* blocks durably applied *)
  mutable base : int; (* height of the on-disk snapshot; log covers (base, height] *)
  mutable log : out_channel option;
  mutable closed : bool;
  frame : Buffer.t; (* reused frame-assembly buffer *)
}

let snapshot_path t = Filename.concat t.dir "snapshot.bin"
let log_path t = Filename.concat t.dir "blocks.log"

let rec mkdirs path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdirs (Filename.dirname path);
    (try Sys.mkdir path 0o755 with Sys_error _ when Sys.file_exists path -> ())
  end

let read_file path =
  if Sys.file_exists path then
    Some (In_channel.with_open_bin path In_channel.input_all)
  else None

(* -- Snapshot file ----------------------------------------------------- *)

let write_snapshot t =
  let b = Buffer.create ((t.n * 8) + 32) in
  Buffer.add_int64_le b snapshot_magic;
  Buffer.add_int64_le b (Int64.of_int t.height);
  Buffer.add_int64_le b (Int64.of_int t.n);
  for i = 0 to t.n - 1 do
    Buffer.add_int64_le b (Bigarray.Array1.unsafe_get t.records i)
  done;
  let body = Buffer.contents b in
  let chk = checksum body ~pos:0 ~words:(t.n + 3) in
  let tmp = snapshot_path t ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc body;
      let w = Bytes.create 8 in
      Bytes.set_int64_le w 0 chk;
      Out_channel.output_bytes oc w);
  Sys.rename tmp (snapshot_path t);
  t.base <- t.height

(* Returns the snapshot height if a valid snapshot for this record
   count was loaded into [t.records]. *)
let load_snapshot t =
  match read_file (snapshot_path t) with
  | None -> None
  | Some s ->
      let len = String.length s in
      if len < 32 || len mod 8 <> 0 then None
      else
        let words = (len / 8) - 1 in
        if String.get_int64_le s (len - 8) <> checksum s ~pos:0 ~words then None
        else if String.get_int64_le s 0 <> snapshot_magic then None
        else
          let height = Int64.to_int (String.get_int64_le s 8) in
          let n = Int64.to_int (String.get_int64_le s 16) in
          if n <> t.n || words <> n + 3 || height < 0 then None
          else begin
            for i = 0 to n - 1 do
              Bigarray.Array1.unsafe_set t.records i
                (String.get_int64_le s (24 + (i * 8)))
            done;
            Some height
          end

(* -- Block log --------------------------------------------------------- *)

(* Truncate-and-reopen: the log only ever restarts empty (after a
   snapshot re-anchor), so plain [open_out_bin] is the truncation. *)
let reset_log t =
  (match t.log with Some oc -> Out_channel.close oc | None -> ());
  t.log <- Some (Out_channel.open_bin (log_path t))

(* Replay valid log frames in sequence on top of the loaded snapshot.
   Stops at the first truncated, corrupt, or out-of-sequence frame. *)
let replay_log t =
  match read_file (log_path t) with
  | None -> ()
  | Some s ->
      let len = String.length s in
      let pos = ref 0 in
      let ok = ref true in
      while !ok do
        let p = !pos in
        if p + 16 > len then ok := false
        else
          let h = Int64.to_int (String.get_int64_le s p) in
          let count = Int64.to_int (String.get_int64_le s (p + 8)) in
          let frame_len = 16 + (count * 16) + 8 in
          if count < 0 || count > (len - p) / 16 || p + frame_len > len then ok := false
          else if
            String.get_int64_le s (p + frame_len - 8)
            <> checksum s ~pos:p ~words:(2 + (count * 2))
          then ok := false
          else if h < t.height then pos := p + frame_len (* pre-snapshot leftover *)
          else if h > t.height then ok := false (* gap: cannot apply *)
          else begin
            for k = 0 to count - 1 do
              let key = Int64.to_int (String.get_int64_le s (p + 16 + (k * 16))) in
              let v = String.get_int64_le s (p + 24 + (k * 16)) in
              if key >= 0 && key < t.n then Bigarray.Array1.unsafe_set t.records key v
            done;
            t.height <- h + 1;
            pos := p + frame_len
          end
      done

(* -- Backend interface -------------------------------------------------- *)

let records t = t.records
let height t = t.height
let wants_writes (_ : t) = true

let log_block t ~height ~keys ~values ~count =
  if not t.closed then begin
    Buffer.clear t.frame;
    Buffer.add_int64_le t.frame (Int64.of_int height);
    Buffer.add_int64_le t.frame (Int64.of_int count);
    for k = 0 to count - 1 do
      Buffer.add_int64_le t.frame (Int64.of_int keys.(k));
      Buffer.add_int64_le t.frame values.(k)
    done;
    let body = Buffer.contents t.frame in
    let chk = checksum body ~pos:0 ~words:(2 + (count * 2)) in
    Buffer.add_int64_le t.frame chk;
    let oc = match t.log with Some oc -> oc | None -> invalid_arg "Blockstore: closed" in
    Buffer.output_buffer oc t.frame;
    (* Flush per block: the crash-consistency unit is one frame. *)
    Out_channel.flush oc;
    t.height <- height + 1;
    if t.height - t.base >= t.snapshot_every then begin
      write_snapshot t;
      reset_log t
    end
  end

let note_restore t ~height =
  t.height <- height;
  write_snapshot t;
  reset_log t

let close t =
  if not t.closed then begin
    (match t.log with Some oc -> Out_channel.close oc | None -> ());
    t.log <- None;
    t.closed <- true
  end

(* -- Construction ------------------------------------------------------- *)

let open_or_create ?(snapshot_every = 64) ?init ~dir ~n_records () =
  if snapshot_every < 1 then invalid_arg "Blockstore: snapshot_every must be >= 1";
  mkdirs dir;
  let records =
    match init with
    | Some master ->
        if Bigarray.Array1.dim master <> n_records then
          invalid_arg "Blockstore: init image does not match n_records";
        Backend.copy_records master
    | None -> Backend.init_records ~n_records
  in
  let t =
    {
      dir;
      records;
      n = n_records;
      snapshot_every;
      height = 0;
      base = 0;
      log = None;
      closed = false;
      frame = Buffer.create 2048;
    }
  in
  let had_state = Sys.file_exists (snapshot_path t) || Sys.file_exists (log_path t) in
  (match load_snapshot t with
  | Some h ->
      t.height <- h;
      t.base <- h
  | None -> ());
  replay_log t;
  (* Re-anchor a recovered store so torn tails are discarded for good
     and a second crash-recovery starts from a clean snapshot. *)
  if had_state then write_snapshot t;
  reset_log t;
  t

let packed (t : t) = Backend.Packed ((module struct
  type nonrec t = t

  let records = records
  let height = height
  let wants_writes = wants_writes
  let log_block = log_block
  let note_restore = note_restore
  let close = close
end), t)
