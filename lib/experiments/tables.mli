(** The paper's Tables 1 and 2 as runnable experiments. *)

module Config = Rdb_types.Config
module Report = Rdb_fabric.Report
open Runner

(** Table 1: inter-region RTT and bandwidth — both the configured
    calibration matrix and an in-simulator probe (ping echo + 64 MB
    bulk transfer per region pair) confirming the network model
    reproduces it. *)
module Table1 : sig
  val print_configured : unit -> unit
  val measure : unit -> float array array * float array array
  (** (rtt_ms, bulk_mbps) measured inside the simulator. *)

  val print_measured : unit -> unit
  val print : unit -> unit
end

(** Table 2: messages per consensus decision, measured in a fault-free
    run and printed next to the paper's asymptotic formulas. *)
module Table2 : sig
  val formula : z:int -> n:int -> f:int -> proto -> string * string
  val scenarios : ?windows:windows -> ?cfg:Config.t -> unit -> Scenario.t list
  val rows_of_reports : (Scenario.t * Report.t) list -> (proto * Report.t) list
  val run : ?windows:windows -> ?cfg:Config.t -> unit -> (proto * Report.t) list
  val print : ?cfg:Config.t -> (proto * Report.t) list -> unit
end
