(* One module per evaluation artifact of the paper (§4).

   Every figure exposes the same shape:
   - [scenarios ... ()] — the exact grid of Scenario.t the paper
     sweeps, in canonical order (this is the single source of truth:
     bench, the sweep engine and the CLI all enumerate through here);
   - [rows_of_reports] — fold ordered (scenario, report) pairs (from
     Runner.run or the sweep engine) back into plot rows;
   - [run] — serial convenience: scenarios |> run each |> rows;
   - [print] — render the series the paper plots (EXPERIMENTS.md
     records the paper's values next to ours). *)

module Config = Rdb_types.Config
module Report = Rdb_fabric.Report
open Runner

type row = { proto : proto; x : int; report : Report.t }

(* Grid enumeration: protocols outermost, swept parameter inner —
   the canonical order every consumer sees. *)
let grid ~protocols ~xs ~cfg_of ?(fault = No_fault) ~windows () =
  List.concat_map
    (fun p -> List.map (fun x -> Scenario.make ~windows ~fault p (cfg_of x)) xs)
    protocols

let run_serial scenarios = List.map (fun s -> (s, Runner.run s)) scenarios

let rows_of_reports ~x_of results =
  List.map
    (fun ((s : Scenario.t), report) -> { proto = s.Scenario.proto; x = x_of s; report })
    results

let print_series ~title ~x_label ~rows ~value ~fmt_value =
  Printf.printf "\n%s\n" title;
  Printf.printf "%-10s" x_label;
  let xs = List.sort_uniq compare (List.map (fun r -> r.x) rows) in
  let protos = List.sort_uniq compare (List.map (fun r -> r.proto) rows) in
  List.iter (fun p -> Printf.printf "%14s" (proto_name p)) protos;
  print_newline ();
  List.iter
    (fun x ->
      Printf.printf "%-10d" x;
      List.iter
        (fun p ->
          match List.find_opt (fun r -> r.x = x && r.proto = p) rows with
          | Some r -> Printf.printf "%14s" (fmt_value (value r.report))
          | None -> Printf.printf "%14s" "-")
        protos;
      print_newline ())
    xs

let fmt_tput v = Printf.sprintf "%.0f" v
let fmt_lat v = Printf.sprintf "%.2f" (v /. 1000.) (* ms -> s, as the paper plots *)

(* -- Figure 10: throughput & latency vs number of clusters; zn = 60 ---- *)
module Fig10 = struct
  let zs = [ 1; 2; 3; 4; 5; 6 ]

  let cfg_of ?(base = Config.default) z = Config.make ~base ~z ~n:(60 / z) ()

  let scenarios ?(protocols = all_protocols) ?(windows = default_windows) ?base () =
    grid ~protocols ~xs:zs ~cfg_of:(fun z -> cfg_of ?base z) ~windows ()

  let rows_of_reports results = rows_of_reports ~x_of:(fun s -> s.Scenario.cfg.Config.z) results

  let run ?protocols ?windows ?base () =
    rows_of_reports (run_serial (scenarios ?protocols ?windows ?base ()))

  let print rows =
    print_series ~title:"Figure 10 (left): throughput (txn/s) vs #clusters, zn = 60"
      ~x_label:"clusters" ~rows
      ~value:(fun r -> r.Report.throughput_txn_s)
      ~fmt_value:fmt_tput;
    print_series ~title:"Figure 10 (right): latency (s) vs #clusters, zn = 60" ~x_label:"clusters"
      ~rows
      ~value:(fun r -> r.Report.avg_latency_ms)
      ~fmt_value:fmt_lat
end

(* -- Figure 11: throughput & latency vs replicas per cluster; z = 4 ----- *)
module Fig11 = struct
  let ns = [ 4; 7; 10; 12; 15 ]

  let cfg_of ?(base = Config.default) n = Config.make ~base ~z:4 ~n ()

  let scenarios ?(protocols = all_protocols) ?(windows = default_windows) ?base () =
    grid ~protocols ~xs:ns ~cfg_of:(fun n -> cfg_of ?base n) ~windows ()

  (* Scale extension: the same two axes pushed past the paper's
     hardware reach.  The n-axis grows to 100+ replicas per cluster at
     the paper's 160k clients (now one aggregated group per cluster);
     the cluster axis grows to z = 32 tiled regions with groups
     representing 1.6M clients — 10x the paper.  GeoBFT only by
     default: the hierarchical design is what the paper claims scales,
     and the flat protocols' quadratic message complexity makes the
     largest rows disproportionately expensive to simulate. *)
  let scale_ns = [ 31; 61; 101 ]
  let scale_zs = [ 8; 16; 32 ]
  let scale_clients = 1_600_000

  let scale_cfg_of_n ?(base = Config.default) n =
    Config.make ~base ~z:4 ~n ~clients:160_000 ()

  let scale_cfg_of_z ?(base = Config.default) z =
    Config.make ~base ~z ~n:31 ~clients:scale_clients ()

  let scale_scenarios ?(protocols = [ Geobft ]) ?(windows = default_windows) ?base () =
    grid ~protocols ~xs:scale_ns ~cfg_of:(fun n -> scale_cfg_of_n ?base n) ~windows ()
    @ grid ~protocols ~xs:scale_zs ~cfg_of:(fun z -> scale_cfg_of_z ?base z) ~windows ()

  let rows_of_reports results = rows_of_reports ~x_of:(fun s -> s.Scenario.cfg.Config.n) results

  let run ?protocols ?windows ?base () =
    rows_of_reports (run_serial (scenarios ?protocols ?windows ?base ()))

  let print rows =
    print_series ~title:"Figure 11 (left): throughput (txn/s) vs replicas per cluster, z = 4"
      ~x_label:"replicas" ~rows
      ~value:(fun r -> r.Report.throughput_txn_s)
      ~fmt_value:fmt_tput;
    print_series ~title:"Figure 11 (right): latency (s) vs replicas per cluster, z = 4"
      ~x_label:"replicas" ~rows
      ~value:(fun r -> r.Report.avg_latency_ms)
      ~fmt_value:fmt_lat
end

(* -- Figure 12: throughput under failures; z = 4 -------------------------- *)
module Fig12 = struct
  let ns = [ 4; 7; 10; 12 ]

  let cfg_of ?(base = Config.default) n = Config.make ~base ~z:4 ~n ()

  (* Left: one non-primary failure.  Every protocol. *)
  let scenarios_one_failure ?(protocols = all_protocols) ?(windows = default_windows) ?base () =
    grid ~protocols ~xs:ns ~cfg_of:(fun n -> cfg_of ?base n) ~fault:One_nonprimary ~windows ()

  (* Middle: f non-primary failures per cluster. *)
  let scenarios_f_failures ?(protocols = all_protocols) ?(windows = default_windows) ?base () =
    grid ~protocols ~xs:ns ~cfg_of:(fun n -> cfg_of ?base n) ~fault:F_nonprimary ~windows ()

  (* Right: single primary failure mid-run.  The paper runs only
     GeoBFT and Pbft here (Zyzzyva cannot survive it, HotStuff has no
     fixed primary, Steward has no usable view-change). *)
  let scenarios_primary_failure ?(protocols = [ Geobft; Pbft ]) ?(windows = default_windows)
      ?base () =
    grid ~protocols ~xs:ns ~cfg_of:(fun n -> cfg_of ?base n) ~fault:Primary_failure ~windows ()

  (* Scale extension: the failure experiments at large topologies —
     z = 8 tiled regions, 31 and 61 replicas per cluster, aggregated
     groups representing 1.6M clients.  GeoBFT and Pbft (the two
     protocols whose recovery paths the paper exercises at scale). *)
  let scale_ns = [ 31; 61 ]

  let scale_cfg_of ?(base = Config.default) n =
    Config.make ~base ~z:8 ~n ~clients:1_600_000 ()

  let scale_scenarios ?(protocols = [ Geobft; Pbft ]) ?(windows = default_windows) ?base () =
    grid ~protocols ~xs:scale_ns ~cfg_of:(fun n -> scale_cfg_of ?base n) ~fault:One_nonprimary
      ~windows ()
    @ grid ~protocols ~xs:scale_ns ~cfg_of:(fun n -> scale_cfg_of ?base n) ~fault:F_nonprimary
        ~windows ()

  let rows_of_reports results = rows_of_reports ~x_of:(fun s -> s.Scenario.cfg.Config.n) results

  let run_one_failure ?protocols ?windows ?base () =
    rows_of_reports (run_serial (scenarios_one_failure ?protocols ?windows ?base ()))

  let run_f_failures ?protocols ?windows ?base () =
    rows_of_reports (run_serial (scenarios_f_failures ?protocols ?windows ?base ()))

  let run_primary_failure ?protocols ?windows ?base () =
    rows_of_reports (run_serial (scenarios_primary_failure ?protocols ?windows ?base ()))

  let print ~one ~ff ~pf =
    print_series ~title:"Figure 12 (left): throughput (txn/s), one non-primary failure, z = 4"
      ~x_label:"replicas" ~rows:one
      ~value:(fun r -> r.Report.throughput_txn_s)
      ~fmt_value:fmt_tput;
    print_series ~title:"Figure 12 (middle): throughput (txn/s), f failures per cluster, z = 4"
      ~x_label:"replicas" ~rows:ff
      ~value:(fun r -> r.Report.throughput_txn_s)
      ~fmt_value:fmt_tput;
    print_series ~title:"Figure 12 (right): throughput (txn/s), single primary failure, z = 4"
      ~x_label:"replicas" ~rows:pf
      ~value:(fun r -> r.Report.throughput_txn_s)
      ~fmt_value:fmt_tput
end

(* -- Figure 13: throughput vs batch size; z = 4, n = 7 --------------------- *)
module Fig13 = struct
  let batches = [ 10; 50; 100; 200; 300 ]

  let cfg_of ?(base = Config.default) b = Config.make ~base ~z:4 ~n:7 ~batch_size:b ()

  let scenarios ?(protocols = all_protocols) ?(windows = default_windows) ?base () =
    grid ~protocols ~xs:batches ~cfg_of:(fun b -> cfg_of ?base b) ~windows ()

  let rows_of_reports results =
    rows_of_reports ~x_of:(fun s -> s.Scenario.cfg.Config.batch_size) results

  let run ?protocols ?windows ?base () =
    rows_of_reports (run_serial (scenarios ?protocols ?windows ?base ()))

  let print rows =
    print_series ~title:"Figure 13: throughput (txn/s) vs batch size, z = 4, n = 7"
      ~x_label:"batch" ~rows
      ~value:(fun r -> r.Report.throughput_txn_s)
      ~fmt_value:fmt_tput
end
