(** A first-class experiment scenario — protocol, configuration, fault
    and measurement windows as one value with a stable human-readable
    id and a JSON round-trip.

    Scenarios are what the whole evaluation stack now exchanges:
    {!Figures} and {!Ablations} enumerate them, {!Runner.run} executes
    one, the sweep engine schedules lists of them across domains, and
    bench baselines are keyed by {!to_string} ids. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Json = Rdb_fabric.Json
module Adversary = Rdb_adversary.Adversary

type proto = Geobft | Pbft | Zyzzyva | Hotstuff | Steward

val all_protocols : proto list
val proto_name : proto -> string
val proto_of_string : string -> proto option

(** The §4.3 failure scenarios, plus seeded chaos injection. *)
type fault =
  | No_fault
  | One_nonprimary   (** one backup crashed from the start *)
  | F_nonprimary     (** f backups per cluster crashed from the start *)
  | Primary_failure  (** the initial primary crashes mid-measurement *)
  | Chaos of int
      (** sample a fault timeline from this seed (negative: use
          [cfg.seed]) and run it under the continuous invariant
          monitor *)

val fault_name : fault -> string
(** Human-readable ("one non-primary"). *)

val fault_id : fault -> string
(** Compact id spelling ("one", "chaos:3") — used in scenario ids and
    accepted by the CLI. *)

val fault_of_id : string -> fault option

type windows = { warmup : Time.t; measure : Time.t }

val default_windows : windows
(** 1 s + 4 s of simulated time: enough for a deterministic simulator
    whose pipelines fill within a second. *)

val full_windows : windows
(** 15 s + 45 s, approaching the paper's 60 s + 120 s methodology. *)

type t = {
  proto : proto;
  cfg : Config.t;
  fault : fault;
  windows : windows;
  trace : bool;
      (** aggregate a consensus-path trace during the run; the report
          then carries the per-phase breakdown and the deterministic
          digest (the sweep engine's determinism witness) *)
  attack : Adversary.Attack.t option;
      (** a Byzantine strategy program (lib/adversary) installed at the
          deployment's send/receive interposition hook; [None] runs
          with the hook disabled (zero overhead).  Spelled
          [attack=<id>] in the scenario id and carried as the versioned
          ["attack"] object in JSON (absent when [None]). *)
}

val make :
  ?windows:windows ->
  ?fault:fault ->
  ?trace:bool ->
  ?attack:Adversary.Attack.t ->
  proto ->
  Config.t ->
  t
(** Defaults: {!default_windows}, [No_fault], no tracing, no attack. *)

val equal : t -> t -> bool

(** {1 Stable id}

    [to_string] spells the swept knobs ([geobft z4 n7 b100 i64 seed1
    w1000+4000]) and appends every [Config] field that differs from
    [Config.default] ([fanout=1], [tcerts], [cost.mac=120], ...), so
    distinct scenarios have distinct ids.  [of_string] inverts it
    exactly; token order is free on input. *)

val to_string : t -> string
val of_string : string -> t option

(** {1 JSON round-trip} ([of_json (to_json t) = Ok t], all fields) *)

val schema_version : int

val to_json : t -> Json.t
val to_json_string : t -> string
val of_json : Json.t -> (t, string) result
val of_json_string : string -> (t, string) result

val cost_estimate : t -> float
(** Relative single-domain simulation cost (~ z·n²·seconds): the sweep
    engine dispatches expensive scenarios first.  Heuristic only;
    never affects results or their order. *)
