(* A first-class experiment scenario: everything one simulated
   deployment run depends on — protocol, configuration, fault,
   measurement windows, trace option — as a single value with a stable
   human-readable id and a JSON round-trip.

   The id doubles as the key of bench baselines and sweep documents:
   it spells out the swept knobs (protocol, z, n, batch, inflight,
   seed, windows) and appends any Config field that differs from
   Config.default, so distinct scenarios get distinct ids and the
   common ones stay short:

     geobft z4 n7 b100 i64 seed1 w1000+4000
     pbft z2 n4 b50 i16 seed1 w500+1500 fault=chaos:3
     geobft z4 n7 b100 i64 seed1 w1000+4000 fanout=1 trace

   [of_string] inverts [to_string] exactly (token order is free on
   input); [of_json] inverts [to_json]. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Json = Rdb_fabric.Json
module Adversary = Rdb_adversary.Adversary

type proto = Geobft | Pbft | Zyzzyva | Hotstuff | Steward

let all_protocols = [ Geobft; Pbft; Zyzzyva; Hotstuff; Steward ]

let proto_name = function
  | Geobft -> "GeoBFT"
  | Pbft -> "Pbft"
  | Zyzzyva -> "Zyzzyva"
  | Hotstuff -> "HotStuff"
  | Steward -> "Steward"

let proto_of_string s =
  match String.lowercase_ascii s with
  | "geobft" -> Some Geobft
  | "pbft" -> Some Pbft
  | "zyzzyva" -> Some Zyzzyva
  | "hotstuff" -> Some Hotstuff
  | "steward" -> Some Steward
  | _ -> None

(* The failure scenarios of §4.3, plus seeded chaos injection. *)
type fault =
  | No_fault
  | One_nonprimary           (* one backup crashed from the start *)
  | F_nonprimary             (* f backups per cluster crashed from the start *)
  | Primary_failure          (* the (initial) primary crashes mid-run *)
  | Chaos of int             (* seeded fault timeline + invariant monitor;
                                a negative seed means "use cfg.seed" *)

let fault_name = function
  | No_fault -> "none"
  | One_nonprimary -> "one non-primary"
  | F_nonprimary -> "f non-primary per cluster"
  | Primary_failure -> "primary"
  | Chaos s -> if s < 0 then "chaos" else Printf.sprintf "chaos (seed %d)" s

(* Compact spelling used in ids and on the CLI. *)
let fault_id = function
  | No_fault -> "none"
  | One_nonprimary -> "one"
  | F_nonprimary -> "f"
  | Primary_failure -> "primary"
  | Chaos s -> if s < 0 then "chaos" else Printf.sprintf "chaos:%d" s

let fault_of_id s =
  match String.lowercase_ascii s with
  | "none" -> Some No_fault
  | "one" | "one-nonprimary" -> Some One_nonprimary
  | "f" | "f-nonprimary" -> Some F_nonprimary
  | "primary" -> Some Primary_failure
  | "chaos" -> Some (Chaos (-1))
  | s when String.length s > 6 && String.sub s 0 6 = "chaos:" -> (
      match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
      | Some seed when seed >= 0 -> Some (Chaos seed)
      | _ -> None)
  | _ -> None

(* Simulated measurement windows.  The paper runs 60 s + 120 s on the
   cloud; a deterministic simulator needs less: throughput is stable
   within a few seconds once pipelines fill. *)
type windows = { warmup : Time.t; measure : Time.t }

let default_windows = { warmup = Time.sec 1; measure = Time.sec 4 }
let full_windows = { warmup = Time.sec 15; measure = Time.sec 45 }

type t = {
  proto : proto;
  cfg : Config.t;
  fault : fault;
  windows : windows;
  trace : bool;  (* aggregate a consensus-path trace; Report.trace then
                    carries the per-phase breakdown and the
                    deterministic digest *)
  attack : Adversary.Attack.t option;
      (* a Byzantine strategy program (lib/adversary) installed at the
         deployment's interposition hook; None = no adversary *)
}

let make ?(windows = default_windows) ?(fault = No_fault) ?(trace = false) ?attack proto cfg =
  { proto; cfg; fault; windows; trace; attack }

let equal (a : t) (b : t) = a = b

(* -- the id ------------------------------------------------------------- *)

let fmt_f = Json.float_to_string

(* Drop the ".0" float_to_string puts on integral values: ids read
   better as w1000+4000 than w1000.0+4000.0. *)
let fmt_ms t =
  let f = Time.to_ms_f t in
  let s = fmt_f f in
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f else s

let to_string t =
  let c = t.cfg and d = Config.default in
  let dc = d.Config.costs and cc = t.cfg.Config.costs in
  let buf = Buffer.create 64 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  add "%s z%d n%d b%d i%d seed%d w%s+%s"
    (String.lowercase_ascii (proto_name t.proto))
    c.Config.z c.Config.n c.Config.batch_size c.Config.client_inflight c.Config.seed
    (fmt_ms t.windows.warmup) (fmt_ms t.windows.measure);
  if t.fault <> No_fault then add " fault=%s" (fault_id t.fault);
  (match t.attack with
  | None -> ()
  | Some a -> add " attack=%s" (Adversary.Attack.to_id a));
  if t.trace then add " trace";
  (* Non-default knobs, fixed order so equal scenarios print equally. *)
  if c.Config.checkpoint_interval <> d.Config.checkpoint_interval then
    add " ckpt=%d" c.Config.checkpoint_interval;
  if c.Config.pipeline_depth <> d.Config.pipeline_depth then add " pd=%d" c.Config.pipeline_depth;
  if c.Config.local_timeout_ms <> d.Config.local_timeout_ms then
    add " ltms=%s" (fmt_f c.Config.local_timeout_ms);
  if c.Config.remote_timeout_ms <> d.Config.remote_timeout_ms then
    add " rtms=%s" (fmt_f c.Config.remote_timeout_ms);
  if c.Config.client_timeout_ms <> d.Config.client_timeout_ms then
    add " ctms=%s" (fmt_f c.Config.client_timeout_ms);
  if c.Config.clients <> d.Config.clients then add " clients=%d" c.Config.clients;
  if c.Config.wan_egress_mbps <> d.Config.wan_egress_mbps then
    add " wan=%s" (fmt_f c.Config.wan_egress_mbps);
  if c.Config.geobft_fanout <> d.Config.geobft_fanout then add " fanout=%d" c.Config.geobft_fanout;
  if c.Config.threshold_certs then add " tcerts";
  if c.Config.read_fraction <> d.Config.read_fraction then
    add " reads=%s" (fmt_f c.Config.read_fraction);
  if c.Config.scan_fraction <> d.Config.scan_fraction then
    add " scans=%s" (fmt_f c.Config.scan_fraction);
  if c.Config.storage <> d.Config.storage then
    add " storage=%s" (Config.storage_name c.Config.storage);
  if cc.Config.sign_us <> dc.Config.sign_us then add " cost.sign=%s" (fmt_f cc.Config.sign_us);
  if cc.Config.verify_us <> dc.Config.verify_us then
    add " cost.verify=%s" (fmt_f cc.Config.verify_us);
  if cc.Config.mac_us <> dc.Config.mac_us then add " cost.mac=%s" (fmt_f cc.Config.mac_us);
  if cc.Config.hash_us_per_kb <> dc.Config.hash_us_per_kb then
    add " cost.hashkb=%s" (fmt_f cc.Config.hash_us_per_kb);
  if cc.Config.exec_us_per_txn <> dc.Config.exec_us_per_txn then
    add " cost.exec=%s" (fmt_f cc.Config.exec_us_per_txn);
  if cc.Config.batch_asm_us <> dc.Config.batch_asm_us then
    add " cost.asm=%s" (fmt_f cc.Config.batch_asm_us);
  if cc.Config.threshold_partial_us <> dc.Config.threshold_partial_us then
    add " cost.tpart=%s" (fmt_f cc.Config.threshold_partial_us);
  if cc.Config.threshold_combine_us <> dc.Config.threshold_combine_us then
    add " cost.tcomb=%s" (fmt_f cc.Config.threshold_combine_us);
  Buffer.contents buf

let of_string s =
  let ( let* ) = Option.bind in
  let tokens = String.split_on_char ' ' s |> List.filter (fun t -> t <> "") in
  match tokens with
  | [] -> None
  | proto_tok :: rest ->
      let* proto = proto_of_string proto_tok in
      let prefixed prefix tok =
        let lp = String.length prefix in
        if String.length tok > lp && String.sub tok 0 lp = prefix then
          Some (String.sub tok lp (String.length tok - lp))
        else None
      in
      let int_field prefix tok = Option.bind (prefixed prefix tok) int_of_string_opt in
      let float_field prefix tok = Option.bind (prefixed prefix tok) float_of_string_opt in
      let rec go acc = function
        | [] -> Some acc
        | tok :: rest -> (
            let t, cfg, w = acc in
            let c k = Some ((t, k, w) : t * Config.t * windows) in
            let costs k = c { cfg with Config.costs = k } in
            let next =
              match tok with
              | "trace" -> Some (({ t with trace = true } : t), cfg, w)
              | "tcerts" -> c { cfg with Config.threshold_certs = true }
              | tok when prefixed "fault=" tok <> None ->
                  let* f = Option.bind (prefixed "fault=" tok) fault_of_id in
                  Some ({ t with fault = f }, cfg, w)
              | tok when prefixed "attack=" tok <> None ->
                  let* a = Option.bind (prefixed "attack=" tok) Adversary.Attack.of_id in
                  let attack = if a = Adversary.Attack.empty then None else Some a in
                  Some ({ t with attack }, cfg, w)
              | tok when prefixed "w" tok <> None && String.contains tok '+' -> (
                  let* body = prefixed "w" tok in
                  match String.split_on_char '+' body with
                  | [ wu; me ] ->
                      let* wu = float_of_string_opt wu in
                      let* me = float_of_string_opt me in
                      Some (t, cfg, { warmup = Time.of_ms_f wu; measure = Time.of_ms_f me })
                  | _ -> None)
              | tok when int_field "seed" tok <> None ->
                  let* v = int_field "seed" tok in
                  c { cfg with Config.seed = v }
              | tok when int_field "ckpt=" tok <> None ->
                  let* v = int_field "ckpt=" tok in
                  c { cfg with Config.checkpoint_interval = v }
              | tok when int_field "pd=" tok <> None ->
                  let* v = int_field "pd=" tok in
                  c { cfg with Config.pipeline_depth = v }
              | tok when int_field "fanout=" tok <> None ->
                  let* v = int_field "fanout=" tok in
                  c { cfg with Config.geobft_fanout = v }
              | tok when float_field "ltms=" tok <> None ->
                  let* v = float_field "ltms=" tok in
                  c { cfg with Config.local_timeout_ms = v }
              | tok when float_field "rtms=" tok <> None ->
                  let* v = float_field "rtms=" tok in
                  c { cfg with Config.remote_timeout_ms = v }
              | tok when float_field "ctms=" tok <> None ->
                  let* v = float_field "ctms=" tok in
                  c { cfg with Config.client_timeout_ms = v }
              | tok when int_field "clients=" tok <> None ->
                  let* v = int_field "clients=" tok in
                  c { cfg with Config.clients = v }
              | tok when float_field "wan=" tok <> None ->
                  let* v = float_field "wan=" tok in
                  c { cfg with Config.wan_egress_mbps = v }
              | tok when float_field "reads=" tok <> None ->
                  let* v = float_field "reads=" tok in
                  c { cfg with Config.read_fraction = v }
              | tok when float_field "scans=" tok <> None ->
                  let* v = float_field "scans=" tok in
                  c { cfg with Config.scan_fraction = v }
              | tok when prefixed "storage=" tok <> None ->
                  let* v = Option.bind (prefixed "storage=" tok) Config.storage_of_string in
                  c { cfg with Config.storage = v }
              | tok when float_field "cost.sign=" tok <> None ->
                  let* v = float_field "cost.sign=" tok in
                  costs { cfg.Config.costs with Config.sign_us = v }
              | tok when float_field "cost.verify=" tok <> None ->
                  let* v = float_field "cost.verify=" tok in
                  costs { cfg.Config.costs with Config.verify_us = v }
              | tok when float_field "cost.mac=" tok <> None ->
                  let* v = float_field "cost.mac=" tok in
                  costs { cfg.Config.costs with Config.mac_us = v }
              | tok when float_field "cost.hashkb=" tok <> None ->
                  let* v = float_field "cost.hashkb=" tok in
                  costs { cfg.Config.costs with Config.hash_us_per_kb = v }
              | tok when float_field "cost.exec=" tok <> None ->
                  let* v = float_field "cost.exec=" tok in
                  costs { cfg.Config.costs with Config.exec_us_per_txn = v }
              | tok when float_field "cost.asm=" tok <> None ->
                  let* v = float_field "cost.asm=" tok in
                  costs { cfg.Config.costs with Config.batch_asm_us = v }
              | tok when float_field "cost.tpart=" tok <> None ->
                  let* v = float_field "cost.tpart=" tok in
                  costs { cfg.Config.costs with Config.threshold_partial_us = v }
              | tok when float_field "cost.tcomb=" tok <> None ->
                  let* v = float_field "cost.tcomb=" tok in
                  costs { cfg.Config.costs with Config.threshold_combine_us = v }
              | tok when int_field "z" tok <> None ->
                  let* v = int_field "z" tok in
                  c { cfg with Config.z = v }
              | tok when int_field "n" tok <> None ->
                  let* v = int_field "n" tok in
                  c { cfg with Config.n = v }
              | tok when int_field "b" tok <> None ->
                  let* v = int_field "b" tok in
                  c { cfg with Config.batch_size = v }
              | tok when int_field "i" tok <> None ->
                  let* v = int_field "i" tok in
                  c { cfg with Config.client_inflight = v }
              | _ -> None
            in
            match next with
            | Some (t, cfg, w) -> go (t, cfg, w) rest
            | None -> None)
      in
      let seed = { proto; cfg = Config.default; fault = No_fault; windows = default_windows;
                   trace = false; attack = None } in
      let* t, cfg, windows = go (seed, Config.default, default_windows) rest in
      Some { t with cfg; windows }

(* -- JSON round-trip ----------------------------------------------------- *)

(* v2 added the optional "attack" field (absent when None); v3 added
   the workload-mix and storage config fields (read_fraction,
   scan_fraction, storage); v4 added the aggregated client population
   ("clients") — absent fields default, so older documents still
   load. *)
let schema_version = 4

let json_of_costs (c : Config.costs) : Json.t =
  Json.Obj
    [
      ("sign_us", Json.Float c.Config.sign_us);
      ("verify_us", Json.Float c.Config.verify_us);
      ("mac_us", Json.Float c.Config.mac_us);
      ("hash_us_per_kb", Json.Float c.Config.hash_us_per_kb);
      ("exec_us_per_txn", Json.Float c.Config.exec_us_per_txn);
      ("batch_asm_us", Json.Float c.Config.batch_asm_us);
      ("threshold_partial_us", Json.Float c.Config.threshold_partial_us);
      ("threshold_combine_us", Json.Float c.Config.threshold_combine_us);
    ]

let json_of_config (c : Config.t) : Json.t =
  Json.Obj
    [
      ("z", Json.Int c.Config.z);
      ("n", Json.Int c.Config.n);
      ("batch_size", Json.Int c.Config.batch_size);
      ("checkpoint_interval", Json.Int c.Config.checkpoint_interval);
      ("pipeline_depth", Json.Int c.Config.pipeline_depth);
      ("local_timeout_ms", Json.Float c.Config.local_timeout_ms);
      ("remote_timeout_ms", Json.Float c.Config.remote_timeout_ms);
      ("client_inflight", Json.Int c.Config.client_inflight);
      ("client_timeout_ms", Json.Float c.Config.client_timeout_ms);
      ("clients", Json.Int c.Config.clients);
      ("wan_egress_mbps", Json.Float c.Config.wan_egress_mbps);
      ("geobft_fanout", Json.Int c.Config.geobft_fanout);
      ("threshold_certs", Json.Bool c.Config.threshold_certs);
      ("read_fraction", Json.Float c.Config.read_fraction);
      ("scan_fraction", Json.Float c.Config.scan_fraction);
      ("storage", Json.String (Config.storage_name c.Config.storage));
      ("costs", json_of_costs c.Config.costs);
      ("seed", Json.Int c.Config.seed);
    ]

let to_json t : Json.t =
  Json.Obj
    ([
       ("schema_version", Json.Int schema_version);
       ("id", Json.String (to_string t));
       ("proto", Json.String (String.lowercase_ascii (proto_name t.proto)));
       ("fault", Json.String (fault_id t.fault));
     ]
    @ (match t.attack with
      | None -> []
      | Some a -> [ ("attack", Adversary.Attack.to_json a) ])
    @ [
        ( "windows",
          Json.Obj
            [
              ("warmup_ms", Json.Float (Time.to_ms_f t.windows.warmup));
              ("measure_ms", Json.Float (Time.to_ms_f t.windows.measure));
            ] );
        ("trace", Json.Bool t.trace);
        ("config", json_of_config t.cfg);
      ])

let to_json_string t = Json.to_string_compact (to_json t)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "Scenario.of_json: missing or ill-typed field %S" name)

let costs_of_json j : (Config.costs, string) result =
  let* sign_us = field "sign_us" Json.to_float j in
  let* verify_us = field "verify_us" Json.to_float j in
  let* mac_us = field "mac_us" Json.to_float j in
  let* hash_us_per_kb = field "hash_us_per_kb" Json.to_float j in
  let* exec_us_per_txn = field "exec_us_per_txn" Json.to_float j in
  let* batch_asm_us = field "batch_asm_us" Json.to_float j in
  let* threshold_partial_us = field "threshold_partial_us" Json.to_float j in
  let* threshold_combine_us = field "threshold_combine_us" Json.to_float j in
  Ok
    {
      Config.sign_us;
      verify_us;
      mac_us;
      hash_us_per_kb;
      exec_us_per_txn;
      batch_asm_us;
      threshold_partial_us;
      threshold_combine_us;
    }

let config_of_json j : (Config.t, string) result =
  let* z = field "z" Json.to_int j in
  let* n = field "n" Json.to_int j in
  let* batch_size = field "batch_size" Json.to_int j in
  let* checkpoint_interval = field "checkpoint_interval" Json.to_int j in
  let* pipeline_depth = field "pipeline_depth" Json.to_int j in
  let* local_timeout_ms = field "local_timeout_ms" Json.to_float j in
  let* remote_timeout_ms = field "remote_timeout_ms" Json.to_float j in
  let* client_inflight = field "client_inflight" Json.to_int j in
  let* client_timeout_ms = field "client_timeout_ms" Json.to_float j in
  let* wan_egress_mbps = field "wan_egress_mbps" Json.to_float j in
  let* geobft_fanout = field "geobft_fanout" Json.to_int j in
  let* threshold_certs = field "threshold_certs" Json.to_bool j in
  (* v3/v4 fields, defaulted so older documents load unchanged. *)
  let clients =
    Option.value ~default:0 (Option.bind (Json.member "clients" j) Json.to_int)
  in
  let read_fraction =
    Option.value ~default:0.0 (Option.bind (Json.member "read_fraction" j) Json.to_float)
  in
  let scan_fraction =
    Option.value ~default:0.0 (Option.bind (Json.member "scan_fraction" j) Json.to_float)
  in
  let* storage =
    match Json.member "storage" j with
    | None -> Ok Config.Memory
    | Some sj -> (
        match Option.bind (Json.to_str sj) Config.storage_of_string with
        | Some s -> Ok s
        | None -> Error "Scenario.of_json: ill-typed field \"storage\"")
  in
  let* costs =
    match Json.member "costs" j with
    | Some cj -> costs_of_json cj
    | None -> Error "Scenario.of_json: missing field \"costs\""
  in
  let* seed = field "seed" Json.to_int j in
  Ok
    {
      Config.z;
      n;
      batch_size;
      checkpoint_interval;
      pipeline_depth;
      local_timeout_ms;
      remote_timeout_ms;
      client_inflight;
      client_timeout_ms;
      clients;
      wan_egress_mbps;
      geobft_fanout;
      threshold_certs;
      read_fraction;
      scan_fraction;
      storage;
      costs;
      seed;
    }

let of_json j : (t, string) result =
  let* v = field "schema_version" Json.to_int j in
  if v > schema_version then
    Error (Printf.sprintf "Scenario.of_json: schema_version %d is newer than %d" v schema_version)
  else
    let* proto_s = field "proto" Json.to_str j in
    let* proto =
      match proto_of_string proto_s with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "Scenario.of_json: unknown protocol %S" proto_s)
    in
    let* fault_s = field "fault" Json.to_str j in
    let* fault =
      match fault_of_id fault_s with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "Scenario.of_json: unknown fault %S" fault_s)
    in
    let* wj =
      match Json.member "windows" j with
      | Some wj -> Ok wj
      | None -> Error "Scenario.of_json: missing field \"windows\""
    in
    let* warmup_ms = field "warmup_ms" Json.to_float wj in
    let* measure_ms = field "measure_ms" Json.to_float wj in
    let* trace = field "trace" Json.to_bool j in
    let* attack =
      match Json.member "attack" j with
      | None -> Ok None
      | Some aj -> (
          match Adversary.Attack.of_json aj with
          | Ok a -> Ok (if a = Adversary.Attack.empty then None else Some a)
          | Error msg -> Error ("Scenario.of_json: " ^ msg))
    in
    let* cfg =
      match Json.member "config" j with
      | Some cj -> config_of_json cj
      | None -> Error "Scenario.of_json: missing field \"config\""
    in
    Ok
      {
        proto;
        cfg;
        fault;
        windows = { warmup = Time.of_ms_f warmup_ms; measure = Time.of_ms_f measure_ms };
        trace;
        attack;
      }

let of_json_string s =
  match Json.of_string s with Ok j -> of_json j | Error msg -> Error ("Scenario.of_json: " ^ msg)

(* Relative single-domain cost of simulating a scenario — used by the
   sweep engine to dispatch long runs first (pure load-balance
   heuristic; result order never depends on it).  Message work grows
   ~ z·n² (local all-to-all per cluster) and linearly with simulated
   time. *)
let cost_estimate t =
  let c = t.cfg in
  let zn2 = float_of_int (c.Config.z * c.Config.n * c.Config.n) in
  let horizon = Time.to_sec_f (Time.add t.windows.warmup t.windows.measure) in
  (* Aggregated client groups widen the outstanding-batch window, and
     with it the message volume, roughly linearly. *)
  let load =
    float_of_int (Config.group_inflight c ~cluster:0)
    /. float_of_int (max 1 c.Config.client_inflight)
  in
  zn2 *. horizon *. load
