(** Uniform experiment driver: build one {!Scenario.t}, call {!run},
    get the deployment's {!Report.t}.

    The scenario vocabulary (protocols, faults, windows) lives in
    {!Scenario} and is re-exported here with type equations, so
    [Runner.Geobft], [Runner.Chaos 3] and [{ Runner.warmup; measure }]
    keep working. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Report = Rdb_fabric.Report
module Chaos = Rdb_chaos.Chaos

type proto = Scenario.proto = Geobft | Pbft | Zyzzyva | Hotstuff | Steward

val all_protocols : proto list
val proto_name : proto -> string
val proto_of_string : string -> proto option

(** The §4.3 failure scenarios, plus seeded chaos injection (see
    {!Scenario.fault}). *)
type fault = Scenario.fault =
  | No_fault
  | One_nonprimary
  | F_nonprimary
  | Primary_failure
  | Chaos of int

val fault_name : fault -> string

type windows = Scenario.windows = { warmup : Time.t; measure : Time.t }

val default_windows : windows
val full_windows : windows

val run : ?tracer:Rdb_trace.Trace.t -> ?jobs:int -> Scenario.t -> Report.t
(** Build the deployment (compact-ledger mode), inject the scenario's
    fault, run warm-up + measurement, return the report.

    When the scenario has [trace = true], a summary-only tracer is
    created internally and the report carries the per-phase breakdown
    plus the deterministic digest.  [tracer] overrides that with an
    externally owned tracer (e.g. one created with [~keep_events:true]
    for Chrome trace-event output).

    [jobs] (default 1) is the domain count for cluster-parallel
    execution (DESIGN.md §15).  It never changes results — reports and
    trace digests are byte-identical for every value — only wall-clock.

    @raise Chaos.Violation under [Chaos _] if an invariant breaks. *)

type instrument = {
  inst_surface : Chaos.surface;
  inst_engine : Rdb_sim.Engine.t;
  inst_set_delivery_hook : Rdb_sim.Network.delivery_hook option -> unit;
  inst_liveness_window_ms : float;
}
(** What the schedule-exploration checker sees of a deployment it is
    about to run: the chaos-monitor surface (ledgers, clock, deferred
    actions), the engine, the network delivery-hook installer, and the
    protocol's liveness envelope (ms). *)

val run_instrumented : ?tracer:Rdb_trace.Trace.t -> install:(instrument -> unit) -> Scenario.t -> Report.t
(** Like {!run}, but calls [install] after the deployment is built and
    before the first simulated event, so perturbation hooks and extra
    monitors can be armed on the very deployment about to run.

    @raise Chaos.Violation under [Chaos _] if an invariant breaks. *)

val run_proto :
  proto ->
  ?windows:windows ->
  ?fault:fault ->
  ?tracer:Rdb_trace.Trace.t ->
  ?jobs:int ->
  Config.t ->
  Report.t
  [@@ocaml.deprecated "Build a Scenario.t and call Runner.run instead."]
(** Positional/optional-argument form, kept for compatibility. *)

val chaos_profile : proto -> Config.t -> Chaos.caps * Chaos.agreement_mode * float
(** What the chaos scheduler may throw at each protocol (capabilities,
    agreement mode, liveness window in ms) — the faults it is
    {e required} to survive, so a violation is always a bug. *)

val adversary_profile : proto -> Config.t -> Rdb_adversary.Adversary.caps
(** The Byzantine-strategy menu each protocol is required to absorb —
    what the attack sampler (lib/check's [attack] search) may draw.
    Mirrors {!chaos_profile}: any violation found inside this envelope
    is a bug, not an expected failure. *)

val chaos_timeline : proto -> ?windows:windows -> seed:int -> Config.t -> Chaos.timeline
(** The exact fault timeline a [Chaos seed] scenario would execute,
    without running it: same deployment construction, same RNG split —
    reproducibility made checkable. *)
