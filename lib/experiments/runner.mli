(** Uniform experiment driver: pick a protocol, a configuration and a
    failure scenario; run one simulated deployment; get its report. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Report = Rdb_fabric.Report
module Chaos = Rdb_chaos.Chaos

type proto = Geobft | Pbft | Zyzzyva | Hotstuff | Steward

val all_protocols : proto list

val proto_name : proto -> string
val proto_of_string : string -> proto option

(** The §4.3 failure scenarios, plus seeded chaos injection. *)
type fault =
  | No_fault
  | One_nonprimary   (** one backup crashed from the start *)
  | F_nonprimary     (** f backups per cluster crashed from the start *)
  | Primary_failure  (** the initial primary crashes mid-measurement *)
  | Chaos of int
      (** sample a fault timeline from this seed (negative: use
          [cfg.seed]), run it under the continuous invariant monitor,
          and raise {!Chaos.Violation} — with the seed, the full
          timeline and the first broken invariant — if safety or
          post-heal liveness is ever violated *)

val fault_name : fault -> string

type windows = { warmup : Time.t; measure : Time.t }

val default_windows : windows
(** 2 s + 6 s of simulated time: enough for a deterministic simulator
    whose pipelines fill within a second. *)

val full_windows : windows
(** 15 s + 45 s, approaching the paper's 60 s + 120 s methodology. *)

val run_proto :
  proto -> ?windows:windows -> ?fault:fault -> ?tracer:Rdb_trace.Trace.t -> Config.t -> Report.t
(** Build the deployment (compact-ledger mode), inject the fault,
    run warm-up + measurement, return the report.  [tracer] threads a
    consensus-path tracer through the whole stack (network, CPU,
    protocol phases); the report then carries its summary.
    @raise Chaos.Violation under [Chaos _] if an invariant breaks. *)

val chaos_profile : proto -> Config.t -> Chaos.caps * Chaos.agreement_mode * float
(** What the chaos scheduler may throw at each protocol (capabilities,
    agreement mode, liveness window in ms) — the faults it is
    {e required} to survive, so a violation is always a bug. *)

val chaos_timeline :
  proto -> ?windows:windows -> seed:int -> Config.t -> Chaos.timeline
(** The exact fault timeline [run_proto ~fault:(Chaos seed)] would
    execute, without running it: same deployment construction, same
    RNG split — reproducibility made checkable. *)
