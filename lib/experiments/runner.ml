(* Uniform driver used by every experiment: pick a protocol, a
   configuration and a failure scenario, run one simulated deployment,
   return its report. *)

module Config = Rdb_types.Config
module Interpose = Rdb_types.Interpose
module Time = Rdb_sim.Time
module Engine = Rdb_sim.Engine
module Rng = Rdb_prng.Rng
module Keychain = Rdb_crypto.Keychain
module Report = Rdb_fabric.Report
module Ledger = Rdb_ledger.Ledger
module Chaos = Rdb_chaos.Chaos
module Adversary = Rdb_adversary.Adversary

module GeoDep = Rdb_fabric.Deployment.Make (Rdb_geobft.Replica)
module PbftDep = Rdb_fabric.Deployment.Make (Rdb_pbft.Replica)
module ZyzDep = Rdb_fabric.Deployment.Make (Rdb_zyzzyva.Replica)
module HsDep = Rdb_fabric.Deployment.Make (Rdb_hotstuff.Replica)
module StwDep = Rdb_fabric.Deployment.Make (Rdb_steward.Replica)

(* The scenario vocabulary (protocols, faults, windows) lives in
   {!Scenario}; re-exported here with type equations so existing code
   written against Runner keeps compiling. *)

type proto = Scenario.proto = Geobft | Pbft | Zyzzyva | Hotstuff | Steward

let all_protocols = Scenario.all_protocols
let proto_name = Scenario.proto_name
let proto_of_string = Scenario.proto_of_string

type fault = Scenario.fault =
  | No_fault
  | One_nonprimary
  | F_nonprimary
  | Primary_failure
  | Chaos of int

let fault_name = Scenario.fault_name

type windows = Scenario.windows = { warmup : Time.t; measure : Time.t }

let default_windows = Scenario.default_windows
let full_windows = Scenario.full_windows

(* The slice of the deployment interface the runner needs, as a named
   module type so the protocol dispatch can use first-class modules. *)
module type DEP = sig
  type t
  type msg

  val create :
    ?trace:bool ->
    ?tracer:Rdb_trace.Trace.t ->
    ?n_records:int ->
    ?retain_payloads:bool ->
    ?sharded:bool ->
    ?store_dir:string ->
    Config.t ->
    t

  val close : t -> unit
  val run : ?warmup:Time.t -> ?measure:Time.t -> ?jobs:int -> t -> Report.t
  val crash_replica : t -> int -> unit
  val recover_replica : t -> int -> unit
  val crash_primary : t -> cluster:int -> unit
  val crash_f_per_cluster : t -> unit
  val partition_clusters : t -> ca:int -> cb:int -> unit
  val heal_clusters : t -> ca:int -> cb:int -> unit
  val sever_link : t -> src:int -> dst:int -> unit
  val restore_link : t -> src:int -> dst:int -> unit
  val set_link_loss : t -> src:int -> dst:int -> p:float -> unit
  val set_link_dup : t -> src:int -> dst:int -> p:float -> unit
  val ledger : t -> replica:int -> Ledger.t
  val engine : t -> Engine.t
  val at : t -> time:Time.t -> (unit -> unit) -> unit
  val set_delivery_hook : t -> Rdb_sim.Network.delivery_hook option -> unit
  val keychain : t -> Keychain.t
  val adversary_view : msg Interpose.view
  val set_interposer : t -> msg Interpose.t option -> unit
end

(* -- chaos wiring ------------------------------------------------------ *)

(* What each protocol is expected to absorb — the scheduler only draws
   faults a protocol must survive, so a violation is always a bug.
   The envelopes are empirical statements about *this codebase*, not
   aspirations (DESIGN.md documents each exclusion):
   - GeoBFT carries the paper's full recovery machinery (local view
     change, DRVC re-serve, remote view change with re-share), so it
     takes the whole menu: any replica may crash and recover, clusters
     may partition and heal, links may flap/lose/duplicate, and a
     Byzantine primary may equivocate at the sharing step;
   - Pbft recovers from message loss and severed links through its
     view-change timer, and — since the lib/recovery checkpoint
     state-transfer layer — any replica (the primary included) may
     crash and rejoin: it pulls the stable-checkpoint anchor plus the
     missing ledger suffix from f+1 agreeing peers and adopts the
     group's view;
   - Zyzzyva has no view change at all: node 0 is not crashable;
     backup crashes and link faults push clients onto the
     commit-certificate slow path, which recovers (kept as-is,
     faithful to the paper's Zyzzyva);
   - HotStuff replicas interleave independent instance logs
     (agreement is per-executed-batch-set with in-flight slack rather
     than prefix equality); the lib/recovery hole-filling layer
     detects per-instance gaps and refetches decided batches with
     backoff, so severed and lossy links now heal — crashes stay off
     the menu (a crashed leader's own instance legitimately stalls);
   - Steward's inter-site traffic is threshold-signed shares routed
     through site representatives; the lib/recovery stall task
     re-proposes, re-accepts, re-forwards and catch-up-fetches with
     backoff + jitter, so link outages, loss and duplication on the
     representative channel now heal alongside non-representative
     crashes. *)
let chaos_profile (p : proto) (cfg : Config.t) :
    Chaos.caps * Chaos.agreement_mode * float =
  let everyone _ = true in
  match p with
  | Geobft ->
      ( { Chaos.crashable = everyone; partitions = true; link_down = true;
          link_loss = true; link_dup = true; equivocation = true },
        Chaos.Prefix,
        8000. )
  | Pbft ->
      ( { Chaos.crashable = everyone; partitions = false; link_down = true;
          link_loss = true; link_dup = true; equivocation = false },
        Chaos.Prefix,
        6000. )
  | Zyzzyva ->
      ( { Chaos.crashable = (fun v -> v <> 0); partitions = false;
          link_down = true; link_loss = true; link_dup = true;
          equivocation = false },
        Chaos.Prefix,
        6000. )
  | Hotstuff ->
      (* Crashes joined the menu when ledger state transfer was wired
         through lib/recovery (Fetch_log/Log_suffix bulk catch-up): a
         recovering replica now closes arbitrarily long holes inside
         the liveness window, where the old bounded archive left them
         permanently unservable. *)
      ( { Chaos.crashable = everyone; partitions = false; link_down = true;
          link_loss = true; link_dup = true; equivocation = false },
        Chaos.Eventual_set 256,
        6000. )
  | Steward ->
      ( { Chaos.crashable = (fun v -> v mod cfg.Config.n <> 0);
          partitions = false; link_down = true; link_loss = true;
          link_dup = true; equivocation = false },
        Chaos.Prefix,
        6000. )

(* -- adversary wiring -------------------------------------------------- *)

(* What each protocol's implementation is required to absorb from a
   Byzantine minority — the attack sampler only draws strategies from
   this menu, so any violation the search finds is a bug.  Like the
   chaos envelopes these are empirical statements about *this
   codebase* (DESIGN.md §14 documents each exclusion):
   - GeoBFT gets the full menu: silence (shares, votes, or everything),
     sharing-step equivocation, delayed sending, stale share replays,
     duplicate replays and share-deafness — the Figure-7 remote
     view-change machinery plus the lib/recovery fetch path must heal
     all of them;
   - Pbft has view changes and checkpoint state transfer, so primaries
     may equivocate, go silent or drag their feet;
   - Zyzzyva has no view change: node 0 must stay honest (faithful to
     the paper), backups may stall or replay — the client
     commit-certificate slow path absorbs it;
   - HotStuff replicas run independent instances with hole-filling
     recovery, but a silent leader legitimately stalls its own
     instance, so only delay and replay are on the menu;
   - Steward's site representatives are single points of coordination:
     only non-representatives may misbehave. *)
let adversary_profile (p : proto) (cfg : Config.t) : Adversary.caps =
  let everyone _ = true in
  let open Interpose in
  match p with
  | Geobft ->
      { Adversary.corruptible = everyone;
        silence = [ Some Share; Some Vote; None ];
        equivocate = true;
        delay = [ None; Some Share ];
        max_delay_ms = 800;
        stale = [ Share ];
        replay = [ Share; Vote ];
        deaf = [ Share ] }
  | Pbft ->
      { Adversary.corruptible = everyone;
        silence = [ Some Vote; None ];
        equivocate = true;
        delay = [ None; Some Vote ];
        max_delay_ms = 800;
        stale = [ Vote ];
        replay = [ Vote; Proposal ];
        deaf = [ Vote ] }
  | Zyzzyva ->
      { Adversary.corruptible = (fun v -> v <> 0);
        silence = [ Some Vote ];
        equivocate = false;
        delay = [ None ];
        max_delay_ms = 800;
        stale = [];
        replay = [ Vote; Sync ];
        deaf = [] }
  | Hotstuff ->
      { Adversary.corruptible = everyone;
        silence = [];
        equivocate = false;
        delay = [ None ];
        max_delay_ms = 800;
        stale = [];
        replay = [ Vote; Share ];
        deaf = [] }
  | Steward ->
      { Adversary.corruptible = (fun v -> v mod cfg.Config.n <> 0);
        silence = [ Some Share; None ];
        equivocate = false;
        delay = [ None ];
        max_delay_ms = 800;
        stale = [];
        replay = [ Share ];
        deaf = [] }

(* One adversary runtime per deployment, compiled into the network's
   interposition hook.  Also carries the generic implementation of the
   chaos equivocation action: every replica of the target cluster is
   given a silence-of-shares rule toward the [skip] clusters — the
   cluster-wide install means a local view change cannot silently cure
   the fault; healing must come through Figure 7's remote view change
   or the lib/recovery round-fetch path once the window closes. *)
let adversary_runtime (type a m)
    (module D : DEP with type t = a and type msg = m) (d : a)
    (cfg : Config.t) : m Adversary.Runtime.t =
  Adversary.Runtime.create ~view:D.adversary_view ~keychain:(D.keychain d)
    ~now:(fun () -> Engine.now (D.engine d))
    ~n:cfg.Config.n
    ~install:(fun h -> D.set_interposer d h)

let chaos_equiv rt (cfg : Config.t) =
  ( (fun ~cluster ~skip ->
      let rules =
        List.init cfg.Config.n (fun i ->
            Adversary.always
              ~actor:((cluster * cfg.Config.n) + i)
              (Adversary.Silence
                 { cls = Some Interpose.Share; dst = Adversary.Clusters skip }))
      in
      Adversary.Runtime.set rt ~name:("chaos-equiv-" ^ string_of_int cluster)
        rules),
    fun ~cluster ->
      Adversary.Runtime.clear rt ~name:("chaos-equiv-" ^ string_of_int cluster)
  )

let chaos_surface (type a) (module D : DEP with type t = a) (d : a)
    (cfg : Config.t) ~caps ~agreement ~equiv : Chaos.surface =
  {
    Chaos.z = cfg.Config.z;
    n = cfg.Config.n;
    f = Config.f cfg;
    caps;
    agreement;
    crash = (fun v -> D.crash_replica d v);
    recover = (fun v -> D.recover_replica d v);
    partition = (fun ~ca ~cb -> D.partition_clusters d ~ca ~cb);
    heal = (fun ~ca ~cb -> D.heal_clusters d ~ca ~cb);
    sever_link = (fun ~src ~dst -> D.sever_link d ~src ~dst);
    restore_link = (fun ~src ~dst -> D.restore_link d ~src ~dst);
    set_link_loss = (fun ~src ~dst ~p -> D.set_link_loss d ~src ~dst ~p);
    set_link_dup = (fun ~src ~dst ~p -> D.set_link_dup d ~src ~dst ~p);
    equivocate = fst equiv;
    stop_equivocate = snd equiv;
    ledger = (fun r -> D.ledger d ~replica:r);
    now = (fun () -> Engine.now (D.engine d));
    at = (fun time k -> D.at d ~time k);
  }

(* Plan a timeline for one freshly created deployment.  The planner
   RNG is split off the engine's stream (parent not advanced), so the
   timeline is a pure function of (cfg, protocol, seed) and the
   simulation itself consumes exactly the stream it would without
   chaos. *)
let chaos_plan (type a) (module D : DEP with type t = a) (d : a) (p : proto)
    ~(windows : windows) ~seed (cfg : Config.t) ~equiv =
  let seed = if seed >= 0 then seed else cfg.Config.seed in
  let caps, agreement, liveness_window_ms = chaos_profile p cfg in
  let surface = chaos_surface (module D) d cfg ~caps ~agreement ~equiv in
  let rng = Rng.split (Engine.rng (D.engine d)) ~index:(0x0C7A05 + seed) in
  let horizon = Time.add windows.warmup windows.measure in
  let tail_ms =
    Float.min (liveness_window_ms +. 1000.) (Time.to_ms_f horizon /. 2.)
  in
  let pc = Chaos.default_plan ~horizon ~tail:(Time.of_ms_f tail_ms) in
  let timeline = Chaos.plan ~rng ~surface pc in
  (seed, surface, timeline, liveness_window_ms)

(* What the schedule-exploration checker (lib/check) gets to see of a
   deployment it is about to run: the chaos-monitor surface (ledgers,
   clock, scheduling), the engine and network hook installers, and the
   protocol's liveness envelope. *)
type instrument = {
  inst_surface : Chaos.surface;
  inst_engine : Engine.t;
  inst_set_delivery_hook : Rdb_sim.Network.delivery_hook option -> unit;
  inst_liveness_window_ms : float;
}

let exec ?instrument ?attack ?(sharded = true) ?(jobs = 1) (p : proto) ~(windows : windows)
    ~(fault : fault) ~tracer (cfg : Config.t) : Report.t =
  let go : type a m. (module DEP with type t = a and type msg = m) -> Report.t =
   fun (module D) ->
    (* Experiments sweep many large deployments: keep ledgers compact,
       and shrink the per-replica YCSB table once the topology is large
       enough that full tables would dominate memory (every replica
       holds its own record array; the cap keeps a fleet's total near
       what a 128-replica full-table run uses).  The record count is a
       pure function of the config, so reports stay deterministic. *)
    let n_records =
      let nr = Config.n_replicas cfg in
      if nr <= 128 then Rdb_ycsb.Table.default_records
      else max 10_000 (Rdb_ycsb.Table.default_records * 128 / nr)
    in
    let d = D.create ?tracer ~n_records ~retain_payloads:false ~sharded cfg in
    let rt = adversary_runtime (module D) d cfg in
    (match attack with
    | None -> ()
    | Some a -> Adversary.Runtime.set_attack rt a);
    let equiv = chaos_equiv rt cfg in
    (match instrument with
    | None -> ()
    | Some install ->
        let caps, agreement, liveness_window_ms = chaos_profile p cfg in
        let surface = chaos_surface (module D) d cfg ~caps ~agreement ~equiv in
        install
          {
            inst_surface = surface;
            inst_engine = D.engine d;
            inst_set_delivery_hook = (fun h -> D.set_delivery_hook d h);
            inst_liveness_window_ms = liveness_window_ms;
          });
    match fault with
    | Chaos s ->
        let seed, surface, timeline, liveness_window_ms =
          chaos_plan (module D) d p ~windows ~seed:s cfg ~equiv
        in
        Chaos.install surface timeline;
        let mon = Chaos.monitor ~liveness_window_ms surface timeline in
        let report = D.run ~warmup:windows.warmup ~measure:windows.measure ~jobs d in
        D.close d;
        Chaos.check_now mon;
        (match Chaos.first_violation mon with
        | Some violation ->
            Chaos.fail ~protocol:(proto_name p) ~seed ~timeline ~violation
        | None -> report)
    | _ ->
        (match fault with
        | No_fault | Chaos _ -> ()
        | One_nonprimary -> D.crash_replica d (cfg.Config.n - 1)
        | F_nonprimary -> D.crash_f_per_cluster d
        | Primary_failure ->
            D.at d ~time:(Time.add windows.warmup (Time.ms 2000)) (fun () ->
                D.crash_primary d ~cluster:0));
        let report = D.run ~warmup:windows.warmup ~measure:windows.measure ~jobs d in
        D.close d;
        report
  in
  match p with
  | Geobft -> go (module GeoDep)
  | Pbft -> go (module PbftDep)
  | Zyzzyva -> go (module ZyzDep)
  | Hotstuff -> go (module HsDep)
  | Steward -> go (module StwDep)

(* The scenario-first entry point.  [tracer] (an externally owned
   tracer, e.g. the CLI's keep_events one for Chrome JSON output)
   overrides the scenario's [trace] flag; otherwise [trace = true]
   creates a summary-only tracer so the report carries the per-phase
   breakdown and the deterministic digest. *)
let run ?tracer ?jobs (s : Scenario.t) : Report.t =
  let tracer =
    match tracer with
    | Some _ as t -> t
    | None -> if s.Scenario.trace then Some (Rdb_trace.Trace.create ()) else None
  in
  exec ?attack:s.Scenario.attack ?jobs s.Scenario.proto ~windows:s.Scenario.windows
    ~fault:s.Scenario.fault ~tracer s.Scenario.cfg

(* The checker's entry point: like {!run}, but [install] receives the
   deployment's instrument record after construction and before the
   first simulated event, so exploration hooks and extra monitors can
   be armed on the very deployment about to run. *)
let run_instrumented ?tracer ~install (s : Scenario.t) : Report.t =
  let tracer =
    match tracer with
    | Some _ as t -> t
    | None -> if s.Scenario.trace then Some (Rdb_trace.Trace.create ()) else None
  in
  (* Schedule exploration needs globally sequenced schedule calls and
     network sends (the defer / delivery hooks), so the checker always
     gets an unsharded deployment. *)
  exec ~instrument:install ?attack:s.Scenario.attack ~sharded:false s.Scenario.proto
    ~windows:s.Scenario.windows ~fault:s.Scenario.fault ~tracer s.Scenario.cfg

let run_proto (p : proto) ?(windows = default_windows) ?(fault = No_fault) ?tracer ?jobs
    (cfg : Config.t) : Report.t =
  exec p ~windows ~fault ~tracer ?jobs cfg

(* The fault timeline a chaos run with this seed would execute, without
   running it — lets tests (and curious users) verify event-for-event
   reproducibility cheaply. *)
let chaos_timeline (p : proto) ?(windows = default_windows) ~seed
    (cfg : Config.t) : Chaos.timeline =
  let go : type a m.
      (module DEP with type t = a and type msg = m) -> Chaos.timeline =
   fun (module D) ->
    (* Planning happens before the first simulated event, and YCSB
       table population never touches the engine RNG, so a tiny table
       yields the identical timeline at a fraction of the setup cost. *)
    let d = D.create ~retain_payloads:false ~n_records:1000 cfg in
    let rt = adversary_runtime (module D) d cfg in
    let _, _, timeline, _ =
      chaos_plan (module D) d p ~windows ~seed cfg ~equiv:(chaos_equiv rt cfg)
    in
    D.close d;
    timeline
  in
  match p with
  | Geobft -> go (module GeoDep)
  | Pbft -> go (module PbftDep)
  | Zyzzyva -> go (module ZyzDep)
  | Hotstuff -> go (module HsDep)
  | Steward -> go (module StwDep)
