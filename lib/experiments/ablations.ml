(* Ablation studies for the design decisions DESIGN.md calls out.
   These go beyond the paper's own figures: each isolates one design
   choice of GeoBFT/ResilientDB and measures its contribution.

   A. Global-sharing fan-out (GeoBFT sends to f+1 replicas per remote
      cluster — Figure 5).  We sweep the fan-out s ∈ {1, f+1, n}:
      s = 1 minimizes traffic but a single unlucky receiver crash cuts
      the cluster off (remote view changes fire); s = n is the naive
      broadcast that wastes the scarce WAN bandwidth; s = f+1 is the
      paper's sweet spot — resilient with minimal cost.

   B. Pipelining depth (§2.5: replication, sharing and execution of
      consecutive rounds overlap).  Depth 1 forces lock-step rounds
      (every round pays the full WAN latency); the default depth keeps
      the WAN pipe full.

   C. MACs vs signatures (§2.1/§3: ResilientDB signs only forwarded
      messages — client requests and commits — and MACs the rest).
      We re-cost Pbft as if every message carried a signature
      (signature-heavy classic BFT), showing why the MAC/signature
      split matters.

   Like Figures.*, every ablation exposes [scenarios] (the canonical
   grid, in order) and [rows_of_reports] (fold the ordered results
   back into rows — positional, so it accepts exactly the list
   [scenarios] produced, run serially or through the sweep engine). *)

module Config = Rdb_types.Config
module Report = Rdb_fabric.Report
open Runner

let run_serial scenarios = List.map (fun s -> (s, Runner.run s)) scenarios

let shape_error name =
  invalid_arg
    (Printf.sprintf "Ablations.%s.rows_of_reports: results do not match this ablation's grid" name)

(* -- A: sharing fan-out -------------------------------------------------- *)
module Fanout = struct
  type row = { fanout : int; label : string; healthy : Report.t; one_receiver_down : Report.t }

  let fanouts ~n = [ 1; 0; n ] (* 0 = the paper's f+1 *)

  (* For each fan-out: a healthy run, then one crashed backup per
     cluster (with fan-out 1 some shares now land exclusively on dead
     replicas — the rotation hits them every n rounds — forcing
     detection and resends). *)
  let scenarios ?(windows = default_windows) ?(z = 4) ?(n = 7) () =
    List.concat_map
      (fun fanout ->
        let cfg = { (Config.make ~z ~n ()) with Config.geobft_fanout = fanout } in
        [
          Scenario.make ~windows Geobft cfg;
          Scenario.make ~windows ~fault:One_nonprimary Geobft cfg;
        ])
      (fanouts ~n)

  let label_of ~n ~fanout =
    if fanout = 1 then "s=1 (minimal)"
    else if fanout = 0 then Printf.sprintf "s=f+1=%d (paper)" (((n - 1) / 3) + 1)
    else "s=n (broadcast)"

  let rec rows_of_reports = function
    | [] -> []
    | ((s : Scenario.t), healthy) :: (_, one_receiver_down) :: rest ->
        let cfg = s.Scenario.cfg in
        let fanout = cfg.Config.geobft_fanout in
        { fanout; label = label_of ~n:cfg.Config.n ~fanout; healthy; one_receiver_down }
        :: rows_of_reports rest
    | _ -> shape_error "Fanout"

  let run ?windows ?z ?n () = rows_of_reports (run_serial (scenarios ?windows ?z ?n ()))

  let print rows =
    Printf.printf "\nAblation A: GeoBFT global-sharing fan-out (z=4, n=7)\n";
    Printf.printf "%-18s %14s %14s %18s %14s\n" "fan-out" "txn/s" "global msgs/dec" "txn/s (1 crash)"
      "view changes";
    List.iter
      (fun r ->
        Printf.printf "%-18s %14.0f %14.1f %18.0f %14d\n" r.label
          r.healthy.Report.throughput_txn_s
          (Report.global_msgs_per_decision r.healthy)
          r.one_receiver_down.Report.throughput_txn_s r.one_receiver_down.Report.view_changes)
      rows
end

(* -- B: pipelining depth --------------------------------------------------- *)
module Pipeline = struct
  type row = { depth : int; report : Report.t }

  let depths = [ 1; 2; 4; 8; 32 ]

  let scenarios ?(windows = default_windows) ?(z = 4) ?(n = 7) () =
    List.map
      (fun depth ->
        Scenario.make ~windows Geobft
          { (Config.make ~z ~n ()) with Config.pipeline_depth = depth })
      depths

  let rows_of_reports results =
    List.map
      (fun ((s : Scenario.t), report) ->
        { depth = s.Scenario.cfg.Config.pipeline_depth; report })
      results

  let run ?windows ?z ?n () = rows_of_reports (run_serial (scenarios ?windows ?z ?n ()))

  let print rows =
    Printf.printf "\nAblation B: GeoBFT consensus pipelining depth (z=4, n=7)\n";
    Printf.printf "%-8s %14s %14s\n" "depth" "txn/s" "latency (ms)";
    List.iter
      (fun r ->
        Printf.printf "%-8d %14.0f %14.1f\n" r.depth r.report.Report.throughput_txn_s
          r.report.Report.avg_latency_ms)
      rows
end

(* -- C: MACs vs signatures -------------------------------------------------- *)
module Crypto_split = struct
  type row = { label : string; report : Report.t }

  let labels = [ "MACs + sigs (ResilientDB)"; "signatures everywhere" ]

  let scenarios ?(windows = default_windows) ?(z = 4) ?(n = 7) () =
    let base = Config.make ~z ~n () in
    let sign_everything =
      (* Every MAC becomes a signature: what classic signature-based
         BFT pays per message. *)
      {
        base with
        Config.costs = { base.Config.costs with Config.mac_us = base.Config.costs.Config.verify_us };
      }
    in
    [ Scenario.make ~windows Pbft base; Scenario.make ~windows Pbft sign_everything ]

  let rows_of_reports results =
    match results with
    | [ (_, macs); (_, sigs) ] ->
        [
          { label = List.nth labels 0; report = macs }; { label = List.nth labels 1; report = sigs };
        ]
    | _ -> shape_error "Crypto_split"

  let run ?windows ?z ?n () = rows_of_reports (run_serial (scenarios ?windows ?z ?n ()))

  let print rows =
    Printf.printf "\nAblation C: authenticators in Pbft (z=4, n=7)\n";
    Printf.printf "%-28s %14s %14s\n" "scheme" "txn/s" "latency (ms)";
    List.iter
      (fun r ->
        Printf.printf "%-28s %14.0f %14.1f\n" r.label r.report.Report.throughput_txn_s
          r.report.Report.avg_latency_ms)
      rows
end

(* -- D: threshold-signature certificates (§2.2, optional) ------------------- *)
module Threshold_certs = struct
  (* "if the size of commit messages starts dominating, then threshold
     signatures can be adopted to reduce their cost" (§4): the benefit
     grows with n, since plain certificates carry n − f signatures and
     every receiver verifies all of them. *)
  type row = { n : int; plain : Report.t; threshold : Report.t }

  let ns = [ 7; 15 ]

  let scenarios ?(windows = default_windows) ?(z = 4) () =
    List.concat_map
      (fun n ->
        let base = Config.make ~z ~n () in
        [
          Scenario.make ~windows Geobft base;
          Scenario.make ~windows Geobft { base with Config.threshold_certs = true };
        ])
      ns

  let rec rows_of_reports = function
    | [] -> []
    | ((s : Scenario.t), plain) :: (_, threshold) :: rest ->
        { n = s.Scenario.cfg.Config.n; plain; threshold } :: rows_of_reports rest
    | _ -> shape_error "Threshold_certs"

  let run ?windows ?z () = rows_of_reports (run_serial (scenarios ?windows ?z ()))

  let print rows =
    Printf.printf
      "\nAblation D: GeoBFT certificates: n-f signatures vs one threshold signature (z=4)\n";
    Printf.printf "%-4s %20s %20s %24s\n" "n" "plain txn/s" "threshold txn/s"
      "global MB (plain/thr)";
    List.iter
      (fun r ->
        Printf.printf "%-4d %20.0f %20.0f %14.1f / %-8.1f\n" r.n
          r.plain.Report.throughput_txn_s r.threshold.Report.throughput_txn_s
          r.plain.Report.global_mb r.threshold.Report.global_mb)
      rows
end

(* The full ablation grid as one scenario list (canonical order), plus
   the inverse: split a result list in that order back into the four
   ablations' rows. *)
let scenarios ?(windows = default_windows) () =
  Fanout.scenarios ~windows () @ Pipeline.scenarios ~windows ()
  @ Crypto_split.scenarios ~windows ()
  @ Threshold_certs.scenarios ~windows ()

type rows = {
  fanout : Fanout.row list;
  pipeline : Pipeline.row list;
  crypto_split : Crypto_split.row list;
  threshold_certs : Threshold_certs.row list;
}

let rows_of_reports ?(windows = default_windows) results =
  let split_at k l =
    let rec go acc k = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> shape_error "scenarios"
      | x :: rest -> go (x :: acc) (k - 1) rest
    in
    go [] k l
  in
  let a, rest = split_at (List.length (Fanout.scenarios ~windows ())) results in
  let b, rest = split_at (List.length (Pipeline.scenarios ~windows ())) rest in
  let c, d = split_at (List.length (Crypto_split.scenarios ~windows ())) rest in
  {
    fanout = Fanout.rows_of_reports a;
    pipeline = Pipeline.rows_of_reports b;
    crypto_split = Crypto_split.rows_of_reports c;
    threshold_certs = Threshold_certs.rows_of_reports d;
  }

let print rows =
  Fanout.print rows.fanout;
  Pipeline.print rows.pipeline;
  Crypto_split.print rows.crypto_split;
  Threshold_certs.print rows.threshold_certs

let run_all ?(windows = default_windows) () =
  print (rows_of_reports ~windows (run_serial (scenarios ~windows ())))
