(* Table 1 and Table 2 of the paper. *)

module Config = Rdb_types.Config
module Report = Rdb_fabric.Report
module Topology = Rdb_sim.Topology
module Time = Rdb_sim.Time
open Runner

(* -- Table 1: inter-region RTT and bandwidth ------------------------------- *)
module Table1 = struct
  (* The calibration matrix itself (what the simulator is configured
     with) plus an in-simulator probe that measures the effective
     round-trip of a small message and the effective throughput of a
     bulk transfer between each region pair — verifying that the
     network model reproduces its own calibration. *)

  let print_configured () =
    let t = Topology.clustered ~z:6 ~n:1 in
    let r = Topology.n_regions t in
    Printf.printf "\nTable 1: ping round-trip times (ms) [configured from the paper]\n%8s" "";
    for j = 0 to r - 1 do
      Printf.printf "%9s" Topology.paper_regions.(j).Topology.short
    done;
    print_newline ();
    for i = 0 to r - 1 do
      Printf.printf "%-8s" Topology.paper_regions.(i).Topology.name;
      for j = 0 to r - 1 do
        Printf.printf "%9.1f" Topology.paper_rtt_ms.(i).(j)
      done;
      print_newline ()
    done;
    Printf.printf "\nTable 1: bandwidth (Mbit/s) [configured from the paper]\n%8s" "";
    for j = 0 to r - 1 do
      Printf.printf "%9s" Topology.paper_regions.(j).Topology.short
    done;
    print_newline ();
    for i = 0 to r - 1 do
      Printf.printf "%-8s" Topology.paper_regions.(i).Topology.name;
      for j = 0 to r - 1 do
        Printf.printf "%9.0f" Topology.paper_bw_mbps.(i).(j)
      done;
      print_newline ()
    done

  (* Measured in-simulator: one node per region; ping = send a small
     message and echo it back; bandwidth = push a 64 MB burst and time
     its arrival. *)
  type probe_msg = Ping of Time.t | Pong of Time.t | Bulk of { last : bool; started : Time.t }

  let measure () =
    let module Engine = Rdb_sim.Engine in
    let module Network = Rdb_sim.Network in
    let r = 6 in
    let rtt = Array.make_matrix r r 0. in
    let bw = Array.make_matrix r r 0. in
    for i = 0 to r - 1 do
      for j = 0 to r - 1 do
        let engine = Engine.create ~seed:1 () in
        let topo =
          Topology.of_paper ~n_regions:r ~node_region:[| i; j |]
        in
        let net = ref None in
        let deliver ~src:_ ~dst:_ msg =
          let n = Option.get !net in
          match msg with
          | Ping t0 -> Network.send n ~src:1 ~dst:0 ~size:64 (Pong t0)
          | Pong t0 -> rtt.(i).(j) <- Time.to_ms_f (Time.sub (Engine.now engine) t0)
          | Bulk { last; started } ->
              if last then begin
                let secs = Time.to_sec_f (Time.sub (Engine.now engine) started) in
                let bytes = 64. *. 1024. *. 1024. in
                if secs > 0. then bw.(i).(j) <- bytes *. 8. /. secs /. 1e6
              end
        in
        let n = Network.create ~engine ~topo ~jitter_ms:0. ~deliver () in
        net := Some n;
        Network.send n ~src:0 ~dst:1 ~size:64 (Ping (Engine.now engine));
        (* 64 MB in 64 KB chunks. *)
        let chunks = 1024 in
        let started = Engine.now engine in
        for k = 1 to chunks do
          Network.send n ~src:0 ~dst:1 ~size:65536 (Bulk { last = k = chunks; started })
        done;
        Engine.run engine
      done
    done;
    (rtt, bw)

  let print_measured () =
    let rtt, bw = measure () in
    Printf.printf "\nTable 1 (measured in simulator): ping RTT (ms)\n%8s" "";
    for j = 0 to 5 do
      Printf.printf "%9s" Topology.paper_regions.(j).Topology.short
    done;
    print_newline ();
    for i = 0 to 5 do
      Printf.printf "%-8s" Topology.paper_regions.(i).Topology.name;
      for j = 0 to 5 do
        Printf.printf "%9.1f" rtt.(i).(j)
      done;
      print_newline ()
    done;
    Printf.printf "\nTable 1 (measured in simulator): bulk throughput (Mbit/s)\n%8s" "";
    for j = 0 to 5 do
      Printf.printf "%9s" Topology.paper_regions.(j).Topology.short
    done;
    print_newline ();
    for i = 0 to 5 do
      Printf.printf "%-8s" Topology.paper_regions.(i).Topology.name;
      for j = 0 to 5 do
        Printf.printf "%9.0f" bw.(i).(j)
      done;
      print_newline ()
    done

  let print () =
    print_configured ();
    print_measured ()
end

(* -- Table 2: normal-case message complexity per consensus decision -------- *)
module Table2 = struct
  (* The paper states asymptotic counts for a system of z clusters of n
     replicas; we measure actual messages per decision in a fault-free
     run and print them next to the paper's formulas. *)

  let formula ~z ~n ~f = function
    | Geobft ->
        (* z parallel decisions: per decision O(2n^2) local + O(f(z-1)) global,
           globally O(2zn^2) local and O(fz^2)-ish global. *)
        ( Printf.sprintf "O(2n^2) = %d" (2 * n * n),
          Printf.sprintf "O(f(z-1)) = %d" ((f + 1) * (z - 1)) )
    | Pbft ->
        let m = z * n in
        (Printf.sprintf "O(2(zn)^2) = %d" (2 * m * m), "(all-to-all crosses regions)")
    | Zyzzyva -> (Printf.sprintf "O(zn) = %d" (z * n), "(primary to all)")
    | Hotstuff -> (Printf.sprintf "O(8zn) = %d" (8 * z * n), "(4 leader phases)")
    | Steward -> (Printf.sprintf "O(2zn^2)", "O(z^2)")

  let scenarios ?(windows = default_windows) ?(cfg = Config.make ~z:4 ~n:7 ()) () =
    List.map (fun p -> Scenario.make ~windows p cfg) all_protocols

  let rows_of_reports results =
    List.map (fun ((s : Scenario.t), report) -> (s.Scenario.proto, report)) results

  let run ?windows ?cfg () =
    rows_of_reports (List.map (fun s -> (s, Runner.run s)) (scenarios ?windows ?cfg ()))

  let print ?(cfg = Config.make ~z:4 ~n:7 ()) rows =
    let z = cfg.Config.z and n = cfg.Config.n in
    let f = Config.f cfg in
    Printf.printf
      "\nTable 2: measured messages per consensus decision (z=%d, n=%d, f=%d)\n" z n f;
    Printf.printf "%-10s %15s %15s   %-22s %s\n" "protocol" "local/decision" "global/decision"
      "paper (local)" "paper (global)";
    List.iter
      (fun (p, (r : Report.t)) ->
        let fl, fg = formula ~z ~n ~f p in
        Printf.printf "%-10s %15.1f %15.1f   %-22s %s\n" (proto_name p)
          (Report.local_msgs_per_decision r)
          (Report.global_msgs_per_decision r)
          fl fg)
      rows
end
