(** The paper's Figures 10-13 as runnable experiments.

    Every figure exposes the same shape: [scenarios] is the single
    source of truth for its parameter grid (bench, the sweep engine
    and the CLI all enumerate through it), [rows_of_reports] folds
    ordered (scenario, report) pairs back into plot rows,
    [run] is the serial convenience, and [print] renders the series
    the paper plots (EXPERIMENTS.md compares the values). *)

module Config = Rdb_types.Config
module Report = Rdb_fabric.Report
open Runner

type row = { proto : proto; x : int; report : Report.t }

(** Figure 10: throughput & latency vs number of clusters; zn = 60. *)
module Fig10 : sig
  val zs : int list
  val cfg_of : ?base:Config.t -> int -> Config.t

  val scenarios :
    ?protocols:proto list -> ?windows:windows -> ?base:Config.t -> unit -> Scenario.t list

  val rows_of_reports : (Scenario.t * Report.t) list -> row list
  val run : ?protocols:proto list -> ?windows:windows -> ?base:Config.t -> unit -> row list
  val print : row list -> unit
end

(** Figure 11: throughput & latency vs replicas per cluster; z = 4.
    The [scale_*] values extend both axes past the paper's hardware:
    n to 100+ replicas per cluster, and z to 32 tiled regions with
    aggregated client groups representing 1.6M clients (10x the
    paper's 160k). *)
module Fig11 : sig
  val ns : int list
  val cfg_of : ?base:Config.t -> int -> Config.t

  val scenarios :
    ?protocols:proto list -> ?windows:windows -> ?base:Config.t -> unit -> Scenario.t list

  val scale_ns : int list
  val scale_zs : int list
  val scale_clients : int
  val scale_cfg_of_n : ?base:Config.t -> int -> Config.t
  val scale_cfg_of_z : ?base:Config.t -> int -> Config.t

  val scale_scenarios :
    ?protocols:proto list -> ?windows:windows -> ?base:Config.t -> unit -> Scenario.t list
  (** Defaults to GeoBFT only — the protocol whose scaling the paper
      claims; pass [~protocols] to widen. *)

  val rows_of_reports : (Scenario.t * Report.t) list -> row list
  val run : ?protocols:proto list -> ?windows:windows -> ?base:Config.t -> unit -> row list
  val print : row list -> unit
end

(** Figure 12: throughput under failures; z = 4.  Left: one non-primary
    crash; middle: f crashes per cluster; right: a mid-run primary
    crash (GeoBFT and Pbft only, as in the paper). *)
module Fig12 : sig
  val ns : int list
  val cfg_of : ?base:Config.t -> int -> Config.t

  val scenarios_one_failure :
    ?protocols:proto list -> ?windows:windows -> ?base:Config.t -> unit -> Scenario.t list

  val scenarios_f_failures :
    ?protocols:proto list -> ?windows:windows -> ?base:Config.t -> unit -> Scenario.t list

  val scenarios_primary_failure :
    ?protocols:proto list -> ?windows:windows -> ?base:Config.t -> unit -> Scenario.t list

  val scale_ns : int list
  val scale_cfg_of : ?base:Config.t -> int -> Config.t

  val scale_scenarios :
    ?protocols:proto list -> ?windows:windows -> ?base:Config.t -> unit -> Scenario.t list
  (** Failure experiments at large topologies: z = 8, n in
      [scale_ns], 1.6M aggregated clients, one-non-primary and
      f-non-primary faults; GeoBFT and Pbft by default. *)

  val rows_of_reports : (Scenario.t * Report.t) list -> row list

  val run_one_failure :
    ?protocols:proto list -> ?windows:windows -> ?base:Config.t -> unit -> row list

  val run_f_failures :
    ?protocols:proto list -> ?windows:windows -> ?base:Config.t -> unit -> row list

  val run_primary_failure :
    ?protocols:proto list -> ?windows:windows -> ?base:Config.t -> unit -> row list

  val print : one:row list -> ff:row list -> pf:row list -> unit
end

(** Figure 13: throughput vs batch size; z = 4, n = 7. *)
module Fig13 : sig
  val batches : int list
  val cfg_of : ?base:Config.t -> int -> Config.t

  val scenarios :
    ?protocols:proto list -> ?windows:windows -> ?base:Config.t -> unit -> Scenario.t list

  val rows_of_reports : (Scenario.t * Report.t) list -> row list
  val run : ?protocols:proto list -> ?windows:windows -> ?base:Config.t -> unit -> row list
  val print : row list -> unit
end
