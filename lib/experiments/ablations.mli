(** Ablation studies for the design decisions DESIGN.md calls out —
    beyond the paper's own figures, each isolates one choice and
    measures its contribution.

    Like {!Figures}, every ablation exposes [scenarios] (its canonical
    parameter grid) and [rows_of_reports] (fold the ordered results —
    serial or from the sweep engine — back into rows; positional, so
    pass exactly the (scenario, report) list for [scenarios]'s
    output).  [run] is the serial convenience. *)

module Config = Rdb_types.Config
module Report = Rdb_fabric.Report
open Runner

(** A. GeoBFT's global-sharing fan-out (paper: f+1, Figure 5):
    s = 1 is cheap but fragile, s = n is naive broadcast. *)
module Fanout : sig
  type row = { fanout : int; label : string; healthy : Report.t; one_receiver_down : Report.t }

  val scenarios : ?windows:windows -> ?z:int -> ?n:int -> unit -> Scenario.t list
  val rows_of_reports : (Scenario.t * Report.t) list -> row list
  val run : ?windows:windows -> ?z:int -> ?n:int -> unit -> row list
  val print : row list -> unit
end

(** B. Consensus pipelining depth (§2.5): lock-step rounds vs an
    overlapped pipeline. *)
module Pipeline : sig
  type row = { depth : int; report : Report.t }

  val depths : int list
  val scenarios : ?windows:windows -> ?z:int -> ?n:int -> unit -> Scenario.t list
  val rows_of_reports : (Scenario.t * Report.t) list -> row list
  val run : ?windows:windows -> ?z:int -> ?n:int -> unit -> row list
  val print : row list -> unit
end

(** C. MACs vs signatures everywhere (§2.1): why ResilientDB signs
    only forwarded messages. *)
module Crypto_split : sig
  type row = { label : string; report : Report.t }

  val scenarios : ?windows:windows -> ?z:int -> ?n:int -> unit -> Scenario.t list
  val rows_of_reports : (Scenario.t * Report.t) list -> row list
  val run : ?windows:windows -> ?z:int -> ?n:int -> unit -> row list
  val print : row list -> unit
end

(** D. Threshold-signature certificates (§2.2, optional): one
    constant-size aggregate instead of n − f signatures. *)
module Threshold_certs : sig
  type row = { n : int; plain : Report.t; threshold : Report.t }

  val ns : int list
  val scenarios : ?windows:windows -> ?z:int -> unit -> Scenario.t list
  val rows_of_reports : (Scenario.t * Report.t) list -> row list
  val run : ?windows:windows -> ?z:int -> unit -> row list
  val print : row list -> unit
end

(** {1 The whole ablation grid as one sweep} *)

val scenarios : ?windows:windows -> unit -> Scenario.t list
(** All four ablations' scenarios, concatenated in canonical order. *)

type rows = {
  fanout : Fanout.row list;
  pipeline : Pipeline.row list;
  crypto_split : Crypto_split.row list;
  threshold_certs : Threshold_certs.row list;
}

val rows_of_reports : ?windows:windows -> (Scenario.t * Report.t) list -> rows
(** Split ordered results for {!scenarios} back into per-ablation rows.
    [windows] must match the value passed to {!scenarios}. *)

val print : rows -> unit

val run_all : ?windows:windows -> unit -> unit
(** Serial: run {!scenarios} and print all four tables. *)
