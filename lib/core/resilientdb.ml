(* ResilientDB — OCaml reproduction of "ResilientDB: Global Scale
   Resilient Blockchain Fabric" (Gupta, Rahnama, Hellings, Sadoghi;
   PVLDB 13(6), 2020).

   This is the single public entry point: it re-exports every subsystem
   under one namespace.  Quick tour (see README.md for a worked
   example):

   {[
     module Dep = Resilientdb.Deployment.Make (Resilientdb.Geobft)

     let () =
       let cfg = Resilientdb.Config.make ~z:4 ~n:7 ~batch_size:100 () in
       let d = Dep.create cfg in
       let report = Dep.run d in
       print_endline (Resilientdb.Report.to_string report)
   ]}

   Layers, bottom-up:
   - {!Rng}, {!Zipf}: deterministic randomness and the YCSB Zipfian law;
   - {!Sha256}, {!Aes128}, {!Cmac}, {!Hmac}, {!Schnorr}, {!Keychain}:
     the cryptographic primitives of §3 (all implemented in-repo);
   - {!Time}, {!Engine}, {!Topology}, {!Network}, {!Cpu}: the
     discrete-event simulation substrate, calibrated from Table 1;
   - {!Txn}, {!Batch}, {!Certificate}, {!Wire}, {!Config}, {!Ctx},
     {!Protocol}: the shared consensus vocabulary;
   - {!Ledger}, {!Block}: the hash-chained blockchain of §3;
   - {!Table}, {!Workload}: the YCSB store and generator of §4;
   - {!Geobft} (the paper's contribution) and the four baselines
     {!Pbft}, {!Zyzzyva}, {!Hotstuff}, {!Steward} — all satisfying
     {!Protocol.S};
   - {!Deployment}, {!Metrics}, {!Report}: the fabric;
   - {!Chaos}: seeded fault injection with continuous safety-invariant
     checking over a running deployment;
   - {!Experiments}: the §4 evaluation (Figures 10-13, Tables 1-2). *)

(* Randomness *)
module Splitmix64 = Rdb_prng.Splitmix64
module Rng = Rdb_prng.Rng
module Zipf = Rdb_prng.Zipf

(* Cryptography *)
module Hex = Rdb_crypto.Hex
module Sha256 = Rdb_crypto.Sha256
module Aes128 = Rdb_crypto.Aes128
module Cmac = Rdb_crypto.Cmac
module Hmac = Rdb_crypto.Hmac
module Field61 = Rdb_crypto.Field61
module Schnorr = Rdb_crypto.Schnorr
module Keychain = Rdb_crypto.Keychain

(* Simulation substrate *)
module Time = Rdb_sim.Time
module Engine = Rdb_sim.Engine
module Topology = Rdb_sim.Topology
module Network = Rdb_sim.Network
module Cpu = Rdb_sim.Cpu
module Net_stats = Rdb_sim.Stats

(* Consensus-path tracing (Chrome trace-event JSON + per-phase
   aggregation + deterministic digest) *)
module Trace = Rdb_trace.Trace

(* Shared types *)
module Txn = Rdb_types.Txn
module Batch = Rdb_types.Batch
module Certificate = Rdb_types.Certificate
module Wire = Rdb_types.Wire
module Config = Rdb_types.Config
module Ctx = Rdb_types.Ctx
module Protocol = Rdb_types.Protocol
module Client_core = Rdb_types.Client_core

(* Ledger *)
module Block = Rdb_ledger.Block
module Ledger = Rdb_ledger.Ledger

(* YCSB *)
module Table = Rdb_ycsb.Table
module Workload = Rdb_ycsb.Workload

(* Consensus protocols (all satisfy {!Protocol.S}) *)
module Geobft = Rdb_geobft.Replica
module Geobft_messages = Rdb_geobft.Messages
module Pbft = Rdb_pbft.Replica
module Pbft_engine = Rdb_pbft.Engine
module Pbft_messages = Rdb_pbft.Messages
module Zyzzyva = Rdb_zyzzyva.Replica
module Hotstuff = Rdb_hotstuff.Replica
module Steward = Rdb_steward.Replica

(* Fabric *)
module Deployment = Rdb_fabric.Deployment
module Metrics = Rdb_fabric.Metrics
module Report = Rdb_fabric.Report
module Json = Rdb_fabric.Json

(* Chaos fault injection + invariant monitoring *)
module Chaos = Rdb_chaos.Chaos
module Recovery = Rdb_recovery.Recovery

(* Byzantine-strategy subsystem: attack programs + the send/receive
   interposition vocabulary they compile into *)
module Adversary = Rdb_adversary.Adversary
module Interpose = Rdb_types.Interpose

(* Schedule-exploration checker *)
module Check = Rdb_check.Check
module Perturb = Rdb_check.Perturb
module Mutation = Rdb_types.Mutation

(* Paper evaluation *)
module Scenario = Rdb_experiments.Scenario
module Sweep = Rdb_sweep.Sweep

module Experiments = struct
  module Scenario = Rdb_experiments.Scenario
  module Runner = Rdb_experiments.Runner
  module Figures = Rdb_experiments.Figures
  module Tables = Rdb_experiments.Tables
  module Ablations = Rdb_experiments.Ablations
end
