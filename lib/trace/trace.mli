(** Structured consensus-path tracing.

    A [Trace.t] collects three families of events from a simulation run:

    - network message lifecycle ([net] category): per-message [queue],
      [tx] (serialization) spans and [deliver] / [drop] instants emitted
      by {!Sim.Network};
    - CPU charge spans ([cpu] category) emitted by {!Sim.Cpu}, one per
      [charge] with the pipeline stage as the event name;
    - protocol-phase spans ([phase] category): propose / prepare /
      commit / certify-share / execute marks emitted by the replicas,
      chained per consensus slot (see {!phase_mark}).

    The tracer is *zero overhead when off*: subsystems hold a
    [Trace.t option] and skip all event construction when it is [None].

    Every event is folded into a streaming SHA-256 over a canonical
    textual encoding, so two runs with the same seed produce the same
    digest — the determinism contract of the DES extended to the full
    event stream.  Events themselves are only retained in memory when
    [keep_events] is set (required by {!write_chrome_json}); the
    aggregate summary and digest never need retention. *)

type t

val create : ?keep_events:bool -> unit -> t
(** [keep_events] (default [false]) retains the raw event list for
    {!write_chrome_json}; aggregation and the digest work either way. *)

val set_shards : t -> n:int -> shard_of_now:(unit -> int) -> unit
(** Split the tracer into [n] per-shard sub-streams; every subsequent
    event is routed to sub-stream [shard_of_now ()].  Each sub-stream
    is only ever touched by the domain executing its shard, so sharded
    tracing needs no locks, and per-shard content is independent of the
    domain count.  With [n = 1] (the default at creation) the digest is
    exactly the pre-sharding single-stream digest; with [n > 1] it is a
    SHA-256 over the concatenated per-shard digests, in shard order.
    Must be called before any event is emitted. *)

(** {1 Event emission (called by the instrumented subsystems)} *)

val span :
  t -> cat:string -> name:string -> node:int -> ts:int64 -> dur:int64 -> ?arg:string -> unit -> unit
(** Complete span: [ts] start and [dur] duration in simulated ns. *)

val instant : t -> cat:string -> name:string -> node:int -> ts:int64 -> ?arg:string -> unit -> unit

val net_send :
  t -> src:int -> dst:int -> size:int -> local:bool -> now:int64 -> start:int64 -> depart:int64 -> unit
(** Message admitted to the network at [now], starts transmitting at
    [start] (uplink/WAN queueing before that), fully serialized at
    [depart].  Emits a [queue] span ([now, start)) when there was any
    queueing and a [tx] span ([start, depart)), both on the sender's
    track, and bumps the local/global counters. *)

val net_deliver : t -> src:int -> dst:int -> size:int -> at:int64 -> unit
val net_drop : t -> src:int -> dst:int -> size:int -> at:int64 -> reason:string -> unit

val cpu_span : t -> node:int -> stage:string -> start:int64 -> dur:int64 -> unit

val phase_mark : t -> node:int -> key:int -> name:string -> now:int64 -> unit
(** Protocol-phase chaining, per (node, consensus-slot [key]) pair.
    The first mark for a key opens a chain with an instant; each
    subsequent mark emits a span from the previous mark's timestamp to
    [now], attributed to the {e new} phase name (i.e. the span measures
    how long it took to {e reach} that phase).  ["execute"] is terminal:
    it closes and forgets the chain, bounding memory. *)

val note_decision : t -> unit
(** Called once per consensus decision (by the deployment, on the
    observer node) so per-decision message counts can be derived. *)

val set_track_name : t -> node:int -> string -> unit
(** Human-readable track label for Chrome/Perfetto output. *)

(** {1 Results} *)

type phase_row = {
  phase : string;
  count : int;  (** number of spans attributed to this phase *)
  total_ms : float;
  avg_ms : float;
  max_ms : float;
}

type summary = {
  phases : phase_row list;  (** sorted by phase name, deterministic *)
  net_local : int;  (** intra-region messages traced *)
  net_global : int;  (** inter-region messages traced *)
  net_dropped : int;
  decisions : int;
  events : int;  (** total events folded into the digest *)
  digest_hex : string;  (** SHA-256 over the canonical event stream *)
}

val summary : t -> summary
(** Finalizes the digest; call once, at end of run.  Subsequent event
    emission on this tracer is a programming error. *)

val pp_summary : Format.formatter -> summary -> unit

val write_chrome_json : t -> out_channel -> unit
(** Chrome trace-event JSON (one [tid] track per node, [ph:"X"]
    complete spans with microsecond timestamps, [ph:"i"] instants,
    thread-name metadata from {!set_track_name}).  Loadable in
    Perfetto / [chrome://tracing].  Requires [keep_events]; raises
    [Invalid_argument] otherwise. *)

val events_kept : t -> int
(** Number of retained events (0 unless [keep_events]). *)
