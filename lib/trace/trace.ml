(* Structured consensus-path tracing: event stream -> (a) Chrome
   trace-event JSON, (b) per-phase latency aggregation, (c) a streaming
   SHA-256 digest over the canonical event encoding.  The digest is the
   determinism witness: the DES guarantees same seed => same event
   sequence, so same seed => same digest, byte for byte.

   Sharded runs (DESIGN.md §15): the tracer keeps one sub-stream per
   engine shard and routes every event to the sub-stream of the shard
   that emitted it (via the [shard_of_now] callback installed by
   [set_shards]).  Each sub-stream is touched only by its own shard's
   executing domain, so no synchronization is needed, and each
   sub-stream's content is a pure function of the seed — independent of
   the domain count.  The summary digest is the SHA-256 over the
   concatenated per-shard raw digests (in shard order); with one shard
   this degenerates to exactly the pre-sharding digest. *)

module Sha256 = Rdb_crypto.Sha256

type kind = Span | Instant

type event = {
  kind : kind;
  cat : string;
  name : string;
  node : int;
  ts : int64;  (* simulated ns *)
  dur : int64;  (* 0 for instants *)
  arg : string;  (* free-form detail, "" if none *)
}

type phase_acc = { mutable count : int; mutable total : int64; mutable max : int64 }

(* One per engine shard: the stream of events emitted while that shard
   was executing.  Phase chains live here too — a (node, key) chain is
   only ever marked from the node's own shard. *)
type sub = {
  mutable rev_events : event list;  (* only populated when keep_events *)
  mutable n_events : int;
  digest : Sha256.ctx;
  (* phase chaining: (node, key) -> timestamp of the previous mark *)
  open_chains : (int * int, int64) Hashtbl.t;
  phase_agg : (string, phase_acc) Hashtbl.t;
  mutable net_local : int;
  mutable net_global : int;
  mutable net_dropped : int;
  mutable decisions : int;
}

type t = {
  keep_events : bool;
  mutable subs : sub array;
  mutable shard_of_now : unit -> int;
  mutable finalized : string option;
  track_names : (int, string) Hashtbl.t;
}

let mk_sub () =
  {
    rev_events = [];
    n_events = 0;
    digest = Sha256.init ();
    open_chains = Hashtbl.create 1024;
    phase_agg = Hashtbl.create 16;
    net_local = 0;
    net_global = 0;
    net_dropped = 0;
    decisions = 0;
  }

let create ?(keep_events = false) () =
  {
    keep_events;
    subs = [| mk_sub () |];
    shard_of_now = (fun () -> 0);
    finalized = None;
    track_names = Hashtbl.create 64;
  }

let total_events t = Array.fold_left (fun acc s -> acc + s.n_events) 0 t.subs

let set_shards t ~n ~shard_of_now =
  if n < 1 then invalid_arg "Trace.set_shards: n must be >= 1";
  if total_events t > 0 then invalid_arg "Trace.set_shards: events already emitted";
  t.subs <- Array.init n (fun _ -> mk_sub ());
  t.shard_of_now <- shard_of_now

(* Canonical line fed to the digest.  Everything that identifies the
   event is included; the format never changes silently (the digest is
   asserted byte-identical across same-seed runs in the test suite). *)
let canonical e =
  Printf.sprintf "%c|%s|%s|%d|%Ld|%Ld|%s\n"
    (match e.kind with Span -> 'S' | Instant -> 'I')
    e.cat e.name e.node e.ts e.dur e.arg

let cur t = t.subs.(t.shard_of_now ())

let emit_sub t (s : sub) e =
  (match t.finalized with
  | Some _ -> invalid_arg "Trace: event emitted after summary"
  | None -> ());
  Sha256.feed_string s.digest (canonical e);
  s.n_events <- s.n_events + 1;
  if t.keep_events then s.rev_events <- e :: s.rev_events

let emit t e = emit_sub t (cur t) e

let span t ~cat ~name ~node ~ts ~dur ?(arg = "") () =
  emit t { kind = Span; cat; name; node; ts; dur; arg }

let instant t ~cat ~name ~node ~ts ?(arg = "") () =
  emit t { kind = Instant; cat; name; node; ts; dur = 0L; arg }

(* -- network lifecycle ------------------------------------------------ *)

let net_send t ~src ~dst ~size ~local ~now ~start ~depart =
  let s = cur t in
  if local then s.net_local <- s.net_local + 1 else s.net_global <- s.net_global + 1;
  let arg = Printf.sprintf "dst=%d,size=%d,%s" dst size (if local then "local" else "global") in
  if Int64.compare start now > 0 then
    span t ~cat:"net" ~name:"queue" ~node:src ~ts:now ~dur:(Int64.sub start now) ~arg ();
  span t ~cat:"net" ~name:"tx" ~node:src ~ts:start ~dur:(Int64.sub depart start) ~arg ()

let net_deliver t ~src ~dst ~size ~at =
  instant t ~cat:"net" ~name:"deliver" ~node:dst ~ts:at
    ~arg:(Printf.sprintf "src=%d,size=%d" src size)
    ()

let net_drop t ~src ~dst ~size ~at ~reason =
  (cur t).net_dropped <- (cur t).net_dropped + 1;
  instant t ~cat:"net" ~name:"drop" ~node:src ~ts:at
    ~arg:(Printf.sprintf "dst=%d,size=%d,%s" dst size reason)
    ()

(* -- CPU spans -------------------------------------------------------- *)

let cpu_span t ~node ~stage ~start ~dur = span t ~cat:"cpu" ~name:stage ~node ~ts:start ~dur ()

(* -- protocol phases -------------------------------------------------- *)

let phase_accum (s : sub) ~name ~dur =
  let acc =
    match Hashtbl.find_opt s.phase_agg name with
    | Some a -> a
    | None ->
        let a = { count = 0; total = 0L; max = 0L } in
        Hashtbl.add s.phase_agg name a;
        a
  in
  acc.count <- acc.count + 1;
  acc.total <- Int64.add acc.total dur;
  if Int64.compare dur acc.max > 0 then acc.max <- dur

let phase_mark t ~node ~key ~name ~now =
  let s = cur t in
  let terminal = String.equal name "execute" in
  let k = (node, key) in
  (match Hashtbl.find_opt s.open_chains k with
  | Some prev ->
      let dur = Int64.sub now prev in
      let dur = if Int64.compare dur 0L < 0 then 0L else dur in
      phase_accum s ~name ~dur;
      span t ~cat:"phase" ~name ~node ~ts:prev ~dur ~arg:(Printf.sprintf "key=%d" key) ();
      if terminal then Hashtbl.remove s.open_chains k else Hashtbl.replace s.open_chains k now
  | None ->
      (* First mark for this slot: an instant opens the chain.  A
         terminal first mark (e.g. a filled/skipped slot executing with
         no observed earlier phases) leaves nothing open. *)
      phase_accum s ~name ~dur:0L;
      instant t ~cat:"phase" ~name ~node ~ts:now ~arg:(Printf.sprintf "key=%d" key) ();
      if not terminal then Hashtbl.add s.open_chains k now)

let note_decision t = (cur t).decisions <- (cur t).decisions + 1
let set_track_name t ~node name = Hashtbl.replace t.track_names node name

(* -- results ---------------------------------------------------------- *)

type phase_row = { phase : string; count : int; total_ms : float; avg_ms : float; max_ms : float }

type summary = {
  phases : phase_row list;
  net_local : int;
  net_global : int;
  net_dropped : int;
  decisions : int;
  events : int;
  digest_hex : string;
}

let hex raw =
  let b = Buffer.create (2 * String.length raw) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) raw;
  Buffer.contents b

let ms_of_ns ns = Int64.to_float ns /. 1e6

let summary t =
  let digest_hex =
    match t.finalized with
    | Some d -> d
    | None ->
        let d =
          if Array.length t.subs = 1 then hex (Sha256.finalize t.subs.(0).digest)
          else begin
            (* Digest-of-digests, in shard order: per-shard streams are
               deterministic, so this is too — and it never depends on
               the interleaving of shards within an epoch. *)
            let outer = Sha256.init () in
            Array.iter (fun s -> Sha256.feed_string outer (Sha256.finalize s.digest)) t.subs;
            hex (Sha256.finalize outer)
          end
        in
        t.finalized <- Some d;
        d
  in
  (* Merge phase aggregates across shards (sum/max commute). *)
  let merged : (string, phase_acc) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun s ->
      Hashtbl.iter
        (fun phase (a : phase_acc) ->
          match Hashtbl.find_opt merged phase with
          | Some m ->
              m.count <- m.count + a.count;
              m.total <- Int64.add m.total a.total;
              if Int64.compare a.max m.max > 0 then m.max <- a.max
          | None -> Hashtbl.add merged phase { count = a.count; total = a.total; max = a.max })
        s.phase_agg)
    t.subs;
  let phases =
    Hashtbl.fold
      (fun phase (a : phase_acc) rows ->
        {
          phase;
          count = a.count;
          total_ms = ms_of_ns a.total;
          avg_ms = (if a.count = 0 then 0. else ms_of_ns a.total /. float_of_int a.count);
          max_ms = ms_of_ns a.max;
        }
        :: rows)
      merged []
    |> List.sort (fun a b -> String.compare a.phase b.phase)
  in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 t.subs in
  {
    phases;
    net_local = sum (fun s -> s.net_local);
    net_global = sum (fun s -> s.net_global);
    net_dropped = sum (fun s -> s.net_dropped);
    decisions = sum (fun s -> s.decisions);
    events = total_events t;
    digest_hex;
  }

let pp_summary fmt s =
  Format.fprintf fmt "trace: %d events, digest %s@\n" s.events (String.sub s.digest_hex 0 16);
  Format.fprintf fmt "  net msgs traced: %d local / %d global / %d dropped@\n" s.net_local
    s.net_global s.net_dropped;
  if s.decisions > 0 then
    Format.fprintf fmt "  per decision: %.1f local / %.1f global msgs (%d decisions)@\n"
      (float_of_int s.net_local /. float_of_int s.decisions)
      (float_of_int s.net_global /. float_of_int s.decisions)
      s.decisions;
  if s.phases <> [] then begin
    Format.fprintf fmt "  %-14s %10s %12s %10s %10s@\n" "phase" "count" "total_ms" "avg_ms" "max_ms";
    List.iter
      (fun r ->
        Format.fprintf fmt "  %-14s %10d %12.2f %10.3f %10.3f@\n" r.phase r.count r.total_ms
          r.avg_ms r.max_ms)
      s.phases
  end

(* -- Chrome trace-event JSON sink ------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us ns = Int64.to_float ns /. 1e3

let write_chrome_json t oc =
  if not t.keep_events then
    invalid_arg "Trace.write_chrome_json: tracer was created without ~keep_events:true";
  let first = ref true in
  let sep () =
    if !first then first := false else output_string oc ",\n";
    output_string oc "  "
  in
  output_string oc "{\"traceEvents\":[\n";
  (* Track-name metadata first, sorted by node for stable output. *)
  Hashtbl.fold (fun node name l -> (node, name) :: l) t.track_names []
  |> List.sort compare
  |> List.iter (fun (node, name) ->
         sep ();
         Printf.fprintf oc
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           node (json_escape name));
  (* Events in shard order; the trace viewer orders by timestamp, so
     concatenation of per-shard streams is fine (and deterministic). *)
  Array.iter
    (fun (s : sub) ->
      List.rev s.rev_events
      |> List.iter (fun e ->
             sep ();
             match e.kind with
             | Span ->
                 Printf.fprintf oc
                   "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"detail\":\"%s\"}}"
                   (json_escape e.name) (json_escape e.cat) e.node (us e.ts) (us e.dur)
                   (json_escape e.arg)
             | Instant ->
                 Printf.fprintf oc
                   "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"args\":{\"detail\":\"%s\"}}"
                   (json_escape e.name) (json_escape e.cat) e.node (us e.ts) (json_escape e.arg)))
    t.subs;
  output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n"

let events_kept t = Array.fold_left (fun acc s -> acc + List.length s.rev_events) 0 t.subs
