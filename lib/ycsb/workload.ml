(* YCSB workload generator (Cooper et al., SoCC 2010).

   Configuration matches §4 of the paper: an active set of 600 k
   records, Zipfian key selection (YCSB's default constant 0.99,
   scrambled over the key space), write queries, and client-side
   batching at a configurable batch size.

   Mixed workloads (YCSB-B/E-style) extend this with read and scan
   fractions.  The class is drawn per *batch*, not per transaction:
   a batch is the unit of consensus, and only an entirely read-only
   batch can take the consensus-bypass read path — a per-transaction
   mix would make almost every batch carry a write and the read path
   would never exercise.  When both fractions are 0 the generator
   takes the original per-transaction path and draws the exact same
   RNG stream as before the mix existed.

   The generator is deterministic per (seed, client group), so two
   simulator runs submit identical transaction streams. *)

module Txn = Rdb_types.Txn
module Rng = Rdb_prng.Rng
module Zipf = Rdb_prng.Zipf

type t = {
  rng : Rng.t;
  zipf : Zipf.t;
  write_fraction : float;
  read_fraction : float;          (* fraction of batches that are point reads *)
  scan_fraction : float;          (* fraction of batches that are range scans *)
  mutable next_txn : int;         (* per-generator txn counter *)
  mutable read_batches : int;     (* batches generated per class *)
  mutable scan_batches : int;
  mutable write_batches : int;
  client_base : int;              (* logical client ids start here *)
  n_clients : int;                (* logical clients multiplexed *)
}

let create ?(n_records = Table.default_records) ?(theta = 0.99) ?(write_fraction = 1.0)
    ?(read_fraction = 0.0) ?(scan_fraction = 0.0) ?(n_clients = 1000) ~seed ~client_base () =
  if read_fraction < 0.0 || scan_fraction < 0.0 || read_fraction +. scan_fraction > 1.0 then
    invalid_arg "Workload.create: read/scan fractions must be >= 0 and sum to <= 1";
  {
    rng = Rng.create (Int64.of_int seed);
    zipf = Zipf.create ~theta n_records;
    write_fraction;
    read_fraction;
    scan_fraction;
    next_txn = 0;
    read_batches = 0;
    scan_batches = 0;
    write_batches = 0;
    client_base;
    n_clients;
  }

let next_txn t : Txn.t =
  let key = Zipf.sample_scrambled t.zipf t.rng in
  let op = if Rng.float t.rng < t.write_fraction then Txn.Write else Txn.Read in
  let client_id = t.client_base + (t.next_txn mod t.n_clients) in
  let value = Rdb_prng.Rng.next_int64 t.rng in
  t.next_txn <- t.next_txn + 1;
  Txn.make ~op ~key ~value ~client_id ()

(* A transaction of a batch whose class was already drawn.  The value
   draw is kept even for reads/scans: it feeds the scan length
   ({!Txn.scan_len}) and keeps the per-txn draw count uniform. *)
let next_class_txn t ~op : Txn.t =
  let key = Zipf.sample_scrambled t.zipf t.rng in
  let client_id = t.client_base + (t.next_txn mod t.n_clients) in
  let value = Rdb_prng.Rng.next_int64 t.rng in
  t.next_txn <- t.next_txn + 1;
  Txn.make ~op ~key ~value ~client_id ()

let next_batch_txns t ~batch_size : Txn.t array =
  let mix = t.read_fraction +. t.scan_fraction in
  if mix <= 0.0 then begin
    (* Write-only configuration: the original path, original RNG stream. *)
    t.write_batches <- t.write_batches + 1;
    Array.init batch_size (fun _ -> next_txn t)
  end
  else
    let r = Rng.float t.rng in
    if r < t.read_fraction then begin
      t.read_batches <- t.read_batches + 1;
      Array.init batch_size (fun _ -> next_class_txn t ~op:Txn.Read)
    end
    else if r < mix then begin
      t.scan_batches <- t.scan_batches + 1;
      Array.init batch_size (fun _ -> next_class_txn t ~op:Txn.Scan)
    end
    else begin
      t.write_batches <- t.write_batches + 1;
      Array.init batch_size (fun _ -> next_txn t)
    end

let generated t = t.next_txn
let read_batches t = t.read_batches
let scan_batches t = t.scan_batches
let write_batches t = t.write_batches
