(** YCSB workload generator (Cooper et al., SoCC 2010), configured as
    in §4: Zipfian key choice (constant 0.99, scrambled) over the
    record space, write queries, deterministic per seed.

    Mixed workloads draw a class per {e batch} — read-only (point
    reads), scan, or write — so whole batches stay eligible for the
    read-path consensus bypass.  With both fractions at 0 the RNG
    stream is identical to the historical write-only generator. *)

module Txn = Rdb_types.Txn

type t

val create :
  ?n_records:int ->
  ?theta:float ->
  ?write_fraction:float ->
  ?read_fraction:float ->
  ?scan_fraction:float ->
  ?n_clients:int ->
  seed:int ->
  client_base:int ->
  unit ->
  t
(** [write_fraction] defaults to 1.0 (the paper uses write queries) and
    applies per transaction {e within} write-class batches;
    [read_fraction]/[scan_fraction] (default 0) are per-batch class
    probabilities and must sum to at most 1.  [n_clients] logical
    clients are multiplexed round-robin starting at id [client_base]. *)

val next_txn : t -> Txn.t

val next_batch_txns : t -> batch_size:int -> Txn.t array

val generated : t -> int
(** Transactions generated so far. *)

val read_batches : t -> int
val scan_batches : t -> int
val write_batches : t -> int
(** Batches generated per class ({!next_batch_txns} calls). *)
