(* The replicated YCSB table.

   The paper's evaluation: "Each client transaction queries a YCSB
   table with an active set of 600 k records. ... Prior to the
   experiments, each replica is initialized with an identical copy of
   the YCSB table."  Every replica in the fabric holds one [Table.t];
   deterministic execution of the same batch sequence must produce the
   same state digest on all non-faulty replicas (checked by tests and
   by the Pbft checkpoint protocol). *)

module Txn = Rdb_types.Txn
module Sha256 = Rdb_crypto.Sha256
module Splitmix64 = Rdb_prng.Splitmix64

(* Records live in a Bigarray: unboxed int64 storage that the OCaml GC
   does not scan.  A deployment holds one 600k-record table per replica
   (dozens of tables, hundreds of MB); with boxed int64 arrays the GC
   would re-mark millions of boxes on every major cycle and dominate
   the simulator's wall-clock time. *)
type records = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  records : records;
  mutable writes : int;           (* applied write operations *)
  mutable reads : int;
}

let default_records = 600_000

(* Identical initialization on every replica: record i starts at a
   value derived from i, so state digests agree without communication. *)
let create ?(n_records = default_records) () =
  let records = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout n_records in
  for i = 0 to n_records - 1 do
    Bigarray.Array1.unsafe_set records i (Splitmix64.mix (Int64.of_int i))
  done;
  { records; writes = 0; reads = 0 }

let n_records t = Bigarray.Array1.dim t.records

let read t ~key = Bigarray.Array1.get t.records (key mod n_records t)

(* Apply one transaction; returns the result value (read result, or the
   written value for writes, matching YCSB's update semantics). *)
let apply t (txn : Txn.t) : int64 =
  let key = txn.Txn.key mod n_records t in
  match txn.Txn.op with
  | Txn.Read ->
      t.reads <- t.reads + 1;
      Bigarray.Array1.get t.records key
  | Txn.Write ->
      t.writes <- t.writes + 1;
      (* YCSB write: replace the record; mix in the old value so state
         depends on execution order (ordering bugs corrupt digests). *)
      let nv = Int64.add (Splitmix64.mix (Bigarray.Array1.get t.records key)) txn.Txn.value in
      Bigarray.Array1.set t.records key nv;
      nv

let apply_batch t (txns : Txn.t array) = Array.map (apply t) txns

(* Execution path used by the fabric: same state transition as
   [apply_batch] but without materializing the (ignored) result array,
   and with the SplitMix64 mixer hand-inlined so the whole
   load-mix-store chain stays in unboxed int64 registers.  The
   cross-module [Splitmix64.mix] call boxes its argument and result;
   at ~one write per transaction per replica that boxing was one of
   the simulator's largest allocation sources.  Read results are
   ignored by the fabric, so reads only bump the counter. *)
let execute t (txns : Txn.t array) =
  let records = t.records in
  let n = Bigarray.Array1.dim records in
  let reads = ref 0 and writes = ref 0 in
  for i = 0 to Array.length txns - 1 do
    let txn = Array.unsafe_get txns i in
    let key = txn.Txn.key mod n in
    let key = if key < 0 then key + n else key in
    match txn.Txn.op with
    | Txn.Read -> incr reads
    | Txn.Write ->
        incr writes;
        (* Splitmix64.mix, verbatim (constants included), on the old
           record value — keep in sync with lib/prng/splitmix64.ml. *)
        let z = Int64.add (Bigarray.Array1.unsafe_get records key) 0x9E3779B97F4A7C15L in
        let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
        let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
        let z = Int64.logxor z (Int64.shift_right_logical z 31) in
        Bigarray.Array1.unsafe_set records key (Int64.add z txn.Txn.value)
  done;
  t.reads <- t.reads + !reads;
  t.writes <- t.writes + !writes

(* An identical, independent copy: one memcpy of the record store
   instead of re-deriving 600 k records per replica at deployment
   construction.  Counters start fresh, matching [create]. *)
let clone src =
  let records =
    Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout (n_records src)
  in
  Bigarray.Array1.blit src.records records;
  { records; writes = 0; reads = 0 }

let writes t = t.writes
let reads t = t.reads

(* Digest of the full state.  O(n); used by tests and checkpoints at
   coarse intervals, so the cost is acceptable (and the *modeled* cost
   of checkpointing is charged separately by the protocols). *)
let state_digest t : string =
  let ctx = Sha256.init () in
  let buf = Bytes.create 8 in
  for i = 0 to n_records t - 1 do
    Bytes.set_int64_le buf 0 (Bigarray.Array1.get t.records i);
    Sha256.feed_bytes ctx buf 0 8
  done;
  Sha256.finalize ctx

(* Cheap incremental fingerprint over the first [k] records, for tests
   that want frequent comparisons. *)
let quick_fingerprint ?(k = 4096) t : int64 =
  let acc = ref 0L in
  let m = min k (n_records t) in
  for i = 0 to m - 1 do
    acc := Splitmix64.mix (Int64.logxor !acc (Bigarray.Array1.get t.records i))
  done;
  !acc
