(* The replicated YCSB table.

   The paper's evaluation: "Each client transaction queries a YCSB
   table with an active set of 600 k records. ... Prior to the
   experiments, each replica is initialized with an identical copy of
   the YCSB table."

   Since the storage redesign the authoritative execution path is
   {!Rdb_storage.Kv} (the App state machine over a pluggable backend);
   a [Table.t] is now a lightweight *view* over the same record
   storage — tests and examples read fingerprints and digests through
   it, and [of_records] wraps a live backend's record mirror without
   copying.  The transaction semantics here are kept bit-identical to
   the Kv so either path yields the same state. *)

module Txn = Rdb_types.Txn
module Sha256 = Rdb_crypto.Sha256
module Splitmix64 = Rdb_prng.Splitmix64
module Backend = Rdb_storage.Backend

(* Records live in a Bigarray: unboxed int64 storage that the OCaml GC
   does not scan.  A deployment holds one 600k-record table per replica
   (dozens of tables, hundreds of MB); with boxed int64 arrays the GC
   would re-mark millions of boxes on every major cycle and dominate
   the simulator's wall-clock time. *)
type records = Backend.records

type t = {
  records : records;
  mutable writes : int;           (* applied write operations *)
  mutable reads : int;
  mutable scans : int;
}

let default_records = 600_000

(* Identical initialization on every replica: record i starts at a
   value derived from i, so state digests agree without communication.
   The derivation lives in {!Rdb_storage.Backend.init_records} — the
   single definition shared with every storage backend. *)
let create ?(n_records = default_records) () =
  { records = Backend.init_records ~n_records; writes = 0; reads = 0; scans = 0 }

(* A zero-copy view over live backend records: reads see the backend's
   current state, writes would corrupt it — treat as read-only. *)
let of_records records = { records; writes = 0; reads = 0; scans = 0 }
let records t = t.records

let n_records t = Bigarray.Array1.dim t.records

let read t ~key = Bigarray.Array1.get t.records (key mod n_records t)

(* Apply one transaction; returns the result value (read result, scan
   fold, or the written value for writes, matching YCSB's update
   semantics).  Kept in lock-step with Rdb_storage.Kv.exec_into. *)
let apply t (txn : Txn.t) : int64 =
  let n = n_records t in
  let key = txn.Txn.key mod n in
  let key = if key < 0 then key + n else key in
  match txn.Txn.op with
  | Txn.Read ->
      t.reads <- t.reads + 1;
      Bigarray.Array1.get t.records key
  | Txn.Scan ->
      t.scans <- t.scans + 1;
      let len = Txn.scan_len txn in
      let acc = ref 0L in
      for j = 0 to len - 1 do
        let k = key + j in
        let k = if k >= n then k - n else k in
        acc := Splitmix64.mix (Int64.logxor !acc (Bigarray.Array1.get t.records k))
      done;
      !acc
  | Txn.Write ->
      t.writes <- t.writes + 1;
      (* YCSB write: replace the record; mix in the old value so state
         depends on execution order (ordering bugs corrupt digests). *)
      let nv = Int64.add (Splitmix64.mix (Bigarray.Array1.get t.records key)) txn.Txn.value in
      Bigarray.Array1.set t.records key nv;
      nv

let apply_batch t (txns : Txn.t array) = Array.map (apply t) txns

(* Deprecated result-less execution path (see the .mli): the fabric now
   executes through Rdb_storage.Kv, which returns per-batch results. *)
let execute t (txns : Txn.t array) = ignore (apply_batch t txns)

(* An identical, independent copy: one memcpy of the record store
   instead of re-deriving 600 k records per replica at deployment
   construction.  Counters start fresh, matching [create]. *)
let clone src =
  { records = Backend.copy_records src.records; writes = 0; reads = 0; scans = 0 }

let writes t = t.writes
let reads t = t.reads
let scans t = t.scans

(* Digest of the full state.  O(n); used by tests and checkpoints at
   coarse intervals, so the cost is acceptable (and the *modeled* cost
   of checkpointing is charged separately by the protocols). *)
let state_digest t : string = Backend.digest_records t.records

(* Cheap incremental fingerprint over the first [k] records, for tests
   that want frequent comparisons. *)
let quick_fingerprint ?(k = 4096) t : int64 =
  let acc = ref 0L in
  let m = min k (n_records t) in
  for i = 0 to m - 1 do
    acc := Splitmix64.mix (Int64.logxor !acc (Bigarray.Array1.get t.records i))
  done;
  !acc
