(** The replicated YCSB table (paper §4: "an active set of 600k
    records", identically initialized on every replica).  Deterministic
    execution of the same batch sequence yields identical state
    digests on all non-faulty replicas.

    Storage is an unboxed Bigarray so dozens of per-replica tables do
    not burden the OCaml GC. *)

module Txn = Rdb_types.Txn

type t

val default_records : int
(** 600_000, as in the paper. *)

val create : ?n_records:int -> unit -> t

val n_records : t -> int

val read : t -> key:int -> int64

val apply : t -> Txn.t -> int64
(** Apply one transaction; returns the read result or written value.
    Writes mix in the previous value, so execution {e order} is
    visible in the state (ordering bugs corrupt digests). *)

val apply_batch : t -> Txn.t array -> int64 array

val execute : t -> Txn.t array -> unit
(** Same state transition as {!apply_batch} without materializing the
    result array (the fabric's execution hot path). *)

val clone : t -> t
(** An identical, independent copy of the record store (one memcpy);
    read/write counters start fresh, as after {!create}. *)

val writes : t -> int
val reads : t -> int

val state_digest : t -> string
(** SHA-256 over the full state (O(n); tests and checkpoint audits). *)

val quick_fingerprint : ?k:int -> t -> int64
(** Cheap fingerprint over the first [k] records (default 4096). *)
