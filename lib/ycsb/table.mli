(** The replicated YCSB table (paper §4: "an active set of 600k
    records", identically initialized on every replica).  Deterministic
    execution of the same batch sequence yields identical state
    digests on all non-faulty replicas.

    Since the storage redesign the authoritative execution path is
    {!Rdb_storage.Kv}; a [Table.t] is a view over the same Bigarray
    record storage ({!of_records} wraps a live backend mirror without
    copying), with transaction semantics kept bit-identical to the Kv
    state machine. *)

module Txn = Rdb_types.Txn

type records = Rdb_storage.Backend.records

type t

val default_records : int
(** 600_000, as in the paper. *)

val create : ?n_records:int -> unit -> t

val of_records : records -> t
(** Zero-copy view over live backend records (counters start at 0).
    Reads observe the backend's current state; do not write through a
    view of records a Kv owns. *)

val records : t -> records

val n_records : t -> int

val read : t -> key:int -> int64

val apply : t -> Txn.t -> int64
(** Apply one transaction; returns the read result, the scan fold, or
    the written value.  Writes mix in the previous value, so execution
    {e order} is visible in the state (ordering bugs corrupt digests). *)

val apply_batch : t -> Txn.t array -> int64 array

val execute : t -> Txn.t array -> unit
[@@ocaml.deprecated
  "results are no longer optional: use apply_batch (or execute batches through \
   Rdb_storage.Kv, which the fabric does) so replicas can reply with result digests."]
(** Same state transition as {!apply_batch} with the result array
    dropped.  Deprecated: the execution seam now returns per-batch
    results that client replies carry; this alias remains for one PR. *)

val clone : t -> t
(** An identical, independent copy of the record store (one memcpy);
    read/write counters start fresh, as after {!create}. *)

val writes : t -> int
val reads : t -> int
val scans : t -> int

val state_digest : t -> string
(** SHA-256 over the full state (O(n); tests and checkpoint audits). *)

val quick_fingerprint : ?k:int -> t -> int64
(** Cheap fingerprint over the first [k] records (default 4096). *)
