(** Schedule perturbations (DESIGN.md §13): point edits to the
    simulation's deterministic counters — extra delivery delay on the
    nth network send, tie-break deferral of the nth engine schedule
    call, same-link FIFO inversion of the nth send.  Every edit stays
    inside the latency model's legal envelope (arrivals never precede
    departure + base one-way latency; deferrals only permute
    simultaneous events). *)

module Time = Rdb_sim.Time
module Rng = Rdb_prng.Rng

type t =
  | Delay of { nth : int; extra : Time.t }
  | Defer of { nth : int }
  | Swap of { nth : int }

val to_string : t -> string
val to_json : t -> Rdb_fabric.Json.t
val of_json : Rdb_fabric.Json.t -> (t, string) result

type tier = {
  net_gap : int;
  defer_gap : int;
  max_delay_ms : float;
  swap_frac : float;
  max_net : int;
  max_defer : int;
}

val light : tier
val medium : tier
val heavy : tier

val tier_for : schedule:int -> tier
(** Intensity for the k-th schedule of a budget (k >= 1; schedule 0
    runs unperturbed). *)

type hooks = {
  defer : int -> bool;
  deliver : Rdb_sim.Network.delivery_hook;
  applied : unit -> t list;
}

val unperturbed : hooks

val explore : rng:Rng.t -> tier:tier -> hooks
(** Seeded random perturbation: gap-sampled targets, bounded counts
    per run, every applied perturbation recorded. *)

val replay : t list -> hooks
(** Apply exactly a recorded perturbation list by counter lookup. *)
