(** Schedule-exploration checker (DESIGN.md §13): replay a
    {!Scenario.t} under seeded schedule perturbations with an invariant
    oracle — the chaos safety monitor, per-protocol certificate
    invariants, quorum-evidence extraction, and an execution-frontier
    check — then delta-debug any violation down to a 1-minimal
    perturbation list serialized as a replayable artifact.

    The same oracle and shrinker also drive the Byzantine-strategy
    search (DESIGN.md §14): {!explore_attacks} samples attack programs
    from lib/adversary instead of schedule perturbations, and shrinks a
    violating program to a 1-minimal rule list. *)

module Scenario = Rdb_experiments.Scenario
module Chaos = Rdb_chaos.Chaos
module Adversary = Rdb_adversary.Adversary
module Time = Rdb_sim.Time
module Json = Rdb_fabric.Json

type violation = Chaos.violation = { at : Time.t; invariant : string; detail : string }

val violation_to_string : violation -> string

val provocations : (string * (Chaos.surface -> unit)) list
(** Named in-envelope fault windows (scheduled through the chaos
    surface) that flush out rarely-exercised machinery; artifacts
    reference them by name so replays reapply them. *)

val provocation : string -> (Chaos.surface -> unit) option

(** {1 Single runs} *)

type run_result = {
  violation : violation option;
  applied : Perturb.t list;  (** perturbations that actually landed *)
  digest : string option;  (** trace digest, when the scenario traces *)
}

val run_one : Scenario.t -> hooks:Perturb.hooks -> provoke:string option -> run_result
(** One simulation under the given perturbation hooks, checked by the
    full oracle.  Sequential only: the mutation/evidence hooks are
    process-global. *)

(** {1 Shrinking} *)

val ddmin : test:(Perturb.t list -> bool) -> Perturb.t list -> Perturb.t list * int
(** Delta debugging to 1-minimality.  [test subset] must return
    whether the subset still fails.  Returns the minimal list and the
    number of tests spent. *)

(** {1 Exploration} *)

type counterexample = {
  scenario : Scenario.t;
  mutation : string option;
  provoke : string option;
  seed : int;
  schedule : int;  (** schedule index where the violation surfaced *)
  perturbations : Perturb.t list;  (** shrunk, 1-minimal *)
  violation : violation;
  digest : string option;  (** trace digest of the minimal replay *)
  runs : int;  (** simulations spent, exploration + shrinking *)
}

val explore :
  ?budget:int ->
  ?seed:int ->
  ?mutation:string ->
  ?provoke:string ->
  ?on_schedule:(schedule:int -> unit) ->
  Scenario.t ->
  counterexample option
(** Run up to [budget] (default 64) schedules — schedule 0 unperturbed,
    the rest perturbed with cycling intensity tiers seeded from
    [(seed, schedule)] — and stop at the first violation, which is
    shrunk and replayed once more to pin its digest.  [mutation]
    activates a test-only protocol mutation for the whole exploration. *)

(** {1 Replayable artifacts} *)

val schema_version : int

val counterexample_to_json : counterexample -> Json.t
val counterexample_to_string : counterexample -> string
val counterexample_of_json : Json.t -> (counterexample, string) result
val counterexample_of_string : string -> (counterexample, string) result

type replay_outcome = {
  reproduced : bool;  (** the replay violated the same invariant *)
  observed : violation option;
  digest_match : bool option;  (** [None] when either side lacks a digest *)
}

val replay : counterexample -> replay_outcome
(** Re-run the artifact's scenario under its recorded perturbation
    list (and mutation/provocation, if any). *)

(** {1 Default matrices} *)

val default_scenario : ?seed:int -> Scenario.proto -> Scenario.t
(** The checker's stock deployment: z=2 n=4, small batches, traced,
    0.5 s + 2 s windows. *)

val mutants : (string * (Scenario.t * string option)) list
(** Every known test-only mutation paired with the scenario (and
    optional provocation) that exposes it. *)

val mutant_scenario : string -> (Scenario.t * string option) option

(** {1 Attack search}

    The Byzantine-strategy dimension: each attempt installs one seeded
    attack program (lib/adversary) sampled from
    {!Rdb_experiments.Runner.adversary_profile} and runs it —
    unperturbed — under the full invariant oracle.  Attempt 0 is the
    empty attack, so a violation there honestly records that the
    configuration is broken without any adversary. *)

type attack_counterexample = {
  atk_scenario : Scenario.t;  (** base scenario; [attack = None] *)
  atk_mutation : string option;
  atk_seed : int;
  atk_attempt : int;  (** sampler attempt where the violation surfaced *)
  atk_attack : Adversary.Attack.t;  (** shrunk, 1-minimal rule list *)
  atk_violation : violation;
  atk_digest : string option;  (** trace digest of the minimal replay *)
  atk_runs : int;  (** simulations spent, search + shrinking *)
}

val sample_attack : seed:int -> attempt:int -> Scenario.t -> Adversary.Attack.t
(** The attack program attempt [attempt] of [explore_attacks ~seed]
    would install (empty for attempt 0) — sampling made checkable
    without running anything. *)

val run_attack : Scenario.t -> Adversary.Attack.t -> run_result
(** One unperturbed run of the scenario with the attack installed,
    checked by the full oracle.  Sequential only. *)

val explore_attacks :
  ?budget:int ->
  ?seed:int ->
  ?mutation:string ->
  ?on_attempt:(attempt:int -> unit) ->
  Scenario.t ->
  attack_counterexample option
(** Run up to [budget] (default 64) attack programs and stop at the
    first violation, ddmin-shrunk to a 1-minimal rule list and replayed
    once more to pin its digest.  [mutation] activates a test-only
    protocol mutation for the whole search. *)

val attack_schema_version : int

val attack_counterexample_to_json : attack_counterexample -> Json.t
val attack_counterexample_to_string : attack_counterexample -> string
val attack_counterexample_of_json : Json.t -> (attack_counterexample, string) result
val attack_counterexample_of_string : string -> (attack_counterexample, string) result

val replay_attack : attack_counterexample -> replay_outcome
(** Re-run the artifact's scenario with its recorded minimal attack
    (and mutation, if any). *)

val default_attack_scenario : ?seed:int -> Scenario.proto -> Scenario.t
(** The attack search's stock deployment: z=2 n=4, small batches,
    traced, 0.5 s + 4 s windows — long enough for sampled windows to
    open, act and heal, short enough that an in-envelope adversary can
    never trip the liveness invariant. *)

val attack_mutants : (string * Scenario.t) list
(** Mutations the attack search must rediscover from generic
    primitives, each with its base scenario — [geobft-rvc-weak] being
    the showcase where only adversary-generated share starvation
    produces the exposing traffic. *)

val attack_mutant_scenario : string -> Scenario.t option
