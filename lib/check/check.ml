(* The schedule-exploration checker (DESIGN.md §13).

   Replays a Scenario.t under seeded schedule perturbations while an
   invariant oracle watches:

   - the chaos safety monitor (prefix agreement, monotone execution,
     no duplicate execution, liveness) from lib/chaos, reused with an
     empty fault timeline;
   - certificate invariants scanned over every replica ledger at end
     of run: quorum-many distinct signers per commit certificate, and
     no two conflicting certificates for one (cluster, round) anywhere
     in the deployment — GeoBFT's one-certificate-per-cluster-per-round;
   - the quorum-evidence extractor (Rdb_types.Evidence): any protocol
     decision taken on less support than the unmutated configuration
     demands;
   - an execution-frontier check (fault-free runs only): no replica
     may sit still across the second half of the measurement window
     while the rest of the deployment keeps executing.

   On a violation, a ddmin shrinker minimizes the perturbation list to
   a 1-minimal failing schedule and the result is serialized as a
   replayable JSON artifact.

   Runs are strictly sequential: the mutation/evidence hooks are plain
   globals, so the checker never uses the multicore sweep engine. *)

module Scenario = Rdb_experiments.Scenario
module Runner = Rdb_experiments.Runner
module Adversary = Rdb_adversary.Adversary
module Chaos = Rdb_chaos.Chaos
module Ledger = Rdb_ledger.Ledger
module Block = Rdb_ledger.Block
module Certificate = Rdb_types.Certificate
module Config = Rdb_types.Config
module Mutation = Rdb_types.Mutation
module Evidence = Rdb_types.Evidence
module Engine = Rdb_sim.Engine
module Time = Rdb_sim.Time
module Rng = Rdb_prng.Rng
module Json = Rdb_fabric.Json
module Report = Rdb_fabric.Report

type violation = Chaos.violation = { at : Time.t; invariant : string; detail : string }

let violation_to_string = Chaos.violation_to_string

(* -- provocations --------------------------------------------------------- *)

(* A provocation schedules an in-envelope fault through the chaos
   surface so that rarely-exercised machinery (e.g. GeoBFT's remote
   view change) runs inside a short deterministic window.  Named, so
   replay artifacts can reference them. *)
let provocations : (string * (Chaos.surface -> unit)) list =
  [
    ( "geobft-equivocate-c0",
      fun s ->
        (* Cluster 0 withholds its shares from every remote cluster
           between 1.5 s and 6.5 s: remote clusters starve, detect the
           silence, and drive the Figure-7 remote view change.  The
           protocol is required to absorb exactly this (the chaos
           envelope grants GeoBFT equivocation), so the unmutated run
           stays clean. *)
        let skip = List.init (s.Chaos.z - 1) (fun i -> i + 1) in
        s.Chaos.at (Time.of_ms_f 1500.) (fun () ->
            s.Chaos.equivocate ~cluster:0 ~skip);
        s.Chaos.at (Time.of_ms_f 6500.) (fun () ->
            s.Chaos.stop_equivocate ~cluster:0) );
  ]

let provocation name = List.assoc_opt name provocations

(* -- certificate invariants ----------------------------------------------- *)

(* Expected certificate quorum per protocol; None when the protocol's
   ledger carries no certificates ([cert = None] blocks). *)
let cert_quorum (s : Scenario.t) =
  let cfg = s.Scenario.cfg in
  match s.Scenario.proto with
  | Scenario.Geobft -> Some (Config.quorum cfg)
  | Scenario.Pbft ->
      (* Standalone Pbft runs one flat group over all z*n replicas. *)
      let nn = cfg.Config.z * cfg.Config.n in
      Some (nn - ((nn - 1) / 3))
  | Scenario.Zyzzyva | Scenario.Hotstuff | Scenario.Steward -> None

let scan_certificates (s : Scenario.t) (surface : Chaos.surface) : violation option =
  let quorum = cert_quorum s in
  let n_replicas = surface.Chaos.z * surface.Chaos.n in
  let seen : (int * int, string) Hashtbl.t = Hashtbl.create 256 in
  let found = ref None in
  let record inv detail =
    if !found = None then found := Some { at = surface.Chaos.now (); invariant = inv; detail }
  in
  (try
     for r = 0 to n_replicas - 1 do
       let led = surface.Chaos.ledger r in
       for h = 0 to Ledger.length led - 1 do
         match (Ledger.get led h).Block.cert with
         | None -> ()
         | Some c ->
             let signers =
               List.sort_uniq compare
                 (List.map (fun cs -> cs.Certificate.replica) c.Certificate.commits)
             in
             (match quorum with
             | Some q when Certificate.n_signatures c < q ->
                 record "certificate-quorum"
                   (Printf.sprintf
                      "replica %d height %d: certificate for (cluster %d, round %d) carries %d \
                       signatures, quorum is %d"
                      r h c.Certificate.cluster c.Certificate.seq (Certificate.n_signatures c) q)
             | _ -> ());
             if List.length signers <> Certificate.n_signatures c then
               record "certificate-signers"
                 (Printf.sprintf
                    "replica %d height %d: certificate for (cluster %d, round %d) has duplicate \
                     signers"
                    r h c.Certificate.cluster c.Certificate.seq);
             let key = (c.Certificate.cluster, c.Certificate.seq) in
             (match Hashtbl.find_opt seen key with
             | Some d when not (String.equal d c.Certificate.digest) ->
                 record "conflicting-certificates"
                   (Printf.sprintf
                      "two certificates for (cluster %d, round %d) endorse different digests"
                      c.Certificate.cluster c.Certificate.seq)
             | Some _ -> ()
             | None -> Hashtbl.replace seen key c.Certificate.digest);
             if !found <> None then raise Exit
       done
     done
   with Exit -> ());
  !found

(* -- execution frontier --------------------------------------------------- *)

(* In a fault-free run every correct replica must keep executing: once
   the deployment has demonstrably worked ([min_global_total] blocks
   executed somewhere), no replica may sit still across the entire
   second half of the measurement window — that is a starved replica
   (e.g. a primary whose shares are systematically rejected) or a
   deployment-wide pipeline stall, not slow start.  Perturbation delays
   are capped well below the half-window, so a delayed-but-correct
   replica always lands some block in it.  Skipped when a provocation
   is active: provocations starve replicas on purpose, inside the
   chaos envelope. *)
let min_global_total = 8

let frontier_check (surface : Chaos.surface) ~mid : violation option =
  match mid with
  | None -> None
  | Some (mid_lens : int array) ->
      let n = Array.length mid_lens in
      let ends = Array.init n (fun r -> Ledger.length (surface.Chaos.ledger r)) in
      let gmax a = Array.fold_left max 0 a in
      if gmax ends < min_global_total then None
      else begin
        let stalled = ref None in
        for r = n - 1 downto 0 do
          if ends.(r) = mid_lens.(r) then stalled := Some r
        done;
        match !stalled with
        | None -> None
        | Some r ->
            Some
              {
                at = surface.Chaos.now ();
                invariant = "execution-frontier";
                detail =
                  Printf.sprintf
                    "replica %d executed nothing over the second half of the run (stuck at %d \
                     blocks) in a working deployment (max ledger %d blocks)"
                    r ends.(r) (gmax ends);
              }
      end

(* -- one run -------------------------------------------------------------- *)

type run_result = {
  violation : violation option;
  applied : Perturb.t list;
  digest : string option;
}

let run_one (s : Scenario.t) ~(hooks : Perturb.hooks) ~(provoke : string option) : run_result =
  Evidence.arm ();
  let surface_ref = ref None in
  let mon = ref None in
  let mid = ref None in
  let install (i : Runner.instrument) =
    let surface = i.Runner.inst_surface in
    surface_ref := Some surface;
    Engine.set_defer_hook i.Runner.inst_engine (Some hooks.Perturb.defer);
    i.Runner.inst_set_delivery_hook (Some hooks.Perturb.deliver);
    mon := Some (Chaos.monitor ~liveness_window_ms:i.Runner.inst_liveness_window_ms surface []);
    (match Option.bind provoke provocation with Some p -> p surface | None -> ());
    let windows = s.Scenario.windows in
    let half =
      Time.add windows.Scenario.warmup (Int64.div windows.Scenario.measure 2L)
    in
    if s.Scenario.fault = Scenario.No_fault && provoke = None && s.Scenario.attack = None
    then
      surface.Chaos.at half (fun () ->
          mid :=
            Some
              (Array.init
                 (surface.Chaos.z * surface.Chaos.n)
                 (fun r -> Ledger.length (surface.Chaos.ledger r))))
  in
  let outcome =
    try Ok (Runner.run_instrumented ~install s)
    with
    | Chaos.Violation msg -> Error ("chaos", msg)
    | e -> Error ("exception", Printexc.to_string e)
  in
  let evidence = Evidence.violations () in
  Evidence.disarm ();
  let surface = Option.get !surface_ref in
  let violation =
    match outcome with
    | Error (inv, detail) -> Some { at = surface.Chaos.now (); invariant = inv; detail }
    | Ok _ -> (
        (match !mon with Some m -> Chaos.check_now m | None -> ());
        match Option.bind !mon Chaos.first_violation with
        | Some v -> Some v
        | None -> (
            match evidence with
            | e :: _ ->
                Some
                  {
                    at = surface.Chaos.now ();
                    invariant = "quorum-evidence";
                    detail = Evidence.entry_to_string e;
                  }
            | [] -> (
                match scan_certificates s surface with
                | Some v -> Some v
                | None -> frontier_check surface ~mid:!mid)))
  in
  let digest =
    match outcome with
    | Ok report ->
        Option.map (fun t -> t.Rdb_trace.Trace.digest_hex) report.Report.trace
    | Error _ -> None
  in
  { violation; applied = hooks.Perturb.applied (); digest }

(* -- delta debugging ------------------------------------------------------ *)

let split_into n lst =
  let len = List.length lst in
  let base = len / n and extra = len mod n in
  let rec go i rest acc =
    if i >= n then List.rev acc
    else
      let take = base + if i < extra then 1 else 0 in
      let rec split k l pre =
        if k = 0 then (List.rev pre, l)
        else match l with [] -> (List.rev pre, []) | x :: tl -> split (k - 1) tl (x :: pre)
      in
      let chunk, rest = split take rest [] in
      go (i + 1) rest (chunk :: acc)
  in
  go 0 lst []

(* Zeller-Hildebrandt ddmin to 1-minimality: the result still fails,
   and removing any single element makes it pass. *)
let ddmin ~test items =
  let runs = ref 0 in
  let test l =
    incr runs;
    test l
  in
  let result =
    if items = [] then items
    else if test [] then []
    else begin
      let rec go current n =
        let len = List.length current in
        if len <= 1 then current
        else begin
          let chunks = split_into n current in
          match List.find_opt test chunks with
          | Some c -> go c 2
          | None -> (
              let complements =
                List.mapi (fun i _ -> List.concat (List.filteri (fun j _ -> j <> i) chunks)) chunks
              in
              match List.find_opt test complements with
              | Some c -> go c (max (n - 1) 2)
              | None -> if n < len then go current (min len (2 * n)) else current)
        end
      in
      go items 2
    end
  in
  (result, !runs)

(* -- exploration ---------------------------------------------------------- *)

type counterexample = {
  scenario : Scenario.t;
  mutation : string option;
  provoke : string option;
  seed : int;
  schedule : int;  (** schedule index where the violation surfaced *)
  perturbations : Perturb.t list;  (** shrunk, 1-minimal *)
  violation : violation;
  digest : string option;  (** trace digest of the minimal replay *)
  runs : int;  (** simulations spent, exploration + shrinking *)
}

let schedule_rng ~seed ~schedule =
  Rng.create (Int64.of_int ((seed * 1_000_003) + schedule))

let explore ?(budget = 64) ?(seed = 1) ?mutation ?provoke ?on_schedule (s : Scenario.t) :
    counterexample option =
  Mutation.set mutation;
  let finish v =
    Mutation.set None;
    v
  in
  let runs = ref 0 in
  let attempt k =
    incr runs;
    (match on_schedule with Some f -> f ~schedule:k | None -> ());
    let hooks =
      if k = 0 then Perturb.unperturbed
      else
        Perturb.explore
          ~rng:(schedule_rng ~seed ~schedule:k)
          ~tier:(Perturb.tier_for ~schedule:k)
    in
    run_one s ~hooks ~provoke
  in
  let rec loop k =
    if k >= budget then finish None
    else
      let r = attempt k in
      match r.violation with
      | None -> loop (k + 1)
      | Some _ ->
          let test ps =
            incr runs;
            (run_one s ~hooks:(Perturb.replay ps) ~provoke).violation <> None
          in
          let minimal, _ = ddmin ~test r.applied in
          (* One final replay of the minimal schedule: its violation and
             digest are what the artifact pins. *)
          incr runs;
          let final = run_one s ~hooks:(Perturb.replay minimal) ~provoke in
          let violation =
            match final.violation with Some v -> v | None -> Option.get r.violation
          in
          finish
            (Some
               {
                 scenario = s;
                 mutation;
                 provoke;
                 seed;
                 schedule = k;
                 perturbations = minimal;
                 violation;
                 digest = final.digest;
                 runs = !runs;
               })
  in
  loop 0

(* -- artifacts ------------------------------------------------------------ *)

let schema_version = 1

let counterexample_to_json (ce : counterexample) : Json.t =
  let opt_str = function None -> Json.Null | Some s -> Json.String s in
  Json.Obj
    [
      ("schema", Json.Int schema_version);
      ("scenario", Json.String (Scenario.to_string ce.scenario));
      ("mutation", opt_str ce.mutation);
      ("provoke", opt_str ce.provoke);
      ("seed", Json.Int ce.seed);
      ("schedule", Json.Int ce.schedule);
      ("perturbations", Json.List (List.map Perturb.to_json ce.perturbations));
      ( "violation",
        Json.Obj
          [
            ("invariant", Json.String ce.violation.invariant);
            ("detail", Json.String ce.violation.detail);
            ("at_ms", Json.Float (Time.to_ms_f ce.violation.at));
          ] );
      ("trace_digest", opt_str ce.digest);
      ("runs", Json.Int ce.runs);
    ]

let counterexample_to_string ce = Json.to_string (counterexample_to_json ce)

let counterexample_of_json (j : Json.t) : (counterexample, string) result =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  let req name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "artifact: missing or malformed %S" name)
  in
  let opt_str name =
    match Json.member name j with Some (Json.String s) -> Some s | _ -> None
  in
  let* schema = req "schema" Json.to_int in
  if schema <> schema_version then
    Error (Printf.sprintf "artifact: unsupported schema %d" schema)
  else
    let* sid = req "scenario" Json.to_str in
    let* scenario =
      match Scenario.of_string sid with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "artifact: unparseable scenario id %S" sid)
    in
    let* seed = req "seed" Json.to_int in
    let* schedule = req "schedule" Json.to_int in
    let* pjs = req "perturbations" Json.to_list in
    let* perturbations =
      List.fold_left
        (fun acc pj ->
          let* acc = acc in
          let* p = Perturb.of_json pj in
          Ok (p :: acc))
        (Ok []) pjs
      |> fun r -> (match r with Ok l -> Ok (List.rev l) | Error e -> Error e)
    in
    let* vj = req "violation" (fun x -> Some x) in
    let* invariant = match Option.bind (Json.member "invariant" vj) Json.to_str with
      | Some s -> Ok s
      | None -> Error "artifact: missing violation.invariant"
    in
    let* detail = match Option.bind (Json.member "detail" vj) Json.to_str with
      | Some s -> Ok s
      | None -> Error "artifact: missing violation.detail"
    in
    let at_ms =
      match Option.bind (Json.member "at_ms" vj) Json.to_float with Some f -> f | None -> 0.
    in
    Ok
      {
        scenario;
        mutation = opt_str "mutation";
        provoke = opt_str "provoke";
        seed;
        schedule;
        perturbations;
        violation = { at = Time.of_ms_f at_ms; invariant; detail };
        digest = opt_str "trace_digest";
        runs = (match Option.bind (Json.member "runs" j) Json.to_int with Some r -> r | None -> 0);
      }

let counterexample_of_string s =
  match Json.of_string s with Ok j -> counterexample_of_json j | Error e -> Error e

(* -- replay --------------------------------------------------------------- *)

type replay_outcome = {
  reproduced : bool;  (** the replay violated the same invariant *)
  observed : violation option;
  digest_match : bool option;  (** None when either side lacks a digest *)
}

let replay (ce : counterexample) : replay_outcome =
  Mutation.set ce.mutation;
  let r = run_one ce.scenario ~hooks:(Perturb.replay ce.perturbations) ~provoke:ce.provoke in
  Mutation.set None;
  let reproduced =
    match r.violation with
    | Some v -> String.equal v.invariant ce.violation.invariant
    | None -> false
  in
  let digest_match =
    match (ce.digest, r.digest) with
    | Some a, Some b -> Some (String.equal a b)
    | _ -> None
  in
  { reproduced; observed = r.violation; digest_match }

(* -- default matrices ----------------------------------------------------- *)

(* Small, fast deployments: the checker's power comes from schedule
   diversity, not scale. *)
let default_scenario ?(seed = 1) (p : Scenario.proto) : Scenario.t =
  let cfg = Config.make ~z:2 ~n:4 ~batch_size:20 ~client_inflight:8 ~seed () in
  let windows = { Scenario.warmup = Time.ms 500; measure = Time.ms 2000 } in
  Scenario.make ~windows ~trace:true p cfg

(* Every mutation with the scenario (and provocation) that flushes it
   out.  [geobft-rvc-weak] needs remote view-change traffic, which the
   equivocation provocation generates inside the chaos envelope. *)
let mutants : (string * (Scenario.t * string option)) list =
  let plain p = (default_scenario p, None) in
  [
    ("pbft-prepare-quorum", plain Scenario.Pbft);
    ("pbft-commit-quorum", plain Scenario.Pbft);
    ("zyzzyva-spec-history", plain Scenario.Zyzzyva);
    ("hotstuff-qc-quorum", plain Scenario.Hotstuff);
    ("geobft-share-stale", plain Scenario.Geobft);
    ( "geobft-rvc-weak",
      let cfg = Config.make ~z:2 ~n:4 ~batch_size:20 ~client_inflight:8 ~seed:1 () in
      let windows = { Scenario.warmup = Time.ms 1000; measure = Time.ms 8000 } in
      (Scenario.make ~windows ~trace:true Scenario.Geobft cfg, Some "geobft-equivocate-c0") );
    ("steward-certify-quorum", plain Scenario.Steward);
  ]

let mutant_scenario id = List.assoc_opt id mutants

(* -- attack search (DESIGN.md §14) ---------------------------------------- *)

(* The Byzantine-strategy search: instead of perturbing the schedule,
   each attempt installs one sampled attack program (lib/adversary)
   drawn from the protocol's adversary profile and runs it under the
   same invariant oracle.  Attempt 0 is the empty attack — a violation
   there means the configuration (usually a mutation) is broken without
   any adversary, and the artifact honestly records an empty program.
   On a violation the rule list is ddmin-shrunk to 1-minimality, so the
   artifact names exactly the rules that matter. *)

type attack_counterexample = {
  atk_scenario : Scenario.t;  (** base scenario; [attack = None] *)
  atk_mutation : string option;
  atk_seed : int;
  atk_attempt : int;  (** sampler attempt where the violation surfaced *)
  atk_attack : Adversary.Attack.t;  (** shrunk, 1-minimal rule list *)
  atk_violation : violation;
  atk_digest : string option;  (** trace digest of the minimal replay *)
  atk_runs : int;  (** simulations spent, search + shrinking *)
}

(* A different multiplier than {!schedule_rng} so attack streams never
   collide with schedule-perturbation streams for the same seed. *)
let attack_rng ~seed ~attempt = Rng.create (Int64.of_int ((seed * 1_000_033) + attempt))

(* Attack windows must clear well before the horizon so the oracle
   observes the protocol *after* it was supposed to heal. *)
let attack_tail_ms = 1000

let sample_attack ~seed ~attempt (s : Scenario.t) : Adversary.Attack.t =
  (* Attempt 0: the scenario's own attack if it pins one, else the
     empty program (the no-adversary baseline). *)
  if attempt = 0 then Option.value ~default:Adversary.Attack.empty s.Scenario.attack
  else
    let cfg = s.Scenario.cfg in
    let caps = Runner.adversary_profile s.Scenario.proto cfg in
    let w = s.Scenario.windows in
    let horizon_ms =
      int_of_float (Time.to_ms_f (Time.add w.Scenario.warmup w.Scenario.measure))
    in
    Adversary.sample
      ~rng:(attack_rng ~seed ~attempt)
      ~caps ~z:cfg.Config.z ~n:cfg.Config.n ~f:(Config.f cfg) ~horizon_ms
      ~tail_ms:attack_tail_ms ()

let run_attack (s : Scenario.t) (a : Adversary.Attack.t) : run_result =
  let attack = if a = Adversary.Attack.empty then None else Some a in
  run_one { s with Scenario.attack } ~hooks:Perturb.unperturbed ~provoke:None

let explore_attacks ?(budget = 64) ?(seed = 1) ?mutation ?on_attempt (s : Scenario.t) :
    attack_counterexample option =
  Mutation.set mutation;
  let finish v =
    Mutation.set None;
    v
  in
  let runs = ref 0 in
  let attempt k =
    incr runs;
    (match on_attempt with Some f -> f ~attempt:k | None -> ());
    sample_attack ~seed ~attempt:k s
  in
  let rec loop k =
    if k >= budget then finish None
    else
      let a = attempt k in
      let r = run_attack s a in
      match r.violation with
      | None -> loop (k + 1)
      | Some _ ->
          let test rules =
            incr runs;
            (run_attack s Adversary.Attack.{ rules }).violation <> None
          in
          let minimal, _ = ddmin ~test a.Adversary.Attack.rules in
          let minimal = Adversary.Attack.{ rules = minimal } in
          (* One final replay of the minimal attack: its violation and
             digest are what the artifact pins. *)
          incr runs;
          let final = run_attack s minimal in
          let violation =
            match final.violation with Some v -> v | None -> Option.get r.violation
          in
          finish
            (Some
               {
                 atk_scenario = { s with Scenario.attack = None };
                 atk_mutation = mutation;
                 atk_seed = seed;
                 atk_attempt = k;
                 atk_attack = minimal;
                 atk_violation = violation;
                 atk_digest = final.digest;
                 atk_runs = !runs;
               })
  in
  loop 0

(* -- attack artifacts ------------------------------------------------------ *)

let attack_schema_version = 1

let attack_counterexample_to_json (ce : attack_counterexample) : Json.t =
  let opt_str = function None -> Json.Null | Some s -> Json.String s in
  Json.Obj
    [
      ("schema", Json.Int attack_schema_version);
      ("kind", Json.String "attack");
      ("scenario", Json.String (Scenario.to_string ce.atk_scenario));
      ("mutation", opt_str ce.atk_mutation);
      ("seed", Json.Int ce.atk_seed);
      ("attempt", Json.Int ce.atk_attempt);
      ("attack", Adversary.Attack.to_json ce.atk_attack);
      ("attack_id", Json.String (Adversary.Attack.to_id ce.atk_attack));
      ( "violation",
        Json.Obj
          [
            ("invariant", Json.String ce.atk_violation.invariant);
            ("detail", Json.String ce.atk_violation.detail);
            ("at_ms", Json.Float (Time.to_ms_f ce.atk_violation.at));
          ] );
      ("trace_digest", opt_str ce.atk_digest);
      ("runs", Json.Int ce.atk_runs);
    ]

let attack_counterexample_to_string ce = Json.to_string (attack_counterexample_to_json ce)

let attack_counterexample_of_json (j : Json.t) : (attack_counterexample, string) result =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  let req name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "attack artifact: missing or malformed %S" name)
  in
  let opt_str name =
    match Json.member name j with Some (Json.String s) -> Some s | _ -> None
  in
  let* schema = req "schema" Json.to_int in
  if schema <> attack_schema_version then
    Error (Printf.sprintf "attack artifact: unsupported schema %d" schema)
  else
    let* kind = req "kind" Json.to_str in
    if not (String.equal kind "attack") then
      Error (Printf.sprintf "attack artifact: kind %S is not \"attack\"" kind)
    else
      let* sid = req "scenario" Json.to_str in
      let* scenario =
        match Scenario.of_string sid with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "attack artifact: unparseable scenario id %S" sid)
      in
      let* seed = req "seed" Json.to_int in
      let* attempt = req "attempt" Json.to_int in
      let* attack =
        match Json.member "attack" j with
        | Some aj -> Adversary.Attack.of_json aj
        | None -> Error "attack artifact: missing field \"attack\""
      in
      let* vj = req "violation" (fun x -> Some x) in
      let* invariant =
        match Option.bind (Json.member "invariant" vj) Json.to_str with
        | Some s -> Ok s
        | None -> Error "attack artifact: missing violation.invariant"
      in
      let* detail =
        match Option.bind (Json.member "detail" vj) Json.to_str with
        | Some s -> Ok s
        | None -> Error "attack artifact: missing violation.detail"
      in
      let at_ms =
        match Option.bind (Json.member "at_ms" vj) Json.to_float with
        | Some f -> f
        | None -> 0.
      in
      Ok
        {
          atk_scenario = { scenario with Scenario.attack = None };
          atk_mutation = opt_str "mutation";
          atk_seed = seed;
          atk_attempt = attempt;
          atk_attack = attack;
          atk_violation = { at = Time.of_ms_f at_ms; invariant; detail };
          atk_digest = opt_str "trace_digest";
          atk_runs =
            (match Option.bind (Json.member "runs" j) Json.to_int with
            | Some r -> r
            | None -> 0);
        }

let attack_counterexample_of_string s =
  match Json.of_string s with
  | Ok j -> attack_counterexample_of_json j
  | Error e -> Error e

let replay_attack (ce : attack_counterexample) : replay_outcome =
  Mutation.set ce.atk_mutation;
  let r = run_attack ce.atk_scenario ce.atk_attack in
  Mutation.set None;
  let reproduced =
    match r.violation with
    | Some v -> String.equal v.invariant ce.atk_violation.invariant
    | None -> false
  in
  let digest_match =
    match (ce.atk_digest, r.digest) with
    | Some a, Some b -> Some (String.equal a b)
    | _ -> None
  in
  { reproduced; observed = r.violation; digest_match }

(* -- attack default matrices ----------------------------------------------- *)

(* Longer than {!default_scenario}: attack windows (up to 2.5 s) must
   open after warmup and close {!attack_tail_ms} before the horizon,
   and the horizon stays below every protocol's liveness window so an
   in-envelope adversary can never trip the liveness invariant. *)
let default_attack_scenario ?(seed = 1) (p : Scenario.proto) : Scenario.t =
  let cfg = Config.make ~z:2 ~n:4 ~batch_size:20 ~client_inflight:8 ~seed () in
  let windows = { Scenario.warmup = Time.ms 500; measure = Time.ms 4000 } in
  Scenario.make ~windows ~trace:true p cfg

(* Mutations the attack search must rediscover from generic primitives
   alone, each with its base scenario.  [geobft-rvc-weak] is the
   showcase: the mutation weakens the remote view-change honor
   threshold, and only adversary-generated share starvation (silence,
   deafness or equivocation from cluster 0) produces the RVC traffic
   that exposes it — the search rediscovers the scripted equivocation
   provocation as a found, shrunk attack program.  The quorum mutants
   fire on any decision path, so their 1-minimal attack is typically
   empty: the artifact records that the weakness needs no adversary. *)
let attack_mutants : (string * Scenario.t) list =
  [
    ("pbft-prepare-quorum", default_attack_scenario Scenario.Pbft);
    ("pbft-commit-quorum", default_attack_scenario Scenario.Pbft);
    ("hotstuff-qc-quorum", default_attack_scenario Scenario.Hotstuff);
    ("steward-certify-quorum", default_attack_scenario Scenario.Steward);
    ( "geobft-rvc-weak",
      let cfg = Config.make ~z:2 ~n:4 ~batch_size:20 ~client_inflight:8 ~seed:1 () in
      let windows = { Scenario.warmup = Time.ms 1000; measure = Time.ms 8000 } in
      Scenario.make ~windows ~trace:true Scenario.Geobft cfg );
  ]

let attack_mutant_scenario id = List.assoc_opt id attack_mutants
