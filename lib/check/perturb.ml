(* Schedule perturbations (DESIGN.md §13).

   Three kinds, each a point edit to one deterministic counter of the
   simulation — which is what makes a recorded perturbation list an
   exact schedule description:

   - [Delay]: the nth admitted network send arrives [extra] later than
     the latency model computed.  Legal because jitter is unbounded
     above within a run's envelope — any arrival >= departure + base
     one-way latency is producible by the model.
   - [Defer]: the nth engine schedule call is pushed behind its
     equal-timestamp group.  Legal because simultaneous events have no
     defined order; this permutes a tie the heap otherwise breaks by
     insertion order.
   - [Swap]: the nth admitted network send arrives 1 ns before the
     previous message scheduled on the same directed link (when the
     legality floor permits), inverting one same-link FIFO pair.

   Explore mode draws perturbations from a dedicated RNG (never the
   engine's: the pre-perturbation prefix of the run must be identical
   to the unperturbed run) and records what it applied; replay mode
   applies a recorded list by counter lookup.  Since the simulation is
   a deterministic function of (seed, schedule edits), replaying the
   recorded list reproduces the exploring run event for event. *)

module Time = Rdb_sim.Time
module Rng = Rdb_prng.Rng
module Json = Rdb_fabric.Json

type t =
  | Delay of { nth : int; extra : Time.t }
  | Defer of { nth : int }
  | Swap of { nth : int }

let to_string = function
  | Delay { nth; extra } -> Printf.sprintf "delay#%d+%.3fms" nth (Time.to_ms_f extra)
  | Defer { nth } -> Printf.sprintf "defer#%d" nth
  | Swap { nth } -> Printf.sprintf "swap#%d" nth

let to_json = function
  | Delay { nth; extra } ->
      Json.Obj
        [
          ("kind", Json.String "delay");
          ("nth", Json.Int nth);
          ("extra_ns", Json.Int (Int64.to_int extra));
        ]
  | Defer { nth } -> Json.Obj [ ("kind", Json.String "defer"); ("nth", Json.Int nth) ]
  | Swap { nth } -> Json.Obj [ ("kind", Json.String "swap"); ("nth", Json.Int nth) ]

let of_json j =
  let ( let* ) o f = match o with Some v -> f v | None -> Error "malformed perturbation" in
  let* kind = Option.bind (Json.member "kind" j) Json.to_str in
  let* nth = Option.bind (Json.member "nth" j) Json.to_int in
  match kind with
  | "delay" ->
      let* ns = Option.bind (Json.member "extra_ns" j) Json.to_int in
      Ok (Delay { nth; extra = Int64.of_int ns })
  | "defer" -> Ok (Defer { nth })
  | "swap" -> Ok (Swap { nth })
  | k -> Error (Printf.sprintf "unknown perturbation kind %S" k)

(* -- intensity tiers ----------------------------------------------------- *)

(* How hard one explored schedule leans on the run.  Targets are picked
   by gap sampling (next target = current + 1 + uniform gap), so the
   perturbation RNG is consumed per-perturbation, not per-event, and
   counts stay small enough for delta debugging to be cheap.  The
   delay ceiling stays below every protocol timeout (2000 ms) and
   below half the measurement window, so a perturbed-but-correct run
   cannot be mistaken for a stalled one. *)
type tier = {
  net_gap : int;  (** mean-ish gap between perturbed sends *)
  defer_gap : int;  (** gap between deferred schedule calls *)
  max_delay_ms : float;
  swap_frac : float;  (** fraction of net perturbations that swap *)
  max_net : int;  (** cap on delay+swap perturbations per run *)
  max_defer : int;
}

let light =
  { net_gap = 4000; defer_gap = 20000; max_delay_ms = 50.; swap_frac = 0.3; max_net = 8; max_defer = 8 }

let medium =
  {
    net_gap = 1500;
    defer_gap = 8000;
    max_delay_ms = 300.;
    swap_frac = 0.4;
    max_net = 12;
    max_defer = 12;
  }

let heavy =
  {
    net_gap = 500;
    defer_gap = 3000;
    max_delay_ms = 800.;
    swap_frac = 0.5;
    max_net = 16;
    max_defer = 16;
  }

(* Schedule 0 of every budget runs unperturbed (the baseline the
   deterministic mutants fall to); the rest cycle light/medium/heavy. *)
let tier_for ~schedule =
  match schedule mod 3 with 1 -> light | 2 -> medium | _ -> heavy

(* -- hook pairs ---------------------------------------------------------- *)

type hooks = {
  defer : int -> bool;
  deliver : Rdb_sim.Network.delivery_hook;
  applied : unit -> t list;  (** what actually landed, in order *)
}

let unperturbed =
  {
    defer = (fun _ -> false);
    deliver = (fun ~src:_ ~dst:_ ~nth:_ ~floor:_ ~arrive ~last:_ -> arrive);
    applied = (fun () -> []);
  }

let explore ~rng ~(tier : tier) =
  let applied = ref [] in
  let gap g = 1 + Rng.int rng g in
  let next_defer = ref (gap tier.defer_gap) in
  let n_defer = ref 0 in
  let defer n =
    if !n_defer >= tier.max_defer || n < !next_defer then false
    else begin
      next_defer := n + gap tier.defer_gap;
      incr n_defer;
      applied := Defer { nth = n } :: !applied;
      true
    end
  in
  let next_net = ref (gap tier.net_gap) in
  let n_net = ref 0 in
  let deliver ~src:_ ~dst:_ ~nth ~floor ~arrive ~last =
    if !n_net >= tier.max_net || nth < !next_net then arrive
    else begin
      next_net := nth + gap tier.net_gap;
      let swap_target =
        if Rng.float rng < tier.swap_frac then
          match last with
          | Some l when Time.( >= ) (Time.sub l 1L) floor -> Some (Time.sub l 1L)
          | _ -> None
        else None
      in
      match swap_target with
      | Some target ->
          incr n_net;
          applied := Swap { nth } :: !applied;
          target
      | None ->
          let extra = Time.of_ms_f (Rng.float_range rng ~lo:1. ~hi:tier.max_delay_ms) in
          incr n_net;
          applied := Delay { nth; extra } :: !applied;
          Time.add arrive extra
    end
  in
  { defer; deliver; applied = (fun () -> List.rev !applied) }

let replay (ps : t list) =
  let defers = Hashtbl.create 16 in
  let delays = Hashtbl.create 16 in
  let swaps = Hashtbl.create 16 in
  List.iter
    (function
      | Defer { nth } -> Hashtbl.replace defers nth ()
      | Delay { nth; extra } -> Hashtbl.replace delays nth extra
      | Swap { nth } -> Hashtbl.replace swaps nth ())
    ps;
  let deliver ~src:_ ~dst:_ ~nth ~floor ~arrive ~last =
    if Hashtbl.mem swaps nth then
      match last with
      | Some l when Time.( >= ) (Time.sub l 1L) floor -> Time.sub l 1L
      | _ -> arrive
    else
      match Hashtbl.find_opt delays nth with
      | Some extra -> Time.add arrive extra
      | None -> arrive
  in
  { defer = (fun n -> Hashtbl.mem defers n); deliver; applied = (fun () -> ps) }
