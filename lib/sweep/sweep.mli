(** Deterministic multicore sweep engine: schedule independent
    simulation scenarios across OCaml 5 domains, collect reports in
    canonical scenario order regardless of completion order.

    Each per-scenario simulation stays single-domain (the DES is
    sequential by construction) and builds all of its state locally,
    so parallelism is a pure wall-clock win: [run ~jobs:n] produces
    byte-identical results documents — and identical per-run trace
    digests — for every [n].  DESIGN.md §12 gives the full determinism
    argument; the determinism suite asserts it for all five
    protocols. *)

module Scenario = Rdb_experiments.Scenario
module Report = Rdb_fabric.Report
module Json = Rdb_fabric.Json

type result = {
  scenario : Scenario.t;
  outcome : (Report.t, string) Stdlib.result;
      (** [Error] carries the exception rendering — notably a
          {!Rdb_chaos.Chaos.Violation} message with the offending seed
          and timeline. *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1] (at least 1): leave one
    core for the caller/OS. *)

val run :
  ?jobs:int ->
  ?on_done:
    (done_:int -> total:int -> Scenario.t -> (Report.t, string) Stdlib.result -> unit) ->
  Scenario.t list ->
  result list
(** Run every scenario, [jobs] at a time (default {!default_jobs};
    [1] is a genuinely serial pass — no domain is spawned).  Workers
    self-schedule off a shared lock-free queue, longest-expected-
    scenario first; results are returned in input order.  [on_done]
    is a progress callback (completion order, serialized by a mutex —
    safe to print from). *)

val reports_exn : result list -> (Scenario.t * Report.t) list
(** Unwrap all-[Ok] results, or raise [Failure] listing every failed
    scenario id with its error. *)

(** {1 Results documents}

    Both renderings are pure functions of the (ordered) results — no
    wall-clock times, job counts or hostnames — so serial and parallel
    sweeps of the same scenario list write byte-identical files. *)

val schema_version : int

val to_json : result list -> Json.t
val to_json_string : result list -> string
val to_csv_string : result list -> string
val write_json : out_channel -> result list -> unit
val write_csv : out_channel -> result list -> unit

val digests : result list -> (string * string) list
(** [(id, trace digest)] for every traced, successful scenario, in
    canonical order — the compact determinism witness. *)
