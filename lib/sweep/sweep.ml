(* Deterministic multicore sweep engine.

   The paper's entire evaluation (§4, Figures 10-13) is a grid of
   *independent* deployments — protocol × clusters × replicas × batch
   × fault — and each per-scenario simulation is sequential by
   construction (one DES event loop).  So the sweep is embarrassingly
   parallel: schedule whole scenarios across OCaml 5 domains and the
   wall-clock win is pure, with zero model change.

   Determinism argument (DESIGN.md §12):
   - a scenario run builds *all* of its state locally (engine, RNG
     streams, network, replicas, YCSB table, tracer); the codebase
     keeps no global mutable state, so runs cannot observe each other;
   - the work queue only decides *which domain* runs a scenario and
     *when* — never what the scenario computes;
   - results land in a slot array indexed by the scenario's position
     in the input list, so the output order is canonical regardless of
     completion order.

   Hence [run ~jobs:n] returns byte-identical reports (and identical
   per-run trace digests) for every n, which the determinism suite
   asserts and the per-run digest lets anyone re-check.

   Scheduling: a single shared queue, self-scheduling workers
   ([Atomic.fetch_and_add] on the next-index counter — lock-free, no
   idle domain while work remains).  Dispatch order is longest-
   expected-first ({!Scenario.cost_estimate}) so a big simulation
   starts early instead of serializing the tail of the sweep. *)

module Scenario = Rdb_experiments.Scenario
module Runner = Rdb_experiments.Runner
module Report = Rdb_fabric.Report
module Json = Rdb_fabric.Json

type result = { scenario : Scenario.t; outcome : (Report.t, string) Stdlib.result }

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let run_one (s : Scenario.t) : (Report.t, string) Stdlib.result =
  match Runner.run s with
  | report -> Ok report
  | exception Rdb_chaos.Chaos.Violation msg -> Error msg
  | exception exn -> Error (Printexc.to_string exn)

let run ?jobs ?on_done (scenarios : Scenario.t list) : result list =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let scenarios = Array.of_list scenarios in
  let total = Array.length scenarios in
  if total = 0 then []
  else begin
    (* Dispatch order: longest-expected-first, index as tie-break so
       the order (and thus which domain gets what — though not the
       results) is reproducible. *)
    let order = Array.init total (fun i -> i) in
    Array.sort
      (fun a b ->
        match compare (Scenario.cost_estimate scenarios.(b)) (Scenario.cost_estimate scenarios.(a))
        with
        | 0 -> compare a b
        | c -> c)
      order;
    let slots : result option array = Array.make total None in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let progress_mutex = Mutex.create () in
    let worker () =
      let rec loop () =
        let k = Atomic.fetch_and_add next 1 in
        if k < total then begin
          let i = order.(k) in
          let scenario = scenarios.(i) in
          let outcome = run_one scenario in
          slots.(i) <- Some { scenario; outcome };
          let done_ = Atomic.fetch_and_add completed 1 + 1 in
          (match on_done with
          | None -> ()
          | Some f ->
              Mutex.lock progress_mutex;
              Fun.protect
                ~finally:(fun () -> Mutex.unlock progress_mutex)
                (fun () -> f ~done_ ~total scenario outcome));
          loop ()
        end
      in
      loop ()
    in
    (* jobs workers in total: jobs - 1 spawned domains plus this one.
       jobs = 1 spawns nothing and is a genuinely serial pass. *)
    let domains = List.init (min jobs total - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> assert false (* every slot is filled before the joins return *))
         slots)
  end

let reports_exn (results : result list) : (Scenario.t * Report.t) list =
  let failures =
    List.filter_map
      (fun r ->
        match r.outcome with
        | Ok _ -> None
        | Error msg -> Some (Printf.sprintf "%s:\n%s" (Scenario.to_string r.scenario) msg))
      results
  in
  if failures <> [] then
    failwith
      (Printf.sprintf "%d sweep scenario(s) failed:\n%s" (List.length failures)
         (String.concat "\n" failures));
  List.map
    (fun r ->
      match r.outcome with Ok report -> (r.scenario, report) | Error _ -> assert false)
    results

(* -- results documents --------------------------------------------------- *)

(* Deliberately free of wall-clock times, job counts and hostnames:
   the document is a pure function of the scenario list and the
   binary, so `sweep -j 4` and `-j 1` write byte-identical files (the
   determinism suite compares them). *)
let schema_version = 1

let to_json (results : result list) : Json.t =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("report_schema_version", Json.Int Report.schema_version);
      ("scenario_schema_version", Json.Int Scenario.schema_version);
      ( "results",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 (("id", Json.String (Scenario.to_string r.scenario))
                  :: ("scenario", Scenario.to_json r.scenario)
                  ::
                  (match r.outcome with
                  | Ok report -> [ ("report", Report.to_json report) ]
                  | Error msg -> [ ("error", Json.String msg) ])))
             results) );
    ]

let to_json_string results = Json.to_string (to_json results)

let csv_header =
  "id,protocol,z,n,batch_size,fault,warmup_ms,measure_ms,throughput_txn_s,avg_latency_ms,\
   p50_latency_ms,p95_latency_ms,p99_latency_ms,completed_txns,decisions,view_changes,\
   state_transfers,holes_filled,retransmissions,trace_digest,error"

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv_string (results : result list) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b csv_header;
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      let s = r.scenario in
      let c = s.Scenario.cfg in
      let fmt = Json.float_to_string in
      let common =
        [
          csv_escape (Scenario.to_string s);
          Scenario.proto_name s.Scenario.proto;
          string_of_int c.Rdb_types.Config.z;
          string_of_int c.Rdb_types.Config.n;
          string_of_int c.Rdb_types.Config.batch_size;
          Scenario.fault_id s.Scenario.fault;
          fmt (Rdb_sim.Time.to_ms_f s.Scenario.windows.Scenario.warmup);
          fmt (Rdb_sim.Time.to_ms_f s.Scenario.windows.Scenario.measure);
        ]
      in
      let rest =
        match r.outcome with
        | Ok (rep : Report.t) ->
            [
              fmt rep.Report.throughput_txn_s;
              fmt rep.Report.avg_latency_ms;
              fmt rep.Report.p50_latency_ms;
              fmt rep.Report.p95_latency_ms;
              fmt rep.Report.p99_latency_ms;
              string_of_int rep.Report.completed_txns;
              string_of_int rep.Report.decisions;
              string_of_int rep.Report.view_changes;
              string_of_int rep.Report.state_transfers;
              string_of_int rep.Report.holes_filled;
              string_of_int rep.Report.retransmissions;
              (match rep.Report.trace with
              | Some t -> t.Rdb_trace.Trace.digest_hex
              | None -> "");
              "";
            ]
        | Error msg -> [ ""; ""; ""; ""; ""; ""; ""; ""; ""; ""; ""; ""; csv_escape msg ]
      in
      Buffer.add_string b (String.concat "," (common @ rest));
      Buffer.add_char b '\n')
    results;
  Buffer.contents b

let write_json oc results = output_string oc (to_json_string results)
let write_csv oc results = output_string oc (to_csv_string results)

(* Digest list in canonical order — the compact determinism witness
   ((id, digest) per traced scenario). *)
let digests (results : result list) : (string * string) list =
  List.filter_map
    (fun r ->
      match r.outcome with
      | Ok { Report.trace = Some t; _ } ->
          Some (Scenario.to_string r.scenario, t.Rdb_trace.Trace.digest_hex)
      | _ -> None)
    results
