(* Steward: hierarchical Byzantine fault tolerance for wide-area
   networks (Amir et al., TDSC 2010), as implemented in ResilientDB
   (§3: "This protocol groups replicas into clusters, similar to
   GeoBFT.  Different from GeoBFT, Steward designates one of these
   clusters as the primary cluster, which coordinates all operations").

   Shape implemented (one global decision):
   1. a client submits to its site's representative, which runs a
      *local threshold-certification round* over the request (each
      site acts as one logical trusted entity by threshold-signing its
      site messages);
   2. the origin representative forwards the certified request to the
      representative of the primary site (Oregon, cluster 0);
   3. the primary site assigns the global sequence number and
      threshold-certifies the assignment (a second local round);
   4. the certified global proposal goes to every site representative,
      which distributes it locally and runs a local *accept*
      certification (a third local round, one per site);
   5. accepts are exchanged representative-to-representative; a global
      sequence slot commits once a majority of sites accept, after
      which every replica executes in sequence order and replies to
      its local clients.

   Why Steward loses despite its topology-awareness (§4.1: "the high
   computational costs and the centralized design of Steward prevent
   high throughput in all cases"):
   - every local round costs threshold-RSA partial signatures at each
     replica and a combine at the representative — RSA-class costs,
     charged via [Config.threshold_partial_cost]/[threshold_combine_cost]
     (the paper's own implementation skipped threshold signatures but
     still observed the protocol's compute-bound profile);
   - all global ordering serializes through the primary site's
     representative.

   Steward view changes are not implemented, matching the paper ("it
   does not provide a readily-usable and complete view-change
   implementation"). *)

module Batch = Rdb_types.Batch
module Config = Rdb_types.Config
module Ctx = Rdb_types.Ctx
module Wire = Rdb_types.Wire
module Client_core = Rdb_types.Client_core
module Time = Rdb_sim.Time
module Cpu = Rdb_sim.Cpu
module Sha256 = Rdb_crypto.Sha256
module Recovery = Rdb_recovery.Recovery
module Mutation = Rdb_types.Mutation
module Evidence = Rdb_types.Evidence

let name = "Steward"

(* Outstanding global proposals the primary site keeps in flight;
   Steward's global ordering is largely sequential. *)
let global_window = 8

type msg =
  | Request of Batch.t
  | Read_request of Batch.t
      (* Consensus-bypass read-only batch, answered from site-member
         state (client waits for f+1 matching result digests). *)
  | Certify_req of { tag : string; digest : string; batch : Batch.t option }
  | Partial_sig of { tag : string; digest : string }
  | Site_forward of { batch : Batch.t }             (* origin rep -> leader rep *)
  | Global_proposal of { g : int; batch : Batch.t } (* leader rep -> site reps *)
  | Global_accept of { g : int; site : int; digest : string }
  | Local_bcast of { g : int; batch : Batch.t }     (* rep -> site members *)
  | Local_commit of { g : int }                     (* rep -> site members *)
  | Fetch_globals of { from : int }                 (* catch-up request *)
  | Globals_data of { from : int; batches : Batch.t list }
  | Reply of { batch_id : int; result_digest : string }

type certify_round = {
  c_digest : string;
  c_batch : Batch.t option;            (* kept for re-broadcast *)
  partials : (int, unit) Hashtbl.t;    (* local indices that signed *)
  mutable c_done : bool;
  on_cert : unit -> unit;
}

type replica = {
  ctx : msg Ctx.t;
  cfg : Config.t;
  my_cluster : int;
  my_local : int;
  (* Representative duties (local index 0 of each site): *)
  certifying : (string, certify_round) Hashtbl.t;
  mutable next_g : int;                 (* leader rep: next global seq *)
  assign_queue : Batch.t Queue.t;       (* leader rep: awaiting assignment *)
  seen : (string, unit) Hashtbl.t;
  accepts : (int, (int, unit) Hashtbl.t) Hashtbl.t;   (* g -> accepting sites *)
  accepted_digest : (int, string) Hashtbl.t;
  (* All replicas: *)
  proposals : (int, Batch.t) Hashtbl.t; (* g -> batch *)
  committed : (int, unit) Hashtbl.t;
  mutable next_exec : int;
  mutable exec_busy : bool;             (* an execute is in flight *)
  mutable commit_sent : (int, unit) Hashtbl.t;  (* rep: local commits sent *)
  (* Retransmission / catch-up (lib/recovery).  The representative
     channel is the protocol's spine: a single lost Global_proposal or
     Global_accept wedges a site forever, so every replica runs a
     state-driven stall task with exponential backoff + jitter. *)
  mutable max_g_seen : int;             (* highest global seq heard of *)
  pending_forwards : (string, Batch.t) Hashtbl.t;  (* origin rep: unacked *)
  stats : Recovery.Stats.t;
  mutable task : Recovery.Task.t option;
}

(* Batches per catch-up reply. *)
let catchup_chunk = 64

let cert_size cfg = Wire.certificate_bytes ~batch_size:cfg.Config.batch_size ~sigs:1

let size_of cfg = function
  | Request _ | Read_request _ -> Wire.batch_bytes ~batch_size:cfg.Config.batch_size
  | Certify_req { batch = Some _; _ } -> Wire.batch_bytes ~batch_size:cfg.Config.batch_size
  | Certify_req _ | Partial_sig _ | Local_commit _ | Global_accept _ | Fetch_globals _ ->
      Wire.small
  | Globals_data { batches; _ } ->
      Wire.snapshot_bytes ~batch_size:cfg.Config.batch_size ~sigs:1
        ~blocks:(List.length batches)
  | Site_forward _ | Global_proposal _ | Local_bcast _ -> cert_size cfg
  | Reply _ -> Wire.response_bytes ~batch_size:cfg.Config.batch_size

(* Threshold-signature verification is RSA-verify class; model it with
   the standard signature-verification cost. *)
let vcost_of cfg m =
  match m with
  | Site_forward _ | Global_proposal _ | Global_accept _ | Local_bcast _ ->
      Time.add (Config.recv_floor_cost cfg ~bytes:(size_of cfg m)) (Config.verify_cost cfg)
  | Partial_sig _ ->
      Time.add (Config.recv_floor_cost cfg ~bytes:Wire.small) (Config.verify_cost cfg)
  | Globals_data { batches; _ } ->
      (* The requester re-verifies the site certificates it installs. *)
      Time.add
        (Config.recv_floor_cost cfg ~bytes:(size_of cfg m))
        (Time.of_us_f
           (cfg.Config.costs.Config.verify_us *. float_of_int (max 1 (List.length batches))))
  | m -> Config.recv_floor_cost cfg ~bytes:(size_of cfg m)

let send r ~dst m = r.ctx.Ctx.send ~dst ~size:(size_of r.cfg m) ~vcost:(vcost_of r.cfg m) m

let rep_of cfg ~cluster = Config.replica_id cfg ~cluster ~index:0
let is_rep r = r.my_local = 0
let leader_rep r = rep_of r.cfg ~cluster:0
let is_leader_rep r = r.ctx.Ctx.id = leader_rep r

let site_members r = Config.replicas_of_cluster r.cfg r.my_cluster

let broadcast_site r m =
  let dsts = List.filter (fun dst -> dst <> r.ctx.Ctx.id) (site_members r) in
  Ctx.multicast r.ctx ~dsts ~size:(size_of r.cfg m) ~vcost:(vcost_of r.cfg m) m

(* Pooled fan-out to every remote site's representative. *)
let broadcast_reps r m =
  let dsts = ref [] in
  for c = r.cfg.Config.z - 1 downto 0 do
    if c <> r.my_cluster then dsts := rep_of r.cfg ~cluster:c :: !dsts
  done;
  Ctx.multicast r.ctx ~dsts:!dsts ~size:(size_of r.cfg m) ~vcost:(vcost_of r.cfg m) m

let majority_sites cfg = (cfg.Config.z / 2) + 1

let reps_except_self r =
  List.filter
    (fun id -> id <> r.ctx.Ctx.id)
    (List.init r.cfg.Config.z (fun c -> rep_of r.cfg ~cluster:c))

(* Arm the stall task whenever there is outstanding work it may need
   to push through; it retires on its own once nothing is pending. *)
let ensure_task r = match r.task with Some t -> Recovery.Task.ensure t | None -> ()

let note_g r g =
  if g > r.max_g_seen then r.max_g_seen <- g;
  if g >= r.next_exec then ensure_task r

let view_changes (_ : replica) = 0

(* -- local threshold certification (representative-driven) ---------------- *)

(* Start a certification round for [tag]; [on_cert] fires at the
   representative once n − f partial signatures are combined. *)
let rec start_certify r ~tag ~digest ?batch ~on_cert () =
  if not (Hashtbl.mem r.certifying tag) then begin
    let round =
      { c_digest = digest; c_batch = batch; partials = Hashtbl.create 8; c_done = false; on_cert }
    in
    Hashtbl.replace r.certifying tag round;
    ensure_task r;
    broadcast_site r (Certify_req { tag; digest; batch });
    (* Our own partial signature. *)
    r.ctx.Ctx.charge ~stage:Cpu.Worker ~cost:(Config.threshold_partial_cost r.cfg) (fun () ->
        Hashtbl.replace round.partials r.my_local ();
        check_certified r round)
  end

and check_certified r round =
  let need = Config.quorum r.cfg in
  let gate = if Mutation.is "steward-certify-quorum" then need - 1 else need in
  if (not round.c_done) && Hashtbl.length round.partials >= gate then begin
    Evidence.note ~point:"steward.certified" ~node:r.ctx.Ctx.id
      ~count:(Hashtbl.length round.partials) ~need;
    round.c_done <- true;
    (* Combine the threshold shares; the round record is no longer
       needed once combined (late partials are simply ignored). *)
    r.ctx.Ctx.charge ~stage:Cpu.Certify ~cost:(Config.threshold_combine_cost r.cfg) (fun () ->
        round.on_cert ())
  end

(* -- execution -------------------------------------------------------------- *)

(* Global sequence g must land at ledger height g, and the ledger
   append happens inside the charged [execute] callback — which the
   fabric drops if the replica crashes mid-charge.  Advance [next_exec]
   only once the append has actually happened ([on_done]); otherwise a
   crash that interrupts an in-flight execute would skip one append
   while the cursor moves on, and the cursor-walking catch-up would
   rebuild the whole suffix shifted by one height (a permanent
   prefix-agreement violation).  [exec_busy] keeps execution strictly
   sequential across the re-entrant callers (Local_commit,
   record_accept, install_globals); [on_recover] clears it because a
   crash drops the in-flight [on_done]. *)
let rec exec_ready r =
  if (not r.exec_busy) && Hashtbl.mem r.committed r.next_exec then
    match Hashtbl.find_opt r.proposals r.next_exec with
    | None -> ()
    | Some batch ->
        let g = r.next_exec in
        r.exec_busy <- true;
        r.ctx.Ctx.execute batch ~cert:None ~on_done:(fun result ->
            r.exec_busy <- false;
            r.next_exec <- g + 1;
            let old = r.next_exec - 512 in
            Hashtbl.remove r.proposals old;
            Hashtbl.remove r.committed old;
            Hashtbl.remove r.accepts old;
            Hashtbl.remove r.accepted_digest old;
            Hashtbl.remove r.commit_sent old;
            r.ctx.Ctx.phase ~key:g ~name:"execute";
            (match result with
            | Some res
              when (not (Batch.is_noop batch)) && batch.Batch.cluster = r.my_cluster ->
                send r ~dst:batch.Batch.origin
                  (Reply
                     { batch_id = batch.Batch.id; result_digest = res.Rdb_types.App.digest })
            | _ -> ());
            exec_ready r)

(* -- leader-site global ordering --------------------------------------------- *)

let rec assign_more r =
  if
    is_leader_rep r
    && (not (Queue.is_empty r.assign_queue))
    && r.next_g - r.next_exec < global_window
  then begin
    let batch = Queue.pop r.assign_queue in
    let g = r.next_g in
    r.next_g <- g + 1;
    note_g r g;
    r.ctx.Ctx.phase ~key:g ~name:"propose";
    (* Certify the assignment within the primary site, then propose
       globally. *)
    let tag = Printf.sprintf "prop:%d" g in
    start_certify r ~tag ~digest:batch.Batch.digest ~on_cert:(fun () ->
        broadcast_reps r (Global_proposal { g; batch });
        accept_proposal r ~g ~batch;
        assign_more r)
      ()
  end

(* A site representative processes global proposal [g]: distribute
   locally, certify the site's accept, exchange it. *)
and accept_proposal r ~g ~batch =
  note_g r g;
  Hashtbl.remove r.pending_forwards batch.Batch.digest;
  if not (Hashtbl.mem r.proposals g) then begin
    r.ctx.Ctx.phase ~key:g ~name:"propose";
    Hashtbl.replace r.proposals g batch;
    broadcast_site r (Local_bcast { g; batch });
    let tag = Printf.sprintf "acc:%d" g in
    start_certify r ~tag ~digest:batch.Batch.digest ~on_cert:(fun () ->
        r.ctx.Ctx.phase ~key:g ~name:"certify-share";
        broadcast_reps r
          (Global_accept { g; site = r.my_cluster; digest = batch.Batch.digest });
        record_accept r ~g ~site:r.my_cluster ~digest:batch.Batch.digest)
      ()
  end

and record_accept r ~g ~site ~digest =
  note_g r g;
  let tbl =
    match Hashtbl.find_opt r.accepts g with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 4 in
        Hashtbl.replace r.accepts g t;
        Hashtbl.replace r.accepted_digest g digest;
        t
  in
  (match Hashtbl.find_opt r.accepted_digest g with
  | Some d when String.equal d digest -> Hashtbl.replace tbl site ()
  | _ -> ());
  if Hashtbl.length tbl >= majority_sites r.cfg && not (Hashtbl.mem r.commit_sent g) then begin
    Evidence.note ~point:"steward.commit" ~node:r.ctx.Ctx.id ~count:(Hashtbl.length tbl)
      ~need:(majority_sites r.cfg);
    r.ctx.Ctx.phase ~key:g ~name:"commit";
    Hashtbl.replace r.commit_sent g ();
    Hashtbl.replace r.committed g ();
    broadcast_site r (Local_commit { g });
    exec_ready r;
    assign_more r
  end

(* -- retransmission and catch-up (lib/recovery) ---------------------------- *)

let stalled r = r.max_g_seen >= r.next_exec

let needed r =
  stalled r
  || (is_leader_rep r && r.next_exec < r.next_g)
  || Hashtbl.length r.pending_forwards > 0
  || Hashtbl.fold (fun _ rd acc -> acc || not rd.c_done) r.certifying false

(* Progress token: only the stall-relevant cursors.  Including the
   committed count or next_g would change on unrelated traffic and
   keep resetting the backoff, starving the fire. *)
let progress r = r.next_exec + (8191 * Hashtbl.length r.pending_forwards)

(* Global sequence g executes at ledger height g, so catch-up is a walk
   of the server's committed prefix.  Members ask within their site;
   representatives rotate over the other sites' representatives. *)
let send_catchup_fetch r ~attempt =
  let targets =
    if is_rep r then reps_except_self r
    else List.filter (fun id -> id <> r.ctx.Ctx.id) (site_members r)
  in
  match targets with
  | [] -> ()
  | ts ->
      send r ~dst:(List.nth ts (attempt mod List.length ts)) (Fetch_globals { from = r.next_exec })

let serve_globals r ~src ~from =
  let rec collect g acc =
    if g - from >= catchup_chunk then List.rev acc
    else
      match (Hashtbl.mem r.committed g, Hashtbl.find_opt r.proposals g) with
      | true, Some b -> collect (g + 1) (b :: acc)
      | _ -> List.rev acc
  in
  match collect from [] with
  | [] -> ()
  | batches -> send r ~dst:src (Globals_data { from; batches })

let install_globals r ~from batches =
  let filled = ref 0 in
  List.iteri
    (fun i batch ->
      let g = from + i in
      if g >= r.next_exec then begin
        note_g r g;
        let fresh = ref false in
        if not (Hashtbl.mem r.proposals g) then begin
          Hashtbl.replace r.proposals g batch;
          fresh := true
        end;
        if not (Hashtbl.mem r.committed g) then begin
          Hashtbl.replace r.committed g ();
          fresh := true
        end;
        Hashtbl.remove r.pending_forwards batch.Batch.digest;
        if !fresh then begin
          incr filled;
          (* A representative relays what it learned so its site
             members do not each have to fetch. *)
          if is_rep r then begin
            broadcast_site r (Local_bcast { g; batch });
            broadcast_site r (Local_commit { g })
          end
        end
      end)
    batches;
  if !filled > 0 then begin
    Recovery.Stats.note_holes r.stats !filled;
    Recovery.Stats.note_state_transfer r.stats
  end;
  exec_ready r

(* The backoff-task fire: push every kind of outstanding work once. *)
let retransmit r ~attempt =
  Recovery.Stats.note_retransmit r.stats;
  if stalled r then send_catchup_fetch r ~attempt;
  if is_rep r then begin
    (* Unfinished threshold-certification rounds: re-broadcast the
       request; partial signatures are idempotent. *)
    Hashtbl.iter
      (fun tag rd ->
        if not rd.c_done then
          broadcast_site r (Certify_req { tag; digest = rd.c_digest; batch = rd.c_batch }))
      r.certifying;
    (* Re-send our site's accept for still-uncommitted globals. *)
    for g = r.next_exec to min r.max_g_seen (r.next_exec + global_window) do
      if not (Hashtbl.mem r.committed g) then
        match Hashtbl.find_opt r.accepts g with
        | Some tbl when Hashtbl.mem tbl r.my_cluster ->
            let digest = Hashtbl.find r.accepted_digest g in
            List.iter
              (fun dst -> send r ~dst (Global_accept { g; site = r.my_cluster; digest }))
              (reps_except_self r)
        | _ -> ()
    done;
    (* Origin representative: certified requests the leader never
       sequenced (the forward may have been lost). *)
    if not (is_leader_rep r) then
      Hashtbl.iter
        (fun _ batch -> send r ~dst:(leader_rep r) (Site_forward { batch }))
        r.pending_forwards;
    (* Leader: re-propose assigned-but-uncommitted globals to the
       sites that have not accepted them yet. *)
    if is_leader_rep r then
      for g = r.next_exec to r.next_g - 1 do
        if not (Hashtbl.mem r.committed g) then
          match Hashtbl.find_opt r.proposals g with
          | Some batch ->
              let accepted c =
                match Hashtbl.find_opt r.accepts g with
                | Some tbl -> Hashtbl.mem tbl c
                | None -> false
              in
              for c = 0 to r.cfg.Config.z - 1 do
                if c <> r.my_cluster && not (accepted c) then
                  send r ~dst:(rep_of r.cfg ~cluster:c) (Global_proposal { g; batch })
              done
          | None -> ()
      done
  end

(* -- construction ----------------------------------------------------------- *)

let create_replica (ctx : msg Ctx.t) =
  let cfg = ctx.Ctx.config in
  let r =
    {
      ctx;
      cfg;
      my_cluster = Config.cluster_of_replica cfg ctx.Ctx.id;
      my_local = Config.local_index cfg ctx.Ctx.id;
      certifying = Hashtbl.create 64;
      next_g = 0;
      assign_queue = Queue.create ();
      seen = Hashtbl.create 256;
      accepts = Hashtbl.create 64;
      accepted_digest = Hashtbl.create 64;
      proposals = Hashtbl.create 128;
      committed = Hashtbl.create 128;
      next_exec = 0;
      exec_busy = false;
      commit_sent = Hashtbl.create 64;
      max_g_seen = -1;
      pending_forwards = Hashtbl.create 16;
      stats = Recovery.Stats.create ();
      task = None;
    }
  in
  r.task <-
    Some
      (Recovery.Task.create
         ~set_timer:(fun ~delay k -> ignore (ctx.Ctx.set_timer ~delay k))
         ~rng:ctx.Ctx.rng
         ~base:(Time.of_ms_f cfg.Config.local_timeout_ms)
         ~cap:(Time.of_ms_f (8. *. cfg.Config.local_timeout_ms))
         ~needed:(fun () -> needed r)
         ~progress:(fun () -> progress r)
         ~fire:(fun ~attempt -> retransmit r ~attempt)
         ());
  r

(* The crash dropped any in-flight execute's [on_done], so the busy
   flag must be cleared or execution would wedge forever; catch-up then
   re-fetches and re-executes the interrupted sequence number. *)
let on_recover (r : replica) =
  r.exec_busy <- false;
  ensure_task r
let recovery (r : replica) = Recovery.Stats.to_protocol r.stats
let disable_recovery (_ : replica) = ()

(* -- dispatch ------------------------------------------------------------------ *)

let on_message r ~src (m : msg) =
  match m with
  | Request batch ->
      (* Site representative: certify locally, then route to the
         primary site for sequencing. *)
      if
        is_rep r
        && (not (Hashtbl.mem r.seen batch.Batch.digest))
        && batch.Batch.cluster = r.my_cluster
        && Batch.verify ~keychain:r.ctx.Ctx.keychain batch
      then begin
        Hashtbl.replace r.seen batch.Batch.digest ();
        let tag = "req:" ^ Rdb_crypto.Hex.of_string (String.sub batch.Batch.digest 0 8) in
        start_certify r ~tag ~digest:batch.Batch.digest ~batch ~on_cert:(fun () ->
            if is_leader_rep r then begin
              Queue.push batch r.assign_queue;
              assign_more r
            end
            else begin
              Hashtbl.replace r.pending_forwards batch.Batch.digest batch;
              ensure_task r;
              send r ~dst:(leader_rep r) (Site_forward { batch })
            end)
          ()
      end
  | Certify_req { tag; digest; batch = _ } ->
      (* Generate our partial signature for the site certificate. *)
      if Config.cluster_of_replica r.cfg src = r.my_cluster && src = rep_of r.cfg ~cluster:r.my_cluster
      then
        r.ctx.Ctx.charge ~stage:Cpu.Worker ~cost:(Config.threshold_partial_cost r.cfg) (fun () ->
            send r ~dst:src (Partial_sig { tag; digest }))
  | Partial_sig { tag; digest } ->
      if is_rep r && Config.cluster_of_replica r.cfg src = r.my_cluster then begin
        match Hashtbl.find_opt r.certifying tag with
        | Some round when String.equal round.c_digest digest ->
            Hashtbl.replace round.partials (Config.local_index r.cfg src) ();
            check_certified r round
        | _ -> ()
      end
  | Site_forward { batch } ->
      if is_leader_rep r && not (Hashtbl.mem r.seen batch.Batch.digest) then begin
        Hashtbl.replace r.seen batch.Batch.digest ();
        Queue.push batch r.assign_queue;
        assign_more r
      end
  | Global_proposal { g; batch } ->
      if is_rep r && src = leader_rep r then accept_proposal r ~g ~batch
  | Global_accept { g; site; digest } ->
      if is_rep r then record_accept r ~g ~site ~digest
  | Local_bcast { g; batch } ->
      if src = rep_of r.cfg ~cluster:r.my_cluster then begin
        note_g r g;
        if not (Hashtbl.mem r.proposals g) then begin
          r.ctx.Ctx.phase ~key:g ~name:"propose";
          Hashtbl.replace r.proposals g batch;
          exec_ready r
        end
      end
  | Local_commit { g } ->
      if src = rep_of r.cfg ~cluster:r.my_cluster then begin
        note_g r g;
        if not (Hashtbl.mem r.committed g) then r.ctx.Ctx.phase ~key:g ~name:"commit";
        Hashtbl.replace r.committed g ();
        exec_ready r
      end
  | Read_request batch ->
      (* Any site member serves a read-only batch from current state;
         f+1 matching digests at the client prove a committed prefix. *)
      if
        batch.Batch.cluster = r.my_cluster
        && Batch.verify ~keychain:r.ctx.Ctx.keychain batch
        && Batch.read_only batch
      then
        r.ctx.Ctx.read_execute batch ~on_done:(fun res ->
            send r ~dst:batch.Batch.origin
              (Reply { batch_id = batch.Batch.id; result_digest = res.Rdb_types.App.digest }))
  | Fetch_globals { from } -> serve_globals r ~src ~from
  | Globals_data { from; batches } -> install_globals r ~from batches
  | Reply _ -> ()

(* -- client ---------------------------------------------------------------------- *)

type client = { core : msg Client_core.t }

let create_client (ctx : msg Ctx.t) ~cluster =
  let cfg = ctx.Ctx.config in
  let size = Wire.batch_bytes ~batch_size:cfg.Config.batch_size in
  let vcost = Config.recv_floor_cost cfg ~bytes:size in
  let transmit ~retry:_ (batch : Batch.t) =
    (* Clients talk to their site's representative. *)
    ctx.Ctx.send ~dst:(rep_of cfg ~cluster) ~size ~vcost (Request batch)
  in
  (* Read-only batches skip global ordering entirely: every site
     member answers from its state. *)
  let transmit_read (batch : Batch.t) =
    List.iter
      (fun dst -> ctx.Ctx.send ~dst ~size ~vcost (Read_request batch))
      (Config.replicas_of_cluster cfg cluster)
  in
  {
    core =
      Client_core.create ~ctx ~threshold:(Config.weak_quorum cfg) ~transmit_read ~transmit ();
  }

let submit (c : client) batch = Client_core.submit c.core batch

let on_client_message (c : client) ~src (m : msg) =
  match m with
  | Reply { batch_id; result_digest } -> Client_core.on_reply c.core ~src ~batch_id ~result_digest
  | _ -> ()

(* -- adversarial view (lib/adversary) -------------------------------------- *)

(* [Share] covers the threshold-signature traffic (partial signatures
   and the local distribution of globally ordered batches).  Content
   equivocation is not modelled: Steward's threshold certificates bind
   the batch digest, so any forged payload is rejected at
   verification — withholding and delaying shares is the attack
   surface. *)
let adversary : msg Rdb_types.Interpose.view =
  let open Rdb_types.Interpose in
  let classify = function
    | Request _ | Read_request _ | Site_forward _ | Reply _ -> Client
    | Certify_req _ | Global_proposal _ -> Proposal
    | Partial_sig _ | Local_bcast _ -> Share
    | Global_accept _ | Local_commit _ -> Vote
    | Fetch_globals _ | Globals_data _ -> Sync
  in
  let conflict ~keychain:_ ~nonce:_ _ = None in
  { classify; conflict }
