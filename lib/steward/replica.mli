(** Steward (Amir et al.): hierarchical BFT for wide-area networks, as
    characterized in the paper (§3): sites act as logical entities via
    threshold-signed site messages, and a designated primary site
    (Oregon) assigns the global order — three local
    threshold-certification rounds and two representative-level
    exchanges per decision, whose RSA-class costs are what keep
    Steward's throughput low and flat (§4.1).  No view change,
    matching the paper.  Satisfies {!Rdb_types.Protocol.S}. *)

module Batch = Rdb_types.Batch
module Ctx = Rdb_types.Ctx

val name : string

val global_window : int
(** Outstanding global proposals the primary site keeps in flight. *)

type msg =
  | Request of Batch.t
  | Read_request of Batch.t
      (** Consensus-bypass read-only batch, answered from site-member
          state (client waits for f+1 matching result digests). *)
  | Certify_req of { tag : string; digest : string; batch : Batch.t option }
  | Partial_sig of { tag : string; digest : string }
  | Site_forward of { batch : Batch.t }
  | Global_proposal of { g : int; batch : Batch.t }
  | Global_accept of { g : int; site : int; digest : string }
  | Local_bcast of { g : int; batch : Batch.t }
  | Local_commit of { g : int }
  | Fetch_globals of { from : int }
      (** Stall catch-up: ask for the committed run from [from]. *)
  | Globals_data of { from : int; batches : Batch.t list }
  | Reply of { batch_id : int; result_digest : string }

type replica
type client

val create_replica : msg Ctx.t -> replica
val on_message : replica -> src:int -> msg -> unit
val view_changes : replica -> int

val on_recover : replica -> unit
(** Re-arm the stall-retransmission task (Steward replicas are not
    crash-injected; the task is state-driven and ack-free). *)

val disable_recovery : replica -> unit
(** Test hook: no out-of-band recovery machinery here; no-op. *)

val recovery : replica -> Rdb_types.Protocol.recovery_stats

val create_client : msg Ctx.t -> cluster:int -> client
val submit : client -> Batch.t -> unit
val on_client_message : client -> src:int -> msg -> unit

val adversary : msg Rdb_types.Interpose.view
(** Adversarial message classification ([Share] = threshold-signature
    traffic); certificates bind batch digests, so [conflict] is
    always [None]. *)
