(* Chaos fault injection with continuous safety-invariant checking.

   Three pieces, all deterministic given the engine RNG:

   - fault actions: small reversible edits of the simulated network /
     deployment (crash, partition, link flap, loss, duplication,
     sharing equivocation), applied and reverted by scheduled events;
   - the planner: samples a timeline of fault windows from a seeded
     RNG under a budget that keeps every cluster within its f crash
     tolerance, so the protocols are *obliged* to stay safe;
   - the monitor: a self-rearming sampled check of the safety
     invariants while faults are raging, not just at run end.

   The planner draws from its own split RNG stream, so two runs with
   the same seed produce the same timeline event for event. *)

module Time = Rdb_sim.Time
module Rng = Rdb_prng.Rng
module Ledger = Rdb_ledger.Ledger
module Block = Rdb_ledger.Block
module Batch = Rdb_types.Batch

type action =
  | Crash of int
  | Partition of int * int
  | Link_down of { src : int; dst : int }
  | Link_loss of { src : int; dst : int; p : float }
  | Link_dup of { src : int; dst : int; p : float }
  | Equivocate of { cluster : int; skip : int list }

type event = { at : Time.t; until : Time.t; action : action }
type timeline = event list

let action_to_string = function
  | Crash r -> Printf.sprintf "crash replica %d" r
  | Partition (a, b) -> Printf.sprintf "partition clusters %d|%d" a b
  | Link_down { src; dst } -> Printf.sprintf "link down %d->%d" src dst
  | Link_loss { src; dst; p } -> Printf.sprintf "link loss %d->%d p=%.2f" src dst p
  | Link_dup { src; dst; p } -> Printf.sprintf "link dup %d->%d p=%.2f" src dst p
  | Equivocate { cluster; skip } ->
      Printf.sprintf "equivocate: cluster %d primary withholds shares from [%s]"
        cluster
        (String.concat ";" (List.map string_of_int skip))

let describe tl =
  String.concat "\n"
    (List.map
       (fun e ->
         Printf.sprintf "  [%7.1fms .. %7.1fms] %s" (Time.to_ms_f e.at)
           (Time.to_ms_f e.until)
           (action_to_string e.action))
       tl)

type caps = {
  crashable : int -> bool;
  partitions : bool;
  link_down : bool;
  link_loss : bool;
  link_dup : bool;
  equivocation : bool;
}

type agreement_mode = Prefix | Eventual_set of int

type surface = {
  z : int;
  n : int;
  f : int;
  caps : caps;
  agreement : agreement_mode;
  crash : int -> unit;
  recover : int -> unit;
  partition : ca:int -> cb:int -> unit;
  heal : ca:int -> cb:int -> unit;
  sever_link : src:int -> dst:int -> unit;
  restore_link : src:int -> dst:int -> unit;
  set_link_loss : src:int -> dst:int -> p:float -> unit;
  set_link_dup : src:int -> dst:int -> p:float -> unit;
  (* Equivocation-by-omission: the cluster withholds its certified
     shares from the [skip] clusters.  The runner implements this
     generically for every protocol through the adversary subsystem's
     silence primitive (lib/adversary), so the planner carries no
     protocol-specific special case; [caps.equivocation] alone decides
     whether the action is in the menu. *)
  equivocate : cluster:int -> skip:int list -> unit;
  stop_equivocate : cluster:int -> unit;
  ledger : int -> Ledger.t;
  now : unit -> Time.t;
  at : Time.t -> (unit -> unit) -> unit;
}

(* ------------------------------------------------------------------ *)
(* Planner                                                             *)
(* ------------------------------------------------------------------ *)

type plan_cfg = {
  horizon : Time.t;
  tail : Time.t;
  n_faults : int;
  max_loss : float;
}

let default_plan ~horizon ~tail = { horizon; tail; n_faults = 4; max_loss = 0.3 }

type kind = KCrash | KPartition | KLink_down | KLink_loss | KLink_dup | KEquivocate

let overlaps (a : event) (b : event) =
  Time.(a.at < b.until) && Time.(b.at < a.until)

(* The shared f-per-cluster corruption budget: at most [f] of any one
   cluster's [n] members may be faulty/corrupt at a time.  Used below
   for concurrent crash windows and by the Byzantine-strategy
   subsystem (lib/adversary) for its corrupted-replica envelope. *)
let within_cluster_budget ~n ~f ids =
  let counts = Hashtbl.create 8 in
  List.for_all
    (fun v ->
      let c = v / n in
      let k = 1 + Option.value ~default:0 (Hashtbl.find_opt counts c) in
      Hashtbl.replace counts c k;
      k <= f)
    ids

(* Budget check: would admitting [cand] let the run exceed what the
   protocols are required to tolerate?  Conservative pairwise-overlap
   counting: any instant where more than f crash windows of one
   cluster coincide is rejected, as are overlapping partitions /
   equivocations (global faults are kept one-at-a-time so every heal
   is unambiguous) and overlapping faults on the same directed link. *)
let admissible surface accepted cand =
  let same_link s d = function
    | Link_down l -> l.src = s && l.dst = d
    | Link_loss l -> l.src = s && l.dst = d
    | Link_dup l -> l.src = s && l.dst = d
    | _ -> false
  in
  let is_global = function
    | Partition _ | Equivocate _ -> true
    | _ -> false
  in
  match cand.action with
  | Crash v ->
      List.for_all
        (fun e ->
          match e.action with
          | Crash v2 -> (not (overlaps cand e)) || v2 <> v
          | _ -> true)
        accepted
      && within_cluster_budget ~n:surface.n ~f:surface.f
           (v
           :: List.filter_map
                (fun e ->
                  match e.action with
                  | Crash v2 when overlaps cand e -> Some v2
                  | _ -> None)
                accepted)
  | Partition _ | Equivocate _ ->
      List.for_all
        (fun e -> (not (is_global e.action)) || not (overlaps cand e))
        accepted
  | Link_down { src; dst } | Link_loss { src; dst; _ } | Link_dup { src; dst; _ }
    ->
      List.for_all
        (fun e -> (not (same_link src dst e.action)) || not (overlaps cand e))
        accepted

let plan ~rng ~surface (pc : plan_cfg) : timeline =
  let s = surface in
  let replicas = s.z * s.n in
  let crashables =
    Array.of_list
      (List.filter s.caps.crashable (List.init replicas (fun i -> i)))
  in
  let kinds =
    (if Array.length crashables > 0 && s.f > 0 then [ KCrash ] else [])
    @ (if s.caps.partitions && s.z >= 2 then [ KPartition ] else [])
    @ (if s.caps.link_down && replicas >= 2 then [ KLink_down ] else [])
    @ (if s.caps.link_loss && replicas >= 2 then [ KLink_loss ] else [])
    @ (if s.caps.link_dup && replicas >= 2 then [ KLink_dup ] else [])
    @ if s.caps.equivocation && s.z >= 2 then [ KEquivocate ] else []
  in
  let min_onset_ms = 500. in
  let latest_ms = Time.to_ms_f (Time.sub pc.horizon pc.tail) in
  if kinds = [] || latest_ms <= min_onset_ms then []
  else begin
    let kinds = Array.of_list kinds in
    let accepted = ref [] in
    let n_accepted = ref 0 in
    let attempts = pc.n_faults * 16 in
    for _ = 1 to attempts do
      if !n_accepted < pc.n_faults then begin
        let k = Rng.choose rng kinds in
        let dur_ms = Rng.float_range rng ~lo:800. ~hi:2500. in
        (* Always draw the onset so the RNG stream consumed per attempt
           is fixed-shape; clamp afterwards. *)
        let span = latest_ms -. min_onset_ms -. dur_ms in
        let at_ms = min_onset_ms +. (Rng.float rng *. Float.max span 0.) in
        let action =
          match k with
          | KCrash -> Crash (Rng.choose rng crashables)
          | KPartition ->
              let ca = Rng.int rng s.z in
              let cb = (ca + 1 + Rng.int rng (s.z - 1)) mod s.z in
              Partition (min ca cb, max ca cb)
          | KLink_down | KLink_loss | KLink_dup -> (
              let src = Rng.int rng replicas in
              let dst = (src + 1 + Rng.int rng (replicas - 1)) mod replicas in
              match k with
              | KLink_down -> Link_down { src; dst }
              | KLink_loss ->
                  Link_loss
                    { src; dst; p = Rng.float_range rng ~lo:0.05 ~hi:pc.max_loss }
              | _ ->
                  Link_dup { src; dst; p = Rng.float_range rng ~lo:0.1 ~hi:0.5 })
          | KEquivocate ->
              let cluster = Rng.int rng s.z in
              let skip = (cluster + 1 + Rng.int rng (s.z - 1)) mod s.z in
              Equivocate { cluster; skip = [ skip ] }
        in
        if span > 0. then begin
          let cand =
            {
              at = Time.of_ms_f at_ms;
              until = Time.of_ms_f (at_ms +. dur_ms);
              action;
            }
          in
          if admissible s !accepted cand then begin
            accepted := cand :: !accepted;
            incr n_accepted
          end
        end
      end
    done;
    List.sort
      (fun (a : event) (b : event) ->
        let c = Time.compare a.at b.at in
        if c <> 0 then c else compare a.action b.action)
      !accepted
  end

(* ------------------------------------------------------------------ *)
(* Installation                                                        *)
(* ------------------------------------------------------------------ *)

let apply s = function
  | Crash v -> s.crash v
  | Partition (a, b) -> s.partition ~ca:a ~cb:b
  | Link_down { src; dst } -> s.sever_link ~src ~dst
  | Link_loss { src; dst; p } -> s.set_link_loss ~src ~dst ~p
  | Link_dup { src; dst; p } -> s.set_link_dup ~src ~dst ~p
  | Equivocate { cluster; skip } -> s.equivocate ~cluster ~skip

let reverse s = function
  | Crash v -> s.recover v
  | Partition (a, b) -> s.heal ~ca:a ~cb:b
  | Link_down { src; dst } -> s.restore_link ~src ~dst
  | Link_loss { src; dst; _ } -> s.set_link_loss ~src ~dst ~p:0.
  | Link_dup { src; dst; _ } -> s.set_link_dup ~src ~dst ~p:0.
  | Equivocate { cluster; _ } -> s.stop_equivocate ~cluster

let install s tl =
  List.iter
    (fun (e : event) ->
      s.at e.at (fun () -> apply s e.action);
      s.at e.until (fun () -> reverse s e.action))
    tl

(* ------------------------------------------------------------------ *)
(* Invariant monitor                                                   *)
(* ------------------------------------------------------------------ *)

type violation = { at : Time.t; invariant : string; detail : string }

let violation_to_string v =
  Printf.sprintf "%s at t=%.1fms: %s" v.invariant (Time.to_ms_f v.at) v.detail

type monitor = {
  s : surface;
  timeline : timeline;
  sample : Time.t;
  liveness_window : Time.t;
  (* per replica: executed (cluster, batch id) pairs, grown incrementally *)
  executed : (int * int, unit) Hashtbl.t array;
  scanned : int array;     (* blocks of each ledger already scanned *)
  prev_len : int array;
  ever_crashed : bool array;  (* crash-targeted at any point in the timeline *)
  mutable prev_total : int;
  mutable last_progress : Time.t;
  mutable violation : violation option;
  mutable n_samples : int;
}

let is_net_fault = function
  | Partition _ | Link_down _ | Link_loss _ | Link_dup _ | Equivocate _ -> true
  | Crash _ -> false

let record m invariant detail =
  if m.violation = None then
    m.violation <- Some { at = m.s.now (); invariant; detail }

(* Scan newly executed blocks of every ledger: lengths must be
   monotone, and no (cluster, batch) may execute twice on one replica.
   No-op batches are excluded — distinct no-ops legitimately share the
   round-filler role. *)
let scan_ledgers m =
  let replicas = m.s.z * m.s.n in
  for r = 0 to replicas - 1 do
    let l = m.s.ledger r in
    let len = Ledger.length l in
    if len < m.prev_len.(r) then
      record m "monotone-execution"
        (Printf.sprintf "replica %d ledger shrank %d -> %d" r m.prev_len.(r) len);
    m.prev_len.(r) <- len;
    for h = m.scanned.(r) to len - 1 do
      let b = Ledger.get l h in
      let batch = b.Block.batch in
      if not (Batch.is_noop batch) then begin
        let key = (b.Block.cluster, batch.Batch.id) in
        if Hashtbl.mem m.executed.(r) key then
          record m "no-duplicate-execution"
            (Printf.sprintf "replica %d executed batch (cluster %d, id %d) twice"
               r b.Block.cluster batch.Batch.id)
        else Hashtbl.replace m.executed.(r) key ()
      end
    done;
    m.scanned.(r) <- len
  done

let check_agreement m =
  let replicas = m.s.z * m.s.n in
  match m.s.agreement with
  | Prefix ->
      (* Pairwise prefix compatibility across *all* replicas: a crashed
         or recovering replica holds a frozen prefix, which still
         satisfies the relation — divergence anywhere is a bug. *)
      let quit = ref false in
      for i = 0 to replicas - 1 do
        for j = i + 1 to replicas - 1 do
          if not !quit then begin
            let a = m.s.ledger i and b = m.s.ledger j in
            if
              not (Ledger.is_prefix_of a b || Ledger.is_prefix_of b a)
            then begin
              record m "ledger-prefix-agreement"
                (Printf.sprintf
                   "replicas %d and %d diverge (lengths %d vs %d, common prefix \
                    %d)"
                   i j (Ledger.length a) (Ledger.length b)
                   (Ledger.common_prefix a b));
              quit := true
            end
          end
        done
      done
  | Eventual_set slack ->
      (* Replicas run interleaved per-instance logs; compare executed
         batch-id sets with bounded in-flight slack.  Crash-targeted
         replicas are excluded: a recovered replica legitimately has
         holes it never fills (no state transfer for this mode). *)
      let quit = ref false in
      for i = 0 to replicas - 1 do
        for j = i + 1 to replicas - 1 do
          if (not !quit) && (not m.ever_crashed.(i)) && not m.ever_crashed.(j)
          then begin
            let diff = ref 0 in
            Hashtbl.iter
              (fun k () -> if not (Hashtbl.mem m.executed.(j) k) then incr diff)
              m.executed.(i);
            Hashtbl.iter
              (fun k () -> if not (Hashtbl.mem m.executed.(i) k) then incr diff)
              m.executed.(j);
            if !diff > slack then begin
              record m "executed-set-agreement"
                (Printf.sprintf
                   "replicas %d and %d differ on %d executed batches (slack %d)"
                   i j !diff slack);
              quit := true
            end
          end
        done
      done

let check_liveness m =
  let now = m.s.now () in
  let total =
    let t = ref 0 in
    for r = 0 to (m.s.z * m.s.n) - 1 do
      t := !t + Ledger.length (m.s.ledger r)
    done;
    !t
  in
  if total > m.prev_total then begin
    m.prev_total <- total;
    m.last_progress <- now
  end;
  (* The liveness clock pauses while a *network* fault is active (the
     model permits stalling through a partition: safety over
     liveness), but deliberately keeps ticking through crash windows —
     BFT must stay live under <= f crash faults, and an over-budget
     crash set is exactly what this invariant is meant to catch. *)
  let net_active =
    List.exists
      (fun e ->
        is_net_fault e.action && Time.(e.at <= now) && Time.(now < e.until))
      m.timeline
  in
  if not net_active then begin
    let last_net_end =
      List.fold_left
        (fun acc e ->
          if is_net_fault e.action && Time.(e.until <= now) then
            Time.max acc e.until
          else acc)
        Time.zero m.timeline
    in
    let quiet_from = Time.max m.last_progress last_net_end in
    if Time.(Time.sub now quiet_from > m.liveness_window) then
      record m "liveness-after-heal"
        (Printf.sprintf
           "no replica executed anything for %.0fms with no network fault \
            active (window %.0fms)"
           (Time.to_ms_f (Time.sub now quiet_from))
           (Time.to_ms_f m.liveness_window))
  end

let sweep m =
  if m.violation = None then begin
    m.n_samples <- m.n_samples + 1;
    scan_ledgers m;
    check_agreement m;
    check_liveness m
  end

let monitor ?(sample_ms = 250.) ?(liveness_window_ms = 5000.) s timeline =
  let replicas = s.z * s.n in
  let ever_crashed = Array.make replicas false in
  List.iter
    (fun e ->
      match e.action with Crash v -> ever_crashed.(v) <- true | _ -> ())
    timeline;
  let m =
    {
      s;
      timeline;
      sample = Time.of_ms_f sample_ms;
      liveness_window = Time.of_ms_f liveness_window_ms;
      executed = Array.init replicas (fun _ -> Hashtbl.create 64);
      scanned = Array.make replicas 0;
      prev_len = Array.make replicas 0;
      ever_crashed;
      prev_total = 0;
      last_progress = s.now ();
      violation = None;
      n_samples = 0;
    }
  in
  let rec rearm () =
    s.at
      (Time.add (s.now ()) m.sample)
      (fun () ->
        sweep m;
        if m.violation = None then rearm ())
  in
  rearm ();
  m

let check_now m = sweep m
let first_violation m = m.violation
let samples m = m.n_samples

exception Violation of string

let fail ~protocol ~seed ~timeline ~violation =
  raise
    (Violation
       (Printf.sprintf
          "chaos: safety invariant violated under %s (seed %d)\n\
          \  first violation: %s\n\
          \  fault timeline (reproduce with --fault chaos:%d):\n\
           %s"
          protocol seed
          (violation_to_string violation)
          seed (describe timeline)))
