(** Chaos fault injection with continuous safety-invariant checking.

    The paper's resilience claims (§4.3, Figure 7) say the fabric
    keeps its safety guarantees under crashes, partitions and
    Byzantine primaries as long as each cluster stays within its [f]
    tolerance.  This subsystem turns that claim into an executable
    property:

    + a library of composable, {e reversible} fault actions over the
      deployment surface (crash/recover, partition/heal, link flap,
      probabilistic loss, duplication, GeoBFT sharing equivocation);
    + a deterministic seeded scheduler that samples a fault timeline
      (kind, victim, onset, duration) under a budget keeping every
      cluster within [f] concurrent crashes — so safety {e must} hold
      and any violation is a bug;
    + an invariant monitor that checks, continuously on a sampling
      timer rather than only at run end: ledger prefix agreement (or
      per-instance set agreement for protocols with interleaved
      instance logs), monotone execution, no duplicate transaction
      execution, and liveness (progress resumes within a bounded
      window; the clock pauses while a network fault is active, but
      {e not} during in-budget crashes — BFT must stay live under
      [<= f] crash faults).

    Same seed ⇒ identical fault timeline, event for event. *)

module Time = Rdb_sim.Time
module Rng = Rdb_prng.Rng
module Ledger = Rdb_ledger.Ledger

(** {1 Fault actions} *)

type action =
  | Crash of int  (** crash-stop a replica (reverse: recover) *)
  | Partition of int * int
      (** sever all traffic between two clusters (reverse: heal) *)
  | Link_down of { src : int; dst : int }
      (** flap one directed link (reverse: restore) *)
  | Link_loss of { src : int; dst : int; p : float }
      (** drop each message on the link with probability [p] *)
  | Link_dup of { src : int; dst : int; p : float }
      (** duplicate each message on the link with probability [p] *)
  | Equivocate of { cluster : int; skip : int list }
      (** the cluster's primary stops sharing certified rounds with
          the clusters in [skip] — Byzantine equivocation by omission
          at GeoBFT's global-sharing step (Example 2.4 case 1) *)

type event = { at : Time.t; until : Time.t; action : action }
(** One reversible fault window: [action] applies at [at] and its
    inverse runs at [until]. *)

type timeline = event list

val action_to_string : action -> string

val describe : timeline -> string
(** Human-readable timeline, one fault window per line — printed on
    violation so any run reproduces from its seed. *)

(** {1 The deployment surface} *)

(** What a protocol can absorb: the scheduler only samples fault kinds
    a protocol is expected to survive (e.g. Zyzzyva has no view change,
    so its primary is not crashable; Steward's site representatives are
    single points of coordination).  Link faults are split by kind
    because they stress different machinery: flaps and loss require a
    retransmission/view-change path to heal, duplication only requires
    idempotent message handling. *)
type caps = {
  crashable : int -> bool;  (** may this replica be crash-targeted? *)
  partitions : bool;        (** cluster partitions heal cleanly *)
  link_down : bool;         (** severed-link windows recover *)
  link_loss : bool;         (** probabilistic loss recovers *)
  link_dup : bool;          (** duplication is handled idempotently *)
  equivocation : bool;      (** sharing-step equivocation (GeoBFT) *)
}

(** How cross-replica agreement is checked: [Prefix] for protocols
    with one totally-ordered log; [Eventual_set slack] for protocols
    whose replicas interleave independent instance logs (HotStuff),
    where executed batch-id sets must agree up to [slack] in-flight
    decisions. *)
type agreement_mode = Prefix | Eventual_set of int

(** First-class capability surface over one deployment, so this
    library depends on no protocol and no functor: the experiment
    runner wires a record per deployment. *)
type surface = {
  z : int;
  n : int;
  f : int;  (** per-cluster crash budget *)
  caps : caps;
  agreement : agreement_mode;
  crash : int -> unit;
  recover : int -> unit;
  partition : ca:int -> cb:int -> unit;
  heal : ca:int -> cb:int -> unit;
  sever_link : src:int -> dst:int -> unit;
  restore_link : src:int -> dst:int -> unit;
  set_link_loss : src:int -> dst:int -> p:float -> unit;
  set_link_dup : src:int -> dst:int -> p:float -> unit;
  equivocate : cluster:int -> skip:int list -> unit;
      (** Equivocation-by-omission: the cluster withholds its certified
          shares from the [skip] clusters for the window.  Implemented
          generically through the adversary subsystem's silence
          primitive (lib/adversary); [caps.equivocation] gates whether
          the planner draws it. *)
  stop_equivocate : cluster:int -> unit;
  ledger : int -> Ledger.t;  (** per-replica, indices [0 .. z*n-1] *)
  now : unit -> Time.t;
  at : Time.t -> (unit -> unit) -> unit;  (** schedule in the engine *)
}

(** {1 Seeded scheduling} *)

type plan_cfg = {
  horizon : Time.t;  (** end of the run (warmup + measure) *)
  tail : Time.t;     (** fault-free recovery tail before [horizon] *)
  n_faults : int;    (** fault windows to attempt *)
  max_loss : float;  (** cap on sampled loss probability *)
}

val default_plan : horizon:Time.t -> tail:Time.t -> plan_cfg

val within_cluster_budget : n:int -> f:int -> int list -> bool
(** The shared f-per-cluster corruption budget: true iff at most [f]
    of any one cluster's [n] members appear in the list.  Used by the
    planner for concurrent crash windows and by the Byzantine-strategy
    subsystem (lib/adversary) for its corrupted-replica envelope. *)

val plan : rng:Rng.t -> surface:surface -> plan_cfg -> timeline
(** Sample a fault timeline.  Every window clears before
    [horizon - tail]; concurrent crashes per cluster never exceed
    [surface.f]; only capability-allowed kinds are drawn.  The result
    is a pure function of the RNG state and the surface shape. *)

val install : surface -> timeline -> unit
(** Schedule every fault's apply at [at] and inverse at [until]. *)

(** {1 The invariant monitor} *)

type violation = { at : Time.t; invariant : string; detail : string }

val violation_to_string : violation -> string

type monitor

val monitor :
  ?sample_ms:float ->
  ?liveness_window_ms:float ->
  surface ->
  timeline ->
  monitor
(** Install a self-rearming invariant check every [sample_ms]
    (default 250 ms).  [liveness_window_ms] (default 5000) bounds how
    long global execution may stall while no network fault is active.
    Only the first violation is retained; sampling stops after it. *)

val check_now : monitor -> unit
(** Run one extra check immediately (e.g. at end of run). *)

val first_violation : monitor -> violation option

val samples : monitor -> int
(** Invariant sweeps performed so far (diagnostics). *)

exception Violation of string
(** Raised by callers (the experiment runner) when a chaos run ends
    with a recorded violation; the payload carries the seed, the full
    fault timeline and the first violated invariant. *)

val fail :
  protocol:string -> seed:int -> timeline:timeline -> violation:violation -> 'a
(** Compose the loud failure message and raise {!Violation}. *)
