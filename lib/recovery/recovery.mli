(** Shared recovery machinery (DESIGN.md §8): counters, exponential
    backoff with jitter, gap detection, and a generic stall-watch task.

    Three mechanisms build on this:
    - checkpoint-certificate state transfer (PBFT crash-rejoin),
    - hole-filling catch-up over the executed sequence space
      (HotStuff, GeoBFT),
    - timeout-retransmission for Steward's representative channel.

    Determinism discipline: a task draws jitter from the node's own RNG
    stream only when it actually fires a stalled retransmission, and
    protocols arm tasks only when they detect lag or recover from a
    crash — a fault-free run never touches the RNG and is bit-for-bit
    identical to one without this library. *)

module Time = Rdb_sim.Time
module Rng = Rdb_prng.Rng
module Protocol = Rdb_types.Protocol

(** Per-replica recovery counters, surfaced through
    {!Protocol.recovery_stats} into reports. *)
module Stats : sig
  type t = {
    mutable state_transfers : int;  (** checkpoint snapshots installed *)
    mutable holes_filled : int;  (** missing batches fetched + applied *)
    mutable retransmissions : int;  (** timeout-driven resends *)
  }

  val create : unit -> t
  val note_state_transfer : t -> unit

  val note_holes : t -> int -> unit
  (** [note_holes t n] records [n] batches fetched and applied. *)

  val note_retransmit : t -> unit
  val to_protocol : t -> Protocol.recovery_stats
end

module Backoff : sig
  val delay : ?jitter:float -> ?rng:Rng.t -> base:Time.t -> cap:Time.t -> int -> Time.t
  (** [delay ~base ~cap attempt] is [min cap (base * 2^attempt)]
      (attempt clamped to 16), optionally stretched by up to [jitter]
      (a fraction, default 0) drawn from [rng].  The RNG is consulted
      only when [jitter > 0] and [rng] is given — i.e. only on an
      actual stalled retransmission. *)
end

module Gaps : sig
  val missing : ?limit:int -> have:(int -> bool) -> from:int -> upto:int -> unit -> int list
  (** Sequence numbers in [[from, upto]] for which [have] is false —
      the holes a catch-up task must fill, in increasing order.
      [limit] bounds how many are returned per call so one fetch stays
      a small message. *)
end

(** A self-rearming timer that watches a progress token and fires a
    recovery action only while progress is stalled:

    - [needed ()] false: the task retires (caught up / nothing to do);
    - progress token changed since the last tick: reset the backoff and
      keep watching without firing (the protocol is healing on its own;
      don't inject extra traffic);
    - token unchanged: [fire ~attempt], then re-arm with exponential
      backoff + jitter.

    Timers die silently while a node is crashed (the fabric drops the
    callback), so a pending tick can be lost: {!start} bumps a
    generation counter, orphaning any zombie tick, and arms a fresh
    timer.  Protocols call {!ensure} whenever they notice lag and
    {!start} from their [on_recover] hook. *)
module Task : sig
  type t

  val create :
    set_timer:(delay:Time.t -> (unit -> unit) -> unit) ->
    rng:Rng.t ->
    ?base:Time.t ->
    ?cap:Time.t ->
    ?jitter:float ->
    needed:(unit -> bool) ->
    progress:(unit -> int) ->
    fire:(attempt:int -> unit) ->
    unit ->
    t
  (** Defaults: [base] 200 ms, [cap] 3200 ms, [jitter] 0.25. *)

  val start : t -> unit
  (** (Re)start from scratch — orphans any pending tick. *)

  val ensure : t -> unit
  (** Arm only if not already watching. *)

  val stop : t -> unit
end
