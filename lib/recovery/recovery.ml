(* Shared recovery machinery: counters, exponential backoff with
   jitter, and a generic stall-watch task.

   Three mechanisms build on this (ISSUE 2 / DESIGN.md §8):
   - checkpoint-certificate state transfer (PBFT crash-rejoin),
   - hole-filling catch-up over the executed sequence space
     (HotStuff, GeoBFT),
   - timeout-retransmission for Steward's representative channel.

   Determinism discipline: a task draws jitter from the node's own RNG
   stream only when it actually fires a stalled retransmission, and
   protocols arm tasks only when they detect lag or recover from a
   crash — a fault-free run never touches the RNG and is bit-for-bit
   identical to one without this library. *)

module Time = Rdb_sim.Time
module Rng = Rdb_prng.Rng
module Protocol = Rdb_types.Protocol

(* ------------------------------------------------------------------ *)
(* Counters *)

module Stats = struct
  type t = {
    mutable state_transfers : int;   (* checkpoint snapshots installed *)
    mutable holes_filled : int;      (* missing batches fetched + applied *)
    mutable retransmissions : int;   (* timeout-driven resends *)
  }

  let create () = { state_transfers = 0; holes_filled = 0; retransmissions = 0 }
  let note_state_transfer t = t.state_transfers <- t.state_transfers + 1
  let note_holes t n = t.holes_filled <- t.holes_filled + n
  let note_retransmit t = t.retransmissions <- t.retransmissions + 1

  let to_protocol t : Protocol.recovery_stats =
    {
      Protocol.state_transfers = t.state_transfers;
      holes_filled = t.holes_filled;
      retransmissions = t.retransmissions;
    }
end

(* ------------------------------------------------------------------ *)
(* Exponential backoff *)

module Backoff = struct
  (* delay(attempt) = min cap (base * 2^attempt), optionally stretched
     by up to [jitter] (a fraction) drawn from [rng].  The draw happens
     only when the caller asks for a delay, i.e. only on an actual
     stalled retransmission. *)
  let delay ?(jitter = 0.) ?rng ~base ~cap attempt =
    let attempt = min attempt 16 in
    let d = Time.to_ms_f base *. Float.of_int (1 lsl attempt) in
    let d = Float.min d (Time.to_ms_f cap) in
    let d =
      match rng with
      | Some rng when jitter > 0. -> d *. (1. +. (jitter *. Rng.float rng))
      | _ -> d
    in
    Time.of_ms_f d
end

(* ------------------------------------------------------------------ *)
(* Gap detection *)

module Gaps = struct
  (* Sequence numbers in [from, upto] for which [have] is false —
     the holes a catch-up task must fill.  [limit] bounds how many are
     returned per fetch round so one request stays a small message. *)
  let missing ?(limit = max_int) ~have ~from ~upto () =
    let rec go acc k taken =
      if k > upto || taken >= limit then List.rev acc
      else if have k then go acc (k + 1) taken
      else go (k :: acc) (k + 1) (taken + 1)
    in
    go [] from 0
end

(* ------------------------------------------------------------------ *)
(* Stall-watch task *)

module Task = struct
  (* A self-rearming timer that watches a progress token and fires a
     recovery action only while progress is stalled:

     - [needed ()] false  -> the task retires (caught up / nothing to do);
     - progress token changed since the last tick -> reset the backoff
       and keep watching without firing (the protocol is healing on its
       own; don't inject extra traffic);
     - token unchanged -> [fire ~attempt], then re-arm with exponential
       backoff + jitter.

     Timers die silently while a node is crashed (the fabric drops the
     callback), so a pending tick can be lost: [start] bumps a
     generation counter, orphaning any zombie tick, and arms a fresh
     timer.  Protocols call [ensure] whenever they notice lag and
     [start] from their [on_recover] hook. *)

  type t = {
    set_timer : delay:Time.t -> (unit -> unit) -> unit;
    rng : Rng.t;
    base : Time.t;
    cap : Time.t;
    jitter : float;
    needed : unit -> bool;
    progress : unit -> int;
    fire : attempt:int -> unit;
    mutable generation : int;
    mutable running : bool;
    mutable last_token : int;
    mutable attempt : int;
  }

  let create ~set_timer ~rng ?(base = Time.ms 200) ?(cap = Time.ms 3200)
      ?(jitter = 0.25) ~needed ~progress ~fire () =
    {
      set_timer; rng; base; cap; jitter; needed; progress; fire;
      generation = 0; running = false; last_token = min_int; attempt = 0;
    }

  let rec arm t ~gen ~delay =
    t.set_timer ~delay (fun () -> tick t ~gen)

  and tick t ~gen =
    if gen = t.generation then begin
      if not (t.needed ()) then t.running <- false
      else begin
        let token = t.progress () in
        if token <> t.last_token then begin
          (* Progress on its own: reset backoff, watch quietly. *)
          t.last_token <- token;
          t.attempt <- 0;
          arm t ~gen ~delay:t.base
        end
        else begin
          let attempt = t.attempt in
          t.attempt <- attempt + 1;
          t.fire ~attempt;
          let delay =
            Backoff.delay ~jitter:t.jitter ~rng:t.rng ~base:t.base ~cap:t.cap
              t.attempt
          in
          arm t ~gen ~delay
        end
      end
    end

  (* (Re)start the task from scratch — orphans any pending tick. *)
  let start t =
    t.generation <- t.generation + 1;
    t.running <- true;
    t.last_token <- t.progress ();
    t.attempt <- 0;
    arm t ~gen:t.generation ~delay:t.base

  (* Arm only if not already watching. *)
  let ensure t = if not t.running then start t

  let stop t =
    t.generation <- t.generation + 1;
    t.running <- false
end
