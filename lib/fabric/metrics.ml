(* Run metrics: completed work, latencies, traffic.

   Measurement methodology mirrors §4 of the paper: the run has a
   warm-up phase and a measurement window; throughput counts the
   transactions whose batches *completed at a client* inside the
   window, and latency is the client-observed request-to-f+1-replies
   time of those batches.

   Sharded runs (DESIGN.md §15): one accumulator per engine shard,
   routed by the [shard_of_now] callback — each is touched only by its
   own shard's executing domain, so recording needs no locks.  Totals
   merge in shard order; latency percentiles sort the merged sample, so
   every derived number is independent of the domain count.  Window
   state is global: it only changes at epoch barriers. *)

module Time = Rdb_sim.Time

type sub = {
  mutable completed_batches : int;
  mutable completed_txns : int;
  mutable latencies_ms : float list;      (* within the window only *)
  mutable decisions : int;                (* consensus decisions (executions at replica 0) *)
  (* Per-op-class completion counts and the read-path latency split:
     read-only batches (reads and scans, including those served by the
     consensus bypass) have a very different latency profile from
     write batches, so their percentiles are reported separately. *)
  mutable read_txns : int;
  mutable scan_txns : int;
  mutable write_txns : int;
  mutable read_latencies_ms : float list;
}

type t = {
  mutable subs : sub array;
  mutable shard_of_now : unit -> int;
  mutable window_open : bool;
  mutable window_start : Time.t;
  mutable window_end : Time.t;
}

let mk_sub () =
  {
    completed_batches = 0;
    completed_txns = 0;
    latencies_ms = [];
    decisions = 0;
    read_txns = 0;
    scan_txns = 0;
    write_txns = 0;
    read_latencies_ms = [];
  }

let create () =
  {
    subs = [| mk_sub () |];
    shard_of_now = (fun () -> 0);
    window_open = false;
    window_start = Time.zero;
    window_end = Time.zero;
  }

let set_shards t ~n ~shard_of_now =
  if n < 1 then invalid_arg "Metrics.set_shards: n must be >= 1";
  t.subs <- Array.init n (fun _ -> mk_sub ());
  t.shard_of_now <- shard_of_now

let open_window t ~now = t.window_open <- true; t.window_start <- now
let close_window t ~now = t.window_open <- false; t.window_end <- now

let record_completion t ~now:_ ~txns ?(reads = 0) ?(scans = 0) ?(writes = 0) ~latency () =
  if t.window_open then begin
    let s = t.subs.(t.shard_of_now ()) in
    s.completed_batches <- s.completed_batches + 1;
    s.completed_txns <- s.completed_txns + txns;
    let ms = Time.to_ms_f latency in
    s.latencies_ms <- ms :: s.latencies_ms;
    s.read_txns <- s.read_txns + reads;
    s.scan_txns <- s.scan_txns + scans;
    s.write_txns <- s.write_txns + writes;
    if writes = 0 && reads + scans > 0 then
      s.read_latencies_ms <- ms :: s.read_latencies_ms
  end

let record_decision t =
  if t.window_open then begin
    let s = t.subs.(t.shard_of_now ()) in
    s.decisions <- s.decisions + 1
  end

let sum t f = Array.fold_left (fun acc s -> acc + f s) 0 t.subs

let completed_batches t = sum t (fun s -> s.completed_batches)
let completed_txns t = sum t (fun s -> s.completed_txns)
let decisions t = sum t (fun s -> s.decisions)
let read_txns t = sum t (fun s -> s.read_txns)
let scan_txns t = sum t (fun s -> s.scan_txns)
let write_txns t = sum t (fun s -> s.write_txns)

let window_sec t = Time.to_sec_f (Time.sub t.window_end t.window_start)

let throughput_txn_s t =
  let w = window_sec t in
  if w <= 0. then 0. else float_of_int (completed_txns t) /. w

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

type latency_summary = { avg_ms : float; p50_ms : float; p95_ms : float; p99_ms : float; max_ms : float }

let summarize arr =
  Array.sort compare arr;
  let n = Array.length arr in
  if n = 0 then { avg_ms = 0.; p50_ms = 0.; p95_ms = 0.; p99_ms = 0.; max_ms = 0. }
  else
    {
      avg_ms = Array.fold_left ( +. ) 0. arr /. float_of_int n;
      p50_ms = percentile arr 0.50;
      p95_ms = percentile arr 0.95;
      p99_ms = percentile arr 0.99;
      max_ms = arr.(n - 1);
    }

let latency_summary t =
  summarize
    (Array.concat (Array.to_list (Array.map (fun s -> Array.of_list s.latencies_ms) t.subs)))

(* Latencies of read-only batches alone (point-read and scan batches). *)
let read_latency_summary t =
  summarize
    (Array.concat
       (Array.to_list (Array.map (fun s -> Array.of_list s.read_latencies_ms) t.subs)))
