(** The ResilientDB fabric: wires a consensus protocol into a simulated
    geo-scale deployment (paper §3).

    [Make (P)] builds, for a {!Rdb_types.Config.t} (z clusters × n
    replicas, one client group per cluster): the Table-1-calibrated
    WAN, the per-node CPU pipeline (Figure 9's threads), keys for all
    nodes, a ledger and an App state machine per replica (over the
    configured storage backend — in-memory or the persistent block
    store), protocol replicas and client agents, and closed-loop YCSB
    client drivers.  Construction internals (node contexts, driver
    refill, packet delivery) are private to the implementation. *)

module Time = Rdb_sim.Time
module Engine = Rdb_sim.Engine
module Network = Rdb_sim.Network
module Keychain = Rdb_crypto.Keychain
module Config = Rdb_types.Config
module Ledger = Rdb_ledger.Ledger
module Table = Rdb_ycsb.Table

(** What travels on the simulated wire: the protocol payload plus the
    receiver-side verification cost declared by the sender.
    Interposers and delivery hooks observe (and may rewrite) payloads;
    size and vcost stay with the packet. *)
type 'm packet = { payload : 'm; vcost : Time.t }

module Make (P : Rdb_types.Protocol.S) : sig
  type msg = P.msg
  type t

  val create :
    ?trace:bool ->
    ?tracer:Rdb_trace.Trace.t ->
    ?n_records:int ->
    ?retain_payloads:bool ->
    ?sharded:bool ->
    ?store_dir:string ->
    Config.t ->
    t
  (** Build a deployment.  [n_records] sizes the replicated store
      (default 600k, as in §4).  [retain_payloads:false] drops batch
      payloads from ledger blocks (long sweeps); recovery then carries
      App state snapshots instead of replaying payloads.  [sharded]
      enables the per-cluster engine sharding (results are identical
      either way).  [store_dir] roots the persistent backend's
      per-replica directories when the config selects [Disk] storage
      (default: a fresh temp directory per deployment). *)

  val run : ?warmup:Time.t -> ?measure:Time.t -> ?jobs:int -> t -> Report.t
  (** Drive clients, warm up, measure, and report (§4 methodology). *)

  val close : t -> unit
  (** Release storage-backend resources (open block-log channels of
      [Disk] deployments).  Idempotent; a no-op for [Memory]. *)

  (** {1 Accessors} *)

  val cfg : t -> Config.t
  val engine : t -> Engine.t
  val network : t -> P.msg packet Network.t
  val metrics : t -> Metrics.t
  val keychain : t -> Keychain.t
  val ledger : t -> replica:int -> Ledger.t

  val table : t -> replica:int -> Table.t
  (** Zero-copy read view over [replica]'s live store (digests,
      fingerprints); do not write through it. *)

  val app : t -> replica:int -> Rdb_types.App.t
  (** [replica]'s App state machine (the execution seam the protocols
      drive via their [Ctx.t]). *)

  val replica : t -> int -> P.replica
  val client : t -> cluster:int -> P.client

  (** {1 Clients} *)

  val start_clients : t -> unit
  (** Begin closed-loop submission on every cluster's client group
      ([run] does this itself). *)

  val pause_client : t -> cluster:int -> unit
  (** Stop one cluster's client group from submitting new batches
      (in-flight batches complete normally) — exercises GeoBFT's no-op
      rounds (§2.5). *)

  (** {1 Fault injection} (§4.3 experiments, chaos harness) *)

  val crash_replica : t -> int -> unit
  val recover_replica : t -> int -> unit
  val is_crashed : t -> int -> bool
  val crash_primary : t -> cluster:int -> unit
  val crash_f_per_cluster : t -> unit

  val uncrash_replica_no_recovery : t -> int -> unit
  (** Test hook: rejoin without the protocol's recovery machinery. *)

  val disable_all_recovery : t -> unit
  (** Test hook: the fully recovery-less build. *)

  val add_drop_rule : t -> (src:int -> dst:int -> bool) -> unit
  val clear_drop_rules : t -> unit
  val partition_clusters : t -> ca:int -> cb:int -> unit
  val heal_clusters : t -> ca:int -> cb:int -> unit
  val sever_link : t -> src:int -> dst:int -> unit
  val restore_link : t -> src:int -> dst:int -> unit
  val set_link_loss : t -> src:int -> dst:int -> p:float -> unit
  val set_link_dup : t -> src:int -> dst:int -> p:float -> unit

  val at : t -> time:Time.t -> (unit -> unit) -> unit
  (** Schedule a control action at an absolute simulated time (runs at
      an epoch barrier, before same-time ordinary events). *)

  (** {1 Adversarial interposition and observation} *)

  val adversary_view : P.msg Rdb_types.Interpose.view
  val set_interposer : t -> P.msg Rdb_types.Interpose.t option -> unit
  val set_delivery_hook : t -> Rdb_sim.Network.delivery_hook option -> unit

  (** {1 Counters} *)

  val view_changes : t -> int
  val recovery_totals : t -> Rdb_types.Protocol.recovery_stats
end
