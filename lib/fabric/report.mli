(** The result of one simulated deployment run: throughput, latency
    percentiles, traffic split (local/global), consensus decisions and
    view changes within the measurement window. *)

type t = {
  protocol : string;
  z : int;
  n : int;
  batch_size : int;
  throughput_txn_s : float;
  avg_latency_ms : float;
  p50_latency_ms : float;
  p95_latency_ms : float;
  p99_latency_ms : float;
  completed_batches : int;
  completed_txns : int;
  decisions : int;
  local_msgs : int;
  global_msgs : int;
  local_mb : float;
  global_mb : float;
  view_changes : int;
  state_transfers : int;   (** checkpoint state transfers installed *)
  holes_filled : int;      (** execution holes filled by catch-up *)
  retransmissions : int;   (** timeout-driven protocol retransmissions *)
  storage : string;        (** backend under the App ("mem" / "disk") *)
  read_txns : int;         (** completed transactions by op class *)
  scan_txns : int;
  write_txns : int;
  read_p50_latency_ms : float;
      (** latency percentiles over read-only batches alone (0 when the
          workload had none) *)
  read_p95_latency_ms : float;
  read_p99_latency_ms : float;
  window_sec : float;
  trace : Rdb_trace.Trace.summary option;
      (** whole-run trace summary (phase breakdown, traced message
          counts, deterministic digest); [None] when tracing was off *)
}

val local_msgs_per_decision : t -> float
(** The Table 2 quantities: messages per consensus decision. *)

val global_msgs_per_decision : t -> float

val pp : Format.formatter -> t -> unit

val pp_recovery : Format.formatter -> t -> unit
(** One-line summary of the recovery-subsystem counters. *)

val pp_trace : Format.formatter -> t -> unit
(** Per-phase latency breakdown + per-decision traced message counts;
    prints nothing when the run was not traced. *)

val to_string : t -> string

(** {1 Versioned JSON wire format}

    [to_json]/[of_json] are exact inverses: every field (including the
    optional trace summary) survives the round-trip, floats included
    (shortest-round-trip decimal encoding).  The [schema_version]
    field is embedded in every document; [of_json] accepts documents
    up to the current version and refuses newer ones. *)

val schema_version : int

val to_json : t -> Json.t
val to_json_string : t -> string
(** Compact single-line rendering of {!to_json}. *)

val of_json : Json.t -> (t, string) result
val of_json_string : string -> (t, string) result
