(* The ResilientDB fabric: wires a consensus protocol into a simulated
   geo-scale deployment (paper §3).

   For a configuration (z clusters × n replicas, one client group per
   cluster) the deployment builds:
   - the Table-1-calibrated WAN ([Rdb_sim.Topology.clustered]);
   - the per-node CPU pipeline ([Rdb_sim.Cpu], Figure 9's threads);
   - keys for all nodes ([Rdb_crypto.Keychain]);
   - a ledger and a YCSB table per replica;
   - protocol replicas and client agents, each handed a [Ctx.t];
   - closed-loop YCSB client drivers per cluster, keeping
     [client_inflight] batches outstanding (modeling the paper's 160 k
     saturating clients);
   - metrics with warm-up / measurement windows (§4's methodology).

   Failure injection for the §4.3 experiments: crash any replica (or a
   cluster's current primary), add message-drop rules, partition
   regions, all scheduled at simulated times. *)

module Time = Rdb_sim.Time
module Engine = Rdb_sim.Engine
module Network = Rdb_sim.Network
module Topology = Rdb_sim.Topology
module Cpu = Rdb_sim.Cpu
module Stats = Rdb_sim.Stats
module Keychain = Rdb_crypto.Keychain
module Config = Rdb_types.Config
module Ctx = Rdb_types.Ctx
module Batch = Rdb_types.Batch
module Txn = Rdb_types.Txn
module Protocol = Rdb_types.Protocol
module Wire = Rdb_types.Wire
module Ledger = Rdb_ledger.Ledger
module Table = Rdb_ycsb.Table
module Workload = Rdb_ycsb.Workload
module App = Rdb_types.App
module Kv = Rdb_storage.Kv
module Backend = Rdb_storage.Backend

(* What travels on the simulated wire: the protocol payload plus the
   receiver-side verification cost declared by the sender. *)
type 'm packet = { payload : 'm; vcost : Time.t }

module Make (P : Protocol.S) = struct
  type msg = P.msg
  type node_kind = Replica of P.replica | Client of P.client

  type client_driver = {
    cluster : int;
    workload : Workload.t;
    mutable outstanding : int;
    mutable next_id : int;
    mutable agent : P.client option;
  }

  type t = {
    cfg : Config.t;
    engine : Engine.t;
    topo : Topology.t;
    net : P.msg packet Network.t;
    cpu : Cpu.t;
    keychain : Keychain.t;
    metrics : Metrics.t;
    ledgers : Ledger.t array;            (* per replica *)
    apps : Kv.t array;                   (* App state machine per replica *)
    tables : Table.t array;              (* zero-copy views over the apps' records *)
    mutable nodes : node_kind array;
    drivers : client_driver array;
    mutable crashed : bool array;
    mutable stats_before : Stats.snapshot option;
    (* Engine shard owning each node: cluster c (replicas and its
       co-located client group) = shard c on a sharded engine,
       everything on shard 0 otherwise. *)
    shard_of : int -> int;
    (* An installed adversary interposer keeps unsynchronized state;
       [run] forces sequential execution while one is active. *)
    mutable interposed : bool;
    trace_enabled : bool;
    (* Structured consensus-path tracer (Rdb_trace); None = off, and
       every probe degrades to a no-op closure or a single match. *)
    tracer : Rdb_trace.Trace.t option;
    (* When false, ledgers keep block headers/digests but drop txn
       payloads — the memory-friendly mode for long benchmark sweeps
       (a 60-replica run otherwise retains every batch 60 times). *)
    retain_payloads : bool;
  }

  let cfg t = t.cfg
  let engine t = t.engine
  let network t = t.net
  let metrics t = t.metrics
  let ledger t ~replica = t.ledgers.(replica)
  let table t ~replica = t.tables.(replica)
  let app t ~replica = Kv.app t.apps.(replica)
  let keychain t = t.keychain
  let set_delivery_hook t h = Network.set_delivery_hook t.net h

  (* Release backend resources (the persistent backend holds an open
     log channel per replica).  Idempotent; a no-op for Memory. *)
  let close t = Array.iter Kv.close t.apps

  (* Adversarial interposition: adapt the protocol-payload hooks of
     lib/adversary to the packet-level hooks of the network.  Forged or
     delayed emissions keep the original packet's size and vcost — the
     adversary rewrites content and timing, not link economics. *)
  let adversary_view : P.msg Rdb_types.Interpose.view = P.adversary

  let set_interposer t (ip : P.msg Rdb_types.Interpose.t option) =
    t.interposed <- Option.is_some ip;
    (* Installed mid-run (a chaos equivocation window opening at a
       control barrier): drop to one domain from the next epoch on.
       Worker count never affects results, so this is invisible. *)
    if t.interposed then Engine.set_jobs t.engine 1;
    match ip with
    | None -> Network.set_interposer t.net None
    | Some ip ->
        let on_send ~src ~dst (pkt : P.msg packet) =
          List.map
            (fun (e : P.msg Rdb_types.Interpose.emission) ->
              ({ pkt with payload = e.emit }, e.after))
            (ip.obtrude ~src ~dst pkt.payload)
        in
        let on_recv ~src ~dst (pkt : P.msg packet) =
          ip.admit ~src ~dst pkt.payload
        in
        Network.set_interposer t.net (Some { Network.on_send; on_recv })

  let replica t i =
    match t.nodes.(i) with Replica r -> r | Client _ -> invalid_arg "Deployment.replica"

  let client t ~cluster =
    match t.nodes.(Config.client_node t.cfg ~cluster) with
    | Client c -> c
    | Replica _ -> invalid_arg "Deployment.client"

  (* -- node contexts ---------------------------------------------------- *)

  let rec make_ctx (t : t) ~node : P.msg Ctx.t =
    let cfg = t.cfg in
    let is_replica = Config.is_replica cfg node in
    let send ~dst ~size ~vcost payload =
      Network.send t.net ~src:node ~dst ~size { payload; vcost }
    in
    let bcast ~dsts ~size ~vcost payload =
      Network.multicast t.net ~src:node ~dsts ~size { payload; vcost }
    in
    let charge ~stage ~cost k =
      if t.crashed.(node) then () else Cpu.charge t.cpu ~node ~stage ~cost k
    in
    let shard = t.shard_of node in
    let set_timer ~delay k =
      (* Route onto the node's own shard: timers armed from outside the
         node's execution (construction, control actions) must not land
         on whichever shard happens to be current. *)
      Engine.schedule_at_shard t.engine ~shard
        ~at:(Time.add (Engine.now t.engine) delay)
        (fun () -> if not t.crashed.(node) then k ())
    in
    let execute (batch : Batch.t) ~cert ~on_done =
      let txns = Array.length batch.Batch.txns in
      let cost =
        Time.add (Config.exec_cost cfg ~txns) (Config.hash_cost cfg ~bytes:Wire.small)
      in
      Cpu.charge t.cpu ~node ~stage:Cpu.Execute ~cost (fun () ->
          if not t.crashed.(node) then begin
            let ledger = t.ledgers.(node) in
            let height = Ledger.length ledger in
            let apply =
              (* Apply to the App iff it sits exactly at the append
                 height with an intact payload.  A stripped batch (its
                 payload was dropped for ledger compactness) cannot
                 reproduce state, and an App already past this height
                 (a state snapshot was installed while this execute was
                 in flight) must not re-apply — either way the block is
                 appended ledger-only and the protocol skips its reply. *)
              Kv.height t.apps.(node) = height && not (Batch.stripped batch)
            in
            let result = if apply then Some (Kv.apply t.apps.(node) batch) else None in
            let stored =
              if t.retain_payloads then batch else { batch with Batch.txns = [||] }
            in
            ignore
              (Ledger.append ledger ~round:height ~cluster:batch.Batch.cluster ~batch:stored
                 ~cert);
            if node = 0 then begin
              Metrics.record_decision t.metrics;
              match t.tracer with
              | None -> ()
              | Some tr -> Rdb_trace.Trace.note_decision tr
            end;
            on_done result
          end)
    in
    (* The consensus-bypass read path: serve a read-only batch from
       current state, charged at the execute stage like any execution,
       but without consensus, without the ledger, and without moving
       the App height. *)
    let read_execute (batch : Batch.t) ~on_done =
      let txns = Array.length batch.Batch.txns in
      let cost =
        Time.add (Config.exec_cost cfg ~txns) (Config.hash_cost cfg ~bytes:Wire.small)
      in
      Cpu.charge t.cpu ~node ~stage:Cpu.Execute ~cost (fun () ->
          if not t.crashed.(node) then on_done (Kv.read t.apps.(node) batch))
    in
    let state_snapshot () =
      (* With payloads retained, ledger replay rebuilds state for free;
         only the stripped configuration needs the state piggyback. *)
      if (not is_replica) || t.retain_payloads then None
      else Some (Kv.snapshot t.apps.(node))
    in
    let app_restore snap =
      if is_replica then Kv.restore t.apps.(node) snap
    in
    let ledger_read ~height =
      if is_replica then begin
        (* A recovering requester may be ahead of this peer: clamp so a
           fetch past our frontier reads as the empty suffix. *)
        let ledger = t.ledgers.(node) in
        let height = max 0 (min height (Ledger.length ledger)) in
        List.map
          (fun (b : Rdb_ledger.Block.t) -> (b.Rdb_ledger.Block.batch, b.Rdb_ledger.Block.cert))
          (Ledger.read_from ledger ~height)
      end
      else []
    in
    let complete (batch : Batch.t) =
      let now = Engine.now t.engine in
      (* Per-op-class counts, taken client-side from the submitted
         payload (the client always holds the full batch). *)
      let reads = ref 0 and scans = ref 0 and writes = ref 0 in
      Array.iter
        (fun (x : Txn.t) ->
          match x.Txn.op with
          | Txn.Read -> incr reads
          | Txn.Scan -> incr scans
          | Txn.Write -> incr writes)
        batch.Batch.txns;
      Metrics.record_completion t.metrics ~now ~txns:(Array.length batch.Batch.txns)
        ~reads:!reads ~scans:!scans ~writes:!writes
        ~latency:(Time.sub now batch.Batch.created) ();
      let d = t.drivers.(batch.Batch.cluster) in
      d.outstanding <- d.outstanding - 1;
      refill t d
    in
    let trace =
      if t.trace_enabled then fun msg ->
        Printf.eprintf "[%8.3fms] %s\n%!" (Time.to_ms_f (Engine.now t.engine)) (Lazy.force msg)
      else fun _ -> ()
    in
    let phase =
      match t.tracer with
      | None -> fun ~key:_ ~name:_ -> ()
      | Some tr ->
          fun ~key ~name ->
            Rdb_trace.Trace.phase_mark tr ~node ~key ~name ~now:(Engine.now t.engine)
    in
    {
      Ctx.id = node;
      config = cfg;
      keychain = t.keychain;
      rng = Rdb_prng.Rng.split (Engine.rng t.engine) ~index:node;
      now = (fun () -> Engine.now t.engine);
      send;
      bcast;
      charge;
      set_timer;
      cancel_timer = Engine.cancel;
      execute;
      read_execute;
      state_snapshot;
      app_restore;
      ledger_read;
      complete = (if is_replica then fun _ -> () else complete);
      trace;
      phase;
    }

  (* -- closed-loop client drivers ---------------------------------------- *)

  and refill (t : t) (d : client_driver) =
    match d.agent with
    | None -> ()
    | Some agent ->
        (* One aggregated group tick per batch: the loop body costs
           O(1) events regardless of how many real clients the group
           models (Config.group_inflight scales the outstanding window
           with the population instead). *)
        while d.outstanding < Config.group_inflight t.cfg ~cluster:d.cluster do
          d.outstanding <- d.outstanding + 1;
          let id = (d.cluster * 1_000_000) + d.next_id in
          d.next_id <- d.next_id + 1;
          let txns = Workload.next_batch_txns d.workload ~batch_size:t.cfg.Config.batch_size in
          let batch =
            Batch.create ~keychain:t.keychain ~id ~cluster:d.cluster
              ~origin:(Config.client_node t.cfg ~cluster:d.cluster) ~txns
              ~created:(Engine.now t.engine)
          in
          P.submit agent batch
        done

  (* -- construction -------------------------------------------------------- *)

  let create ?(trace = false) ?tracer ?(n_records = Table.default_records)
      ?(retain_payloads = true) ?(sharded = true) ?store_dir (cfg : Config.t) =
    if cfg.Config.z < 1 then invalid_arg "Deployment.create: z must be >= 1";
    let topo = Topology.clustered ~z:cfg.Config.z ~n:cfg.Config.n in
    (* Conservative sharding (DESIGN.md §15): one shard per cluster —
       each cluster and its co-located client group live in one region,
       so all cross-shard traffic is cross-region and the WAN's minimum
       one-way latency bounds how soon it can land.  The shard count is
       fixed by the topology (never by the worker count), so results
       are identical however many domains [run] uses. *)
    let lookahead_ms = Topology.min_cross_region_one_way_ms topo in
    let shards = if sharded && cfg.Config.z > 1 && lookahead_ms < infinity then cfg.Config.z else 1 in
    let engine =
      if shards > 1 then
        Engine.create ~seed:cfg.Config.seed ~shards ~lookahead:(Time.of_ms_f lookahead_ms) ()
      else Engine.create ~seed:cfg.Config.seed ()
    in
    let shard_of =
      if shards > 1 then fun node -> Config.cluster_of_node cfg node else fun _ -> 0
    in
    let n_nodes = Config.n_nodes cfg in
    let keychain = Keychain.create ~seed:(Printf.sprintf "rdb-%d" cfg.Config.seed) ~n_nodes in
    let cpu = Cpu.create ?trace:tracer ~shard_of ~engine ~n_nodes () in
    let metrics = Metrics.create () in
    if shards > 1 then begin
      let shard_of_now () = Engine.current_shard_id engine in
      Metrics.set_shards metrics ~n:shards ~shard_of_now;
      match tracer with
      | None -> ()
      | Some tr -> Rdb_trace.Trace.set_shards tr ~n:shards ~shard_of_now
    end;
    let n_repl = Config.n_replicas cfg in
    let ledgers = Array.init n_repl (fun _ -> Ledger.create ()) in
    (* Identical initial state on every replica: derive the master
       image once and memcpy, instead of re-mixing 600 k records per
       node.  Each replica's App is a Kv state machine over the
       configured backend; replica 0 of the Memory configuration
       adopts the master directly (no extra copy). *)
    let master = Backend.init_records ~n_records in
    let store_root =
      match (cfg.Config.storage, store_dir) with
      | Config.Memory, _ -> None
      | Config.Disk, Some d -> Some d
      | Config.Disk, None ->
          (* A unique scratch directory per deployment: claim a unique
             temp-file name and use it as the directory root. *)
          let stamp = Filename.temp_file "rdb-store-" "" in
          Sys.remove stamp;
          Some stamp
    in
    let apps =
      Array.init n_repl (fun i ->
          match store_root with
          | None -> if i = 0 then Kv.of_records master else Kv.of_master master
          | Some root ->
              Kv.disk ~init:master
                ~dir:(Filename.concat root (Printf.sprintf "r%d" i))
                ~n_records ())
    in
    let tables = Array.map (fun kv -> Table.of_records (Kv.records kv)) apps in
    let drivers =
      Array.init cfg.Config.z (fun cluster ->
          {
            cluster;
            workload =
              Workload.create ~n_records ~read_fraction:cfg.Config.read_fraction
                ~scan_fraction:cfg.Config.scan_fraction
                ~n_clients:(Config.group_population cfg ~cluster)
                ~seed:(cfg.Config.seed + (7919 * (cluster + 1)))
                ~client_base:(cluster * Config.client_id_stride cfg) ();
            outstanding = 0;
            next_id = 0;
            agent = None;
          })
    in
    let t_ref = ref None in
    (* Replicas verify incoming messages on their two input threads
       (paper §3, Figure 9: "all replicas have two input threads for
       processing all other messages"); alternate between them. *)
    let input_toggle = Array.make n_nodes false in
    let deliver ~src ~dst (pkt : P.msg packet) =
      match !t_ref with
      | None -> ()
      | Some t ->
          if not t.crashed.(dst) then begin
            let stage =
              if Config.is_replica cfg dst then begin
                input_toggle.(dst) <- not input_toggle.(dst);
                if input_toggle.(dst) then Cpu.Input0 else Cpu.Input1
              end
              else Cpu.Misc
            in
            Cpu.charge t.cpu ~node:dst ~stage ~cost:pkt.vcost (fun () ->
                if not t.crashed.(dst) then
                  match t.nodes.(dst) with
                  | Replica r -> P.on_message r ~src pkt.payload
                  | Client c -> P.on_client_message c ~src pkt.payload)
          end
    in
    let net =
      Network.create ~wan_egress_mbps:cfg.Config.wan_egress_mbps ?trace:tracer ~shard_of ~engine
        ~topo ~jitter_ms:0.2 ~deliver ()
    in
    (* One Chrome/Perfetto track per node, labeled with its role. *)
    (match tracer with
    | None -> ()
    | Some tr ->
        for node = 0 to n_nodes - 1 do
          let name =
            if Config.is_replica cfg node then
              Printf.sprintf "replica %d (cluster %d, idx %d)" node
                (Config.cluster_of_replica cfg node) (Config.local_index cfg node)
            else Printf.sprintf "clients (cluster %d)" (Config.cluster_of_client cfg node)
          in
          Rdb_trace.Trace.set_track_name tr ~node name
        done);
    let t =
      {
        cfg;
        engine;
        topo;
        net;
        cpu;
        keychain;
        metrics;
        ledgers;
        apps;
        tables;
        nodes = [||];
        drivers;
        crashed = Array.make n_nodes false;
        stats_before = None;
        shard_of;
        interposed = false;
        trace_enabled = trace;
        tracer;
        retain_payloads;
      }
    in
    t_ref := Some t;
    t.nodes <-
      Array.init n_nodes (fun node ->
          if Config.is_replica cfg node then Replica (P.create_replica (make_ctx t ~node))
          else
            let cluster = Config.cluster_of_client cfg node in
            let agent = P.create_client (make_ctx t ~node) ~cluster in
            drivers.(cluster).agent <- Some agent;
            Client agent);
    t

  (* Stop cluster [cluster]'s client group from submitting new batches
     (already-submitted batches complete normally).  Used to exercise
     GeoBFT's no-op rounds: a cluster without client requests must not
     stall the others (§2.5). *)
  let pause_client t ~cluster = t.drivers.(cluster).agent <- None

  (* -- fault injection ------------------------------------------------------ *)

  let crash_replica t node =
    t.crashed.(node) <- true;
    Network.crash t.net node

  (* Un-crash a node: it resumes sending/receiving with the state it
     had at crash time.  Timers armed before the crash were dropped
     while the node was down, so the protocol's [on_recover] hook runs
     to restart its self-rearming tasks and kick off state transfer /
     catch-up. *)
  let recover_replica t node =
    t.crashed.(node) <- false;
    Network.recover t.net node;
    match t.nodes.(node) with
    | Replica r -> P.on_recover r
    | Client _ -> ()

  (* Test hook: rejoin WITHOUT the protocol's [on_recover] and with
     its out-of-band recovery machinery (behind-the-window catch-up)
     turned off — the pre-recovery-subsystem behaviour, kept so the
     chaos monitor can be shown to still catch a recovery-disabled
     run. *)
  let uncrash_replica_no_recovery t node =
    t.crashed.(node) <- false;
    Network.recover t.net node;
    match t.nodes.(node) with
    | Replica r -> P.disable_recovery r
    | Client _ -> ()

  (* Test hook: the fully recovery-less build — no behind-the-window
     catch-up anywhere, not just at rejoin time (a lossy-but-alive
     replica would otherwise rescue itself mid-run). *)
  let disable_all_recovery t =
    Array.iter (function Replica r -> P.disable_recovery r | Client _ -> ()) t.nodes

  let is_crashed t node = t.crashed.(node)

  (* Crash the view-0 primary of [cluster] (experiments fail "the"
     primary; protocols place it at local index 0 initially). *)
  let crash_primary t ~cluster =
    crash_replica t (Config.replica_id t.cfg ~cluster ~index:0)

  (* Crash f non-primary replicas in every cluster (the worst case
     GeoBFT is designed for, §4.3). *)
  let crash_f_per_cluster t =
    let f = Config.f t.cfg in
    for cluster = 0 to t.cfg.Config.z - 1 do
      for i = 1 to f do
        crash_replica t (Config.replica_id t.cfg ~cluster ~index:(t.cfg.Config.n - i))
      done
    done

  let add_drop_rule t rule = Network.add_drop_rule t.net rule
  let clear_drop_rules t = Network.clear_drop_rules t.net

  (* Sever all traffic between two clusters' regions (both ways). *)
  let partition_clusters t ~ca ~cb = Network.partition_regions t.net ~ra:ca ~rb:cb

  (* Inverse of [partition_clusters] on the same pair. *)
  let heal_clusters t ~ca ~cb = Network.heal_regions t.net ~ra:ca ~rb:cb

  let sever_link t ~src ~dst = Network.sever_link t.net ~src ~dst
  let restore_link t ~src ~dst = Network.restore_link t.net ~src ~dst
  let set_link_loss t ~src ~dst ~p = Network.set_link_loss t.net ~src ~dst ~p
  let set_link_dup t ~src ~dst ~p = Network.set_link_dup t.net ~src ~dst ~p

  (* Schedule a global action at an absolute simulated time.  Fault
     injection, chaos steps and monitors observe and mutate cross-shard
     state, so they run as engine controls: at an epoch barrier with
     every shard stopped, at exactly [time], before same-time ordinary
     events. *)
  let at t ~time k = Engine.schedule_control t.engine ~at:time (fun () -> k ())

  (* -- running ---------------------------------------------------------------- *)

  let start_clients t = Array.iter (fun d -> refill t d) t.drivers

  let view_changes t =
    let acc = ref 0 in
    Array.iter
      (fun node -> match node with Replica r -> acc := !acc + P.view_changes r | Client _ -> ())
      t.nodes;
    !acc

  (* Recovery-subsystem totals across all replicas. *)
  let recovery_totals t =
    Array.fold_left
      (fun acc node ->
        match node with
        | Replica r -> Protocol.add_recovery acc (P.recovery r)
        | Client _ -> acc)
      Protocol.no_recovery t.nodes

  let run ?(warmup = Time.sec 15) ?(measure = Time.sec 45) ?(jobs = 1) (t : t) : Report.t =
    (* The adversary interposer mutates unsynchronized bookkeeping from
       the send/recv path; with one installed, run the (identical)
       schedule on a single domain. *)
    Engine.set_jobs t.engine (if t.interposed then 1 else jobs);
    start_clients t;
    Engine.run_until t.engine ~until:warmup;
    Metrics.open_window t.metrics ~now:(Engine.now t.engine);
    let before = Stats.snapshot (Network.stats t.net) in
    let vc_before = view_changes t in
    Engine.run_until t.engine ~until:(Time.add warmup measure);
    Metrics.close_window t.metrics ~now:(Engine.now t.engine);
    let after = Stats.snapshot (Network.stats t.net) in
    let d = Stats.diff ~after ~before in
    let lat = Metrics.latency_summary t.metrics in
    let rlat = Metrics.read_latency_summary t.metrics in
    {
      Report.protocol = P.name;
      z = t.cfg.Config.z;
      n = t.cfg.Config.n;
      batch_size = t.cfg.Config.batch_size;
      throughput_txn_s = Metrics.throughput_txn_s t.metrics;
      avg_latency_ms = lat.Metrics.avg_ms;
      p50_latency_ms = lat.Metrics.p50_ms;
      p95_latency_ms = lat.Metrics.p95_ms;
      p99_latency_ms = lat.Metrics.p99_ms;
      completed_batches = Metrics.completed_batches t.metrics;
      completed_txns = Metrics.completed_txns t.metrics;
      decisions = Metrics.decisions t.metrics;
      local_msgs = d.Stats.l_msgs;
      global_msgs = d.Stats.g_msgs;
      local_mb = float_of_int d.Stats.l_bytes /. 1e6;
      global_mb = float_of_int d.Stats.g_bytes /. 1e6;
      view_changes = view_changes t - vc_before;
      state_transfers = (recovery_totals t).Protocol.state_transfers;
      holes_filled = (recovery_totals t).Protocol.holes_filled;
      retransmissions = (recovery_totals t).Protocol.retransmissions;
      storage = Config.storage_name t.cfg.Config.storage;
      read_txns = Metrics.read_txns t.metrics;
      scan_txns = Metrics.scan_txns t.metrics;
      write_txns = Metrics.write_txns t.metrics;
      read_p50_latency_ms = rlat.Metrics.p50_ms;
      read_p95_latency_ms = rlat.Metrics.p95_ms;
      read_p99_latency_ms = rlat.Metrics.p99_ms;
      window_sec = Metrics.window_sec t.metrics;
      (* Finalizes the digest: [run] is the end of the traced stream. *)
      trace = Option.map Rdb_trace.Trace.summary t.tracer;
    }
end
