(** A minimal JSON tree, parser and deterministic printer — the wire
    substrate for {!Report} round-trips, scenario ids and the sweep
    engine's results documents (the container carries no JSON
    dependency).

    Printing is canonical: field order is preserved, floats use the
    shortest decimal that round-trips the exact double, and the output
    carries no timestamps — two identical trees print byte-identically,
    which is what the sweep determinism witness compares. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val float_to_string : float -> string
(** Shortest decimal representation that parses back to the exact
    double ([1.5] prints ["1.5"], not ["1.5000000000000000"]). *)

val to_string : t -> string
(** Pretty-printed (2-space indent), trailing newline. Deterministic. *)

val to_string_compact : t -> string
(** Single-line rendering, no spaces. Deterministic. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document (trailing whitespace allowed). *)

(** {1 Accessors} (all total; [None] on shape mismatch) *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
(** [Int] is accepted and widened. *)

val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option
