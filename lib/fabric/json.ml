(* A minimal JSON tree, parser and deterministic printer.

   The container carries no JSON dependency, and the repo needs more
   than the ad-hoc scanners the bench harness used to carry: the
   versioned report wire format (Report.to_json/of_json), scenario
   round-trips (Scenario.to_json/of_json) and the sweep engine's
   results documents all parse as well as print.  Scope is exactly
   RFC 8259 minus the freedoms we never exercise: numbers are OCaml
   ints or floats (no bignums), strings are OCaml strings with the
   standard escapes (\uXXXX accepted on input for the BMP, emitted
   only for control characters), and object keys keep their order —
   printing is canonical-by-construction, which is what the sweep
   determinism witness byte-compares. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* -- float formatting --------------------------------------------------- *)

(* Shortest decimal representation that round-trips the double: try
   increasing precision until re-parsing restores the exact value.
   Deterministic, locale-independent, human-readable. *)
let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let try_prec p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    match try_prec 12 with
    | Some s -> s
    | None -> (
        match try_prec 15 with
        | Some s -> s
        | None -> Printf.sprintf "%.17g" f)

(* -- printing ----------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec print ?(indent = 0) b v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_to_string f)
  | String s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List items ->
      Buffer.add_string b "[";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",";
          Buffer.add_string b ("\n" ^ pad (indent + 2));
          print ~indent:(indent + 2) b item)
        items;
      Buffer.add_string b ("\n" ^ pad indent ^ "]")
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_string b "{";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string b ",";
          Buffer.add_string b ("\n" ^ pad (indent + 2));
          escape_string b k;
          Buffer.add_string b ": ";
          print ~indent:(indent + 2) b item)
        fields;
      Buffer.add_string b ("\n" ^ pad indent ^ "}")

let to_string v =
  let b = Buffer.create 1024 in
  print b v;
  Buffer.add_char b '\n';
  Buffer.contents b

let rec print_compact b v =
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_to_string f)
  | String s -> escape_string b s
  | List items ->
      Buffer.add_string b "[";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",";
          print_compact b item)
        items;
      Buffer.add_string b "]"
  | Obj fields ->
      Buffer.add_string b "{";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string b ",";
          escape_string b k;
          Buffer.add_string b ":";
          print_compact b item)
        fields;
      Buffer.add_string b "}"

let to_string_compact v =
  let b = Buffer.create 256 in
  print_compact b v;
  Buffer.contents b

(* -- parsing ------------------------------------------------------------ *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let m = String.length lit in
    if !pos + m <= n && String.sub s !pos m = lit then begin
      pos := !pos + m;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            if !pos >= n then fail "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                let hex4 () =
                  if !pos + 4 >= n then fail "truncated \\u escape";
                  let hex = String.sub s (!pos + 1) 4 in
                  let code =
                    match int_of_string_opt ("0x" ^ hex) with
                    | Some c -> c
                    | None -> fail "bad \\u escape"
                  in
                  pos := !pos + 4;
                  code
                in
                let code = hex4 () in
                let code =
                  (* RFC 8259 §7: code points above the BMP arrive as a
                     UTF-16 surrogate pair; decode it to the real code
                     point instead of emitting CESU-8.  An unpaired
                     surrogate denotes no character at all. *)
                  if code >= 0xD800 && code <= 0xDBFF then begin
                    if
                      not
                        (!pos + 2 < n && s.[!pos + 1] = '\\' && s.[!pos + 2] = 'u')
                    then fail "high surrogate not followed by \\u escape";
                    pos := !pos + 2;
                    let low = hex4 () in
                    if low < 0xDC00 || low > 0xDFFF then
                      fail "high surrogate not followed by a low surrogate";
                    0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                  end
                  else if code >= 0xDC00 && code <= 0xDFFF then fail "unpaired low surrogate"
                  else code
                in
                (* UTF-8 encode the code point. *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else if code < 0x10000 then begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> fail (Printf.sprintf "bad escape \\%C" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
          is_float := true;
          true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with Some f -> Float f | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with Some f -> Float f | None -> fail "bad number")
  in
  (* Containers recurse; a hostile or corrupted document of nothing
     but open brackets must come back as [Error], not a stack
     overflow.  512 is far beyond anything the repo's wire formats
     nest and far below any stack limit. *)
  let max_depth = 512 in
  let depth = ref 0 in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr depth;
        if !depth > max_depth then fail "nesting too deep";
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          decr depth;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          decr depth;
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr depth;
        if !depth > max_depth then fail "nesting too deep";
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          decr depth;
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          decr depth;
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing data at offset %d" !pos) else Ok v
  | exception Parse_error msg -> Error msg

(* -- accessors ---------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
