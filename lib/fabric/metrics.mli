(** Run metrics with the paper's measurement methodology (§4): a
    warm-up phase, then a measurement window; throughput counts
    transactions whose batches completed at a client inside the window,
    latency is client-observed submit-to-quorum-of-replies time.

    Sharded runs keep one accumulator per engine shard (see
    {!set_shards}); every reported number merges the shards
    deterministically, so results are independent of the domain
    count. *)

module Time = Rdb_sim.Time

type t

val create : unit -> t

val set_shards : t -> n:int -> shard_of_now:(unit -> int) -> unit
(** Split into [n] per-shard accumulators routed by [shard_of_now];
    each is only touched by the domain executing its shard. *)

val open_window : t -> now:Time.t -> unit
val close_window : t -> now:Time.t -> unit

val record_completion :
  t ->
  now:Time.t ->
  txns:int ->
  ?reads:int ->
  ?scans:int ->
  ?writes:int ->
  latency:Time.t ->
  unit ->
  unit
(** Ignored while the window is closed.  [reads]/[scans]/[writes] are
    the batch's per-op-class counts; a completion with no writes and at
    least one read or scan also lands in the read-latency split. *)

val record_decision : t -> unit
(** One consensus decision observed (counted at replica 0). *)

val completed_batches : t -> int
val completed_txns : t -> int
val decisions : t -> int

val read_txns : t -> int
val scan_txns : t -> int
val write_txns : t -> int
(** Completed transactions by op class, inside the window. *)

val window_sec : t -> float
val throughput_txn_s : t -> float

type latency_summary = {
  avg_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

val latency_summary : t -> latency_summary

val read_latency_summary : t -> latency_summary
(** Latency summary over read-only batch completions alone. *)
