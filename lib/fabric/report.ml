(* The result of one simulated deployment run. *)

type t = {
  protocol : string;
  z : int;
  n : int;
  batch_size : int;
  throughput_txn_s : float;
  avg_latency_ms : float;
  p50_latency_ms : float;
  p95_latency_ms : float;
  p99_latency_ms : float;
  completed_batches : int;
  completed_txns : int;
  decisions : int;                 (* consensus decisions at replica 0 *)
  local_msgs : int;                (* traffic inside the window *)
  global_msgs : int;
  local_mb : float;
  global_mb : float;
  view_changes : int;
  (* Recovery-subsystem totals over the whole run (all replicas):
     checkpoint state transfers installed, execution holes filled by
     catch-up fetches, timeout-driven retransmissions. *)
  state_transfers : int;
  holes_filled : int;
  retransmissions : int;
  window_sec : float;
  (* Whole-run trace summary (per-phase latency breakdown, traced
     message counts, deterministic digest); None when tracing was off. *)
  trace : Rdb_trace.Trace.summary option;
}

(* Per-decision message complexity — the quantities of Table 2. *)
let local_msgs_per_decision t =
  if t.decisions = 0 then 0. else float_of_int t.local_msgs /. float_of_int t.decisions

let global_msgs_per_decision t =
  if t.decisions = 0 then 0. else float_of_int t.global_msgs /. float_of_int t.decisions

let pp fmt t =
  Format.fprintf fmt
    "%-9s z=%d n=%-2d batch=%-3d | %10.0f txn/s | lat avg %7.1f ms p50 %7.1f p99 %7.1f | msgs/dec local %7.1f global %6.1f | vc %d"
    t.protocol t.z t.n t.batch_size t.throughput_txn_s t.avg_latency_ms t.p50_latency_ms
    t.p99_latency_ms (local_msgs_per_decision t) (global_msgs_per_decision t) t.view_changes

let pp_recovery fmt t =
  Format.fprintf fmt
    "recovery: state transfers %d | holes filled %d | retransmissions %d"
    t.state_transfers t.holes_filled t.retransmissions

(* Per-phase latency breakdown and per-decision traced message counts
   (whole run, all nodes) — empty when the run was not traced. *)
let pp_trace fmt t =
  match t.trace with
  | None -> ()
  | Some s -> Rdb_trace.Trace.pp_summary fmt s

let to_string t = Format.asprintf "%a" pp t
