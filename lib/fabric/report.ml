(* The result of one simulated deployment run. *)

type t = {
  protocol : string;
  z : int;
  n : int;
  batch_size : int;
  throughput_txn_s : float;
  avg_latency_ms : float;
  p50_latency_ms : float;
  p95_latency_ms : float;
  p99_latency_ms : float;
  completed_batches : int;
  completed_txns : int;
  decisions : int;                 (* consensus decisions at replica 0 *)
  local_msgs : int;                (* traffic inside the window *)
  global_msgs : int;
  local_mb : float;
  global_mb : float;
  view_changes : int;
  (* Recovery-subsystem totals over the whole run (all replicas):
     checkpoint state transfers installed, execution holes filled by
     catch-up fetches, timeout-driven retransmissions. *)
  state_transfers : int;
  holes_filled : int;
  retransmissions : int;
  (* Storage backend under the App state machine ("mem" / "disk") and
     the per-op-class view of the completed work: transaction counts by
     class, plus latency percentiles over read-only batches alone
     (reads commonly bypass consensus, so their profile differs from
     writes by an order of magnitude). *)
  storage : string;
  read_txns : int;
  scan_txns : int;
  write_txns : int;
  read_p50_latency_ms : float;
  read_p95_latency_ms : float;
  read_p99_latency_ms : float;
  window_sec : float;
  (* Whole-run trace summary (per-phase latency breakdown, traced
     message counts, deterministic digest); None when tracing was off. *)
  trace : Rdb_trace.Trace.summary option;
}

(* Per-decision message complexity — the quantities of Table 2. *)
let local_msgs_per_decision t =
  if t.decisions = 0 then 0. else float_of_int t.local_msgs /. float_of_int t.decisions

let global_msgs_per_decision t =
  if t.decisions = 0 then 0. else float_of_int t.global_msgs /. float_of_int t.decisions

let pp fmt t =
  Format.fprintf fmt
    "%-9s z=%d n=%-2d batch=%-3d | %10.0f txn/s | lat avg %7.1f ms p50 %7.1f p99 %7.1f | msgs/dec local %7.1f global %6.1f | vc %d"
    t.protocol t.z t.n t.batch_size t.throughput_txn_s t.avg_latency_ms t.p50_latency_ms
    t.p99_latency_ms (local_msgs_per_decision t) (global_msgs_per_decision t) t.view_changes;
  (* The op-class split only appears on mixed workloads: write-only
     runs keep the historical one-line shape. *)
  if t.read_txns > 0 || t.scan_txns > 0 then
    Format.fprintf fmt
      "@\nops: reads %d (p50 %.1f ms p95 %.1f p99 %.1f) | scans %d | writes %d | storage %s"
      t.read_txns t.read_p50_latency_ms t.read_p95_latency_ms t.read_p99_latency_ms
      t.scan_txns t.write_txns t.storage

let pp_recovery fmt t =
  Format.fprintf fmt
    "recovery: state transfers %d | holes filled %d | retransmissions %d"
    t.state_transfers t.holes_filled t.retransmissions

(* Per-phase latency breakdown and per-decision traced message counts
   (whole run, all nodes) — empty when the run was not traced. *)
let pp_trace fmt t =
  match t.trace with
  | None -> ()
  | Some s -> Rdb_trace.Trace.pp_summary fmt s

let to_string t = Format.asprintf "%a" pp t

(* -- versioned JSON wire format ----------------------------------------- *)

(* Bump on any shape change; of_json refuses documents from the
   future.  Version 1 was the ad-hoc, write-only shape the bench
   harness used to emit (no trace block, no inverse).  Version 2
   predates the storage redesign: no per-op-class counts, no read
   latency split, no storage field — [of_json] still accepts it,
   defaulting those fields to a write-only in-memory run. *)
let schema_version = 3

let json_of_trace (s : Rdb_trace.Trace.summary) : Json.t =
  Json.Obj
    [
      ( "phases",
        Json.List
          (List.map
             (fun (r : Rdb_trace.Trace.phase_row) ->
               Json.Obj
                 [
                   ("phase", Json.String r.Rdb_trace.Trace.phase);
                   ("count", Json.Int r.Rdb_trace.Trace.count);
                   ("total_ms", Json.Float r.Rdb_trace.Trace.total_ms);
                   ("avg_ms", Json.Float r.Rdb_trace.Trace.avg_ms);
                   ("max_ms", Json.Float r.Rdb_trace.Trace.max_ms);
                 ])
             s.Rdb_trace.Trace.phases) );
      ("net_local", Json.Int s.Rdb_trace.Trace.net_local);
      ("net_global", Json.Int s.Rdb_trace.Trace.net_global);
      ("net_dropped", Json.Int s.Rdb_trace.Trace.net_dropped);
      ("decisions", Json.Int s.Rdb_trace.Trace.decisions);
      ("events", Json.Int s.Rdb_trace.Trace.events);
      ("digest_hex", Json.String s.Rdb_trace.Trace.digest_hex);
    ]

let to_json t : Json.t =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("protocol", Json.String t.protocol);
      ("z", Json.Int t.z);
      ("n", Json.Int t.n);
      ("batch_size", Json.Int t.batch_size);
      ("throughput_txn_s", Json.Float t.throughput_txn_s);
      ("avg_latency_ms", Json.Float t.avg_latency_ms);
      ("p50_latency_ms", Json.Float t.p50_latency_ms);
      ("p95_latency_ms", Json.Float t.p95_latency_ms);
      ("p99_latency_ms", Json.Float t.p99_latency_ms);
      ("completed_batches", Json.Int t.completed_batches);
      ("completed_txns", Json.Int t.completed_txns);
      ("decisions", Json.Int t.decisions);
      ("local_msgs", Json.Int t.local_msgs);
      ("global_msgs", Json.Int t.global_msgs);
      ("local_mb", Json.Float t.local_mb);
      ("global_mb", Json.Float t.global_mb);
      ("view_changes", Json.Int t.view_changes);
      ("state_transfers", Json.Int t.state_transfers);
      ("holes_filled", Json.Int t.holes_filled);
      ("retransmissions", Json.Int t.retransmissions);
      ("storage", Json.String t.storage);
      ("read_txns", Json.Int t.read_txns);
      ("scan_txns", Json.Int t.scan_txns);
      ("write_txns", Json.Int t.write_txns);
      ("read_p50_latency_ms", Json.Float t.read_p50_latency_ms);
      ("read_p95_latency_ms", Json.Float t.read_p95_latency_ms);
      ("read_p99_latency_ms", Json.Float t.read_p99_latency_ms);
      ("window_sec", Json.Float t.window_sec);
      ("trace", match t.trace with None -> Json.Null | Some s -> json_of_trace s);
    ]

let to_json_string t = Json.to_string_compact (to_json t)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "Report.of_json: missing or ill-typed field %S" name)

(* A field introduced by a later schema version: absent in old
   documents, in which case [default] applies. *)
let field_or name conv ~default j =
  match Json.member name j with
  | None -> Ok default
  | Some _ -> field name conv j

let trace_of_json j =
  match j with
  | None | Some Json.Null -> Ok None
  | Some tj ->
      let* phases = field "phases" Json.to_list tj in
      let* phases =
        List.fold_left
          (fun acc pj ->
            let* acc = acc in
            let* phase = field "phase" Json.to_str pj in
            let* count = field "count" Json.to_int pj in
            let* total_ms = field "total_ms" Json.to_float pj in
            let* avg_ms = field "avg_ms" Json.to_float pj in
            let* max_ms = field "max_ms" Json.to_float pj in
            Ok ({ Rdb_trace.Trace.phase; count; total_ms; avg_ms; max_ms } :: acc))
          (Ok []) phases
      in
      let phases = List.rev phases in
      let* net_local = field "net_local" Json.to_int tj in
      let* net_global = field "net_global" Json.to_int tj in
      let* net_dropped = field "net_dropped" Json.to_int tj in
      let* decisions = field "decisions" Json.to_int tj in
      let* events = field "events" Json.to_int tj in
      let* digest_hex = field "digest_hex" Json.to_str tj in
      Ok
        (Some
           {
             Rdb_trace.Trace.phases;
             net_local;
             net_global;
             net_dropped;
             decisions;
             events;
             digest_hex;
           })

let of_json j : (t, string) result =
  let* v = field "schema_version" Json.to_int j in
  if v > schema_version then
    Error (Printf.sprintf "Report.of_json: schema_version %d is newer than %d" v schema_version)
  else
    let* protocol = field "protocol" Json.to_str j in
    let* z = field "z" Json.to_int j in
    let* n = field "n" Json.to_int j in
    let* batch_size = field "batch_size" Json.to_int j in
    let* throughput_txn_s = field "throughput_txn_s" Json.to_float j in
    let* avg_latency_ms = field "avg_latency_ms" Json.to_float j in
    let* p50_latency_ms = field "p50_latency_ms" Json.to_float j in
    let* p95_latency_ms = field "p95_latency_ms" Json.to_float j in
    let* p99_latency_ms = field "p99_latency_ms" Json.to_float j in
    let* completed_batches = field "completed_batches" Json.to_int j in
    let* completed_txns = field "completed_txns" Json.to_int j in
    let* decisions = field "decisions" Json.to_int j in
    let* local_msgs = field "local_msgs" Json.to_int j in
    let* global_msgs = field "global_msgs" Json.to_int j in
    let* local_mb = field "local_mb" Json.to_float j in
    let* global_mb = field "global_mb" Json.to_float j in
    let* view_changes = field "view_changes" Json.to_int j in
    let* state_transfers = field "state_transfers" Json.to_int j in
    let* holes_filled = field "holes_filled" Json.to_int j in
    let* retransmissions = field "retransmissions" Json.to_int j in
    (* Schema-3 fields; a schema-2 document is a write-only in-memory run. *)
    let* storage = field_or "storage" Json.to_str ~default:"mem" j in
    let* read_txns = field_or "read_txns" Json.to_int ~default:0 j in
    let* scan_txns = field_or "scan_txns" Json.to_int ~default:0 j in
    let* write_txns = field_or "write_txns" Json.to_int ~default:0 j in
    let* read_p50_latency_ms = field_or "read_p50_latency_ms" Json.to_float ~default:0.0 j in
    let* read_p95_latency_ms = field_or "read_p95_latency_ms" Json.to_float ~default:0.0 j in
    let* read_p99_latency_ms = field_or "read_p99_latency_ms" Json.to_float ~default:0.0 j in
    let* window_sec = field "window_sec" Json.to_float j in
    let* trace = trace_of_json (Json.member "trace" j) in
    Ok
      {
        protocol;
        z;
        n;
        batch_size;
        throughput_txn_s;
        avg_latency_ms;
        p50_latency_ms;
        p95_latency_ms;
        p99_latency_ms;
        completed_batches;
        completed_txns;
        decisions;
        local_msgs;
        global_msgs;
        local_mb;
        global_mb;
        view_changes;
        state_transfers;
        holes_filled;
        retransmissions;
        storage;
        read_txns;
        scan_txns;
        write_txns;
        read_p50_latency_ms;
        read_p95_latency_ms;
        read_p99_latency_ms;
        window_sec;
        trace;
      }

let of_json_string s =
  match Json.of_string s with Ok j -> of_json j | Error msg -> Error ("Report.of_json: " ^ msg)
