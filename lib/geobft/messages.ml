(* GeoBFT wire messages (paper §2).

   [Local] wraps the cluster-internal Pbft traffic of the local
   replication step.  The inter-cluster messages are exactly the ones
   of Figures 5 and 7:

   - [Global_share]: m = (⟨T⟩c, [⟨T⟩c, ρ]_C), a certified client
     request, sent by the primary of the producing cluster to f+1
     remote replicas (global phase) and then broadcast locally by its
     receivers (local phase).  The same message answers a DRVC from a
     replica that already holds m (Figure 7, line 7).
   - [Drvc]: local agreement that a remote cluster failed to deliver
     its round-ρ message (Figure 7, lines 2-11).
   - [Rvc]: the signed remote view-change request, sent to the replica
     of the failed cluster with the same local id (line 13), and
     forwarded inside the failed cluster (line 15).  Signing matters:
     the receiving cluster counts f+1 requests *signed by distinct
     replicas of one remote cluster* before acting (line 16).
   - [Request]/[Reply]: client traffic with the local cluster. *)

module Batch = Rdb_types.Batch
module Certificate = Rdb_types.Certificate
module Schnorr = Rdb_crypto.Schnorr
module App = Rdb_types.App

type rvc = {
  failed_cluster : int;     (* C1: the cluster asked to view-change *)
  round : int;              (* ρ: first round the requester is missing *)
  vc_count : int;           (* v: requester's remote view-change counter *)
  requester : int;          (* global node id of the signer, in C2 *)
  signature : Schnorr.signature;
}

type msg =
  | Local of Rdb_pbft.Messages.msg
  | Request of Batch.t
  | Read_request of Batch.t
  | Global_share of { round : int; batch : Batch.t; cert : Certificate.t }
  | Drvc of { failed_cluster : int; round : int; vc_count : int }
  | Rvc of rvc                 (* sent cross-cluster, or forwarded within C1 *)
  | Reply of { batch_id : int; result_digest : string; primary : int }
      (* [primary]: the replier's current local primary — clients use
         it to re-aim new requests after a view change. *)
  (* Crash-rejoin catch-up (lib/recovery): a recovering replica asks a
     local peer for its ledger suffix from height [from]; the peer
     answers with the blocks (and its engine view, so an ex-primary
     stops proposing into a dead view). *)
  | Fetch_rounds of { from : int }
  | Round_data of {
      from : int;
      eng_view : int;
      blocks : (Batch.t * Certificate.t option) list;
      state : App.snapshot option;
    }

let rvc_payload ~failed_cluster ~round ~vc_count ~requester =
  Printf.sprintf "rvc:%d:%d:%d:%d" failed_cluster round vc_count requester

let kind = function
  | Local m -> "local-" ^ Rdb_pbft.Messages.kind m
  | Request _ -> "request"
  | Read_request _ -> "read-request"
  | Global_share _ -> "global-share"
  | Drvc _ -> "drvc"
  | Rvc _ -> "rvc"
  | Reply _ -> "reply"
  | Fetch_rounds _ -> "fetch-rounds"
  | Round_data _ -> "round-data"
