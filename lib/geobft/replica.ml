(* The GeoBFT replica (paper §2).

   Round structure: in round ρ every cluster contributes the batch its
   local Pbft instance committed at sequence number ρ.  The three steps
   per round:

   1. *Local replication* (§2.2): the embedded Pbft engine (one per
      cluster) commits batches and emits commit certificates in
      sequence order.

   2. *Inter-cluster sharing* (§2.3): when the local primary's engine
      commits round ρ, the primary sends (batch, certificate) to f+1
      replicas of every other cluster (global phase, Figure 5 line 1-2,
      targets rotated per round to spread WAN load); a replica that
      receives a share from outside its cluster broadcasts it locally
      (local phase, line 3-4).  Failure to receive a round from some
      cluster triggers the remote view-change protocol (Figure 7),
      implemented here in full: timer-based detection with exponential
      back-off, DRVC local agreement (n−f), sharing m with lagging
      peers (line 5-7), the f+1 adoption rule (line 8-11), signed RVC
      to the same-id replica (line 12-13), in-cluster forwarding (line
      14-15), and the guarded honor rule with replay protection (line
      16) that ends in a forced local view-change.

   3. *Ordering and execution* (§2.4): once certified batches for round
      ρ are present from all z clusters, they execute in cluster order;
      replicas reply only to their local clients.

   Pipelining (§2.5): local replication and sharing run ahead of
   execution; only execution is round-strict.  No-op batches fill
   rounds when a cluster has no client load. *)

module Batch = Rdb_types.Batch
module Certificate = Rdb_types.Certificate
module Config = Rdb_types.Config
module Ctx = Rdb_types.Ctx
module Wire = Rdb_types.Wire
module Client_core = Rdb_types.Client_core
module Time = Rdb_sim.Time
module Cpu = Rdb_sim.Cpu
module Keychain = Rdb_crypto.Keychain
module Engine = Rdb_pbft.Engine
module Recovery = Rdb_recovery.Recovery
module Mutation = Rdb_types.Mutation
module Evidence = Rdb_types.Evidence
open Messages

let name = "GeoBFT"

type msg = Messages.msg

(* Per-remote-cluster bookkeeping for sharing and failure detection. *)
type cluster_track = {
  cluster : int;
  certified : (int, Batch.t * Certificate.t) Hashtbl.t;  (* round -> m *)
  mutable vc_count : int;                      (* v1 of Figure 7 *)
  mutable detect_timer : Ctx.timer option;
  mutable timeout : Time.t;                    (* exponential back-off *)
  (* (round, v) -> local indices that sent DRVC *)
  drvc_votes : (int * int, (int, unit) Hashtbl.t) Hashtbl.t;
  drvc_sent : (int * int, unit) Hashtbl.t;     (* our own DRVC broadcasts *)
  rvc_sent : (int * int, unit) Hashtbl.t;      (* RVCs we dispatched *)
}

type replica = {
  ctx : msg Ctx.t;
  cfg : Config.t;
  my_cluster : int;
  my_local : int;                                (* local index in cluster *)
  engine : Engine.t;
  tracks : cluster_track array;                  (* indexed by cluster *)
  mutable exec_round : int;                      (* next round to execute *)
  mutable exec_busy : bool;                      (* a round is executing *)
  (* Response role state (us as a member of a suspected cluster): *)
  rvc_received : (int * int, (int, unit) Hashtbl.t) Hashtbl.t;
      (* (requesting cluster, v) -> distinct requester node ids *)
  rvc_honored : (int * int, unit) Hashtbl.t;     (* replay protection, line 16.4 *)
  mutable rvc_rounds : (int * int) list;         (* (cluster, round) to re-serve *)
  mutable last_local_vc : Time.t;                (* for the "recent vc" guard *)
  mutable shares_sent : int;                     (* metrics *)
  mutable remote_vcs_triggered : int;
  (* Crash-rejoin catch-up (lib/recovery): ledger appends issued /
     completed, and the state-transfer task pulling the missing ledger
     suffix from local peers. *)
  mutable issued : int;
  mutable appended : int;
  mutable recovering : bool;
  stats : Recovery.Stats.t;
  mutable task : Recovery.Task.t option;
}

(* Blocks per catch-up reply, so one message stays bounded. *)
let catchup_chunk = 96

(* -- sizes and verification costs -------------------------------------- *)

let share_size cfg =
  Wire.certificate_bytes ~batch_size:cfg.Config.batch_size ~sigs:(Config.cert_wire_sigs cfg)

let size_of cfg = function
  | Local _ -> assert false (* the engine sizes its own messages *)
  | Request _ | Read_request _ -> Wire.batch_bytes ~batch_size:cfg.Config.batch_size
  | Global_share _ -> share_size cfg
  | Drvc _ | Rvc _ -> Wire.small
  | Reply _ -> Wire.response_bytes ~batch_size:cfg.Config.batch_size
  | Fetch_rounds _ -> Wire.fetch_bytes
  | Round_data { blocks; state; _ } ->
      Wire.snapshot_bytes ~batch_size:cfg.Config.batch_size
        ~sigs:(Config.cert_wire_sigs cfg) ~blocks:(List.length blocks)
      + (match state with Some s -> String.length s.Rdb_types.App.state | None -> 0)

(* Receiver floor only: certificate signatures are verified once per
   *new* certificate on the certify thread (deduplication is a cheap
   digest lookup and precedes verification), not per received copy. *)
let vcost_of cfg m =
  match m with
  | Local _ -> assert false
  | Rvc _ ->
      Time.add
        (Config.recv_floor_cost cfg ~bytes:Wire.small)
        (Config.verify_cost cfg)
  | Round_data { blocks; _ } ->
      (* The requester verifies one certificate per block. *)
      Time.add
        (Config.recv_floor_cost cfg ~bytes:(size_of cfg m))
        (Time.of_us_f (cfg.Config.costs.Config.verify_us *. float_of_int (max 1 (List.length blocks))))
  | m -> Config.recv_floor_cost cfg ~bytes:(size_of cfg m)

let send r ~dst m = r.ctx.Ctx.send ~dst ~size:(size_of r.cfg m) ~vcost:(vcost_of r.cfg m) m

let local_members r = Config.replicas_of_cluster r.cfg r.my_cluster

let broadcast_local r m =
  let dsts = List.filter (fun dst -> dst <> r.ctx.Ctx.id) (local_members r) in
  Ctx.multicast r.ctx ~dsts ~size:(size_of r.cfg m) ~vcost:(vcost_of r.cfg m) m

(* Trace-phase slot key.  The local cluster's chain uses the engine seq
   (= round) directly, so the embedded Pbft engine's propose / prepare /
   commit marks, the primary's certify-share mark and the execute mark
   chain up; remote-cluster batches get a disjoint per-cluster
   namespace (rounds stay far below 2^24 in any simulated run). *)
let phase_key r ~cluster ~round =
  if cluster = r.my_cluster then round else ((cluster + 1) lsl 24) lor round

(* -- execution ----------------------------------------------------------- *)

(* Execute rounds strictly in order; each round executes its z batches
   in cluster order.  The execute thread is serialized by the CPU
   model, so we drive one round at a time and re-check afterwards. *)
let rec try_execute r =
  (* While recovering, the ledger may sit mid-round (the crash dropped
     part of an exec chain); executing the next round would append at
     the wrong heights and diverge from honest ledgers.  Catch-up
     (install_rounds) re-aligns the cursor and clears the flag. *)
  if (not r.exec_busy) && not r.recovering then begin
    let round = r.exec_round in
    let ready =
      Array.for_all (fun tr -> Hashtbl.mem tr.certified round) r.tracks
    in
    if ready then begin
      r.exec_busy <- true;
      r.exec_round <- round + 1;
      let batches =
        Array.to_list
          (Array.map (fun tr -> Hashtbl.find tr.certified round) r.tracks)
      in
      exec_batches r round batches
    end
    else update_detection_timers r
  end

and exec_batches r round = function
  | [] ->
      r.exec_busy <- false;
      (* Round done: reset the failure-detection clocks; progress means
         every cluster delivered. *)
      Array.iter
        (fun tr ->
          if tr.cluster <> r.my_cluster then begin
            tr.timeout <- Time.of_ms_f r.cfg.Config.remote_timeout_ms;
            (* Remote rounds below the execution frontier are no longer
               needed; our own are kept for a window so a new primary
               can re-serve remote view-change requests. *)
            Hashtbl.remove tr.certified round
          end
          else Hashtbl.remove tr.certified (round - 256))
        r.tracks;
      try_execute r
  | (batch, cert) :: rest ->
      r.issued <- r.issued + 1;
      r.ctx.Ctx.execute batch ~cert:(Some cert) ~on_done:(fun result ->
          r.ctx.Ctx.phase
            ~key:(phase_key r ~cluster:cert.Certificate.cluster ~round)
            ~name:"execute";
          r.appended <- r.appended + 1;
          (* Inform only local clients (§2.4), and only with a real
             execution result — [None] means this replica's state was
             already ahead (snapshot install) and up-to-date peers
             answer instead. *)
          (match result with
          | Some res
            when (not (Batch.is_noop batch)) && batch.Batch.cluster = r.my_cluster ->
              send r ~dst:batch.Batch.origin
                (Reply
                   {
                     batch_id = batch.Batch.id;
                     result_digest = res.Rdb_types.App.digest;
                     primary = Engine.primary r.engine;
                   })
          | _ -> ());
          exec_batches r round rest)

(* -- remote failure detection (initiation role, Figure 7) ---------------- *)

and update_detection_timers r =
  Array.iter
    (fun tr ->
      if tr.cluster <> r.my_cluster then begin
        let needed = r.exec_round in
        let missing = not (Hashtbl.mem tr.certified needed) in
        match (missing, tr.detect_timer) with
        | true, None ->
            (* The timer is armed *for this round* (the paper sets a
               timer for C1 at the start of round ρ): it only signals
               failure if round [needed] is still the execution
               frontier — and still missing — when it fires. *)
            tr.detect_timer <-
              Some
                (r.ctx.Ctx.set_timer ~delay:tr.timeout (fun () ->
                     tr.detect_timer <- None;
                     on_detect_timeout r tr ~armed_round:needed))
        | false, Some h ->
            r.ctx.Ctx.cancel_timer h;
            tr.detect_timer <- None
        | _ -> ()
      end)
    r.tracks

and on_detect_timeout r tr ~armed_round =
  let round = r.exec_round in
  if round = armed_round && not (Hashtbl.mem tr.certified round) then begin
    (* Figure 7, lines 2-4: detect failure, seek local agreement. *)
    let v = tr.vc_count in
    tr.vc_count <- v + 1;
    (* Exponential back-off for subsequent detections (§2.3). *)
    tr.timeout <- Time.add tr.timeout tr.timeout;
    send_drvc r tr ~round ~v
  end;
  update_detection_timers r

and send_drvc r tr ~round ~v =
  if not (Hashtbl.mem tr.drvc_sent (round, v)) then begin
    Hashtbl.replace tr.drvc_sent (round, v) ();
    r.ctx.Ctx.trace
      (lazy (Printf.sprintf "geobft[%d] drvc: cluster %d silent at round %d (v=%d)"
               r.ctx.Ctx.id tr.cluster round v));
    broadcast_local r (Drvc { failed_cluster = tr.cluster; round; vc_count = v });
    record_drvc r tr ~src_local:r.my_local ~round ~v
  end

and record_drvc r tr ~src_local ~round ~v =
  let votes =
    match Hashtbl.find_opt tr.drvc_votes (round, v) with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 8 in
        Hashtbl.replace tr.drvc_votes (round, v) h;
        h
  in
  if not (Hashtbl.mem votes src_local) then begin
    Hashtbl.replace votes src_local ();
    let count = Hashtbl.length votes in
    let f = Config.f r.cfg in
    (* Lines 8-11: adopt the detection once f+1 peers report it. *)
    if count >= f + 1 && tr.vc_count <= v then begin
      tr.vc_count <- max tr.vc_count v;
      send_drvc r tr ~round ~v
    end;
    (* Lines 12-13: with n−f in agreement, request the remote
       view-change from our same-id peer in the failed cluster. *)
    if count >= Config.quorum r.cfg && not (Hashtbl.mem tr.rvc_sent (round, v)) then begin
      Hashtbl.replace tr.rvc_sent (round, v) ();
      let payload =
        rvc_payload ~failed_cluster:tr.cluster ~round ~vc_count:v ~requester:r.ctx.Ctx.id
      in
      let signature = Keychain.sign r.ctx.Ctx.keychain ~signer:r.ctx.Ctx.id payload in
      let target = Config.replica_id r.cfg ~cluster:tr.cluster ~index:r.my_local in
      r.ctx.Ctx.charge ~stage:Cpu.Worker ~cost:(Config.sign_cost r.cfg) (fun () ->
          send r ~dst:target
            (Rvc
               {
                 failed_cluster = tr.cluster;
                 round;
                 vc_count = v;
                 requester = r.ctx.Ctx.id;
                 signature;
               }))
    end
  end

(* -- response role (us as a member of the suspected cluster) -------------- *)

and handle_rvc r (m : rvc) ~src =
  if m.failed_cluster = r.my_cluster then begin
    let payload =
      rvc_payload ~failed_cluster:m.failed_cluster ~round:m.round ~vc_count:m.vc_count
        ~requester:m.requester
    in
    if Keychain.verify r.ctx.Ctx.keychain ~signer:m.requester payload m.signature then begin
      let req_cluster = Config.cluster_of_replica r.cfg m.requester in
      if req_cluster <> r.my_cluster then begin
        (* Lines 14-15: first receipt from outside — forward locally. *)
        if not (Hashtbl.mem r.rvc_received (req_cluster, m.vc_count))
           && src = m.requester then
          broadcast_local r (Rvc m);
        let seen =
          match Hashtbl.find_opt r.rvc_received (req_cluster, m.vc_count) with
          | Some h -> h
          | None ->
              let h = Hashtbl.create 8 in
              Hashtbl.replace r.rvc_received (req_cluster, m.vc_count) h;
              h
        in
        if not (Hashtbl.mem seen m.requester) then begin
          Hashtbl.replace seen m.requester ();
          r.rvc_rounds <- (req_cluster, m.round) :: r.rvc_rounds;
          (* Line 16: f+1 distinct signers of one cluster, no recent
             local view-change, first v-th request by that cluster. *)
          let f = Config.f r.cfg in
          let recent_vc =
            Time.( < )
              (Time.sub (r.ctx.Ctx.now ()) r.last_local_vc)
              (Time.of_ms_f r.cfg.Config.local_timeout_ms)
          in
          let gate = if Mutation.is "geobft-rvc-weak" then 1 else f + 1 in
          if Hashtbl.length seen >= gate
             && (not (Hashtbl.mem r.rvc_honored (req_cluster, m.vc_count)))
             && not recent_vc
          then begin
            Evidence.note ~point:"geobft.rvc-honor" ~node:r.ctx.Ctx.id
              ~count:(Hashtbl.length seen) ~need:(f + 1);
            Hashtbl.replace r.rvc_honored (req_cluster, m.vc_count) ();
            r.remote_vcs_triggered <- r.remote_vcs_triggered + 1;
            r.ctx.Ctx.trace
              (lazy (Printf.sprintf "geobft[%d] honoring remote vc from cluster %d (v=%d)"
                       r.ctx.Ctx.id req_cluster m.vc_count));
            Engine.force_view_change r.engine
          end
        end
      end
    end
  end

(* -- inter-cluster sharing (Figure 5) -------------------------------------- *)

(* Global phase: the local primary sends m to f+1 replicas per remote
   cluster.  Targets rotate with the round so the WAN load and the
   local-phase rebroadcast duty spread over the receiving cluster. *)
and share_round r ~round (batch : Batch.t) (cert : Certificate.t) =
  let cfg = r.cfg in
  let fanout = Config.share_fanout cfg in
  let n_macs = (cfg.Config.z - 1) * fanout in
  r.ctx.Ctx.charge ~stage:Cpu.Certify
    ~cost:
      (Time.add
         (Config.hash_cost cfg ~bytes:(share_size cfg))
         (Time.of_us_f (cfg.Config.costs.Config.mac_us *. float_of_int n_macs)))
    (fun () ->
      r.ctx.Ctx.phase ~key:round ~name:"certify-share";
      (* Mutant: cluster 0's primary mislabels every share with the
         previous round number; receivers must reject it (the
         certificate binds the round), so remote clusters starve on
         cluster 0's rounds while cluster 0 runs ahead. *)
      let mround =
        if r.my_cluster = 0 && Mutation.is "geobft-share-stale" then round - 1 else round
      in
      let m = Global_share { round = mround; batch; cert } in
      (* One pooled fan-out over every (cluster, rotation) target; the
         rotation offsets still use the true round so target selection
         is unaffected by the mutant. *)
      let dsts = ref [] in
      for c = cfg.Config.z - 1 downto 0 do
        if c <> r.my_cluster then
          for i = fanout - 1 downto 0 do
            let idx = (round + i) mod cfg.Config.n in
            r.shares_sent <- r.shares_sent + 1;
            dsts := Config.replica_id cfg ~cluster:c ~index:idx :: !dsts
          done
      done;
      Ctx.multicast r.ctx ~dsts:!dsts ~size:(size_of cfg m) ~vcost:(vcost_of cfg m) m)

(* Accept a certified batch for (cluster, round); returns true if new. *)
and accept_share r ~src ~round (batch : Batch.t) (cert : Certificate.t) =
  let c = cert.Certificate.cluster in
  if c < 0 || c >= r.cfg.Config.z || c = r.my_cluster then ()
  else begin
    let tr = r.tracks.(c) in
    if (not (Hashtbl.mem tr.certified round)) && round >= r.exec_round then begin
      (* Verify once, on the certify thread, then adopt. *)
      r.ctx.Ctx.charge ~stage:Cpu.Certify ~cost:(Config.cert_verify_cost r.cfg) (fun () ->
          if
            (not (Hashtbl.mem tr.certified round))
            && round >= r.exec_round
            && cert.Certificate.seq = round
            && String.equal cert.Certificate.digest batch.Batch.digest
            && Certificate.verify ~keychain:r.ctx.Ctx.keychain ~quorum:(Config.quorum r.cfg) cert
            && Batch.verify ~keychain:r.ctx.Ctx.keychain batch
          then begin
            r.ctx.Ctx.phase ~key:(phase_key r ~cluster:c ~round) ~name:"certify-share";
            Hashtbl.replace tr.certified round (batch, cert);
            (* Local phase: receipts from outside the cluster are
               rebroadcast to all local replicas (Figure 5, line 3-4). *)
            if Config.cluster_of_replica r.cfg src <> r.my_cluster then
              broadcast_local r (Global_share { round; batch; cert });
            (* A primary that sees remote clusters running ahead while
               it has nothing to propose fills its rounds with no-ops
               (§2.5). *)
            if Engine.is_primary r.engine then begin
              let guard = ref 0 in
              while
                Engine.next_seq r.engine <= round
                && Engine.pending_count r.engine = 0
                && !guard < 4096
              do
                incr guard;
                Engine.propose_noop r.engine
              done
            end;
            try_execute r
          end)
    end
    else if
      (* Lagging peers ask via DRVC; sharing m directly (line 5-7)
         happens in the Drvc handler.  Duplicates end here. *)
      false
    then ()
  end

(* -- crash-rejoin catch-up (lib/recovery) --------------------------------- *)

(* Ledger height h holds round h/z, cluster h mod z: the fabric appends
   in execute-call order and exec_batches walks clusters in order.  A
   rejoining replica therefore pulls the missing suffix with a plain
   ledger read on any local-cluster peer; remote-cluster track entries
   are discarded right after execution, so the ledger is the only place
   old rounds survive. *)

let send_catchup_fetch r ~attempt =
  let peers = List.filter (fun i -> i <> r.ctx.Ctx.id) (local_members r) in
  match peers with
  | [] -> ()
  | peers ->
      let dst = List.nth peers (attempt mod List.length peers) in
      send r ~dst (Fetch_rounds { from = r.issued })

let serve_rounds r ~src ~from =
  let blocks = r.ctx.Ctx.ledger_read ~height:from in
  let blocks = List.filteri (fun i _ -> i < catchup_chunk) blocks in
  (* The final chunk (less than a full chunk) carries the App state
     snapshot when ledger payloads are stripped: the served blocks
     cannot be replayed, so state must ship alongside the suffix. *)
  let state =
    if List.length blocks < catchup_chunk then r.ctx.Ctx.state_snapshot () else None
  in
  (* Always answer, even when empty: an empty reply tells the requester
     it has reached our executed frontier. *)
  send r ~dst:src (Round_data { from; eng_view = Engine.view r.engine; blocks; state })

let install_rounds r ~from ~eng_view ~state blocks =
  if r.recovering && (not r.exec_busy) && from = r.issued then begin
    (* Ratchet the App forward before replaying the suffix: with
       stripped payloads the replayed blocks cannot rebuild state, so
       the snapshot is the state and the appends just fill the ledger
       (their [on_done] sees [None]). *)
    Option.iter r.ctx.Ctx.app_restore state;
    let z = r.cfg.Config.z in
    let len = List.length blocks in
    (* Install only complete rounds: a partial round would collide with
       the round-at-a-time normal path once the frontier resumes. *)
    let usable = ((from + len) / z * z) - from in
    let filled = ref 0 in
    (* note_external_commit can synchronously unblock queued local
       commits whose on_committed handler calls try_execute; hold
       exec_busy so the normal path cannot interleave mid-install. *)
    r.exec_busy <- true;
    List.iteri
      (fun i (batch, cert) ->
        if i < usable then begin
          let h = from + i in
          r.issued <- r.issued + 1;
          incr filled;
          if h mod z = r.my_cluster then
            ignore (Engine.note_external_commit r.engine ~seq:(h / z) batch);
          r.ctx.Ctx.execute batch ~cert ~on_done:(fun _ -> r.appended <- r.appended + 1)
        end)
      blocks;
    r.exec_busy <- false;
    if !filled > 0 then begin
      Recovery.Stats.note_holes r.stats !filled;
      Recovery.Stats.note_state_transfer r.stats
    end;
    (* [usable] ends on a round boundary, so the cursor division is
       exact; a dropped exec chain may have left exec_round ahead. *)
    r.exec_round <- max r.exec_round (r.issued / z);
    Engine.adopt_view r.engine ~view:eng_view;
    if len < catchup_chunk then begin
      (* The peer's ledger is exhausted: we are at its executed
         frontier.  Resume the normal path; any residual gap to the
         live frontier heals via shares and DRVC re-serving. *)
      r.recovering <- false;
      update_detection_timers r;
      try_execute r
    end
    else send_catchup_fetch r ~attempt:0
  end

(* -- construction ------------------------------------------------------------ *)

let create_replica (ctx : msg Ctx.t) =
  let cfg = ctx.Ctx.config in
  let my_cluster = Config.cluster_of_replica cfg ctx.Ctx.id in
  let members = Array.of_list (Config.replicas_of_cluster cfg my_cluster) in
  let tracks =
    Array.init cfg.Config.z (fun cluster ->
        {
          cluster;
          certified = Hashtbl.create 128;
          vc_count = 0;
          detect_timer = None;
          timeout = Time.of_ms_f cfg.Config.remote_timeout_ms;
          drvc_votes = Hashtbl.create 8;
          drvc_sent = Hashtbl.create 8;
          rvc_sent = Hashtbl.create 8;
        })
  in
  let r_ref = ref None in
  let on_committed ~seq batch cert =
    match !r_ref with
    | None -> ()
    | Some r ->
        (* Local replication of round [seq] finished in our cluster. *)
        Hashtbl.replace r.tracks.(my_cluster).certified seq (batch, cert);
        if Engine.is_primary r.engine then share_round r ~round:seq batch cert;
        try_execute r
  in
  let on_view_change ~view:_ =
    match !r_ref with
    | None -> ()
    | Some r ->
        r.last_local_vc <- r.ctx.Ctx.now ();
        (* A new primary cannot know which rounds its (possibly faulty)
           predecessor actually delivered (§2.3: it "determines the
           rounds for which it needs to send requests").  It re-shares
           (a) every round remote view-change requests asked for and
           (b) the whole committed-but-possibly-undelivered window, to
           every remote cluster. *)
        if Engine.is_primary r.engine then begin
          let upto = Engine.next_emit r.engine - 1 in
          let requests = r.rvc_rounds in
          r.rvc_rounds <- [];
          let reshare c2 ~from_round =
            for round = from_round to upto do
              match Hashtbl.find_opt r.tracks.(my_cluster).certified round with
              | Some (b, cert) ->
                  let f = Config.share_fanout r.cfg - 1 in
                  for i = 0 to f do
                    let idx = (round + i) mod r.cfg.Config.n in
                    let dst = Config.replica_id r.cfg ~cluster:c2 ~index:idx in
                    let round =
                      if r.my_cluster = 0 && Mutation.is "geobft-share-stale" then round - 1
                      else round
                    in
                    send r ~dst (Global_share { round; batch = b; cert })
                  done
              | None -> ()
            done
          in
          List.iter (fun (c2, from_round) -> reshare c2 ~from_round) requests;
          let recent = max 0 (r.exec_round - 2) in
          for c2 = 0 to r.cfg.Config.z - 1 do
            if c2 <> r.my_cluster then reshare c2 ~from_round:recent
          done
        end
  in
  let engine_ctx = Ctx.map_send (fun m -> Local m) ctx in
  let engine =
    Engine.create ~ctx:engine_ctx ~members ~cluster:my_cluster ~on_committed ~on_view_change ()
  in
  let r =
    {
      ctx;
      cfg;
      my_cluster;
      my_local = Config.local_index cfg ctx.Ctx.id;
      engine;
      tracks;
      exec_round = 0;
      exec_busy = false;
      rvc_received = Hashtbl.create 8;
      rvc_honored = Hashtbl.create 8;
      rvc_rounds = [];
      last_local_vc = Time.sub Time.zero (Time.sec 3600);
      shares_sent = 0;
      remote_vcs_triggered = 0;
      issued = 0;
      appended = 0;
      recovering = false;
      stats = Recovery.Stats.create ();
      task = None;
    }
  in
  r_ref := Some r;
  (* A backup whose local engine dropped messages past its acceptance
     window (the cluster raced ahead while one delayed pre-prepare
     stalled its frontier) never crashed, so only this hook notices it
     is starving; the crash-rejoin fetch path brings it back. *)
  Engine.set_on_behind engine
    (Some
       (fun ~seq:_ ->
         match !r_ref with
         | Some r when not r.recovering ->
             r.recovering <- true;
             Recovery.Stats.note_retransmit r.stats;
             send_catchup_fetch r ~attempt:0;
             (match r.task with Some task -> Recovery.Task.start task | None -> ())
         | _ -> ()));
  r.task <-
    Some
      (Recovery.Task.create
         ~set_timer:(fun ~delay k -> ignore (ctx.Ctx.set_timer ~delay k))
         ~rng:ctx.Ctx.rng
         ~base:(Time.of_ms_f cfg.Config.local_timeout_ms)
         ~cap:(Time.of_ms_f (8. *. cfg.Config.local_timeout_ms))
         ~needed:(fun () -> r.recovering)
         ~progress:(fun () -> r.issued)
         ~fire:(fun ~attempt ->
           Recovery.Stats.note_retransmit r.stats;
           send_catchup_fetch r ~attempt)
         ());
  (* Failure detection is armed from the start of round 0. *)
  update_detection_timers r;
  r

let engine r = r.engine
let exec_round r = r.exec_round
let remote_vcs_triggered r = r.remote_vcs_triggered

(* -- adversarial view (lib/adversary) -------------------------------------- *)

(* [Share] covers the certified inter-cluster traffic of Figure 5 —
   silencing it from a corrupt primary is equivocation-by-omission
   (Example 2.4 case 1), which the remote view-change machinery must
   repair.  Equivocation with conflicting *content* is modelled on the
   local pre-prepare (a signed no-op in the same slot); forging a
   conflicting [Global_share] is not modelled because its certificate
   binds the batch digest, so receivers reject any tampering. *)
let adversary : msg Rdb_types.Interpose.view =
  let open Rdb_types.Interpose in
  let classify = function
    | Messages.Local em -> (
        match em with
        | Rdb_pbft.Messages.Preprepare _ -> Proposal
        | Rdb_pbft.Messages.Prepare _ | Rdb_pbft.Messages.Commit _ -> Vote
        | Rdb_pbft.Messages.Checkpoint _ -> Sync
        | Rdb_pbft.Messages.ViewChange _ | Rdb_pbft.Messages.NewView _ -> View_change
        | Rdb_pbft.Messages.Forward _ -> Client)
    | Messages.Request _ | Messages.Read_request _ | Messages.Reply _ -> Client
    | Messages.Global_share _ -> Share
    | Messages.Drvc _ | Messages.Rvc _ -> View_change
    | Messages.Fetch_rounds _ | Messages.Round_data _ -> Sync
  in
  let conflict ~keychain ~nonce = function
    | Messages.Local (Rdb_pbft.Messages.Preprepare { view; seq; batch }) ->
        let forged =
          Batch.noop ~keychain ~cluster:batch.Batch.cluster ~origin:batch.Batch.origin
            ~created:batch.Batch.created ~nonce
        in
        Some (Messages.Local (Rdb_pbft.Messages.Preprepare { view; seq; batch = forged }))
    | _ -> None
  in
  { classify; conflict }

(* -- dispatch ----------------------------------------------------------------- *)

let on_message (r : replica) ~src (m : msg) =
  match m with
  | Local em -> Engine.on_message r.engine ~src em
  | Request batch ->
      if batch.Batch.cluster = r.my_cluster && Batch.verify ~keychain:r.ctx.Ctx.keychain batch
      then Engine.submit_batch r.engine batch
  | Read_request batch ->
      (* Consensus-bypass read, served by the client's local cluster
         from current replica state (f+1 matching digests at the
         client prove a committed prefix). *)
      if
        batch.Batch.cluster = r.my_cluster
        && Batch.verify ~keychain:r.ctx.Ctx.keychain batch
        && Batch.read_only batch
      then
        r.ctx.Ctx.read_execute batch ~on_done:(fun res ->
            send r ~dst:batch.Batch.origin
              (Reply
                 {
                   batch_id = batch.Batch.id;
                   result_digest = res.Rdb_types.App.digest;
                   primary = Engine.primary r.engine;
                 }))
  | Global_share { round; batch; cert } -> accept_share r ~src ~round batch cert
  | Drvc { failed_cluster; round; vc_count } ->
      if failed_cluster <> r.my_cluster
         && Config.cluster_of_replica r.cfg src = r.my_cluster then begin
        let tr = r.tracks.(failed_cluster) in
        (* Lines 5-7: if we already hold m, hand it to the requester. *)
        (match Hashtbl.find_opt tr.certified round with
        | Some (b, cert) -> send r ~dst:src (Global_share { round; batch = b; cert })
        | None -> ());
        record_drvc r tr ~src_local:(Config.local_index r.cfg src) ~round ~v:vc_count
      end
  | Rvc rvc -> handle_rvc r rvc ~src
  | Fetch_rounds { from } ->
      if Config.cluster_of_replica r.cfg src = r.my_cluster then serve_rounds r ~src ~from
  | Round_data { from; eng_view; blocks; state } ->
      install_rounds r ~from ~eng_view ~state blocks
  | Reply _ -> ()

(* -- client agent --------------------------------------------------------------- *)

type client = { core : msg Client_core.t; primary_guess : int ref }

let create_client (ctx : msg Ctx.t) ~cluster =
  let cfg = ctx.Ctx.config in
  let size = Wire.batch_bytes ~batch_size:cfg.Config.batch_size in
  let vcost = Config.recv_floor_cost cfg ~bytes:size in
  (* Clients are assigned to their local cluster (§2); requests go to
     its current primary — initially the view-0 primary, then whatever
     the replies report after view changes. *)
  let primary_guess = ref (Config.replica_id cfg ~cluster ~index:0) in
  let transmit ~retry (batch : Batch.t) =
    if retry then
      (* Local broadcast: backups forward to the primary and arm the
         censorship timer. *)
      Ctx.multicast ctx
        ~dsts:(Config.replicas_of_cluster cfg cluster)
        ~size ~vcost (Request batch)
    else ctx.Ctx.send ~dst:!primary_guess ~size ~vcost (Request batch)
  in
  (* Read-only batches bypass consensus: every local replica answers
     from its state, f+1 matching digests suffice. *)
  let transmit_read (batch : Batch.t) =
    Ctx.multicast ctx
      ~dsts:(Config.replicas_of_cluster cfg cluster)
      ~size ~vcost (Read_request batch)
  in
  {
    core =
      Client_core.create ~ctx ~threshold:(Config.weak_quorum cfg) ~transmit_read ~transmit ();
    primary_guess;
  }

let submit (c : client) batch = Client_core.submit c.core batch

let on_client_message (c : client) ~src (m : msg) =
  match m with
  | Reply { batch_id; result_digest; primary } ->
      c.primary_guess := primary;
      Client_core.on_reply c.core ~src ~batch_id ~result_digest
  | _ -> ()

let view_changes (r : replica) = Engine.n_view_changes r.engine

(* -- crash-recover hook --------------------------------------------------- *)

let on_recover (r : replica) =
  Engine.on_recover r.engine;
  (* Timer callbacks and exec continuations were dropped at fire time
     while crashed: the exec chain wedges exec_busy, the detection
     timers hold dead handles, and in-flight executes lost their
     ledger appends. *)
  r.exec_busy <- false;
  r.issued <- r.appended;
  Array.iter
    (fun tr ->
      (match tr.detect_timer with
      | Some h -> r.ctx.Ctx.cancel_timer h
      | None -> ());
      tr.detect_timer <- None;
      tr.timeout <- Time.of_ms_f r.cfg.Config.remote_timeout_ms)
    r.tracks;
  r.recovering <- true;
  send_catchup_fetch r ~attempt:0;
  (match r.task with Some task -> Recovery.Task.start task | None -> ());
  update_detection_timers r

let recovery (r : replica) = Recovery.Stats.to_protocol r.stats
let disable_recovery (r : replica) = Engine.set_on_behind r.engine None
