(** GeoBFT wire messages (paper §2): the wrapped local-Pbft traffic,
    the inter-cluster messages of Figures 5 and 7, and client traffic.
    See the .ml for the per-constructor mapping onto the paper's
    pseudo-code lines. *)

module Batch = Rdb_types.Batch
module Certificate = Rdb_types.Certificate
module Schnorr = Rdb_crypto.Schnorr
module App = Rdb_types.App

type rvc = {
  failed_cluster : int;  (** C1: the cluster asked to view-change *)
  round : int;           (** ρ: first round the requester is missing *)
  vc_count : int;        (** v: requester's remote view-change counter *)
  requester : int;       (** global node id of the signer, in C2 *)
  signature : Schnorr.signature;
}

type msg =
  | Local of Rdb_pbft.Messages.msg
  | Request of Batch.t
  | Read_request of Batch.t
      (** Consensus-bypass read-only batch, served from local-cluster
          replica state (client waits for f+1 matching digests). *)
  | Global_share of { round : int; batch : Batch.t; cert : Certificate.t }
  | Drvc of { failed_cluster : int; round : int; vc_count : int }
  | Rvc of rvc
  | Reply of { batch_id : int; result_digest : string; primary : int }
  | Fetch_rounds of { from : int }
      (** Crash-rejoin: ask a local peer for the ledger suffix. *)
  | Round_data of {
      from : int;
      eng_view : int;
      blocks : (Batch.t * Certificate.t option) list;
      state : App.snapshot option;
          (** App state snapshot, attached to the final chunk when
              ledger payloads are stripped and replay cannot rebuild
              state. *)
    }

val rvc_payload : failed_cluster:int -> round:int -> vc_count:int -> requester:int -> string
(** The signed payload of an RVC request (Figure 7, line 13). *)

val kind : msg -> string
