(** The GeoBFT replica (paper §2) — the paper's primary contribution.
    Satisfies {!Rdb_types.Protocol.S}.

    Per round ρ: local replication via the embedded Pbft engine
    (§2.2), optimistic inter-cluster sharing of (batch, certificate) to
    f+1 replicas per remote cluster with local rebroadcast (§2.3,
    Figure 5), and round-ordered execution with replies to local
    clients only (§2.4).  Failures of a remote cluster's primary are
    handled by the full remote view-change protocol of Figure 7:
    timer detection with exponential back-off, DRVC local agreement,
    signed RVC requests to same-id replicas, in-cluster forwarding,
    and the guarded honor rule with replay protection that forces a
    local view change at the faulty cluster. *)

module Batch = Rdb_types.Batch
module Ctx = Rdb_types.Ctx
module Engine = Rdb_pbft.Engine

val name : string

type msg = Messages.msg

type replica
type client

val create_replica : msg Ctx.t -> replica
val on_message : replica -> src:int -> msg -> unit
val view_changes : replica -> int

val on_recover : replica -> unit
(** Crash-rejoin: unwedge the dropped exec chain and detection timers,
    then catch up by pulling the missing ledger suffix (complete rounds
    only) from local-cluster peers with backoff until back at an
    executed frontier. *)

val recovery : replica -> Rdb_types.Protocol.recovery_stats

val disable_recovery : replica -> unit
(** Test hook: permanently turn off recovery machinery running outside
    [on_recover] (the chaos suite's recovery-disabled mode). *)

val engine : replica -> Engine.t
(** This replica's local-replication Pbft engine. *)

val exec_round : replica -> int
(** Next global round to execute (all below are executed). *)

val remote_vcs_triggered : replica -> int
(** Remote view-change requests this replica honored as a member of
    the suspected cluster (Figure 7, line 16-17). *)

val adversary : msg Rdb_types.Interpose.view
(** Adversarial message classification ([Share] = the certified
    inter-cluster traffic of Figure 5, so silencing it models
    equivocation-by-omission, Example 2.4 case 1); content
    equivocation forges a conflicting local pre-prepare. *)

val create_client : msg Ctx.t -> cluster:int -> client
val submit : client -> Batch.t -> unit
val on_client_message : client -> src:int -> msg -> unit
