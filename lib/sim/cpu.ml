(* Per-node CPU model, shaped after ResilientDB's multi-threaded
   pipeline (paper §3, Figure 9).

   Each replica runs a fixed set of single-threaded stages:

     input0/1 — the two input threads: parse, MAC-check and verify
                incoming messages (the fabric alternates between them)
     batching — the primary's batch-assembly thread
     worker   — consensus message processing (Pbft phases, votes)
     certify  — certificate construction/verification, global sharing
     execute  — transaction execution (strictly sequential)
     misc     — everything else (clients, timers needing CPU)

   A unit of work of cost c requested at time t on stage s starts at
   max(t, stage_free), occupies the stage until start + c, and its
   continuation fires then.  Because stages are serialized exactly like
   the paper's threads, each stage imposes a throughput ceiling
   (1/cost), which is how the simulator reproduces the compute-bound
   behaviours in §4 (e.g. the execute thread capping every protocol at
   the same per-replica execution rate, or signature-heavy Steward
   saturating its worker).

   Fast path: when the stage is idle and the cost is tiny (a MAC check),
   the continuation runs synchronously; this keeps the event count of
   all-to-all Pbft floods manageable without changing any ordering that
   protocols can observe. *)

type stage = Input0 | Input1 | Batching | Worker | Certify | Execute | Misc

let n_stages = 7

let stage_index = function
  | Input0 -> 0
  | Input1 -> 1
  | Batching -> 2
  | Worker -> 3
  | Certify -> 4
  | Execute -> 5
  | Misc -> 6

let stage_name = function
  | Input0 -> "input0"
  | Input1 -> "input1"
  | Batching -> "batching"
  | Worker -> "worker"
  | Certify -> "certify"
  | Execute -> "execute"
  | Misc -> "misc"

type t = {
  engine : Engine.t;
  busy : Time.t array array;        (* busy.(node).(stage) = busy-until *)
  busy_ns : float array array;      (* accumulated busy time *)
  sync_threshold : Time.t;          (* run continuations inline below this cost *)
  trace : Rdb_trace.Trace.t option; (* per-charge spans; None = no overhead *)
  shard_of : int -> int;            (* engine shard owning each node *)
}

let create ?(sync_threshold = Time.us 5) ?trace ?(shard_of = fun _ -> 0) ~engine ~n_nodes () =
  {
    engine;
    busy = Array.init n_nodes (fun _ -> Array.make n_stages Time.zero);
    busy_ns = Array.init n_nodes (fun _ -> Array.make n_stages 0.);
    sync_threshold;
    trace;
    shard_of;
  }

(* Charge [cost] of CPU work on [stage] of [node]; run [k] on completion.
   The completion event goes to the node's own shard: charges are almost
   always made from there already (the fast path), but control-context
   charges (fault injection poking a node) must not leak onto shard 0. *)
let charge t ~node ~stage ~cost k =
  let s = stage_index stage in
  let now = Engine.now t.engine in
  let start = Time.max now t.busy.(node).(s) in
  let finish = Time.add start cost in
  t.busy.(node).(s) <- finish;
  t.busy_ns.(node).(s) <- t.busy_ns.(node).(s) +. Int64.to_float cost;
  (match t.trace with
  | None -> ()
  | Some tr -> Rdb_trace.Trace.cpu_span tr ~node ~stage:(stage_name stage) ~start ~dur:cost);
  if Time.( <= ) finish (Time.add now t.sync_threshold) && Time.compare start now = 0 then k ()
  else ignore (Engine.schedule_at_shard t.engine ~shard:(t.shard_of node) ~at:finish k)

(* Stage-busy seconds accumulated by [node] on [stage]. *)
let busy_sec t ~node ~stage = t.busy_ns.(node).(stage_index stage) /. 1e9

let total_busy_sec t ~node =
  Array.fold_left (fun acc ns -> acc +. (ns /. 1e9)) 0. t.busy_ns.(node)
