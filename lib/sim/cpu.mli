(** Per-node CPU model, shaped after ResilientDB's multi-threaded
    pipeline (paper §3, Figure 9): each node runs a fixed set of
    single-threaded stages; work on a stage serializes, work on
    different stages (or nodes) proceeds in parallel.  Stage throughput
    ceilings are how the simulator reproduces the paper's compute-bound
    behaviours. *)

type stage =
  | Input0      (** first of the two input threads (message verification) *)
  | Input1      (** second input thread *)
  | Batching    (** the primary's batch-assembly thread *)
  | Worker      (** consensus message processing *)
  | Certify     (** certificate construction/verification, global sharing *)
  | Execute     (** strictly-sequential transaction execution *)
  | Misc        (** clients, output threads, everything else *)

val stage_name : stage -> string

type t

val create :
  ?sync_threshold:Time.t ->
  ?trace:Rdb_trace.Trace.t ->
  ?shard_of:(int -> int) ->
  engine:Engine.t ->
  n_nodes:int ->
  unit ->
  t
(** [sync_threshold] (default 5 us): work cheaper than this on an idle
    stage runs its continuation synchronously — an optimization that
    keeps all-to-all message floods tractable without observable
    reordering.  [trace] records one span per [charge] (stage name,
    start, cost); omitting it keeps tracing free.  [shard_of] maps a
    node to its engine shard (default: everything on shard 0) so
    completion events land on the node's own heap. *)

val charge : t -> node:int -> stage:stage -> cost:Time.t -> (unit -> unit) -> unit
(** [charge t ~node ~stage ~cost k] runs [k] when the work completes. *)

val busy_sec : t -> node:int -> stage:stage -> float
(** Accumulated busy seconds of one stage (utilization metrics). *)

val total_busy_sec : t -> node:int -> float
