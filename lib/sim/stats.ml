(* Network traffic counters, split local (intra-region) vs global
   (inter-region) — the distinction at the heart of the paper (Table 2
   counts exactly these two message classes per consensus decision). *)

type t = {
  mutable local_msgs : int;
  mutable global_msgs : int;
  mutable local_bytes : int;
  mutable global_bytes : int;
  mutable dropped_msgs : int;
  mutable dropped_bytes : int;
}

let create () =
  {
    local_msgs = 0;
    global_msgs = 0;
    local_bytes = 0;
    global_bytes = 0;
    dropped_msgs = 0;
    dropped_bytes = 0;
  }

let count_sent t ~local ~size =
  if local then begin
    t.local_msgs <- t.local_msgs + 1;
    t.local_bytes <- t.local_bytes + size
  end
  else begin
    t.global_msgs <- t.global_msgs + 1;
    t.global_bytes <- t.global_bytes + size
  end

let count_dropped t ~size =
  t.dropped_msgs <- t.dropped_msgs + 1;
  t.dropped_bytes <- t.dropped_bytes + size

let local_msgs t = t.local_msgs
let global_msgs t = t.global_msgs
let local_bytes t = t.local_bytes
let global_bytes t = t.global_bytes
let dropped_msgs t = t.dropped_msgs
let dropped_bytes t = t.dropped_bytes

type snapshot = {
  l_msgs : int;
  g_msgs : int;
  l_bytes : int;
  g_bytes : int;
  d_msgs : int;
  d_bytes : int;
}

let snapshot t =
  {
    l_msgs = t.local_msgs;
    g_msgs = t.global_msgs;
    l_bytes = t.local_bytes;
    g_bytes = t.global_bytes;
    d_msgs = t.dropped_msgs;
    d_bytes = t.dropped_bytes;
  }

(* Difference of two snapshots: traffic in the measurement window. *)
let diff ~after ~before =
  {
    l_msgs = after.l_msgs - before.l_msgs;
    g_msgs = after.g_msgs - before.g_msgs;
    l_bytes = after.l_bytes - before.l_bytes;
    g_bytes = after.g_bytes - before.g_bytes;
    d_msgs = after.d_msgs - before.d_msgs;
    d_bytes = after.d_bytes - before.d_bytes;
  }
