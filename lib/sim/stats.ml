(* Network traffic counters, split local (intra-region) vs global
   (inter-region) — the distinction at the heart of the paper (Table 2
   counts exactly these two message classes per consensus decision).

   Counters are [Atomic.t]: sends happen inside shard epochs, which may
   run on parallel domains.  Totals are exact (atomic increments
   commute); snapshots are taken only at epoch barriers, where all
   shards are stopped. *)

type t = {
  local_msgs : int Atomic.t;
  global_msgs : int Atomic.t;
  local_bytes : int Atomic.t;
  global_bytes : int Atomic.t;
  dropped_msgs : int Atomic.t;
  dropped_bytes : int Atomic.t;
}

let create () =
  {
    local_msgs = Atomic.make 0;
    global_msgs = Atomic.make 0;
    local_bytes = Atomic.make 0;
    global_bytes = Atomic.make 0;
    dropped_msgs = Atomic.make 0;
    dropped_bytes = Atomic.make 0;
  }

let count_sent t ~local ~size =
  if local then begin
    ignore (Atomic.fetch_and_add t.local_msgs 1);
    ignore (Atomic.fetch_and_add t.local_bytes size)
  end
  else begin
    ignore (Atomic.fetch_and_add t.global_msgs 1);
    ignore (Atomic.fetch_and_add t.global_bytes size)
  end

let count_dropped t ~size =
  ignore (Atomic.fetch_and_add t.dropped_msgs 1);
  ignore (Atomic.fetch_and_add t.dropped_bytes size)

let local_msgs t = Atomic.get t.local_msgs
let global_msgs t = Atomic.get t.global_msgs
let local_bytes t = Atomic.get t.local_bytes
let global_bytes t = Atomic.get t.global_bytes
let dropped_msgs t = Atomic.get t.dropped_msgs
let dropped_bytes t = Atomic.get t.dropped_bytes

type snapshot = {
  l_msgs : int;
  g_msgs : int;
  l_bytes : int;
  g_bytes : int;
  d_msgs : int;
  d_bytes : int;
}

let snapshot t =
  {
    l_msgs = Atomic.get t.local_msgs;
    g_msgs = Atomic.get t.global_msgs;
    l_bytes = Atomic.get t.local_bytes;
    g_bytes = Atomic.get t.global_bytes;
    d_msgs = Atomic.get t.dropped_msgs;
    d_bytes = Atomic.get t.dropped_bytes;
  }

(* Difference of two snapshots: traffic in the measurement window. *)
let diff ~after ~before =
  {
    l_msgs = after.l_msgs - before.l_msgs;
    g_msgs = after.g_msgs - before.g_msgs;
    l_bytes = after.l_bytes - before.l_bytes;
    g_bytes = after.g_bytes - before.g_bytes;
    d_msgs = after.d_msgs - before.d_msgs;
    d_bytes = after.d_bytes - before.d_bytes;
  }
