(* Deployment topology: regions, the latency/bandwidth matrix between
   them, and the region placement of every simulated node.

   The calibration data is Table 1 of the paper: real ping round-trip
   times and iperf bandwidths measured between Google Cloud n1 machines
   in six regions.  These numbers are the ground truth our simulated WAN
   reproduces (the `table1` bench prints this matrix and a measured
   in-simulator probe next to it). *)

type region = { name : string; short : string }

let oregon = { name = "Oregon"; short = "O" }
let iowa = { name = "Iowa"; short = "I" }
let montreal = { name = "Montreal"; short = "M" }
let belgium = { name = "Belgium"; short = "B" }
let taiwan = { name = "Taiwan"; short = "T" }
let sydney = { name = "Sydney"; short = "S" }

(* The paper's region order: experiments add regions in this sequence
   (§4: "we select regions in the order Oregon, Iowa, Montreal,
   Belgium, Taiwan, and Sydney"). *)
let paper_regions = [| oregon; iowa; montreal; belgium; taiwan; sydney |]

(* Table 1, ping round-trip times in ms.  Intra-region RTT is "<= 1";
   we use 0.5 ms.  The matrix is symmetric. *)
let paper_rtt_ms =
  [|
    (*            O      I      M      B      T      S   *)
    (* O *) [| 0.5; 38.0; 65.0; 136.0; 118.0; 161.0 |];
    (* I *) [| 38.0; 0.5; 33.0; 98.0; 153.0; 172.0 |];
    (* M *) [| 65.0; 33.0; 0.5; 82.0; 186.0; 202.0 |];
    (* B *) [| 136.0; 98.0; 82.0; 0.5; 252.0; 270.0 |];
    (* T *) [| 118.0; 153.0; 186.0; 252.0; 0.5; 137.0 |];
    (* S *) [| 161.0; 172.0; 202.0; 270.0; 137.0; 0.5 |];
  |]

(* Table 1, bandwidth in Mbit/s (symmetric). *)
let paper_bw_mbps =
  [|
    (*            O        I       M       B       T       S  *)
    (* O *) [| 7998.0; 669.0; 371.0; 194.0; 188.0; 136.0 |];
    (* I *) [| 669.0; 10004.0; 752.0; 243.0; 144.0; 120.0 |];
    (* M *) [| 371.0; 752.0; 7977.0; 283.0; 111.0; 102.0 |];
    (* B *) [| 194.0; 243.0; 283.0; 9728.0; 79.0; 66.0 |];
    (* T *) [| 188.0; 144.0; 111.0; 79.0; 7998.0; 160.0 |];
    (* S *) [| 136.0; 120.0; 102.0; 66.0; 160.0; 7977.0 |];
  |]

type t = {
  regions : region array;
  rtt_ms : float array array;      (* indexed by region *)
  bw_mbps : float array array;
  node_region : int array;         (* region index of every node id *)
}

let n_nodes t = Array.length t.node_region
let n_regions t = Array.length t.regions
let region_of t node = t.node_region.(node)
let same_region t a b = t.node_region.(a) = t.node_region.(b)

let rtt_ms t ~a ~b = t.rtt_ms.(t.node_region.(a)).(t.node_region.(b))
let one_way_ms t ~a ~b = rtt_ms t ~a ~b /. 2.0
let bw_mbps t ~a ~b = t.bw_mbps.(t.node_region.(a)).(t.node_region.(b))

(* The smallest one-way latency between two distinct regions: the
   conservative-DES lookahead for cluster-per-region sharding (no
   cross-region message can arrive sooner than this after its send).
   [infinity] for single-region topologies (no cross-region traffic to
   bound). *)
let min_cross_region_one_way_ms t =
  let r = n_regions t in
  let m = ref infinity in
  for i = 0 to r - 1 do
    for j = 0 to r - 1 do
      if i <> j && t.rtt_ms.(i).(j) /. 2.0 < !m then m := t.rtt_ms.(i).(j) /. 2.0
    done
  done;
  !m

(* Beyond the paper's six regions the matrix tiles (the z=30+ scaling
   axis): region [i] inherits paper region [i mod 6]'s Table 1 row, and
   two *distinct* regions mapped to the same paper slot behave as
   nearby datacenters of that geography — [tile_rtt_ms] apart at
   intra-continent bandwidth — rather than collapsing into one region
   (cross-region latency must stay positive: it is the conservative
   engine's lookahead). *)
let tile_rtt_ms = 10.0
let tile_bw_mbps = 1_000.0

(* Build a topology over the first [n_regions] paper regions (tiled
   beyond six) with a caller-supplied node placement. *)
let of_paper ~n_regions ~node_region =
  if n_regions < 1 then invalid_arg "Topology.of_paper: n_regions must be >= 1";
  Array.iter
    (fun r ->
      if r < 0 || r >= n_regions then invalid_arg "Topology.of_paper: node region out of range")
    node_region;
  let base = Array.length paper_regions in
  if n_regions <= base then
    let slice m = Array.init n_regions (fun i -> Array.sub m.(i) 0 n_regions) in
    {
      regions = Array.sub paper_regions 0 n_regions;
      rtt_ms = slice paper_rtt_ms;
      bw_mbps = slice paper_bw_mbps;
      node_region;
    }
  else
    let regions =
      Array.init n_regions (fun i ->
          let p = paper_regions.(i mod base) in
          if i < base then p
          else
            {
              name = Printf.sprintf "%s-%d" p.name (i / base);
              short = Printf.sprintf "%s%d" p.short (i / base);
            })
    in
    let tiled paper same i j =
      if i = j then paper.(i mod base).(i mod base)
      else if i mod base = j mod base then same
      else paper.(i mod base).(j mod base)
    in
    {
      regions;
      rtt_ms =
        Array.init n_regions (fun i ->
            Array.init n_regions (fun j -> tiled paper_rtt_ms tile_rtt_ms i j));
      bw_mbps =
        Array.init n_regions (fun i ->
            Array.init n_regions (fun j -> tiled paper_bw_mbps tile_bw_mbps i j));
      node_region;
    }

(* Standard placement used by the experiments: [z] clusters of [n]
   replicas each, cluster [c] entirely inside region [c], plus one
   client-group node per cluster co-located with its cluster.  Node ids:
   replicas first ([c * n + i]), then client nodes ([z*n + c]). *)
let clustered ~z ~n =
  let node_region = Array.init ((z * n) + z) (fun id -> if id < z * n then id / n else id - (z * n)) in
  of_paper ~n_regions:z ~node_region

(* A custom synthetic topology (uniform latency/bandwidth), for tests
   and for deployments that do not follow the paper's six regions. *)
let uniform ~n_regions ~rtt_ms:r ~bw_mbps:b ~local_rtt_ms ~local_bw_mbps ~node_region =
  {
    regions = Array.init n_regions (fun i -> { name = Printf.sprintf "R%d" i; short = string_of_int i });
    rtt_ms =
      Array.init n_regions (fun i ->
          Array.init n_regions (fun j -> if i = j then local_rtt_ms else r));
    bw_mbps =
      Array.init n_regions (fun i ->
          Array.init n_regions (fun j -> if i = j then local_bw_mbps else b));
    node_region;
  }
