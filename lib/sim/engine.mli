(** The discrete-event engine: a clock plus an ordered queue of pending
    events (closures), shardable for conservative parallel execution.

    Determinism contract: with the same seed and the same sequence of
    [schedule] calls, two runs execute identical event sequences — ties
    in time break by scheduling order.  With [shards > 1], each shard's
    event sequence is additionally independent of which domain executes
    it (see DESIGN.md §15), so sequential and domain-parallel runs are
    indistinguishable, trace digest included. *)

type t

type timer
(** Handle to a scheduled event, for cancellation.  Event records are
    pooled and recycled after execution; a generation counter makes
    cancelling an already-fired (recycled) handle a safe no-op. *)

val create : ?seed:int -> ?shards:int -> ?lookahead:Time.t -> unit -> t
(** [shards] (default 1) partitions the event queue; cross-shard events
    must respect [lookahead] (the conservative-DES horizon: a
    cross-shard event scheduled during an epoch starting at T0 may not
    be earlier than T0 + lookahead).  Single-shard engines behave
    exactly like the pre-sharding engine. *)

val n_shards : t -> int

val current_shard_id : t -> int
(** Shard the calling domain is executing (0 outside event
    execution).  Lets per-shard sinks (the tracer) route records. *)

val set_jobs : t -> int -> unit
(** Domains used per epoch (default 1 = sequential; capped at the shard
    count).  Changing it never changes results — only wall-clock. *)

val lookahead : t -> Time.t

val now : t -> Time.t
(** Inside event execution: the executing shard's clock.  Outside: the
    global clock (all shard clocks agree at barriers). *)

val rng : t -> Rdb_prng.Rng.t
(** The engine's deterministic randomness source: the executing shard's
    stream inside event execution, the root stream outside.  On a
    single-shard engine both are the same stream. *)

val rng_of_shard : t -> shard:int -> Rdb_prng.Rng.t

val executed_events : t -> int
(** Events executed so far (diagnostics). *)

val pending_events : t -> int
(** Events waiting in shard heaps and staged outboxes (not controls). *)

val pooled_events : t -> int
(** Recycled event records currently in freelists (diagnostics). *)

val set_defer_hook : t -> (int -> bool) option -> unit
(** Schedule-exploration hook: when installed, each [schedule_at] call
    asks the hook (with a 0-based call counter, reset by this setter)
    whether the event should be pushed {e behind} its equal-timestamp
    group.  Deferred events keep their relative order.  This permutes
    only ties in simulated time — a legal reordering of simultaneous
    events — and is off ([None]) in every normal run.  Single-shard
    engines only. *)

val schedule_calls : t -> int
(** Schedule calls observed since the defer hook was installed. *)

val defer_active : t -> bool
(** Whether a defer hook is installed (callers that pool events must
    fall back to per-event scheduling so the hook sees every call). *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> timer
(** Schedule at an absolute time on the current shard (shard 0 when
    called from outside event execution); times in the past run at
    [now] (causality is preserved, never reordered). *)

val schedule_after : t -> delay:Time.t -> (unit -> unit) -> timer

val schedule_at_shard : t -> shard:int -> at:Time.t -> (unit -> unit) -> timer
(** Schedule onto an explicit shard.  From inside an epoch this stages
    the event in the sending shard's outbox (drained at the next
    barrier in canonical order); the caller must respect the engine's
    lookahead for cross-shard times. *)

val fanout :
  t -> shards:int array -> times:Time.t array -> deliver:(int -> unit) -> unit
(** Pooled fan-out: behave exactly like
    [Array.iteri (fun i sh -> schedule_at_shard t ~shard:sh ~at:times.(i)
       (fun () -> deliver i)) shards]
    — same seq reservations, same heap pop order, same cross-shard
    staging slots — but allocate O(1) heap records per destination
    shard instead of one per recipient.  The pop-order proof is in
    DESIGN.md §17.  Fan-outs are not cancellable (network deliveries
    never are).  Falls back to per-event scheduling when a defer hook
    is installed or when called outside event execution. *)

val schedule_control : t -> at:Time.t -> (unit -> unit) -> unit
(** A global action (fault injection, chaos step, monitor probe) that
    must see every shard stopped: runs at an epoch barrier at exactly
    its scheduled time, before same-time ordinary events; equal-time
    controls keep their scheduling order. *)

val cancel : timer -> unit
(** Cancelled events never run; cancelling twice (or after the event
    fired) is harmless. *)

val step : t -> bool
(** Execute the next pending event; false when drained.  Single-shard
    engines only. *)

val run_until : t -> until:Time.t -> unit
(** Run events and controls with timestamp <= [until]; afterwards
    [now t = until] even if the queue drained early. *)

val run : t -> unit
(** Run to quiescence (no pending events or controls).  Beware
    protocols with self-rearming timers: prefer {!run_until}. *)
