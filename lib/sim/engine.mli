(** The discrete-event engine: a clock plus an ordered queue of pending
    events (closures).

    Determinism contract: with the same seed and the same sequence of
    [schedule] calls, two runs execute identical event sequences — ties
    in time break by scheduling order. *)

type t

type timer
(** Handle to a scheduled event, for cancellation. *)

val create : ?seed:int -> unit -> t

val now : t -> Time.t

val rng : t -> Rdb_prng.Rng.t
(** The engine's deterministic randomness source. *)

val executed_events : t -> int
(** Events executed so far (diagnostics). *)

val pending_events : t -> int

val set_defer_hook : t -> (int -> bool) option -> unit
(** Schedule-exploration hook: when installed, each [schedule_at] call
    asks the hook (with a 0-based call counter, reset by this setter)
    whether the event should be pushed {e behind} its equal-timestamp
    group.  Deferred events keep their relative order.  This permutes
    only ties in simulated time — a legal reordering of simultaneous
    events — and is off ([None]) in every normal run. *)

val schedule_calls : t -> int
(** Schedule calls observed since the defer hook was installed. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> timer
(** Schedule at an absolute time; times in the past run at [now]
    (causality is preserved, never reordered). *)

val schedule_after : t -> delay:Time.t -> (unit -> unit) -> timer

val cancel : timer -> unit
(** Cancelled events never run; cancelling twice is harmless. *)

val step : t -> bool
(** Execute the next pending event; false when drained (or the next
    event is beyond a [run_until] horizon). *)

val run_until : t -> until:Time.t -> unit
(** Run events with timestamp <= [until]; afterwards [now t = until]
    even if the queue drained early. *)

val run : t -> unit
(** Run to quiescence.  Beware protocols with self-rearming timers:
    prefer {!run_until}. *)
