(* Binary min-heap of timestamped events.

   Keys are (time, sequence-number): the sequence number breaks ties in
   insertion order, which makes event ordering — and therefore the whole
   simulation — deterministic regardless of heap internals.

   Layout: three parallel arrays (times, seqs, payloads) instead of an
   array of boxed entry records.  A push is then two int stores and a
   pointer store — no per-entry allocation — and the sift comparisons
   are unboxed native-int compares instead of [Int64.compare] on boxed
   keys.  Times are stored as native ints: simulated time is int64
   nanoseconds, and 62 bits of nanoseconds is ~146 years of simulated
   time, far beyond any run. *)

type 'a entry = { time : int64; seq : int; payload : 'a }

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable pays : 'a array;
  mutable size : int;
}

let create () = { times = [||]; seqs = [||]; pays = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

(* [min_time]: the root key without materializing an entry (the engine's
   scheduling loop polls this on every step). *)
let min_time t : int64 = if t.size = 0 then Int64.max_int else Int64.of_int t.times.(0)

let min_key t : int = if t.size = 0 then max_int else t.times.(0)

let grow t ~(dummy : 'a) =
  let cap = Array.length t.times in
  let ncap = if cap = 0 then 64 else 2 * cap in
  let ntimes = Array.make ncap 0 in
  let nseqs = Array.make ncap 0 in
  let npays = Array.make ncap dummy in
  Array.blit t.times 0 ntimes 0 t.size;
  Array.blit t.seqs 0 nseqs 0 t.size;
  Array.blit t.pays 0 npays 0 t.size;
  t.times <- ntimes;
  t.seqs <- nseqs;
  t.pays <- npays

let push t ~(time : int64) ~seq payload =
  if t.size = Array.length t.times then grow t ~dummy:payload;
  let times = t.times and seqs = t.seqs and pays = t.pays in
  let tm = Int64.to_int time in
  (* Sift up with a hole: move parents down, write the new key once. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pt = Array.unsafe_get times parent in
    if pt > tm || (pt = tm && Array.unsafe_get seqs parent > seq) then begin
      Array.unsafe_set times !i pt;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs parent);
      Array.unsafe_set pays !i (Array.unsafe_get pays parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set times !i tm;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set pays !i payload

let peek t =
  if t.size = 0 then None
  else
    Some { time = Int64.of_int t.times.(0); seq = t.seqs.(0); payload = t.pays.(0) }

let pop t =
  if t.size = 0 then None
  else begin
    let times = t.times and seqs = t.seqs and pays = t.pays in
    let top =
      { time = Int64.of_int times.(0); seq = seqs.(0); payload = pays.(0) }
    in
    t.size <- t.size - 1;
    let n = t.size in
    if n > 0 then begin
      (* Sift the last element down from the root with a hole. *)
      let mt = Array.unsafe_get times n in
      let ms = Array.unsafe_get seqs n in
      let mp = Array.unsafe_get pays n in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 in
        if l >= n then continue := false
        else begin
          let r = l + 1 in
          let c =
            if r < n then begin
              let lt = Array.unsafe_get times l and rt = Array.unsafe_get times r in
              if rt < lt || (rt = lt && Array.unsafe_get seqs r < Array.unsafe_get seqs l)
              then r
              else l
            end
            else l
          in
          let ct = Array.unsafe_get times c in
          if ct < mt || (ct = mt && Array.unsafe_get seqs c < ms) then begin
            Array.unsafe_set times !i ct;
            Array.unsafe_set seqs !i (Array.unsafe_get seqs c);
            Array.unsafe_set pays !i (Array.unsafe_get pays c);
            i := c
          end
          else continue := false
        end
      done;
      Array.unsafe_set times !i mt;
      Array.unsafe_set seqs !i ms;
      Array.unsafe_set pays !i mp
    end;
    Some top
  end
