(** Deployment topology: regions, the inter-region latency/bandwidth
    matrix, and node placement.  The built-in calibration is Table 1 of
    the paper: measured ping RTTs and bandwidths between Google Cloud
    machines in six regions (Oregon, Iowa, Montreal, Belgium, Taiwan,
    Sydney). *)

type region = { name : string; short : string }

val paper_regions : region array
(** The six regions, in the order the paper's experiments add them. *)

val paper_rtt_ms : float array array
(** Table 1 ping round-trip times (ms); symmetric; 0.5 intra-region. *)

val paper_bw_mbps : float array array
(** Table 1 bandwidths (Mbit/s); symmetric. *)

type t

val n_nodes : t -> int
val n_regions : t -> int
val region_of : t -> int -> int
val same_region : t -> int -> int -> bool

val rtt_ms : t -> a:int -> b:int -> float
val one_way_ms : t -> a:int -> b:int -> float
val bw_mbps : t -> a:int -> b:int -> float

val min_cross_region_one_way_ms : t -> float
(** Smallest one-way latency between two distinct regions — the
    conservative-DES lookahead for cluster-per-region sharding.
    [infinity] for single-region topologies. *)

val of_paper : n_regions:int -> node_region:int array -> t
(** Topology over the first [n_regions] paper regions with an explicit
    node placement.  Beyond six regions the Table 1 matrix tiles:
    region [i] inherits paper region [i mod 6], and distinct regions
    sharing a paper slot sit 10 ms RTT apart at intra-continent
    bandwidth (nearby datacenters of the same geography) — the z=30+
    scaling axis.
    @raise Invalid_argument if [n_regions < 1] or a node's region is
    out of range. *)

val clustered : z:int -> n:int -> t
(** The experiments' standard placement: [z] clusters of [n] replicas,
    cluster [c] in region [c] (node ids [c*n .. c*n+n-1]), plus one
    client-group node per cluster ([z*n + c]) co-located with it. *)

val uniform :
  n_regions:int ->
  rtt_ms:float ->
  bw_mbps:float ->
  local_rtt_ms:float ->
  local_bw_mbps:float ->
  node_region:int array ->
  t
(** Synthetic topology with uniform inter-region characteristics. *)
