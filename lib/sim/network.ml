(* The simulated wide-area network.

   Model (see DESIGN.md §5):
   - Every node has, per destination region, a FIFO uplink whose
     capacity is the Table 1 bandwidth between the two regions.  A
     b-byte message sent at time t departs at
         depart = max(t, uplink_busy) + b / bandwidth
     and arrives at
         arrive = depart + one_way_latency + jitter.
     The uplink queue is what makes a single-primary protocol
     bandwidth-bound: a primary broadcasting large pre-prepares to five
     remote regions serializes through five finite pipes, exactly the
     bottleneck behind Figures 10 and 13 of the paper.
   - Intra-region messages use the (fast) local pipe of the same model.
   - Failure injection: crashed nodes neither send nor receive; drop
     rules model Byzantine senders/receivers that silently discard
     traffic to or from selected peers (Example 2.4 of the paper);
     region partitions sever all traffic between region pairs.  Drop
     rules carry an optional label so reversible faults (partitions,
     single-link flaps) can be removed individually — the chaos
     subsystem's heal/restore inverses.
   - Degraded links: a per-directed-link loss probability silently
     discards that fraction of traffic, and a per-link duplication
     probability delivers a second copy shortly after the first
     (retransmission storms, routing flaps).  Both draw from the
     engine's RNG only when a rule is installed, so fault-free runs
     consume an identical random stream to builds without this
     machinery.

   The payload type is polymorphic: each deployment instantiates the
   network with its protocol's message type, so no serialization round
   trip is needed inside the simulator (message *sizes* are still
   modeled explicitly — they are supplied by the sender). *)

type delivery_hook =
  src:int ->
  dst:int ->
  nth:int ->
  floor:Time.t ->
  arrive:Time.t ->
  last:Time.t option ->
  Time.t

(* Adversarial interposition (lib/adversary): [on_send] rewrites one
   outgoing message into the emissions a corrupted sender actually
   produces (payload, extra sender-side delay) — [] is targeted
   silence, tampered payloads are equivocation, extra elements are
   replays; [on_recv] lets a corrupted receiver pretend not to have
   heard a peer.  Both sit outside the bandwidth/latency model: an
   emission re-enters [send] as if the sender had behaved that way. *)
type 'm interposer = {
  on_send : src:int -> dst:int -> 'm -> ('m * Time.t) list;
  on_recv : src:int -> dst:int -> 'm -> bool;
}

type 'm t = {
  engine : Engine.t;
  topo : Topology.t;
  deliver : src:int -> dst:int -> 'm -> unit;
  (* uplink_busy.(node).(dst_region): time the pipe frees up *)
  uplink_busy : Time.t array array;
  (* Aggregate cross-region egress of each node (all WAN flows of a
     node serialize through this before their per-region pipe); 0 or
     negative disables the cap. *)
  wan_egress_mbps : float;
  wan_busy : Time.t array;
  crashed : bool array;
  (* drop_rules: if any returns true the message is silently dropped;
     the label (if any) allows selective removal *)
  mutable drop_rules : (string option * (src:int -> dst:int -> bool)) list;
  (* (src, dst) -> probability; absent = healthy link *)
  link_loss : (int * int, float) Hashtbl.t;
  link_dup : (int * int, float) Hashtbl.t;
  jitter_ms : float;
  stats : Stats.t;
  (* Optional consensus-path tracer: message lifecycle events (queue /
     tx spans, deliver / drop instants).  [None] costs one match per
     send — the zero-overhead-when-off contract. *)
  trace : Rdb_trace.Trace.t option;
  (* Schedule-exploration hook (lib/check): may adjust a message's
     arrival time within the latency model's legal envelope.  The
     per-link last-arrival table is maintained only while a hook is
     installed; [None] costs one match per send. *)
  mutable dhook : delivery_hook option;
  mutable dhook_sends : int;
  dhook_last : (int * int, Time.t) Hashtbl.t;
  (* Adversarial interposition hooks; [None] costs one match per send
     and one per delivery. *)
  mutable interpose : 'm interposer option;
  (* Engine shard owning each node: deliveries are scheduled onto the
     destination's shard (cross-shard sends are legal because the WAN
     one-way latency floor is the engine's lookahead). *)
  shard_of : int -> int;
}

let create ?(wan_egress_mbps = 0.) ?trace ?(shard_of = fun _ -> 0) ~engine ~topo ~jitter_ms
    ~deliver () =
  let n = Topology.n_nodes topo in
  let r = Topology.n_regions topo in
  {
    engine;
    topo;
    deliver;
    uplink_busy = Array.init n (fun _ -> Array.make r Time.zero);
    wan_egress_mbps;
    wan_busy = Array.make n Time.zero;
    crashed = Array.make n false;
    drop_rules = [];
    link_loss = Hashtbl.create 8;
    link_dup = Hashtbl.create 8;
    jitter_ms;
    stats = Stats.create ();
    trace;
    dhook = None;
    dhook_sends = 0;
    dhook_last = Hashtbl.create 64;
    interpose = None;
    shard_of;
  }

let stats t = t.stats
let topology t = t.topo

let set_interposer t ip = t.interpose <- ip

let set_delivery_hook t h =
  t.dhook <- h;
  t.dhook_sends <- 0;
  Hashtbl.reset t.dhook_last

let crash t node = t.crashed.(node) <- true
let recover t node = t.crashed.(node) <- false
let is_crashed t node = t.crashed.(node)

let add_drop_rule ?label t rule = t.drop_rules <- (label, rule) :: t.drop_rules

let remove_drop_rules t ~label =
  t.drop_rules <- List.filter (fun (l, _) -> l <> Some label) t.drop_rules

let clear_drop_rules t = t.drop_rules <- []

let partition_label ~ra ~rb = Printf.sprintf "partition:%d:%d" (min ra rb) (max ra rb)

(* Sever all communication between two regions (both directions);
   reversed by [heal_regions] on the same pair. *)
let partition_regions t ~ra ~rb =
  add_drop_rule ~label:(partition_label ~ra ~rb) t (fun ~src ~dst ->
      let rs = Topology.region_of t.topo src and rd = Topology.region_of t.topo dst in
      (rs = ra && rd = rb) || (rs = rb && rd = ra))

let heal_regions t ~ra ~rb = remove_drop_rules t ~label:(partition_label ~ra ~rb)

let link_label ~src ~dst = Printf.sprintf "link:%d:%d" src dst

(* Sever one directed link (a link flap's down edge); reversed by
   [restore_link]. *)
let sever_link t ~src ~dst =
  let s = src and d = dst in
  add_drop_rule ~label:(link_label ~src ~dst) t (fun ~src ~dst -> src = s && dst = d)

let restore_link t ~src ~dst = remove_drop_rules t ~label:(link_label ~src ~dst)

(* Per-directed-link degradation.  [p <= 0] heals the link. *)
let set_link_loss t ~src ~dst ~p =
  if p <= 0. then Hashtbl.remove t.link_loss (src, dst)
  else Hashtbl.replace t.link_loss (src, dst) (Float.min p 1.)

let set_link_dup t ~src ~dst ~p =
  if p <= 0. then Hashtbl.remove t.link_dup (src, dst)
  else Hashtbl.replace t.link_dup (src, dst) (Float.min p 1.)

let clear_link_rules t =
  Hashtbl.reset t.link_loss;
  Hashtbl.reset t.link_dup

let transmission_ns ~size_bytes ~bw_mbps =
  (* Mbit/s -> bytes/ns: bw * 1e6 / 8 bytes per second = bw / 8e-3 per ns *)
  let bytes_per_ns = bw_mbps *. 1e6 /. 8.0 /. 1e9 in
  Int64.of_float (Float.of_int size_bytes /. bytes_per_ns)

(* Send one message.  [size] is the wire size in bytes (headers and
   authentication tags included by the caller's sizing function). *)
(* [Hashtbl.length] guard: the common (healthy) case pays no tuple-key
   allocation and no hash lookup; the RNG is still only consumed when a
   rule exists for this exact link, so random streams are unchanged. *)
let lossy t ~src ~dst =
  Hashtbl.length t.link_loss > 0
  &&
  match Hashtbl.find_opt t.link_loss (src, dst) with
  | None -> false
  | Some p -> Rdb_prng.Rng.float (Engine.rng t.engine) < p

let trace_drop t ~src ~dst ~size ~reason =
  match t.trace with
  | None -> ()
  | Some tr -> Rdb_trace.Trace.net_drop tr ~src ~dst ~size ~at:(Engine.now t.engine) ~reason

(* The healthy wire model shared by [send_admitted] and [multicast]:
   stats, WAN-egress + uplink serialization, the net_send trace span,
   base latency and the jitter draw.  Returns the arrival time.  Every
   side effect (busy-pipe updates, stats, trace, RNG consumption)
   happens here in call order, so a pooled multicast that calls this
   once per recipient in destination order is indistinguishable from
   the per-recipient send path. *)
let wire_arrival t ~src ~dst ~size =
  let now = Engine.now t.engine in
  let admitted = now in
  let local = Topology.same_region t.topo src dst in
  Stats.count_sent t.stats ~local ~size;
  let dst_region = Topology.region_of t.topo dst in
  let bw = Topology.bw_mbps t.topo ~a:src ~b:dst in
  (* Cross-region traffic first serializes through the node's
     aggregate WAN egress, then through the per-region-pair pipe. *)
  let now =
    if (not local) && t.wan_egress_mbps > 0. then begin
      let out =
        Time.add
          (Time.max now t.wan_busy.(src))
          (transmission_ns ~size_bytes:size ~bw_mbps:t.wan_egress_mbps)
      in
      t.wan_busy.(src) <- out;
      out
    end
    else now
  in
  let busy = t.uplink_busy.(src).(dst_region) in
  let start = Time.max now busy in
  let depart = Time.add start (transmission_ns ~size_bytes:size ~bw_mbps:bw) in
  t.uplink_busy.(src).(dst_region) <- depart;
  (match t.trace with
  | None -> ()
  | Some tr ->
      (* [admitted] is when the caller handed us the message; any WAN
         egress serialization shows up as queueing before [start]. *)
      Rdb_trace.Trace.net_send tr ~src ~dst ~size ~local ~now:admitted ~start ~depart);
  let delay = Time.of_ms_f (Topology.one_way_ms t.topo ~a:src ~b:dst) in
  let jitter =
    if t.jitter_ms <= 0. then Time.zero
    else Time.of_ms_f (Rdb_prng.Rng.float_range (Engine.rng t.engine) ~lo:0. ~hi:t.jitter_ms)
  in
  (* (earliest legal arrival, actual arrival): jitter is non-negative,
     so any time >= the floor is producible by the latency model. *)
  (Time.add depart delay, Time.add depart (Time.add delay jitter))

(* The post-interposition send path: everything the wire does to a
   message the (possibly corrupted) sender actually emitted. *)
let send_admitted t ~src ~dst ~size msg =
  if List.exists (fun (_, rule) -> rule ~src ~dst) t.drop_rules then begin
    Stats.count_dropped t.stats ~size;
    trace_drop t ~src ~dst ~size ~reason:"rule"
  end
  else if lossy t ~src ~dst then begin
    Stats.count_dropped t.stats ~size;
    trace_drop t ~src ~dst ~size ~reason:"loss"
  end
  else begin
    let floor, arrive = wire_arrival t ~src ~dst ~size in
    let arrive =
      match t.dhook with
      | None -> arrive
      | Some hook ->
          let nth = t.dhook_sends in
          t.dhook_sends <- nth + 1;
          let last = Hashtbl.find_opt t.dhook_last (src, dst) in
          let arrive = Time.max floor (hook ~src ~dst ~nth ~floor ~arrive ~last) in
          Hashtbl.replace t.dhook_last (src, dst)
            (match last with None -> arrive | Some l -> Time.max l arrive);
          arrive
    in
    let deliver_traced () =
      if t.crashed.(dst) then trace_drop t ~src ~dst ~size ~reason:"dst-crashed"
      else
        match t.interpose with
        | Some ip when not (ip.on_recv ~src ~dst msg) ->
            (* A corrupted receiver ignoring this peer: judged at
               delivery time, so receive-side rules are windowed by
               arrival like every other fault. *)
            trace_drop t ~src ~dst ~size ~reason:"adversary-deaf"
        | _ ->
            (match t.trace with
            | None -> ()
            | Some tr -> Rdb_trace.Trace.net_deliver tr ~src ~dst ~size ~at:(Engine.now t.engine));
            t.deliver ~src ~dst msg
    in
    let dshard = t.shard_of dst in
    ignore (Engine.schedule_at_shard t.engine ~shard:dshard ~at:arrive deliver_traced);
    (* Duplication: deliver a second copy shortly after the first (a
       retransmitted or re-routed frame); receivers must deduplicate. *)
    if Hashtbl.length t.link_dup > 0 then
      match Hashtbl.find_opt t.link_dup (src, dst) with
      | Some p when Rdb_prng.Rng.float (Engine.rng t.engine) < p ->
          let again = Time.add arrive (Time.of_ms_f 0.05) in
          ignore (Engine.schedule_at_shard t.engine ~shard:dshard ~at:again deliver_traced)
      | _ -> ()
  end

let send t ~src ~dst ~size msg =
  if t.crashed.(src) then ()
  else
    match t.interpose with
    | None -> send_admitted t ~src ~dst ~size msg
    | Some ip -> (
        match ip.on_send ~src ~dst msg with
        | [] ->
            (* Targeted silence: the message never touches the wire
               (no bandwidth charged), but the drop is visible to the
               tracer and the stats like any other discard. *)
            Stats.count_dropped t.stats ~size;
            trace_drop t ~src ~dst ~size ~reason:"adversary"
        | emissions ->
            let now = Engine.now t.engine in
            List.iter
              (fun (m, after) ->
                if Time.(after <= Time.zero) then send_admitted t ~src ~dst ~size m
                else
                  (* Delayed / slow-drip sending: the emission enters
                     the normal wire model when the hold expires (and
                     not at all if the sender crashed meanwhile). *)
                  ignore
                    (Engine.schedule_at t.engine ~at:(Time.add now after) (fun () ->
                         if not t.crashed.(src) then send_admitted t ~src ~dst ~size m)))
              emissions)

(* Broadcast one message to [dsts] (in order).

   Fast path: on the healthy wire — no interposer, no delivery hook, no
   drop rules, no degraded links, no schedule exploration — an
   n-recipient broadcast runs the per-recipient wire model once per
   destination (identical side effects, stats, and RNG stream to n
   [send] calls) but hands the engine ONE pooled fan-out per shard
   instead of n heap inserts, with a single shared delivery closure
   instead of n per-recipient closures.  The engine reserves the same
   sequence numbers n individual schedules would have consumed, so the
   executed event schedule is byte-identical (see Engine.fanout and
   DESIGN.md §17).

   Any installed fault/exploration machinery falls back to the
   per-recipient path: those features key off per-send state (loss and
   dup draws, interposer emissions, hook counters) that the pooled
   representation deliberately does not model. *)
let multicast t ~src ~dsts ~size msg =
  match dsts with
  | [] -> ()
  | [ dst ] -> send t ~src ~dst ~size msg
  | _ ->
      if t.crashed.(src) then ()
      else if
        t.interpose <> None || t.dhook <> None || t.drop_rules <> []
        || Hashtbl.length t.link_loss > 0
        || Hashtbl.length t.link_dup > 0
        || Engine.defer_active t.engine
      then List.iter (fun dst -> send t ~src ~dst ~size msg) dsts
      else begin
        let dsts = Array.of_list dsts in
        let k = Array.length dsts in
        let arrives = Array.make k Time.zero in
        let shards = Array.make k 0 in
        for i = 0 to k - 1 do
          let dst = dsts.(i) in
          let _, arrive = wire_arrival t ~src ~dst ~size in
          arrives.(i) <- arrive;
          shards.(i) <- t.shard_of dst
        done;
        Engine.fanout t.engine ~shards ~times:arrives ~deliver:(fun i ->
            let dst = dsts.(i) in
            if t.crashed.(dst) then trace_drop t ~src ~dst ~size ~reason:"dst-crashed"
            else
              match t.interpose with
              | Some ip when not (ip.on_recv ~src ~dst msg) ->
                  trace_drop t ~src ~dst ~size ~reason:"adversary-deaf"
              | _ ->
                  (match t.trace with
                  | None -> ()
                  | Some tr ->
                      Rdb_trace.Trace.net_deliver tr ~src ~dst ~size ~at:(Engine.now t.engine));
                  t.deliver ~src ~dst msg)
      end
