(** Binary min-heap of timestamped events, keyed by (time, sequence
    number) so that ties break in insertion order — the property that
    makes the simulation deterministic.

    Internally three parallel arrays (no boxed entry per element, no
    boxed int64 key comparisons); the {!entry} record is materialized
    only by {!peek}/{!pop}. *)

type 'a entry = { time : int64; seq : int; payload : 'a }

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:int64 -> seq:int -> 'a -> unit

val min_time : 'a t -> int64
(** Root timestamp without allocating; [Int64.max_int] when empty. *)

val min_key : 'a t -> int
(** Same as {!min_time} as a native int; [max_int] when empty. *)

val peek : 'a t -> 'a entry option
val pop : 'a t -> 'a entry option
