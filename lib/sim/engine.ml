(* The discrete-event engine: a clock and an ordered queue of pending
   events (closures) — now sharded for conservative parallel execution.

   Determinism contract: with the same seed and the same sequence of
   [schedule] calls, two runs execute identical event sequences.  This
   is what lets the test suite assert exact cross-run agreement and lets
   every experiment in EXPERIMENTS.md be replayed bit-for-bit.

   Sharding (DESIGN.md §15).  A deployment may partition its nodes into
   shards (one per cluster): each shard owns a private (clock, heap,
   seq-counter, RNG) and executes its own events.  Shards interact only
   through [schedule_at_shard], which stages cross-shard events in the
   *sender's* outbox; outboxes are drained into the destination heaps at
   epoch barriers, in canonical (dst, src, FIFO) order with fresh
   destination sequence numbers.  The conservative-DES invariant the
   caller must uphold: a cross-shard event scheduled during an epoch
   starting at T0 must not be earlier than T0 + lookahead.  The fabric
   guarantees this because clusters only talk over global WAN links
   whose one-way latency floor is the lookahead.

   Under this protocol the per-shard event sequences — and therefore
   the per-shard trace streams — are a pure function of the seed and
   the epoch schedule, *not* of which domain executes which shard or in
   what order.  Running epochs sequentially or on N domains yields
   byte-identical traces; the test suite asserts this.

   Control events ([schedule_control]) are global actions — fault
   injection, chaos timeline steps, monitors — that must observe and
   mutate cross-shard state.  They run only at epoch barriers, with
   every shard stopped, at exactly their scheduled time (the epoch
   schedule is cut at the next control time), before any ordinary event
   with the same timestamp.

   Event records are pooled: a popped event's record returns to the
   executing shard's freelist and is reused by later schedules, so the
   steady-state scheduling path allocates only the caller's closure.  A
   generation counter guards [cancel] against stale timer handles to
   recycled records. *)

type event = {
  mutable run : unit -> unit;
  mutable cancelled : bool;
  mutable gen : int; (* bumped when the record returns to the pool *)
}

type timer = { ev : event; tgen : int }

let noop_run () = ()

(* A staged cross-shard item: a single event, or a pooled fan-out group
   — [times] in staging (send) order plus one shared delivery closure
   indexed by staging position.  A group occupies one outbox slot and
   one heap slot however many recipients it carries (DESIGN.md §17). *)
type staged =
  | Sone of Time.t * event
  | Sgroup of Time.t array * (int -> unit)

type shard = {
  sid : int;
  heap : event Heap.t;
  mutable snow : Time.t;
  mutable sseq : int;
  srng : Rdb_prng.Rng.t;
  mutable sexec : int;
  (* Cross-shard events staged during an epoch, indexed by destination
     shard, most-recent first.  Written only by this (sending) shard, so
     parallel epochs never contend; drained at barriers. *)
  outboxes : staged list array;
  mutable pool : event list; (* freelist of recycled event records *)
}

type control = { ctime : Time.t; cseq : int; crun : unit -> unit }

type t = {
  eid : int; (* engine identity, to validate the domain-local shard *)
  shards : shard array;
  root_rng : Rdb_prng.Rng.t;
  lookahead : Time.t;
  mutable gnow : Time.t; (* authoritative clock between epochs *)
  mutable controls : control list; (* sorted by (ctime, cseq) *)
  mutable cseq : int;
  mutable jobs : int; (* domains used per epoch (capped by shard count) *)
  (* Schedule-exploration hook (lib/check): when installed, the nth
     schedule call (0-based) may be pushed behind its equal-timestamp
     group — a legal permutation of simultaneous events.  [None] costs
     one match per schedule.  Single-shard engines only. *)
  mutable defer_hook : (int -> bool) option;
  mutable sched_calls : int;
}

(* Far above any per-run event count, far below overflow: deferred
   events sort after every normally-sequenced event of the same
   timestamp while preserving their own relative order. *)
let defer_offset = 1_000_000_000

let next_eid = Atomic.make 0

(* Which shard (of which engine) the current domain is executing.  Set
   for the duration of one shard-epoch; consulted by [now]/[rng]/
   [schedule_at] so all engine operations made from inside an event
   resolve to the executing shard. *)
let dls_shard : (int * shard) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_shard t =
  match !(Domain.DLS.get dls_shard) with
  | Some (eid, s) when eid = t.eid -> Some s
  | _ -> None

let create ?(seed = 42) ?(shards = 1) ?(lookahead = Int64.max_int) () =
  if shards < 1 then invalid_arg "Engine.create: shards must be >= 1";
  if shards > 1 && Time.( <= ) lookahead Time.zero then
    invalid_arg "Engine.create: multi-shard engines need a positive lookahead";
  let root_rng = Rdb_prng.Rng.create (Int64.of_int seed) in
  let mk_shard sid =
    {
      sid;
      heap = Heap.create ();
      snow = Time.zero;
      sseq = 0;
      (* Single-shard engines keep the root RNG as the shard RNG — the
         pre-sharding behavior, relied on by direct Engine users. *)
      srng =
        (if shards = 1 then root_rng else Rdb_prng.Rng.split root_rng ~index:sid);
      sexec = 0;
      outboxes = Array.make shards [];
      pool = [];
    }
  in
  {
    eid = Atomic.fetch_and_add next_eid 1;
    shards = Array.init shards mk_shard;
    root_rng;
    lookahead;
    gnow = Time.zero;
    controls = [];
    cseq = 0;
    jobs = 1;
    defer_hook = None;
    sched_calls = 0;
  }

let n_shards t = Array.length t.shards

let current_shard_id t = match current_shard t with Some s -> s.sid | None -> 0
let set_jobs t jobs = t.jobs <- max 1 jobs
let lookahead t = t.lookahead

let now t = match current_shard t with Some s -> s.snow | None -> t.gnow
let rng t = match current_shard t with Some s -> s.srng | None -> t.root_rng
let rng_of_shard t ~shard = t.shards.(shard).srng

let executed_events t = Array.fold_left (fun acc s -> acc + s.sexec) 0 t.shards

let staged_count = function
  | Sone _ -> 1
  | Sgroup (times, _) -> Array.length times

let pending_events t =
  Array.fold_left
    (fun acc s ->
      Array.fold_left
        (fun acc l -> List.fold_left (fun acc e -> acc + staged_count e) acc l)
        (acc + Heap.length s.heap) s.outboxes)
    0 t.shards

let set_defer_hook t h =
  if Array.length t.shards > 1 && h <> None then
    invalid_arg "Engine.set_defer_hook: schedule exploration requires a single-shard engine";
  t.defer_hook <- h;
  t.sched_calls <- 0

(* Callers with a fast path that bypasses per-schedule sequencing (the
   network's pooled multicast) must fall back while exploration is on. *)
let defer_active t = t.defer_hook <> None

let schedule_calls t = t.sched_calls

(* -- event records ------------------------------------------------------ *)

let alloc_event s f =
  match s.pool with
  | e :: rest ->
      s.pool <- rest;
      e.run <- f;
      e.cancelled <- false;
      e
  | [] -> { run = f; cancelled = false; gen = 0 }

(* Recycle into the pool of the shard that executed it (records may
   migrate pools via cross-shard scheduling; harmless).  The generation
   bump invalidates any timer handle still pointing here. *)
let release_event s e =
  e.run <- noop_run;
  e.cancelled <- false;
  e.gen <- e.gen + 1;
  s.pool <- e :: s.pool

let pooled_events t = Array.fold_left (fun acc s -> acc + List.length s.pool) 0 t.shards

(* -- scheduling --------------------------------------------------------- *)

(* Schedule onto [s]'s own heap (clamped to its clock: scheduling in
   the past runs "immediately", preserving causality). *)
let schedule_local t s ~at f =
  let at = Time.max at s.snow in
  s.sseq <- s.sseq + 1;
  let seq =
    match t.defer_hook with
    | None -> s.sseq
    | Some defer ->
        let n = t.sched_calls in
        t.sched_calls <- n + 1;
        if defer n then s.sseq + defer_offset else s.sseq
  in
  let ev = alloc_event s f in
  Heap.push s.heap ~time:at ~seq ev;
  { ev; tgen = ev.gen }

(* Schedule [f] at absolute simulated time [at] on the current shard
   (or shard 0 from outside event execution — the single-shard case and
   pre-run setup). *)
let schedule_at t ~at f =
  match current_shard t with
  | Some s -> schedule_local t s ~at f
  | None -> schedule_local t t.shards.(0) ~at f

let schedule_after t ~delay f = schedule_at t ~at:(Time.add (now t) delay) f

(* Schedule onto an explicit shard — the cross-shard path used by the
   network (routing a delivery to the destination's shard) and by
   control actions re-arming per-node timers. *)
let schedule_at_shard t ~shard ~at f =
  match current_shard t with
  | Some s when s.sid = shard -> schedule_local t s ~at f
  | Some s ->
      (* Cross-shard from inside an epoch: stage in the sender's outbox.
         Conservative lookahead means [at] can only land at or beyond
         the epoch horizon, so the destination cannot have passed it. *)
      let ev = alloc_event s f in
      s.outboxes.(shard) <- Sone (at, ev) :: s.outboxes.(shard);
      { ev; tgen = ev.gen }
  | None -> schedule_local t t.shards.(shard) ~at f

(* -- pooled fan-out ----------------------------------------------------- *)

(* Push a pre-sequenced event: [seq] was reserved up front by the
   fan-out path, so the shard's counter is not consulted again. *)
let push_at s ~at ~seq f = Heap.push s.heap ~time:at ~seq (alloc_event s f)

(* Delivery order of a fan-out group: arrival time ascending, original
   (staging) position as the tie-break — exactly the (time, seq) order
   the equivalent individual schedules would pop in. *)
let sort_order ~times k =
  let order = Array.init k (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = Time.compare times.(a) times.(b) in
      if c <> 0 then c else compare a b)
    order;
  order

(* One pooled record walks the sorted (time, seq) agenda: each pop
   delivers one recipient and re-inserts the record keyed at the next
   pending one, so an m-recipient fan-out occupies one heap slot
   instead of m.  Because the keys are exactly those m individual
   [schedule_local] calls would have used — and the record always
   carries the minimum remaining key — the engine's pop order, and
   therefore every downstream effect, is unchanged. *)
let schedule_fanout_sorted s ~times ~seqs ~deliver =
  let k = Array.length times in
  let idx = ref 0 in
  let rec run () =
    let j = !idx in
    incr idx;
    if !idx < k then push_at s ~at:times.(!idx) ~seq:seqs.(!idx) run;
    deliver j
  in
  push_at s ~at:times.(0) ~seq:seqs.(0) run

(* Schedule one delivery closure to [k] recipients: [deliver i] is
   recipient [i]'s delivery, at time [times.(i)], on shard
   [shards.(i)].  Same-shard recipients reserve the same sequence
   numbers (in the same order) as individual schedules would, and each
   cross-shard group stages as one outbox entry expanded at the
   barrier, so the executed schedule is byte-identical to [k] separate
   [schedule_at_shard] calls — the determinism contract at any
   [--jobs] is untouched. *)
let fanout t ~shards ~times ~deliver =
  match current_shard t with
  | Some s when t.defer_hook = None ->
      let k = Array.length times in
      let z = Array.length t.shards in
      let counts = Array.make z 0 in
      Array.iter (fun sh -> counts.(sh) <- counts.(sh) + 1) shards;
      for sh = 0 to z - 1 do
        let m = counts.(sh) in
        if m > 0 then begin
          let idxs = Array.make m 0 in
          let j = ref 0 in
          for i = 0 to k - 1 do
            if shards.(i) = sh then begin
              idxs.(!j) <- i;
              incr j
            end
          done;
          if sh = s.sid then begin
            let tms = Array.map (fun i -> Time.max times.(i) s.snow) idxs in
            let base = s.sseq in
            s.sseq <- base + m;
            if m = 1 then
              let i = idxs.(0) in
              push_at s ~at:tms.(0) ~seq:(base + 1) (fun () -> deliver i)
            else begin
              let order = sort_order ~times:tms m in
              let stimes = Array.map (fun o -> tms.(o)) order in
              let sseqs = Array.map (fun o -> base + 1 + o) order in
              schedule_fanout_sorted s ~times:stimes ~seqs:sseqs ~deliver:(fun j ->
                  deliver idxs.(order.(j)))
            end
          end
          else if m = 1 then begin
            let i = idxs.(0) in
            let ev = alloc_event s (fun () -> deliver i) in
            s.outboxes.(sh) <- Sone (times.(i), ev) :: s.outboxes.(sh)
          end
          else begin
            let tms = Array.map (fun i -> times.(i)) idxs in
            s.outboxes.(sh) <- Sgroup (tms, fun j -> deliver idxs.(j)) :: s.outboxes.(sh)
          end
        end
      done
  | _ ->
      (* Outside event execution, or under schedule exploration: the
         per-recipient path (it consults the defer hook per call). *)
      Array.iteri
        (fun i sh -> ignore (schedule_at_shard t ~shard:sh ~at:times.(i) (fun () -> deliver i)))
        shards

(* Global control action at absolute time [at]: runs at an epoch
   barrier with all shards stopped, before same-time ordinary events.
   Controls keep their scheduling order at equal times. *)
let schedule_control t ~at f =
  t.cseq <- t.cseq + 1;
  let c = { ctime = at; cseq = t.cseq; crun = f } in
  let rec insert = function
    | [] -> [ c ]
    | c' :: rest when Time.( <= ) c'.ctime c.ctime -> c' :: insert rest
    | rest -> c :: rest
  in
  t.controls <- insert t.controls

let cancel (tm : timer) = if tm.ev.gen = tm.tgen then tm.ev.cancelled <- true

(* -- execution ---------------------------------------------------------- *)

(* Drain staged cross-shard events into destination heaps.  Canonical
   order — destination shards ascending, then source shards ascending,
   then FIFO per source — with fresh destination sequence numbers, so
   the merge is independent of how the previous epoch was executed. *)
let drain_outboxes t =
  let z = Array.length t.shards in
  for dst = 0 to z - 1 do
    let d = t.shards.(dst) in
    for src = 0 to z - 1 do
      match t.shards.(src).outboxes.(dst) with
      | [] -> ()
      | staged ->
          t.shards.(src).outboxes.(dst) <- [];
          List.iter
            (fun entry ->
              match entry with
              | Sone (at, ev) ->
                  d.sseq <- d.sseq + 1;
                  Heap.push d.heap ~time:(Time.max at d.snow) ~seq:d.sseq ev
              | Sgroup (times, deliver) ->
                  (* Expand the group exactly where its entries would
                     have sat in the FIFO: m fresh sequence numbers in
                     staging order, then one pooled record keyed by the
                     sorted (time, seq) agenda. *)
                  let m = Array.length times in
                  let tms = Array.map (fun at -> Time.max at d.snow) times in
                  let base = d.sseq in
                  d.sseq <- base + m;
                  let order = sort_order ~times:tms m in
                  let stimes = Array.map (fun o -> tms.(o)) order in
                  let sseqs = Array.map (fun o -> base + 1 + o) order in
                  schedule_fanout_sorted d ~times:stimes ~seqs:sseqs ~deliver:(fun j ->
                      deliver order.(j)))
            (List.rev staged)
    done
  done

(* Execute [s]'s events with time < bound (or <= when [incl]).  Runs
   with the domain-local current-shard set, so everything the events do
   resolves to this shard. *)
let run_shard t s ~bound ~incl =
  let cur = Domain.DLS.get dls_shard in
  cur := Some (t.eid, s);
  let continue = ref true in
  while !continue do
    let mt = Heap.min_time s.heap in
    if
      mt = Int64.max_int
      || (if incl then Time.( > ) mt bound else Time.( >= ) mt bound)
    then continue := false
    else
      match Heap.pop s.heap with
      | None -> continue := false
      | Some { Heap.time; payload = ev; _ } ->
          if ev.cancelled then release_event s ev
          else begin
            s.snow <- time;
            s.sexec <- s.sexec + 1;
            let f = ev.run in
            release_event s ev;
            f ()
          end
  done;
  cur := None

(* One epoch over all shards, sequentially or across domains.  Shard
   event sequences are independent within an epoch (the conservative
   invariant), so the executor assignment cannot affect outcomes. *)
let run_epoch t ~bound ~incl =
  let z = Array.length t.shards in
  let jobs = min t.jobs z in
  if jobs <= 1 then
    for i = 0 to z - 1 do
      run_shard t t.shards.(i) ~bound ~incl
    done
  else begin
    let workers =
      Array.init (jobs - 1) (fun w ->
          Domain.spawn (fun () ->
              for i = 0 to z - 1 do
                if i mod jobs = w + 1 then run_shard t t.shards.(i) ~bound ~incl
              done))
    in
    for i = 0 to z - 1 do
      if i mod jobs = 0 then run_shard t t.shards.(i) ~bound ~incl
    done;
    Array.iter Domain.join workers
  end

let advance_shards t at =
  Array.iter (fun s -> if Time.( < ) s.snow at then s.snow <- at) t.shards;
  if Time.( < ) t.gnow at then t.gnow <- at

(* Run due controls: the head group of equal scheduled times. *)
let run_control_group t =
  match t.controls with
  | [] -> ()
  | c0 :: _ ->
      advance_shards t c0.ctime;
      let rec go () =
        match t.controls with
        | c :: rest when Time.compare c.ctime c0.ctime = 0 ->
            t.controls <- rest;
            c.crun ();
            go ()
        | _ -> ()
      in
      go ()

let sat_add (a : Time.t) (b : Time.t) =
  if Time.( > ) b (Int64.sub Int64.max_int a) then Int64.max_int else Int64.add a b

(* The epoch loop shared by [run_until] and [run].  Executes every
   event and control with time <= [until]; when [advance], the clocks
   end at [until] even if the queues drained early, so back-to-back
   calls observe monotone time. *)
let exec_until t ~until ~advance =
  let continue = ref true in
  while !continue do
    drain_outboxes t;
    let next_ev =
      Array.fold_left (fun acc s -> Time.min acc (Heap.min_time s.heap)) Int64.max_int t.shards
    in
    let next_c = match t.controls with [] -> Int64.max_int | c :: _ -> c.ctime in
    if Time.( <= ) next_c until && Time.( <= ) next_c next_ev then
      (* Control barrier: all shards stopped at the control time. *)
      run_control_group t
    else if next_ev = Int64.max_int || Time.( > ) next_ev until then begin
      if advance then advance_shards t until;
      continue := false
    end
    else begin
      (* Conservative horizon: everything below min-event + lookahead is
         safe to run; cut at the next control and at [until]. *)
      let cap = sat_add next_ev t.lookahead in
      if Time.( >= ) cap until && Time.( > ) next_c until then begin
        (* Final epoch: inclusive of [until] (the run_until contract). *)
        run_epoch t ~bound:until ~incl:true;
        advance_shards t until
      end
      else begin
        let bound = Time.min cap next_c in
        run_epoch t ~bound ~incl:false;
        advance_shards t bound
      end
    end
  done

let run_until t ~until = exec_until t ~until ~advance:true

(* Run to quiescence (no pending events or controls). *)
let run t =
  while pending_events t > 0 || t.controls <> [] do
    let next_ev =
      Array.fold_left (fun acc s -> Time.min acc (Heap.min_time s.heap)) Int64.max_int t.shards
    in
    let next_c = match t.controls with [] -> Int64.max_int | c :: _ -> c.ctime in
    let next = Time.min next_ev next_c in
    if next = Int64.max_int then drain_outboxes t
    else exec_until t ~until:next ~advance:false
  done

(* Execute the next pending event; [false] when the queue is exhausted.
   Single-shard engines only (unit tests and interactive stepping). *)
let step t =
  if Array.length t.shards > 1 then invalid_arg "Engine.step: single-shard engines only";
  let s = t.shards.(0) in
  match Heap.pop s.heap with
  | None -> false
  | Some { Heap.time; payload = ev; _ } ->
      if ev.cancelled then release_event s ev
      else begin
        s.snow <- time;
        t.gnow <- time;
        s.sexec <- s.sexec + 1;
        let f = ev.run in
        release_event s ev;
        f ()
      end;
      true
