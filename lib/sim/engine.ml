(* The discrete-event engine: a clock and an ordered queue of pending
   events (closures).  Everything in the fabric — message deliveries,
   protocol timers, CPU completions, client injections — is an event.

   Determinism contract: with the same seed and the same sequence of
   [schedule] calls, two runs execute identical event sequences.  This
   is what lets the test suite assert exact cross-run agreement and lets
   every experiment in EXPERIMENTS.md be replayed bit-for-bit. *)

type event = { run : unit -> unit; mutable cancelled : bool }

type t = {
  mutable now : Time.t;
  heap : event Heap.t;
  mutable seq : int;
  rng : Rdb_prng.Rng.t;
  mutable executed : int;         (* events executed so far *)
  mutable horizon : Time.t;       (* events beyond this are not executed *)
  (* Schedule-exploration hook (lib/check): when installed, the nth
     schedule call (0-based) may be pushed behind its equal-timestamp
     group — a legal permutation of simultaneous events.  [None] costs
     one match per schedule. *)
  mutable defer_hook : (int -> bool) option;
  mutable sched_calls : int;
}

(* Far above any per-run event count, far below overflow: deferred
   events sort after every normally-sequenced event of the same
   timestamp while preserving their own relative order. *)
let defer_offset = 1_000_000_000

type timer = event

let create ?(seed = 42) () =
  {
    now = Time.zero;
    heap = Heap.create ();
    seq = 0;
    rng = Rdb_prng.Rng.create (Int64.of_int seed);
    executed = 0;
    horizon = Int64.max_int;
    defer_hook = None;
    sched_calls = 0;
  }

let now t = t.now
let rng t = t.rng
let executed_events t = t.executed
let pending_events t = Heap.length t.heap

let set_defer_hook t h =
  t.defer_hook <- h;
  t.sched_calls <- 0

let schedule_calls t = t.sched_calls

(* Schedule [f] to run at absolute simulated time [at] (clamped to now:
   scheduling in the past runs "immediately", preserving causality). *)
let schedule_at t ~at f =
  let at = Time.max at t.now in
  let ev = { run = f; cancelled = false } in
  t.seq <- t.seq + 1;
  let seq =
    match t.defer_hook with
    | None -> t.seq
    | Some defer ->
        let n = t.sched_calls in
        t.sched_calls <- n + 1;
        if defer n then t.seq + defer_offset else t.seq
  in
  Heap.push t.heap ~time:at ~seq ev;
  ev

let schedule_after t ~delay f = schedule_at t ~at:(Time.add t.now delay) f

let cancel (ev : timer) = ev.cancelled <- true

(* Execute the next pending event; [false] when the queue is exhausted
   or the next event lies beyond the horizon. *)
let step t =
  match Heap.peek t.heap with
  | None -> false
  | Some e when Time.( > ) e.Heap.time t.horizon -> false
  | Some _ -> (
      match Heap.pop t.heap with
      | None -> false
      | Some { Heap.time; payload = ev; _ } ->
          if not ev.cancelled then begin
            t.now <- time;
            t.executed <- t.executed + 1;
            ev.run ()
          end;
          true)

(* Run until the queue drains or simulated time would pass [until]. *)
let run_until t ~until =
  t.horizon <- until;
  while step t do
    ()
  done;
  (* Advance the clock to the horizon even if the queue drained early,
     so back-to-back run_until calls observe monotone time. *)
  if Time.( < ) t.now until then t.now <- until;
  t.horizon <- Int64.max_int

(* Run to quiescence (no pending events). *)
let run t =
  while step t do
    ()
  done
