(** The simulated wide-area network (see DESIGN.md §5).

    A message of [size] bytes from [src] to [dst]:
    + if cross-region, first serializes through [src]'s aggregate WAN
      egress pipe (if enabled);
    + then serializes through the [src]->[region dst] uplink at the
      Table 1 bandwidth of the region pair;
    + then travels for one-way latency (+ jitter) and is delivered.

    Fault injection: crashed nodes neither send nor receive; drop rules
    silently discard matching traffic (Byzantine senders/receivers,
    Example 2.4); partitions sever region pairs; per-directed-link loss
    and duplication rates model degraded links.  Every fault has an
    inverse ([recover], [heal_regions], [restore_link], a rate of 0),
    so the chaos subsystem can schedule bounded fault windows. *)

type 'm t
(** A network carrying payloads of type ['m]. *)

type delivery_hook =
  src:int ->
  dst:int ->
  nth:int ->
  floor:Time.t ->
  arrive:Time.t ->
  last:Time.t option ->
  Time.t
(** Schedule-exploration hook: called once per admitted send with the
    0-based send counter [nth], the earliest legal arrival [floor]
    (departure + base one-way latency; jitter only ever adds), the
    model-computed [arrive], and the latest arrival already scheduled
    on this directed link ([last]).  The returned time replaces
    [arrive], clamped up to [floor] — so every perturbed schedule is
    one the latency model could itself have produced. *)

val create :
  ?wan_egress_mbps:float ->
  ?trace:Rdb_trace.Trace.t ->
  ?shard_of:(int -> int) ->
  engine:Engine.t ->
  topo:Topology.t ->
  jitter_ms:float ->
  deliver:(src:int -> dst:int -> 'm -> unit) ->
  unit ->
  'm t
(** [wan_egress_mbps] caps one node's total cross-region egress
    (0 = uncapped); [jitter_ms] adds uniform random delay in
    [0, jitter_ms).  [trace] records the message lifecycle (queue/tx
    spans, deliver/drop instants) of every message; omitting it makes
    tracing cost a single match per send.  [shard_of] maps a node to
    its engine shard (default: everything on shard 0): deliveries are
    scheduled onto the destination's shard, which is legal under
    conservative sharding because cross-shard links are cross-region
    and the WAN one-way latency floor is the engine's lookahead. *)

val send : 'm t -> src:int -> dst:int -> size:int -> 'm -> unit
val multicast : 'm t -> src:int -> dsts:int list -> size:int -> 'm -> unit

val crash : 'm t -> int -> unit
val recover : 'm t -> int -> unit
val is_crashed : 'm t -> int -> bool

val add_drop_rule : ?label:string -> 'm t -> (src:int -> dst:int -> bool) -> unit
(** Install a rule that silently discards matching traffic.  A [label]
    makes the rule individually removable with {!remove_drop_rules}. *)

val remove_drop_rules : 'm t -> label:string -> unit
(** Remove every drop rule carrying [label]; unlabeled rules stay. *)

val clear_drop_rules : 'm t -> unit

val partition_regions : 'm t -> ra:int -> rb:int -> unit
(** Sever all traffic between two regions (both directions). *)

val heal_regions : 'm t -> ra:int -> rb:int -> unit
(** Inverse of {!partition_regions} on the same region pair. *)

val sever_link : 'm t -> src:int -> dst:int -> unit
(** Drop all traffic on one directed node pair (a link flap's down
    edge); other rules and the reverse direction are unaffected. *)

val restore_link : 'm t -> src:int -> dst:int -> unit
(** Inverse of {!sever_link} on the same directed pair. *)

val set_link_loss : 'm t -> src:int -> dst:int -> p:float -> unit
(** Drop each message on the directed link with probability [p]
    (clamped to 1); [p <= 0] heals the link.  Draws from the engine
    RNG only while a rate is installed. *)

val set_link_dup : 'm t -> src:int -> dst:int -> p:float -> unit
(** Deliver a duplicate copy with probability [p]; [p <= 0] heals. *)

val clear_link_rules : 'm t -> unit
(** Drop every per-link loss/duplication rate. *)

type 'm interposer = {
  on_send : src:int -> dst:int -> 'm -> ('m * Time.t) list;
      (** Rewrites one outgoing message into the emissions the
          corrupted sender actually produces, each with an extra
          sender-side delay: [[]] silences, a tampered payload
          equivocates, extra elements replay.  Emissions re-enter the
          normal wire model (bandwidth, latency, drop rules) when
          their hold expires. *)
  on_recv : src:int -> dst:int -> 'm -> bool;
      (** [false] = the corrupted receiver ignores this peer; judged
          at delivery time. *)
}
(** Adversarial interposition (lib/adversary).  Installed only while a
    Byzantine strategy is active; [None] costs one match per send and
    one per delivery. *)

val set_interposer : 'm t -> 'm interposer option -> unit

val set_delivery_hook : 'm t -> delivery_hook option -> unit
(** Install (or remove, with [None]) the exploration hook; resets the
    send counter and the per-link last-arrival table.  Off in every
    normal run. *)

val stats : 'm t -> Stats.t
val topology : 'm t -> Topology.t
