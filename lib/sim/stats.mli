(** Network traffic counters, split local (intra-region) vs global
    (inter-region) — the distinction at the heart of the paper's
    Table 2. *)

type t

val create : unit -> t

val count_sent : t -> local:bool -> size:int -> unit
val count_dropped : t -> size:int -> unit

val local_msgs : t -> int
val global_msgs : t -> int
val local_bytes : t -> int
val global_bytes : t -> int
val dropped_msgs : t -> int
val dropped_bytes : t -> int

type snapshot = {
  l_msgs : int;
  g_msgs : int;
  l_bytes : int;
  g_bytes : int;
  d_msgs : int;  (** messages dropped (rules, partitions, lossy links) *)
  d_bytes : int;
}

val snapshot : t -> snapshot

val diff : after:snapshot -> before:snapshot -> snapshot
(** Traffic between two snapshots (a measurement window). *)
