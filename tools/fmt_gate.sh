#!/usr/bin/env bash
# Formatting gate for `dune build @ci`.
#
# CI runs the real `dune build @fmt` (see .github/workflows/ci.yml).
# This local mirror performs the same check when an ocamlformat binary
# is available and degrades to a skip when it is not: the bare
# container has no ocamlformat, and `dune build @fmt` cannot be nested
# inside a dune action anyway (it would contend for the build lock).
set -u

if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "fmt-gate: ocamlformat not installed; skipping (CI runs 'dune build @fmt')"
  exit 0
fi

# Dune runs this action from _build/default; hop back to the source root.
root="${PWD%%/_build*}"
cd "$root" || exit 1

fail=0
while IFS= read -r f; do
  if ! ocamlformat --check "$f"; then
    echo "fmt-gate: $f is not formatted (fix with: dune fmt)"
    fail=1
  fi
done < <(find lib bin test bench examples \( -name '*.ml' -o -name '*.mli' \) 2>/dev/null)

if [ "$fail" -eq 0 ]; then
  echo "fmt-gate: all sources formatted"
fi
exit "$fail"
