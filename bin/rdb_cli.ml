(* resilientdb-cli: run simulated deployments from the command line.

   Examples:
     resilientdb-cli run --protocol geobft --clusters 4 --replicas 7
     resilientdb-cli run -p pbft -z 6 -n 10 --batch 200 --measure 30
     resilientdb-cli run -p geobft -z 2 -n 4 --fault primary
     resilientdb-cli sweep fig10 fig11 -j 8 --out results.json
     resilientdb-cli sweep --smoke -j 2           # the CI smoke matrix
     resilientdb-cli sweep all --full -j 16       # paper-length windows
     resilientdb-cli sweep --scenario "geobft z4 n7 b100 i64 seed1 w1000+4000"
     resilientdb-cli matrix            # print the Table 1 calibration *)

open Cmdliner
module Runner = Resilientdb.Experiments.Runner
module Scenario = Resilientdb.Scenario
module Sweep = Resilientdb.Sweep
module Figures = Resilientdb.Experiments.Figures
module Ablations = Resilientdb.Experiments.Ablations
module Config = Resilientdb.Config
module Time = Resilientdb.Time
module Report = Resilientdb.Report

let protocol_arg =
  let parse s =
    match Runner.proto_of_string s with
    | Some p -> Ok p
    | None ->
        Error (`Msg (Printf.sprintf "unknown protocol %S (geobft|pbft|zyzzyva|hotstuff|steward)" s))
  in
  let print fmt p = Format.pp_print_string fmt (String.lowercase_ascii (Runner.proto_name p)) in
  Arg.conv (parse, print)

let fault_arg =
  let parse s =
    match Scenario.fault_of_id (String.lowercase_ascii s) with
    | Some f -> Ok f
    | None -> (
        match String.lowercase_ascii s with
        | "one-nonprimary" -> Ok Runner.One_nonprimary
        | "f-nonprimary" -> Ok Runner.F_nonprimary
        | _ -> Error (`Msg "fault must be one of: none, one, f, primary, chaos[:SEED]"))
  in
  let print fmt f = Format.pp_print_string fmt (Runner.fault_name f) in
  Arg.conv (parse, print)

let storage_arg =
  let parse s =
    match Config.storage_of_string (String.lowercase_ascii s) with
    | Some st -> Ok st
    | None -> Error (`Msg (Printf.sprintf "unknown storage backend %S (mem|disk)" s))
  in
  let print fmt st = Format.pp_print_string fmt (Config.storage_name st) in
  Arg.conv (parse, print)

let run_cmd =
  let protocol =
    Arg.(value & opt protocol_arg Runner.Geobft
         & info [ "p"; "protocol" ] ~docv:"PROTO"
             ~doc:"Consensus protocol: geobft, pbft, zyzzyva, hotstuff or steward.")
  in
  let clusters =
    Arg.(value & opt int 4
         & info [ "z"; "clusters" ] ~docv:"Z"
             ~doc:"Number of clusters/regions (1-6, placed in the paper's region order).")
  in
  let replicas =
    Arg.(value & opt int 7 & info [ "n"; "replicas" ] ~docv:"N" ~doc:"Replicas per cluster.")
  in
  let batch = Arg.(value & opt int 100 & info [ "b"; "batch" ] ~docv:"TXNS" ~doc:"Batch size.") in
  let inflight =
    Arg.(value & opt int 64
         & info [ "inflight" ] ~docv:"BATCHES"
             ~doc:"Outstanding batches per cluster's client group (closed loop).")
  in
  let warmup =
    Arg.(value & opt int 3 & info [ "warmup" ] ~docv:"SEC" ~doc:"Warm-up seconds (simulated).")
  in
  let measure =
    Arg.(value & opt int 9 & info [ "measure" ] ~docv:"SEC" ~doc:"Measurement seconds (simulated).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.") in
  let reads =
    Arg.(value & opt float 0.0
         & info [ "reads" ] ~docv:"FRAC"
             ~doc:
               "Fraction of batches that are read-only point reads, served from replica state \
                without consensus (clients wait for f+1 matching result digests).")
  in
  let scans =
    Arg.(value & opt float 0.0
         & info [ "scans" ] ~docv:"FRAC"
             ~doc:"Fraction of batches that are read-only range scans (also bypass consensus).")
  in
  let storage =
    Arg.(value & opt storage_arg Config.Memory
         & info [ "storage" ] ~docv:"BACKEND"
             ~doc:
               "Storage backend under every replica's state machine: mem (in-memory records) \
                or disk (append-only persistent block store with snapshot compaction and \
                crash recovery).  Consensus results are byte-identical either way.")
  in
  let fault =
    Arg.(value & opt fault_arg Runner.No_fault
         & info [ "fault" ] ~docv:"FAULT"
             ~doc:
               "Failure scenario: none, one (non-primary crash), f (f crashes per cluster), \
                primary (mid-run primary crash), chaos or chaos:SEED (seeded fault timeline \
                with continuous safety-invariant checking; same seed, same faults).")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:
               "Record a consensus-path trace and write it as Chrome trace-event JSON to \
                \\$(docv) (load it at ui.perfetto.dev or chrome://tracing).  Also prints the \
                per-phase latency breakdown and the deterministic trace digest: same seed, \
                same digest.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs" ] ~docv:"N"
             ~doc:
               "Executor domains for cluster-parallel conservative execution (DESIGN.md \
                \xc2\xa715).  Results are byte-identical for every value — reports and trace \
                digests never depend on $(docv) — only wall-clock changes.")
  in
  let go protocol z n batch inflight warmup measure seed reads scans storage fault trace_out jobs =
    let cfg =
      Config.make ~z ~n ~batch_size:batch ~client_inflight:inflight ~seed
        ~read_fraction:reads ~scan_fraction:scans ~storage ()
    in
    let windows = { Scenario.warmup = Time.sec warmup; measure = Time.sec measure } in
    let scenario =
      Scenario.make ~windows ~fault ~trace:(Option.is_some trace_out) protocol cfg
    in
    Printf.printf "scenario: %s\n%!" (Scenario.to_string scenario);
    let tracer =
      Option.map (fun _ -> Resilientdb.Trace.create ~keep_events:true ()) trace_out
    in
    let t0 = Unix.gettimeofday () in
    let report = Runner.run ?tracer ~jobs scenario in
    Printf.printf "%s\n" (Report.to_string report);
    Printf.printf "%s\n" (Format.asprintf "%a" Report.pp_recovery report);
    (match (trace_out, tracer) with
    | Some file, Some tr ->
        let oc = open_out file in
        Resilientdb.Trace.write_chrome_json tr oc;
        close_out oc;
        Printf.printf "%s" (Format.asprintf "%a" Report.pp_trace report);
        (match report.Report.trace with
        | Some s -> Printf.printf "trace digest: %s\n" s.Resilientdb.Trace.digest_hex
        | None -> ());
        Printf.printf "wrote %s (%d events)\n" file (Resilientdb.Trace.events_kept tr)
    | _ -> ());
    Printf.printf "(simulated %ds in %.1fs of wall-clock time)\n" (warmup + measure)
      (Unix.gettimeofday () -. t0)
  in
  let term =
    Term.(
      const go $ protocol $ clusters $ replicas $ batch $ inflight $ warmup $ measure $ seed
      $ reads $ scans $ storage $ fault $ trace_out $ jobs)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one simulated geo-scale deployment and report its metrics.") term

(* -- sweep ----------------------------------------------------------------- *)

(* The CI smoke matrix: one small fixed-seed traced run per protocol.
   Kept aligned with the bench smoke so both artifacts exercise the
   same deployments. *)
let smoke_scenarios () =
  let windows = { Scenario.warmup = Time.ms 500; measure = Time.ms 1500 } in
  let cfg = Config.make ~z:2 ~n:4 ~batch_size:50 ~client_inflight:16 ~seed:1 () in
  List.map (fun p -> Scenario.make ~windows ~trace:true p cfg) Scenario.all_protocols

(* The chaos validation matrix: every protocol absorbs its seeded
   fault envelope with the invariant monitor armed (same deployments
   as test/chaos_sweep.ml). *)
let chaos_scenarios ~seeds () =
  let windows = { Scenario.warmup = Time.sec 1; measure = Time.sec 11 } in
  let cfg = Config.make ~z:2 ~n:4 ~batch_size:20 ~client_inflight:8 ~seed:1 () in
  List.concat_map
    (fun p -> List.map (fun seed -> Scenario.make ~windows ~fault:(Scenario.Chaos seed) p cfg) seeds)
    Scenario.all_protocols

let matrix_names = [ "smoke"; "fig10"; "fig11"; "fig12"; "fig13"; "ablations"; "table2"; "chaos"; "all" ]

let rec matrix_scenarios ~windows ~seeds = function
  | "smoke" -> Ok (smoke_scenarios ())
  | "fig10" -> Ok (Figures.Fig10.scenarios ~windows ())
  | "fig11" ->
      (* Paper grid first, then the scale extension (n to 100+, z to 32
         tiled regions with 1.6M aggregated clients). *)
      Ok (Figures.Fig11.scenarios ~windows () @ Figures.Fig11.scale_scenarios ~windows ())
  | "fig12" ->
      Ok
        (Figures.Fig12.scenarios_one_failure ~windows ()
        @ Figures.Fig12.scenarios_f_failures ~windows ()
        @ Figures.Fig12.scenarios_primary_failure ~windows ()
        @ Figures.Fig12.scale_scenarios ~windows ())
  | "fig13" -> Ok (Figures.Fig13.scenarios ~windows ())
  | "ablations" -> Ok (Ablations.scenarios ~windows ())
  | "table2" -> Ok (Resilientdb.Experiments.Tables.Table2.scenarios ~windows ())
  | "chaos" -> Ok (chaos_scenarios ~seeds ())
  | "all" ->
      Ok
        (List.concat_map
           (fun m ->
             match matrix_scenarios ~windows ~seeds m with Ok l -> l | Error _ -> [])
           [ "fig10"; "fig11"; "fig12"; "fig13"; "ablations"; "table2" ])
  | other ->
      Error
        (Printf.sprintf "unknown matrix %S (expected one of: %s, or --scenario ID)" other
           (String.concat " " matrix_names))

let sweep_cmd =
  let matrices =
    Arg.(value & pos_all string []
         & info [] ~docv:"MATRIX"
             ~doc:
               (Printf.sprintf
                  "Scenario matrices to sweep: %s.  Combine freely with --scenario."
                  (String.concat ", " matrix_names)))
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Shorthand for the smoke matrix (one small traced run per protocol) — the CI job.")
  in
  let jobs =
    Arg.(value & opt int (Sweep.default_jobs ())
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:
               "Worker domains (default: cores - 1).  Results are byte-identical for every N; \
                $(docv)=1 is a genuinely serial pass.")
  in
  let full =
    Arg.(value & flag
         & info [ "full" ]
             ~doc:"Paper-length measurement windows (15 s warm-up + 45 s measure) instead of the \
                   quick defaults.")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Arm the consensus-path tracer on every scenario so each report carries its \
                   deterministic trace digest.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:
               "Write the aggregated results document to \\$(docv): CSV if it ends in .csv, \
                versioned JSON otherwise.  The document is a pure function of the scenario \
                list — no wall-clock times or job counts — so -j 1 and -j 8 write identical \
                bytes.")
  in
  let scenario_ids =
    Arg.(value & opt_all string []
         & info [ "scenario"; "s" ] ~docv:"ID"
             ~doc:
               "Add one explicit scenario by its stable id (repeatable), e.g. \
                \"geobft z4 n7 b100 i64 seed1 w1000+4000\".")
  in
  let seeds =
    Arg.(value & opt string "1-4"
         & info [ "seeds" ] ~docv:"LO-HI" ~doc:"Chaos-matrix planner seed range (default 1-4).")
  in
  let go matrices smoke jobs full trace out scenario_ids seeds =
    let windows = if full then Scenario.full_windows else Scenario.default_windows in
    let seeds =
      match String.split_on_char '-' (String.trim seeds) with
      | [ one ] when int_of_string_opt one <> None -> [ int_of_string one ]
      | [ lo; hi ] -> (
          match (int_of_string_opt lo, int_of_string_opt hi) with
          | Some lo, Some hi when lo <= hi -> List.init (hi - lo + 1) (fun i -> lo + i)
          | _ -> prerr_endline "--seeds must be LO-HI"; exit 2)
      | _ -> prerr_endline "--seeds must be LO-HI"; exit 2
    in
    let matrices = if smoke then "smoke" :: matrices else matrices in
    if matrices = [] && scenario_ids = [] then begin
      Printf.eprintf "nothing to sweep: name a matrix (%s) or pass --scenario ID\n"
        (String.concat ", " matrix_names);
      exit 2
    end;
    let from_matrices =
      List.concat_map
        (fun m ->
          match matrix_scenarios ~windows ~seeds m with
          | Ok l -> l
          | Error msg -> prerr_endline msg; exit 2)
        matrices
    in
    let explicit =
      List.map
        (fun id ->
          match Scenario.of_string id with
          | Some s -> s
          | None ->
              Printf.eprintf "unparseable scenario id %S\n" id;
              exit 2)
        scenario_ids
    in
    let scenarios = from_matrices @ explicit in
    let scenarios =
      if trace then List.map (fun s -> { s with Scenario.trace = true }) scenarios else scenarios
    in
    Printf.printf "sweeping %d scenarios over %d worker domain%s\n%!" (List.length scenarios)
      jobs (if jobs = 1 then "" else "s");
    let t0 = Unix.gettimeofday () in
    let on_done ~done_ ~total scenario outcome =
      match outcome with
      | Ok (r : Report.t) ->
          Printf.printf "  [%*d/%d] ok   %-55s %10.0f txn/s  lat %7.1f ms\n%!"
            (String.length (string_of_int total)) done_ total (Scenario.to_string scenario)
            r.Report.throughput_txn_s r.Report.avg_latency_ms
      | Error _ ->
          Printf.printf "  [%*d/%d] FAIL %s\n%!"
            (String.length (string_of_int total)) done_ total (Scenario.to_string scenario)
    in
    let results = Sweep.run ~jobs ~on_done scenarios in
    let wall = Unix.gettimeofday () -. t0 in
    let failures =
      List.filter_map
        (fun (r : Sweep.result) ->
          match r.Sweep.outcome with
          | Ok _ -> None
          | Error msg -> Some (Scenario.to_string r.Sweep.scenario, msg))
        results
    in
    (match Sweep.digests results with
    | [] -> ()
    | ds ->
        Printf.printf "trace digests (deterministic: same scenario, same digest, any -j):\n";
        List.iter (fun (id, d) -> Printf.printf "  %s  %s\n" d id) ds);
    (match out with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        if Filename.check_suffix file ".csv" then Sweep.write_csv oc results
        else Sweep.write_json oc results;
        close_out oc;
        Printf.printf "wrote %s (%d results)\n" file (List.length results));
    (* Wall-clock summary goes to the console only, never into the
       results document, which must be identical across -j values. *)
    Printf.printf "swept %d scenarios in %.1fs of wall-clock time (-j %d)\n" (List.length results)
      wall jobs;
    if failures <> [] then begin
      Printf.printf "%d scenario(s) failed:\n" (List.length failures);
      List.iter (fun (id, msg) -> Printf.printf "  %s\n%s\n" id msg) failures;
      exit 1
    end
  in
  let term =
    Term.(const go $ matrices $ smoke $ jobs $ full $ trace $ out $ scenario_ids $ seeds)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a matrix of simulated deployments across OCaml 5 domains and aggregate the \
          reports into one versioned document.  Deterministic: for a fixed scenario list the \
          ordered results (and every trace digest) are identical for any -j.")
    term

let matrix_cmd =
  let go () = Resilientdb.Experiments.Tables.Table1.print_configured () in
  Cmd.v
    (Cmd.info "matrix" ~doc:"Print the Table 1 latency/bandwidth calibration matrix.")
    Term.(const go $ const ())

(* -- check ------------------------------------------------------------------ *)

module Check = Resilientdb.Check
module Perturb = Resilientdb.Perturb
module Mutation = Resilientdb.Mutation

let check_cmd =
  let budget =
    Arg.(value & opt int 64
         & info [ "budget" ] ~docv:"N"
             ~doc:"Schedules to explore per scenario (schedule 0 is unperturbed).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Perturbation seed.")
  in
  let scenario_ids =
    Arg.(value & opt_all string []
         & info [ "scenario"; "s" ] ~docv:"ID"
             ~doc:
               "Explore this scenario by its stable id (repeatable) instead of the default \
                per-protocol matrix.")
  in
  let mutate =
    Arg.(value & opt (some string) None
         & info [ "mutate" ] ~docv:"ID"
             ~doc:
               "Activate one test-only protocol mutation and verify the checker catches it \
                (the scenario that exposes it is chosen automatically unless --scenario is \
                given).")
  in
  let mutants_flag =
    Arg.(value & flag
         & info [ "mutants" ]
             ~doc:
               "Validation sweep: explore every known mutation in turn; each must be caught \
                and shrunk within the budget.")
  in
  let replay_file =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Replay a counterexample artifact and report whether it reproduces.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"DIR"
             ~doc:"Write every counterexample artifact as \\$(docv)/check-<name>.json.")
  in
  let write_artifact out name (ce : Check.counterexample) =
    match out with
    | None -> ()
    | Some dir ->
        (if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
        let file = Filename.concat dir (Printf.sprintf "check-%s.json" name) in
        let oc = open_out file in
        output_string oc (Check.counterexample_to_string ce);
        output_char oc '\n';
        close_out oc;
        Printf.printf "  wrote %s\n%!" file
  in
  let describe (ce : Check.counterexample) =
    Printf.printf "  VIOLATION %s at schedule %d (%d runs): %s\n" ce.Check.violation.invariant
      ce.Check.schedule ce.Check.runs ce.Check.violation.detail;
    Printf.printf "  minimal schedule (%d perturbations): [%s]\n"
      (List.length ce.Check.perturbations)
      (String.concat "; " (List.map Perturb.to_string ce.Check.perturbations));
    match ce.Check.digest with
    | Some d -> Printf.printf "  trace digest: %s\n%!" d
    | None -> ()
  in
  let explore_label ~budget ~seed ?mutation ?provoke ~name scenario =
    Printf.printf "check %-24s %s%s\n%!" name
      (Scenario.to_string scenario)
      (match mutation with None -> "" | Some m -> Printf.sprintf "  [mutation %s]" m);
    let last = ref (-1) in
    let on_schedule ~schedule =
      if schedule / 16 > !last then begin
        last := schedule / 16;
        Printf.printf "  ... schedule %d/%d\n%!" schedule budget
      end
    in
    Check.explore ~budget ~seed ?mutation ?provoke ~on_schedule scenario
  in
  let go budget seed scenario_ids mutate mutants_flag replay_file out =
    match replay_file with
    | Some file -> (
        let contents =
          let ic = open_in_bin file in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic; s
        in
        match Check.counterexample_of_string contents with
        | Error msg -> Printf.eprintf "cannot load %s: %s\n" file msg; exit 2
        | Ok ce ->
            Printf.printf "replaying %s: %s (%d perturbations)\n%!" file
              (Scenario.to_string ce.Check.scenario)
              (List.length ce.Check.perturbations);
            let r = Check.replay ce in
            (match r.Check.observed with
            | Some v -> Printf.printf "observed: %s\n" (Check.violation_to_string v)
            | None -> Printf.printf "observed: no violation\n");
            (match r.Check.digest_match with
            | Some true -> Printf.printf "trace digest matches the artifact\n"
            | Some false -> Printf.printf "trace digest DIFFERS from the artifact\n"
            | None -> ());
            if r.Check.reproduced then Printf.printf "reproduced\n"
            else begin
              Printf.printf "NOT reproduced\n";
              exit 1
            end)
    | None ->
        let explicit =
          List.map
            (fun id ->
              match Scenario.of_string id with
              | Some s -> s
              | None -> Printf.eprintf "unparseable scenario id %S\n" id; exit 2)
            scenario_ids
        in
        if mutants_flag then begin
          (* Every mutation must be caught and shrunk within the budget. *)
          let escaped = ref [] in
          List.iter
            (fun (id, (scenario, provoke)) ->
              match explore_label ~budget ~seed ~mutation:id ?provoke ~name:id scenario with
              | Some ce ->
                  describe ce;
                  write_artifact out id ce
              | None ->
                  Printf.printf "  ESCAPED: mutation %s survived %d schedules\n%!" id budget;
                  escaped := id :: !escaped)
            Check.mutants;
          if !escaped <> [] then begin
            Printf.printf "%d mutation(s) escaped the checker: %s\n" (List.length !escaped)
              (String.concat ", " (List.rev !escaped));
            exit 1
          end;
          Printf.printf "all %d mutations caught and shrunk\n" (List.length Check.mutants)
        end
        else
          match mutate with
          | Some id -> (
              if not (List.mem id Mutation.known) then begin
                Printf.eprintf "unknown mutation %S (known: %s)\n" id
                  (String.concat ", " (List.map fst Check.mutants));
                exit 2
              end;
              let scenario, provoke =
                match (explicit, Check.mutant_scenario id) with
                | s :: _, reg -> (s, Option.bind reg (fun (_, p) -> p))
                | [], Some (s, p) -> (s, p)
                | [], None -> (Check.default_scenario Scenario.Geobft, None)
              in
              match explore_label ~budget ~seed ~mutation:id ?provoke ~name:id scenario with
              | Some ce ->
                  describe ce;
                  write_artifact out id ce
              | None ->
                  Printf.printf "  ESCAPED: mutation %s survived %d schedules\n" id budget;
                  exit 1)
          | None ->
              (* Bug hunt: the unmutated protocols must come out clean. *)
              let scenarios =
                if explicit <> [] then
                  List.map (fun s -> (Scenario.proto_name s.Scenario.proto, s)) explicit
                else
                  List.map
                    (fun p -> (Scenario.proto_name p, Check.default_scenario ~seed p))
                    Scenario.all_protocols
              in
              let dirty = ref [] in
              List.iter
                (fun (name, scenario) ->
                  match explore_label ~budget ~seed ~name scenario with
                  | Some ce ->
                      describe ce;
                      write_artifact out name ce;
                      dirty := name :: !dirty
                  | None -> Printf.printf "  clean over %d schedules\n%!" budget)
                scenarios;
              if !dirty <> [] then begin
                Printf.printf "%d scenario(s) violated an invariant: %s\n" (List.length !dirty)
                  (String.concat ", " (List.rev !dirty));
                exit 1
              end
  in
  let term =
    Term.(const go $ budget $ seed $ scenario_ids $ mutate $ mutants_flag $ replay_file $ out)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Explore seeded schedule perturbations (delivery delays, tie-break permutations, \
          same-link reorders) of simulated deployments under an invariant oracle; shrink any \
          violation to a minimal replayable counterexample.")
    term

(* -- attack ----------------------------------------------------------------- *)

module Adversary = Resilientdb.Adversary

let attack_cmd =
  let budget =
    Arg.(value & opt int 64
         & info [ "budget" ] ~docv:"N"
             ~doc:"Attack programs to try per scenario (attempt 0 is the empty attack).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Attack-sampler seed.")
  in
  let scenario_ids =
    Arg.(value & opt_all string []
         & info [ "scenario"; "s" ] ~docv:"ID"
             ~doc:
               "Search this scenario by its stable id (repeatable) instead of the default \
                per-protocol matrix.  An attack=<id> token in the scenario pins attempt 0 to \
                that program.")
  in
  let mutate =
    Arg.(value & opt (some string) None
         & info [ "mutate" ] ~docv:"ID"
             ~doc:
               "Activate one test-only protocol mutation and verify the attack search exposes \
                it (the scenario is chosen automatically unless --scenario is given).")
  in
  let mutants_flag =
    Arg.(value & flag
         & info [ "mutants" ]
             ~doc:
               "Validation sweep: search every registered attack mutant in turn; each must be \
                caught and shrunk within the budget.")
  in
  let replay_file =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Replay an attack artifact and report whether it reproduces.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"DIR"
             ~doc:"Write every attack artifact as \\$(docv)/attack-<name>.json.")
  in
  let write_artifact out name (ce : Check.attack_counterexample) =
    match out with
    | None -> ()
    | Some dir ->
        (if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
        let file = Filename.concat dir (Printf.sprintf "attack-%s.json" name) in
        let oc = open_out file in
        output_string oc (Check.attack_counterexample_to_string ce);
        output_char oc '\n';
        close_out oc;
        Printf.printf "  wrote %s\n%!" file
  in
  let describe (ce : Check.attack_counterexample) =
    Printf.printf "  VIOLATION %s at attempt %d (%d runs): %s\n"
      ce.Check.atk_violation.invariant ce.Check.atk_attempt ce.Check.atk_runs
      ce.Check.atk_violation.detail;
    Printf.printf "  minimal attack (%d rules): %s\n"
      (List.length ce.Check.atk_attack.Adversary.Attack.rules)
      (Adversary.Attack.to_id ce.Check.atk_attack);
    match ce.Check.atk_digest with
    | Some d -> Printf.printf "  trace digest: %s\n%!" d
    | None -> ()
  in
  let search_label ~budget ~seed ?mutation ~name scenario =
    Printf.printf "attack %-24s %s%s\n%!" name
      (Scenario.to_string scenario)
      (match mutation with None -> "" | Some m -> Printf.sprintf "  [mutation %s]" m);
    let last = ref (-1) in
    let on_attempt ~attempt =
      if attempt / 16 > !last then begin
        last := attempt / 16;
        Printf.printf "  ... attempt %d/%d\n%!" attempt budget
      end
    in
    Check.explore_attacks ~budget ~seed ?mutation ~on_attempt scenario
  in
  let go budget seed scenario_ids mutate mutants_flag replay_file out =
    match replay_file with
    | Some file -> (
        let contents =
          let ic = open_in_bin file in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic; s
        in
        match Check.attack_counterexample_of_string contents with
        | Error msg -> Printf.eprintf "cannot load %s: %s\n" file msg; exit 2
        | Ok ce ->
            Printf.printf "replaying %s: %s attack=%s\n%!" file
              (Scenario.to_string ce.Check.atk_scenario)
              (Adversary.Attack.to_id ce.Check.atk_attack);
            let r = Check.replay_attack ce in
            (match r.Check.observed with
            | Some v -> Printf.printf "observed: %s\n" (Check.violation_to_string v)
            | None -> Printf.printf "observed: no violation\n");
            (match r.Check.digest_match with
            | Some true -> Printf.printf "trace digest matches the artifact\n"
            | Some false -> Printf.printf "trace digest DIFFERS from the artifact\n"
            | None -> ());
            if r.Check.reproduced then Printf.printf "reproduced\n"
            else begin
              Printf.printf "NOT reproduced\n";
              exit 1
            end)
    | None ->
        let explicit =
          List.map
            (fun id ->
              match Scenario.of_string id with
              | Some s -> s
              | None -> Printf.eprintf "unparseable scenario id %S\n" id; exit 2)
            scenario_ids
        in
        if mutants_flag then begin
          (* Every registered attack mutant must be exposed and shrunk. *)
          let escaped = ref [] in
          List.iter
            (fun (id, scenario) ->
              match search_label ~budget ~seed ~mutation:id ~name:id scenario with
              | Some ce ->
                  describe ce;
                  write_artifact out id ce
              | None ->
                  Printf.printf "  ESCAPED: mutation %s survived %d attack programs\n%!" id
                    budget;
                  escaped := id :: !escaped)
            Check.attack_mutants;
          if !escaped <> [] then begin
            Printf.printf "%d mutation(s) escaped the attack search: %s\n"
              (List.length !escaped)
              (String.concat ", " (List.rev !escaped));
            exit 1
          end;
          Printf.printf "all %d mutations exposed and shrunk\n"
            (List.length Check.attack_mutants)
        end
        else
          match mutate with
          | Some id -> (
              if not (List.mem id Mutation.known) then begin
                Printf.eprintf "unknown mutation %S (known: %s)\n" id
                  (String.concat ", " Mutation.known);
                exit 2
              end;
              let scenario =
                match (explicit, Check.attack_mutant_scenario id) with
                | s :: _, _ -> s
                | [], Some s -> s
                | [], None -> Check.default_attack_scenario Scenario.Geobft
              in
              match search_label ~budget ~seed ~mutation:id ~name:id scenario with
              | Some ce ->
                  describe ce;
                  write_artifact out id ce
              | None ->
                  Printf.printf "  ESCAPED: mutation %s survived %d attack programs\n" id
                    budget;
                  exit 1)
          | None ->
              (* Bug hunt: the unmutated protocols must absorb every
                 in-envelope strategy. *)
              let scenarios =
                if explicit <> [] then
                  List.map (fun s -> (Scenario.proto_name s.Scenario.proto, s)) explicit
                else
                  List.map
                    (fun p -> (Scenario.proto_name p, Check.default_attack_scenario ~seed p))
                    Scenario.all_protocols
              in
              let dirty = ref [] in
              List.iter
                (fun (name, scenario) ->
                  match search_label ~budget ~seed ~name scenario with
                  | Some ce ->
                      describe ce;
                      write_artifact out name ce;
                      dirty := name :: !dirty
                  | None -> Printf.printf "  clean over %d attack programs\n%!" budget)
                scenarios;
              if !dirty <> [] then begin
                Printf.printf "%d scenario(s) violated an invariant: %s\n"
                  (List.length !dirty)
                  (String.concat ", " (List.rev !dirty));
                exit 1
              end
  in
  let term =
    Term.(const go $ budget $ seed $ scenario_ids $ mutate $ mutants_flag $ replay_file $ out)
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:
         "Search the Byzantine-strategy space (silence, equivocation, delays, stale shares, \
          replays, deafness) of simulated deployments under the invariant oracle; shrink any \
          violation to a 1-minimal replayable attack program.")
    term

let main =
  Cmd.group
    (Cmd.info "resilientdb-cli" ~version:"1.0.0"
       ~doc:"GeoBFT and the ResilientDB fabric: simulated geo-scale BFT deployments.")
    [ run_cmd; sweep_cmd; matrix_cmd; check_cmd; attack_cmd ]

let () = exit (Cmd.eval main)
