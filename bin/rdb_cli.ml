(* resilientdb-cli: run one simulated deployment from the command line.

   Examples:
     resilientdb-cli run --protocol geobft --clusters 4 --replicas 7
     resilientdb-cli run -p pbft -z 6 -n 10 --batch 200 --measure 30
     resilientdb-cli run -p geobft -z 2 -n 4 --fault primary
     resilientdb-cli matrix            # print the Table 1 calibration *)

open Cmdliner
module Runner = Resilientdb.Experiments.Runner
module Config = Resilientdb.Config
module Time = Resilientdb.Time
module Report = Resilientdb.Report

let protocol_arg =
  let parse s =
    match Runner.proto_of_string s with
    | Some p -> Ok p
    | None ->
        Error (`Msg (Printf.sprintf "unknown protocol %S (geobft|pbft|zyzzyva|hotstuff|steward)" s))
  in
  let print fmt p = Format.pp_print_string fmt (String.lowercase_ascii (Runner.proto_name p)) in
  Arg.conv (parse, print)

let fault_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "none" -> Ok Runner.No_fault
    | "one" | "one-nonprimary" -> Ok Runner.One_nonprimary
    | "f" | "f-nonprimary" -> Ok Runner.F_nonprimary
    | "primary" -> Ok Runner.Primary_failure
    | "chaos" -> Ok (Runner.Chaos (-1))
    | s when String.length s > 6 && String.sub s 0 6 = "chaos:" -> (
        match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
        | Some seed when seed >= 0 -> Ok (Runner.Chaos seed)
        | _ -> Error (`Msg "chaos seed must be a non-negative integer"))
    | _ -> Error (`Msg "fault must be one of: none, one, f, primary, chaos[:SEED]")
  in
  let print fmt f = Format.pp_print_string fmt (Runner.fault_name f) in
  Arg.conv (parse, print)

let run_cmd =
  let protocol =
    Arg.(value & opt protocol_arg Runner.Geobft
         & info [ "p"; "protocol" ] ~docv:"PROTO"
             ~doc:"Consensus protocol: geobft, pbft, zyzzyva, hotstuff or steward.")
  in
  let clusters =
    Arg.(value & opt int 4
         & info [ "z"; "clusters" ] ~docv:"Z"
             ~doc:"Number of clusters/regions (1-6, placed in the paper's region order).")
  in
  let replicas =
    Arg.(value & opt int 7 & info [ "n"; "replicas" ] ~docv:"N" ~doc:"Replicas per cluster.")
  in
  let batch = Arg.(value & opt int 100 & info [ "b"; "batch" ] ~docv:"TXNS" ~doc:"Batch size.") in
  let inflight =
    Arg.(value & opt int 64
         & info [ "inflight" ] ~docv:"BATCHES"
             ~doc:"Outstanding batches per cluster's client group (closed loop).")
  in
  let warmup =
    Arg.(value & opt int 3 & info [ "warmup" ] ~docv:"SEC" ~doc:"Warm-up seconds (simulated).")
  in
  let measure =
    Arg.(value & opt int 9 & info [ "measure" ] ~docv:"SEC" ~doc:"Measurement seconds (simulated).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.") in
  let fault =
    Arg.(value & opt fault_arg Runner.No_fault
         & info [ "fault" ] ~docv:"FAULT"
             ~doc:
               "Failure scenario: none, one (non-primary crash), f (f crashes per cluster), \
                primary (mid-run primary crash), chaos or chaos:SEED (seeded fault timeline \
                with continuous safety-invariant checking; same seed, same faults).")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:
               "Record a consensus-path trace and write it as Chrome trace-event JSON to \
                \\$(docv) (load it at ui.perfetto.dev or chrome://tracing).  Also prints the \
                per-phase latency breakdown and the deterministic trace digest: same seed, \
                same digest.")
  in
  let go protocol z n batch inflight warmup measure seed fault trace_out =
    let cfg = Config.make ~z ~n ~batch_size:batch ~client_inflight:inflight ~seed () in
    let windows = { Runner.warmup = Time.sec warmup; measure = Time.sec measure } in
    let tracer =
      Option.map (fun _ -> Resilientdb.Trace.create ~keep_events:true ()) trace_out
    in
    let t0 = Unix.gettimeofday () in
    let report = Runner.run_proto protocol ~windows ~fault ?tracer cfg in
    Printf.printf "%s\n" (Report.to_string report);
    Printf.printf "%s\n" (Format.asprintf "%a" Report.pp_recovery report);
    (match (trace_out, tracer) with
    | Some file, Some tr ->
        let oc = open_out file in
        Resilientdb.Trace.write_chrome_json tr oc;
        close_out oc;
        Printf.printf "%s" (Format.asprintf "%a" Report.pp_trace report);
        (match report.Report.trace with
        | Some s -> Printf.printf "trace digest: %s\n" s.Resilientdb.Trace.digest_hex
        | None -> ());
        Printf.printf "wrote %s (%d events)\n" file (Resilientdb.Trace.events_kept tr)
    | _ -> ());
    Printf.printf "(simulated %ds in %.1fs of wall-clock time)\n" (warmup + measure)
      (Unix.gettimeofday () -. t0)
  in
  let term =
    Term.(
      const go $ protocol $ clusters $ replicas $ batch $ inflight $ warmup $ measure $ seed
      $ fault $ trace_out)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one simulated geo-scale deployment and report its metrics.") term

let matrix_cmd =
  let go () = Resilientdb.Experiments.Tables.Table1.print_configured () in
  Cmd.v
    (Cmd.info "matrix" ~doc:"Print the Table 1 latency/bandwidth calibration matrix.")
    Term.(const go $ const ())

let main =
  Cmd.group
    (Cmd.info "resilientdb-cli" ~version:"1.0.0"
       ~doc:"GeoBFT and the ResilientDB fabric: simulated geo-scale BFT deployments.")
    [ run_cmd; matrix_cmd ]

let () = exit (Cmd.eval main)
