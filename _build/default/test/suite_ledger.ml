(* Ledger tests: hash chaining, tamper detection, recovery reads,
   certified audit, prefix relations — the §3 "The ledger" properties. *)

module Txn = Rdb_types.Txn
module Batch = Rdb_types.Batch
module Certificate = Rdb_types.Certificate
module Keychain = Rdb_crypto.Keychain
module Time = Rdb_sim.Time
module Block = Rdb_ledger.Block
module Ledger = Rdb_ledger.Ledger

let kc = lazy (Keychain.create ~seed:"ledger-test" ~n_nodes:8)

let mk_batch id =
  let txns = Array.init 3 (fun i -> Txn.make ~key:(id + i) ~value:(Int64.of_int id) ~client_id:1 ()) in
  Batch.create ~keychain:(Lazy.force kc) ~id ~cluster:0 ~origin:7 ~txns ~created:Time.zero

let mk_cert (b : Batch.t) ~seq =
  let kc = Lazy.force kc in
  let payload = Certificate.commit_payload ~cluster:0 ~view:0 ~seq ~digest:b.Batch.digest in
  let commits =
    List.map
      (fun r -> { Certificate.replica = r; signature = Keychain.sign kc ~signer:r payload })
      [ 0; 1; 2 ]
  in
  Certificate.make ~cluster:0 ~view:0 ~seq ~digest:b.Batch.digest ~commits

let build n =
  let l = Ledger.create () in
  for i = 0 to n - 1 do
    let b = mk_batch i in
    ignore (Ledger.append l ~round:i ~cluster:0 ~batch:b ~cert:(Some (mk_cert b ~seq:i)))
  done;
  l

let test_append_and_verify () =
  let l = build 20 in
  Alcotest.(check int) "length" 20 (Ledger.length l);
  Alcotest.(check int) "txns" 60 (Ledger.txn_count l);
  Alcotest.(check bool) "chain verifies" true (Ledger.verify l);
  Alcotest.(check bool) "certified audit passes" true
    (Ledger.verify_certified l ~keychain:(Lazy.force kc) ~quorum:3);
  Alcotest.(check bool) "strict quorum fails" false
    (Ledger.verify_certified l ~keychain:(Lazy.force kc) ~quorum:4)

let test_tamper_detected () =
  let l = build 10 in
  Ledger.tamper_for_test l ~height:4 ~batch:(mk_batch 999);
  Alcotest.(check bool) "tampering detected" false (Ledger.verify l)

let test_hash_links () =
  let l = build 5 in
  for i = 1 to 4 do
    Alcotest.(check string) "prev link" (Ledger.get l (i - 1)).Block.hash
      (Ledger.get l i).Block.prev_hash
  done;
  Alcotest.(check string) "genesis link" Block.genesis_hash (Ledger.get l 0).Block.prev_hash;
  Alcotest.(check string) "tip" (Ledger.get l 4).Block.hash (Ledger.tip_hash l)

let test_read_from () =
  let l = build 10 in
  let suffix = Ledger.read_from l ~height:7 in
  Alcotest.(check int) "suffix length" 3 (List.length suffix);
  Alcotest.(check int) "first height" 7 (List.hd suffix).Block.height;
  Alcotest.(check int) "empty suffix" 0 (List.length (Ledger.read_from l ~height:10))

let test_prefix_relation () =
  let a = build 10 and b = build 15 in
  Alcotest.(check bool) "a prefix of b" true (Ledger.is_prefix_of a b);
  Alcotest.(check bool) "b not prefix of a" false (Ledger.is_prefix_of b a);
  Alcotest.(check int) "common prefix" 10 (Ledger.common_prefix a b);
  Ledger.tamper_for_test a ~height:5 ~batch:(mk_batch 777);
  (* common_prefix compares stored hashes, which tampering does not
     recompute — so rebuild instead with a diverging block. *)
  let c = build 10 in
  let d = Ledger.create () in
  for i = 0 to 9 do
    let b = mk_batch (if i = 5 then 500 else i) in
    ignore (Ledger.append d ~round:i ~cluster:0 ~batch:b ~cert:(Some (mk_cert b ~seq:i)))
  done;
  Alcotest.(check int) "diverge at 5" 5 (Ledger.common_prefix c d)

let test_empty_ledger () =
  let l = Ledger.create () in
  Alcotest.(check bool) "empty verifies" true (Ledger.verify l);
  Alcotest.(check bool) "empty is prefix" true (Ledger.is_prefix_of l (build 3));
  Alcotest.(check string) "tip is genesis" Block.genesis_hash (Ledger.tip_hash l)

let test_missing_cert_fails_audit () =
  let l = Ledger.create () in
  let b = mk_batch 0 in
  ignore (Ledger.append l ~round:0 ~cluster:0 ~batch:b ~cert:None);
  Alcotest.(check bool) "structure ok" true (Ledger.verify l);
  Alcotest.(check bool) "audit fails without cert" false
    (Ledger.verify_certified l ~keychain:(Lazy.force kc) ~quorum:3)

let prop_ledger_verify_random_sizes =
  QCheck.Test.make ~name:"ledger of any size verifies" ~count:20 QCheck.(int_bound 50)
    (fun n ->
      let l = build n in
      Ledger.verify l && Ledger.length l = n)

let suite =
  [
    ("append and verify", `Quick, test_append_and_verify);
    ("tamper detection", `Quick, test_tamper_detected);
    ("hash links", `Quick, test_hash_links);
    ("recovery read", `Quick, test_read_from);
    ("prefix relation", `Quick, test_prefix_relation);
    ("empty ledger", `Quick, test_empty_ledger);
    ("missing cert audit", `Quick, test_missing_cert_fails_audit);
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_ledger_verify_random_sizes ]
