(* Cross-cutting Byzantine and partition scenarios, exercising the
   liveness machinery end to end:

   - a full inter-cluster partition stalls GeoBFT's round execution
     (safety over liveness) and recovery is immediate once the
     partition heals — CAP in action (§2.1's bounded-delay caveat);
   - a primary that garbles batches (equivocation via tampering) in the
     *first* cluster of a GeoBFT deployment is deposed locally without
     remote help;
   - Pbft survives cascading primary failures (two crashes in a row);
   - message floods from a Byzantine replica (duplicate prepares) do
     not corrupt Pbft's vote counting. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Ledger = Rdb_ledger.Ledger
module Batch = Rdb_types.Batch
module Engine = Rdb_pbft.Engine
module PbftMsg = Rdb_pbft.Messages
module GeoDep = Rdb_fabric.Deployment.Make (Rdb_geobft.Replica)
module PbftDep = Rdb_fabric.Deployment.Make (Rdb_pbft.Replica)

let test_partition_stalls_then_heals () =
  let cfg = Itest.small_cfg ~z:2 ~n:4 ~inflight:2 () in
  let d = GeoDep.create ~n_records:Itest.records cfg in
  (* Partition the two clusters from 1 s to 6 s. *)
  GeoDep.at d ~time:(Time.sec 1) (fun () -> GeoDep.partition_clusters d ~ca:0 ~cb:1);
  GeoDep.at d ~time:(Time.sec 6) (fun () -> GeoDep.clear_drop_rules d);
  GeoDep.start_clients d;
  let engine = GeoDep.engine d in
  Rdb_sim.Engine.run_until engine ~until:(Time.ms 900);
  let before = Ledger.length (GeoDep.ledger d ~replica:0) in
  Alcotest.(check bool) "progress before partition" true (before > 0);
  (* During the partition, execution cannot cross the frontier (rounds
     need both clusters); allow the in-flight pipeline to drain, then
     expect a full stall. *)
  Rdb_sim.Engine.run_until engine ~until:(Time.sec 3);
  let drained = Ledger.length (GeoDep.ledger d ~replica:0) in
  Rdb_sim.Engine.run_until engine ~until:(Time.sec 5);
  let during = Ledger.length (GeoDep.ledger d ~replica:0) in
  Alcotest.(check bool)
    (Printf.sprintf "fully stalled after drain (%d -> %d)" drained during)
    true
    (during - drained <= 2);
  (* After healing, rounds resume (remote view changes + re-shares pull
     the missing rounds across). *)
  Rdb_sim.Engine.run_until engine ~until:(Time.sec 14);
  let after = Ledger.length (GeoDep.ledger d ~replica:0) in
  Alcotest.(check bool)
    (Printf.sprintf "resumed after heal (%d -> %d)" during after)
    true
    (after > during + 8);
  (* Safety held throughout. *)
  let ledgers = Array.init 8 (fun i -> GeoDep.ledger d ~replica:i) in
  Itest.check_ledger_prefixes ~min_len:1 ~ledgers ()

let test_geobft_local_equivocation_deposed () =
  (* The primary of cluster 0 equivocates *locally*; its own cluster
     must depose it without any remote involvement, and GeoBFT rounds
     continue. *)
  let cfg = Itest.small_cfg ~z:2 ~n:4 ~inflight:2 () in
  let d = GeoDep.create ~n_records:Itest.records cfg in
  let e0 = Rdb_geobft.Replica.engine (GeoDep.replica d 0) in
  let forged = ref None in
  Engine.set_tamper e0
    (Some
       (fun ~dst m ->
         match m with
         | PbftMsg.Preprepare { view; seq; batch = _ } when dst mod 2 = 1 ->
             let b =
               match !forged with
               | Some b -> b
               | None ->
                   let b =
                     Batch.noop ~keychain:(GeoDep.keychain d) ~cluster:0 ~origin:0
                       ~created:Time.zero ~nonce:991
                   in
                   forged := Some b;
                   b
             in
             Some (PbftMsg.Preprepare { view; seq; batch = b })
         | m -> Some m));
  let report = GeoDep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 8) d in
  Alcotest.(check bool) "equivocator deposed" true (GeoDep.view_changes d > 0);
  Alcotest.(check bool) "rounds continue" true (report.Rdb_fabric.Report.completed_txns > 0);
  let ledgers = Array.init 8 (fun i -> GeoDep.ledger d ~replica:i) in
  Itest.check_ledger_prefixes ~min_len:1 ~ledgers ()

let test_pbft_cascading_primary_failures () =
  (* Primary of view 0 crashes, then the primary of view 1 crashes too:
     two view changes, still live (n = 8, f = 2). *)
  let cfg = Itest.small_cfg ~z:2 ~n:4 ~inflight:2 () in
  let d = PbftDep.create ~n_records:Itest.records cfg in
  PbftDep.at d ~time:(Time.ms 1500) (fun () -> PbftDep.crash_replica d 0);
  PbftDep.at d ~time:(Time.ms 4000) (fun () -> PbftDep.crash_replica d 1);
  let report = PbftDep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 9) d in
  Alcotest.(check bool)
    (Printf.sprintf "two view changes (%d)" (PbftDep.view_changes d))
    true
    (PbftDep.view_changes d >= 2);
  Alcotest.(check bool) "still live" true (report.Rdb_fabric.Report.completed_txns > 0);
  let live = [ 2; 3; 4; 5; 6; 7 ] in
  let ledgers = Array.of_list (List.map (fun i -> PbftDep.ledger d ~replica:i) live) in
  Itest.check_ledger_prefixes ~min_len:1 ~ledgers ()

let test_pbft_byzantine_prepare_flood () =
  (* A Byzantine backup rewrites every prepare it sends to a bogus
     digest: its single vote per slot is wasted but can never be
     counted twice, so the remaining 7 replicas (quorum 6) commit
     normally. *)
  let cfg = Itest.small_cfg ~z:1 ~n:8 () in
  let d = PbftDep.create ~n_records:Itest.records cfg in
  let e = Rdb_pbft.Replica.engine (PbftDep.replica d 7) in
  Engine.set_tamper e
    (Some
       (fun ~dst:_ m ->
         match m with
         | PbftMsg.Prepare { view; seq; digest = _ } ->
             Some (PbftMsg.Prepare { view; seq; digest = "bogus-digest-of-32-bytes........" })
         | m -> Some m));
  let report = PbftDep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 3) d in
  Alcotest.(check bool) "commits despite bogus votes" true
    (report.Rdb_fabric.Report.completed_txns > 0);
  Alcotest.(check int) "no view change needed" 0 (PbftDep.view_changes d);
  Itest.check_ledger_prefixes ~min_len:5
    ~ledgers:(Array.init 8 (fun i -> PbftDep.ledger d ~replica:i))
    ()

let suite =
  [
    ("partition stalls then heals (GeoBFT)", `Slow, test_partition_stalls_then_heals);
    ("local equivocation deposed (GeoBFT)", `Slow, test_geobft_local_equivocation_deposed);
    ("cascading primary failures (Pbft)", `Slow, test_pbft_cascading_primary_failures);
    ("byzantine prepare flood (Pbft)", `Quick, test_pbft_byzantine_prepare_flood);
  ]
