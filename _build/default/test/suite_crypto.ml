(* Crypto substrate tests: standard test vectors for the real
   primitives (SHA-256, AES-128, AES-CMAC, HMAC-SHA256) and functional
   + property tests for the Schnorr signatures and field arithmetic. *)

open Rdb_crypto

let check_hex msg expected actual = Alcotest.(check string) msg expected (Hex.of_string actual)

(* -- SHA-256: FIPS 180-4 / NIST CAVS vectors -------------------------------- *)

let test_sha256_vectors () =
  check_hex "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest "");
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest "abc");
  check_hex "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "896-bit"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (Sha256.digest
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu");
  (* One million 'a' (NIST long test). *)
  check_hex "million-a" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest (String.make 1_000_000 'a'))

let test_sha256_incremental () =
  (* Incremental feeding across arbitrary chunk boundaries must equal
     the one-shot digest. *)
  let msg = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let one_shot = Sha256.digest msg in
  List.iter
    (fun chunk ->
      let ctx = Sha256.init () in
      let i = ref 0 in
      while !i < String.length msg do
        let k = min chunk (String.length msg - !i) in
        Sha256.feed_string ctx (String.sub msg !i k);
        i := !i + k
      done;
      Alcotest.(check string)
        (Printf.sprintf "chunk=%d" chunk)
        (Hex.of_string one_shot)
        (Hex.of_string (Sha256.finalize ctx)))
    [ 1; 3; 7; 55; 56; 63; 64; 65; 128; 999 ]

let test_sha256_digest_list () =
  Alcotest.(check string)
    "digest_list = digest of concat"
    (Sha256.digest_hex "foobarbaz")
    (Hex.of_string (Sha256.digest_list [ "foo"; "bar"; "baz" ]))

(* -- AES-128: FIPS-197 appendix and SP 800-38B vectors ----------------------- *)

let test_aes128_fips197 () =
  let key = Hex.to_string "000102030405060708090a0b0c0d0e0f" in
  let pt = Hex.to_string "00112233445566778899aabbccddeeff" in
  let ks = Aes128.expand_key key in
  check_hex "FIPS-197 C.1" "69c4e0d86a7b0430d8cdb78070b4c55a" (Aes128.encrypt_block ks pt)

let test_aes128_sp800_38b_key () =
  (* The CMAC subkey-generation vector's AES step: AES-128(K, 0^128). *)
  let key = Hex.to_string "2b7e151628aed2a6abf7158809cf4f3c" in
  let ks = Aes128.expand_key key in
  check_hex "L = AES(K, 0)" "7df76b0c1ab899b33e42f047b91b546f"
    (Aes128.encrypt_block ks (String.make 16 '\x00'))

(* -- AES-CMAC: RFC 4493 test vectors ------------------------------------------ *)

let cmac_key = lazy (Cmac.of_key (Hex.to_string "2b7e151628aed2a6abf7158809cf4f3c"))

let rfc4493_m =
  lazy
    (Hex.to_string
       ("6bc1bee22e409f96e93d7e117393172a" ^ "ae2d8a571e03ac9c9eb76fac45af8e51"
      ^ "30c81c46a35ce411e5fbc1191a0a52ef" ^ "f69f2445df4f9b17ad2b417be66c3710"))

let test_cmac_vectors () =
  let key = Lazy.force cmac_key in
  let m = Lazy.force rfc4493_m in
  check_hex "len=0" "bb1d6929e95937287fa37d129b756746" (Cmac.mac key "");
  check_hex "len=16" "070a16b46b4d4144f79bdd9dd04a287c" (Cmac.mac key (String.sub m 0 16));
  check_hex "len=40" "dfa66747de9ae63030ca32611497c827" (Cmac.mac key (String.sub m 0 40));
  check_hex "len=64" "51f0bebf7e3b9d92fc49741779363cfe" (Cmac.mac key m)

let test_cmac_verify () =
  let key = Lazy.force cmac_key in
  let tag = Cmac.mac key "hello" in
  Alcotest.(check bool) "valid tag accepted" true (Cmac.verify key "hello" ~tag);
  Alcotest.(check bool) "wrong msg rejected" false (Cmac.verify key "hellp" ~tag);
  let bad = String.mapi (fun i c -> if i = 3 then Char.chr (Char.code c lxor 1) else c) tag in
  Alcotest.(check bool) "flipped tag rejected" false (Cmac.verify key "hello" ~tag:bad)

(* -- HMAC-SHA256: RFC 4231 ------------------------------------------------------ *)

let test_hmac_vectors () =
  (* RFC 4231 test case 1 *)
  Alcotest.(check string)
    "tc1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac_hex ~key:(String.make 20 '\x0b') "Hi There");
  (* test case 2: key "Jefe" *)
  Alcotest.(check string)
    "tc2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac_hex ~key:"Jefe" "what do ya want for nothing?");
  (* test case 3: 20x 0xaa key, 50x 0xdd data *)
  Alcotest.(check string)
    "tc3" "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.mac_hex ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'));
  (* test case 6: oversized key (131 bytes) forces key hashing *)
  Alcotest.(check string)
    "tc6" "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.mac_hex
       ~key:(String.make 131 '\xaa')
       "Test Using Larger Than Block-Size Key - Hash Key First")

(* -- Field61 --------------------------------------------------------------------- *)

(* Reference multiplication via the generic double-and-add ladder. *)
let slow_mul a b =
  let m = Field61.p in
  let a = ref (Int64.rem a m) and b = ref (Int64.rem b m) in
  let acc = ref 0L in
  while Int64.compare !b 0L > 0 do
    if Int64.logand !b 1L = 1L then acc := Field61.add_mod m !acc !a;
    a := Field61.add_mod m !a !a;
    b := Int64.shift_right_logical !b 1
  done;
  !acc

let arb_field_elt =
  QCheck.map
    (fun (a, b) ->
      Int64.rem
        (Int64.logand (Int64.logor (Int64.shift_left (Int64.of_int a) 31) (Int64.of_int b)) Int64.max_int)
        Field61.p)
    QCheck.(pair (int_bound 0x3FFFFFFF) (int_bound 0x3FFFFFFF))

let prop_mul_matches_reference =
  QCheck.Test.make ~name:"field61 fast mul = reference mul" ~count:500
    QCheck.(pair arb_field_elt arb_field_elt)
    (fun (a, b) -> Int64.equal (Field61.mul a b) (slow_mul a b))

let prop_mul_inverse =
  QCheck.Test.make ~name:"field61 a * a^-1 = 1" ~count:200 arb_field_elt (fun a ->
      QCheck.assume (not (Int64.equal a 0L));
      Int64.equal (Field61.mul a (Field61.inv a)) 1L)

let prop_fermat =
  QCheck.Test.make ~name:"field61 a^(p-1) = 1 (Fermat)" ~count:100 arb_field_elt (fun a ->
      QCheck.assume (not (Int64.equal a 0L));
      Int64.equal (Field61.pow a (Int64.sub Field61.p 1L)) 1L)

(* -- Schnorr ----------------------------------------------------------------------- *)

let test_schnorr_roundtrip () =
  let sk = Schnorr.keygen ~seed:"test-seed" ~key_id:7 in
  let pk = Schnorr.public_key sk in
  let sg = Schnorr.sign sk "the quick brown fox" in
  Alcotest.(check bool) "valid signature verifies" true (Schnorr.verify pk "the quick brown fox" sg);
  Alcotest.(check bool) "wrong message rejected" false (Schnorr.verify pk "the quick brown fax" sg)

let test_schnorr_wrong_key () =
  let sk1 = Schnorr.keygen ~seed:"seed" ~key_id:1 in
  let sk2 = Schnorr.keygen ~seed:"seed" ~key_id:2 in
  let sg = Schnorr.sign sk1 "msg" in
  Alcotest.(check bool) "other key rejects" false (Schnorr.verify (Schnorr.public_key sk2) "msg" sg)

let test_schnorr_deterministic () =
  let sk = Schnorr.keygen ~seed:"seed" ~key_id:3 in
  let a = Schnorr.sign sk "m" and b = Schnorr.sign sk "m" in
  Alcotest.(check bool) "deterministic signatures" true (a = b)

let test_schnorr_encoding () =
  let sk = Schnorr.keygen ~seed:"seed" ~key_id:4 in
  let sg = Schnorr.sign sk "payload" in
  match Schnorr.signature_of_string (Schnorr.signature_to_string sg) with
  | Some sg' -> Alcotest.(check bool) "roundtrip" true (sg = sg')
  | None -> Alcotest.fail "decode failed"

let prop_schnorr_sign_verify =
  QCheck.Test.make ~name:"schnorr sign/verify roundtrip" ~count:100
    QCheck.(pair small_nat string)
    (fun (id, msg) ->
      let sk = Schnorr.keygen ~seed:"prop" ~key_id:id in
      Schnorr.verify (Schnorr.public_key sk) msg (Schnorr.sign sk msg))

let prop_schnorr_tamper_rejected =
  QCheck.Test.make ~name:"schnorr tampered signature rejected" ~count:100
    QCheck.(triple small_nat string (pair small_nat small_nat))
    (fun (id, msg, (de, ds)) ->
      QCheck.assume (de + ds > 0);
      let sk = Schnorr.keygen ~seed:"prop" ~key_id:id in
      let sg = Schnorr.sign sk msg in
      let sg' =
        Schnorr.
          { e = Int64.add sg.e (Int64.of_int de); s = Int64.add sg.s (Int64.of_int ds) }
      in
      not (Schnorr.verify (Schnorr.public_key sk) msg sg'))

(* -- Keychain ------------------------------------------------------------------------ *)

let test_keychain () =
  let kc = Keychain.create ~seed:"kc" ~n_nodes:5 in
  let sg = Keychain.sign kc ~signer:2 "hello" in
  Alcotest.(check bool) "sign/verify" true (Keychain.verify kc ~signer:2 "hello" sg);
  Alcotest.(check bool) "wrong signer" false (Keychain.verify kc ~signer:3 "hello" sg);
  Alcotest.(check bool) "out of range" false (Keychain.verify kc ~signer:9 "hello" sg);
  let tag = Keychain.mac kc ~src:0 ~dst:4 "payload" in
  Alcotest.(check bool) "mac verifies" true (Keychain.verify_mac kc ~src:0 ~dst:4 "payload" ~tag);
  Alcotest.(check bool)
    "mac symmetric" true
    (Keychain.verify_mac kc ~src:4 ~dst:0 "payload" ~tag);
  Alcotest.(check bool)
    "mac other channel fails" false
    (Keychain.verify_mac kc ~src:0 ~dst:3 "payload" ~tag)

(* -- Hex -------------------------------------------------------------------------------- *)

let test_hex_roundtrip () =
  let s = String.init 256 Char.chr in
  Alcotest.(check string) "roundtrip" s (Hex.to_string (Hex.of_string s));
  Alcotest.(check string) "known" "deadbeef" (Hex.of_string "\xde\xad\xbe\xef");
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.to_string: odd length") (fun () ->
      ignore (Hex.to_string "abc"))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ("sha256 NIST vectors", `Quick, test_sha256_vectors);
    ("sha256 incremental", `Quick, test_sha256_incremental);
    ("sha256 digest_list", `Quick, test_sha256_digest_list);
    ("aes128 FIPS-197", `Quick, test_aes128_fips197);
    ("aes128 SP800-38B subkey step", `Quick, test_aes128_sp800_38b_key);
    ("cmac RFC4493 vectors", `Quick, test_cmac_vectors);
    ("cmac verify", `Quick, test_cmac_verify);
    ("hmac RFC4231 vectors", `Quick, test_hmac_vectors);
    ("schnorr roundtrip", `Quick, test_schnorr_roundtrip);
    ("schnorr wrong key", `Quick, test_schnorr_wrong_key);
    ("schnorr deterministic", `Quick, test_schnorr_deterministic);
    ("schnorr wire encoding", `Quick, test_schnorr_encoding);
    ("keychain", `Quick, test_keychain);
    ("hex", `Quick, test_hex_roundtrip);
  ]
  @ qsuite
      [
        prop_mul_matches_reference;
        prop_mul_inverse;
        prop_fermat;
        prop_schnorr_sign_verify;
        prop_schnorr_tamper_rejected;
      ]

(* -- Field61: int core vs int64 wrappers ---------------------------------- *)

let prop_int_core_matches_wrappers =
  QCheck.Test.make ~name:"field61 int core = int64 wrappers" ~count:300
    QCheck.(pair arb_field_elt arb_field_elt)
    (fun (a, b) ->
      let ai = Int64.to_int a and bi = Int64.to_int b in
      Int64.to_int (Field61.mul a b) = Field61.mul_int ai bi
      && Int64.to_int (Field61.add a b) = Field61.add_int ai bi
      && (ai = 0 || Int64.to_int (Field61.inv a) = Field61.inv_int ai))

let prop_pow_laws =
  QCheck.Test.make ~name:"field61 a^(e1+e2) = a^e1 * a^e2" ~count:100
    QCheck.(triple arb_field_elt (int_bound 100_000) (int_bound 100_000))
    (fun (a, e1, e2) ->
      QCheck.assume (not (Int64.equal a 0L));
      let ai = Int64.to_int a in
      Field61.pow_int ai (e1 + e2)
      = Field61.mul_int (Field61.pow_int ai e1) (Field61.pow_int ai e2))

(* -- Keychain channel-key independence -------------------------------------- *)

let test_channel_keys_distinct () =
  let kc = Keychain.create ~seed:"chan" ~n_nodes:6 in
  (* Tags from distinct channels never validate on other channels. *)
  let t01 = Keychain.mac kc ~src:0 ~dst:1 "m" in
  let t02 = Keychain.mac kc ~src:0 ~dst:2 "m" in
  Alcotest.(check bool) "distinct channels, distinct tags" true (t01 <> t02);
  (* Caching: same channel gives the same key object behaviour. *)
  Alcotest.(check string) "cached key stable" (Rdb_crypto.Hex.of_string t01)
    (Rdb_crypto.Hex.of_string (Keychain.mac kc ~src:1 ~dst:0 "m"))

let test_keychains_with_different_seeds_disjoint () =
  let a = Keychain.create ~seed:"A" ~n_nodes:3 in
  let b = Keychain.create ~seed:"B" ~n_nodes:3 in
  let sg = Keychain.sign a ~signer:1 "payload" in
  Alcotest.(check bool) "cross-deployment signature rejected" false
    (Keychain.verify b ~signer:1 "payload" sg)

let suite =
  suite
  @ [
      ("keychain channel keys", `Quick, test_channel_keys_distinct);
      ("keychain seed separation", `Quick, test_keychains_with_different_seeds_disjoint);
    ]
  @ qsuite [ prop_int_core_matches_wrappers; prop_pow_laws ]
