test/suite_hotstuff.ml: Alcotest Array Hashtbl Itest Printf Rdb_fabric Rdb_hotstuff Rdb_ledger Rdb_sim Rdb_types
