test/suite_ycsb.ml: Alcotest Array Int64 List QCheck QCheck_alcotest Rdb_crypto Rdb_types Rdb_ycsb String
