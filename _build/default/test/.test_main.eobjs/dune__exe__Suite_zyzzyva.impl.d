test/suite_zyzzyva.ml: Alcotest Array Itest Printf Rdb_fabric Rdb_sim Rdb_types Rdb_zyzzyva
