test/suite_crypto.ml: Aes128 Alcotest Char Cmac Field61 Hex Hmac Int64 Keychain Lazy List Printf QCheck QCheck_alcotest Rdb_crypto Schnorr Sha256 String
