test/suite_ledger.ml: Alcotest Array Int64 Lazy List QCheck QCheck_alcotest Rdb_crypto Rdb_ledger Rdb_sim Rdb_types
