test/suite_steward.ml: Alcotest Array Itest Printf Rdb_fabric Rdb_ledger Rdb_sim Rdb_steward Rdb_types
