test/suite_byzantine.ml: Alcotest Array Itest List Printf Rdb_fabric Rdb_geobft Rdb_ledger Rdb_pbft Rdb_sim Rdb_types
