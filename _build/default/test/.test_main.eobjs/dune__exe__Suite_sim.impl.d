test/suite_sim.ml: Alcotest Cpu Engine Heap Int64 List Network Option Printf QCheck QCheck_alcotest Rdb_sim Time Topology
