test/suite_pbft.ml: Alcotest Array Itest List Printf Rdb_fabric Rdb_ledger Rdb_pbft Rdb_sim Rdb_types
