test/itest.ml: Alcotest Array Int64 Rdb_ledger Rdb_sim Rdb_types Rdb_ycsb
