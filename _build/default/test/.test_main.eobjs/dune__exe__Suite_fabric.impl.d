test/suite_fabric.ml: Alcotest Array Itest Rdb_fabric Rdb_ledger Rdb_pbft Rdb_sim Rdb_types
