test/suite_geobft.ml: Alcotest Array Itest List Printf QCheck QCheck_alcotest Rdb_fabric Rdb_geobft Rdb_ledger Rdb_pbft Rdb_sim Rdb_types
