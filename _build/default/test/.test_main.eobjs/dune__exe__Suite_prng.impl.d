test/suite_prng.ml: Alcotest Array Fun Int64 List QCheck QCheck_alcotest Rdb_prng Rng Splitmix64 Zipf
