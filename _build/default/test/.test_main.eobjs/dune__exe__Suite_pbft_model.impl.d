test/suite_pbft_model.ml: Alcotest Array Fun Int64 List QCheck QCheck_alcotest Rdb_crypto Rdb_pbft Rdb_prng Rdb_sim Rdb_types
