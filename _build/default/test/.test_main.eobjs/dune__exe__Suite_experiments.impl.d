test/suite_experiments.ml: Alcotest Itest List Printf Rdb_experiments Rdb_fabric Rdb_sim Rdb_types
