test/suite_types.ml: Alcotest Array Int64 Lazy List Printf Rdb_crypto Rdb_prng Rdb_sim Rdb_types String
