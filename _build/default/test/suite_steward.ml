(* Steward integration tests: hierarchical ordering through the primary
   site, global-sequence safety across all sites, threshold-round
   behaviour, and the protocol's known liveness limits. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Ledger = Rdb_ledger.Ledger
module Stw = Rdb_steward.Replica
module Dep = Rdb_fabric.Deployment.Make (Stw)

(* Steward's threshold crypto is slow by design; use a cheaper cost
   model in unit tests so small runs converge quickly. *)
let fast_cfg ?(z = 2) ?(n = 4) ?(inflight = 2) ?(seed = 1) () =
  let cfg = Itest.small_cfg ~z ~n ~inflight ~seed () in
  {
    cfg with
    Config.costs =
      { cfg.Config.costs with Config.threshold_partial_us = 100.; threshold_combine_us = 200. };
  }

let run_small ?(cfg = fast_cfg ()) ?(sim_sec = 5) ?(prepare = fun _ -> ()) () =
  let d = Dep.create ~n_records:Itest.records cfg in
  prepare d;
  let report = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec (sim_sec - 1)) d in
  (d, report)

let ledgers_of d cfg = Array.init (Config.n_replicas cfg) (fun i -> Dep.ledger d ~replica:i)
let tables_of d cfg = Array.init (Config.n_replicas cfg) (fun i -> Dep.table d ~replica:i)

let test_normal_case () =
  let cfg = fast_cfg () in
  let d, report = run_small ~cfg () in
  Alcotest.(check bool) "progress" true (report.Rdb_fabric.Report.completed_txns > 0);
  Itest.check_ledger_prefixes ~min_len:5 ~ledgers:(ledgers_of d cfg) ();
  Itest.check_state_agreement ~ledgers:(ledgers_of d cfg) ~tables:(tables_of d cfg) ()

let test_both_sites_served () =
  (* Requests from the non-primary site must flow through the primary
     site and execute everywhere. *)
  let cfg = fast_cfg () in
  let d, _ = run_small ~cfg () in
  let l = Dep.ledger d ~replica:0 in
  let clusters = Array.make 2 0 in
  for h = 0 to Ledger.length l - 1 do
    let b = (Ledger.get l h).Rdb_ledger.Block.batch in
    clusters.(b.Rdb_types.Batch.cluster) <- clusters.(b.Rdb_types.Batch.cluster) + 1
  done;
  Alcotest.(check bool) "primary-site requests executed" true (clusters.(0) > 0);
  Alcotest.(check bool) "remote-site requests executed" true (clusters.(1) > 0)

let test_three_sites_majority () =
  let cfg = fast_cfg ~z:3 () in
  let d, report = run_small ~cfg () in
  Alcotest.(check bool) "progress with 3 sites" true (report.Rdb_fabric.Report.completed_txns > 0);
  Itest.check_ledger_prefixes ~min_len:3 ~ledgers:(ledgers_of d cfg) ()

let test_backup_failures_tolerated () =
  (* f = 1 per site: one non-representative crash per site leaves the
     threshold rounds with n − f = 3 of 4 partials — still live. *)
  let cfg = fast_cfg () in
  let d, report = run_small ~cfg ~prepare:(fun d -> Dep.crash_f_per_cluster d) () in
  Alcotest.(check bool) "progress with f backups down per site" true
    (report.Rdb_fabric.Report.completed_txns > 0);
  ignore d

let test_leader_site_rep_failure_halts () =
  (* The primary site's representative is a single point of
     coordination and Steward (as implemented, matching the paper) has
     no view change: crashing it halts global ordering. *)
  let cfg = fast_cfg () in
  let d = Dep.create ~n_records:Itest.records cfg in
  Dep.crash_replica d 0;
  let report = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 3) d in
  Alcotest.(check int) "no progress" 0 report.Rdb_fabric.Report.completed_txns

let test_threshold_cost_gates_throughput () =
  (* The RSA-class threshold costs must visibly gate throughput: the
     same deployment with the real (slow) cost model commits fewer
     transactions than with the fast test model. *)
  let fast = fast_cfg ~inflight:4 () in
  let slow = Itest.small_cfg ~z:2 ~n:4 ~inflight:4 () in
  let _, rf = run_small ~cfg:fast ~sim_sec:6 () in
  let _, rs = run_small ~cfg:slow ~sim_sec:6 () in
  Alcotest.(check bool)
    (Printf.sprintf "threshold crypto gates throughput (%.0f vs %.0f)"
       rf.Rdb_fabric.Report.throughput_txn_s rs.Rdb_fabric.Report.throughput_txn_s)
    true
    (rs.Rdb_fabric.Report.throughput_txn_s < 0.7 *. rf.Rdb_fabric.Report.throughput_txn_s)

let test_determinism () =
  let cfg = fast_cfg () in
  let r1 = snd (run_small ~cfg ()) in
  let r2 = snd (run_small ~cfg ()) in
  Alcotest.(check int) "identical txns" r1.Rdb_fabric.Report.completed_txns
    r2.Rdb_fabric.Report.completed_txns

let suite =
  [
    ("normal case", `Quick, test_normal_case);
    ("both sites served", `Quick, test_both_sites_served);
    ("three sites (majority)", `Quick, test_three_sites_majority);
    ("backup failures tolerated", `Quick, test_backup_failures_tolerated);
    ("leader-site representative failure halts", `Quick, test_leader_site_rep_failure_halts);
    ("threshold cost gates throughput", `Slow, test_threshold_cost_gates_throughput);
    ("determinism", `Quick, test_determinism);
  ]
