(* Zyzzyva integration tests: the fast path (all n replicas), the
   client-driven commit-certificate slow path under failures, and the
   failure-induced collapse the paper documents in §4.3. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Zyz = Rdb_zyzzyva.Replica
module Dep = Rdb_fabric.Deployment.Make (Zyz)

let run_small ?(cfg = Itest.small_cfg ()) ?(sim_sec = 4) ?(prepare = fun _ -> ()) () =
  let d = Dep.create ~n_records:Itest.records cfg in
  prepare d;
  let report = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec (sim_sec - 1)) d in
  (d, report)

let total_fast d cfg =
  let acc = ref 0 in
  for c = 0 to cfg.Config.z - 1 do
    acc := !acc + Zyz.fast_completions (Dep.client d ~cluster:c)
  done;
  !acc

let total_slow d cfg =
  let acc = ref 0 in
  for c = 0 to cfg.Config.z - 1 do
    acc := !acc + Zyz.slow_completions (Dep.client d ~cluster:c)
  done;
  !acc

let test_fast_path () =
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let d, report = run_small ~cfg () in
  Alcotest.(check bool) "progress" true (report.Rdb_fabric.Report.completed_txns > 0);
  Alcotest.(check bool) "fast-path completions" true (total_fast d cfg > 0);
  Alcotest.(check int) "no slow-path completions without failures" 0 (total_slow d cfg);
  Itest.check_ledger_prefixes ~min_len:10
    ~ledgers:(Array.init 8 (fun i -> Dep.ledger d ~replica:i))
    ()

let test_speculative_state_agreement () =
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let d, _ = run_small ~cfg () in
  Itest.check_state_agreement
    ~ledgers:(Array.init 8 (fun i -> Dep.ledger d ~replica:i))
    ~tables:(Array.init 8 (fun i -> Dep.table d ~replica:i))
    ()

let test_slow_path_under_failure () =
  (* One crashed backup: the fast path (all n matching replies) is
     impossible; every request must take the commit-certificate path,
     yet requests still complete. *)
  let cfg = Itest.small_cfg ~z:2 ~n:4 ~inflight:2 () in
  let d, report =
    run_small ~cfg ~sim_sec:14 ~prepare:(fun d -> Dep.crash_replica d 7) ()
  in
  Alcotest.(check bool) "slow-path completions" true (total_slow d cfg > 0);
  Alcotest.(check bool) "still makes progress" true
    (report.Rdb_fabric.Report.completed_txns > 0)

let test_throughput_collapse_under_failure () =
  (* §4.3: "the throughput of Zyzzyva plummets to zero" with even one
     failure.  The commit timer gates every request, so throughput must
     drop by a large factor. *)
  let cfg = Itest.small_cfg ~z:2 ~n:4 ~inflight:4 () in
  let _, healthy = run_small ~cfg ~sim_sec:8 () in
  let _, failed = run_small ~cfg ~sim_sec:8 ~prepare:(fun d -> Dep.crash_replica d 7) () in
  let ratio =
    failed.Rdb_fabric.Report.throughput_txn_s /. healthy.Rdb_fabric.Report.throughput_txn_s
  in
  Alcotest.(check bool)
    (Printf.sprintf "collapse (ratio %.3f)" ratio)
    true (ratio < 0.25)

let test_primary_failure_halts () =
  (* No view change is implemented (matching the paper's exclusion of
     Zyzzyva from the primary-failure experiment): a crashed primary
     halts the protocol. *)
  let cfg = Itest.small_cfg ~z:2 ~n:4 ~inflight:2 () in
  let d = Dep.create ~n_records:Itest.records cfg in
  Dep.crash_replica d 0;
  let report = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 3) d in
  Alcotest.(check int) "no progress without primary" 0 report.Rdb_fabric.Report.completed_txns

let test_determinism () =
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let r1 = snd (run_small ~cfg ()) in
  let r2 = snd (run_small ~cfg ()) in
  Alcotest.(check int) "identical txns" r1.Rdb_fabric.Report.completed_txns
    r2.Rdb_fabric.Report.completed_txns

let suite =
  [
    ("fast path", `Quick, test_fast_path);
    ("speculative state agreement", `Quick, test_speculative_state_agreement);
    ("slow path under failure", `Slow, test_slow_path_under_failure);
    ("throughput collapse under failure", `Slow, test_throughput_collapse_under_failure);
    ("primary failure halts", `Quick, test_primary_failure_halts);
    ("determinism", `Quick, test_determinism);
  ]
