(* Shared helpers for the protocol integration tests: small, fast
   deployments plus cross-replica safety checks. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Ledger = Rdb_ledger.Ledger
module Table = Rdb_ycsb.Table
module Block = Rdb_ledger.Block
module Batch = Rdb_types.Batch

(* Small and fast: 1000-record table, small batches, short timeouts so
   failure tests recover within a few simulated seconds. *)
let small_cfg ?(z = 2) ?(n = 4) ?(batch = 5) ?(inflight = 4) ?(seed = 1) () =
  let base =
    {
      Config.default with
      Config.local_timeout_ms = 500.0;
      remote_timeout_ms = 1_000.0;
      client_timeout_ms = 1_500.0;
      checkpoint_interval = 60;
    }
  in
  Config.make ~base ~z ~n ~batch_size:batch ~client_inflight:inflight ~seed ()

let records = 1000

(* All pairwise ledgers must be prefix-compatible; the shortest must
   not be trivially empty if [min_len] is given. *)
let check_ledger_prefixes ?(min_len = 1) ~ledgers () =
  let n = Array.length ledgers in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = ledgers.(i) and b = ledgers.(j) in
      let ok = Ledger.is_prefix_of a b || Ledger.is_prefix_of b a in
      if not ok then
        Alcotest.failf "ledgers %d and %d diverge (lengths %d, %d; common prefix %d)" i j
          (Ledger.length a) (Ledger.length b) (Ledger.common_prefix a b)
    done
  done;
  let min_length = Array.fold_left (fun acc l -> min acc (Ledger.length l)) max_int ledgers in
  if min_length < min_len then
    Alcotest.failf "expected every ledger to reach %d blocks, shortest has %d" min_len min_length

(* Replicas whose ledgers have equal length must have identical YCSB
   state (deterministic execution). *)
let check_state_agreement ~ledgers ~tables () =
  let n = Array.length ledgers in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Ledger.length ledgers.(i) = Ledger.length ledgers.(j) then
        if not (Int64.equal (Table.quick_fingerprint tables.(i)) (Table.quick_fingerprint tables.(j)))
        then Alcotest.failf "replicas %d and %d executed same height but diverged in state" i j
    done
  done
