(* YCSB substrate tests: identical initialization, deterministic
   execution, state digests, and workload generation (§4's setup: 600 k
   records, Zipfian, write queries). *)

module Txn = Rdb_types.Txn
module Table = Rdb_ycsb.Table
module Workload = Rdb_ycsb.Workload

let test_identical_initialization () =
  let a = Table.create ~n_records:10_000 () in
  let b = Table.create ~n_records:10_000 () in
  Alcotest.(check string) "same initial digest" (Rdb_crypto.Hex.of_string (Table.state_digest a))
    (Rdb_crypto.Hex.of_string (Table.state_digest b));
  Alcotest.(check int64) "same fingerprint" (Table.quick_fingerprint a) (Table.quick_fingerprint b)

let test_default_size () =
  let t = Table.create () in
  Alcotest.(check int) "600k records (paper)" 600_000 (Table.n_records t)

let test_apply_read_write () =
  let t = Table.create ~n_records:100 () in
  let before = Table.read t ~key:5 in
  let r = Table.apply t (Txn.make ~op:Txn.Read ~key:5 ~value:0L ~client_id:1 ()) in
  Alcotest.(check int64) "read returns value" before r;
  let w = Table.apply t (Txn.make ~key:5 ~value:42L ~client_id:1 ()) in
  Alcotest.(check int64) "write updates" w (Table.read t ~key:5);
  Alcotest.(check bool) "write changed value" true (not (Int64.equal before (Table.read t ~key:5)));
  Alcotest.(check int) "write counted" 1 (Table.writes t);
  Alcotest.(check int) "read counted" 1 (Table.reads t)

let test_order_sensitivity () =
  (* Execution order must be visible in the state: replicas that apply
     the same batches in different orders diverge (this is what the
     safety tests detect). *)
  let t1 = Table.create ~n_records:100 () in
  let t2 = Table.create ~n_records:100 () in
  let a = Txn.make ~key:7 ~value:1L ~client_id:1 () in
  let b = Txn.make ~key:7 ~value:2L ~client_id:1 () in
  ignore (Table.apply t1 a);
  ignore (Table.apply t1 b);
  ignore (Table.apply t2 b);
  ignore (Table.apply t2 a);
  Alcotest.(check bool) "order matters" true
    (not (Int64.equal (Table.read t1 ~key:7) (Table.read t2 ~key:7)))

let test_deterministic_replay () =
  let t1 = Table.create ~n_records:1000 () in
  let t2 = Table.create ~n_records:1000 () in
  let w = Workload.create ~n_records:1000 ~seed:9 ~client_base:0 () in
  let batches = Array.init 20 (fun _ -> Workload.next_batch_txns w ~batch_size:10) in
  Array.iter (fun b -> ignore (Table.apply_batch t1 b)) batches;
  Array.iter (fun b -> ignore (Table.apply_batch t2 b)) batches;
  Alcotest.(check int64) "identical state after replay" (Table.quick_fingerprint t1)
    (Table.quick_fingerprint t2)

let test_workload_determinism () =
  let w1 = Workload.create ~n_records:1000 ~seed:5 ~client_base:0 () in
  let w2 = Workload.create ~n_records:1000 ~seed:5 ~client_base:0 () in
  for _ = 1 to 100 do
    Alcotest.(check string) "same stream" (Txn.serialize (Workload.next_txn w1))
      (Txn.serialize (Workload.next_txn w2))
  done;
  let w3 = Workload.create ~n_records:1000 ~seed:6 ~client_base:0 () in
  Alcotest.(check bool) "different seed differs" true
    (Txn.serialize (Workload.next_txn w1) <> Txn.serialize (Workload.next_txn w3))

let test_workload_write_queries () =
  (* §4: "we use write queries".  Default write fraction is 1.0. *)
  let w = Workload.create ~n_records:1000 ~seed:1 ~client_base:0 () in
  for _ = 1 to 200 do
    let t = Workload.next_txn w in
    Alcotest.(check bool) "write query" true (t.Txn.op = Txn.Write)
  done

let test_workload_mixed () =
  let w = Workload.create ~n_records:1000 ~write_fraction:0.5 ~seed:1 ~client_base:0 () in
  let writes = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    if (Workload.next_txn w).Txn.op = Txn.Write then incr writes
  done;
  let frac = float_of_int !writes /. float_of_int n in
  Alcotest.(check bool) "about half writes" true (abs_float (frac -. 0.5) < 0.05)

let test_workload_keys_in_range () =
  let w = Workload.create ~n_records:500 ~seed:2 ~client_base:0 () in
  for _ = 1 to 1000 do
    let t = Workload.next_txn w in
    Alcotest.(check bool) "key in range" true (t.Txn.key >= 0 && t.Txn.key < 500)
  done

let test_workload_batches () =
  let w = Workload.create ~n_records:1000 ~seed:3 ~client_base:100 () in
  let b = Workload.next_batch_txns w ~batch_size:50 in
  Alcotest.(check int) "batch size" 50 (Array.length b);
  Alcotest.(check int) "generated counter" 50 (Workload.generated w);
  Array.iter
    (fun t -> Alcotest.(check bool) "client ids from base" true (t.Txn.client_id >= 100))
    b

let prop_digest_changes_on_write =
  QCheck.Test.make ~name:"state digest changes on every write" ~count:30
    QCheck.(pair (int_bound 999) small_int)
    (fun (key, v) ->
      let t = Table.create ~n_records:1000 () in
      let d0 = Table.state_digest t in
      ignore (Table.apply t (Txn.make ~key ~value:(Int64.of_int (v + 1)) ~client_id:0 ()));
      not (String.equal d0 (Table.state_digest t)))

let suite =
  [
    ("identical initialization", `Quick, test_identical_initialization);
    ("default 600k records", `Quick, test_default_size);
    ("apply read/write", `Quick, test_apply_read_write);
    ("order sensitivity", `Quick, test_order_sensitivity);
    ("deterministic replay", `Quick, test_deterministic_replay);
    ("workload determinism", `Quick, test_workload_determinism);
    ("workload write queries", `Quick, test_workload_write_queries);
    ("workload mixed read/write", `Quick, test_workload_mixed);
    ("workload key range", `Quick, test_workload_keys_in_range);
    ("workload batching", `Quick, test_workload_batches);
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_digest_changes_on_write ]
