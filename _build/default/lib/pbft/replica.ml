(* Standalone Pbft — the baseline protocol of §4.

   One flat Pbft group over all z·n replicas, with the primary placed
   in region 0 (the experiments put it in Oregon, "as this region has
   the highest bandwidth to all other regions").  Clients in every
   region submit to the primary and wait for f_global + 1 matching
   replies; every replica replies to the issuing client.

   This is the configuration whose geo-scale behaviour Figure 10
   documents: all-to-all prepare/commit traffic crosses regions, and
   the single primary's WAN uplinks carry a full pre-prepare per
   replica per decision. *)

module Batch = Rdb_types.Batch
module Config = Rdb_types.Config
module Ctx = Rdb_types.Ctx
module Wire = Rdb_types.Wire
module Client_core = Rdb_types.Client_core
module Time = Rdb_sim.Time

let name = "Pbft"

type msg =
  | Engine_msg of Messages.msg
  | Request of Batch.t
  | Reply of { batch_id : int; result_digest : string; primary : int }

type replica = { ctx : msg Ctx.t; engine : Engine.t }

type client = { core : msg Client_core.t; primary_guess : int ref }

(* All replicas of the deployment form one cluster. *)
let members_of cfg = Array.init (Config.n_replicas cfg) (fun i -> i)

let reply_size cfg = Wire.response_bytes ~batch_size:cfg.Config.batch_size

(* Deterministic result digest so clients can match replies. *)
let result_digest (b : Batch.t) = Rdb_crypto.Sha256.digest_list [ "result"; b.Batch.digest ]

let create_replica (ctx : msg Ctx.t) =
  let cfg = ctx.Ctx.config in
  let engine_ctx = Ctx.map_send (fun m -> Engine_msg m) ctx in
  let engine_ref = ref None in
  let on_committed ~seq:_ (batch : Batch.t) cert =
    ctx.Ctx.execute batch ~cert:(Some cert) ~on_done:(fun () ->
        if not (Batch.is_noop batch) then
          let primary = match !engine_ref with Some e -> Engine.primary e | None -> 0 in
          ctx.Ctx.send ~dst:batch.Batch.origin ~size:(reply_size cfg)
            ~vcost:(Config.recv_floor_cost cfg ~bytes:(reply_size cfg))
            (Reply { batch_id = batch.Batch.id; result_digest = result_digest batch; primary }))
  in
  let engine =
    Engine.create ~ctx:engine_ctx ~members:(members_of cfg) ~cluster:0 ~on_committed
      ~on_view_change:(fun ~view:_ -> ()) ()
  in
  engine_ref := Some engine;
  { ctx; engine }

let on_message (r : replica) ~src (m : msg) =
  match m with
  | Engine_msg em -> Engine.on_message r.engine ~src em
  | Request batch ->
      if Batch.verify ~keychain:r.ctx.Ctx.keychain batch then Engine.submit_batch r.engine batch
  | Reply _ -> ()

let engine (r : replica) = r.engine

(* -- client agent -------------------------------------------------------- *)

let create_client (ctx : msg Ctx.t) ~cluster:_ =
  let cfg = ctx.Ctx.config in
  let size = Wire.batch_bytes ~batch_size:cfg.Config.batch_size in
  let vcost = Config.recv_floor_cost cfg ~bytes:size in
  (* The view-0 primary lives in region 0; replies update the guess
     after view changes. *)
  let primary_guess = ref 0 in
  let transmit ~retry (batch : Batch.t) =
    if retry then
      (* Suspect the primary: broadcast so backups forward and start
         censorship timers (standard Pbft client fallback). *)
      List.iter
        (fun dst -> ctx.Ctx.send ~dst ~size ~vcost (Request batch))
        (List.init (Config.n_replicas cfg) Fun.id)
    else ctx.Ctx.send ~dst:!primary_guess ~size ~vcost (Request batch)
  in
  (* Global f for the flat group. *)
  let f_global = (Config.n_replicas cfg - 1) / 3 in
  { core = Client_core.create ~ctx ~threshold:(f_global + 1) ~transmit; primary_guess }

let submit (c : client) batch = Client_core.submit c.core batch

let on_client_message (c : client) ~src (m : msg) =
  match m with
  | Reply { batch_id; result_digest; primary } ->
      c.primary_guess := primary;
      Client_core.on_reply c.core ~src ~batch_id ~result_digest
  | _ -> ()

let view_changes (r : replica) = Engine.n_view_changes r.engine
