lib/pbft/messages.ml: Rdb_crypto Rdb_types
