lib/pbft/engine.mli: Messages Rdb_types
