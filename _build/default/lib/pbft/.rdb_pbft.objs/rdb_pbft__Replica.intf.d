lib/pbft/replica.mli: Engine Messages Rdb_types
