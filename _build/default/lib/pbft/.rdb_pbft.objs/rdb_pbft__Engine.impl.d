lib/pbft/engine.ml: Array Hashtbl List Messages Option Printf Queue Rdb_crypto Rdb_sim Rdb_types String
