lib/pbft/messages.mli: Rdb_crypto Rdb_types
