lib/pbft/replica.ml: Array Engine Fun List Messages Rdb_crypto Rdb_sim Rdb_types
