(* Pbft wire messages (Castro & Liskov, OSDI '99), in the configuration
   the paper uses for GeoBFT's local replication (§2.2): digital
   signatures only on client requests and commit messages (the messages
   that get forwarded), MACs on everything else.

   [Forward] carries a client request from a backup to the primary
   (clients talk to the primary; if they suspect it, they broadcast,
   and backups forward + start a view-change timer — the standard
   Pbft anti-censorship mechanism, which §2.5 relies on to rule out
   primaries indefinitely proposing no-ops). *)

module Batch = Rdb_types.Batch
module Schnorr = Rdb_crypto.Schnorr

(* Proof that a replica had prepared (seq, digest) in some view; part
   of a view-change message.  In production this carries n − f prepare
   signatures; the simulator models its size and verification cost and
   trusts the structure (Byzantine tests attack the protocol paths, not
   the signature encoding). *)
type prepared_proof = {
  pp_seq : int;
  pp_view : int;
  pp_digest : string;
  pp_batch : Batch.t;
}

type msg =
  | Forward of Batch.t
  | Preprepare of { view : int; seq : int; batch : Batch.t }
  | Prepare of { view : int; seq : int; digest : string }
  | Commit of { view : int; seq : int; digest : string; signature : Schnorr.signature }
  | Checkpoint of { seq : int; state_digest : string }
  | ViewChange of { target : int; last_stable : int; prepared : prepared_proof list }
  | NewView of { target : int; preprepares : (int * Batch.t) list }

let kind = function
  | Forward _ -> "forward"
  | Preprepare _ -> "preprepare"
  | Prepare _ -> "prepare"
  | Commit _ -> "commit"
  | Checkpoint _ -> "checkpoint"
  | ViewChange _ -> "view-change"
  | NewView _ -> "new-view"
