(** Pbft wire messages, in the configuration the paper uses for
    GeoBFT's local replication (§2.2): digital signatures only on
    client requests and commit messages (the forwarded messages), MACs
    on everything else. *)

module Batch = Rdb_types.Batch
module Schnorr = Rdb_crypto.Schnorr

(** Proof that a replica prepared (seq, digest) in some view; carried
    by view-change messages.  Production Pbft attaches n − f prepare
    signatures; the simulator models that size and verification cost
    and trusts the structure. *)
type prepared_proof = {
  pp_seq : int;
  pp_view : int;
  pp_digest : string;
  pp_batch : Batch.t;
}

type msg =
  | Forward of Batch.t
      (** a backup forwarding a client request to the primary *)
  | Preprepare of { view : int; seq : int; batch : Batch.t }
  | Prepare of { view : int; seq : int; digest : string }
  | Commit of { view : int; seq : int; digest : string; signature : Schnorr.signature }
      (** signed: commits form the commit certificate (§2.2) *)
  | Checkpoint of { seq : int; state_digest : string }
  | ViewChange of { target : int; last_stable : int; prepared : prepared_proof list }
  | NewView of { target : int; preprepares : (int * Batch.t) list }

val kind : msg -> string
