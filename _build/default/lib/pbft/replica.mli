(** Standalone Pbft — the baseline protocol of §4: one flat Pbft group
    over all z·n replicas, primary initially in region 0 (Oregon, as in
    the paper), clients waiting for f_global + 1 matching replies.
    Satisfies {!Rdb_types.Protocol.S}. *)

module Batch = Rdb_types.Batch
module Ctx = Rdb_types.Ctx

val name : string

type msg =
  | Engine_msg of Messages.msg
  | Request of Batch.t
  | Reply of { batch_id : int; result_digest : string; primary : int }

type replica
type client

val create_replica : msg Ctx.t -> replica
val on_message : replica -> src:int -> msg -> unit
val view_changes : replica -> int

val engine : replica -> Engine.t
(** The underlying Pbft engine (tests and Byzantine hooks). *)

val create_client : msg Ctx.t -> cluster:int -> client
val submit : client -> Batch.t -> unit
val on_client_message : client -> src:int -> msg -> unit
