(* AES-CMAC (NIST SP 800-38B / RFC 4493).

   ResilientDB authenticates all non-forwarded messages with AES-CMAC
   message authentication codes; this is the implementation the fabric
   uses for pairwise channel authentication.  Verified against the
   RFC 4493 test vectors. *)

type key = { ks : Aes128.key_schedule; k1 : string; k2 : string }

let xor_block a b =
  let out = Bytes.create 16 in
  for i = 0 to 15 do
    Bytes.set out i (Char.chr (Char.code a.[i] lxor Char.code b.[i]))
  done;
  Bytes.unsafe_to_string out

(* Left shift of a 128-bit string by one bit. *)
let shl1 (s : string) : string * bool =
  let out = Bytes.create 16 in
  let carry = ref 0 in
  for i = 15 downto 0 do
    let b = Char.code s.[i] in
    Bytes.set out i (Char.chr (((b lsl 1) land 0xFF) lor !carry));
    carry := b lsr 7
  done;
  (Bytes.unsafe_to_string out, !carry = 1)

let rb = "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x87"

let derive_subkey l =
  let shifted, msb = shl1 l in
  if msb then xor_block shifted rb else shifted

let of_key (raw : string) : key =
  let ks = Aes128.expand_key raw in
  let l = Aes128.encrypt_block ks (String.make 16 '\x00') in
  let k1 = derive_subkey l in
  let k2 = derive_subkey k1 in
  { ks; k1; k2 }

(* Compute the 16-byte CMAC tag of [msg]. *)
let mac (key : key) (msg : string) : string =
  let len = String.length msg in
  let nblocks = if len = 0 then 1 else (len + 15) / 16 in
  let last_complete = len > 0 && len mod 16 = 0 in
  let x = ref (String.make 16 '\x00') in
  (* All blocks except the last. *)
  for i = 0 to nblocks - 2 do
    let block = String.sub msg (16 * i) 16 in
    x := Aes128.encrypt_block key.ks (xor_block !x block)
  done;
  (* Last block, masked with K1 (complete) or padded and masked with K2. *)
  let last =
    if last_complete then xor_block (String.sub msg (16 * (nblocks - 1)) 16) key.k1
    else begin
      let off = 16 * (nblocks - 1) in
      let rem = len - off in
      let padded = Bytes.make 16 '\x00' in
      Bytes.blit_string msg off padded 0 rem;
      Bytes.set padded rem '\x80';
      xor_block (Bytes.unsafe_to_string padded) key.k2
    end
  in
  Aes128.encrypt_block key.ks (xor_block !x last)

(* Constant-time-ish comparison; in a simulator timing channels do not
   matter, but the API mirrors what a production verifier must do. *)
let verify (key : key) (msg : string) ~(tag : string) : bool =
  String.length tag = 16
  &&
  let expected = mac key msg in
  let diff = ref 0 in
  for i = 0 to 15 do
    diff := !diff lor (Char.code expected.[i] lxor Char.code tag.[i])
  done;
  !diff = 0
