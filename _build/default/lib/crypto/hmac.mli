(** HMAC-SHA256 (RFC 2104 / FIPS 198-1), verified against the RFC 4231
    test vectors.  Used to derive per-channel CMAC keys and available
    as an alternative MAC. *)

val mac : key:string -> string -> string
(** 32-byte tag; keys of any length (hashed if longer than the block). *)

val mac_hex : key:string -> string -> string

val verify : key:string -> string -> tag:string -> bool
