(** Key directory for a deployment: per-node Schnorr key pairs and
    pairwise AES-CMAC channel keys, all derived deterministically from
    the deployment seed (the permissioned setting of §2.1 provisions
    keys statically). *)

type t

val create : seed:string -> n_nodes:int -> t

val n_nodes : t -> int

val secret_key : t -> int -> Schnorr.secret_key
val public_key : t -> int -> Schnorr.public_key

val channel_key : t -> a:int -> b:int -> Cmac.key
(** Symmetric CMAC key of the unordered channel [{a, b}]; cached.
    @raise Invalid_argument if an id is out of range. *)

val sign : t -> signer:int -> string -> Schnorr.signature

val verify : t -> signer:int -> string -> Schnorr.signature -> bool
(** False (rather than an exception) for out-of-range signer ids. *)

val mac : t -> src:int -> dst:int -> string -> string
val verify_mac : t -> src:int -> dst:int -> string -> tag:string -> bool
