(** SHA-256 (FIPS 180-4) — the repo-wide collision-resistant digest
    (block hashes, request digests, checkpoint digests), implemented
    from scratch and verified against the NIST test vectors. *)

type ctx
(** Streaming digest context. *)

val init : unit -> ctx

val feed_bytes : ctx -> Bytes.t -> int -> int -> unit
(** [feed_bytes ctx b off len] absorbs [len] bytes of [b] at [off]. *)

val feed_string : ctx -> string -> unit

val finalize : ctx -> string
(** Pad, finish, and return the raw 32-byte digest.  The context must
    not be reused afterwards. *)

val digest : string -> string
(** One-shot raw 32-byte digest. *)

val digest_hex : string -> string
(** One-shot digest, hex-encoded (64 characters). *)

val digest_list : string list -> string
(** Digest of the concatenation, without materializing it. *)
