(* HMAC-SHA256 (RFC 2104 / FIPS 198-1).

   Provided as the second MAC option (the Crypto++ configuration used by
   the C++ ResilientDB exposes both CMAC and HMAC); also used internally
   to derive per-channel CMAC keys from node identities.  Verified
   against the RFC 4231 test vectors. *)

let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  if String.length key < block_size then key ^ String.make (block_size - String.length key) '\x00'
  else key

let xor_pad key pad =
  String.init block_size (fun i -> Char.chr (Char.code key.[i] lxor pad))

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.digest_list [ xor_pad key 0x36; msg ] in
  Sha256.digest_list [ xor_pad key 0x5c; inner ]

let mac_hex ~key msg = Hex.of_string (mac ~key msg)

let verify ~key msg ~tag =
  String.length tag = 32
  &&
  let expected = mac ~key msg in
  let diff = ref 0 in
  for i = 0 to 31 do
    diff := !diff lor (Char.code expected.[i] lxor Char.code tag.[i])
  done;
  !diff = 0
