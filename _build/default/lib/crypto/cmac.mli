(** AES-CMAC (NIST SP 800-38B / RFC 4493) — ResilientDB's message
    authentication code for all non-forwarded messages (§3).  Verified
    against the RFC 4493 test vectors. *)

type key
(** An expanded CMAC key (AES key schedule plus the K1/K2 subkeys). *)

val of_key : string -> key
(** [of_key raw] expands a 16-byte AES-128 key.
    @raise Invalid_argument if [raw] is not 16 bytes. *)

val mac : key -> string -> string
(** 16-byte authentication tag of a message of any length. *)

val verify : key -> string -> tag:string -> bool
(** Constant-time tag comparison. *)
