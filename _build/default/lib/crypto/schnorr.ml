(* Schnorr signatures over the multiplicative group of Z_p, p = 2^61-1.

   Structure is the textbook scheme (the same shape as ED25519, which is
   a Schnorr variant over an Edwards curve):

     key pair     x (secret), y = g^x
     sign(m)      k <- H(x, m); r = g^k; e = H(r || m) mod q;
                  s = (k + x*e) mod q; signature = (e, s)
     verify(m)    r' = g^s * (y^{-1})^e; accept iff e = H(r' || m) mod q

   The field is far too small for real security — DESIGN.md documents
   this substitution: signing/verification *logic* (including rejection
   of any tampered message, signer, or signature) is real and exercised
   by the protocols; ED25519's CPU cost on the paper's testbed is
   charged by the simulator's cost model.

   Deterministic nonces (derived by hashing the secret key and message)
   make signatures reproducible across simulator runs.

   All internal arithmetic is on native ints (see [Field61]): the
   simulator verifies millions of signatures per run, and this module
   must not allocate on that path. *)

type public_key = { y : int; key_id : int; mutable y_inv : int }
(* [y_inv] caches y^{-1} (computed on first verification): verification
   then needs a single simultaneous exponentiation g^s · (y^{-1})^e. *)

type secret_key = { x : int; pub : public_key }
type signature = { e : int64; s : int64 }

let g = 3
let q = Field61.order_int

(* Map a 32-byte digest to a scalar mod q (native int). *)
let scalar_of_digest (d : string) : int =
  let acc = ref 0 in
  for i = 0 to 7 do
    acc := (!acc lsl 8) lor Char.code d.[i]
  done;
  (* Clear the top bits, then reduce. *)
  !acc land max_int mod q

let int_to_le_bytes v =
  String.init 8 (fun i -> Char.chr ((v lsr (8 * i)) land 0xFF))

(* Deterministic key generation from a seed (e.g. a node identity),
   so all replicas can derive each other's public keys without a PKI. *)
let keygen ~(seed : string) ~(key_id : int) : secret_key =
  let d = Sha256.digest_list [ "rdb-schnorr-keygen"; seed; string_of_int key_id ] in
  let x = 1 + (scalar_of_digest d mod (q - 1)) in
  let y = Field61.pow_int g x in
  { x; pub = { y; key_id; y_inv = 0 } }

let public_key (sk : secret_key) = sk.pub

let challenge ~(r : int) ~(msg : string) : int =
  scalar_of_digest (Sha256.digest_list [ "rdb-schnorr-e"; int_to_le_bytes r; msg ])

let sign (sk : secret_key) (msg : string) : signature =
  (* RFC 6979-style deterministic nonce. *)
  let kd = Sha256.digest_list [ "rdb-schnorr-k"; int_to_le_bytes sk.x; msg ] in
  let k = 1 + (scalar_of_digest kd mod (q - 1)) in
  let r = Field61.pow_int g k in
  let e = challenge ~r ~msg in
  let s = Field61.add_mod_int q k (Field61.mul_mod_int q sk.x e) in
  { e = Int64.of_int e; s = Int64.of_int s }

(* Simultaneous (Shamir) double exponentiation a^u · b^v mod p: one
   shared square-and-multiply ladder, ~1.3 exponentiations of work. *)
let dual_pow a u b v =
  let ab = Field61.mul_int a b in
  let acc = ref 1 in
  for i = 62 downto 0 do
    acc := Field61.mul_int !acc !acc;
    let bu = (u lsr i) land 1 in
    let bv = (v lsr i) land 1 in
    if bu = 1 && bv = 1 then acc := Field61.mul_int !acc ab
    else if bu = 1 then acc := Field61.mul_int !acc a
    else if bv = 1 then acc := Field61.mul_int !acc b
  done;
  !acc

let verify (pk : public_key) (msg : string) (sg : signature) : bool =
  if
    Int64.compare sg.s 0L < 0
    || Int64.compare sg.e 0L < 0
    || Int64.compare sg.s (Int64.of_int q) >= 0
    || Int64.compare sg.e (Int64.of_int q) >= 0
  then false
  else begin
    let e = Int64.to_int sg.e and s = Int64.to_int sg.s in
    (* r' = g^s * y^(-e) = g^s * (y^{-1})^e *)
    if pk.y_inv = 0 then pk.y_inv <- Field61.inv_int pk.y;
    let r' = dual_pow g s pk.y_inv e in
    challenge ~r:r' ~msg = e
  end

(* Wire encoding: 16 bytes (e, s as little-endian int64s). *)
let signature_to_string (sg : signature) : string =
  int_to_le_bytes (Int64.to_int sg.e) ^ int_to_le_bytes (Int64.to_int sg.s)

let signature_of_string (s : string) : signature option =
  if String.length s <> 16 then None
  else
    let rd off =
      let acc = ref 0L in
      for i = 7 downto 0 do
        acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code s.[off + i]))
      done;
      !acc
    in
    Some { e = rd 0; s = rd 8 }
