(** AES-128 block cipher (FIPS 197), encryption direction only — all
    that CMAC requires.  Verified against the FIPS-197 vectors. *)

type key_schedule

val expand_key : string -> key_schedule
(** Expand a 16-byte key into the 11 round keys.
    @raise Invalid_argument if the key is not 16 bytes. *)

val encrypt_block : key_schedule -> string -> string
(** Encrypt one 16-byte block.
    @raise Invalid_argument if the block is not 16 bytes. *)
