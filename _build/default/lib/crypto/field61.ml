(* Modular arithmetic over the 61-bit Mersenne prime p = 2^61 - 1.

   This is the arithmetic substrate for the repo's Schnorr signatures
   (see [Schnorr] and the substitution table in DESIGN.md: the paper
   uses ED25519; this container has no big-integer or crypto library,
   so we implement a structurally-faithful but non-cryptographic
   signature scheme over a small field, and model ED25519's *cost*
   separately in the simulator's CPU model).

   All arithmetic is on native 63-bit OCaml ints: every quantity stays
   below 2^62 (products are split into 31/30-bit halves), so nothing
   overflows and — unlike Int64 — nothing allocates.  The simulator
   verifies millions of signatures per run; boxing made this module the
   hottest allocation site in early profiles.  The public interface
   speaks int64 for stable wire encoding. *)

let p = 0x1FFF_FFFF_FFFF_FFFF (* 2^61 - 1 *)

(* Group order of Z_p^*: p - 1. *)
let order_int = p - 1

let p64 = 2305843009213693951L
let order = 2305843009213693950L

(* -- native-int core ---------------------------------------------------- *)

let reduce_int x =
  let r = x mod p in
  if r < 0 then r + p else r

(* a + b mod m; safe for m < 2^62 (sums stay below max_int = 2^62-1). *)
let add_mod_int m a b =
  let s = a + b in
  if s >= m then s - m else s

let add_int a b = add_mod_int p a b

let sub_int a b = if a >= b then a - b else a - b + p

(* a * b mod p for a, b in [0, p): split both into 31/30-bit halves so
   every partial product fits 62 bits, then fold with 2^61 = 1 mod p. *)
let mul_int a b =
  let a1 = a lsr 31 and a0 = a land 0x7FFF_FFFF in
  let b1 = b lsr 31 and b0 = b land 0x7FFF_FFFF in
  (* a*b = a1*b1*2^62 + (a1*b0 + a0*b1)*2^31 + a0*b0;  2^62 = 2 mod p *)
  let t1 = a1 * b1 * 2 mod p in
  let mid = (a1 * b0 mod p) + (a0 * b1 mod p) in
  let mid = if mid >= p then mid - p else mid in
  (* mid * 2^31 mod p: mid = mh*2^30 + ml, so mid*2^31 = mh*2^61 + ml*2^31 *)
  let mh = mid lsr 30 and ml = mid land 0x3FFF_FFFF in
  let t2 = (mh + (ml lsl 31)) mod p in
  let t3 = a0 * b0 mod p in
  add_int (add_int t1 t2) t3

(* a * b mod m for a general modulus m < 2^61 (exponent arithmetic mod
   the group order): double-and-add, a handful of calls per signature. *)
let mul_mod_int m a b =
  if m = p then mul_int (a mod p) (b mod p)
  else begin
    let a = ref (a mod m) and b = ref (b mod m) in
    let acc = ref 0 in
    while !b > 0 do
      if !b land 1 = 1 then acc := add_mod_int m !acc !a;
      a := add_mod_int m !a !a;
      b := !b lsr 1
    done;
    !acc
  end

let pow_mod_int m a e =
  let a = ref (a mod m) and e = ref e in
  let acc = ref 1 in
  while !e > 0 do
    if !e land 1 = 1 then acc := mul_mod_int m !acc !a;
    a := mul_mod_int m !a !a;
    e := !e lsr 1
  done;
  !acc

let pow_int a e =
  let a = ref (a mod p) and e = ref e in
  let acc = ref 1 in
  while !e > 0 do
    if !e land 1 = 1 then acc := mul_int !acc !a;
    a := mul_int !a !a;
    e := !e lsr 1
  done;
  !acc

let inv_int a =
  if a = 0 then invalid_arg "Field61.inv: zero has no inverse";
  pow_int a (p - 2)

(* -- int64 compatibility surface ---------------------------------------- *)

let to_i = Int64.to_int   (* all field values fit in 62 bits *)
let of_i = Int64.of_int

let reduce x = of_i (reduce_int (to_i (Int64.rem x p64)))
let add a b = of_i (add_int (to_i a) (to_i b))
let sub a b = of_i (sub_int (to_i a) (to_i b))
let mul a b = of_i (mul_int (reduce_int (to_i (Int64.rem a p64))) (reduce_int (to_i (Int64.rem b p64))))
let add_mod m a b = of_i (add_mod_int (to_i m) (to_i a) (to_i b))
let mul_mod m a b = of_i (mul_mod_int (to_i m) (to_i a) (to_i b))
let pow_mod m a e = of_i (pow_mod_int (to_i m) (to_i a) (to_i e))
let pow a e = of_i (pow_int (to_i (Int64.rem a p64)) (to_i e))
let inv a = of_i (inv_int (to_i (Int64.rem a p64)))

let p = p64
