lib/crypto/schnorr.ml: Char Field61 Int64 Sha256 String
