lib/crypto/hmac.mli:
