lib/crypto/keychain.ml: Array Cmac Hmac Printf Schnorr String
