lib/crypto/cmac.mli:
