lib/crypto/hmac.ml: Char Hex Sha256 String
