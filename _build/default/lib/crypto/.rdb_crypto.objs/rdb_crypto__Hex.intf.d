lib/crypto/hex.mli:
