lib/crypto/keychain.mli: Cmac Schnorr
