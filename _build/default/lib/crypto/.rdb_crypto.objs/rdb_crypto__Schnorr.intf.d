lib/crypto/schnorr.mli:
