lib/crypto/field61.ml: Int64
