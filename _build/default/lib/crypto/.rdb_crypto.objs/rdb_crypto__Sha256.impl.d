lib/crypto/sha256.ml: Array Bytes Char Hex Int32 Int64 List String
