(** Modular arithmetic over the 61-bit Mersenne prime p = 2^61 - 1:
    the substrate for {!Schnorr}.

    Two surfaces: a native-int core (allocation-free; everything stays
    below 2^62 so nothing overflows 63-bit OCaml ints) used on the hot
    verification path, and int64 wrappers for wire-stable callers and
    tests. *)

(** {1 Native-int core} *)

val order_int : int
(** |Z_p^*| = p - 1 as a native int. *)

val reduce_int : int -> int
val add_mod_int : int -> int -> int -> int
val add_int : int -> int -> int
val sub_int : int -> int -> int

val mul_int : int -> int -> int
(** [mul_int a b] for [a, b] in [0, p): ~20 integer ops, no allocation. *)

val mul_mod_int : int -> int -> int -> int
(** General-modulus multiply (double-and-add) for moduli < 2^61. *)

val pow_mod_int : int -> int -> int -> int
val pow_int : int -> int -> int

val inv_int : int -> int
(** Multiplicative inverse via Fermat.
    @raise Invalid_argument on zero. *)

(** {1 Int64 wrappers} *)

val p : int64
(** 2^61 - 1. *)

val order : int64
(** p - 1. *)

val reduce : int64 -> int64
val add : int64 -> int64 -> int64
val sub : int64 -> int64 -> int64
val mul : int64 -> int64 -> int64
val add_mod : int64 -> int64 -> int64 -> int64
val mul_mod : int64 -> int64 -> int64 -> int64
val pow_mod : int64 -> int64 -> int64 -> int64
val pow : int64 -> int64 -> int64
val inv : int64 -> int64
