(* SHA-256 (FIPS 180-4), implemented from scratch on int32 words.

   ResilientDB uses SHA256 for all collision-resistant message digests
   (block hashes, request digests, checkpoint state digests); this module
   is the repo-wide digest primitive.  Verified against the NIST test
   vectors in the test suite. *)

type ctx = {
  h : int32 array;             (* 8-word chaining state *)
  buf : Bytes.t;               (* 64-byte block buffer *)
  mutable buf_len : int;       (* bytes currently in [buf] *)
  mutable total : int64;       (* total message length in bytes *)
  w : int32 array;             (* 64-word message schedule (scratch) *)
}

let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl; 0x59f111f1l;
     0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l;
     0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l; 0xc19bf174l; 0xe49b69c1l; 0xefbe4786l;
     0x0fc19dc6l; 0x240ca1ccl; 0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal;
     0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
     0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl; 0x53380d13l;
     0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l; 0xa2bfe8a1l; 0xa81a664bl;
     0xc24b8b70l; 0xc76c51a3l; 0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l;
     0x19a4c116l; 0x1e376c08l; 0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al;
     0x5b9cca4fl; 0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

let init () =
  {
    h = [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
           0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0L;
    w = Array.make 64 0l;
  }

let ( +% ) = Int32.add
let ( ^% ) = Int32.logxor
let ( &% ) = Int32.logand
let lnot32 = Int32.lognot

let rotr x n =
  Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))

let shr x n = Int32.shift_right_logical x n

(* Process one 64-byte block located at [off] in [data]. *)
let compress ctx (data : Bytes.t) off =
  let w = ctx.w in
  for t = 0 to 15 do
    let base = off + (4 * t) in
    let b i = Int32.of_int (Char.code (Bytes.get data (base + i))) in
    w.(t) <-
      Int32.logor
        (Int32.shift_left (b 0) 24)
        (Int32.logor
           (Int32.shift_left (b 1) 16)
           (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
  done;
  for t = 16 to 63 do
    let s0 = rotr w.(t - 15) 7 ^% rotr w.(t - 15) 18 ^% shr w.(t - 15) 3 in
    let s1 = rotr w.(t - 2) 17 ^% rotr w.(t - 2) 19 ^% shr w.(t - 2) 10 in
    w.(t) <- w.(t - 16) +% s0 +% w.(t - 7) +% s1
  done;
  let a = ref ctx.h.(0) and b = ref ctx.h.(1) and c = ref ctx.h.(2) and d = ref ctx.h.(3) in
  let e = ref ctx.h.(4) and f = ref ctx.h.(5) and g = ref ctx.h.(6) and hh = ref ctx.h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 ^% rotr !e 11 ^% rotr !e 25 in
    let ch = (!e &% !f) ^% (lnot32 !e &% !g) in
    let t1 = !hh +% s1 +% ch +% k.(t) +% w.(t) in
    let s0 = rotr !a 2 ^% rotr !a 13 ^% rotr !a 22 in
    let maj = (!a &% !b) ^% (!a &% !c) ^% (!b &% !c) in
    let t2 = s0 +% maj in
    hh := !g;
    g := !f;
    f := !e;
    e := !d +% t1;
    d := !c;
    c := !b;
    b := !a;
    a := t1 +% t2
  done;
  ctx.h.(0) <- ctx.h.(0) +% !a;
  ctx.h.(1) <- ctx.h.(1) +% !b;
  ctx.h.(2) <- ctx.h.(2) +% !c;
  ctx.h.(3) <- ctx.h.(3) +% !d;
  ctx.h.(4) <- ctx.h.(4) +% !e;
  ctx.h.(5) <- ctx.h.(5) +% !f;
  ctx.h.(6) <- ctx.h.(6) +% !g;
  ctx.h.(7) <- ctx.h.(7) +% !hh

let feed_bytes ctx (data : Bytes.t) off len =
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let off = ref off and len = ref len in
  (* Fill a partial buffer first. *)
  if ctx.buf_len > 0 then begin
    let take = min !len (64 - ctx.buf_len) in
    Bytes.blit data !off ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    off := !off + take;
    len := !len - take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  (* Whole blocks straight from the input. *)
  while !len >= 64 do
    compress ctx data !off;
    off := !off + 64;
    len := !len - 64
  done;
  (* Stash the tail. *)
  if !len > 0 then begin
    Bytes.blit data !off ctx.buf ctx.buf_len !len;
    ctx.buf_len <- ctx.buf_len + !len
  end

let feed_string ctx s = feed_bytes ctx (Bytes.unsafe_of_string s) 0 (String.length s)

let finalize ctx : string =
  let bit_len = Int64.mul ctx.total 8L in
  (* Padding: 0x80, zeros, then 64-bit big-endian bit length. *)
  let pad_len =
    let rem = (ctx.buf_len + 1 + 8) mod 64 in
    if rem = 0 then 1 + 8 else 1 + 8 + (64 - rem)
  in
  let pad = Bytes.make pad_len '\x00' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad
      (pad_len - 1 - i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len (8 * i)) 0xFFL)))
  done;
  (* feed_bytes updates [total], but we've already captured the length. *)
  feed_bytes ctx pad 0 pad_len;
  assert (ctx.buf_len = 0);
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xFF));
    Bytes.set out ((4 * i) + 1) (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xFF));
    Bytes.set out ((4 * i) + 2) (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xFF));
    Bytes.set out ((4 * i) + 3) (Char.chr (Int32.to_int v land 0xFF))
  done;
  Bytes.unsafe_to_string out

(* One-shot digest of a string; returns the raw 32-byte digest. *)
let digest (s : string) : string =
  let ctx = init () in
  feed_string ctx s;
  finalize ctx

let digest_hex s = Hex.of_string (digest s)

(* Digest of the concatenation of several strings, without building the
   concatenation. *)
let digest_list (parts : string list) : string =
  let ctx = init () in
  List.iter (fun p -> feed_string ctx p) parts;
  finalize ctx
