(* AES-128 block cipher (FIPS 197), encryption direction only — that is
   all CMAC needs.  Straightforward byte-oriented implementation: this
   code runs on the *logical* path (authenticating simulated messages);
   the performance of hardware-accelerated AES on the paper's testbed is
   captured by the simulator's CPU cost model, not by this code.
   Verified against the FIPS-197 and SP 800-38B test vectors. *)

let sbox =
  "\x63\x7c\x77\x7b\xf2\x6b\x6f\xc5\x30\x01\x67\x2b\xfe\xd7\xab\x76\
   \xca\x82\xc9\x7d\xfa\x59\x47\xf0\xad\xd4\xa2\xaf\x9c\xa4\x72\xc0\
   \xb7\xfd\x93\x26\x36\x3f\xf7\xcc\x34\xa5\xe5\xf1\x71\xd8\x31\x15\
   \x04\xc7\x23\xc3\x18\x96\x05\x9a\x07\x12\x80\xe2\xeb\x27\xb2\x75\
   \x09\x83\x2c\x1a\x1b\x6e\x5a\xa0\x52\x3b\xd6\xb3\x29\xe3\x2f\x84\
   \x53\xd1\x00\xed\x20\xfc\xb1\x5b\x6a\xcb\xbe\x39\x4a\x4c\x58\xcf\
   \xd0\xef\xaa\xfb\x43\x4d\x33\x85\x45\xf9\x02\x7f\x50\x3c\x9f\xa8\
   \x51\xa3\x40\x8f\x92\x9d\x38\xf5\xbc\xb6\xda\x21\x10\xff\xf3\xd2\
   \xcd\x0c\x13\xec\x5f\x97\x44\x17\xc4\xa7\x7e\x3d\x64\x5d\x19\x73\
   \x60\x81\x4f\xdc\x22\x2a\x90\x88\x46\xee\xb8\x14\xde\x5e\x0b\xdb\
   \xe0\x32\x3a\x0a\x49\x06\x24\x5c\xc2\xd3\xac\x62\x91\x95\xe4\x79\
   \xe7\xc8\x37\x6d\x8d\xd5\x4e\xa9\x6c\x56\xf4\xea\x65\x7a\xae\x08\
   \xba\x78\x25\x2e\x1c\xa6\xb4\xc6\xe8\xdd\x74\x1f\x4b\xbd\x8b\x8a\
   \x70\x3e\xb5\x66\x48\x03\xf6\x0e\x61\x35\x57\xb9\x86\xc1\x1d\x9e\
   \xe1\xf8\x98\x11\x69\xd9\x8e\x94\x9b\x1e\x87\xe9\xce\x55\x28\xdf\
   \x8c\xa1\x89\x0d\xbf\xe6\x42\x68\x41\x99\x2d\x0f\xb0\x54\xbb\x16"

let sub b = Char.code sbox.[b]

(* xtime: multiply by x in GF(2^8) with the AES polynomial. *)
let xtime b =
  let b' = b lsl 1 in
  if b' land 0x100 <> 0 then (b' lxor 0x11B) land 0xFF else b'

type key_schedule = int array (* 44 round-key words, big-endian packed *)

let expand_key (key : string) : key_schedule =
  if String.length key <> 16 then invalid_arg "Aes128.expand_key: key must be 16 bytes";
  let w = Array.make 44 0 in
  for i = 0 to 3 do
    w.(i) <-
      (Char.code key.[4 * i] lsl 24)
      lor (Char.code key.[(4 * i) + 1] lsl 16)
      lor (Char.code key.[(4 * i) + 2] lsl 8)
      lor Char.code key.[(4 * i) + 3]
  done;
  let rcon = ref 0x01 in
  for i = 4 to 43 do
    let temp = w.(i - 1) in
    let temp =
      if i mod 4 = 0 then begin
        (* RotWord + SubWord + Rcon *)
        let rotated = ((temp lsl 8) lor (temp lsr 24)) land 0xFFFFFFFF in
        let subbed =
          (sub ((rotated lsr 24) land 0xFF) lsl 24)
          lor (sub ((rotated lsr 16) land 0xFF) lsl 16)
          lor (sub ((rotated lsr 8) land 0xFF) lsl 8)
          lor sub (rotated land 0xFF)
        in
        let v = subbed lxor (!rcon lsl 24) in
        rcon := xtime !rcon;
        v
      end
      else temp
    in
    w.(i) <- w.(i - 4) lxor temp
  done;
  w

(* Encrypt one 16-byte block.  State is a 16-element int array in
   column-major AES order: state.(r + 4*c). *)
let encrypt_block (ks : key_schedule) (input : string) : string =
  if String.length input <> 16 then invalid_arg "Aes128.encrypt_block: block must be 16 bytes";
  let st = Array.make 16 0 in
  for c = 0 to 3 do
    for r = 0 to 3 do
      st.(r + (4 * c)) <- Char.code input.[(4 * c) + r]
    done
  done;
  let add_round_key round =
    for c = 0 to 3 do
      let w = ks.((4 * round) + c) in
      st.(0 + (4 * c)) <- st.(0 + (4 * c)) lxor ((w lsr 24) land 0xFF);
      st.(1 + (4 * c)) <- st.(1 + (4 * c)) lxor ((w lsr 16) land 0xFF);
      st.(2 + (4 * c)) <- st.(2 + (4 * c)) lxor ((w lsr 8) land 0xFF);
      st.(3 + (4 * c)) <- st.(3 + (4 * c)) lxor (w land 0xFF)
    done
  in
  let sub_bytes () =
    for i = 0 to 15 do
      st.(i) <- sub st.(i)
    done
  in
  let shift_rows () =
    (* Row r rotates left by r. *)
    for r = 1 to 3 do
      let row = [| st.(r); st.(r + 4); st.(r + 8); st.(r + 12) |] in
      for c = 0 to 3 do
        st.(r + (4 * c)) <- row.((c + r) mod 4)
      done
    done
  in
  let mix_columns () =
    for c = 0 to 3 do
      let a0 = st.(4 * c) and a1 = st.(1 + (4 * c)) and a2 = st.(2 + (4 * c)) and a3 = st.(3 + (4 * c)) in
      let m2 b = xtime b in
      let m3 b = xtime b lxor b in
      st.(4 * c) <- m2 a0 lxor m3 a1 lxor a2 lxor a3;
      st.(1 + (4 * c)) <- a0 lxor m2 a1 lxor m3 a2 lxor a3;
      st.(2 + (4 * c)) <- a0 lxor a1 lxor m2 a2 lxor m3 a3;
      st.(3 + (4 * c)) <- m3 a0 lxor a1 lxor a2 lxor m2 a3
    done
  in
  add_round_key 0;
  for round = 1 to 9 do
    sub_bytes ();
    shift_rows ();
    mix_columns ();
    add_round_key round
  done;
  sub_bytes ();
  shift_rows ();
  add_round_key 10;
  let out = Bytes.create 16 in
  for c = 0 to 3 do
    for r = 0 to 3 do
      Bytes.set out ((4 * c) + r) (Char.chr st.(r + (4 * c)))
    done
  done;
  Bytes.unsafe_to_string out
