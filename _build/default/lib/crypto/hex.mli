(** Hex encoding/decoding for digests, keys and test vectors. *)

val of_string : string -> string
(** Lower-case hex of raw bytes (length doubles). *)

val to_string : string -> string
(** Decode hex (either case).
    @raise Invalid_argument on odd length or non-hex characters. *)
