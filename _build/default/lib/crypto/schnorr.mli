(** Schnorr signatures over the multiplicative group of Z_p, p = 2^61-1.

    Structurally the textbook scheme (ED25519 is a Schnorr variant);
    deterministic nonces make signatures reproducible.  The field is
    far too small for real security — see DESIGN.md: signing and
    verification {e logic} (including rejection of tampered messages
    and forged signers) is real and exercised by the protocols, while
    the {e performance} of production ED25519 is modeled by the
    simulator's CPU cost model. *)

type public_key
type secret_key
type signature = { e : int64; s : int64 }

val keygen : seed:string -> key_id:int -> secret_key
(** Deterministic key generation: all parties can derive each other's
    public keys from the shared deployment seed (permissioned setting). *)

val public_key : secret_key -> public_key

val sign : secret_key -> string -> signature
(** Deterministic (RFC 6979-style nonce) signature over a message. *)

val verify : public_key -> string -> signature -> bool

val signature_to_string : signature -> string
(** 16-byte wire encoding. *)

val signature_of_string : string -> signature option
