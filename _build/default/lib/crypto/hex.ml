(* Hex encoding/decoding for digests, keys and test vectors. *)

let of_string (s : string) : string =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  let digit d = if d < 10 then Char.chr (Char.code '0' + d) else Char.chr (Char.code 'a' + d - 10) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set out (2 * i) (digit (c lsr 4));
    Bytes.set out ((2 * i) + 1) (digit (c land 0xF))
  done;
  Bytes.unsafe_to_string out

let value_of_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.to_string: invalid hex digit"

let to_string (h : string) : string =
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Hex.to_string: odd length";
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    let hi = value_of_digit h.[2 * i] in
    let lo = value_of_digit h.[(2 * i) + 1] in
    Bytes.set out i (Char.chr ((hi lsl 4) lor lo))
  done;
  Bytes.unsafe_to_string out
