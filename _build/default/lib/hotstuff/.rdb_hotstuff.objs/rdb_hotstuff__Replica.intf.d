lib/hotstuff/replica.mli: Rdb_types
