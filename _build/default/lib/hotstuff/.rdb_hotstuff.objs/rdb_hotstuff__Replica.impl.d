lib/hotstuff/replica.ml: Array Hashtbl Queue Rdb_crypto Rdb_sim Rdb_types
