(* Ablation studies for the design decisions DESIGN.md calls out.
   These go beyond the paper's own figures: each isolates one design
   choice of GeoBFT/ResilientDB and measures its contribution.

   A. Global-sharing fan-out (GeoBFT sends to f+1 replicas per remote
      cluster — Figure 5).  We sweep the fan-out s ∈ {1, f+1, n}:
      s = 1 minimizes traffic but a single unlucky receiver crash cuts
      the cluster off (remote view changes fire); s = n is the naive
      broadcast that wastes the scarce WAN bandwidth; s = f+1 is the
      paper's sweet spot — resilient with minimal cost.

   B. Pipelining depth (§2.5: replication, sharing and execution of
      consecutive rounds overlap).  Depth 1 forces lock-step rounds
      (every round pays the full WAN latency); the default depth keeps
      the WAN pipe full.

   C. MACs vs signatures (§2.1/§3: ResilientDB signs only forwarded
      messages — client requests and commits — and MACs the rest).
      We re-cost Pbft as if every message carried a signature
      (signature-heavy classic BFT), showing why the MAC/signature
      split matters. *)

module Config = Rdb_types.Config
module Report = Rdb_fabric.Report
open Runner

(* -- A: sharing fan-out -------------------------------------------------- *)
module Fanout = struct
  type row = { fanout : int; label : string; healthy : Report.t; one_receiver_down : Report.t }

  let run ?(windows = default_windows) ?(z = 4) ?(n = 7) () =
    let f = (n - 1) / 3 in
    List.map
      (fun (fanout, label) ->
        let cfg = { (Config.make ~z ~n ()) with Config.geobft_fanout = fanout } in
        let healthy = run_proto Geobft ~windows cfg in
        (* One crashed backup per cluster: with fan-out 1 some shares
           now land exclusively on dead replicas (the rotation hits
           them every n rounds), forcing detection and resends. *)
        let one_receiver_down = run_proto Geobft ~windows ~fault:One_nonprimary cfg in
        { fanout; label; healthy; one_receiver_down })
      [ (1, "s=1 (minimal)"); (0, Printf.sprintf "s=f+1=%d (paper)" (f + 1)); (n, "s=n (broadcast)") ]

  let print rows =
    Printf.printf "\nAblation A: GeoBFT global-sharing fan-out (z=4, n=7)\n";
    Printf.printf "%-18s %14s %14s %18s %14s\n" "fan-out" "txn/s" "global msgs/dec" "txn/s (1 crash)"
      "view changes";
    List.iter
      (fun r ->
        Printf.printf "%-18s %14.0f %14.1f %18.0f %14d\n" r.label
          r.healthy.Report.throughput_txn_s
          (Report.global_msgs_per_decision r.healthy)
          r.one_receiver_down.Report.throughput_txn_s r.one_receiver_down.Report.view_changes)
      rows
end

(* -- B: pipelining depth --------------------------------------------------- *)
module Pipeline = struct
  type row = { depth : int; report : Report.t }

  let run ?(windows = default_windows) ?(z = 4) ?(n = 7) () =
    List.map
      (fun depth ->
        let cfg = { (Config.make ~z ~n ()) with Config.pipeline_depth = depth } in
        { depth; report = run_proto Geobft ~windows cfg })
      [ 1; 2; 4; 8; 32 ]

  let print rows =
    Printf.printf "\nAblation B: GeoBFT consensus pipelining depth (z=4, n=7)\n";
    Printf.printf "%-8s %14s %14s\n" "depth" "txn/s" "latency (ms)";
    List.iter
      (fun r ->
        Printf.printf "%-8d %14.0f %14.1f\n" r.depth r.report.Report.throughput_txn_s
          r.report.Report.avg_latency_ms)
      rows
end

(* -- C: MACs vs signatures -------------------------------------------------- *)
module Crypto_split = struct
  type row = { label : string; report : Report.t }

  let run ?(windows = default_windows) ?(z = 4) ?(n = 7) () =
    let base = Config.make ~z ~n () in
    let sign_everything =
      (* Every MAC becomes a signature: what classic signature-based
         BFT pays per message. *)
      {
        base with
        Config.costs =
          {
            base.Config.costs with
            Config.mac_us = base.Config.costs.Config.verify_us;
          };
      }
    in
    [
      { label = "MACs + sigs (ResilientDB)"; report = run_proto Pbft ~windows base };
      { label = "signatures everywhere"; report = run_proto Pbft ~windows sign_everything };
    ]

  let print rows =
    Printf.printf "\nAblation C: authenticators in Pbft (z=4, n=7)\n";
    Printf.printf "%-28s %14s %14s\n" "scheme" "txn/s" "latency (ms)";
    List.iter
      (fun r ->
        Printf.printf "%-28s %14.0f %14.1f\n" r.label r.report.Report.throughput_txn_s
          r.report.Report.avg_latency_ms)
      rows
end

(* -- D: threshold-signature certificates (§2.2, optional) ------------------- *)
module Threshold_certs = struct
  (* "if the size of commit messages starts dominating, then threshold
     signatures can be adopted to reduce their cost" (§4): the benefit
     grows with n, since plain certificates carry n − f signatures and
     every receiver verifies all of them. *)
  type row = { n : int; plain : Report.t; threshold : Report.t }

  let run ?(windows = default_windows) ?(z = 4) () =
    List.map
      (fun n ->
        let base = Config.make ~z ~n () in
        let plain = run_proto Geobft ~windows base in
        let threshold = run_proto Geobft ~windows { base with Config.threshold_certs = true } in
        { n; plain; threshold })
      [ 7; 15 ]

  let print rows =
    Printf.printf
      "\nAblation D: GeoBFT certificates: n-f signatures vs one threshold signature (z=4)\n";
    Printf.printf "%-4s %20s %20s %24s\n" "n" "plain txn/s" "threshold txn/s"
      "global MB (plain/thr)";
    List.iter
      (fun r ->
        Printf.printf "%-4d %20.0f %20.0f %14.1f / %-8.1f\n" r.n
          r.plain.Report.throughput_txn_s r.threshold.Report.throughput_txn_s
          r.plain.Report.global_mb r.threshold.Report.global_mb)
      rows
end

let run_all ?(windows = default_windows) () =
  let a = Fanout.run ~windows () in
  Fanout.print a;
  let b = Pipeline.run ~windows () in
  Pipeline.print b;
  let c = Crypto_split.run ~windows () in
  Crypto_split.print c;
  let d = Threshold_certs.run ~windows () in
  Threshold_certs.print d
