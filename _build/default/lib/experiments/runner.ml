(* Uniform driver used by every experiment: pick a protocol, a
   configuration and a failure scenario, run one simulated deployment,
   return its report. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Report = Rdb_fabric.Report

module GeoDep = Rdb_fabric.Deployment.Make (Rdb_geobft.Replica)
module PbftDep = Rdb_fabric.Deployment.Make (Rdb_pbft.Replica)
module ZyzDep = Rdb_fabric.Deployment.Make (Rdb_zyzzyva.Replica)
module HsDep = Rdb_fabric.Deployment.Make (Rdb_hotstuff.Replica)
module StwDep = Rdb_fabric.Deployment.Make (Rdb_steward.Replica)

type proto = Geobft | Pbft | Zyzzyva | Hotstuff | Steward

let all_protocols = [ Geobft; Pbft; Zyzzyva; Hotstuff; Steward ]

let proto_name = function
  | Geobft -> "GeoBFT"
  | Pbft -> "Pbft"
  | Zyzzyva -> "Zyzzyva"
  | Hotstuff -> "HotStuff"
  | Steward -> "Steward"

let proto_of_string s =
  match String.lowercase_ascii s with
  | "geobft" -> Some Geobft
  | "pbft" -> Some Pbft
  | "zyzzyva" -> Some Zyzzyva
  | "hotstuff" -> Some Hotstuff
  | "steward" -> Some Steward
  | _ -> None

(* The failure scenarios of §4.3. *)
type fault =
  | No_fault
  | One_nonprimary           (* one backup crashed from the start *)
  | F_nonprimary             (* f backups per cluster crashed from the start *)
  | Primary_failure          (* the (initial) primary crashes mid-run *)

let fault_name = function
  | No_fault -> "none"
  | One_nonprimary -> "one non-primary"
  | F_nonprimary -> "f non-primary per cluster"
  | Primary_failure -> "primary"

(* Simulated measurement windows.  The paper runs 60 s + 120 s on the
   cloud; a deterministic simulator needs less: throughput is stable
   within a few seconds once pipelines fill. *)
type windows = { warmup : Time.t; measure : Time.t }

let default_windows = { warmup = Time.sec 1; measure = Time.sec 4 }
let full_windows = { warmup = Time.sec 15; measure = Time.sec 45 }

(* The slice of the deployment interface the runner needs, as a named
   module type so the protocol dispatch can use first-class modules. *)
module type DEP = sig
  type t
  val create : ?trace:bool -> ?n_records:int -> ?retain_payloads:bool -> Config.t -> t
  val run : ?warmup:Time.t -> ?measure:Time.t -> t -> Report.t
  val crash_replica : t -> int -> unit
  val crash_primary : t -> cluster:int -> unit
  val crash_f_per_cluster : t -> unit
  val at : t -> time:Time.t -> (unit -> unit) -> unit
end

let run_proto (p : proto) ?(windows = default_windows) ?(fault = No_fault) (cfg : Config.t) :
    Report.t =
  let go (module D : DEP) =
    (* Experiments sweep many large deployments: keep ledgers compact. *)
    let d = D.create ~retain_payloads:false cfg in
    (match fault with
    | No_fault -> ()
    | One_nonprimary -> D.crash_replica d (cfg.Config.n - 1)
    | F_nonprimary -> D.crash_f_per_cluster d
    | Primary_failure ->
        D.at d ~time:(Time.add windows.warmup (Time.ms 2000)) (fun () ->
            D.crash_primary d ~cluster:0));
    D.run ~warmup:windows.warmup ~measure:windows.measure d
  in
  match p with
  | Geobft -> go (module GeoDep)
  | Pbft -> go (module PbftDep)
  | Zyzzyva -> go (module ZyzDep)
  | Hotstuff -> go (module HsDep)
  | Steward -> go (module StwDep)
