(** Uniform experiment driver: pick a protocol, a configuration and a
    failure scenario; run one simulated deployment; get its report. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Report = Rdb_fabric.Report

type proto = Geobft | Pbft | Zyzzyva | Hotstuff | Steward

val all_protocols : proto list

val proto_name : proto -> string
val proto_of_string : string -> proto option

(** The §4.3 failure scenarios. *)
type fault =
  | No_fault
  | One_nonprimary   (** one backup crashed from the start *)
  | F_nonprimary     (** f backups per cluster crashed from the start *)
  | Primary_failure  (** the initial primary crashes mid-measurement *)

val fault_name : fault -> string

type windows = { warmup : Time.t; measure : Time.t }

val default_windows : windows
(** 2 s + 6 s of simulated time: enough for a deterministic simulator
    whose pipelines fill within a second. *)

val full_windows : windows
(** 15 s + 45 s, approaching the paper's 60 s + 120 s methodology. *)

val run_proto : proto -> ?windows:windows -> ?fault:fault -> Config.t -> Report.t
(** Build the deployment (compact-ledger mode), inject the fault,
    run warm-up + measurement, return the report. *)
