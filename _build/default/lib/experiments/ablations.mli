(** Ablation studies for the design decisions DESIGN.md calls out —
    beyond the paper's own figures, each isolates one choice and
    measures its contribution. *)

module Config = Rdb_types.Config
module Report = Rdb_fabric.Report
open Runner

(** A. GeoBFT's global-sharing fan-out (paper: f+1, Figure 5):
    s = 1 is cheap but fragile, s = n is naive broadcast. *)
module Fanout : sig
  type row = { fanout : int; label : string; healthy : Report.t; one_receiver_down : Report.t }

  val run : ?windows:windows -> ?z:int -> ?n:int -> unit -> row list
  val print : row list -> unit
end

(** B. Consensus pipelining depth (§2.5): lock-step rounds vs an
    overlapped pipeline. *)
module Pipeline : sig
  type row = { depth : int; report : Report.t }

  val run : ?windows:windows -> ?z:int -> ?n:int -> unit -> row list
  val print : row list -> unit
end

(** C. MACs vs signatures everywhere (§2.1): why ResilientDB signs
    only forwarded messages. *)
module Crypto_split : sig
  type row = { label : string; report : Report.t }

  val run : ?windows:windows -> ?z:int -> ?n:int -> unit -> row list
  val print : row list -> unit
end

(** D. Threshold-signature certificates (§2.2, optional): one
    constant-size aggregate instead of n − f signatures. *)
module Threshold_certs : sig
  type row = { n : int; plain : Report.t; threshold : Report.t }

  val run : ?windows:windows -> ?z:int -> unit -> row list
  val print : row list -> unit
end

val run_all : ?windows:windows -> unit -> unit
