(* One module per evaluation artifact of the paper (§4).  Each
   experiment returns structured rows and can render itself as the
   table/series the paper plots; EXPERIMENTS.md records the paper's
   values next to ours. *)

module Config = Rdb_types.Config
module Report = Rdb_fabric.Report
open Runner

type row = { proto : proto; x : int; report : Report.t }

let collect ~protocols ~xs ~cfg_of ?(fault = No_fault) ~windows () =
  List.concat_map
    (fun p ->
      List.map
        (fun x ->
          let cfg : Config.t = cfg_of x in
          { proto = p; x; report = run_proto p ~windows ~fault cfg })
        xs)
    protocols

let print_series ~title ~x_label ~rows ~value ~fmt_value =
  Printf.printf "\n%s\n" title;
  Printf.printf "%-10s" x_label;
  let xs = List.sort_uniq compare (List.map (fun r -> r.x) rows) in
  let protos = List.sort_uniq compare (List.map (fun r -> r.proto) rows) in
  List.iter (fun p -> Printf.printf "%14s" (proto_name p)) protos;
  print_newline ();
  List.iter
    (fun x ->
      Printf.printf "%-10d" x;
      List.iter
        (fun p ->
          match List.find_opt (fun r -> r.x = x && r.proto = p) rows with
          | Some r -> Printf.printf "%14s" (fmt_value (value r.report))
          | None -> Printf.printf "%14s" "-")
        protos;
      print_newline ())
    xs

let fmt_tput v = Printf.sprintf "%.0f" v
let fmt_lat v = Printf.sprintf "%.2f" (v /. 1000.) (* ms -> s, as the paper plots *)

(* -- Figure 10: throughput & latency vs number of clusters; zn = 60 ---- *)
module Fig10 = struct
  let zs = [ 1; 2; 3; 4; 5; 6 ]

  let cfg_of ?(base = Config.default) z = Config.make ~base ~z ~n:(60 / z) ()

  let run ?(protocols = all_protocols) ?(windows = default_windows) ?base () =
    collect ~protocols ~xs:zs ~cfg_of:(fun z -> cfg_of ?base z) ~windows ()

  let print rows =
    print_series ~title:"Figure 10 (left): throughput (txn/s) vs #clusters, zn = 60"
      ~x_label:"clusters" ~rows
      ~value:(fun r -> r.Report.throughput_txn_s)
      ~fmt_value:fmt_tput;
    print_series ~title:"Figure 10 (right): latency (s) vs #clusters, zn = 60" ~x_label:"clusters"
      ~rows
      ~value:(fun r -> r.Report.avg_latency_ms)
      ~fmt_value:fmt_lat
end

(* -- Figure 11: throughput & latency vs replicas per cluster; z = 4 ----- *)
module Fig11 = struct
  let ns = [ 4; 7; 10; 12; 15 ]

  let cfg_of ?(base = Config.default) n = Config.make ~base ~z:4 ~n ()

  let run ?(protocols = all_protocols) ?(windows = default_windows) ?base () =
    collect ~protocols ~xs:ns ~cfg_of:(fun n -> cfg_of ?base n) ~windows ()

  let print rows =
    print_series ~title:"Figure 11 (left): throughput (txn/s) vs replicas per cluster, z = 4"
      ~x_label:"replicas" ~rows
      ~value:(fun r -> r.Report.throughput_txn_s)
      ~fmt_value:fmt_tput;
    print_series ~title:"Figure 11 (right): latency (s) vs replicas per cluster, z = 4"
      ~x_label:"replicas" ~rows
      ~value:(fun r -> r.Report.avg_latency_ms)
      ~fmt_value:fmt_lat
end

(* -- Figure 12: throughput under failures; z = 4 -------------------------- *)
module Fig12 = struct
  let ns = [ 4; 7; 10; 12 ]

  let cfg_of ?(base = Config.default) n = Config.make ~base ~z:4 ~n ()

  (* Left: one non-primary failure.  Every protocol. *)
  let run_one_failure ?(protocols = all_protocols) ?(windows = default_windows) ?base () =
    collect ~protocols ~xs:ns ~cfg_of:(fun n -> cfg_of ?base n) ~fault:One_nonprimary ~windows ()

  (* Middle: f non-primary failures per cluster. *)
  let run_f_failures ?(protocols = all_protocols) ?(windows = default_windows) ?base () =
    collect ~protocols ~xs:ns ~cfg_of:(fun n -> cfg_of ?base n) ~fault:F_nonprimary ~windows ()

  (* Right: single primary failure mid-run.  The paper runs only
     GeoBFT and Pbft here (Zyzzyva cannot survive it, HotStuff has no
     fixed primary, Steward has no usable view-change). *)
  let run_primary_failure ?(protocols = [ Geobft; Pbft ]) ?(windows = default_windows) ?base () =
    collect ~protocols ~xs:ns ~cfg_of:(fun n -> cfg_of ?base n) ~fault:Primary_failure ~windows ()

  let print ~one ~ff ~pf =
    print_series ~title:"Figure 12 (left): throughput (txn/s), one non-primary failure, z = 4"
      ~x_label:"replicas" ~rows:one
      ~value:(fun r -> r.Report.throughput_txn_s)
      ~fmt_value:fmt_tput;
    print_series ~title:"Figure 12 (middle): throughput (txn/s), f failures per cluster, z = 4"
      ~x_label:"replicas" ~rows:ff
      ~value:(fun r -> r.Report.throughput_txn_s)
      ~fmt_value:fmt_tput;
    print_series ~title:"Figure 12 (right): throughput (txn/s), single primary failure, z = 4"
      ~x_label:"replicas" ~rows:pf
      ~value:(fun r -> r.Report.throughput_txn_s)
      ~fmt_value:fmt_tput
end

(* -- Figure 13: throughput vs batch size; z = 4, n = 7 --------------------- *)
module Fig13 = struct
  let batches = [ 10; 50; 100; 200; 300 ]

  let cfg_of ?(base = Config.default) b = Config.make ~base ~z:4 ~n:7 ~batch_size:b ()

  let run ?(protocols = all_protocols) ?(windows = default_windows) ?base () =
    collect ~protocols ~xs:batches ~cfg_of:(fun b -> cfg_of ?base b) ~windows ()

  let print rows =
    print_series ~title:"Figure 13: throughput (txn/s) vs batch size, z = 4, n = 7"
      ~x_label:"batch" ~rows
      ~value:(fun r -> r.Report.throughput_txn_s)
      ~fmt_value:fmt_tput
end
