lib/experiments/tables.ml: Array List Option Printf Rdb_fabric Rdb_sim Rdb_types Runner
