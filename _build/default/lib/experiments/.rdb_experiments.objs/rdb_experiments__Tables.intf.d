lib/experiments/tables.mli: Rdb_fabric Rdb_types Runner
