lib/experiments/figures.ml: List Printf Rdb_fabric Rdb_types Runner
