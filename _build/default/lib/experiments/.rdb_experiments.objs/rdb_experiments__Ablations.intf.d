lib/experiments/ablations.mli: Rdb_fabric Rdb_types Runner
