lib/experiments/figures.mli: Rdb_fabric Rdb_types Runner
