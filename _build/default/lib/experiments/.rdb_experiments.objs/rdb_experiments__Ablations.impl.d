lib/experiments/ablations.ml: List Printf Rdb_fabric Rdb_types Runner
