lib/experiments/runner.mli: Rdb_fabric Rdb_sim Rdb_types
