lib/experiments/runner.ml: Rdb_fabric Rdb_geobft Rdb_hotstuff Rdb_pbft Rdb_sim Rdb_steward Rdb_types Rdb_zyzzyva String
