(** A block of the ledger (§3): one executed batch, the commit
    certificate proving its agreement, and the hash chaining that makes
    history tamper-evident. *)

module Batch = Rdb_types.Batch
module Certificate = Rdb_types.Certificate

type t = {
  height : int;                 (** position in the chain, 0-based *)
  round : int;                  (** consensus round that produced it *)
  cluster : int;                (** cluster whose request this is *)
  batch : Batch.t;
  cert : Certificate.t option;  (** [None] only in testing contexts *)
  prev_hash : string;
  hash : string;
}

val genesis_hash : string

val compute_hash :
  height:int -> round:int -> cluster:int -> batch:Batch.t -> prev_hash:string -> string

val create :
  height:int ->
  round:int ->
  cluster:int ->
  batch:Batch.t ->
  cert:Certificate.t option ->
  prev_hash:string ->
  t

val hash_valid : t -> bool
(** Recompute the hash from the contents; false if tampered. *)

val pp : Format.formatter -> t -> unit
