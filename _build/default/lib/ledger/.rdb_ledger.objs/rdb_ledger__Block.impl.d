lib/ledger/block.ml: Format Rdb_crypto Rdb_types String
