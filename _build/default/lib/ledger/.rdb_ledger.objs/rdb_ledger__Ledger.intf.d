lib/ledger/ledger.mli: Block Rdb_crypto Rdb_types
