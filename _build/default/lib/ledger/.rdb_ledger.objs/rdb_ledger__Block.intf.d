lib/ledger/block.mli: Format Rdb_types
