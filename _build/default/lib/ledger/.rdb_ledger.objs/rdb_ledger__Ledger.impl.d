lib/ledger/ledger.ml: Array Block Rdb_crypto Rdb_types String
