(* A block of the ledger.

   ResilientDB's ledger is "the immutable append-only blockchain
   representing the ordered sequence of accepted client requests"; the
   i-th block consists of the i-th executed client request (batch) and,
   to assure immutability, the commit certificate that proves the batch
   was agreed (paper §3).  Blocks are hash-chained: each block's hash
   covers its parent's hash, so tampering with any block invalidates
   every later block. *)

module Batch = Rdb_types.Batch
module Certificate = Rdb_types.Certificate
module Sha256 = Rdb_crypto.Sha256

type t = {
  height : int;                        (* position in the chain, 0-based *)
  round : int;                         (* consensus round that produced it *)
  cluster : int;                       (* cluster whose request this is *)
  batch : Batch.t;
  cert : Certificate.t option;         (* None only for the genesis block *)
  prev_hash : string;
  hash : string;
}

let genesis_hash = Sha256.digest "resilientdb-genesis"

let compute_hash ~height ~round ~cluster ~(batch : Batch.t) ~prev_hash =
  Sha256.digest_list
    [ "block"; string_of_int height; string_of_int round; string_of_int cluster;
      batch.Batch.digest; prev_hash ]

let create ~height ~round ~cluster ~batch ~cert ~prev_hash =
  let hash = compute_hash ~height ~round ~cluster ~batch ~prev_hash in
  { height; round; cluster; batch; cert; prev_hash; hash }

(* Recompute the hash from the block contents; false if tampered. *)
let hash_valid (b : t) =
  String.equal b.hash
    (compute_hash ~height:b.height ~round:b.round ~cluster:b.cluster ~batch:b.batch
       ~prev_hash:b.prev_hash)

let pp fmt b =
  Format.fprintf fmt "block@%d[round %d, %a]" b.height b.round Batch.pp b.batch
