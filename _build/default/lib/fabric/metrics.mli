(** Run metrics with the paper's measurement methodology (§4): a
    warm-up phase, then a measurement window; throughput counts
    transactions whose batches completed at a client inside the window,
    latency is client-observed submit-to-quorum-of-replies time. *)

module Time = Rdb_sim.Time

type t = {
  mutable completed_batches : int;
  mutable completed_txns : int;
  mutable latencies_ms : float list;
  mutable window_open : bool;
  mutable window_start : Time.t;
  mutable window_end : Time.t;
  mutable decisions : int;
}

val create : unit -> t

val open_window : t -> now:Time.t -> unit
val close_window : t -> now:Time.t -> unit

val record_completion : t -> now:Time.t -> txns:int -> latency:Time.t -> unit
(** Ignored while the window is closed. *)

val record_decision : t -> unit
(** One consensus decision observed (counted at replica 0). *)

val window_sec : t -> float
val throughput_txn_s : t -> float

type latency_summary = {
  avg_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

val latency_summary : t -> latency_summary
