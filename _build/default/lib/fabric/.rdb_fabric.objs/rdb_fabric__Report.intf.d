lib/fabric/report.mli: Format
