lib/fabric/deployment.ml: Array Lazy Metrics Printf Rdb_crypto Rdb_ledger Rdb_prng Rdb_sim Rdb_types Rdb_ycsb Report
