lib/fabric/report.ml: Format
