lib/fabric/metrics.mli: Rdb_sim
