lib/fabric/metrics.ml: Array Rdb_sim
