(** The result of one simulated deployment run: throughput, latency
    percentiles, traffic split (local/global), consensus decisions and
    view changes within the measurement window. *)

type t = {
  protocol : string;
  z : int;
  n : int;
  batch_size : int;
  throughput_txn_s : float;
  avg_latency_ms : float;
  p50_latency_ms : float;
  p95_latency_ms : float;
  p99_latency_ms : float;
  completed_batches : int;
  completed_txns : int;
  decisions : int;
  local_msgs : int;
  global_msgs : int;
  local_mb : float;
  global_mb : float;
  view_changes : int;
  window_sec : float;
}

val local_msgs_per_decision : t -> float
(** The Table 2 quantities: messages per consensus decision. *)

val global_msgs_per_decision : t -> float

val pp : Format.formatter -> t -> unit
val to_string : t -> string
