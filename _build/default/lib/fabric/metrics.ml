(* Run metrics: completed work, latencies, traffic.

   Measurement methodology mirrors §4 of the paper: the run has a
   warm-up phase and a measurement window; throughput counts the
   transactions whose batches *completed at a client* inside the
   window, and latency is the client-observed request-to-f+1-replies
   time of those batches. *)

module Time = Rdb_sim.Time

type t = {
  mutable completed_batches : int;
  mutable completed_txns : int;
  mutable latencies_ms : float list;      (* within the window only *)
  mutable window_open : bool;
  mutable window_start : Time.t;
  mutable window_end : Time.t;
  mutable decisions : int;                (* consensus decisions (executions at replica 0) *)
}

let create () =
  {
    completed_batches = 0;
    completed_txns = 0;
    latencies_ms = [];
    window_open = false;
    window_start = Time.zero;
    window_end = Time.zero;
    decisions = 0;
  }

let open_window t ~now = t.window_open <- true; t.window_start <- now
let close_window t ~now = t.window_open <- false; t.window_end <- now

let record_completion t ~now:_ ~txns ~latency =
  if t.window_open then begin
    t.completed_batches <- t.completed_batches + 1;
    t.completed_txns <- t.completed_txns + txns;
    t.latencies_ms <- Time.to_ms_f latency :: t.latencies_ms
  end

let record_decision t = if t.window_open then t.decisions <- t.decisions + 1

let window_sec t = Time.to_sec_f (Time.sub t.window_end t.window_start)

let throughput_txn_s t =
  let w = window_sec t in
  if w <= 0. then 0. else float_of_int t.completed_txns /. w

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

type latency_summary = { avg_ms : float; p50_ms : float; p95_ms : float; p99_ms : float; max_ms : float }

let latency_summary t =
  let arr = Array.of_list t.latencies_ms in
  Array.sort compare arr;
  let n = Array.length arr in
  if n = 0 then { avg_ms = 0.; p50_ms = 0.; p95_ms = 0.; p99_ms = 0.; max_ms = 0. }
  else
    {
      avg_ms = Array.fold_left ( +. ) 0. arr /. float_of_int n;
      p50_ms = percentile arr 0.50;
      p95_ms = percentile arr 0.95;
      p99_ms = percentile arr 0.99;
      max_ms = arr.(n - 1);
    }
