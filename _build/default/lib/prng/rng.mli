(** Deterministic pseudo-random stream (the xoshiro256** generator).

    The simulator's only randomness source: reproducible across
    platforms (pure 64-bit integer arithmetic), splittable into
    decorrelated per-node streams. *)

type t

val create : int64 -> t
(** [create seed] builds a stream seeded via SplitMix64. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val split : t -> index:int -> t
(** Derive a decorrelated child stream (e.g. one per replica) without
    advancing the parent. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1) using 53 mantissa bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val float_range : t -> lo:float -> hi:float -> float
(** Uniform in [lo, hi). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element.
    @raise Invalid_argument on an empty array. *)

val bytes : t -> int -> Bytes.t
(** [bytes t n] returns [n] pseudo-random bytes. *)
