(* Deterministic pseudo-random stream used throughout the simulator.

   The core generator is xoshiro256** (Blackman & Vigna, 2018): fast,
   high quality, 256-bit state, and — crucially for a deterministic
   discrete-event simulator — fully reproducible across platforms since
   it only uses 64-bit integer arithmetic.  State is seeded from
   SplitMix64 as recommended by the authors. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let create seed =
  let sm = Splitmix64.create seed in
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

(* Derive a decorrelated child stream, e.g. one per replica. *)
let split t ~index =
  create (Splitmix64.split_seed ~seed:(Int64.logxor t.s0 t.s3) ~index)

let next_int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tt = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

(* Uniform float in [0, 1): use the top 53 bits, the standard trick for
   filling a double's mantissa without bias. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

(* Uniform int in [0, bound): rejection-free Lemire-style reduction is
   overkill here; modulo bias is negligible for bound << 2^63 and we
   keep the simple, obviously-deterministic form. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Exponentially distributed sample with the given mean (inverse-CDF). *)
let exponential t ~mean =
  let u = float t in
  -. mean *. log (1. -. u)

(* Sample uniformly from [lo, hi). *)
let float_range t ~lo ~hi = lo +. ((hi -. lo) *. float t)

(* Fisher-Yates shuffle of an array, in place. *)
let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Pick one element uniformly. *)
let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let bytes t n =
  let b = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let v = ref (next_int64 t) in
    let k = min 8 (n - !i) in
    for j = 0 to k - 1 do
      Bytes.set b (!i + j) (Char.chr (Int64.to_int (Int64.logand !v 0xFFL)));
      v := Int64.shift_right_logical !v 8
    done;
    i := !i + k
  done;
  b
