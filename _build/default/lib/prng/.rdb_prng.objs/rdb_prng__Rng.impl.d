lib/prng/rng.ml: Array Bytes Char Int64 Splitmix64
