lib/prng/zipf.ml: Float Int64 Rng Splitmix64
