lib/prng/rng.mli: Bytes
