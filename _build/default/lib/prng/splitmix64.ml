(* SplitMix64: a fast, statistically strong 64-bit generator with a
   trivially splittable state.  Used to seed [Xoshiro256ss] streams and
   wherever a tiny stateless mixer is needed (e.g. deterministic
   per-replica seeds derived from a global experiment seed).

   Reference: Steele, Lea, Flood. "Fast splittable pseudorandom number
   generators", OOPSLA 2014.  Constants match the public-domain C
   reference by Sebastiano Vigna (https://prng.di.unimi.it/splitmix64.c),
   which is also the generator used by Java's SplittableRandom. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* One output step of the reference implementation. *)
let next (t : t) : int64 =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Stateless mix of a single 64-bit value; useful for hashing small keys
   into seeds without allocating a generator. *)
let mix (z : int64) : int64 =
  let z = Int64.add z golden_gamma in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Derive an independent seed for a substream identified by [index].
   Distinct indices give decorrelated streams. *)
let split_seed ~seed ~index =
  mix (Int64.add (mix seed) (Int64.mul (Int64.of_int index) golden_gamma))
