(** SplitMix64: fast splittable 64-bit PRNG (Steele, Lea & Flood,
    OOPSLA 2014).  Used to seed {!Rng} streams and as a stateless
    mixer for deriving decorrelated per-entity seeds. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a generator; equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val next : t -> int64
(** Next 64-bit output; advances the state. *)

val mix : int64 -> int64
(** Stateless finalizer: hash one 64-bit value (the output function of
    SplitMix64).  Bijective on int64. *)

val split_seed : seed:int64 -> index:int -> int64
(** [split_seed ~seed ~index] derives an independent seed for substream
    [index]; distinct indices give decorrelated streams. *)
