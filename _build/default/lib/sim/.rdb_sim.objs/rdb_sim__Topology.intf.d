lib/sim/topology.mli:
