lib/sim/stats.mli:
