lib/sim/network.ml: Array Engine Float Int64 List Rdb_prng Stats Time Topology
