lib/sim/engine.mli: Rdb_prng Time
