lib/sim/cpu.ml: Array Engine Int64 Time
