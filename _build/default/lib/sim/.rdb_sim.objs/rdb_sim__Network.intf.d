lib/sim/network.mli: Engine Stats Topology
