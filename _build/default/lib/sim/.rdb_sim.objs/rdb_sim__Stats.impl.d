lib/sim/stats.ml:
