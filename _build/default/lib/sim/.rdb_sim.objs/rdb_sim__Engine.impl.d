lib/sim/engine.ml: Heap Int64 Rdb_prng Time
