lib/sim/heap.mli:
