(* Simulated time: int64 nanoseconds since the start of the run.

   Nanosecond granularity keeps every quantity in the model (CPU costs
   of a few microseconds, WAN latencies of hundreds of milliseconds,
   runs of minutes) exactly representable, and integer time makes the
   simulation bit-for-bit deterministic. *)

type t = int64

let zero = 0L
let ns n : t = Int64.of_int n
let us n : t = Int64.of_int (n * 1_000)
let ms n : t = Int64.of_int (n * 1_000_000)
let sec n : t = Int64.of_int (n * 1_000_000_000)

let of_us_f (x : float) : t = Int64.of_float (x *. 1e3)
let of_ms_f (x : float) : t = Int64.of_float (x *. 1e6)
let of_sec_f (x : float) : t = Int64.of_float (x *. 1e9)

let to_us_f (t : t) : float = Int64.to_float t /. 1e3
let to_ms_f (t : t) : float = Int64.to_float t /. 1e6
let to_sec_f (t : t) : float = Int64.to_float t /. 1e9

let add = Int64.add
let sub = Int64.sub
let compare = Int64.compare
let ( < ) a b = Int64.compare a b < 0
let ( <= ) a b = Int64.compare a b <= 0
let ( > ) a b = Int64.compare a b > 0
let ( >= ) a b = Int64.compare a b >= 0
let max a b = if Stdlib.( >= ) (Int64.compare a b) 0 then a else b
let min a b = if Stdlib.( <= ) (Int64.compare a b) 0 then a else b

let pp fmt (t : t) = Format.fprintf fmt "%.3fms" (to_ms_f t)
