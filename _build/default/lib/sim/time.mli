(** Simulated time: int64 nanoseconds since the start of the run.
    Integer time keeps the simulation exactly deterministic while
    representing everything from microsecond CPU costs to minutes-long
    runs. *)

type t = int64

val zero : t

val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

val of_us_f : float -> t
val of_ms_f : float -> t
val of_sec_f : float -> t

val to_us_f : t -> float
val to_ms_f : t -> float
val to_sec_f : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val compare : t -> t -> int

val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val max : t -> t -> t
val min : t -> t -> t

val pp : Format.formatter -> t -> unit
