(* Binary min-heap of timestamped events.

   Keys are (time, sequence-number): the sequence number breaks ties in
   insertion order, which makes event ordering — and therefore the whole
   simulation — deterministic regardless of heap internals. *)

type 'a entry = { time : int64; seq : int; payload : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable size : int;
}

let create () = { arr = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let lt a b =
  match Int64.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> Stdlib.( < ) c 0

let grow t =
  let cap = Array.length t.arr in
  let ncap = if cap = 0 then 64 else 2 * cap in
  (* dummy for padding slots; never read beyond [size] *)
  let dummy = t.arr.(0) in
  let narr = Array.make ncap dummy in
  Array.blit t.arr 0 narr 0 t.size;
  t.arr <- narr

let push t ~time ~seq payload =
  let e = { time; seq; payload } in
  if t.size = 0 && Array.length t.arr = 0 then t.arr <- Array.make 64 e;
  if t.size = Array.length t.arr then grow t;
  t.arr.(t.size) <- e;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if lt t.arr.(!i) t.arr.(parent) then begin
      let tmp = t.arr.(!i) in
      t.arr.(!i) <- t.arr.(parent);
      t.arr.(parent) <- tmp;
      i := parent
    end
    else continue := false
  done

let peek t = if t.size = 0 then None else Some t.arr.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.arr.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.arr.(0) <- t.arr.(t.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && lt t.arr.(l) t.arr.(!smallest) then smallest := l;
        if r < t.size && lt t.arr.(r) t.arr.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.arr.(!i) in
          t.arr.(!i) <- t.arr.(!smallest);
          t.arr.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some top
  end
