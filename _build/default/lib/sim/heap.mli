(** Binary min-heap of timestamped events, keyed by (time, sequence
    number) so that ties break in insertion order — the property that
    makes the simulation deterministic. *)

type 'a entry = { time : int64; seq : int; payload : 'a }

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:int64 -> seq:int -> 'a -> unit
val peek : 'a t -> 'a entry option
val pop : 'a t -> 'a entry option
