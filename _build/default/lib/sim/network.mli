(** The simulated wide-area network (see DESIGN.md §5).

    A message of [size] bytes from [src] to [dst]:
    + if cross-region, first serializes through [src]'s aggregate WAN
      egress pipe (if enabled);
    + then serializes through the [src]->[region dst] uplink at the
      Table 1 bandwidth of the region pair;
    + then travels for one-way latency (+ jitter) and is delivered.

    Fault injection: crashed nodes neither send nor receive; drop rules
    silently discard matching traffic (Byzantine senders/receivers,
    Example 2.4); partitions sever region pairs. *)

type 'm t
(** A network carrying payloads of type ['m]. *)

val create :
  ?wan_egress_mbps:float ->
  engine:Engine.t ->
  topo:Topology.t ->
  jitter_ms:float ->
  deliver:(src:int -> dst:int -> 'm -> unit) ->
  unit ->
  'm t
(** [wan_egress_mbps] caps one node's total cross-region egress
    (0 = uncapped); [jitter_ms] adds uniform random delay in
    [0, jitter_ms). *)

val send : 'm t -> src:int -> dst:int -> size:int -> 'm -> unit
val multicast : 'm t -> src:int -> dsts:int list -> size:int -> 'm -> unit

val crash : 'm t -> int -> unit
val recover : 'm t -> int -> unit
val is_crashed : 'm t -> int -> bool

val add_drop_rule : 'm t -> (src:int -> dst:int -> bool) -> unit
val clear_drop_rules : 'm t -> unit

val partition_regions : 'm t -> ra:int -> rb:int -> unit
(** Sever all traffic between two regions (both directions). *)

val stats : 'm t -> Stats.t
val topology : 'm t -> Topology.t
