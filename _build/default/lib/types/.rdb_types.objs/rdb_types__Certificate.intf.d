lib/types/certificate.mli: Format Import Keychain Schnorr
