lib/types/batch.mli: Format Import Keychain Schnorr Time Txn
