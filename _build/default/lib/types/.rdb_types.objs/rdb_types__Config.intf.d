lib/types/config.mli: Import Time
