lib/types/client_core.ml: Batch Config Ctx Hashtbl Import String Time
