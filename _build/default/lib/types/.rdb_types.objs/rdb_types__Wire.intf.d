lib/types/wire.mli:
