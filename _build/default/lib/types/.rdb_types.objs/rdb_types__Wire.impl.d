lib/types/wire.ml:
