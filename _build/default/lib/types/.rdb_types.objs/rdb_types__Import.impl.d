lib/types/import.ml: Rdb_crypto Rdb_prng Rdb_sim
