lib/types/protocol.ml: Batch Ctx
