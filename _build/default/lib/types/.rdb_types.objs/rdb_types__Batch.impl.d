lib/types/batch.ml: Array Buffer Format Import Int32 Int64 Keychain Schnorr Sha256 String Time Txn
