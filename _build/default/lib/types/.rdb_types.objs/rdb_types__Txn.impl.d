lib/types/txn.ml: Buffer Format Int32 Int64
