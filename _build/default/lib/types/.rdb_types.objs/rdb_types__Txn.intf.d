lib/types/txn.mli: Format
