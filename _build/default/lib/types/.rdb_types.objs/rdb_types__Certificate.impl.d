lib/types/certificate.ml: Format Import Keychain List Printf Schnorr
