lib/types/config.ml: Import List Option Time
