lib/types/ctx.ml: Batch Certificate Config Cpu Engine Import Keychain Lazy List Rng Time
