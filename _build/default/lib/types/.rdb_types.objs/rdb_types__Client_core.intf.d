lib/types/client_core.mli: Batch Ctx
