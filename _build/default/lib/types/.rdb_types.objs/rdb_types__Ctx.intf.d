lib/types/ctx.mli: Batch Certificate Config Cpu Engine Import Keychain Lazy Rng Time
