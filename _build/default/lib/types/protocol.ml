(* The interface every consensus protocol implements.

   A protocol provides two state machines:
   - the *replica* machine, instantiated at every replica node;
   - the *client agent* machine, instantiated at each cluster's client
     group node.  It submits batches, counts replies, and signals
     completion via [Ctx.complete] (Zyzzyva's agent additionally drives
     the commit-certificate recovery path, which is why client logic is
     protocol-owned rather than fabric-owned).

   Replicas and clients exchange values of the protocol's [msg] type;
   the fabric delivers them with [on_message] / [on_client_message]
   after charging the receiver-side verification cost declared by the
   sender. *)

module type S = sig
  val name : string

  type msg
  type replica
  type client

  val create_replica : msg Ctx.t -> replica
  val on_message : replica -> src:int -> msg -> unit

  (* View changes this replica has completed (0 for protocols without
     a view-change notion); used by the failure experiments. *)
  val view_changes : replica -> int

  val create_client : msg Ctx.t -> cluster:int -> client
  val submit : client -> Batch.t -> unit
  val on_client_message : client -> src:int -> msg -> unit
end
