(* Short aliases for the substrate libraries, opened by the modules of
   this library (and re-exported for downstream protocol libraries). *)

module Time = Rdb_sim.Time
module Engine = Rdb_sim.Engine
module Cpu = Rdb_sim.Cpu
module Network = Rdb_sim.Network
module Topology = Rdb_sim.Topology
module Sha256 = Rdb_crypto.Sha256
module Schnorr = Rdb_crypto.Schnorr
module Keychain = Rdb_crypto.Keychain
module Cmac = Rdb_crypto.Cmac
module Rng = Rdb_prng.Rng
module Zipf = Rdb_prng.Zipf
