open Import

(* A batch of client transactions — the unit of consensus.

   Clients group requests into batches (paper §3, "Request batching");
   the consensus protocols order whole batches, so the cost of one
   consensus decision is shared by every transaction in it.  A batch is
   signed by the issuing client group, which is the digital signature
   the protocols forward and verify (§2.1: "we sign these messages
   using digital signatures ... client requests and commit messages"). *)

type t = {
  id : int;                    (* globally unique batch id *)
  cluster : int;               (* cluster whose clients issued it *)
  origin : int;                (* node id of the issuing client group *)
  txns : Txn.t array;
  created : Time.t;            (* submission time, for latency metrics *)
  signature : Schnorr.signature; (* client signature over the digest *)
  digest : string;             (* SHA-256 of the serialized payload *)
}

(* No-op batches (paper §2.5): proposed by a primary when its cluster
   has no client requests for a round, so other clusters do not stall.
   Negative ids mark no-ops; the nonce keeps distinct no-op rounds
   distinguishable (distinct digests). *)
let noop_id_of_nonce nonce = -(nonce + 1)

let serialize_payload ~id ~cluster ~origin ~(txns : Txn.t array) : string =
  let b = Buffer.create (24 * (Array.length txns + 1)) in
  Buffer.add_int64_le b (Int64.of_int id);
  Buffer.add_int32_le b (Int32.of_int cluster);
  Buffer.add_int32_le b (Int32.of_int origin);
  Array.iter (fun t -> Buffer.add_string b (Txn.serialize t)) txns;
  Buffer.contents b

let digest_of ~id ~cluster ~origin ~txns =
  Sha256.digest (serialize_payload ~id ~cluster ~origin ~txns)

let create ~keychain ~id ~cluster ~origin ~txns ~created =
  let digest = digest_of ~id ~cluster ~origin ~txns in
  let signature = Keychain.sign keychain ~signer:origin digest in
  { id; cluster; origin; txns; created; signature; digest }

let noop ~keychain ~cluster ~origin ~created ~nonce =
  let txns = [||] in
  let id = noop_id_of_nonce nonce in
  let digest = digest_of ~id ~cluster ~origin ~txns in
  let signature = Keychain.sign keychain ~signer:origin digest in
  { id; cluster; origin; txns; created; signature; digest }

let is_noop t = t.id < 0
let size t = Array.length t.txns

(* Verify the client signature and digest integrity.  Replicas discard
   batches that fail this check (§2.1: "Replicas will discard any
   messages that are not well-formed ... or have invalid signatures"). *)
let verify ~keychain (t : t) : bool =
  String.equal t.digest (digest_of ~id:t.id ~cluster:t.cluster ~origin:t.origin ~txns:t.txns)
  && Keychain.verify keychain ~signer:t.origin t.digest t.signature

let pp fmt t =
  if is_noop t then Format.fprintf fmt "noop[c%d]" t.cluster
  else Format.fprintf fmt "batch#%d[c%d,%d txns]" t.id t.cluster (Array.length t.txns)
