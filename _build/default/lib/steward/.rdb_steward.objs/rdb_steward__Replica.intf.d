lib/steward/replica.mli: Rdb_types
