lib/steward/replica.ml: Hashtbl List Printf Queue Rdb_crypto Rdb_sim Rdb_types String
