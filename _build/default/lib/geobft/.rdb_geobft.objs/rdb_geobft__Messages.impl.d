lib/geobft/messages.ml: Printf Rdb_crypto Rdb_pbft Rdb_types
