lib/geobft/replica.mli: Messages Rdb_pbft Rdb_types
