lib/geobft/messages.mli: Rdb_crypto Rdb_pbft Rdb_types
