lib/geobft/replica.ml: Array Hashtbl List Messages Printf Rdb_crypto Rdb_pbft Rdb_sim Rdb_types String
