lib/zyzzyva/replica.mli: Rdb_types
