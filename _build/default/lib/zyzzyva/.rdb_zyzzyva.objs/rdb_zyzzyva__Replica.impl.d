lib/zyzzyva/replica.ml: Hashtbl List Option Rdb_crypto Rdb_sim Rdb_types String
