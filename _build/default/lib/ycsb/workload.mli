(** YCSB workload generator (Cooper et al., SoCC 2010), configured as
    in §4: Zipfian key choice (constant 0.99, scrambled) over the
    record space, write queries, deterministic per seed. *)

module Txn = Rdb_types.Txn

type t

val create :
  ?n_records:int ->
  ?theta:float ->
  ?write_fraction:float ->
  ?n_clients:int ->
  seed:int ->
  client_base:int ->
  unit ->
  t
(** [write_fraction] defaults to 1.0 (the paper uses write queries);
    [n_clients] logical clients are multiplexed round-robin starting at
    id [client_base]. *)

val next_txn : t -> Txn.t

val next_batch_txns : t -> batch_size:int -> Txn.t array

val generated : t -> int
(** Transactions generated so far. *)
