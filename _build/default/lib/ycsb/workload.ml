(* YCSB workload generator (Cooper et al., SoCC 2010).

   Configuration matches §4 of the paper: an active set of 600 k
   records, Zipfian key selection (YCSB's default constant 0.99,
   scrambled over the key space), write queries, and client-side
   batching at a configurable batch size.

   The generator is deterministic per (seed, client group), so two
   simulator runs submit identical transaction streams. *)

module Txn = Rdb_types.Txn
module Rng = Rdb_prng.Rng
module Zipf = Rdb_prng.Zipf

type t = {
  rng : Rng.t;
  zipf : Zipf.t;
  write_fraction : float;
  mutable next_txn : int;         (* per-generator txn counter *)
  client_base : int;              (* logical client ids start here *)
  n_clients : int;                (* logical clients multiplexed *)
}

let create ?(n_records = Table.default_records) ?(theta = 0.99) ?(write_fraction = 1.0)
    ?(n_clients = 1000) ~seed ~client_base () =
  {
    rng = Rng.create (Int64.of_int seed);
    zipf = Zipf.create ~theta n_records;
    write_fraction;
    next_txn = 0;
    client_base;
    n_clients;
  }

let next_txn t : Txn.t =
  let key = Zipf.sample_scrambled t.zipf t.rng in
  let op = if Rng.float t.rng < t.write_fraction then Txn.Write else Txn.Read in
  let client_id = t.client_base + (t.next_txn mod t.n_clients) in
  let value = Rdb_prng.Rng.next_int64 t.rng in
  t.next_txn <- t.next_txn + 1;
  Txn.make ~op ~key ~value ~client_id ()

let next_batch_txns t ~batch_size : Txn.t array = Array.init batch_size (fun _ -> next_txn t)

let generated t = t.next_txn
