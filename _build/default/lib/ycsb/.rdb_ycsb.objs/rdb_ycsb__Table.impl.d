lib/ycsb/table.ml: Array Bigarray Bytes Int64 Rdb_crypto Rdb_prng Rdb_types
