lib/ycsb/table.mli: Rdb_types
