lib/ycsb/workload.mli: Rdb_types
