lib/ycsb/workload.ml: Array Int64 Rdb_prng Rdb_types Table
