(* Ledger audit & recovery: the blockchain side of ResilientDB (§3).

   Runs a short GeoBFT deployment and then plays the roles the paper
   describes around the ledger:

   1. an *auditor* verifies a replica's full chain — block hashes, hash
      links, client signatures, and the n − f commit signatures of
      every block's certificate;
   2. a *malicious replica* rewrites one historic block — and the audit
      pinpoints it;
   3. a *recovering replica* copies a suffix of a peer's ledger and
      verifies it independently before trusting it ("a recovering
      replica can simply read the ledger of any replica it chooses and
      directly verify whether the ledger can be trusted");
   4. replicas compare YCSB state digests, demonstrating deterministic
      execution.

     dune exec examples/ledger_audit.exe *)

open Resilientdb
module Dep = Deployment.Make (Geobft)

let () =
  print_endline "== Ledger audit & recovery ==\n";
  let cfg = Config.make ~z:2 ~n:4 ~batch_size:20 ~client_inflight:8 () in
  let d = Dep.create ~n_records:100_000 cfg in
  let _report = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 4) d in
  let keychain = Dep.keychain d in
  let quorum = Config.quorum cfg in

  (* 1. Full audit of replica 0's chain. *)
  let ledger = Dep.ledger d ~replica:0 in
  Printf.printf "replica 0 ledger: %d blocks, %d txns, tip %s...\n" (Ledger.length ledger)
    (Ledger.txn_count ledger)
    (String.sub (Hex.of_string (Ledger.tip_hash ledger)) 0 16);
  Printf.printf "full audit (hash links + client sigs + %d-signature certificates): %b\n\n" quorum
    (Ledger.verify_certified ledger ~keychain ~quorum);

  (* 2. A malicious replica rewrites history. *)
  let victim = Dep.ledger d ~replica:1 in
  let forged_txns =
    [| Txn.make ~key:42 ~value:999_999L ~client_id:0 () |]
  in
  let forged =
    Batch.create ~keychain ~id:123_456 ~cluster:0
      ~origin:(Config.client_node cfg ~cluster:0) ~txns:forged_txns ~created:Time.zero
  in
  Printf.printf "replica 1 maliciously replaces block 3 with a forged batch...\n";
  Ledger.tamper_for_test victim ~height:3 ~batch:forged;
  Printf.printf "structural audit of replica 1 now fails: %b\n" (Ledger.verify victim);
  (* Find exactly where the chain breaks. *)
  let break_at = ref (-1) in
  (try
     for h = 0 to Ledger.length victim - 1 do
       if not (Block.hash_valid (Ledger.get victim h)) then begin
         break_at := h;
         raise Exit
       end
     done
   with Exit -> ());
  Printf.printf "first invalid block: height %d (the tampered one)\n\n" !break_at;

  (* 3. Recovery: replica 1 discards its corrupt suffix and re-reads it
     from replica 2, verifying independently. *)
  let source = Dep.ledger d ~replica:2 in
  let suffix = Ledger.read_from source ~height:3 in
  Printf.printf "recovering: fetched %d blocks from replica 2 starting at height 3\n"
    (List.length suffix);
  let rebuilt = Ledger.create () in
  (* Rebuild a fresh copy: prefix from the honest local state (heights
     0-2 are untampered), suffix from the peer. *)
  for h = 0 to 2 do
    let b = Ledger.get victim h in
    ignore (Ledger.append rebuilt ~round:h ~cluster:b.Block.cluster ~batch:b.Block.batch ~cert:b.Block.cert)
  done;
  List.iter
    (fun (b : Block.t) ->
      ignore
        (Ledger.append rebuilt ~round:b.Block.height ~cluster:b.Block.cluster ~batch:b.Block.batch
           ~cert:b.Block.cert))
    suffix;
  Printf.printf "rebuilt ledger verifies: %b; matches replica 0's chain: %b\n\n"
    (Ledger.verify_certified rebuilt ~keychain ~quorum)
    (Ledger.is_prefix_of rebuilt ledger || Ledger.is_prefix_of ledger rebuilt);

  (* 4. Deterministic execution: identical state digests wherever the
     same prefix was executed.  The run was stopped mid-flight, so one
     replica may be a block or two ahead; compare a pair at the same
     height. *)
  let n_repl = Config.n_replicas cfg in
  let heights = Array.init n_repl (fun i -> Ledger.length (Dep.ledger d ~replica:i)) in
  (* Find two replicas stopped at the same height. *)
  let pair = ref None in
  for i = 0 to n_repl - 1 do
    for j = i + 1 to n_repl - 1 do
      if !pair = None && heights.(i) = heights.(j) then pair := Some (i, j)
    done
  done;
  (match !pair with
  | Some (i, j) ->
      let di = Table.state_digest (Dep.table d ~replica:i) in
      let dj = Table.state_digest (Dep.table d ~replica:j) in
      Printf.printf "YCSB state digests at height %d: replica %d %s..., replica %d %s...\n"
        heights.(i) i
        (String.sub (Hex.of_string di) 0 16)
        j
        (String.sub (Hex.of_string dj) 0 16);
      Printf.printf "identical: %b (deterministic execution)\n" (String.equal di dj)
  | None -> print_endline "no two replicas stopped at the same height (all within a block of each other)")
