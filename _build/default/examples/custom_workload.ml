(* Custom workload injection: using the consensus fabric from an
   application, bypassing the built-in YCSB client driver.

   The scenario is a toy multi-region settlement system: ten "hot"
   accounts receive bursts of updates from two regions.  The
   application builds its own transaction batches, submits them
   through each region's client agent, and afterwards audits that
   every replica in every region holds the same account state and the
   same ledger — GeoBFT's non-divergence, observed from application
   level.

     dune exec examples/custom_workload.exe *)

open Resilientdb
module Dep = Deployment.Make (Geobft)

let hot_accounts = 10

let () =
  print_endline "== Custom workload: application-driven batches over GeoBFT ==\n";
  let cfg = Config.make ~z:2 ~n:4 ~batch_size:8 ~client_inflight:4 () in
  let d = Dep.create ~n_records:1_000 cfg in

  (* Disable the built-in YCSB drivers: this application submits its
     own batches. *)
  Dep.pause_client d ~cluster:0;
  Dep.pause_client d ~cluster:1;

  (* Build settlement batches: region 0 credits even accounts, region 1
     credits odd accounts. *)
  let keychain = Dep.keychain d in
  let submitted = ref 0 in
  let submit_burst ~cluster ~burst =
    let agent = Dep.client d ~cluster in
    let origin = Config.client_node cfg ~cluster in
    for b = 0 to burst - 1 do
      let txns =
        Array.init 8 (fun i ->
            let account = (2 * ((b + i) mod (hot_accounts / 2))) + cluster in
            Txn.make ~key:account ~value:(Int64.of_int (100 + b)) ~client_id:(cluster * 10) ())
      in
      let id = (cluster * 1_000_000) + b in
      let batch =
        Batch.create ~keychain ~id ~cluster ~origin ~txns
          ~created:(Engine.now (Dep.engine d))
      in
      incr submitted;
      Geobft.submit agent batch
    done
  in
  submit_burst ~cluster:0 ~burst:25;
  submit_burst ~cluster:1 ~burst:25;
  Printf.printf "submitted %d application batches (%d transactions)\n" !submitted (!submitted * 8);

  (* Let the system drain.  (No new batches arrive, so clusters fill
     their later rounds with no-ops — §2.5 in action.) *)
  Engine.run_until (Dep.engine d) ~until:(Time.sec 5);

  (* Application-level audit. *)
  let metrics = Dep.metrics d in
  ignore metrics;
  let l0 = Dep.ledger d ~replica:0 in
  let real = ref 0 and noops = ref 0 in
  for h = 0 to Ledger.length l0 - 1 do
    if Batch.is_noop (Ledger.get l0 h).Block.batch then incr noops else incr real
  done;
  Printf.printf "replica 0 executed %d application batches (+%d no-op round fillers)\n" !real !noops;

  Printf.printf "\naccount state on replica 0 vs a replica in the other region:\n";
  let t0 = Dep.table d ~replica:0 and t7 = Dep.table d ~replica:7 in
  for account = 0 to hot_accounts - 1 do
    let v0 = Table.read t0 ~key:account and v7 = Table.read t7 ~key:account in
    Printf.printf "  account %d: %20Ld %s\n" account v0
      (if Int64.equal v0 v7 then "(agrees)" else "(DIVERGED!)")
  done;

  let agree = ref true in
  for i = 0 to Config.n_replicas cfg - 1 do
    let li = Dep.ledger d ~replica:i in
    if not (Ledger.is_prefix_of li l0 || Ledger.is_prefix_of l0 li) then agree := false
  done;
  Printf.printf "\nall %d replicas agree on the ledger: %b\n" (Config.n_replicas cfg) !agree;
  Printf.printf "ledger audit (certificates at quorum %d): %b\n" (Config.quorum cfg)
    (Ledger.verify_certified l0 ~keychain ~quorum:(Config.quorum cfg))
