examples/protocol_comparison.ml: Config Experiments List Printf Report Resilientdb
