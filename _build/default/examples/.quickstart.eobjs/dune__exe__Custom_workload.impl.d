examples/custom_workload.ml: Array Batch Block Config Deployment Engine Geobft Int64 Ledger Printf Resilientdb Table Time Txn
