examples/quickstart.mli:
