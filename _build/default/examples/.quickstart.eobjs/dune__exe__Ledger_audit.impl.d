examples/ledger_audit.ml: Array Batch Block Config Deployment Geobft Hex Ledger List Printf Resilientdb String Table Time Txn
