examples/quickstart.ml: Block Config Deployment Format Geobft Ledger Printf Report Resilientdb Time
