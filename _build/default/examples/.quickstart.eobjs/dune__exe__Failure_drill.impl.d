examples/failure_drill.ml: Config Deployment Engine Geobft Ledger List Metrics Printf Resilientdb String Time
