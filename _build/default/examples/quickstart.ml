(* Quickstart: run GeoBFT on a simulated geo-scale deployment.

   Four clusters of seven replicas — Oregon, Iowa, Montreal and Belgium,
   with latencies and bandwidths taken from the paper's Table 1 — serve
   a YCSB workload of write transactions batched 100 at a time, exactly
   the base configuration of the paper's evaluation (§4).

     dune exec examples/quickstart.exe *)

open Resilientdb

(* A deployment is the fabric specialized to one consensus protocol.
   Swap [Geobft] for [Pbft], [Zyzzyva], [Hotstuff] or [Steward] — they
   all implement the same [Protocol.S] interface. *)
module Dep = Deployment.Make (Geobft)

let () =
  print_endline "== ResilientDB quickstart: GeoBFT over four regions ==\n";
  (* z clusters x n replicas; f = (n-1)/3 Byzantine replicas tolerated
     per cluster. *)
  let cfg = Config.make ~z:4 ~n:7 ~batch_size:100 () in
  Printf.printf "deployment: %d clusters x %d replicas (f = %d per cluster), batch size %d\n"
    cfg.Config.z cfg.Config.n (Config.f cfg) cfg.Config.batch_size;

  let d = Dep.create cfg in

  (* Simulate: 3 s of warm-up, then a 9 s measurement window (the paper
     uses 60 s + 120 s on its cloud testbed; simulated time is exact so
     shorter windows suffice). *)
  let report = Dep.run ~warmup:(Time.sec 3) ~measure:(Time.sec 9) d in

  Printf.printf "\nthroughput : %10.0f txn/s\n" report.Report.throughput_txn_s;
  Printf.printf "latency    : %10.1f ms (avg)   %.1f ms (p99)\n" report.Report.avg_latency_ms
    report.Report.p99_latency_ms;
  Printf.printf "traffic    : %10.1f local and %.1f global messages per consensus decision\n"
    (Report.local_msgs_per_decision report)
    (Report.global_msgs_per_decision report);

  (* Every replica independently maintains the full ledger.  Inspect
     replica 0's copy. *)
  let ledger = Dep.ledger d ~replica:0 in
  Printf.printf "\nledger     : %d blocks, %d transactions executed\n" (Ledger.length ledger)
    (Ledger.txn_count ledger);
  let block = Ledger.get ledger 0 in
  Printf.printf "block 0    : %s\n" (Format.asprintf "%a" Block.pp block);

  (* The chain is tamper-evident, and every block carries the n − f
     signed commit messages that certified it. *)
  Printf.printf "chain audit: structural %b, certified %b\n" (Ledger.verify ledger)
    (Ledger.verify_certified ledger ~keychain:(Dep.keychain d) ~quorum:(Config.quorum cfg));

  (* Non-divergence: all replicas executed the same sequence. *)
  let all_agree = ref true in
  for i = 1 to Config.n_replicas cfg - 1 do
    let l = Dep.ledger d ~replica:i in
    if not (Ledger.is_prefix_of l ledger || Ledger.is_prefix_of ledger l) then all_agree := false
  done;
  Printf.printf "safety     : all %d replicas agree on the executed sequence: %b\n"
    (Config.n_replicas cfg) !all_agree
