(* DESIGN.md §17: large-topology scaling.  Three contracts:

   - the aggregated client-group model is *exactly* conservative over
     the legacy per-cluster client: at [clients = z*1000] with default
     knobs every derived quantity (population, id stride, inflight)
     collapses to the legacy constants, and the reports are
     byte-identical;
   - tiled topologies (z > 6) keep a positive cross-region lookahead,
     so cluster-parallel execution stays byte-identical to sequential
     at the new scales (z = 8, n = 31, 160k aggregated clients);
   - the [clients=] scenario token and JSON field round-trip exactly. *)

module Config = Rdb_types.Config
module Topology = Rdb_sim.Topology
module Time = Rdb_sim.Time
module Report = Rdb_fabric.Report
module Runner = Rdb_experiments.Runner
module Scenario = Rdb_experiments.Scenario
module Trace = Rdb_trace.Trace

(* -- client-group arithmetic -------------------------------------------- *)

let test_group_population () =
  let cfg = Config.make ~z:3 ~n:4 ~clients:1_000_000 () in
  let pops = List.init 3 (fun c -> Config.group_population cfg ~cluster:c) in
  Alcotest.(check int) "population conserved" 1_000_000 (List.fold_left ( + ) 0 pops);
  let mn = List.fold_left min max_int pops and mx = List.fold_left max 0 pops in
  Alcotest.(check bool) "split is even to within one" true (mx - mn <= 1);
  (* The id spaces of adjacent clusters must not overlap. *)
  Alcotest.(check bool) "stride covers the largest group" true
    (Config.client_id_stride cfg >= mx);
  (* Legacy model: population/stride/inflight are the historical
     constants, so every pre-existing pinned digest stands. *)
  let legacy = Config.make ~z:3 ~n:4 () in
  Alcotest.(check int) "legacy population" 1000 (Config.group_population legacy ~cluster:0);
  Alcotest.(check int) "legacy stride" 10_000 (Config.client_id_stride legacy);
  Alcotest.(check int) "legacy inflight" legacy.Config.client_inflight
    (Config.group_inflight legacy ~cluster:0)

(* -- tiled topology ----------------------------------------------------- *)

let test_tiled_topology () =
  let t = Topology.clustered ~z:8 ~n:31 in
  Alcotest.(check int) "8 regions" 8 (Topology.n_regions t);
  Alcotest.(check int) "replicas + client groups" ((8 * 31) + 8) (Topology.n_nodes t);
  (* Region 6 tiles onto paper region 0 (Oregon): same intra-region
     RTT, 10 ms to its paper twin, Table 1 numbers to everyone else. *)
  let node_of_region r = r * 31 in
  let rtt a b = Topology.rtt_ms t ~a:(node_of_region a) ~b:(node_of_region b) in
  Alcotest.(check (float 1e-9)) "tile twin RTT" 10.0 (rtt 6 0);
  Alcotest.(check (float 1e-9)) "tile inherits Table 1 row" (rtt 1 0) (rtt 6 1);
  Alcotest.(check bool) "lookahead stays positive" true
    (Topology.min_cross_region_one_way_ms t > 0.0);
  (* The <= 6-region path must be byte-identical to the paper matrix. *)
  let small = Topology.clustered ~z:4 ~n:7 in
  Alcotest.(check (float 1e-9)) "untiled path unchanged"
    Topology.paper_rtt_ms.(0).(3)
    (Topology.rtt_ms small ~a:0 ~b:(3 * 7))

(* -- scenario grammar --------------------------------------------------- *)

let test_clients_round_trip () =
  let windows = { Scenario.warmup = Time.ms 500; measure = Time.ms 1500 } in
  let cfg = Config.make ~z:8 ~n:31 ~clients:1_600_000 () in
  let s = Scenario.make ~windows Scenario.Geobft cfg in
  let id = Scenario.to_string s in
  Alcotest.(check bool) "id spells clients=" true
    (String.length id > 0
    && Option.is_some
         (String.index_opt id 'c' (* cheap guard; the real check is the round-trip *)));
  (match Scenario.of_string id with
  | Some s' -> Alcotest.(check bool) "string round-trip" true (Scenario.equal s s')
  | None -> Alcotest.failf "unparseable id %S" id);
  (match Scenario.of_json (Scenario.to_json s) with
  | Ok s' -> Alcotest.(check bool) "json round-trip" true (Scenario.equal s s')
  | Error e -> Alcotest.failf "json round-trip failed: %s" e);
  (* Legacy ids (no clients= token) must keep parsing to clients = 0. *)
  match Scenario.of_string "geobft z4 n7 b100 i64 seed1 w1000+4000" with
  | Some s' -> Alcotest.(check int) "absent token defaults" 0 s'.Scenario.cfg.Config.clients
  | None -> Alcotest.fail "legacy id no longer parses"

(* -- runs --------------------------------------------------------------- *)

let run_to_bytes ~jobs s =
  let tracer = Trace.create () in
  let r = Runner.run ~tracer ~jobs s in
  let digest =
    match r.Report.trace with
    | Some tr -> tr.Trace.digest_hex
    | None -> Alcotest.fail "run produced no trace summary"
  in
  (r, Report.to_json_string r, digest)

(* Aggregation is conservative over the legacy client: with default
   batch/inflight knobs, [clients = z*1000] derives exactly the legacy
   population (1000), stride (10 000) and inflight — so the two
   spellings must produce byte-identical reports and digests. *)
let test_group_equivalence () =
  let windows = { Scenario.warmup = Time.ms 500; measure = Time.ms 1500 } in
  let legacy = Config.make ~z:2 ~n:4 ~seed:3 () in
  let grouped = Config.make ~base:legacy ~clients:2000 () in
  let _, json_l, dig_l =
    run_to_bytes ~jobs:1 (Scenario.make ~windows Scenario.Geobft legacy)
  in
  let _, json_g, dig_g =
    run_to_bytes ~jobs:1 (Scenario.make ~windows Scenario.Geobft grouped)
  in
  Alcotest.(check string) "digest equal" dig_l dig_g;
  (* The reports differ only in the scenario-independent fields — and
     since Report carries none, the whole document must match. *)
  Alcotest.(check string) "report JSON equal" json_l json_g

(* Large-topology smoke doubling as the determinism witness: z = 8
   tiled regions, 31 replicas per cluster, 160k aggregated clients —
   sequential and 4-domain runs must agree to the byte, and the
   deployment must make progress. *)
let test_large_topology_smoke () =
  (* 16k aggregated clients keep the group inflight at the legacy
     floor, so the tier-1 run stays cheap; the million-client load
     points live in the fig11 sweep matrix. *)
  let windows = { Scenario.warmup = Time.ms 300; measure = Time.ms 700 } in
  let cfg = Config.make ~z:8 ~n:31 ~clients:16_000 ~seed:1 () in
  let s = Scenario.make ~windows Scenario.Geobft cfg in
  let r1, json1, dig1 = run_to_bytes ~jobs:1 s in
  let _, json4, dig4 = run_to_bytes ~jobs:4 s in
  Alcotest.(check bool) "progress at scale" true (r1.Report.completed_txns > 0);
  Alcotest.(check string) "seq=par trace digest at scale" dig1 dig4;
  Alcotest.(check string) "seq=par report JSON at scale" json1 json4

let suite =
  [
    ("group population arithmetic", `Quick, test_group_population);
    ("tiled topology (z = 8)", `Quick, test_tiled_topology);
    ("clients= round-trips", `Quick, test_clients_round_trip);
    ("group size 1000 == legacy bytes", `Slow, test_group_equivalence);
    ("z=8 n=31 smoke, seq=par", `Slow, test_large_topology_smoke);
  ]
