(* Shared helpers for the protocol integration tests: small, fast
   deployments plus cross-replica safety checks. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Ledger = Rdb_ledger.Ledger
module Table = Rdb_ycsb.Table
module Block = Rdb_ledger.Block
module Batch = Rdb_types.Batch

(* Small and fast: 1000-record table, small batches, short timeouts so
   failure tests recover within a few simulated seconds. *)
let small_cfg ?(z = 2) ?(n = 4) ?(batch = 5) ?(inflight = 4) ?(seed = 1) () =
  let base =
    {
      Config.default with
      Config.local_timeout_ms = 500.0;
      remote_timeout_ms = 1_000.0;
      client_timeout_ms = 1_500.0;
      checkpoint_interval = 60;
    }
  in
  Config.make ~base ~z ~n ~batch_size:batch ~client_inflight:inflight ~seed ()

let records = 1000

(* All pairwise ledgers must be prefix-compatible; the shortest must
   not be trivially empty if [min_len] is given. *)
let check_ledger_prefixes ?(min_len = 1) ~ledgers () =
  let n = Array.length ledgers in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = ledgers.(i) and b = ledgers.(j) in
      let ok = Ledger.is_prefix_of a b || Ledger.is_prefix_of b a in
      if not ok then
        Alcotest.failf "ledgers %d and %d diverge (lengths %d, %d; common prefix %d)" i j
          (Ledger.length a) (Ledger.length b) (Ledger.common_prefix a b)
    done
  done;
  let min_length = Array.fold_left (fun acc l -> min acc (Ledger.length l)) max_int ledgers in
  if min_length < min_len then
    Alcotest.failf "expected every ledger to reach %d blocks, shortest has %d" min_len min_length

(* Replicas whose ledgers have equal length must have identical YCSB
   state (deterministic execution). *)
let check_state_agreement ~ledgers ~tables () =
  let n = Array.length ledgers in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Ledger.length ledgers.(i) = Ledger.length ledgers.(j) then
        if not (Int64.equal (Table.quick_fingerprint tables.(i)) (Table.quick_fingerprint tables.(j)))
        then Alcotest.failf "replicas %d and %d executed same height but diverged in state" i j
    done
  done

(* -- the failure drill, with teeth -------------------------------------- *)

module GeoDep = Rdb_fabric.Deployment.Make (Rdb_geobft.Replica)

(* The examples/failure_drill.ml scenario at test scale, asserting what
   the example only prints: a backup crash and recovery, a permanent
   primary crash (local view change) and a Byzantine-silent new primary
   (remote view change), after which every replica's ledger — including
   the crashed ones' frozen prefixes — still satisfies
   [Ledger.agreement], and the survivors kept executing. *)
let test_failure_drill () =
  let cfg = small_cfg ~z:2 ~n:4 ~inflight:2 () in
  let d = GeoDep.create ~n_records:records cfg in
  GeoDep.at d ~time:(Time.sec 2) (fun () -> GeoDep.crash_replica d 3);
  GeoDep.at d ~time:(Time.sec 4) (fun () -> GeoDep.recover_replica d 3);
  GeoDep.at d ~time:(Time.sec 5) (fun () -> GeoDep.crash_primary d ~cluster:0);
  GeoDep.at d ~time:(Time.sec 7) (fun () ->
      (* the view-1 primary goes Byzantine-silent toward cluster 1 *)
      GeoDep.add_drop_rule d (fun ~src ~dst -> src = 1 && dst >= 4 && dst < 8));
  let report = GeoDep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 11) d in
  Alcotest.(check bool) "progress through the drill" true
    (report.Rdb_fabric.Report.completed_txns > 0);
  Alcotest.(check bool) "local view changes happened" true (GeoDep.view_changes d > 0);
  let honored = ref 0 in
  for i = 0 to 3 do
    honored := !honored + Rdb_geobft.Replica.remote_vcs_triggered (GeoDep.replica d i)
  done;
  Alcotest.(check bool) "remote view change honored" true (!honored > 0);
  let all = List.init (Config.n_replicas cfg) (fun i -> GeoDep.ledger d ~replica:i) in
  Alcotest.(check bool) "ledger agreement across all replicas" true
    (Ledger.agreement all);
  let live = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let min_live =
    List.fold_left (fun acc i -> min acc (Ledger.length (GeoDep.ledger d ~replica:i)))
      max_int live
  in
  Alcotest.(check bool) "live replicas kept executing" true (min_live >= 8)

let suite = [ ("failure drill with assertions", `Slow, test_failure_drill) ]
