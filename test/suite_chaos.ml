(* Chaos fault-injection tests: each protocol survives a fixed-seed
   fault timeline under the continuous invariant monitor, the timeline
   is reproducible event for event from its seed, and the monitor has
   teeth — an intentionally over-budget crash set (> f in one cluster)
   trips the liveness invariant. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Ledger = Rdb_ledger.Ledger
module Chaos = Rdb_chaos.Chaos
module Runner = Rdb_experiments.Runner
module Scenario = Rdb_experiments.Scenario
module Report = Rdb_fabric.Report

(* Matches the envelope the seeds were validated against: default
   timeouts, mid-size batches, an 12 s horizon leaving room for the
   fault window plus the fault-free recovery tail. *)
let chaos_cfg ?(z = 2) ?(n = 4) () =
  Config.make ~z ~n ~batch_size:20 ~client_inflight:8 ~seed:1 ()

let windows = { Runner.warmup = Time.sec 1; measure = Time.sec 11 }
let seed = 7

let smoke proto () =
  let cfg = chaos_cfg () in
  (* A vacuous pass would be worthless: the sampled timeline must
     actually contain faults. *)
  let tl = Runner.chaos_timeline proto ~windows ~seed cfg in
  Alcotest.(check bool) "timeline non-empty" true (List.length tl > 0);
  (* Runner.run raises Chaos.Violation — seed, timeline and first broken
     invariant in the payload — if safety or liveness is ever violated. *)
  let report = Runner.run (Scenario.make ~windows ~fault:(Runner.Chaos seed) proto cfg) in
  Alcotest.(check bool) "progress under chaos" true
    (report.Report.completed_txns > 0)

let test_timeline_reproducible () =
  let cfg = chaos_cfg () in
  List.iter
    (fun proto ->
      let a = Runner.chaos_timeline proto ~windows ~seed cfg in
      let b = Runner.chaos_timeline proto ~windows ~seed cfg in
      Alcotest.(check string)
        (Runner.proto_name proto ^ " same seed, same timeline")
        (Chaos.describe a) (Chaos.describe b);
      Alcotest.(check bool)
        (Runner.proto_name proto ^ " event-for-event equal")
        true (a = b))
    Runner.all_protocols

let test_timeline_respects_budget () =
  (* Sampled crash windows never put a cluster beyond its f tolerance:
     at any fault boundary, each cluster has at most f replicas down. *)
  let cfg = chaos_cfg () in
  let f = Config.f cfg in
  List.iter
    (fun s ->
      let tl = Runner.chaos_timeline Runner.Geobft ~windows ~seed:s cfg in
      let crash_events =
        List.filter_map
          (fun (e : Chaos.event) ->
            match e.Chaos.action with
            | Chaos.Crash v -> Some (e.Chaos.at, e.Chaos.until, v)
            | _ -> None)
          tl
      in
      List.iter
        (fun (at, _, _) ->
          for c = 0 to cfg.Config.z - 1 do
            let down =
              List.length
                (List.filter
                   (fun (a, u, v) ->
                     v / cfg.Config.n = c && Time.(a <= at) && Time.(at < u))
                   crash_events)
            in
            if down > f then
              Alcotest.failf "seed %d: cluster %d has %d > f=%d concurrent crashes"
                s c down f
          done)
        crash_events)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* -- the monitor has teeth ---------------------------------------------- *)

module PbftDep = Rdb_fabric.Deployment.Make (Rdb_pbft.Replica)

let pbft_surface (d : PbftDep.t) (cfg : Config.t) : Chaos.surface =
  {
    Chaos.z = cfg.Config.z;
    n = cfg.Config.n;
    f = Config.f cfg;
    caps =
      { Chaos.crashable = (fun _ -> true); partitions = false;
        link_down = false; link_loss = false; link_dup = false;
        equivocation = false };
    agreement = Chaos.Prefix;
    crash = (fun v -> PbftDep.crash_replica d v);
    recover = (fun v -> PbftDep.recover_replica d v);
    partition = (fun ~ca ~cb -> PbftDep.partition_clusters d ~ca ~cb);
    heal = (fun ~ca ~cb -> PbftDep.heal_clusters d ~ca ~cb);
    sever_link = (fun ~src ~dst -> PbftDep.sever_link d ~src ~dst);
    restore_link = (fun ~src ~dst -> PbftDep.restore_link d ~src ~dst);
    set_link_loss = (fun ~src ~dst ~p -> PbftDep.set_link_loss d ~src ~dst ~p);
    set_link_dup = (fun ~src ~dst ~p -> PbftDep.set_link_dup d ~src ~dst ~p);
    equivocate = (fun ~cluster:_ ~skip:_ -> ());
    stop_equivocate = (fun ~cluster:_ -> ());
    ledger = (fun r -> PbftDep.ledger d ~replica:r);
    now = (fun () -> Rdb_sim.Engine.now (PbftDep.engine d));
    at = (fun time k -> PbftDep.at d ~time k);
  }

let test_over_budget_trips_liveness () =
  (* Two of four replicas crashed at once is f + 1 = 2 > f: quorum is
     gone, the system stalls, and since the liveness clock deliberately
     keeps ticking through crash windows (BFT must stay live under
     <= f crashes), the monitor must report it. *)
  let cfg = Config.make ~z:1 ~n:4 ~batch_size:20 ~client_inflight:8 ~seed:1 () in
  let d = PbftDep.create ~retain_payloads:false cfg in
  let surface = pbft_surface d cfg in
  let timeline =
    [
      { Chaos.at = Time.ms 1500; until = Time.sec 60; action = Chaos.Crash 1 };
      { Chaos.at = Time.ms 1500; until = Time.sec 60; action = Chaos.Crash 2 };
    ]
  in
  Chaos.install surface timeline;
  let mon = Chaos.monitor ~liveness_window_ms:3000. surface timeline in
  let _report = PbftDep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 7) d in
  Chaos.check_now mon;
  Alcotest.(check bool) "monitor sampled during the run" true (Chaos.samples mon > 4);
  match Chaos.first_violation mon with
  | Some v ->
      Alcotest.(check string) "liveness invariant tripped" "liveness-after-heal"
        v.Chaos.invariant
  | None -> Alcotest.fail "over-budget crash set was not caught by the monitor"

let test_in_budget_stays_clean () =
  (* The same deployment with only f = 1 concurrent crash (transient,
     non-primary) keeps all invariants green under the same monitor. *)
  let cfg = Config.make ~z:1 ~n:4 ~batch_size:20 ~client_inflight:8 ~seed:1 () in
  let d = PbftDep.create ~retain_payloads:false cfg in
  let surface = pbft_surface d cfg in
  let timeline =
    [ { Chaos.at = Time.ms 1500; until = Time.ms 3500; action = Chaos.Crash 1 } ]
  in
  Chaos.install surface timeline;
  let mon = Chaos.monitor ~liveness_window_ms:3000. surface timeline in
  let _report = PbftDep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 7) d in
  Chaos.check_now mon;
  match Chaos.first_violation mon with
  | None -> ()
  | Some v -> Alcotest.failf "unexpected violation: %s" (Chaos.violation_to_string v)

(* -- the recovery subsystem has teeth too -------------------------------- *)

(* Seed 13's Pbft timeline stacks transient crashes: replicas that
   rejoin WITHOUT [on_recover] (no cursor resync, no state transfer,
   no view adoption) come back stale, and once enough of the group has
   been cycled through a crash the live non-stale set drops below
   quorum — the group wedges and the monitor's liveness invariant
   trips.  With the recovery subsystem on, the identical timeline is
   green (it is part of the seeds 1-16 sweep). *)
let stale_rejoin_seed = 13

let run_stale_rejoin ~with_recovery =
  let cfg = chaos_cfg () in
  let tl = Runner.chaos_timeline Runner.Pbft ~windows ~seed:stale_rejoin_seed cfg in
  let d = PbftDep.create ~retain_payloads:false cfg in
  let surface = pbft_surface d cfg in
  let surface =
    if with_recovery then surface
    else begin
      (* The pre-recovery-subsystem behaviour: rejoin without
         [on_recover], and no behind-the-window catch-up anywhere. *)
      PbftDep.disable_all_recovery d;
      { surface with Chaos.recover = (fun v -> PbftDep.uncrash_replica_no_recovery d v) }
    end
  in
  Chaos.install surface tl;
  let mon = Chaos.monitor surface tl in
  let report = PbftDep.run ~warmup:windows.Runner.warmup ~measure:windows.Runner.measure d in
  Chaos.check_now mon;
  (Chaos.first_violation mon, report)

let test_recovery_disabled_run_trips_monitor () =
  match run_stale_rejoin ~with_recovery:false with
  | Some v, _ ->
      Alcotest.(check string) "group wedge caught" "liveness-after-heal" v.Chaos.invariant
  | None, _ -> Alcotest.fail "recovery-disabled rejoin was not caught by the monitor"

let test_same_timeline_with_recovery_stays_green () =
  match run_stale_rejoin ~with_recovery:true with
  | Some v, _ -> Alcotest.failf "unexpected violation: %s" (Chaos.violation_to_string v)
  | None, report ->
      Alcotest.(check bool) "progress across the crashes" true
        (report.Rdb_fabric.Report.completed_txns > 0)

let suite =
  [
    ("geobft survives seeded chaos", `Slow, smoke Runner.Geobft);
    ("pbft survives seeded chaos", `Slow, smoke Runner.Pbft);
    ("zyzzyva survives seeded chaos", `Slow, smoke Runner.Zyzzyva);
    ("hotstuff survives seeded chaos", `Slow, smoke Runner.Hotstuff);
    ("steward survives seeded chaos", `Slow, smoke Runner.Steward);
    ("timeline reproducible from seed", `Quick, test_timeline_reproducible);
    ("crash budget never exceeds f per cluster", `Quick, test_timeline_respects_budget);
    ("over-budget crashes trip the liveness invariant", `Slow, test_over_budget_trips_liveness);
    ("in-budget crash keeps invariants green", `Slow, test_in_budget_stays_clean);
    ( "recovery-disabled rejoin trips the monitor",
      `Slow,
      test_recovery_disabled_run_trips_monitor );
    ( "same timeline with recovery stays green",
      `Slow,
      test_same_timeline_with_recovery_stays_green );
  ]
