(* Sweep-engine and wire-format tests.

   The determinism contract is the headline: a parallel sweep
   ([~jobs:4]) of the all-protocols smoke matrix must produce the
   byte-identical ordered results document — and identical per-run
   trace digests — as a genuinely serial pass ([~jobs:1]).  Around it,
   round-trip tests pin the stable Scenario id grammar and the
   versioned Scenario/Report JSON encodings. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Scenario = Rdb_experiments.Scenario
module Runner = Rdb_experiments.Runner
module Sweep = Rdb_sweep.Sweep
module Report = Rdb_fabric.Report
module Json = Rdb_fabric.Json

(* -- fixtures -------------------------------------------------------------- *)

let tiny_windows = { Scenario.warmup = Time.ms 200; measure = Time.ms 600 }
let tiny_cfg ?(seed = 1) () = Config.make ~z:2 ~n:4 ~batch_size:20 ~client_inflight:8 ~seed ()

(* The determinism smoke matrix: every protocol, traced. *)
let smoke_matrix () =
  List.map
    (fun p -> Scenario.make ~windows:tiny_windows ~trace:true p (tiny_cfg ()))
    Scenario.all_protocols

(* Scenarios exercising every corner of the id grammar: faults, both
   window presets, tracing, and non-default Config knobs (including
   the nested cost model). *)
let exotic_scenarios () =
  let base = tiny_cfg () in
  [
    Scenario.make Scenario.Geobft (Config.make ());
    Scenario.make ~windows:Scenario.full_windows ~trace:true Scenario.Steward base;
    Scenario.make ~fault:Scenario.One_nonprimary Scenario.Pbft base;
    Scenario.make ~fault:Scenario.F_nonprimary Scenario.Zyzzyva base;
    Scenario.make ~fault:Scenario.Primary_failure Scenario.Hotstuff base;
    Scenario.make ~fault:(Scenario.Chaos 42) Scenario.Geobft base;
    Scenario.make Scenario.Geobft
      { base with Config.checkpoint_interval = 50; geobft_fanout = 3; threshold_certs = true };
    Scenario.make Scenario.Pbft
      {
        base with
        Config.local_timeout_ms = 250.;
        remote_timeout_ms = 900.;
        client_timeout_ms = 1500.;
        wan_egress_mbps = 500.;
      };
    Scenario.make Scenario.Pbft
      { base with Config.read_fraction = 0.5; scan_fraction = 0.125 };
    Scenario.make Scenario.Geobft { base with Config.storage = Config.Disk };
    Scenario.make Scenario.Steward
      { base with Config.read_fraction = 0.75; storage = Config.Disk };
    Scenario.make Scenario.Hotstuff
      {
        base with
        Config.costs =
          {
            base.Config.costs with
            Config.sign_us = 55.25;
            verify_us = 77.125;
            mac_us = 1.5;
            exec_us_per_txn = 3.25;
          };
      };
  ]

(* -- Scenario round-trips -------------------------------------------------- *)

let test_id_round_trip () =
  List.iter
    (fun s ->
      let id = Scenario.to_string s in
      match Scenario.of_string id with
      | None -> Alcotest.failf "of_string failed on %S" id
      | Some s' ->
          Alcotest.(check bool) (Printf.sprintf "%S round-trips" id) true (Scenario.equal s s');
          (* The id is stable: re-rendering the parse gives the same string. *)
          Alcotest.(check string) "id stable" id (Scenario.to_string s'))
    (smoke_matrix () @ exotic_scenarios ())

let test_id_examples () =
  let s = Scenario.make ~windows:Scenario.default_windows Scenario.Geobft (Config.make ()) in
  Alcotest.(check string) "default id" "geobft z4 n7 b100 i64 seed1 w1000+4000"
    (Scenario.to_string s);
  let s = Scenario.make ~fault:(Scenario.Chaos 7) ~trace:true Scenario.Pbft (tiny_cfg ()) in
  Alcotest.(check string) "fault + trace id"
    "pbft z2 n4 b20 i8 seed1 w1000+4000 fault=chaos:7 trace" (Scenario.to_string s);
  let s =
    Scenario.make Scenario.Pbft
      {
        (tiny_cfg ()) with
        Config.read_fraction = 0.5;
        scan_fraction = 0.25;
        storage = Config.Disk;
      }
  in
  Alcotest.(check string) "workload mix + storage id"
    "pbft z2 n4 b20 i8 seed1 w1000+4000 reads=0.5 scans=0.25 storage=disk"
    (Scenario.to_string s)

let test_id_rejects_garbage () =
  List.iter
    (fun id ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" id) true (Scenario.of_string id = None))
    [
      ""; "paxos z2 n4 b20 i8 seed1 w1000+4000";
      "geobft z2 n4 b20 i8 seed1 w1000+4000 bogus=1";
      "geobft zx n4 b20 i8 seed1 w1000+4000"; "geobft z2 n4 fault=nope";
    ];
  (* Omitted tokens fall back to defaults — handy for `--scenario geobft`. *)
  Alcotest.(check bool) "bare protocol id accepted with defaults" true
    (Scenario.of_string "geobft" = Some (Scenario.make Scenario.Geobft (Config.make ())))

let test_scenario_json_round_trip () =
  List.iter
    (fun s ->
      let j = Scenario.to_json_string s in
      match Scenario.of_json_string j with
      | Error msg -> Alcotest.failf "of_json failed on %s: %s" (Scenario.to_string s) msg
      | Ok s' ->
          Alcotest.(check bool)
            (Printf.sprintf "%s JSON round-trips" (Scenario.to_string s))
            true (Scenario.equal s s'))
    (smoke_matrix () @ exotic_scenarios ())

let test_scenario_json_versioned () =
  let s = List.hd (smoke_matrix ()) in
  match Json.of_string (Scenario.to_json_string s) with
  | Error msg -> Alcotest.failf "unparseable scenario JSON: %s" msg
  | Ok j ->
      Alcotest.(check (option int)) "schema_version present" (Some Scenario.schema_version)
        (Option.bind (Json.member "schema_version" j) Json.to_int)

(* -- Report round-trips ---------------------------------------------------- *)

let test_report_json_round_trip () =
  (* One traced and one untraced report, straight from the simulator. *)
  List.iter
    (fun trace ->
      let s = Scenario.make ~windows:tiny_windows ~trace Scenario.Geobft (tiny_cfg ()) in
      let r = Runner.run s in
      (if trace then
         match r.Report.trace with
         | None -> Alcotest.fail "traced run lost its summary"
         | Some _ -> ());
      match Report.of_json_string (Report.to_json_string r) with
      | Error msg -> Alcotest.failf "Report.of_json failed: %s" msg
      | Ok r' ->
          Alcotest.(check bool)
            (Printf.sprintf "report (trace=%b) round-trips exactly" trace)
            true (r = r'))
    [ false; true ]

let test_report_json_refuses_newer_schema () =
  let s = Scenario.make ~windows:tiny_windows Scenario.Pbft (tiny_cfg ()) in
  let r = Runner.run s in
  match Json.of_string (Report.to_json_string r) with
  | Error msg -> Alcotest.failf "unparseable report JSON: %s" msg
  | Ok (Json.Obj fields) ->
      let bumped =
        Json.Obj
          (List.map
             (function
               | "schema_version", _ -> ("schema_version", Json.Int (Report.schema_version + 1))
               | kv -> kv)
             fields)
      in
      Alcotest.(check bool) "newer schema refused" true
        (Result.is_error (Report.of_json (Json.to_string bumped |> Json.of_string |> Result.get_ok)))
  | Ok _ -> Alcotest.fail "report JSON is not an object"

(* -- sweep determinism ----------------------------------------------------- *)

let test_parallel_equals_serial () =
  (* The acceptance check: `-j 4` and `-j 1` over the all-protocols
     smoke matrix produce byte-identical ordered documents and
     identical per-run trace digests. *)
  let serial = Sweep.run ~jobs:1 (smoke_matrix ()) in
  let parallel = Sweep.run ~jobs:4 (smoke_matrix ()) in
  Alcotest.(check (list (pair string string)))
    "identical trace digests" (Sweep.digests serial) (Sweep.digests parallel);
  Alcotest.(check int) "all scenarios traced" (List.length (smoke_matrix ()))
    (List.length (Sweep.digests serial));
  Alcotest.(check string) "byte-identical JSON document" (Sweep.to_json_string serial)
    (Sweep.to_json_string parallel);
  Alcotest.(check string) "byte-identical CSV document" (Sweep.to_csv_string serial)
    (Sweep.to_csv_string parallel)

let test_canonical_order () =
  (* Results come back in input order even though dispatch is
     longest-expected-first (which here is the reverse of an
     ascending-cost input list). *)
  let scenarios =
    List.map
      (fun seed -> Scenario.make ~windows:tiny_windows Scenario.Pbft (tiny_cfg ~seed ()))
      [ 1; 2 ]
    @ [ Scenario.make ~windows:tiny_windows Scenario.Geobft (tiny_cfg ~seed:3 ()) ]
  in
  let results = Sweep.run ~jobs:2 scenarios in
  Alcotest.(check (list string)) "input order preserved"
    (List.map Scenario.to_string scenarios)
    (List.map (fun (r : Sweep.result) -> Scenario.to_string r.Sweep.scenario) results)

let test_progress_callback () =
  let calls = ref 0 and last = ref 0 in
  let on_done ~done_ ~total _ _ =
    incr calls;
    last := done_;
    Alcotest.(check int) "total constant" (List.length (smoke_matrix ())) total
  in
  ignore (Sweep.run ~jobs:2 ~on_done (smoke_matrix ()));
  Alcotest.(check int) "one callback per scenario" (List.length (smoke_matrix ())) !calls;
  Alcotest.(check int) "last done_ = total" (List.length (smoke_matrix ())) !last

let test_failure_capture () =
  (* A scenario that raises must surface as Error in its slot, not
     tear down the sweep; reports_exn must then refuse the batch. *)
  let bad =
    (* z=1 GeoBFT is degenerate but runs; instead force a failure with
       an impossible window: measure = 0 yields no progress, which is
       not an exception — so use a chaos seed against z=1 which the
       planner rejects. *)
    Scenario.make ~windows:tiny_windows ~fault:(Scenario.Chaos 1) Scenario.Geobft
      (Config.make ~z:1 ~n:4 ~batch_size:20 ~client_inflight:8 ~seed:1 ())
  in
  let good = Scenario.make ~windows:tiny_windows Scenario.Pbft (tiny_cfg ()) in
  let results = Sweep.run ~jobs:2 [ good; bad ] in
  match List.map (fun (r : Sweep.result) -> r.Sweep.outcome) results with
  | [ Ok _; Error _ ] ->
      let refused =
        match Sweep.reports_exn results with
        | _ -> false
        | exception Failure _ -> true
      in
      Alcotest.(check bool) "reports_exn refuses failed batch" true refused
  | [ Ok _; Ok _ ] ->
      (* If chaos-on-z1 is actually supported, the sweep succeeded
         whole; that still proves isolation, so just pass. *)
      ()
  | _ -> Alcotest.fail "unexpected outcome shape"

let test_sweep_document_shape () =
  let results = Sweep.run ~jobs:2 (smoke_matrix ()) in
  match Json.of_string (Sweep.to_json_string results) with
  | Error msg -> Alcotest.failf "unparseable sweep JSON: %s" msg
  | Ok j ->
      Alcotest.(check (option int)) "sweep schema_version" (Some Sweep.schema_version)
        (Option.bind (Json.member "schema_version" j) Json.to_int);
      Alcotest.(check (option int)) "embedded report schema" (Some Report.schema_version)
        (Option.bind (Json.member "report_schema_version" j) Json.to_int);
      let entries = Option.bind (Json.member "results" j) Json.to_list in
      Alcotest.(check (option int)) "one entry per scenario"
        (Some (List.length (smoke_matrix ())))
        (Option.map List.length entries);
      (* Every entry's id parses back to its embedded scenario. *)
      List.iter
        (fun e ->
          let id = Option.bind (Json.member "id" e) Json.to_str |> Option.get in
          let s = Json.member "scenario" e |> Option.get |> Scenario.of_json |> Result.get_ok in
          Alcotest.(check bool) (id ^ " id matches embedded scenario") true
            (Scenario.of_string id = Some s))
        (Option.value ~default:[] entries)

let suite =
  [
    ("scenario id round-trip", `Quick, test_id_round_trip);
    ("scenario id examples", `Quick, test_id_examples);
    ("scenario id rejects garbage", `Quick, test_id_rejects_garbage);
    ("scenario JSON round-trip", `Quick, test_scenario_json_round_trip);
    ("scenario JSON is versioned", `Quick, test_scenario_json_versioned);
    ("report JSON round-trip", `Quick, test_report_json_round_trip);
    ("report JSON refuses newer schema", `Quick, test_report_json_refuses_newer_schema);
    ("sweep -j 4 = -j 1 (documents + digests)", `Slow, test_parallel_equals_serial);
    ("sweep canonical order", `Quick, test_canonical_order);
    ("sweep progress callback", `Quick, test_progress_callback);
    ("sweep failure capture", `Quick, test_failure_capture);
    ("sweep document shape", `Quick, test_sweep_document_shape);
  ]
