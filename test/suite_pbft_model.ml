(* Model-based Pbft engine tests over a loopback harness.

   Unlike the fabric-based integration tests (which deliver messages in
   near-FIFO order with realistic latencies), this harness drives four
   engines directly and delivers pending messages in a *seeded random
   order* — an adversarial asynchronous scheduler.  Pbft's safety must
   not depend on delivery order: for every seed, all replicas must emit
   exactly the same sequence of batches, in sequence order, with
   certificates that verify.

   The harness gives each engine a minimal Ctx: sends append to a
   global mailbag; CPU charges run immediately; timers are recorded but
   never fired (a fault-free asynchronous run needs no view changes). *)

module Batch = Rdb_types.Batch
module Certificate = Rdb_types.Certificate
module Config = Rdb_types.Config
module Ctx = Rdb_types.Ctx
module Keychain = Rdb_crypto.Keychain
module Engine = Rdb_pbft.Engine
module Rng = Rdb_prng.Rng

type harness = {
  kc : Keychain.t;
  cfg : Config.t;
  mailbag : (int * int * Rdb_pbft.Messages.msg) array ref;  (* src, dst, msg *)
  mutable bag_len : int;
  engines : Engine.t array;
  emitted : (int * string * Certificate.t) list ref array;  (* per replica *)
  engine_handle : Rdb_sim.Engine.t;  (* timer substrate only *)
}

let push_mail h entry =
  let arr = !(h.mailbag) in
  if h.bag_len = Array.length arr then begin
    let narr = Array.make (max 16 (2 * h.bag_len)) entry in
    Array.blit arr 0 narr 0 h.bag_len;
    h.mailbag := narr
  end;
  !(h.mailbag).(h.bag_len) <- entry;
  h.bag_len <- h.bag_len + 1

(* Remove and return a random pending message. *)
let pop_mail h rng =
  if h.bag_len = 0 then None
  else begin
    let i = Rng.int rng h.bag_len in
    let arr = !(h.mailbag) in
    let entry = arr.(i) in
    arr.(i) <- arr.(h.bag_len - 1);
    h.bag_len <- h.bag_len - 1;
    Some entry
  end

let make_harness ~n =
  let cfg = Config.make ~z:1 ~n ~batch_size:2 () in
  let kc = Keychain.create ~seed:"model" ~n_nodes:(n + 1) in
  let engine_handle = Rdb_sim.Engine.create () in
  (* Array filler; never delivered ([bag_len] guards every slot). *)
  let filler =
    (0, 0, Rdb_pbft.Messages.Forward (Batch.noop ~keychain:kc ~cluster:0 ~origin:0 ~created:0L ~nonce:0))
  in
  let mailbag = ref (Array.make 64 filler) in
  let h_ref = ref None in
  let emitted = Array.init n (fun _ -> ref []) in
  let mk_ctx id : Rdb_pbft.Messages.msg Ctx.t =
    {
      Ctx.id;
      config = cfg;
      keychain = kc;
      rng = Rng.create (Int64.of_int id);
      now = (fun () -> Rdb_sim.Engine.now engine_handle);
      send =
        (fun ~dst ~size:_ ~vcost:_ m ->
          match !h_ref with Some h -> push_mail h (id, dst, m) | None -> ());
      bcast =
        (fun ~dsts ~size:_ ~vcost:_ m ->
          match !h_ref with
          | Some h -> List.iter (fun dst -> push_mail h (id, dst, m)) dsts
          | None -> ());
      charge = (fun ~stage:_ ~cost:_ k -> k ());
      set_timer =
        (fun ~delay k -> Rdb_sim.Engine.schedule_after engine_handle ~delay k);
      cancel_timer = Rdb_sim.Engine.cancel;
      execute = (fun _ ~cert:_ ~on_done -> on_done None);
      read_execute = (fun _ ~on_done:_ -> ());
      state_snapshot = (fun () -> None);
      app_restore = (fun _ -> ());
      ledger_read = (fun ~height:_ -> []);
      complete = (fun _ -> ());
      trace = (fun _ -> ());
      phase = (fun ~key:_ ~name:_ -> ());
    }
  in
  let engines =
    Array.init n (fun id ->
        Engine.create ~ctx:(mk_ctx id)
          ~members:(Array.init n Fun.id)
          ~cluster:0
          ~on_committed:(fun ~seq batch cert ->
            emitted.(id) := (seq, batch.Batch.digest, cert) :: !(emitted.(id)))
          ~on_view_change:(fun ~view:_ -> ())
          ())
  in
  let h = { kc; cfg; mailbag; bag_len = 0; engines; emitted; engine_handle } in
  h_ref := Some h;
  h

(* Deliver pending messages in random order until quiescent. *)
let run_to_quiescence h rng =
  let steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < 1_000_000 do
    incr steps;
    match pop_mail h rng with
    | Some (src, dst, m) -> Engine.on_message h.engines.(dst) ~src m
    | None -> continue := false
  done

let mk_batch h id =
  let txns =
    [| Rdb_types.Txn.make ~key:id ~value:(Int64.of_int id) ~client_id:0 () |]
  in
  Batch.create ~keychain:h.kc ~id ~cluster:0
    ~origin:h.cfg.Config.n (* the extra key in the keychain *)
    ~txns ~created:0L

let check_agreement h ~expect =
  let n = Array.length h.engines in
  let seqs =
    Array.map
      (fun l -> List.rev_map (fun (seq, digest, _) -> (seq, digest)) !l)
      h.emitted
  in
  for i = 0 to n - 1 do
    if List.length seqs.(i) <> expect then
      Alcotest.failf "replica %d emitted %d of %d" i (List.length seqs.(i)) expect;
    (* In-order emission. *)
    List.iteri
      (fun k (seq, _) ->
        if seq <> k then Alcotest.failf "replica %d emitted seq %d at position %d" i seq k)
      seqs.(i);
    if seqs.(i) <> seqs.(0) then Alcotest.failf "replica %d diverged from replica 0" i
  done;
  (* Certificates verify. *)
  Array.iter
    (fun l ->
      List.iter
        (fun (_, _, cert) ->
          if not (Certificate.verify ~keychain:h.kc ~quorum:(Config.quorum h.cfg) cert) then
            Alcotest.fail "invalid commit certificate emitted")
        !l)
    h.emitted

let run_model ~seed ~batches ~n =
  let h = make_harness ~n in
  let rng = Rng.create (Int64.of_int seed) in
  for b = 0 to batches - 1 do
    Engine.submit_batch h.engines.(0) (mk_batch h b);
    (* Interleave delivery with submission to vary pipelining. *)
    if Rng.bool rng then run_to_quiescence h rng
  done;
  run_to_quiescence h rng;
  check_agreement h ~expect:batches

let test_random_delivery_orders () =
  List.iter (fun seed -> run_model ~seed ~batches:20 ~n:4) [ 1; 2; 3; 4; 5 ]

let test_larger_group () = run_model ~seed:42 ~batches:12 ~n:7

let prop_agreement_under_async =
  QCheck.Test.make ~name:"pbft agreement under adversarial delivery order" ~count:25
    QCheck.(pair (int_range 1 10_000) (int_range 1 30))
    (fun (seed, batches) ->
      run_model ~seed ~batches ~n:4;
      true)

let suite =
  [
    ("random delivery orders", `Quick, test_random_delivery_orders);
    ("larger group (n=7)", `Quick, test_larger_group);
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_agreement_under_async ]
