(* Experiment-harness tests: configuration generators, the runner's
   protocol/fault dispatch, and measured-vs-formula consistency for the
   Table 2 message counts at small scale. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Report = Rdb_fabric.Report
module Runner = Rdb_experiments.Runner
module Scenario = Rdb_experiments.Scenario
module Figures = Rdb_experiments.Figures

let tiny = { Runner.warmup = Time.sec 1; measure = Time.sec 2 }

let test_proto_parsing () =
  List.iter
    (fun (s, expect) ->
      match Runner.proto_of_string s with
      | Some p -> Alcotest.(check string) s expect (Runner.proto_name p)
      | None -> Alcotest.failf "failed to parse %s" s)
    [ ("geobft", "GeoBFT"); ("PBFT", "Pbft"); ("Zyzzyva", "Zyzzyva"); ("hotstuff", "HotStuff");
      ("STEWARD", "Steward") ];
  Alcotest.(check bool) "garbage rejected" true (Runner.proto_of_string "paxos" = None)

let test_fig10_configs () =
  (* zn = 60 for every point. *)
  List.iter
    (fun z ->
      let cfg = Figures.Fig10.cfg_of z in
      Alcotest.(check int) (Printf.sprintf "z=%d" z) 60 (cfg.Config.z * cfg.Config.n))
    Figures.Fig10.zs

let test_fig11_configs () =
  List.iter
    (fun n ->
      let cfg = Figures.Fig11.cfg_of n in
      Alcotest.(check int) "z fixed" 4 cfg.Config.z;
      Alcotest.(check int) "n set" n cfg.Config.n)
    Figures.Fig11.ns

let test_fig13_configs () =
  List.iter
    (fun b ->
      let cfg = Figures.Fig13.cfg_of b in
      Alcotest.(check int) "batch" b cfg.Config.batch_size;
      Alcotest.(check int) "n" 7 cfg.Config.n)
    Figures.Fig13.batches

let test_runner_fault_dispatch () =
  (* A primary-failure run must report view changes for Pbft; a
     fault-free run must not. *)
  let cfg = Itest.small_cfg ~z:1 ~n:4 ~inflight:2 () in
  let healthy = Runner.run (Scenario.make ~windows:tiny Runner.Pbft cfg) in
  Alcotest.(check int) "no view changes" 0 healthy.Report.view_changes;
  let windows = { Runner.warmup = Time.sec 1; measure = Time.sec 6 } in
  let failed = Runner.run (Scenario.make ~windows ~fault:Runner.Primary_failure Runner.Pbft cfg) in
  Alcotest.(check bool) "view change after primary failure" true (failed.Report.view_changes > 0)

let test_geobft_vs_pbft_at_small_scale () =
  (* Even at toy scale the headline relation should hold: GeoBFT
     commits at least as much as Pbft on a 2-region deployment. *)
  let cfg = Config.make ~z:2 ~n:4 ~batch_size:20 ~client_inflight:8 () in
  let geo = Runner.run (Scenario.make ~windows:tiny Runner.Geobft cfg) in
  let pbft = Runner.run (Scenario.make ~windows:tiny Runner.Pbft cfg) in
  Alcotest.(check bool)
    (Printf.sprintf "geobft (%.0f) >= pbft (%.0f)" geo.Report.throughput_txn_s
       pbft.Report.throughput_txn_s)
    true
    (geo.Report.throughput_txn_s >= pbft.Report.throughput_txn_s)

let test_geobft_global_traffic_scales_with_fanout () =
  (* Ablation A's mechanism: fan-out n sends more global messages per
     decision than fan-out f+1. *)
  let base = Itest.small_cfg ~z:2 ~n:4 () in
  let run fanout =
    Runner.run (Scenario.make ~windows:tiny Runner.Geobft { base with Config.geobft_fanout = fanout })
  in
  let paper = run 0 and broadcast = run 4 in
  Alcotest.(check bool) "broadcast fan-out costs more global traffic" true
    (Report.global_msgs_per_decision broadcast > Report.global_msgs_per_decision paper +. 0.5)

let suite =
  [
    ("protocol parsing", `Quick, test_proto_parsing);
    ("fig10 configs (zn = 60)", `Quick, test_fig10_configs);
    ("fig11 configs", `Quick, test_fig11_configs);
    ("fig13 configs", `Quick, test_fig13_configs);
    ("runner fault dispatch", `Slow, test_runner_fault_dispatch);
    ("geobft >= pbft at small scale", `Quick, test_geobft_vs_pbft_at_small_scale);
    ("fan-out ablation mechanism", `Quick, test_geobft_global_traffic_scales_with_fanout);
  ]
