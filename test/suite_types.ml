(* Shared-type tests: transactions, batches (signing, integrity),
   commit certificates, wire sizes (the §4 calibration points),
   configuration layout/quorums, and the generic client core. *)

module Txn = Rdb_types.Txn
module Batch = Rdb_types.Batch
module Certificate = Rdb_types.Certificate
module Config = Rdb_types.Config
module Ctx = Rdb_types.Ctx
module Wire = Rdb_types.Wire
module Client_core = Rdb_types.Client_core
module Keychain = Rdb_crypto.Keychain
module Engine = Rdb_sim.Engine
module Time = Rdb_sim.Time

let kc = lazy (Keychain.create ~seed:"types-test" ~n_nodes:10)

let mk_batch ?(id = 1) ?(cluster = 0) ?(origin = 8) () =
  let txns = Array.init 5 (fun i -> Txn.make ~key:i ~value:(Int64.of_int (i * i)) ~client_id:3 ()) in
  Batch.create ~keychain:(Lazy.force kc) ~id ~cluster ~origin ~txns ~created:Time.zero

(* -- Txn / Batch ------------------------------------------------------------ *)

let test_txn_serialize_distinct () =
  let a = Txn.make ~key:1 ~value:2L ~client_id:3 () in
  let b = Txn.make ~key:1 ~value:2L ~client_id:4 () in
  let c = Txn.make ~op:Txn.Read ~key:1 ~value:2L ~client_id:3 () in
  Alcotest.(check bool) "client distinguishes" false (Txn.serialize a = Txn.serialize b);
  Alcotest.(check bool) "op distinguishes" false (Txn.serialize a = Txn.serialize c)

let test_batch_verify () =
  let b = mk_batch () in
  Alcotest.(check bool) "valid batch verifies" true (Batch.verify ~keychain:(Lazy.force kc) b);
  (* Tampering with a transaction invalidates the digest. *)
  let tampered =
    { b with Batch.txns = Array.map (fun t -> { t with Txn.value = 999L }) b.Batch.txns }
  in
  Alcotest.(check bool) "tampered batch rejected" false
    (Batch.verify ~keychain:(Lazy.force kc) tampered);
  (* A different origin cannot have produced this signature. *)
  let forged = { b with Batch.origin = 9 } in
  Alcotest.(check bool) "forged origin rejected" false
    (Batch.verify ~keychain:(Lazy.force kc) forged)

let test_batch_noop () =
  let kc = Lazy.force kc in
  let n1 = Batch.noop ~keychain:kc ~cluster:0 ~origin:0 ~created:Time.zero ~nonce:1 in
  let n2 = Batch.noop ~keychain:kc ~cluster:0 ~origin:0 ~created:Time.zero ~nonce:2 in
  Alcotest.(check bool) "noop flagged" true (Batch.is_noop n1);
  Alcotest.(check bool) "real batch not noop" false (Batch.is_noop (mk_batch ()));
  Alcotest.(check bool) "distinct nonces, distinct digests" false
    (String.equal n1.Batch.digest n2.Batch.digest);
  Alcotest.(check bool) "noop verifies" true (Batch.verify ~keychain:kc n1)

(* -- Certificate -------------------------------------------------------------- *)

let mk_cert ?(signers = [ 0; 1; 2; 3; 4 ]) ?(cluster = 0) ?(view = 0) ?(seq = 7) digest =
  let kc = Lazy.force kc in
  let payload = Certificate.commit_payload ~cluster ~view ~seq ~digest in
  let commits =
    List.map
      (fun r -> { Certificate.replica = r; signature = Keychain.sign kc ~signer:r payload })
      signers
  in
  Certificate.make ~cluster ~view ~seq ~digest ~commits

let test_certificate_verify () =
  let kc = Lazy.force kc in
  let cert = mk_cert "digest-value" in
  Alcotest.(check bool) "valid cert" true (Certificate.verify ~keychain:kc ~quorum:5 cert);
  Alcotest.(check bool) "insufficient quorum" false (Certificate.verify ~keychain:kc ~quorum:6 cert)

let test_certificate_duplicate_signers () =
  let kc = Lazy.force kc in
  let cert = mk_cert ~signers:[ 0; 0; 0; 1; 2 ] "d" in
  (* Five entries but only three distinct signers. *)
  Alcotest.(check bool) "duplicate signers rejected" false
    (Certificate.verify ~keychain:kc ~quorum:5 cert)

let test_certificate_wrong_payload () =
  let kc = Lazy.force kc in
  let cert = mk_cert "d" in
  (* Re-binding the certificate to another sequence number invalidates
     every signature. *)
  let moved = { cert with Certificate.seq = 8 } in
  Alcotest.(check bool) "rebound cert rejected" false
    (Certificate.verify ~keychain:kc ~quorum:5 moved)

(* -- Wire sizes: the §4 calibration points ------------------------------------- *)

let test_wire_sizes_match_paper () =
  (* "messages have sizes of 5.4 kB (preprepare), 6.4 kB (commit
     certificates containing seven commit messages...), 1.5 kB (client
     responses), and 250 B (other messages)" — batch size 100. *)
  Alcotest.(check int) "preprepare 5.4kB" 5400 (Wire.preprepare_bytes ~batch_size:100);
  Alcotest.(check int) "certificate 6.4kB" 6401 (Wire.certificate_bytes ~batch_size:100 ~sigs:7);
  Alcotest.(check int) "response 1.5kB" 1500 (Wire.response_bytes ~batch_size:100);
  Alcotest.(check int) "small 250B" 250 Wire.small

(* -- Config --------------------------------------------------------------------- *)

let test_config_layout () =
  let cfg = Config.make ~z:3 ~n:7 () in
  Alcotest.(check int) "f" 2 (Config.f cfg);
  Alcotest.(check int) "quorum" 5 (Config.quorum cfg);
  Alcotest.(check int) "weak quorum" 3 (Config.weak_quorum cfg);
  Alcotest.(check int) "replicas" 21 (Config.n_replicas cfg);
  Alcotest.(check int) "nodes" 24 (Config.n_nodes cfg);
  Alcotest.(check int) "cluster of replica 15" 2 (Config.cluster_of_replica cfg 15);
  Alcotest.(check int) "local index" 1 (Config.local_index cfg 15);
  Alcotest.(check int) "replica id" 15 (Config.replica_id cfg ~cluster:2 ~index:1);
  Alcotest.(check (list int)) "cluster members" [ 7; 8; 9; 10; 11; 12; 13 ]
    (Config.replicas_of_cluster cfg 1);
  Alcotest.(check int) "client node" 22 (Config.client_node cfg ~cluster:1);
  Alcotest.(check bool) "client detection" true (Config.is_client cfg 22);
  Alcotest.(check int) "client cluster" 1 (Config.cluster_of_client cfg 22);
  Alcotest.(check int) "primary view 0" 7 (Config.primary cfg ~cluster:1 ~view:0);
  Alcotest.(check int) "primary rotates" 8 (Config.primary cfg ~cluster:1 ~view:8)

let test_config_f_values () =
  List.iter
    (fun (n, f) -> Alcotest.(check int) (Printf.sprintf "f(n=%d)" n) f (Config.f (Config.make ~n ())))
    [ (4, 1); (7, 2); (10, 3); (12, 3); (13, 4); (15, 4) ]

(* -- Client core ------------------------------------------------------------------ *)

(* A minimal ctx over a bare engine for unit-testing the client core. *)
let mk_client_ctx () =
  let engine = Engine.create () in
  let cfg = Config.make ~z:1 ~n:4 () in
  let sent = ref [] in
  let completed = ref [] in
  let ctx =
    {
      Ctx.id = 4;
      config = { cfg with Config.client_timeout_ms = 100.0 };
      keychain = Lazy.force kc;
      rng = Rdb_prng.Rng.create 1L;
      now = (fun () -> Engine.now engine);
      send = (fun ~dst ~size:_ ~vcost:_ () -> sent := dst :: !sent);
      bcast = (fun ~dsts ~size:_ ~vcost:_ () -> List.iter (fun dst -> sent := dst :: !sent) dsts);
      charge = (fun ~stage:_ ~cost:_ k -> k ());
      set_timer = (fun ~delay k -> Engine.schedule_after engine ~delay k);
      cancel_timer = Engine.cancel;
      execute = (fun _ ~cert:_ ~on_done -> on_done None);
      read_execute = (fun _ ~on_done:_ -> ());
      state_snapshot = (fun () -> None);
      app_restore = (fun _ -> ());
      ledger_read = (fun ~height:_ -> []);
      complete = (fun b -> completed := b.Batch.id :: !completed);
      trace = (fun _ -> ());
      phase = (fun ~key:_ ~name:_ -> ());
    }
  in
  (engine, ctx, sent, completed)

let test_client_core_threshold () =
  let engine, ctx, _sent, completed = mk_client_ctx () in
  let transmits = ref 0 in
  let core =
    Client_core.create ~ctx ~threshold:2 ~transmit:(fun ~retry:_ _ -> incr transmits) ()
  in
  let b = mk_batch ~id:42 () in
  Client_core.submit core b;
  Alcotest.(check int) "transmitted once" 1 !transmits;
  Client_core.on_reply core ~src:0 ~batch_id:42 ~result_digest:"r";
  Alcotest.(check (list int)) "below threshold: not complete" [] !completed;
  (* A mismatching reply does not count towards the quorum. *)
  Client_core.on_reply core ~src:1 ~batch_id:42 ~result_digest:"WRONG";
  Alcotest.(check (list int)) "mismatch ignored" [] !completed;
  Client_core.on_reply core ~src:2 ~batch_id:42 ~result_digest:"r";
  Alcotest.(check (list int)) "threshold reached" [ 42 ] !completed;
  (* Late duplicate replies are harmless. *)
  Client_core.on_reply core ~src:3 ~batch_id:42 ~result_digest:"r";
  Alcotest.(check (list int)) "no double completion" [ 42 ] !completed;
  Engine.run engine;
  Alcotest.(check int) "no retransmit after completion" 1 !transmits

let test_client_core_retransmit () =
  let engine, ctx, _sent, completed = mk_client_ctx () in
  let retries = ref 0 in
  let core =
    Client_core.create ~ctx ~threshold:2 ~transmit:(fun ~retry _ -> if retry then incr retries) ()
  in
  Client_core.submit core (mk_batch ~id:1 ());
  (* Exponential backoff: retransmits land at 100, 300 (100+200) and
     700 (300+400) ms after submission. *)
  Engine.run_until engine ~until:(Time.ms 350);
  Alcotest.(check int) "retransmits back off (100ms, then 200ms)" 2 !retries;
  Engine.run_until engine ~until:(Time.ms 750);
  Alcotest.(check int) "third retransmit after a 400ms backoff" 3 !retries;
  Alcotest.(check (list int)) "still incomplete" [] !completed

let test_client_core_duplicate_submit () =
  let _, ctx, _, _ = mk_client_ctx () in
  let transmits = ref 0 in
  let core =
    Client_core.create ~ctx ~threshold:1 ~transmit:(fun ~retry:_ _ -> incr transmits) ()
  in
  let b = mk_batch ~id:5 () in
  Client_core.submit core b;
  Client_core.submit core b;
  Alcotest.(check int) "duplicate submit ignored" 1 !transmits

let suite =
  [
    ("txn serialization", `Quick, test_txn_serialize_distinct);
    ("batch sign/verify/tamper", `Quick, test_batch_verify);
    ("batch noop", `Quick, test_batch_noop);
    ("certificate verify", `Quick, test_certificate_verify);
    ("certificate duplicate signers", `Quick, test_certificate_duplicate_signers);
    ("certificate payload binding", `Quick, test_certificate_wrong_payload);
    ("wire sizes match paper", `Quick, test_wire_sizes_match_paper);
    ("config layout", `Quick, test_config_layout);
    ("config f values", `Quick, test_config_f_values);
    ("client core threshold", `Quick, test_client_core_threshold);
    ("client core retransmit", `Quick, test_client_core_retransmit);
    ("client core duplicate submit", `Quick, test_client_core_duplicate_submit);
  ]

let test_ctx_map_send () =
  (* map_send must translate payloads and preserve size/vcost. *)
  let engine = Engine.create () in
  let sent = ref [] in
  let cfg = Config.make ~z:1 ~n:4 () in
  let ctx : string Ctx.t =
    {
      Ctx.id = 1;
      config = cfg;
      keychain = Lazy.force kc;
      rng = Rdb_prng.Rng.create 1L;
      now = (fun () -> Engine.now engine);
      send = (fun ~dst ~size ~vcost m -> sent := (dst, size, vcost, m) :: !sent);
      bcast =
        (fun ~dsts ~size ~vcost m ->
          List.iter (fun dst -> sent := (dst, size, vcost, m) :: !sent) dsts);
      charge = (fun ~stage:_ ~cost:_ k -> k ());
      set_timer = (fun ~delay k -> Engine.schedule_after engine ~delay k);
      cancel_timer = Engine.cancel;
      execute = (fun _ ~cert:_ ~on_done -> on_done None);
      read_execute = (fun _ ~on_done:_ -> ());
      state_snapshot = (fun () -> None);
      app_restore = (fun _ -> ());
      ledger_read = (fun ~height:_ -> []);
      complete = (fun _ -> ());
      trace = (fun _ -> ());
      phase = (fun ~key:_ ~name:_ -> ());
    }
  in
  let inner : int Ctx.t = Ctx.map_send string_of_int ctx in
  inner.Ctx.send ~dst:3 ~size:99 ~vcost:(Time.us 7) 42;
  (match !sent with
  | [ (3, 99, vc, "42") ] -> Alcotest.(check int64) "vcost preserved" (Time.us 7) vc
  | _ -> Alcotest.fail "map_send mangled the message");
  Ctx.multicast inner ~dsts:[ 0; 1; 2 ] ~size:10 ~vcost:Time.zero 7;
  Alcotest.(check int) "multicast fanout" 4 (List.length !sent)

let test_view_change_sizes () =
  (* A view-change message grows with the prepared certificates it
     carries. *)
  let base = Wire.view_change_bytes ~batch_size:100 ~prepared:0 in
  let five = Wire.view_change_bytes ~batch_size:100 ~prepared:5 in
  Alcotest.(check int) "empty = small" Wire.small base;
  Alcotest.(check bool) "grows with prepared" true (five > base + (5 * 5000))

let test_noop_id_space () =
  (* No-op ids never collide with client batch ids (which are >= 0). *)
  List.iter
    (fun nonce ->
      Alcotest.(check bool) "negative id" true (Batch.noop_id_of_nonce nonce < 0))
    [ 0; 1; 5; 1_000_000 ]

let test_threshold_cert_costs () =
  let plain = Config.make ~z:4 ~n:13 () in
  let thr = { plain with Config.threshold_certs = true } in
  Alcotest.(check bool) "threshold verify cheaper at n=13" true
    (Config.cert_verify_cost thr < Config.cert_verify_cost plain);
  Alcotest.(check int) "one wire signature" 1 (Config.cert_wire_sigs thr);
  Alcotest.(check int) "n-f wire signatures" 9 (Config.cert_wire_sigs plain)

let suite =
  suite
  @ [
      ("ctx map_send & multicast", `Quick, test_ctx_map_send);
      ("view-change sizes", `Quick, test_view_change_sizes);
      ("noop id space", `Quick, test_noop_id_space);
      ("threshold cert costs", `Quick, test_threshold_cert_costs);
    ]
