(* The ResilientDB reproduction test suite.

   Suites map one-to-one to the repo's subsystems: the crypto and PRNG
   substrates, the discrete-event simulator, the shared types, the
   ledger, the YCSB workload, each consensus protocol, and the fabric.
   Run with `dune runtest`; ALCOTEST_QUICK_TESTS=1 skips the slower
   failure-injection scenarios. *)

let () =
  Alcotest.run "resilientdb"
    [
      ("crypto", Suite_crypto.suite);
      ("prng", Suite_prng.suite);
      ("sim", Suite_sim.suite);
      ("types", Suite_types.suite);
      ("ledger", Suite_ledger.suite);
      ("ycsb", Suite_ycsb.suite);
      ("storage", Suite_storage.suite);
      ("pbft", Suite_pbft.suite);
      ("pbft-model", Suite_pbft_model.suite);
      ("geobft", Suite_geobft.suite);
      ("zyzzyva", Suite_zyzzyva.suite);
      ("hotstuff", Suite_hotstuff.suite);
      ("steward", Suite_steward.suite);
      ("fabric", Suite_fabric.suite);
      ("parallel", Suite_parallel.suite);
      ("scale", Suite_scale.suite);
      ("trace", Suite_trace.suite);
      ("integration", Itest.suite);
      ("experiments", Suite_experiments.suite);
      ("sweep", Suite_sweep.suite);
      ("byzantine", Suite_byzantine.suite);
      ("chaos", Suite_chaos.suite);
      ("check", Suite_check.suite);
      ("adversary", Suite_adversary.suite);
    ]
