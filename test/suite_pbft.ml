(* Pbft integration tests: normal case, safety across replicas,
   checkpoint garbage collection, primary failure (view change),
   censorship, equivocation, and Byzantine message tampering. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Ledger = Rdb_ledger.Ledger
module Batch = Rdb_types.Batch
module Engine = Rdb_pbft.Engine
module Messages = Rdb_pbft.Messages
module Dep = Rdb_fabric.Deployment.Make (Rdb_pbft.Replica)

let run_small ?(cfg = Itest.small_cfg ()) ?(sim_sec = 4) ?(prepare = fun _ -> ()) () =
  let d = Dep.create ~n_records:Itest.records cfg in
  prepare d;
  let report = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec (sim_sec - 1)) d in
  (d, report)

let ledgers_of d cfg = Array.init (Config.n_replicas cfg) (fun i -> Dep.ledger d ~replica:i)
let tables_of d cfg = Array.init (Config.n_replicas cfg) (fun i -> Dep.table d ~replica:i)

let test_normal_case_progress () =
  let cfg = Itest.small_cfg () in
  let d, report = run_small ~cfg () in
  Alcotest.(check bool) "committed transactions" true (report.Rdb_fabric.Report.completed_txns > 0);
  Alcotest.(check int) "no view changes" 0 report.Rdb_fabric.Report.view_changes;
  Itest.check_ledger_prefixes ~min_len:10 ~ledgers:(ledgers_of d cfg) ();
  Itest.check_state_agreement ~ledgers:(ledgers_of d cfg) ~tables:(tables_of d cfg) ()

let test_ledger_certified () =
  let cfg = Itest.small_cfg () in
  let d, _ = run_small ~cfg () in
  let l = Dep.ledger d ~replica:0 in
  Alcotest.(check bool) "non-empty" true (Ledger.length l > 0);
  Alcotest.(check bool) "full certified audit" true
    (Ledger.verify_certified l ~keychain:(Dep.keychain d) ~quorum:(Config.n_replicas cfg - ((Config.n_replicas cfg - 1) / 3)))

let test_in_order_no_gaps () =
  let cfg = Itest.small_cfg () in
  let d, _ = run_small ~cfg () in
  (* Every replica's engine must have emitted a contiguous sequence. *)
  for i = 0 to Config.n_replicas cfg - 1 do
    let e = Rdb_pbft.Replica.engine (Dep.replica d i) in
    Alcotest.(check bool) (Printf.sprintf "replica %d progressed" i) true (Engine.next_emit e > 0)
  done

let test_checkpoint_gc () =
  (* With checkpoint_interval = 60 txns and batch = 5, checkpoints fire
     every 12 sequence numbers; after several intervals the stable
     watermark must have advanced and every slot at or below it must
     have been garbage-collected. *)
  let cfg = Itest.small_cfg () in
  let d, _ = run_small ~cfg ~sim_sec:4 () in
  let e = Rdb_pbft.Replica.engine (Dep.replica d 0) in
  let every = Engine.checkpoint_every e in
  Alcotest.(check bool)
    (Printf.sprintf "ran past several checkpoint intervals (emit %d, every %d)"
       (Engine.next_emit e) every)
    true
    (Engine.next_emit e > 3 * every);
  Alcotest.(check bool)
    (Printf.sprintf "low water advanced (low_water %d)" (Engine.low_water e))
    true
    (Engine.low_water e >= every - 1);
  Alcotest.(check bool)
    (Printf.sprintf "pre-watermark slots GC'd (min retained %d)" (Engine.min_retained_slot e))
    true
    (Engine.min_retained_slot e > Engine.low_water e)

let test_primary_failure_view_change () =
  let cfg = Itest.small_cfg ~inflight:2 () in
  let d, report =
    run_small ~cfg ~sim_sec:8
      ~prepare:(fun d -> Dep.at d ~time:(Time.ms 2000) (fun () -> Dep.crash_primary d ~cluster:0))
      ()
  in
  Alcotest.(check bool) "view change happened" true (report.Rdb_fabric.Report.view_changes > 0);
  (* Progress resumed after the view change: completions continued into
     the measurement window (which starts at 1s, crash at 2s). *)
  Alcotest.(check bool) "progress after failure" true
    (report.Rdb_fabric.Report.completed_txns > 0);
  let live = Array.of_list (List.filteri (fun i _ -> i <> 0) (Array.to_list (ledgers_of d cfg))) in
  Itest.check_ledger_prefixes ~min_len:5 ~ledgers:live ()

let test_one_backup_failure_tolerated () =
  let cfg = Itest.small_cfg () in
  let d, report =
    run_small ~cfg ~prepare:(fun d -> Dep.crash_replica d (Config.n_replicas cfg - 1)) ()
  in
  Alcotest.(check bool) "progress with one backup down" true
    (report.Rdb_fabric.Report.completed_txns > 0);
  Alcotest.(check int) "no view change needed" 0 report.Rdb_fabric.Report.view_changes;
  ignore d

let test_too_many_failures_halt () =
  (* With 8 replicas (f = 2), crashing 3 backups exceeds f: no further
     progress possible (safety over liveness). *)
  let cfg = Itest.small_cfg ~inflight:2 () in
  let d = Dep.create ~n_records:Itest.records cfg in
  Dep.crash_replica d 5;
  Dep.crash_replica d 6;
  Dep.crash_replica d 7;
  let report = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 3) d in
  Alcotest.(check int) "no commits beyond f failures" 0 report.Rdb_fabric.Report.completed_txns

let test_equivocating_primary_detected () =
  (* The primary sends conflicting preprepares to odd and even
     replicas: backups must detect the equivocation (conflicting
     digests in one view/seq slot) and depose it. *)
  let cfg = Itest.small_cfg ~z:1 ~n:4 ~inflight:2 () in
  let d = Dep.create ~n_records:Itest.records cfg in
  let primary_engine = Rdb_pbft.Replica.engine (Dep.replica d 0) in
  let forged = ref None in
  Engine.set_tamper primary_engine
    (Some
       (fun ~dst m ->
         match m with
         | Messages.Preprepare { view; seq; batch = _ } when dst mod 2 = 1 ->
             (* Replace the batch for odd-indexed replicas. *)
             let b =
               match !forged with
               | Some b -> b
               | None ->
                   let b =
                     Batch.noop ~keychain:(Dep.keychain d) ~cluster:0 ~origin:0
                       ~created:Time.zero ~nonce:4242
                   in
                   forged := Some b;
                   b
             in
             Some (Messages.Preprepare { view; seq; batch = b })
         | m -> Some m));
  let _report = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 5) d in
  (* The view change deposes the equivocator, after which progress
     resumes under the new primary (which stops tampering since only
     replica 0's engine is wrapped). *)
  Alcotest.(check bool) "view change deposed equivocator" true (Dep.view_changes d > 0);
  let ledgers = Array.init 4 (fun i -> Dep.ledger d ~replica:i) in
  Itest.check_ledger_prefixes ~min_len:1 ~ledgers ()

let test_censoring_primary_recovers () =
  (* A primary that drops all preprepares (sends nothing) must be
     replaced by the censorship timers. *)
  let cfg = Itest.small_cfg ~z:1 ~n:4 ~inflight:2 () in
  let d = Dep.create ~n_records:Itest.records cfg in
  let primary_engine = Rdb_pbft.Replica.engine (Dep.replica d 0) in
  Engine.set_tamper primary_engine
    (Some (fun ~dst:_ m -> match m with Messages.Preprepare _ -> None | m -> Some m));
  let report = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 6) d in
  Alcotest.(check bool) "silent primary deposed" true (Dep.view_changes d > 0);
  Alcotest.(check bool) "progress after deposition" true
    (report.Rdb_fabric.Report.completed_txns > 0)

let test_client_retransmission_over_network () =
  (* Replies to the client group are dropped on the wire for the first
     1.5 s: the clients must hit [client_timeout_ms], retransmit (the
     counter increments), and complete the batches once the rule is
     lifted. *)
  let base = Itest.small_cfg ~z:1 ~n:4 ~inflight:2 () in
  let cfg = { base with Config.client_timeout_ms = 400.0 } in
  let d = Dep.create ~n_records:Itest.records cfg in
  let client_node = Config.client_node cfg ~cluster:0 in
  Dep.add_drop_rule d (fun ~src:_ ~dst -> dst = client_node);
  Dep.at d ~time:(Time.ms 1500) (fun () -> Dep.clear_drop_rules d);
  let report = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 3) d in
  let c = Dep.client d ~cluster:0 in
  Alcotest.(check bool) "client retransmitted after timeout" true
    (Rdb_pbft.Replica.client_retransmits c > 0);
  Alcotest.(check bool) "batches complete once replies flow again" true
    (report.Rdb_fabric.Report.completed_txns > 0)

let test_determinism () =
  let r1 = snd (run_small ()) in
  let r2 = snd (run_small ()) in
  Alcotest.(check int) "identical txn counts" r1.Rdb_fabric.Report.completed_txns
    r2.Rdb_fabric.Report.completed_txns;
  Alcotest.(check (float 0.0001)) "identical latency" r1.Rdb_fabric.Report.avg_latency_ms
    r2.Rdb_fabric.Report.avg_latency_ms

let suite =
  [
    ("normal case progress + safety", `Quick, test_normal_case_progress);
    ("ledger certified audit", `Quick, test_ledger_certified);
    ("in-order emission", `Quick, test_in_order_no_gaps);
    ("checkpoint GC", `Quick, test_checkpoint_gc);
    ("primary failure -> view change", `Slow, test_primary_failure_view_change);
    ("one backup failure tolerated", `Quick, test_one_backup_failure_tolerated);
    ("beyond f failures halts", `Quick, test_too_many_failures_halt);
    ("equivocating primary deposed", `Slow, test_equivocating_primary_detected);
    ("censoring primary deposed", `Slow, test_censoring_primary_recovers);
    ("client retransmission over the network", `Quick, test_client_retransmission_over_network);
    ("determinism", `Quick, test_determinism);
  ]

let test_window_backpressure () =
  (* The primary never runs more than [pipeline_depth] sequence numbers
     ahead of delivery. *)
  let base = Itest.small_cfg ~z:1 ~n:4 ~inflight:16 () in
  let cfg = { base with Config.pipeline_depth = 4 } in
  let d = Dep.create ~n_records:Itest.records cfg in
  let e = Rdb_pbft.Replica.engine (Dep.replica d 0) in
  let max_flight = ref 0 in
  (* Sample in-flight depth every 10 ms of simulated time. *)
  Dep.start_clients d;
  let engine = Dep.engine d in
  for ms = 1 to 200 do
    Rdb_sim.Engine.run_until engine ~until:(Time.ms (10 * ms));
    max_flight := max !max_flight (Engine.in_flight e)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "in-flight bounded by window (max %d)" !max_flight)
    true
    (!max_flight <= 4);
  Alcotest.(check bool) "still progresses" true (Engine.next_emit e > 10)

let test_engine_noop_proposal () =
  (* propose_noop at an idle primary commits a no-op batch. *)
  let cfg = Itest.small_cfg ~z:1 ~n:4 ~inflight:1 () in
  let d = Dep.create ~n_records:Itest.records cfg in
  let e = Rdb_pbft.Replica.engine (Dep.replica d 0) in
  (* No clients started: the queue is empty, so the no-op proposes. *)
  Engine.propose_noop e;
  Rdb_sim.Engine.run_until (Dep.engine d) ~until:(Time.ms 500);
  Alcotest.(check int) "noop committed" 1 (Engine.next_emit e);
  let l = Dep.ledger d ~replica:0 in
  Alcotest.(check bool) "noop block" true
    (Ledger.length l = 1 && Batch.is_noop (Rdb_ledger.Ledger.get l 0).Rdb_ledger.Block.batch)

let test_forwarded_request_reaches_primary () =
  (* A batch submitted at a backup is forwarded and still commits. *)
  let cfg = Itest.small_cfg ~z:1 ~n:4 ~inflight:1 () in
  let d = Dep.create ~n_records:Itest.records cfg in
  let backup = Rdb_pbft.Replica.engine (Dep.replica d 2) in
  let txns = [| Rdb_types.Txn.make ~key:1 ~value:9L ~client_id:0 () |] in
  let batch =
    Batch.create ~keychain:(Dep.keychain d) ~id:77 ~cluster:0
      ~origin:(Config.client_node cfg ~cluster:0) ~txns ~created:Time.zero
  in
  Engine.submit_batch backup batch;
  Rdb_sim.Engine.run_until (Dep.engine d) ~until:(Time.ms 500);
  Alcotest.(check int) "committed via forwarding" 1 (Engine.next_emit backup)

let test_on_behind_arms_state_transfer () =
  (* A Commit beyond next_emit + 4*window cannot be buffered (the slot
     table never opens that far ahead) and nobody retransmits the
     normal-path traffic the window dropped — the engine must hand the
     gap to the state-transfer layer instead of silently eating it. *)
  let cfg = Itest.small_cfg ~z:1 ~n:4 () in
  let d = Dep.create ~n_records:Itest.records cfg in
  let r = Dep.replica d 1 in
  let window = cfg.Config.pipeline_depth in
  let stats () = (Rdb_pbft.Replica.recovery r).Rdb_types.Protocol.retransmissions in
  let commit seq =
    Rdb_pbft.Replica.on_message r ~src:2
      (Rdb_pbft.Replica.Engine_msg
         (Messages.Commit
            { view = 0; seq; digest = ""; signature = { Rdb_crypto.Schnorr.e = 0L; s = 0L } }))
  in
  Alcotest.(check int) "fresh replica has no retransmissions" 0 (stats ());
  (* Just inside the acceptance window: buffered normally, no catch-up. *)
  commit ((4 * window) - 1);
  Alcotest.(check int) "in-window commit does not arm catch-up" 0 (stats ());
  (* First sequence past the window: catch-up fetch fires synchronously. *)
  commit (4 * window);
  Alcotest.(check bool) "behind-window commit arms state transfer" true (stats () > 0);
  (* Re-arming while already recovering must not double-count. *)
  let armed = stats () in
  commit ((4 * window) + 7);
  Alcotest.(check int) "already recovering: no duplicate arm" armed (stats ())

let suite =
  suite
  @ [
      ("window backpressure", `Quick, test_window_backpressure);
      ("engine no-op proposal", `Quick, test_engine_noop_proposal);
      ("forwarded request commits", `Quick, test_forwarded_request_reaches_primary);
      ("behind-window commit arms state transfer", `Quick, test_on_behind_arms_state_transfer);
    ]
