(* DESIGN.md §15: the sharded engine's moving parts — pooled event
   records, tie-breaking at the defer offset, control barriers — and
   the headline contract: a domain-parallel run is byte-identical to
   the sequential run of the same scenario (report JSON and trace
   digest), across every protocol, under chaos and under attack. *)

module Engine = Rdb_sim.Engine
module Heap = Rdb_sim.Heap
module Time = Rdb_sim.Time
module Config = Rdb_types.Config
module Report = Rdb_fabric.Report
module Runner = Rdb_experiments.Runner
module Scenario = Rdb_experiments.Scenario
module Adversary = Rdb_adversary.Adversary
module Rng = Rdb_prng.Rng
module Trace = Rdb_trace.Trace

(* -- event pooling ------------------------------------------------------ *)

(* Executed records return to the freelist and are reused by later
   schedules: the steady-state scheduling path allocates no records. *)
let test_pool_reuse () =
  let e = Engine.create ~seed:1 () in
  for i = 1 to 3 do
    ignore (Engine.schedule_at e ~at:(Time.ms i) (fun () -> ()))
  done;
  Alcotest.(check int) "empty pool before first run" 0 (Engine.pooled_events e);
  Engine.run e;
  Alcotest.(check int) "all three records recycled" 3 (Engine.pooled_events e);
  ignore (Engine.schedule_at e ~at:(Time.ms 10) (fun () -> ()));
  ignore (Engine.schedule_at e ~at:(Time.ms 11) (fun () -> ()));
  Alcotest.(check int) "schedules draw from the pool" 1 (Engine.pooled_events e);
  Engine.run e;
  Alcotest.(check int) "records return again" 3 (Engine.pooled_events e)

(* Cancelling a timer whose record already fired — and was recycled
   into a *different* pending event — must not cancel the new event:
   the generation counter makes the stale handle a no-op. *)
let test_stale_cancel_is_noop () =
  let e = Engine.create ~seed:1 () in
  let fired_b = ref false in
  let ta = Engine.schedule_at e ~at:(Time.ms 1) (fun () -> ()) in
  Engine.run_until e ~until:(Time.ms 2);
  Alcotest.(check int) "record back in pool" 1 (Engine.pooled_events e);
  ignore (Engine.schedule_at e ~at:(Time.ms 3) (fun () -> fired_b := true));
  Alcotest.(check int) "reused the recycled record" 0 (Engine.pooled_events e);
  Engine.cancel ta;
  (* also: double-cancel of the stale handle stays harmless *)
  Engine.cancel ta;
  Engine.run_until e ~until:(Time.ms 4);
  Alcotest.(check bool) "stale cancel did not kill the new event" true !fired_b

(* Cancelling a pending event prevents execution and still recycles
   the record. *)
let test_cancel_recycles () =
  let e = Engine.create ~seed:1 () in
  let fired = ref false in
  let t1 = Engine.schedule_at e ~at:(Time.ms 1) (fun () -> fired := true) in
  Engine.cancel t1;
  Engine.run e;
  Alcotest.(check bool) "cancelled event never ran" false !fired;
  Alcotest.(check int) "cancelled record recycled" 1 (Engine.pooled_events e);
  Alcotest.(check int) "cancelled events do not count as executed" 0 (Engine.executed_events e)

(* The defer hook permutes equal-timestamp ties, and keeps doing so
   when the records involved are recycled pool records. *)
let test_defer_hook_under_pooling () =
  let e = Engine.create ~seed:1 () in
  (* Warm the pool so the deferred schedules reuse records. *)
  for i = 1 to 4 do
    ignore (Engine.schedule_at e ~at:(Time.ms i) (fun () -> ()))
  done;
  Engine.run e;
  Alcotest.(check int) "pool warmed" 4 (Engine.pooled_events e);
  let order = ref [] in
  let log tag () = order := tag :: !order in
  (* Defer the 0th schedule call behind its equal-timestamp group. *)
  Engine.set_defer_hook e (Some (fun n -> n = 0));
  ignore (Engine.schedule_at e ~at:(Time.ms 10) (log "a"));
  ignore (Engine.schedule_at e ~at:(Time.ms 10) (log "b"));
  ignore (Engine.schedule_at e ~at:(Time.ms 10) (log "c"));
  Alcotest.(check int) "hook observed all schedule calls" 3 (Engine.schedule_calls e);
  Engine.set_defer_hook e None;
  Engine.run e;
  Alcotest.(check (list string)) "deferred event runs behind its tie group" [ "b"; "c"; "a" ]
    (List.rev !order)

(* -- heap ordering ------------------------------------------------------ *)

(* FIFO stability at equal timestamps, including across the defer
   offset (deferred events sort behind every normally-sequenced event
   of the same timestamp while preserving their own relative order). *)
let test_heap_fifo_at_defer_offset () =
  let defer_offset = 1_000_000_000 in
  let h : string Heap.t = Heap.create () in
  Alcotest.(check int64) "empty min_time" Int64.max_int (Heap.min_time h);
  Alcotest.(check int) "empty min_key" max_int (Heap.min_key h);
  Heap.push h ~time:5L ~seq:(defer_offset + 1) "d1";
  Heap.push h ~time:5L ~seq:1 "a";
  Heap.push h ~time:5L ~seq:(defer_offset + 2) "d2";
  Heap.push h ~time:5L ~seq:2 "b";
  Heap.push h ~time:4L ~seq:9 "early";
  Heap.push h ~time:5L ~seq:3 "c";
  Alcotest.(check int64) "min_time sees the root" 4L (Heap.min_time h);
  let pop () =
    match Heap.pop h with Some { Heap.payload; _ } -> payload | None -> "<empty>"
  in
  Alcotest.(check (list string)) "time, then seq, with deferred behind"
    [ "early"; "a"; "b"; "c"; "d1"; "d2" ]
    (List.init 6 (fun _ -> pop ()))

(* -- control barriers --------------------------------------------------- *)

(* Controls run at exactly their scheduled time, before same-time
   ordinary events, with equal-time controls in scheduling order. *)
let test_control_ordering () =
  let e = Engine.create ~seed:1 ~shards:2 ~lookahead:(Time.ms 5) () in
  let order = ref [] in
  let log tag () = order := tag :: !order in
  ignore (Engine.schedule_at_shard e ~shard:0 ~at:(Time.ms 10) (log "ev0"));
  ignore (Engine.schedule_at_shard e ~shard:1 ~at:(Time.ms 10) (log "ev1"));
  Engine.schedule_control e ~at:(Time.ms 10) (log "ctl-a");
  Engine.schedule_control e ~at:(Time.ms 10) (log "ctl-b");
  Engine.schedule_control e ~at:(Time.ms 1) (log "ctl-early");
  Engine.run_until e ~until:(Time.ms 20);
  Alcotest.(check (list string)) "controls at barriers, before same-time events"
    [ "ctl-early"; "ctl-a"; "ctl-b"; "ev0"; "ev1" ]
    (List.rev !order);
  Alcotest.(check (float 0.0001)) "clock advanced to until" 20.0
    (Time.to_ms_f (Engine.now e))

(* -- sequential vs parallel byte-equality ------------------------------- *)

let small_cfg seed =
  Config.make ~z:3 ~n:4 ~batch_size:50 ~client_inflight:8 ~seed ()

let windows = { Scenario.warmup = Time.ms 500; measure = Time.ms 1500 }

let run_to_bytes ~jobs s =
  let tracer = Trace.create () in
  let r = Runner.run ~tracer ~jobs s in
  let digest =
    match r.Report.trace with
    | Some tr -> tr.Trace.digest_hex
    | None -> Alcotest.fail "run produced no trace summary"
  in
  (Report.to_json_string r, digest)

let check_equal name s =
  let json1, dig1 = run_to_bytes ~jobs:1 s in
  let json4, dig4 = run_to_bytes ~jobs:4 s in
  Alcotest.(check string) (name ^ ": trace digest") dig1 dig4;
  Alcotest.(check string) (name ^ ": report JSON") json1 json4

let sampled_attack proto cfg =
  let caps = Runner.adversary_profile proto cfg in
  let rng = Rng.create 77L in
  Adversary.sample ~rng ~caps ~z:cfg.Config.z ~n:cfg.Config.n ~f:(Config.f cfg)
    ~horizon_ms:2000 ~tail_ms:400 ()

let test_digest_equality proto () =
  let name = Runner.proto_name proto in
  (* Healthy run. *)
  check_equal (name ^ " healthy") (Scenario.make ~windows proto (small_cfg 1));
  (* Seeded chaos timeline (faults + liveness monitor). *)
  check_equal (name ^ " chaos")
    (Scenario.make ~windows ~fault:(Runner.Chaos 1) proto (small_cfg 2));
  (* Sampled Byzantine attack (interposer installed: the run drops to
     one domain internally — the jobs knob must still be a no-op). *)
  let cfg = small_cfg 3 in
  check_equal (name ^ " attack")
    (Scenario.make ~windows ~attack:(sampled_attack proto cfg) proto cfg)

let suite =
  [
    ("event pool reuse", `Quick, test_pool_reuse);
    ("stale cancel is no-op", `Quick, test_stale_cancel_is_noop);
    ("cancel recycles record", `Quick, test_cancel_recycles);
    ("defer hook under pooling", `Quick, test_defer_hook_under_pooling);
    ("heap FIFO at defer offset", `Quick, test_heap_fifo_at_defer_offset);
    ("control barrier ordering", `Quick, test_control_ordering);
    ("seq=par: GeoBFT", `Slow, test_digest_equality Runner.Geobft);
    ("seq=par: Pbft", `Slow, test_digest_equality Runner.Pbft);
    ("seq=par: Zyzzyva", `Slow, test_digest_equality Runner.Zyzzyva);
    ("seq=par: HotStuff", `Slow, test_digest_equality Runner.Hotstuff);
    ("seq=par: Steward", `Slow, test_digest_equality Runner.Steward);
  ]
