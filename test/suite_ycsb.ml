(* YCSB substrate tests: identical initialization, deterministic
   execution, state digests, and workload generation (§4's setup: 600 k
   records, Zipfian, write queries). *)

module Txn = Rdb_types.Txn
module Batch = Rdb_types.Batch
module Table = Rdb_ycsb.Table
module Workload = Rdb_ycsb.Workload

let test_identical_initialization () =
  let a = Table.create ~n_records:10_000 () in
  let b = Table.create ~n_records:10_000 () in
  Alcotest.(check string) "same initial digest" (Rdb_crypto.Hex.of_string (Table.state_digest a))
    (Rdb_crypto.Hex.of_string (Table.state_digest b));
  Alcotest.(check int64) "same fingerprint" (Table.quick_fingerprint a) (Table.quick_fingerprint b)

let test_default_size () =
  let t = Table.create () in
  Alcotest.(check int) "600k records (paper)" 600_000 (Table.n_records t)

let test_apply_read_write () =
  let t = Table.create ~n_records:100 () in
  let before = Table.read t ~key:5 in
  let r = Table.apply t (Txn.make ~op:Txn.Read ~key:5 ~value:0L ~client_id:1 ()) in
  Alcotest.(check int64) "read returns value" before r;
  let w = Table.apply t (Txn.make ~key:5 ~value:42L ~client_id:1 ()) in
  Alcotest.(check int64) "write updates" w (Table.read t ~key:5);
  Alcotest.(check bool) "write changed value" true (not (Int64.equal before (Table.read t ~key:5)));
  Alcotest.(check int) "write counted" 1 (Table.writes t);
  Alcotest.(check int) "read counted" 1 (Table.reads t)

let test_order_sensitivity () =
  (* Execution order must be visible in the state: replicas that apply
     the same batches in different orders diverge (this is what the
     safety tests detect). *)
  let t1 = Table.create ~n_records:100 () in
  let t2 = Table.create ~n_records:100 () in
  let a = Txn.make ~key:7 ~value:1L ~client_id:1 () in
  let b = Txn.make ~key:7 ~value:2L ~client_id:1 () in
  ignore (Table.apply t1 a);
  ignore (Table.apply t1 b);
  ignore (Table.apply t2 b);
  ignore (Table.apply t2 a);
  Alcotest.(check bool) "order matters" true
    (not (Int64.equal (Table.read t1 ~key:7) (Table.read t2 ~key:7)))

let test_deterministic_replay () =
  let t1 = Table.create ~n_records:1000 () in
  let t2 = Table.create ~n_records:1000 () in
  let w = Workload.create ~n_records:1000 ~seed:9 ~client_base:0 () in
  let batches = Array.init 20 (fun _ -> Workload.next_batch_txns w ~batch_size:10) in
  Array.iter (fun b -> ignore (Table.apply_batch t1 b)) batches;
  Array.iter (fun b -> ignore (Table.apply_batch t2 b)) batches;
  Alcotest.(check int64) "identical state after replay" (Table.quick_fingerprint t1)
    (Table.quick_fingerprint t2)

let test_workload_determinism () =
  let w1 = Workload.create ~n_records:1000 ~seed:5 ~client_base:0 () in
  let w2 = Workload.create ~n_records:1000 ~seed:5 ~client_base:0 () in
  for _ = 1 to 100 do
    Alcotest.(check string) "same stream" (Txn.serialize (Workload.next_txn w1))
      (Txn.serialize (Workload.next_txn w2))
  done;
  let w3 = Workload.create ~n_records:1000 ~seed:6 ~client_base:0 () in
  Alcotest.(check bool) "different seed differs" true
    (Txn.serialize (Workload.next_txn w1) <> Txn.serialize (Workload.next_txn w3))

let test_workload_write_queries () =
  (* §4: "we use write queries".  Default write fraction is 1.0. *)
  let w = Workload.create ~n_records:1000 ~seed:1 ~client_base:0 () in
  for _ = 1 to 200 do
    let t = Workload.next_txn w in
    Alcotest.(check bool) "write query" true (t.Txn.op = Txn.Write)
  done

let test_workload_mixed () =
  let w = Workload.create ~n_records:1000 ~write_fraction:0.5 ~seed:1 ~client_base:0 () in
  let writes = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    if (Workload.next_txn w).Txn.op = Txn.Write then incr writes
  done;
  let frac = float_of_int !writes /. float_of_int n in
  Alcotest.(check bool) "about half writes" true (abs_float (frac -. 0.5) < 0.05)

let test_workload_keys_in_range () =
  let w = Workload.create ~n_records:500 ~seed:2 ~client_base:0 () in
  for _ = 1 to 1000 do
    let t = Workload.next_txn w in
    Alcotest.(check bool) "key in range" true (t.Txn.key >= 0 && t.Txn.key < 500)
  done

let test_workload_batches () =
  let w = Workload.create ~n_records:1000 ~seed:3 ~client_base:100 () in
  let b = Workload.next_batch_txns w ~batch_size:50 in
  Alcotest.(check int) "batch size" 50 (Array.length b);
  Alcotest.(check int) "generated counter" 50 (Workload.generated w);
  Array.iter
    (fun t -> Alcotest.(check bool) "client ids from base" true (t.Txn.client_id >= 100))
    b

let test_zero_fractions_identical_stream () =
  (* The mixed-workload extension must not perturb the historical RNG
     stream: with both class fractions at 0, the generator is
     byte-for-byte the write-only generator (this is what keeps every
     pinned trace digest valid). *)
  let w1 = Workload.create ~n_records:1000 ~seed:11 ~client_base:0 () in
  let w2 =
    Workload.create ~n_records:1000 ~read_fraction:0.0 ~scan_fraction:0.0 ~seed:11
      ~client_base:0 ()
  in
  for _ = 1 to 40 do
    let b1 = Workload.next_batch_txns w1 ~batch_size:10 in
    let b2 = Workload.next_batch_txns w2 ~batch_size:10 in
    Array.iteri
      (fun i t ->
        Alcotest.(check string) "identical stream" (Txn.serialize t) (Txn.serialize b2.(i)))
      b1
  done;
  Alcotest.(check int) "no read batches" 0 (Workload.read_batches w2);
  Alcotest.(check int) "no scan batches" 0 (Workload.scan_batches w2);
  Alcotest.(check int) "all write batches" 40 (Workload.write_batches w2)

let test_mixed_batches_are_classed () =
  (* Class is drawn per batch so whole batches stay eligible for the
     read-path bypass: every generated batch is uniformly one class,
     and read/scan batches satisfy Batch.read_only. *)
  let kc = Rdb_crypto.Keychain.create ~seed:"ycsb-mix" ~n_nodes:1 in
  let w =
    Workload.create ~n_records:1000 ~read_fraction:0.4 ~scan_fraction:0.2 ~seed:21
      ~client_base:0 ()
  in
  let n = 300 in
  for i = 1 to n do
    let txns = Workload.next_batch_txns w ~batch_size:8 in
    let classes =
      Array.fold_left
        (fun acc t ->
          match t.Txn.op with
          | Txn.Read -> acc lor 1
          | Txn.Scan -> acc lor 2
          | Txn.Write -> acc lor 4)
        0 txns
    in
    Alcotest.(check bool) "one class per batch" true
      (classes = 1 || classes = 2 || classes = 4);
    let b = Batch.create ~keychain:kc ~id:i ~cluster:0 ~origin:0 ~txns ~created:0L in
    if classes land 4 = 0 then
      Alcotest.(check bool) "read/scan batches are read-only" true (Batch.read_only b)
    else Alcotest.(check bool) "write batches are not read-only" false (Batch.read_only b)
  done;
  let rb = Workload.read_batches w
  and sb = Workload.scan_batches w
  and wb = Workload.write_batches w in
  Alcotest.(check int) "every batch classed" n (rb + sb + wb);
  let frac x = float_of_int x /. float_of_int n in
  Alcotest.(check bool) "about 40% reads" true (abs_float (frac rb -. 0.4) < 0.1);
  Alcotest.(check bool) "about 20% scans" true (abs_float (frac sb -. 0.2) < 0.1);
  Alcotest.(check bool) "about 40% writes" true (abs_float (frac wb -. 0.4) < 0.1)

let test_mixed_workload_determinism () =
  let mk () =
    Workload.create ~n_records:1000 ~read_fraction:0.5 ~scan_fraction:0.1 ~seed:31
      ~client_base:0 ()
  in
  let w1 = mk () and w2 = mk () in
  for _ = 1 to 50 do
    let b1 = Workload.next_batch_txns w1 ~batch_size:5 in
    let b2 = Workload.next_batch_txns w2 ~batch_size:5 in
    Array.iteri
      (fun i t ->
        Alcotest.(check string) "mixed stream deterministic" (Txn.serialize t)
          (Txn.serialize b2.(i)))
      b1
  done

let prop_digest_changes_on_write =
  QCheck.Test.make ~name:"state digest changes on every write" ~count:30
    QCheck.(pair (int_bound 999) small_int)
    (fun (key, v) ->
      let t = Table.create ~n_records:1000 () in
      let d0 = Table.state_digest t in
      ignore (Table.apply t (Txn.make ~key ~value:(Int64.of_int (v + 1)) ~client_id:0 ()));
      not (String.equal d0 (Table.state_digest t)))

let suite =
  [
    ("identical initialization", `Quick, test_identical_initialization);
    ("default 600k records", `Quick, test_default_size);
    ("apply read/write", `Quick, test_apply_read_write);
    ("order sensitivity", `Quick, test_order_sensitivity);
    ("deterministic replay", `Quick, test_deterministic_replay);
    ("workload determinism", `Quick, test_workload_determinism);
    ("workload write queries", `Quick, test_workload_write_queries);
    ("workload mixed read/write", `Quick, test_workload_mixed);
    ("workload key range", `Quick, test_workload_keys_in_range);
    ("workload batching", `Quick, test_workload_batches);
    ("zero fractions, identical stream", `Quick, test_zero_fractions_identical_stream);
    ("mixed batches are classed", `Quick, test_mixed_batches_are_classed);
    ("mixed workload determinism", `Quick, test_mixed_workload_determinism);
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_digest_changes_on_write ]
