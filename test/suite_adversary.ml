(* Byzantine-adversary subsystem tests (DESIGN.md §14): the strategy
   grammar's id/JSON round-trips, the f-per-cluster envelope, the
   fixed-shape seeded sampler, the runtime's hook-level semantics
   against a toy message type, the scenario grammar's attack token,
   and the checker's attack search — artifact determinism, the
   geobft-rvc-weak rediscovery showcase, and a small clean sweep.
   The search half is strictly sequential (the mutation/evidence hooks
   are process-global), which Alcotest's in-order runner guarantees. *)

module A = Rdb_adversary.Adversary
module Attack = A.Attack
module Interpose = Rdb_types.Interpose
module Time = Rdb_sim.Time
module Rng = Rdb_prng.Rng
module Keychain = Rdb_crypto.Keychain
module Check = Rdb_check.Check
module Scenario = Rdb_experiments.Scenario
module Runner = Rdb_experiments.Runner

(* -- grammar -------------------------------------------------------------- *)

let sample_prims =
  [
    A.Silence { cls = None; dst = A.Everyone };
    A.Silence { cls = Some Interpose.Share; dst = A.Remote };
    A.Silence { cls = Some Interpose.Vote; dst = A.Clusters [ 1 ] };
    A.Silence { cls = None; dst = A.Peers [ 2; 5 ] };
    A.Equivocate;
    A.Delay { cls = None; dst = A.Everyone; ms = 400 };
    A.Delay { cls = Some Interpose.Proposal; dst = A.Clusters [ 0; 2 ]; ms = 75 };
    A.Stale { cls = Interpose.Share };
    A.Replay { cls = Interpose.Vote; every = 3 };
    A.Deaf { cls = Interpose.Share; src = A.Everyone };
    A.Deaf { cls = Interpose.View_change; src = A.Peers [ 0 ] };
  ]

let test_prim_id_round_trip () =
  List.iter
    (fun p ->
      let id = A.prim_to_id p in
      match A.prim_of_id id with
      | Some p' -> Alcotest.(check bool) id true (p = p')
      | None -> Alcotest.fail (Printf.sprintf "%S failed to parse back" id))
    sample_prims;
  (* Malformed ids must be rejected, not mangled. *)
  List.iter
    (fun bad ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" bad) true
        (A.prim_of_id bad = None))
    [ "mute.bogus"; "equiv.vote"; "lag"; "lagx.share"; "replay.share.0"; "deaf"; "stale" ]

let two_rules =
  [
    { A.actor = 0; prim = A.Silence { cls = Some Interpose.Share; dst = A.Remote };
      from_ms = 600; until_ms = 2400 };
    { A.actor = 5; prim = A.Delay { cls = None; dst = A.Everyone; ms = 250 };
      from_ms = 1000; until_ms = 3000 };
  ]

let test_attack_id_round_trip () =
  Alcotest.(check string) "empty attack id" "none" (Attack.to_id Attack.empty);
  Alcotest.(check bool) "none parses to empty" true
    (Attack.of_id "none" = Some Attack.empty);
  let a = { Attack.rules = two_rules } in
  let id = Attack.to_id a in
  Alcotest.(check string) "rule grammar spelling"
    "0@600:2400!mute.share.rem+5@1000:3000!lag250" id;
  (match Attack.of_id id with
  | Some a' -> Alcotest.(check bool) "id round-trip" true (Attack.equal a a')
  | None -> Alcotest.fail "attack id failed to parse back");
  Alcotest.(check bool) "inverted window rejected" true
    (Attack.of_id "0@2000:1000!equiv" = None)

let test_attack_json_round_trip () =
  let a = { Attack.rules = two_rules } in
  let s = Attack.to_string a in
  (match Attack.of_string s with
  | Ok a' ->
      Alcotest.(check bool) "json round-trip" true (Attack.equal a a');
      Alcotest.(check string) "byte-identical re-serialization" s (Attack.to_string a')
  | Error e -> Alcotest.fail e);
  match Attack.of_string "{\"v\": 999, \"rules\": []}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "newer schema version must be rejected"

let test_envelope () =
  let mute actor =
    { A.actor; prim = A.Silence { cls = None; dst = A.Everyone };
      from_ms = 500; until_ms = 1500 }
  in
  (* z=2 n=4 -> f=1 per cluster; two actors in cluster 0 overflow it,
     one per cluster does not.  Duplicate actors count once. *)
  let over = { Attack.rules = [ mute 0; mute 1 ] } in
  let spread = { Attack.rules = [ mute 0; mute 4 ] } in
  let dup = { Attack.rules = [ mute 0; mute 0 ] } in
  Alcotest.(check bool) "two in one cluster rejected" false
    (Attack.within_envelope ~n:4 ~f:1 over);
  Alcotest.(check bool) "one per cluster fits" true
    (Attack.within_envelope ~n:4 ~f:1 spread);
  Alcotest.(check bool) "duplicate actor counts once" true
    (Attack.within_envelope ~n:4 ~f:1 dup);
  Alcotest.(check (list int)) "corrupt is sorted distinct" [ 0; 4 ]
    (Attack.corrupt spread)

(* -- sampler -------------------------------------------------------------- *)

let test_sampler_bounds_and_determinism () =
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let caps = Runner.adversary_profile Scenario.Geobft cfg in
  let horizon_ms = 4500 and tail_ms = 1000 in
  let sample seed =
    A.sample ~rng:(Rng.create seed) ~caps ~z:2 ~n:4 ~f:1 ~horizon_ms ~tail_ms ()
  in
  for seed = 1 to 32 do
    let a = sample (Int64.of_int seed) in
    let id = Attack.to_id a in
    Alcotest.(check bool) (id ^ ": at most 3 rules") true
      (List.length a.Attack.rules <= 3);
    Alcotest.(check bool) (id ^ ": within envelope") true
      (Attack.within_envelope ~n:4 ~f:1 a);
    List.iter
      (fun (r : A.rule) ->
        Alcotest.(check bool) (id ^ ": onset after warm-up") true (r.A.from_ms >= 500);
        Alcotest.(check bool) (id ^ ": heals before the tail") true
          (r.A.until_ms <= horizon_ms - tail_ms);
        Alcotest.(check bool) (id ^ ": actor corruptible") true
          (caps.A.corruptible r.A.actor))
      a.Attack.rules
  done;
  Alcotest.(check bool) "same seed, same attack" true
    (Attack.equal (sample 7L) (sample 7L))

(* -- runtime semantics ---------------------------------------------------- *)

(* Toy protocol: strings; a "share..." prefix classifies as Share,
   everything else as Vote; forgeries are tagged with their nonce, and
   "nofake" has no modelled conflict. *)
let toy_view : string Interpose.view =
  {
    Interpose.classify =
      (fun m ->
        if String.length m >= 5 && String.sub m 0 5 = "share" then Interpose.Share
        else Interpose.Vote);
    conflict =
      (fun ~keychain:_ ~nonce m ->
        if m = "nofake" then None else Some (Printf.sprintf "forged%d:%s" nonce m));
  }

type toy = {
  rt : string A.Runtime.t;
  hooks : string Interpose.t option ref;
  now : Time.t ref;
  mutable installs : int;  (* Some-installs observed *)
  mutable uninstalls : int;
}

let toy_runtime () =
  let hooks = ref None and now = ref (Time.ms 1000) in
  let t_ref = ref None in
  let install h =
    (match !t_ref with
    | Some t -> if h = None then t.uninstalls <- t.uninstalls + 1 else t.installs <- t.installs + 1
    | None -> ());
    hooks := h
  in
  let rt =
    A.Runtime.create ~view:toy_view
      ~keychain:(Keychain.create ~seed:"adv-test" ~n_nodes:8)
      ~now:(fun () -> !now)
      ~n:4 ~install
  in
  let t = { rt; hooks; now; installs = 0; uninstalls = 0 } in
  t_ref := Some t;
  t

let obtrude t ~src ~dst m =
  match !(t.hooks) with
  | None -> Alcotest.fail "hooks not installed"
  | Some h -> h.Interpose.obtrude ~src ~dst m

let admit t ~src ~dst m =
  match !(t.hooks) with
  | None -> Alcotest.fail "hooks not installed"
  | Some h -> h.Interpose.admit ~src ~dst m

let emits es = List.map (fun (e : string Interpose.emission) -> e.Interpose.emit) es

let rule ?(from_ms = 0) ?(until_ms = 2000) actor prim =
  { A.actor; prim; from_ms; until_ms }

let test_runtime_install_toggle () =
  let t = toy_runtime () in
  Alcotest.(check bool) "starts inactive" false (A.Runtime.active t.rt);
  A.Runtime.set t.rt ~name:"a" [ rule 0 A.Equivocate ];
  Alcotest.(check bool) "active after set" true (A.Runtime.active t.rt);
  A.Runtime.set t.rt ~name:"b" [ rule 1 A.Equivocate ];
  A.Runtime.clear t.rt ~name:"a";
  Alcotest.(check bool) "still active with one set" true (A.Runtime.active t.rt);
  A.Runtime.clear t.rt ~name:"b";
  Alcotest.(check bool) "inactive after last clear" false (A.Runtime.active t.rt);
  Alcotest.(check int) "installed exactly once" 1 t.installs;
  Alcotest.(check int) "uninstalled exactly once" 1 t.uninstalls;
  Alcotest.(check bool) "hooks gone" true (!(t.hooks) = None)

let test_runtime_silence () =
  let t = toy_runtime () in
  A.Runtime.set_attack t.rt
    { Attack.rules = [ rule 0 (A.Silence { cls = Some Interpose.Share; dst = A.Remote }) ] };
  Alcotest.(check (list string)) "matching send swallowed" []
    (emits (obtrude t ~src:0 ~dst:5 "share-x"));
  Alcotest.(check (list string)) "same-cluster dst unaffected" [ "share-x" ]
    (emits (obtrude t ~src:0 ~dst:1 "share-x"));
  Alcotest.(check (list string)) "other class unaffected" [ "vote-x" ]
    (emits (obtrude t ~src:0 ~dst:5 "vote-x"));
  Alcotest.(check (list string)) "other actor unaffected" [ "share-x" ]
    (emits (obtrude t ~src:2 ~dst:5 "share-x"));
  (* Outside the rule window the actor behaves. *)
  t.now := Time.ms 2500;
  Alcotest.(check (list string)) "window closed" [ "share-x" ]
    (emits (obtrude t ~src:0 ~dst:5 "share-x"));
  (* [always] rules never close. *)
  A.Runtime.set_attack t.rt
    { Attack.rules = [ A.always ~actor:0 (A.Silence { cls = None; dst = A.Everyone }) ] };
  t.now := Time.ms 999_999;
  Alcotest.(check (list string)) "always-rule still live" []
    (emits (obtrude t ~src:0 ~dst:1 "vote-x"))

let test_runtime_equivocate () =
  let t = toy_runtime () in
  A.Runtime.set_attack t.rt { Attack.rules = [ rule 0 A.Equivocate ] };
  Alcotest.(check (list string)) "even dst sees the original" [ "vote-a" ]
    (emits (obtrude t ~src:0 ~dst:2 "vote-a"));
  let first = emits (obtrude t ~src:0 ~dst:1 "vote-a") in
  Alcotest.(check (list string)) "odd dst sees the forgery" [ "forged0:vote-a" ] first;
  Alcotest.(check (list string)) "forgery memoized per payload" first
    (emits (obtrude t ~src:0 ~dst:3 "vote-a"));
  Alcotest.(check (list string)) "distinct payload, distinct nonce" [ "forged1:vote-b" ]
    (emits (obtrude t ~src:0 ~dst:1 "vote-b"));
  Alcotest.(check (list string)) "no modelled conflict passes unchanged" [ "nofake" ]
    (emits (obtrude t ~src:0 ~dst:1 "nofake"))

let test_runtime_delay_stale_replay () =
  let t = toy_runtime () in
  A.Runtime.set_attack t.rt
    { Attack.rules = [ rule 0 (A.Delay { cls = None; dst = A.Everyone; ms = 300 }) ] };
  (match obtrude t ~src:0 ~dst:1 "vote-a" with
  | [ e ] ->
      Alcotest.(check string) "delayed payload unchanged" "vote-a" e.Interpose.emit;
      Alcotest.(check bool) "held for 300 ms" true (e.Interpose.after = Time.ms 300)
  | es -> Alcotest.fail (Printf.sprintf "expected one emission, got %d" (List.length es)));
  (* Stale: each matching send carries the previous matching payload. *)
  A.Runtime.set_attack t.rt
    { Attack.rules = [ rule 0 (A.Stale { cls = Interpose.Share }) ] };
  Alcotest.(check (list string)) "first has nothing to swap" [ "share-a" ]
    (emits (obtrude t ~src:0 ~dst:1 "share-a"));
  Alcotest.(check (list string)) "second sends the first" [ "share-a" ]
    (emits (obtrude t ~src:0 ~dst:1 "share-b"));
  Alcotest.(check (list string)) "third sends the second" [ "share-b" ]
    (emits (obtrude t ~src:0 ~dst:1 "share-c"));
  Alcotest.(check (list string)) "other class passes through" [ "vote-a" ]
    (emits (obtrude t ~src:0 ~dst:1 "vote-a"));
  (* Replay every 2nd matching message: duplicated with a hair of skew. *)
  A.Runtime.set_attack t.rt
    { Attack.rules = [ rule 0 (A.Replay { cls = Interpose.Vote; every = 2 }) ] };
  Alcotest.(check (list string)) "1st passes once" [ "vote-a" ]
    (emits (obtrude t ~src:0 ~dst:1 "vote-a"));
  (match obtrude t ~src:0 ~dst:1 "vote-b" with
  | [ e1; e2 ] ->
      Alcotest.(check string) "2nd duplicated" "vote-b" e1.Interpose.emit;
      Alcotest.(check string) "duplicate is identical" "vote-b" e2.Interpose.emit;
      Alcotest.(check bool) "duplicate slightly skewed" true
        (e1.Interpose.after = Time.zero && e2.Interpose.after > Time.zero)
  | es -> Alcotest.fail (Printf.sprintf "expected two emissions, got %d" (List.length es)));
  Alcotest.(check (list string)) "3rd passes once" [ "vote-c" ]
    (emits (obtrude t ~src:0 ~dst:1 "vote-c"))

let test_runtime_deaf_and_precedence () =
  let t = toy_runtime () in
  A.Runtime.set_attack t.rt
    { Attack.rules = [ rule 2 (A.Deaf { cls = Interpose.Share; src = A.Peers [ 0 ] }) ] };
  Alcotest.(check bool) "matching receive dropped" false (admit t ~src:0 ~dst:2 "share-x");
  Alcotest.(check bool) "other source heard" true (admit t ~src:1 ~dst:2 "share-x");
  Alcotest.(check bool) "other class heard" true (admit t ~src:0 ~dst:2 "vote-x");
  Alcotest.(check bool) "other receiver hears" true (admit t ~src:0 ~dst:3 "share-x");
  Alcotest.(check (list string)) "deafness is receive-side only" [ "share-x" ]
    (emits (obtrude t ~src:2 ~dst:0 "share-x"));
  (* First matching active rule wins, across rule sets in insertion
     order; clearing the front set uncovers the next. *)
  A.Runtime.clear t.rt ~name:"attack";
  A.Runtime.set t.rt ~name:"front"
    [ rule 0 (A.Silence { cls = None; dst = A.Everyone }) ];
  A.Runtime.set t.rt ~name:"back"
    [ rule 0 (A.Delay { cls = None; dst = A.Everyone; ms = 100 }) ];
  Alcotest.(check (list string)) "front set wins" []
    (emits (obtrude t ~src:0 ~dst:1 "vote-a"));
  A.Runtime.clear t.rt ~name:"front";
  (match obtrude t ~src:0 ~dst:1 "vote-a" with
  | [ e ] -> Alcotest.(check bool) "back set uncovered" true (e.Interpose.after = Time.ms 100)
  | _ -> Alcotest.fail "expected the delay rule to apply")

(* -- scenario grammar ----------------------------------------------------- *)

let test_scenario_attack_token () =
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let attack = { Attack.rules = two_rules } in
  let s = Scenario.make ~trace:true ~attack Scenario.Geobft cfg in
  let id = Scenario.to_string s in
  Alcotest.(check bool) "id carries the attack token" true
    (let tok = " attack=" ^ Attack.to_id attack in
     let rec has i =
       i + String.length tok <= String.length id
       && (String.sub id i (String.length tok) = tok || has (i + 1))
     in
     has 0);
  (match Scenario.of_string id with
  | Some s' ->
      Alcotest.(check bool) "scenario id round-trip" true (Scenario.equal s s');
      Alcotest.(check string) "re-serialization identical" id (Scenario.to_string s')
  | None -> Alcotest.fail "scenario id with attack failed to parse");
  (* JSON round-trip, and the attack field is absent when None. *)
  (match Scenario.of_json (Scenario.to_json s) with
  | Ok s' -> Alcotest.(check bool) "scenario json round-trip" true (Scenario.equal s s')
  | Error e -> Alcotest.fail e);
  let plain = Scenario.make Scenario.Geobft cfg in
  Alcotest.(check bool) "no attack, no token" true
    (Scenario.of_string (Scenario.to_string plain) = Some plain)

(* -- attack search -------------------------------------------------------- *)

let test_sample_attack_attempt_zero () =
  let s = Check.default_attack_scenario Scenario.Geobft in
  Alcotest.(check bool) "attempt 0 is the empty attack" true
    (Attack.equal Attack.empty (Check.sample_attack ~seed:1 ~attempt:0 s));
  let pinned = { Attack.rules = two_rules } in
  let s' = { s with Scenario.attack = Some pinned } in
  Alcotest.(check bool) "attempt 0 replays a pinned attack" true
    (Attack.equal pinned (Check.sample_attack ~seed:1 ~attempt:0 s'));
  Alcotest.(check bool) "later attempts are deterministic" true
    (Attack.equal
       (Check.sample_attack ~seed:3 ~attempt:5 s)
       (Check.sample_attack ~seed:3 ~attempt:5 s))

let test_rvc_weak_rediscovered () =
  (* The showcase: with GeoBFT's remote view-change honor-quorum
     weakened, only adversary-generated share starvation produces the
     exposing traffic.  The search must find it, shrink it to one
     rule, replay it bit-identically — twice over, byte-identical. *)
  let explore () =
    match Check.attack_mutant_scenario "geobft-rvc-weak" with
    | None -> Alcotest.fail "geobft-rvc-weak not registered"
    | Some s -> (
        match Check.explore_attacks ~budget:16 ~seed:1 ~mutation:"geobft-rvc-weak" s with
        | Some ce -> ce
        | None -> Alcotest.fail "geobft-rvc-weak escaped a 16-attempt budget")
  in
  let ce = explore () in
  Alcotest.(check bool) "a real adversary was needed" true
    (ce.Check.atk_attack <> Attack.empty);
  Alcotest.(check int) "shrunk to one rule" 1 (List.length ce.Check.atk_attack.Attack.rules);
  Alcotest.(check string) "quorum-evidence oracle fired" "quorum-evidence"
    ce.Check.atk_violation.Check.invariant;
  Alcotest.(check bool) "digest pinned" true (ce.Check.atk_digest <> None);
  (* Byte-identical across independent searches, and through the
     artifact parser. *)
  let bytes = Check.attack_counterexample_to_string ce in
  Alcotest.(check string) "deterministic artifact bytes" bytes
    (Check.attack_counterexample_to_string (explore ()));
  (match Check.attack_counterexample_of_string bytes with
  | Ok ce' ->
      Alcotest.(check string) "artifact round-trip" bytes
        (Check.attack_counterexample_to_string ce')
  | Error e -> Alcotest.fail e);
  (* And the minimal artifact replays: same invariant, same digest. *)
  let outcome = Check.replay_attack ce in
  Alcotest.(check bool) "replay reproduces" true outcome.Check.reproduced;
  Alcotest.(check bool) "replay digest matches" true
    (outcome.Check.digest_match = Some true)

let test_replay_saturation_clean () =
  (* Receiver-side dedup regression (DESIGN.md §17): a corrupt replica
     replaying *every* matching protocol message — the most aggressive
     [replay.*] program the grammar can spell — must never trip a
     safety oracle.  Every receive path is required to be idempotent
     (sequence-numbered slots, per-batch seen-sets, certificate
     collectors keyed by signer), so duplicates may cost bandwidth but
     can never double-execute, double-vote, or fork a quorum. *)
  List.iter
    (fun proto ->
      let s = Check.default_attack_scenario proto in
      let caps =
        Runner.adversary_profile proto s.Scenario.cfg
      in
      let rules =
        List.map
          (fun cls -> A.always ~actor:0 (A.Replay { cls; every = 1 }))
          caps.A.replay
      in
      if rules = [] then
        Alcotest.failf "%s exposes no replayable classes" (Scenario.proto_name proto);
      let r = Check.run_attack s { Attack.rules } in
      match r.Check.violation with
      | None -> ()
      | Some v ->
          Alcotest.failf "%s: replay saturation violated %s: %s"
            (Scenario.proto_name proto) v.Check.invariant v.Check.detail)
    Scenario.all_protocols

let test_clean_sweep_small () =
  (* Unmutated protocols absorb sampled in-envelope adversaries.  Two
     protocols at a tiny budget here; the full five-protocol sweep is
     CI's `rdb_cli attack` run. *)
  List.iter
    (fun proto ->
      let s = Check.default_attack_scenario proto in
      match Check.explore_attacks ~budget:2 ~seed:1 s with
      | None -> ()
      | Some ce ->
          Alcotest.fail
            (Printf.sprintf "%s violated %s under %s"
               (Scenario.proto_name proto)
               ce.Check.atk_violation.Check.invariant
               (Attack.to_id ce.Check.atk_attack)))
    [ Scenario.Geobft; Scenario.Pbft ]

let suite =
  [
    ("prim id round-trip", `Quick, test_prim_id_round_trip);
    ("attack id round-trip", `Quick, test_attack_id_round_trip);
    ("attack json round-trip", `Quick, test_attack_json_round_trip);
    ("envelope", `Quick, test_envelope);
    ("sampler bounds + determinism", `Quick, test_sampler_bounds_and_determinism);
    ("runtime install toggle", `Quick, test_runtime_install_toggle);
    ("runtime silence", `Quick, test_runtime_silence);
    ("runtime equivocate", `Quick, test_runtime_equivocate);
    ("runtime delay/stale/replay", `Quick, test_runtime_delay_stale_replay);
    ("runtime deaf + precedence", `Quick, test_runtime_deaf_and_precedence);
    ("scenario attack token", `Quick, test_scenario_attack_token);
    ("sample_attack attempt 0", `Quick, test_sample_attack_attempt_zero);
    ("rvc-weak rediscovered + replayed", `Slow, test_rvc_weak_rediscovered);
    ("replay saturation trips no safety oracle", `Slow, test_replay_saturation_clean);
    ("clean sweep small", `Slow, test_clean_sweep_small);
  ]
