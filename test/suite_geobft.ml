(* GeoBFT integration tests (paper §2): normal-case rounds across
   clusters, cross-cluster safety (identical executed sequences),
   no-op rounds for idle clusters, the remote view-change protocol
   (Example 2.4's Byzantine sender-primary), local primary failure,
   and f-failures-per-cluster resilience. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Ledger = Rdb_ledger.Ledger
module Block = Rdb_ledger.Block
module Batch = Rdb_types.Batch
module Engine = Rdb_pbft.Engine
module Geo = Rdb_geobft.Replica
module Messages = Rdb_geobft.Messages
module Dep = Rdb_fabric.Deployment.Make (Geo)

let run_small ?(cfg = Itest.small_cfg ()) ?(sim_sec = 4) ?(prepare = fun _ -> ()) () =
  let d = Dep.create ~n_records:Itest.records cfg in
  prepare d;
  let report = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec (sim_sec - 1)) d in
  (d, report)

let ledgers_of d cfg = Array.init (Config.n_replicas cfg) (fun i -> Dep.ledger d ~replica:i)
let tables_of d cfg = Array.init (Config.n_replicas cfg) (fun i -> Dep.table d ~replica:i)

let test_normal_case () =
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let d, report = run_small ~cfg () in
  Alcotest.(check bool) "progress" true (report.Rdb_fabric.Report.completed_txns > 0);
  Alcotest.(check int) "no view changes" 0 (Dep.view_changes d);
  Itest.check_ledger_prefixes ~min_len:10 ~ledgers:(ledgers_of d cfg) ();
  Itest.check_state_agreement ~ledgers:(ledgers_of d cfg) ~tables:(tables_of d cfg) ()

let test_round_structure () =
  (* §2.4: each round executes one batch per cluster, in cluster order:
     block heights h with h mod z = c must all belong to cluster c. *)
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let d, _ = run_small ~cfg () in
  let l = Dep.ledger d ~replica:0 in
  Alcotest.(check bool) "several rounds" true (Ledger.length l >= 2 * 4);
  for h = 0 to Ledger.length l - 1 do
    let b = Ledger.get l h in
    Alcotest.(check int)
      (Printf.sprintf "block %d cluster order" h)
      (h mod 2) b.Block.cluster
  done

let test_three_clusters () =
  let cfg = Itest.small_cfg ~z:3 ~n:4 () in
  let d, report = run_small ~cfg () in
  Alcotest.(check bool) "progress" true (report.Rdb_fabric.Report.completed_txns > 0);
  Itest.check_ledger_prefixes ~min_len:9 ~ledgers:(ledgers_of d cfg) ();
  Itest.check_state_agreement ~ledgers:(ledgers_of d cfg) ~tables:(tables_of d cfg) ()

let test_certified_ledger () =
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let d, _ = run_small ~cfg () in
  (* Every block carries a commit certificate of its producing cluster:
     quorum is the per-cluster n − f. *)
  Alcotest.(check bool) "certified audit" true
    (Ledger.verify_certified (Dep.ledger d ~replica:0) ~keychain:(Dep.keychain d)
       ~quorum:(Config.quorum cfg))

let test_noop_rounds_for_idle_cluster () =
  (* §2.5: a cluster with no client requests must not stall the other
     clusters — its primary fills rounds with no-ops. *)
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let d = Dep.create ~n_records:Itest.records cfg in
  Dep.pause_client d ~cluster:1;
  let report = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 3) d in
  Alcotest.(check bool) "cluster 0 progressed" true (report.Rdb_fabric.Report.completed_txns > 0);
  let l = Dep.ledger d ~replica:0 in
  let noops = ref 0 and real = ref 0 in
  for h = 0 to Ledger.length l - 1 do
    if Batch.is_noop (Ledger.get l h).Block.batch then incr noops else incr real
  done;
  Alcotest.(check bool) "no-op rounds filled cluster 1 slots" true (!noops > 0);
  Alcotest.(check bool) "real batches executed" true (!real > 0);
  Itest.check_ledger_prefixes ~min_len:4 ~ledgers:(ledgers_of d cfg) ()

let test_remote_view_change_on_byzantine_sender () =
  (* Example 2.4, case (1): the primary of cluster 0 behaves correctly
     locally but never sends its certified batches to cluster 1.
     Cluster 1 must detect the silence, run DRVC agreement, send RVCs,
     and force a local view change in cluster 0; the new primary
     resumes sharing and every replica recovers. *)
  let cfg = Itest.small_cfg ~z:2 ~n:4 ~inflight:2 () in
  let d = Dep.create ~n_records:Itest.records cfg in
  (* Drop exactly the cross-cluster traffic of replica 0 (cluster 0's
     initial primary). *)
  Dep.add_drop_rule d (fun ~src ~dst -> src = 0 && dst >= 4 && dst < 8);
  let report = Dep.run ~warmup:(Time.sec 2) ~measure:(Time.sec 8) d in
  Alcotest.(check bool) "local view change forced in cluster 0" true (Dep.view_changes d > 0);
  (* Replicas in cluster 1 observed the remote view change being
     honored in cluster 0. *)
  let honored = ref 0 in
  for i = 0 to 3 do
    honored := !honored + Geo.remote_vcs_triggered (Dep.replica d i)
  done;
  Alcotest.(check bool) "cluster 0 honored a remote vc request" true (!honored > 0);
  Alcotest.(check bool) "progress after recovery" true
    (report.Rdb_fabric.Report.completed_txns > 0);
  let cfg' = cfg in
  Itest.check_ledger_prefixes ~min_len:2 ~ledgers:(ledgers_of d cfg') ()

let test_receiving_replica_drops_are_harmless () =
  (* Example 2.4, case (2) adapted: one replica of cluster 1 drops all
     incoming cross-cluster traffic.  The optimistic protocol sends to
     f+1 replicas, so at least one non-faulty receiver forwards m
     locally — no view change should be needed anywhere. *)
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let d = Dep.create ~n_records:Itest.records cfg in
  Dep.add_drop_rule d (fun ~src ~dst -> dst = 5 && src < 4);
  let report = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 3) d in
  Alcotest.(check bool) "progress" true (report.Rdb_fabric.Report.completed_txns > 0);
  Alcotest.(check int) "no view changes" 0 (Dep.view_changes d)

let test_local_primary_failure () =
  (* Crash cluster 0's primary mid-run: the local Pbft view change
     replaces it, GeoBFT resumes; remote clusters may also trigger the
     remote view-change path concurrently — either way rounds resume. *)
  let cfg = Itest.small_cfg ~z:2 ~n:4 ~inflight:2 () in
  let d, report =
    run_small ~cfg ~sim_sec:10
      ~prepare:(fun d -> Dep.at d ~time:(Time.ms 2000) (fun () -> Dep.crash_primary d ~cluster:0))
      ()
  in
  Alcotest.(check bool) "view change" true (Dep.view_changes d > 0);
  Alcotest.(check bool) "progress after primary failure" true
    (report.Rdb_fabric.Report.completed_txns > 0);
  (* Exclude the crashed node from safety checks. *)
  let ledgers = Array.of_list (List.filteri (fun i _ -> i <> 0) (Array.to_list (ledgers_of d cfg))) in
  Itest.check_ledger_prefixes ~min_len:2 ~ledgers ()

let test_f_failures_per_cluster () =
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let d, report = run_small ~cfg ~prepare:(fun d -> Dep.crash_f_per_cluster d) () in
  Alcotest.(check bool) "progress with f failures per cluster" true
    (report.Rdb_fabric.Report.completed_txns > 0);
  let live =
    Array.of_list
      (List.filteri (fun i _ -> i <> 3 && i <> 7) (Array.to_list (ledgers_of d cfg)))
  in
  Itest.check_ledger_prefixes ~min_len:5 ~ledgers:live ()

let test_sharing_targets_are_weak_quorum () =
  (* The global phase sends each certified batch to exactly f+1
     replicas per remote cluster (Figure 5, line 1). *)
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let d, report = run_small ~cfg () in
  ignore d;
  (* Global messages per decision: shares (f+1 per remote cluster per
     round = 2 per round = 1 per decision at z=2) plus nothing else in
     the fault-free case.  Allow slack for client requests crossing
     regions (none here: clients are local) and round boundaries. *)
  let gpd = Rdb_fabric.Report.global_msgs_per_decision report in
  Alcotest.(check bool)
    (Printf.sprintf "global msgs/decision ~ (f+1)(z-1)/z (got %.2f)" gpd)
    true
    (gpd > 0.5 && gpd < 2.5)

let test_determinism () =
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let r1 = snd (run_small ~cfg ()) in
  let r2 = snd (run_small ~cfg ()) in
  Alcotest.(check int) "identical txns" r1.Rdb_fabric.Report.completed_txns
    r2.Rdb_fabric.Report.completed_txns;
  Alcotest.(check (float 0.0001)) "identical latency" r1.Rdb_fabric.Report.avg_latency_ms
    r2.Rdb_fabric.Report.avg_latency_ms

let prop_safety_across_seeds =
  (* For arbitrary seeds, all non-faulty replicas execute the same
     sequence (non-divergence, Theorem 2.8). *)
  QCheck.Test.make ~name:"geobft non-divergence across seeds" ~count:5
    QCheck.(int_range 1 1000)
    (fun seed ->
      let cfg = Itest.small_cfg ~z:2 ~n:4 ~seed () in
      let d = Dep.create ~n_records:Itest.records cfg in
      let _ = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 2) d in
      let ledgers = Array.init 8 (fun i -> Dep.ledger d ~replica:i) in
      let ok = ref true in
      Array.iteri
        (fun i a ->
          Array.iteri
            (fun j b ->
              if i < j && not (Ledger.is_prefix_of a b || Ledger.is_prefix_of b a) then ok := false)
            ledgers)
        ledgers;
      !ok && Ledger.length ledgers.(0) > 0)

let test_rvc_replay_protection () =
  (* Figure 7, line 16.4: a remote view-change request (f+1 distinct
     signers of one cluster) is honored at most once per vc_count —
     replaying the same signed requests must not trigger another local
     view change. *)
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let d = Dep.create ~n_records:Itest.records cfg in
  let target = Dep.replica d 1 in   (* cluster 0 backup: the suspected cluster *)
  let send_rvc requester =
    let payload =
      Messages.rvc_payload ~failed_cluster:0 ~round:5 ~vc_count:1 ~requester
    in
    let signature = Rdb_crypto.Keychain.sign (Dep.keychain d) ~signer:requester payload in
    Geo.on_message target ~src:requester
      (Messages.Rvc { failed_cluster = 0; round = 5; vc_count = 1; requester; signature })
  in
  send_rvc 4;                       (* one signer of cluster 1: below f+1 *)
  Alcotest.(check int) "f distinct signers are not enough" 0
    (Geo.remote_vcs_triggered target);
  send_rvc 5;                       (* second distinct signer reaches f+1 = 2 *)
  Alcotest.(check int) "f+1 distinct signers honored once" 1
    (Geo.remote_vcs_triggered target);
  send_rvc 4;
  send_rvc 5;                       (* byte-identical replay of both requests *)
  Alcotest.(check int) "replayed request is not honored again" 1
    (Geo.remote_vcs_triggered target)

let suite =
  [
    ("normal case", `Quick, test_normal_case);
    ("round structure (cluster order)", `Quick, test_round_structure);
    ("three clusters", `Quick, test_three_clusters);
    ("certified ledger", `Quick, test_certified_ledger);
    ("no-op rounds for idle cluster", `Quick, test_noop_rounds_for_idle_cluster);
    ("remote view change (Example 2.4 case 1)", `Slow, test_remote_view_change_on_byzantine_sender);
    ("remote view-change replay protection", `Quick, test_rvc_replay_protection);
    ("receiver drops are harmless (f+1 fan-out)", `Quick, test_receiving_replica_drops_are_harmless);
    ("local primary failure", `Slow, test_local_primary_failure);
    ("f failures per cluster", `Quick, test_f_failures_per_cluster);
    ("global sharing fan-out", `Quick, test_sharing_targets_are_weak_quorum);
    ("determinism", `Quick, test_determinism);
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_safety_across_seeds ]

let test_threshold_certificates_mode () =
  (* §2.2 optional: threshold-signature certificates keep progress and
     shrink global traffic (constant-size certificates). *)
  let base = Itest.small_cfg ~z:2 ~n:4 () in
  let run cfg =
    let d = Dep.create ~n_records:Itest.records cfg in
    let r = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 3) d in
    (d, r)
  in
  let d_plain, plain = run base in
  let d_thr, thr = run { base with Config.threshold_certs = true } in
  Alcotest.(check bool) "threshold mode progresses" true
    (thr.Rdb_fabric.Report.completed_txns > 0);
  Itest.check_ledger_prefixes ~min_len:5
    ~ledgers:(Array.init 8 (fun i -> Dep.ledger d_thr ~replica:i))
    ();
  (* Equal decisions => compare bytes per decision. *)
  let bpd (r : Rdb_fabric.Report.t) = r.Rdb_fabric.Report.global_mb /. float_of_int r.Rdb_fabric.Report.decisions in
  Alcotest.(check bool)
    (Printf.sprintf "smaller global certificates (%.4f vs %.4f MB/dec)" (bpd thr) (bpd plain))
    true
    (bpd thr < bpd plain);
  ignore d_plain

let test_fanout_one_with_crashed_receiver_recovers () =
  (* Ablation A's failure mechanism: with fan-out 1, the rotation
     periodically picks the single crashed receiver, so some rounds
     are never delivered optimistically; the remote view-change path
     must recover them (DRVC "I already have m" replies or local VC +
     re-share).  Progress must continue either way. *)
  let base = Itest.small_cfg ~z:2 ~n:4 ~inflight:2 () in
  let cfg = { base with Config.geobft_fanout = 1 } in
  let d = Dep.create ~n_records:Itest.records cfg in
  (* Crash one replica in cluster 1 (a pure receiver for cluster 0's
     shares). *)
  Dep.crash_replica d 7;
  let report = Dep.run ~warmup:(Time.sec 2) ~measure:(Time.sec 10) d in
  Alcotest.(check bool) "progress despite fan-out 1 + crash" true
    (report.Rdb_fabric.Report.completed_txns > 0);
  let live = [ 0; 1; 2; 3; 4; 5; 6 ] in
  let ledgers = Array.of_list (List.map (fun i -> Dep.ledger d ~replica:i) live) in
  Itest.check_ledger_prefixes ~min_len:2 ~ledgers ()

let test_on_behind_arms_catchup () =
  (* Same behind-the-window hand-off as Pbft, through GeoBFT's embedded
     local engine: a local Commit past next_emit + 4*window arms the
     crash-rejoin fetch path (the only retransmitter of dropped
     local-phase traffic) exactly once. *)
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let d = Dep.create ~n_records:Itest.records cfg in
  let r = Dep.replica d 1 in
  let window = cfg.Config.pipeline_depth in
  let stats () = (Geo.recovery r).Rdb_types.Protocol.retransmissions in
  let commit seq =
    (* src 2 is a same-cluster peer of replica 1 (cluster 0, n = 4). *)
    Geo.on_message r ~src:2
      (Messages.Local
         (Rdb_pbft.Messages.Commit
            { view = 0; seq; digest = ""; signature = { Rdb_crypto.Schnorr.e = 0L; s = 0L } }))
  in
  Alcotest.(check int) "fresh replica has no retransmissions" 0 (stats ());
  commit ((4 * window) - 1);
  Alcotest.(check int) "in-window commit does not arm catch-up" 0 (stats ());
  commit (4 * window);
  Alcotest.(check bool) "behind-window commit arms catch-up" true (stats () > 0);
  let armed = stats () in
  commit ((4 * window) + 7);
  Alcotest.(check int) "already recovering: no duplicate arm" armed (stats ())

let suite =
  suite
  @ [
      ("threshold certificates (§2.2 optional)", `Quick, test_threshold_certificates_mode);
      ("fan-out 1 + crashed receiver recovers", `Slow, test_fanout_one_with_crashed_receiver_recovers);
      ("behind-window commit arms catch-up", `Quick, test_on_behind_arms_catchup);
    ]
