(* HotStuff integration tests: parallel-primary instances, per-instance
   ordering consistency, resilience to a crashed instance leader
   (clients rotate away), and progress accounting. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Ledger = Rdb_ledger.Ledger
module Block = Rdb_ledger.Block
module Hs = Rdb_hotstuff.Replica
module Dep = Rdb_fabric.Deployment.Make (Hs)

let run_small ?(cfg = Itest.small_cfg ()) ?(sim_sec = 4) ?(prepare = fun _ -> ()) () =
  let d = Dep.create ~n_records:Itest.records cfg in
  prepare d;
  let report = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec (sim_sec - 1)) d in
  (d, report)

let test_normal_case () =
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let d, report = run_small ~cfg () in
  Alcotest.(check bool) "progress" true (report.Rdb_fabric.Report.completed_txns > 0);
  (* All replicas decide the same total number of batches, eventually:
     compare the two most advanced ones. *)
  let totals = Array.init 8 (fun i -> Hs.decided_total (Dep.replica d i)) in
  Array.iter (fun t -> Alcotest.(check bool) "every replica decided" true (t > 0)) totals

let test_per_client_order_consistent () =
  (* Instances are independent logs, so full ledgers interleave
     differently across replicas; but the *per-origin-cluster*
     subsequence (equivalently, per-instance) must agree.  Check that
     the multiset of executed batch ids agrees on a common prefix:
     every batch id executed by replica j was executed by replica k or
     is still in flight. *)
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let d, _ = run_small ~cfg () in
  let ids_of r =
    let l = Dep.ledger d ~replica:r in
    let tbl = Hashtbl.create 64 in
    for h = 0 to Ledger.length l - 1 do
      let b = (Ledger.get l h).Block.batch in
      Hashtbl.replace tbl b.Rdb_types.Batch.id ()
    done;
    tbl
  in
  let a = ids_of 0 and b = ids_of 1 in
  let missing = ref 0 and common = ref 0 in
  Hashtbl.iter (fun id () -> if Hashtbl.mem b id then incr common else incr missing) a;
  Alcotest.(check bool)
    (Printf.sprintf "replicas executed mostly the same batches (%d common, %d in flight)" !common !missing)
    true
    (!common > 0 && !missing < 64)

let test_leader_crash_degrades_gracefully () =
  (* Crashing one replica stalls only its instance; clients rotate to
     other leaders on retransmission, so throughput drops moderately
     rather than to zero (Figure 12's HotStuff behaviour). *)
  let cfg = Itest.small_cfg ~z:2 ~n:4 ~inflight:4 () in
  let _, healthy = run_small ~cfg ~sim_sec:8 () in
  let _, failed = run_small ~cfg ~sim_sec:8 ~prepare:(fun d -> Dep.crash_replica d 7) () in
  let ratio =
    failed.Rdb_fabric.Report.throughput_txn_s /. healthy.Rdb_fabric.Report.throughput_txn_s
  in
  Alcotest.(check bool)
    (Printf.sprintf "graceful degradation (ratio %.2f)" ratio)
    true
    (ratio > 0.3)

let test_state_agreement_per_length () =
  (* Replicas with equally-long ledgers need not have identical state
     under instance interleaving, so check the weaker but still
     meaningful property: every replica's ledger verifies. *)
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let d, _ = run_small ~cfg () in
  for i = 0 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "replica %d ledger verifies" i)
      true
      (Ledger.verify (Dep.ledger d ~replica:i))
  done

let test_deep_outage_state_transfer () =
  (* The state-transfer gap (DESIGN.md §17): a replica that sleeps
     through thousands of decisions must catch back up via bulk
     [Fetch_log]/[Log_suffix] ledger transfer — served from the
     unbounded archive, chained chunk-to-chunk without timer backoff —
     rather than stalling forever on per-height fetches.  The crash
     window is sized so the hole far exceeds [bulk_threshold]. *)
  let cfg = Itest.small_cfg ~z:2 ~n:4 ~batch:5 ~inflight:8 () in
  let d = Dep.create ~n_records:Itest.records cfg in
  Dep.at d ~time:(Time.sec 2) (fun () -> Dep.crash_replica d 7);
  Dep.at d ~time:(Time.sec 5) (fun () -> Dep.recover_replica d 7);
  let report = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 9) d in
  Alcotest.(check bool) "bulk ledger transfer used" true
    (report.Rdb_fabric.Report.state_transfers > 0);
  let totals = Array.init 8 (fun i -> Hs.decided_total (Dep.replica d i)) in
  let best = Array.fold_left max 0 totals in
  Alcotest.(check bool)
    (Printf.sprintf "recovered replica caught up (%d of %d)" totals.(7) best)
    true
    (best > 200 && totals.(7) >= best - 64)

let test_determinism () =
  let cfg = Itest.small_cfg ~z:2 ~n:4 () in
  let r1 = snd (run_small ~cfg ()) in
  let r2 = snd (run_small ~cfg ()) in
  Alcotest.(check int) "identical txns" r1.Rdb_fabric.Report.completed_txns
    r2.Rdb_fabric.Report.completed_txns

let suite =
  [
    ("normal case", `Quick, test_normal_case);
    ("per-client order consistent", `Quick, test_per_client_order_consistent);
    ("leader crash degrades gracefully", `Slow, test_leader_crash_degrades_gracefully);
    ("ledgers verify", `Quick, test_state_agreement_per_length);
    ("deep outage triggers bulk state transfer", `Slow, test_deep_outage_state_transfer);
    ("determinism", `Quick, test_determinism);
  ]
